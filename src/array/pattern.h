// Beam pattern evaluation: array factor, power gain over angle, beamwidth,
// and the closed-form ULA pattern the tracking algorithm inverts (paper
// Eq. 20).
#pragma once

#include <cstddef>

#include "array/geometry.h"
#include "common/types.h"

namespace mmr::array {

/// Complex array factor along departure angle phi: a(phi)^T w.
/// For matched unit-norm weights this has magnitude sqrt(N).
cplx array_factor(const Ula& ula, const CVec& weights, double phi_rad);

/// Transmit power gain along phi: |a(phi)^T w|^2 (linear; N at boresight
/// for a matched single beam).
double power_gain(const Ula& ula, const CVec& weights, double phi_rad);

/// Power gain in dB.
double power_gain_db(const Ula& ula, const CVec& weights, double phi_rad);

/// Sampled pattern over an angle grid [lo, hi] with `points` samples.
struct PatternCut {
  RVec angle_rad;
  RVec gain_db;
};
PatternCut pattern_cut(const Ula& ula, const CVec& weights, double lo_rad,
                       double hi_rad, std::size_t points);

/// Closed-form normalized ULA pattern used by the tracker's inverse
/// model (paper Eq. 20): relative POWER gain (<= 1, =1 at offset 0) of a
/// matched beam when the target sits `offset_rad` away from the beam
/// center. Valid in the main lobe.
double ula_relative_gain(std::size_t num_elements, double spacing_wavelengths,
                         double offset_rad);

/// Same, in dB.
double ula_relative_gain_db(std::size_t num_elements,
                            double spacing_wavelengths, double offset_rad);

/// Half-power (-3 dB) beamwidth of a matched N-element beam [rad],
/// found numerically from the closed-form pattern.
double half_power_beamwidth(std::size_t num_elements,
                            double spacing_wavelengths);

}  // namespace mmr::array
