#include "array/pattern_cache.h"

#include <bit>
#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace mmr::array {
namespace {

// splitmix64 finalizer: the same mixer Rng::derive_stream_seed builds on;
// good avalanche for bit-pattern keys.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t bits_of(double x) { return std::bit_cast<std::uint64_t>(x); }

}  // namespace

dsp::CplxBatch steering_vector_batch(const Ula& ula, const RVec& phis_rad) {
  MMR_EXPECTS(ula.num_elements >= 1);
  MMR_EXPECTS(ula.spacing_wavelengths > 0.0);
  dsp::CplxBatch batch(phis_rad.size(), ula.num_elements);
  for (std::size_t r = 0; r < phis_rad.size(); ++r) {
    dsp::phasor_ramp(steering_phase_step(ula, phis_rad[r]), ula.num_elements,
                     batch.row_re(r), batch.row_im(r));
  }
  return batch;
}

dsp::CplxBatch steering_vector_wideband_batch(const Ula& ula, double phi_rad,
                                              double carrier_hz,
                                              const RVec& freq_offsets_hz) {
  MMR_EXPECTS(carrier_hz > 0.0);
  dsp::CplxBatch batch(freq_offsets_hz.size(), ula.num_elements);
  for (std::size_t r = 0; r < freq_offsets_hz.size(); ++r) {
    // Same electrical-length scaling as steering_vector_wideband.
    const double scale = (carrier_hz + freq_offsets_hz[r]) / carrier_hz;
    Ula scaled = ula;
    scaled.spacing_wavelengths = ula.spacing_wavelengths * scale;
    MMR_EXPECTS(scaled.spacing_wavelengths > 0.0);
    dsp::phasor_ramp(steering_phase_step(scaled, phi_rad), ula.num_elements,
                     batch.row_re(r), batch.row_im(r));
  }
  return batch;
}

CVec array_factor_batch(const Ula& ula, const CVec& weights,
                        const RVec& phis_rad) {
  MMR_EXPECTS(weights.size() == ula.num_elements);
  CVec out(phis_rad.size());
  // One grid-lifetime scratch row: the phasor ramp and the dot run as
  // separate call-free loops (libm sin/cos interleaved with complex
  // multiply-adds serializes badly), while the FP op order — and hence
  // every bit of the result — matches dot_phasor_ramp exactly.
  CVec scratch(weights.size());
  for (std::size_t r = 0; r < phis_rad.size(); ++r) {
    dsp::phasor_ramp(steering_phase_step(ula, phis_rad[r]), scratch.size(),
                     scratch.data());
    out[r] = dsp::cdot(scratch.data(), weights.data(), weights.size());
  }
  return out;
}

RVec power_gain_db_batch(const Ula& ula, const CVec& weights,
                         const RVec& phis_rad) {
  MMR_EXPECTS(weights.size() == ula.num_elements);
  RVec out(phis_rad.size());
  CVec scratch(weights.size());
  for (std::size_t r = 0; r < phis_rad.size(); ++r) {
    dsp::phasor_ramp(steering_phase_step(ula, phis_rad[r]), scratch.size(),
                     scratch.data());
    const cplx af = dsp::cdot(scratch.data(), weights.data(), weights.size());
    out[r] = to_db(std::norm(af));
  }
  return out;
}

std::vector<CVec> single_beam_weights_batch(const Ula& ula,
                                            const RVec& phis_rad) {
  MMR_EXPECTS(ula.num_elements >= 1);
  MMR_EXPECTS(ula.spacing_wavelengths > 0.0);
  const double inv_sqrt_n =
      1.0 / std::sqrt(static_cast<double>(ula.num_elements));
  std::vector<CVec> out;
  out.reserve(phis_rad.size());
  for (double phi : phis_rad) {
    const double step = steering_phase_step(ula, phi);
    CVec w(ula.num_elements);
    // Fused conj(a(phi)) / sqrt(N): same per-element ops as
    // single_beam_weights, minus the steering-vector temporary.
    for (std::size_t n = 0; n < w.size(); ++n) {
      w[n] = std::conj(dsp::unit_phasor(step, n)) * inv_sqrt_n;
    }
    out.push_back(std::move(w));
  }
  return out;
}

PatternCache& PatternCache::instance() {
  static PatternCache cache;
  return cache;
}

std::size_t PatternCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = mix64(k.kind ^ mix64(k.num_elements));
  h = mix64(h ^ k.spacing_bits);
  for (std::uint64_t v : k.payload) h = mix64(h ^ v);
  return static_cast<std::size_t>(h);
}

PatternCache::Shard& PatternCache::shard_for(const Key& key) {
  return shards_[KeyHash{}(key) % kNumShards];
}

template <typename Make>
PatternCache::Entry PatternCache::lookup_or_insert(const Key& key,
                                                   const Make& make) {
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Compute outside the lock: a duplicate race computes the same pure
  // function, and first-insert-wins keeps every caller on one object.
  Entry fresh = make();
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.map.size() >= kMaxEntriesPerShard) shard.map.clear();
  auto [it, inserted] = shard.map.emplace(key, fresh);
  misses_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::shared_ptr<const CVec> PatternCache::beam_weights(const Ula& ula,
                                                       double phi_rad) {
  if (!enabled_.load(std::memory_order_relaxed)) {
    return std::make_shared<const CVec>(single_beam_weights(ula, phi_rad));
  }
  Key key;
  key.kind = 0;
  key.num_elements = ula.num_elements;
  key.spacing_bits = bits_of(ula.spacing_wavelengths);
  key.payload = {bits_of(phi_rad)};
  return lookup_or_insert(key, [&] {
           Entry e;
           e.vec = std::make_shared<const CVec>(
               single_beam_weights(ula, phi_rad));
           return e;
         })
      .vec;
}

std::shared_ptr<const PatternCut> PatternCache::cut(const Ula& ula,
                                                    const CVec& weights,
                                                    double lo_rad,
                                                    double hi_rad,
                                                    std::size_t points) {
  if (!enabled_.load(std::memory_order_relaxed)) {
    return std::make_shared<const PatternCut>(
        pattern_cut(ula, weights, lo_rad, hi_rad, points));
  }
  Key key;
  key.kind = 1;
  key.num_elements = ula.num_elements;
  key.spacing_bits = bits_of(ula.spacing_wavelengths);
  key.payload.reserve(3 + 2 * weights.size());
  key.payload.push_back(bits_of(lo_rad));
  key.payload.push_back(bits_of(hi_rad));
  key.payload.push_back(points);
  for (const cplx& w : weights) {
    key.payload.push_back(bits_of(w.real()));
    key.payload.push_back(bits_of(w.imag()));
  }
  return lookup_or_insert(key, [&] {
           Entry e;
           e.pattern = std::make_shared<const PatternCut>(
               pattern_cut(ula, weights, lo_rad, hi_rad, points));
           return e;
         })
      .pattern;
}

void PatternCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
}

void PatternCache::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

bool PatternCache::enabled() const {
  return enabled_.load(std::memory_order_relaxed);
}

PatternCache::Stats PatternCache::stats() const {
  return {hits_.load(std::memory_order_relaxed),
          misses_.load(std::memory_order_relaxed)};
}

void PatternCache::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace mmr::array
