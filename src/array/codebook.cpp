#include "array/codebook.h"

#include <algorithm>
#include <cmath>

#include "array/pattern_cache.h"
#include "common/error.h"

namespace mmr::array {

Codebook::Codebook(const Ula& ula, double lo_rad, double hi_rad,
                   std::size_t size)
    : ula_(ula) {
  MMR_EXPECTS(size >= 2);
  MMR_EXPECTS(hi_rad > lo_rad);
  angles_.resize(size);
  weights_.reserve(size);
  PatternCache& cache = PatternCache::instance();
  for (std::size_t i = 0; i < size; ++i) {
    const double phi = lo_rad + (hi_rad - lo_rad) * static_cast<double>(i) /
                                    static_cast<double>(size - 1);
    angles_[i] = phi;
    weights_.push_back(cache.beam_weights(ula_, phi));
  }
}

double Codebook::angle(std::size_t idx) const {
  MMR_EXPECTS(idx < angles_.size());
  return angles_[idx];
}

const CVec& Codebook::weights(std::size_t idx) const {
  MMR_EXPECTS(idx < weights_.size());
  return *weights_[idx];
}

std::size_t Codebook::nearest(double phi_rad) const {
  std::size_t best = 0;
  double best_dist = std::abs(angles_[0] - phi_rad);
  for (std::size_t i = 1; i < angles_.size(); ++i) {
    const double d = std::abs(angles_[i] - phi_rad);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

double Codebook::angular_step() const {
  return (angles_.back() - angles_.front()) /
         static_cast<double>(angles_.size() - 1);
}

}  // namespace mmr::array
