#include "array/delay_array.h"

#include <algorithm>
#include <cmath>

#include "array/weights.h"
#include "common/angles.h"
#include "common/error.h"

namespace mmr::array {

DelayPhasedArray::DelayPhasedArray(const Ula& ula,
                                   const std::vector<double>& beam_angles_rad)
    : ula_(ula) {
  MMR_EXPECTS(!beam_angles_rad.empty());
  MMR_EXPECTS(ula.num_elements >= beam_angles_rad.size());
  const std::size_t k = beam_angles_rad.size();
  const std::size_t per = ula.num_elements / k;
  std::size_t cursor = 0;
  for (std::size_t b = 0; b < k; ++b) {
    Subarray sa;
    sa.first_element = cursor;
    // Last subarray absorbs the remainder so every element is used.
    sa.num_elements = (b + 1 == k) ? (ula.num_elements - cursor) : per;
    sa.angle_rad = beam_angles_rad[b];
    subarrays_.push_back(sa);
    cursor += sa.num_elements;
  }
}

const Subarray& DelayPhasedArray::subarray(std::size_t k) const {
  MMR_EXPECTS(k < subarrays_.size());
  return subarrays_[k];
}

void DelayPhasedArray::set_weight(std::size_t k, cplx w) {
  MMR_EXPECTS(k < subarrays_.size());
  subarrays_[k].weight = w;
}

void DelayPhasedArray::set_delay(std::size_t k, double delay_s) {
  MMR_EXPECTS(k < subarrays_.size());
  subarrays_[k].delay_s = delay_s;
}

CVec DelayPhasedArray::weights_at(double carrier_hz,
                                  double freq_offset_hz) const {
  MMR_EXPECTS(carrier_hz > 0.0);
  CVec w(ula_.num_elements, cplx{});
  for (const Subarray& sa : subarrays_) {
    // Phase shifters steer at the carrier (frequency-flat); the delay line
    // contributes a frequency-dependent phase ramp exp(-j 2 pi f_bb tau).
    // The carrier-frequency part of the delay phase is absorbed into the
    // subarray weight calibration, so only the baseband offset matters.
    const double delay_phase = -2.0 * kPi * freq_offset_hz * sa.delay_s;
    const cplx delay_rot(std::cos(delay_phase), std::sin(delay_phase));
    const double kk =
        2.0 * kPi * ula_.spacing_wavelengths * std::sin(sa.angle_rad);
    for (std::size_t i = 0; i < sa.num_elements; ++i) {
      const std::size_t n = sa.first_element + i;
      const double ang = kk * static_cast<double>(n);
      // conj of the steering phase -> beam toward sa.angle_rad.
      w[n] = sa.weight * delay_rot * cplx(std::cos(ang), std::sin(ang));
    }
  }
  return normalize_trp(w);
}

std::vector<double> compensating_delays(
    const std::vector<double>& path_delays_s) {
  MMR_EXPECTS(!path_delays_s.empty());
  const double max_delay =
      *std::max_element(path_delays_s.begin(), path_delays_s.end());
  std::vector<double> out(path_delays_s.size());
  for (std::size_t i = 0; i < path_delays_s.size(); ++i) {
    out[i] = max_delay - path_delays_s[i];
  }
  return out;
}

}  // namespace mmr::array
