// Beam codebooks. Real gNBs store a limited set of single-beam weights in
// FPGA memory (paper Section 5.1: "64-1024 angular directions") and
// synthesize multi-beams on the fly as linear sums. The codebook models
// that stored set and the angular quantization it induces.
#pragma once

#include <cstddef>
#include <memory>

#include "array/geometry.h"
#include "common/types.h"

namespace mmr::array {

class Codebook {
 public:
  /// Uniform grid of `size` beams covering [lo_rad, hi_rad]
  /// (paper scans a 120-degree sector).
  Codebook(const Ula& ula, double lo_rad, double hi_rad, std::size_t size);

  std::size_t size() const { return angles_.size(); }
  const Ula& ula() const { return ula_; }

  double angle(std::size_t idx) const;
  const CVec& weights(std::size_t idx) const;

  /// Index of the codebook beam closest to phi.
  std::size_t nearest(double phi_rad) const;

  /// Angular spacing between adjacent beams [rad].
  double angular_step() const;

 private:
  Ula ula_;
  RVec angles_;
  /// Shared, immutable weight vectors from the process-wide PatternCache:
  /// every sweep worker's codebook for the same sector aliases one copy.
  std::vector<std::shared_ptr<const CVec>> weights_;
};

}  // namespace mmr::array
