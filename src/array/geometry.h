// Antenna array geometry and steering vectors.
//
// The paper's testbed is an 8x8 uniform planar array beamforming only in
// azimuth (all elevation weights equal, Section 5.1), which is electrically
// equivalent to an 8-element ULA with 9 dB extra fixed gain. We model the
// general N-element half-wavelength ULA and expose element count as the
// knob the paper sweeps (8..64).
//
// Sign conventions follow the paper: the channel along departure angle phi
// contributes per-element phases  h[n] ~ exp(-j 2 pi (d/lambda) n sin phi)
// (paper Eq. 5, zero-indexed here), so the steering vector is
//   a(phi)[n] = exp(-j 2 pi (d/lambda) n sin phi)
// and the matched single-beam weight is conj(a(phi)) / sqrt(N) (Eq. 6).
#pragma once

#include <cmath>
#include <cstddef>

#include "common/angles.h"
#include "common/types.h"

namespace mmr::array {

struct Ula {
  std::size_t num_elements = 8;
  /// Element spacing in carrier wavelengths (paper: d = lambda/2).
  double spacing_wavelengths = 0.5;
};

/// Electrical phase step between adjacent elements toward phi:
/// 2 pi (d/lambda) sin(phi). Element n's steering phase is -step * n.
/// Inline so the scalar and batched paths evaluate the identical
/// expression (bit-compatibility of the dsp::kernels layer rests on it).
inline double steering_phase_step(const Ula& ula, double phi_rad) {
  return 2.0 * kPi * ula.spacing_wavelengths * std::sin(phi_rad);
}

/// Steering vector a(phi) at the carrier frequency; phi is the azimuth
/// departure angle in radians, measured from broadside.
CVec steering_vector(const Ula& ula, double phi_rad);

/// Frequency-aware steering vector for wideband (beam squint) analysis.
/// `freq_offset_hz` is the subcarrier offset from the carrier and
/// `carrier_hz` the carrier itself; the element phase scales with
/// (carrier + offset) / carrier.
CVec steering_vector_wideband(const Ula& ula, double phi_rad,
                              double carrier_hz, double freq_offset_hz);

/// Matched single-beam weights for direction phi (unit norm, paper Eq. 6).
CVec single_beam_weights(const Ula& ula, double phi_rad);

}  // namespace mmr::array
