// Beam-weight utilities: TRP normalization and hardware quantization.
//
// Real phased arrays apply weights with finite-resolution phase shifters
// and attenuators. The paper's array has 6-bit phase and 27 dB of gain
// control per element (Section 5.1); commercial 802.11ad parts get by with
// 2-bit phase and on/off amplitude. Both modes are modeled so the
// reproduction can show multi-beam patterns survive coarse quantization.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace mmr::array {

/// Hardware weight resolution.
struct QuantizationSpec {
  /// Number of phase-shifter bits (phase step = 2 pi / 2^bits). 0 = ideal.
  unsigned phase_bits = 6;
  /// Attenuator dynamic range below max gain [dB]; elements requested
  /// below (max - range) are clamped to the range floor.
  double gain_range_db = 27.0;
  /// Attenuator step [dB]; 0 = continuous amplitude within the range.
  double gain_step_db = 0.5;

  static QuantizationSpec ideal() { return {0, 1e9, 0.0}; }
  /// Paper testbed: 6-bit phase, 27 dB range (Section 5.1).
  static QuantizationSpec paper_testbed() { return {6, 27.0, 0.5}; }
  /// Commodity 802.11ad: 2-bit phase, element on/off only.
  static QuantizationSpec commodity_11ad() { return {2, 0.0, 0.0}; }
};

/// Scale weights to unit norm (conserves total radiated power, Eq. 10).
/// Requires a nonzero vector.
CVec normalize_trp(const CVec& weights);

/// Apply hardware quantization, then re-normalize to unit norm.
CVec quantize(const CVec& weights, const QuantizationSpec& spec);

/// Total radiated power proxy: ||w||^2 (should be 1 after normalization).
double total_radiated_power(const CVec& weights);

}  // namespace mmr::array
