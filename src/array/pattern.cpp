#include "array/pattern.h"

#include <cmath>

#include "array/pattern_cache.h"
#include "common/angles.h"
#include "common/error.h"
#include "common/units.h"
#include "dsp/kernels.h"

namespace mmr::array {

cplx array_factor(const Ula& ula, const CVec& weights, double phi_rad) {
  MMR_EXPECTS(weights.size() == ula.num_elements);
  // Fused phasor dot: no steering-vector temporary; same op order as the
  // materialized path (see dsp/kernels.h bit-compatibility contract).
  return dsp::dot_phasor_ramp(steering_phase_step(ula, phi_rad),
                              weights.data(), weights.size());
}

double power_gain(const Ula& ula, const CVec& weights, double phi_rad) {
  return std::norm(array_factor(ula, weights, phi_rad));
}

double power_gain_db(const Ula& ula, const CVec& weights, double phi_rad) {
  return to_db(power_gain(ula, weights, phi_rad));
}

PatternCut pattern_cut(const Ula& ula, const CVec& weights, double lo_rad,
                       double hi_rad, std::size_t points) {
  // Reject degenerate grids loudly (common::error) instead of returning an
  // empty or NaN-filled cut: points < 2 cannot span an interval, reversed
  // or non-finite bounds would silently poison every downstream figure.
  MMR_EXPECTS(points >= 2);
  MMR_EXPECTS(std::isfinite(lo_rad) && std::isfinite(hi_rad));
  MMR_EXPECTS(hi_rad > lo_rad);
  MMR_EXPECTS(weights.size() == ula.num_elements);
  PatternCut cut;
  cut.angle_rad.resize(points);
  for (std::size_t i = 0; i < points; ++i) {
    cut.angle_rad[i] = lo_rad + (hi_rad - lo_rad) * static_cast<double>(i) /
                                    static_cast<double>(points - 1);
  }
  cut.gain_db = power_gain_db_batch(ula, weights, cut.angle_rad);
  return cut;
}

double ula_relative_gain(std::size_t num_elements, double spacing_wavelengths,
                         double offset_rad) {
  MMR_EXPECTS(num_elements >= 1);
  const auto n = static_cast<double>(num_elements);
  // Electrical angle between adjacent elements for a target offset_rad from
  // beam center (small-angle form of sin(phi0+off)-sin(phi0) ~ off works in
  // the main lobe; we use the exact broadside form which is what the paper's
  // Eq. 20 states).
  const double psi = 2.0 * kPi * spacing_wavelengths * std::sin(offset_rad);
  if (std::abs(psi) < 1e-12) return 1.0;
  const double num = std::sin(n * psi / 2.0);
  const double den = n * std::sin(psi / 2.0);
  const double af = num / den;
  return af * af;
}

double ula_relative_gain_db(std::size_t num_elements,
                            double spacing_wavelengths, double offset_rad) {
  return to_db(ula_relative_gain(num_elements, spacing_wavelengths, offset_rad));
}

double half_power_beamwidth(std::size_t num_elements,
                            double spacing_wavelengths) {
  MMR_EXPECTS(num_elements >= 2);
  // Bisect for the -3 dB point on one side of the main lobe.
  double lo = 0.0;
  double hi = kPi / 2.0;
  // Shrink hi until inside the main lobe (gain still above -3 dB somewhere
  // before the first null at psi = 2 pi / N).
  const double first_null =
      std::asin(std::min(1.0, 1.0 / (spacing_wavelengths *
                                     static_cast<double>(num_elements))));
  hi = first_null;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (ula_relative_gain(num_elements, spacing_wavelengths, mid) > 0.5) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 2.0 * lo;  // full width
}

}  // namespace mmr::array
