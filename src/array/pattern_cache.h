// Batched beamforming evaluation + a process-wide memoizing pattern cache.
//
// Batched API: steering vectors / array factors / matched weights over
// whole angle or subcarrier grids in one call, backed by the dsp::kernels
// primitives (single contiguous SoA allocation, fused inner products, no
// per-angle temporaries). Results are bit-identical to the scalar
// functions in geometry.h / pattern.h — same per-element ops, same order.
//
// PatternCache: parallel sweep workers re-derive the same single-beam
// weights and pattern cuts thousands of times per campaign (every trial
// rebuilds the sector codebook; every probe resynthesizes multi-beams
// from the same trained angles). The cache memoizes those pure functions
// behind sharded mutexes so workers share one computation.
//
// Determinism: a cached value is the exact output of the scalar function
// for its key, so which worker computes it first is unobservable — sweep
// output stays bit-identical across --jobs, cache on or off (enforced by
// sweep_golden_test and kernel_differential_test).
//
// Key quantization: keys hash the raw IEEE-754 bit patterns of every
// double (geometry, angle, bounds, weights) — the finest "quantization"
// that can never alias two different inputs. Lossy rounding would break
// the bit-compatibility contract. Full keys are stored and compared on
// lookup, so hash collisions cannot return a wrong entry.
//
// Invalidation: entries are immutable and never stale (keys capture every
// input). A shard that exceeds kMaxEntriesPerShard is flushed wholesale —
// a size bound, not a correctness event; the next miss recomputes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "array/pattern.h"
#include "dsp/kernels.h"

namespace mmr::array {

/// Steering vectors a(phi_r) for every angle in `phis_rad` (rows = angles,
/// cols = elements), one contiguous SoA allocation.
dsp::CplxBatch steering_vector_batch(const Ula& ula, const RVec& phis_rad);

/// Wideband steering a(phi) at every subcarrier offset (rows = offsets):
/// the beam-squint family steering_vector_wideband evaluates one at a time.
dsp::CplxBatch steering_vector_wideband_batch(const Ula& ula, double phi_rad,
                                              double carrier_hz,
                                              const RVec& freq_offsets_hz);

/// Array factors a(phi_r)^T w over an angle grid, fused — no steering
/// vectors are materialized.
CVec array_factor_batch(const Ula& ula, const CVec& weights,
                        const RVec& phis_rad);

/// Power gains |a(phi_r)^T w|^2 in dB over an angle grid (the pattern_cut
/// inner loop).
RVec power_gain_db_batch(const Ula& ula, const CVec& weights,
                         const RVec& phis_rad);

/// Matched single-beam weights for every angle in `phis_rad`.
std::vector<CVec> single_beam_weights_batch(const Ula& ula,
                                            const RVec& phis_rad);

/// Process-wide memoization of pure beamforming derivations, shared by all
/// sweep workers. Thread-safe via sharded mutexes; values are immutable
/// shared_ptrs, so a returned result stays valid across clear()/flushes.
class PatternCache {
 public:
  static constexpr std::size_t kNumShards = 16;
  static constexpr std::size_t kMaxEntriesPerShard = 1024;

  /// The process-wide instance every rewired caller uses.
  static PatternCache& instance();

  PatternCache() = default;
  PatternCache(const PatternCache&) = delete;
  PatternCache& operator=(const PatternCache&) = delete;

  /// Memoized single_beam_weights(ula, phi_rad).
  std::shared_ptr<const CVec> beam_weights(const Ula& ula, double phi_rad);

  /// Memoized pattern_cut(ula, weights, lo, hi, points).
  std::shared_ptr<const PatternCut> cut(const Ula& ula, const CVec& weights,
                                        double lo_rad, double hi_rad,
                                        std::size_t points);

  /// Drop every entry (outstanding shared_ptrs stay valid).
  void clear();

  /// Disable to force every lookup to recompute (differential tests use
  /// this to compare cached vs uncached paths). Enabled by default.
  void set_enabled(bool enabled);
  bool enabled() const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  Stats stats() const;
  void reset_stats();

 private:
  struct Key {
    std::uint64_t kind = 0;  ///< 0 = beam weights, 1 = pattern cut
    std::uint64_t num_elements = 0;
    std::uint64_t spacing_bits = 0;
    /// Raw bit patterns of the remaining scalar inputs (angle, or
    /// lo/hi/points followed by the weight vector's re/im planes).
    std::vector<std::uint64_t> payload;
    bool operator==(const Key& other) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct Entry {
    std::shared_ptr<const CVec> vec;
    std::shared_ptr<const PatternCut> pattern;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<Key, Entry, KeyHash> map;
  };

  Shard& shard_for(const Key& key);
  /// Returns the cached entry or inserts `make()`'s result; nullopt-like
  /// bypass when disabled is handled by the callers.
  template <typename Make>
  Entry lookup_or_insert(const Key& key, const Make& make);

  std::array<Shard, kNumShards> shards_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace mmr::array
