// Delay phased array (paper Section 3.4, Figs. 6-8).
//
// A conventional phased array applies frequency-flat per-element phase
// shifts, so a multi-beam aimed at two paths with different propagation
// delays interferes constructively only at some frequencies. The delay
// phased array splits the aperture into per-beam subarrays, each behind a
// true-time-delay line, cancelling the inter-path delay difference and
// restoring a flat wideband response.
#pragma once

#include <cstddef>
#include <vector>

#include "array/geometry.h"
#include "common/types.h"

namespace mmr::array {

/// One subarray: contiguous element range, its beam direction, complex
/// weight (relative amplitude/phase) and its true-time-delay.
struct Subarray {
  std::size_t first_element = 0;
  std::size_t num_elements = 0;
  double angle_rad = 0.0;
  cplx weight{1.0, 0.0};
  double delay_s = 0.0;
};

class DelayPhasedArray {
 public:
  /// Split `ula` into `beams.size()` equal contiguous subarrays; beams[k]
  /// gives the per-beam steering angle.
  DelayPhasedArray(const Ula& ula, const std::vector<double>& beam_angles_rad);

  const Ula& ula() const { return ula_; }
  std::size_t num_beams() const { return subarrays_.size(); }
  const Subarray& subarray(std::size_t k) const;

  /// Set the relative complex weight of subarray k (constructive combining).
  void set_weight(std::size_t k, cplx w);

  /// Set the true-time delay applied to subarray k [s].
  void set_delay(std::size_t k, double delay_s);

  /// Effective per-element weights at a given baseband frequency offset
  /// from the carrier. Delay tau contributes exp(-j 2 pi (fc + f) tau);
  /// per-element phase shifters are frequency flat. Result is unit norm.
  CVec weights_at(double carrier_hz, double freq_offset_hz) const;

 private:
  Ula ula_;
  std::vector<Subarray> subarrays_;
};

/// Choose subarray delays that cancel the channel's inter-path delay
/// spread: subarray k gets (max path delay - path delay k), so all copies
/// arrive aligned (Eq. 17 generalized to K beams).
std::vector<double> compensating_delays(const std::vector<double>& path_delays_s);

}  // namespace mmr::array
