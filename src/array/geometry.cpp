#include "array/geometry.h"

#include <cmath>

#include "common/angles.h"
#include "common/error.h"
#include "dsp/kernels.h"

namespace mmr::array {

CVec steering_vector(const Ula& ula, double phi_rad) {
  MMR_EXPECTS(ula.num_elements >= 1);
  MMR_EXPECTS(ula.spacing_wavelengths > 0.0);
  CVec a(ula.num_elements);
  dsp::phasor_ramp(steering_phase_step(ula, phi_rad), ula.num_elements,
                   a.data());
  return a;
}

CVec steering_vector_wideband(const Ula& ula, double phi_rad,
                              double carrier_hz, double freq_offset_hz) {
  MMR_EXPECTS(carrier_hz > 0.0);
  // The physical element spacing is fixed; its electrical length scales
  // with the instantaneous frequency, producing beam squint.
  const double scale = (carrier_hz + freq_offset_hz) / carrier_hz;
  Ula scaled = ula;
  scaled.spacing_wavelengths = ula.spacing_wavelengths * scale;
  return steering_vector(scaled, phi_rad);
}

CVec single_beam_weights(const Ula& ula, double phi_rad) {
  CVec w = steering_vector(ula, phi_rad);
  const double inv_sqrt_n = 1.0 / std::sqrt(static_cast<double>(w.size()));
  for (auto& c : w) c = std::conj(c) * inv_sqrt_n;
  return w;
}

}  // namespace mmr::array
