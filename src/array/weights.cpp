#include "array/weights.h"

#include <algorithm>
#include <cmath>

#include "common/angles.h"
#include "common/error.h"
#include "common/units.h"

namespace mmr::array {

CVec normalize_trp(const CVec& weights) {
  MMR_EXPECTS(!weights.empty());
  double norm2 = 0.0;
  for (const cplx& w : weights) norm2 += std::norm(w);
  MMR_EXPECTS(norm2 > 0.0);
  const double inv = 1.0 / std::sqrt(norm2);
  CVec out(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) out[i] = weights[i] * inv;
  return out;
}

CVec quantize(const CVec& weights, const QuantizationSpec& spec) {
  MMR_EXPECTS(!weights.empty());
  double max_amp = 0.0;
  for (const cplx& w : weights) max_amp = std::max(max_amp, std::abs(w));
  MMR_EXPECTS(max_amp > 0.0);

  CVec out(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    double amp = std::abs(weights[i]);
    double phase = std::arg(weights[i]);

    if (spec.phase_bits > 0) {
      const double levels = std::pow(2.0, static_cast<double>(spec.phase_bits));
      const double step = 2.0 * kPi / levels;
      phase = std::round(phase / step) * step;
    }

    // Amplitude control is relative to the strongest element.
    double rel_db = to_db_amp(amp / max_amp);  // <= 0
    if (rel_db < -spec.gain_range_db) {
      // Below the attenuator range: clamp to the floor (the hardware cannot
      // fully mute an element short of switching it off; the paper's array
      // effectively can at 27 dB, commodity arrays turn elements off).
      amp = spec.gain_range_db <= 0.0
                ? (rel_db < -3.0 ? 0.0 : max_amp)  // on/off mode
                : max_amp * from_db_amp(-spec.gain_range_db);
    } else if (spec.gain_step_db > 0.0) {
      rel_db = std::round(rel_db / spec.gain_step_db) * spec.gain_step_db;
      amp = max_amp * from_db_amp(rel_db);
    } else if (spec.gain_range_db <= 0.0) {
      amp = max_amp;  // on/off mode, element on
    }

    out[i] = std::polar(amp, phase);
  }
  return normalize_trp(out);
}

double total_radiated_power(const CVec& weights) {
  double norm2 = 0.0;
  for (const cplx& w : weights) norm2 += std::norm(w);
  return norm2;
}

}  // namespace mmr::array
