// Environment description and image-method ray tracer.
//
// This replaces both the authors' physical rooms/streets and the Wireless
// Insite commercial ray tracer used in Appendix B. Walls are 2-D segments
// with materials; paths are the LOS ray plus one specular bounce per wall
// (mmWave reflection clusters are sparse -- Section 3.2 -- and the paper's
// algorithms only ever use the 2-3 strongest paths, so single-bounce
// tracing reproduces the relevant structure).
#pragma once

#include <vector>

#include "channel/geometry2d.h"
#include "channel/path.h"
#include "channel/pathloss.h"

namespace mmr::channel {

struct Wall {
  Segment segment;
  Material material;
  /// Set for walls that only reflect and never occlude (e.g. low furniture
  /// modeled as reflectors below the antenna plane).
  bool occludes = true;
};

struct Pose {
  Vec2 position{0.0, 0.0};
  /// Boresight direction of the antenna array [rad from +x axis].
  double orientation_rad = 0.0;
};

class Environment {
 public:
  explicit Environment(double carrier_hz);

  void add_wall(Wall wall);
  const std::vector<Wall>& walls() const { return walls_; }
  double carrier_hz() const { return carrier_hz_; }

  /// Trace LOS + specular bounce paths from tx to rx. Angles in the
  /// returned paths are relative to each terminal's boresight. Occluded
  /// rays are dropped; paths weaker than `min_rel_power_db` below the
  /// strongest are pruned (beam training would never pick them).
  /// `max_bounces` of 1 (default) traces single reflections -- the sparse
  /// regime the paper's algorithms assume; 2 adds wall-pair double
  /// bounces (corridor/canyon environments).
  std::vector<Path> trace(const Pose& tx, const Pose& rx,
                          double min_rel_power_db = 40.0,
                          int max_bounces = 1) const;

  /// Allocation-reusing form of trace(): clears `out` and fills it with
  /// exactly the paths (same values, same order) trace() would return,
  /// reusing `out`'s capacity. The per-tick re-trace in LinkWorld uses
  /// this so the trial hot path stops allocating once the path count has
  /// plateaued. trace() is a thin wrapper around this.
  void trace_into(std::vector<Path>& out, const Pose& tx, const Pose& rx,
                  double min_rel_power_db = 40.0, int max_bounces = 1) const;

  /// Canonical scenarios from the paper's evaluation (Section 6).
  /// 7 m x 10 m conference room: glass walls, whiteboard, metal cabinets.
  static Environment indoor_conference_room();
  /// Same room with only the glass wall as a strong reflector: the
  /// reflected path sits near the single-beam's first null, so a blocked
  /// single-beam link has NO sidelobe fallback and goes into outage --
  /// the regime of the paper's Fig. 16 / Fig. 18 blockage experiments.
  static Environment indoor_sparse();
  /// Outdoor street next to a large glass-walled building, 30-80 m links.
  static Environment outdoor_street();

 private:
  bool occluded(Vec2 p, Vec2 q, int ignore_wall_a, int ignore_wall_b) const;

  double carrier_hz_;
  std::vector<Wall> walls_;
};

}  // namespace mmr::channel
