#include "channel/mobility.h"

#include <algorithm>

#include "common/angles.h"
#include "common/error.h"

namespace mmr::channel {

LinearTranslation::LinearTranslation(Pose start, Vec2 velocity_mps)
    : start_(start), velocity_(velocity_mps) {}

Pose LinearTranslation::at(double t_s) const {
  Pose p = start_;
  p.position = start_.position + velocity_ * t_s;
  return p;
}

UniformRotation::UniformRotation(Pose start, double rate_rad_per_s)
    : start_(start), rate_(rate_rad_per_s) {}

Pose UniformRotation::at(double t_s) const {
  Pose p = start_;
  p.orientation_rad = wrap_pi(start_.orientation_rad + rate_ * t_s);
  return p;
}

TranslateAndRotate::TranslateAndRotate(Pose start, Vec2 velocity_mps,
                                       double rate_rad_per_s)
    : start_(start), velocity_(velocity_mps), rate_(rate_rad_per_s) {}

Pose TranslateAndRotate::at(double t_s) const {
  Pose p;
  p.position = start_.position + velocity_ * t_s;
  p.orientation_rad = wrap_pi(start_.orientation_rad + rate_ * t_s);
  return p;
}

WaypointPath::WaypointPath(std::vector<Waypoint> waypoints)
    : waypoints_(std::move(waypoints)) {
  MMR_EXPECTS(waypoints_.size() >= 2);
  MMR_EXPECTS(std::is_sorted(
      waypoints_.begin(), waypoints_.end(),
      [](const Waypoint& a, const Waypoint& b) { return a.t_s < b.t_s; }));
}

Pose WaypointPath::at(double t_s) const {
  if (t_s <= waypoints_.front().t_s) return waypoints_.front().pose;
  if (t_s >= waypoints_.back().t_s) return waypoints_.back().pose;
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    if (t_s > waypoints_[i].t_s) continue;
    const Waypoint& a = waypoints_[i - 1];
    const Waypoint& b = waypoints_[i];
    const double u = (t_s - a.t_s) / (b.t_s - a.t_s);
    Pose p;
    p.position = a.pose.position + (b.pose.position - a.pose.position) * u;
    const double dori =
        wrap_pi(b.pose.orientation_rad - a.pose.orientation_rad);
    p.orientation_rad = wrap_pi(a.pose.orientation_rad + dori * u);
    return p;
  }
  return waypoints_.back().pose;  // unreachable
}

}  // namespace mmr::channel
