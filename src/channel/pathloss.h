// mmWave path-loss models: free-space loss plus frequency-dependent
// atmospheric absorption (the 60 GHz oxygen line is what makes Appendix B's
// 28-vs-60 GHz comparison interesting), and material reflection losses
// calibrated to the paper's measurement study (Fig. 4: median reflector
// attenuation 5 dB outdoor, 7.2 dB indoor).
#pragma once

#include <string>

namespace mmr::channel {

/// Free-space path loss [dB] at distance d [m] and carrier f [Hz].
double free_space_path_loss_db(double distance_m, double carrier_hz);

/// Atmospheric (oxygen) absorption [dB] over distance d at carrier f.
/// Uses the tabulated constants for 28/60 GHz; interpolates elsewhere.
double atmospheric_absorption_db(double distance_m, double carrier_hz);

/// Total propagation loss [dB]: FSPL + absorption.
double propagation_loss_db(double distance_m, double carrier_hz);

/// Reflection materials with single-bounce loss [dB] relative to specular
/// mirror. Values follow the measurement studies cited in Section 3.2.
struct Material {
  std::string name;
  double reflection_loss_db = 6.0;

  static Material metal() { return {"metal", 1.0}; }
  static Material glass() { return {"tinted-glass", 4.0}; }
  static Material concrete() { return {"concrete", 6.0}; }
  static Material drywall() { return {"drywall", 9.0}; }
  static Material wood() { return {"wood", 11.0}; }
};

}  // namespace mmr::channel
