#include "channel/geometry2d.h"

#include <algorithm>
#include <cmath>

namespace mmr::channel {

double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }

double cross(Vec2 a, Vec2 b) { return a.x * b.y - a.y * b.x; }

double length(Vec2 v) { return std::hypot(v.x, v.y); }

double distance(Vec2 a, Vec2 b) { return length(b - a); }

Vec2 normalized(Vec2 v) {
  const double len = length(v);
  if (len == 0.0) return {0.0, 0.0};
  return {v.x / len, v.y / len};
}

double heading(Vec2 v) { return std::atan2(v.y, v.x); }

Vec2 mirror_across(const Segment& seg, Vec2 p) {
  const Vec2 d = normalized(seg.b - seg.a);
  const Vec2 ap = p - seg.a;
  const double along = dot(ap, d);
  const Vec2 foot = seg.a + d * along;
  return foot + (foot - p);
}

std::optional<Vec2> intersect(const Segment& seg, Vec2 p, Vec2 q) {
  const Vec2 r = seg.b - seg.a;
  const Vec2 s = q - p;
  const double denom = cross(r, s);
  if (std::abs(denom) < 1e-12) return std::nullopt;  // parallel
  const Vec2 ap = p - seg.a;
  const double t = cross(ap, s) / denom;  // along seg
  const double u = cross(ap, r) / denom;  // along pq
  constexpr double kEps = 1e-9;
  if (t < -kEps || t > 1.0 + kEps || u < -kEps || u > 1.0 + kEps) {
    return std::nullopt;
  }
  return seg.a + r * t;
}

double point_segment_distance(const Segment& seg, Vec2 p) {
  const Vec2 d = seg.b - seg.a;
  const double len2 = dot(d, d);
  if (len2 == 0.0) return distance(seg.a, p);
  const double t = std::clamp(dot(p - seg.a, d) / len2, 0.0, 1.0);
  return distance(seg.a + d * t, p);
}

}  // namespace mmr::channel
