#include "channel/blockage.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mmr::channel {

GeometricBlocker::GeometricBlocker(Config config) : config_(config) {
  MMR_EXPECTS(config_.radius_m > 0.0);
  MMR_EXPECTS(config_.ramp_margin_m >= 0.0);
  MMR_EXPECTS(config_.depth_db >= 0.0);
}

Vec2 GeometricBlocker::position_at(double t_s) const {
  return config_.start + config_.velocity * t_s;
}

double GeometricBlocker::attenuation_db(double t_s, Vec2 tx, Vec2 rx,
                                        const Vec2* reflection_point) const {
  const Vec2 pos = position_at(t_s);
  // Distance from the blocker to the (possibly two-legged) ray.
  double dist;
  if (reflection_point == nullptr) {
    dist = point_segment_distance({tx, rx}, pos);
  } else {
    dist = std::min(point_segment_distance({tx, *reflection_point}, pos),
                    point_segment_distance({*reflection_point, rx}, pos));
  }
  if (dist >= config_.radius_m + config_.ramp_margin_m) return 0.0;
  if (dist <= config_.radius_m) return config_.depth_db;
  // Linear-in-dB ramp across the margin: matches the measured fast but
  // finite onset (~10 dB within 10 OFDM symbols once the edge crosses).
  const double frac = (config_.radius_m + config_.ramp_margin_m - dist) /
                      config_.ramp_margin_m;
  return config_.depth_db * frac;
}

void apply_blockers(std::vector<Path>& paths,
                    const std::vector<GeometricBlocker>& blockers, double t_s,
                    Vec2 tx, Vec2 rx,
                    const std::vector<Vec2>& reflection_points) {
  MMR_EXPECTS(reflection_points.size() == paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    double total = 0.0;
    const Vec2* refl = paths[i].is_los ? nullptr : &reflection_points[i];
    for (const auto& blocker : blockers) {
      total += blocker.attenuation_db(t_s, tx, rx, refl);
    }
    paths[i].blockage_db = total;
  }
}

BlockageEventProcess::BlockageEventProcess(Config config, Rng rng)
    : config_(config), rng_(rng) {
  MMR_EXPECTS(config_.event_rate_hz >= 0.0);
  MMR_EXPECTS(config_.max_duration_s >= config_.min_duration_s);
}

void BlockageEventProcess::generate(double horizon_s, std::size_t num_paths) {
  MMR_EXPECTS(num_paths >= 1);
  events_.clear();
  if (config_.event_rate_hz <= 0.0) return;
  double t = rng_.exponential(1.0 / config_.event_rate_hz);
  while (t < horizon_s) {
    Event ev;
    ev.start_s = t;
    ev.duration_s =
        rng_.uniform(config_.min_duration_s, config_.max_duration_s);
    ev.depth_db = config_.depth_db;
    // Primary target.
    std::size_t primary = 0;
    if (num_paths > 1 && !rng_.bernoulli(config_.los_bias)) {
      primary = 1 + rng_.uniform_index(num_paths - 1);
    }
    ev.paths.push_back(primary);
    // Occasional correlated second blockage.
    if (num_paths > 1 && rng_.bernoulli(config_.correlated_prob)) {
      std::size_t second = rng_.uniform_index(num_paths);
      if (second != primary) ev.paths.push_back(second);
    }
    events_.push_back(std::move(ev));
    t += rng_.exponential(1.0 / config_.event_rate_hz);
  }
}

double BlockageEventProcess::attenuation_db(double t_s,
                                            std::size_t path_idx) const {
  double total = 0.0;
  for (const Event& ev : events_) {
    if (t_s < ev.start_s || t_s > ev.start_s + ev.duration_s) continue;
    if (std::find(ev.paths.begin(), ev.paths.end(), path_idx) ==
        ev.paths.end()) {
      continue;
    }
    // Ramp in and out over onset_s.
    double frac = 1.0;
    if (config_.onset_s > 0.0) {
      const double in = (t_s - ev.start_s) / config_.onset_s;
      const double out = (ev.start_s + ev.duration_s - t_s) / config_.onset_s;
      frac = std::clamp(std::min(in, out), 0.0, 1.0);
    }
    total += ev.depth_db * frac;
  }
  return total;
}

}  // namespace mmr::channel
