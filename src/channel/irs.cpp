#include "channel/irs.h"

#include <cmath>

#include "channel/pathloss.h"
#include "common/angles.h"
#include "common/constants.h"
#include "common/error.h"
#include "common/units.h"

namespace mmr::channel {

Path irs_path(const IrsPanel& panel, const Pose& tx, const Pose& rx,
              double carrier_hz) {
  MMR_EXPECTS(carrier_hz > 0.0);
  Path p;
  p.is_los = false;
  p.reflector_id = -2;  // distinguishes engineered from natural reflectors
  p.reflection_point = panel.position;

  const double d1 = distance(tx.position, panel.position);
  const double d2 = distance(panel.position, rx.position);
  if (d1 < 1e-6 || d2 < 1e-6 || !panel.configured) {
    p.gain = cplx{};
    return p;
  }

  p.aod_rad = wrap_pi(heading(panel.position - tx.position) -
                      tx.orientation_rad);
  p.aoa_rad = wrap_pi(heading(panel.position - rx.position) -
                      rx.orientation_rad);
  p.delay_s = (d1 + d2) / kSpeedOfLight;

  // Front-hemisphere element pattern at the gNB, like any traced path.
  const double elem = std::cos(p.aod_rad);
  if (elem <= 0.0) {
    p.gain = cplx{};
    return p;
  }

  // Product-distance re-radiation: both hops pay full free-space loss;
  // the panel's aperture gain buys part of it back.
  const double loss_db = free_space_path_loss_db(d1, carrier_hz) +
                         free_space_path_loss_db(d2, carrier_hz) -
                         panel.gain_db +
                         atmospheric_absorption_db(d1 + d2, carrier_hz);
  const double phase =
      -2.0 * kPi * carrier_hz * p.delay_s;
  p.gain = std::polar(from_db_amp(-loss_db) * elem,
                      wrap_pi(std::fmod(phase, 2.0 * kPi)));
  return p;
}

}  // namespace mmr::channel
