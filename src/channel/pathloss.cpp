#include "channel/pathloss.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/units.h"

namespace mmr::channel {

double free_space_path_loss_db(double distance_m, double carrier_hz) {
  MMR_EXPECTS(distance_m > 0.0);
  MMR_EXPECTS(carrier_hz > 0.0);
  // Friis: 20 log10(4 pi d f / c).
  const double ratio = 4.0 * 3.14159265358979323846 * distance_m * carrier_hz /
                       kSpeedOfLight;
  return 20.0 * std::log10(ratio);
}

double atmospheric_absorption_db(double distance_m, double carrier_hz) {
  MMR_EXPECTS(distance_m >= 0.0);
  // Piecewise-linear in frequency between the two tabulated anchors; good
  // enough for the 28-vs-60 GHz comparison this library runs.
  double db_per_km;
  if (carrier_hz <= kCarrier28GHz) {
    db_per_km = kOxygenAbsorption28GHzDbPerKm;
  } else if (carrier_hz >= kCarrier60GHz) {
    db_per_km = kOxygenAbsorption60GHzDbPerKm;
  } else {
    const double t =
        (carrier_hz - kCarrier28GHz) / (kCarrier60GHz - kCarrier28GHz);
    db_per_km = kOxygenAbsorption28GHzDbPerKm +
                t * (kOxygenAbsorption60GHzDbPerKm -
                     kOxygenAbsorption28GHzDbPerKm);
  }
  return db_per_km * distance_m / 1000.0;
}

double propagation_loss_db(double distance_m, double carrier_hz) {
  return free_space_path_loss_db(distance_m, carrier_hz) +
         atmospheric_absorption_db(distance_m, carrier_hz);
}

}  // namespace mmr::channel
