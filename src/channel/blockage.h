// Blockage models.
//
// Two levels of fidelity:
//  * GeometricBlocker: a human-sized moving obstacle whose position is
//    checked against each path's ray every step; attenuation ramps in dB
//    as the body enters the Fresnel zone (reproduces Fig. 16's walk-through
//    traces and the ~10 dB / 10-symbol onset rate of Section 4.1).
//  * BlockageEventProcess: a stochastic injector for end-to-end runs
//    (Section 6.2: events of 100-500 ms uniformly distributed, targeting
//    the LOS path most often).
#pragma once

#include <vector>

#include "channel/geometry2d.h"
#include "channel/path.h"
#include "common/rng.h"

namespace mmr::channel {

/// Human blocker: vertical cylinder walking along a straight line.
class GeometricBlocker {
 public:
  struct Config {
    Vec2 start{0.0, 0.0};
    Vec2 velocity{1.0, 0.0};  ///< [m/s]
    double radius_m = 0.25;   ///< body radius
    /// Extra clearance over which attenuation ramps from 0 to full [m].
    /// Small: mmWave shadowing by a body edge is abrupt (the paper
    /// measures ~10 dB within 10 OFDM symbols).
    double ramp_margin_m = 0.03;
    /// Attenuation when fully in the path [dB] (measurements: 20-30 dB).
    double depth_db = 26.0;
  };

  explicit GeometricBlocker(Config config);

  Vec2 position_at(double t_s) const;

  /// Attenuation [dB] this blocker imposes on a path from tx via an
  /// optional reflection point to rx at time t.
  double attenuation_db(double t_s, Vec2 tx, Vec2 rx,
                        const Vec2* reflection_point) const;

 private:
  Config config_;
};

/// Apply a set of blockers to traced paths at time t: fills in
/// Path::blockage_db. Reflection points must be recomputable from the
/// environment; here the caller passes them per path (empty pointer = LOS).
void apply_blockers(std::vector<Path>& paths,
                    const std::vector<GeometricBlocker>& blockers, double t_s,
                    Vec2 tx, Vec2 rx,
                    const std::vector<Vec2>& reflection_points);

/// Stochastic blockage events for Monte-Carlo end-to-end runs.
class BlockageEventProcess {
 public:
  struct Config {
    double event_rate_hz = 1.0;       ///< mean events per second
    double min_duration_s = 0.1;      ///< paper: 100 ms
    double max_duration_s = 0.5;      ///< paper: 500 ms
    double depth_db = 26.0;
    double onset_s = 0.005;           ///< dB ramp time
    /// Probability an event hits the LOS path (else a random NLOS path).
    double los_bias = 0.7;
    /// Probability a second path is blocked by the same event (correlated
    /// blockage; Section 3.1 discusses this case).
    double correlated_prob = 0.05;
  };

  BlockageEventProcess(Config config, Rng rng);

  /// Pre-generate all events within [0, horizon_s) for `num_paths` paths.
  void generate(double horizon_s, std::size_t num_paths);

  /// Attenuation [dB] on path `path_idx` at time t.
  double attenuation_db(double t_s, std::size_t path_idx) const;

  struct Event {
    double start_s = 0.0;
    double duration_s = 0.0;
    double depth_db = 0.0;
    std::vector<std::size_t> paths;
  };
  const std::vector<Event>& events() const { return events_; }

 private:
  Config config_;
  Rng rng_;
  std::vector<Event> events_;
};

}  // namespace mmr::channel
