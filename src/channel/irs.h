// Intelligent reflecting surface (IRS) model -- the paper's future-work
// proposal (Section 8): "intelligent reflecting surfaces are deployed in
// the environment to engineer strong reflections that improve the
// throughput and reliability of mmWave links".
//
// An IRS re-radiates rather than specularly reflects, so its path obeys
// the product-distance law (FSPL(d1) + FSPL(d2) in dB) recovered by the
// panel's configurable aperture gain. A well-placed panel with a
// realistic gain turns a reflection-poor room into a multi-beam-friendly
// one.
#pragma once

#include "channel/geometry2d.h"
#include "channel/environment.h"
#include "channel/path.h"

namespace mmr::channel {

struct IrsPanel {
  Vec2 position{0.0, 0.0};
  /// Combined re-radiation gain of the configured panel [dB]. A panel of
  /// N elements beamforms on BOTH hops, so its gain scales as N^2: a
  /// ~1000-element sheet reaches ~60 dB, which is what it takes for the
  /// product-distance law to land the engineered path within a few dB of
  /// a specular wall reflection at room scale.
  double gain_db = 60.0;
  /// True when the panel is configured to serve this link; an
  /// unconfigured panel scatters diffusely and is ignored.
  bool configured = true;
};

/// Build the TX -> panel -> RX path at the given carrier. The path's
/// reflection point is the panel position (so geometric blockers interact
/// with it like any reflected path). Returns a zero-gain path if the
/// panel is behind either terminal's front hemisphere.
Path irs_path(const IrsPanel& panel, const Pose& tx, const Pose& rx,
              double carrier_hz);

}  // namespace mmr::channel
