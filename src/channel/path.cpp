#include "channel/path.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace mmr::channel {

cplx Path::effective_gain() const {
  return gain * from_db_amp(-blockage_db);
}

double Path::effective_power() const { return std::norm(effective_gain()); }

std::vector<Path> sorted_by_power(std::vector<Path> paths) {
  std::sort(paths.begin(), paths.end(), [](const Path& a, const Path& b) {
    return a.effective_power() > b.effective_power();
  });
  return paths;
}

}  // namespace mmr::channel
