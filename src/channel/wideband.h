// Wideband channel synthesis: from traced paths + beam weights to the
// observable quantities every algorithm consumes — per-subcarrier CSI
// (paper Eq. 26 projected through the beamformer) and sampled CIR
// (paper Eq. 22).
#pragma once

#include <functional>

#include "array/geometry.h"
#include "channel/path.h"
#include "common/types.h"

namespace mmr::channel {

/// OFDM-style frequency grid for channel evaluation.
struct WidebandSpec {
  double carrier_hz = 28.0e9;
  double bandwidth_hz = 400.0e6;
  std::size_t num_subcarriers = 64;

  double subcarrier_spacing() const {
    return bandwidth_hz / static_cast<double>(num_subcarriers);
  }
  /// Baseband frequency of subcarrier k, centered on the carrier.
  double freq_offset(std::size_t k) const {
    return (static_cast<double>(k) -
            (static_cast<double>(num_subcarriers) - 1.0) / 2.0) *
           subcarrier_spacing();
  }
  /// Nyquist sample period of the baseband (1/B).
  double sample_period() const { return 1.0 / bandwidth_hz; }
};

/// Receive front end: quasi-omni (paper Sections 3-6.1) or directional
/// ULA (Section 4.4).
struct RxFrontend {
  bool directional = false;
  array::Ula ula{};
  CVec weights{};        ///< used when directional
  double omni_gain = 1.0;

  /// Complex response toward arrival angle theta.
  cplx response(double aoa_rad) const;

  static RxFrontend omni(double gain = 1.0);
  static RxFrontend beam(const array::Ula& ula, const CVec& weights);
};

/// Complex amplitude of one path as seen through the TX beamformer and RX
/// front end at the carrier: alpha_l = g_l * AF_tx(phi_l) * AF_rx(theta_l).
cplx path_amplitude(const Path& path, const array::Ula& tx_ula,
                    const CVec& tx_weights, const RxFrontend& rx);

/// Per-subcarrier effective scalar channel H(k). Delays are referenced to
/// the earliest path (receiver timing lock), so H carries only the excess
/// delay structure.
CVec effective_csi(const std::vector<Path>& paths, const array::Ula& tx_ula,
                   const CVec& tx_weights, const WidebandSpec& spec,
                   const RxFrontend& rx);

/// Same, but with frequency-dependent TX weights (delay phased array):
/// weights_at(freq_offset_hz) -> per-element weights.
CVec effective_csi_freq_weights(
    const std::vector<Path>& paths, const array::Ula& tx_ula,
    const std::function<CVec(double)>& weights_at, const WidebandSpec& spec,
    const RxFrontend& rx);

/// Sampled channel impulse response (paper Eq. 22): num_taps taps at the
/// Nyquist period, each path contributing alpha_l * sinc(B(n Ts - tau_l)),
/// delays referenced to the earliest path. `timing_offset_s` shifts every
/// arrival (receiver SFO/timing error).
CVec effective_cir(const std::vector<Path>& paths, const array::Ula& tx_ula,
                   const CVec& tx_weights, const WidebandSpec& spec,
                   std::size_t num_taps, const RxFrontend& rx,
                   double timing_offset_s = 0.0);

/// Allocation-free form of effective_csi: writes H(k) into
/// `csi[0..spec.num_subcarriers)`. `freqs` must hold spec.freq_offset(k)
/// for each k (see fill_freq_grid) -- callers cache the grid because it
/// depends only on the spec. Identical floating-point operations in
/// identical order to effective_csi; effective_csi delegates here.
void effective_csi_into(const std::vector<Path>& paths,
                        const array::Ula& tx_ula, const CVec& tx_weights,
                        const WidebandSpec& spec, const RxFrontend& rx,
                        const double* freqs, cplx* csi);

/// Write spec.freq_offset(k) for k in [0, num_subcarriers) into `freqs`.
void fill_freq_grid(const WidebandSpec& spec, double* freqs);

/// Mean received power across subcarriers (linear) for given weights.
double received_power(const std::vector<Path>& paths,
                      const array::Ula& tx_ula, const CVec& tx_weights,
                      const WidebandSpec& spec, const RxFrontend& rx);

/// Allocation-free form of received_power using a caller-provided cached
/// frequency grid and CSI scratch buffer (both of length
/// spec.num_subcarriers; `csi` is overwritten). Bit-identical result to
/// received_power.
double received_power_prepared(const std::vector<Path>& paths,
                               const array::Ula& tx_ula,
                               const CVec& tx_weights,
                               const WidebandSpec& spec, const RxFrontend& rx,
                               const double* freqs, cplx* csi);

/// Narrowband per-antenna channel vector h[n] at the carrier (paper
/// Eq. 7 / Eq. 25): what the oracle beamformer conjugates.
CVec per_antenna_channel(const std::vector<Path>& paths,
                         const array::Ula& tx_ula, const RxFrontend& rx);

}  // namespace mmr::channel
