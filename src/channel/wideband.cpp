#include "channel/wideband.h"

#include <algorithm>
#include <cmath>

#include "array/pattern.h"
#include "common/angles.h"
#include "common/error.h"
#include "dsp/kernels.h"
#include "dsp/sinc.h"

namespace mmr::channel {
namespace {

double min_delay(const std::vector<Path>& paths) {
  MMR_EXPECTS(!paths.empty());
  double d = paths.front().delay_s;
  for (const Path& p : paths) d = std::min(d, p.delay_s);
  return d;
}

RVec freq_grid(const WidebandSpec& spec) {
  RVec freqs(spec.num_subcarriers);
  fill_freq_grid(spec, freqs.data());
  return freqs;
}

}  // namespace

void fill_freq_grid(const WidebandSpec& spec, double* freqs) {
  for (std::size_t k = 0; k < spec.num_subcarriers; ++k) {
    freqs[k] = spec.freq_offset(k);
  }
}

cplx RxFrontend::response(double aoa_rad) const {
  if (!directional) return cplx{omni_gain, 0.0};
  return array::array_factor(ula, weights, aoa_rad);
}

RxFrontend RxFrontend::omni(double gain) {
  RxFrontend rx;
  rx.directional = false;
  rx.omni_gain = gain;
  return rx;
}

RxFrontend RxFrontend::beam(const array::Ula& ula, const CVec& weights) {
  MMR_EXPECTS(weights.size() == ula.num_elements);
  RxFrontend rx;
  rx.directional = true;
  rx.ula = ula;
  rx.weights = weights;
  return rx;
}

cplx path_amplitude(const Path& path, const array::Ula& tx_ula,
                    const CVec& tx_weights, const RxFrontend& rx) {
  return path.effective_gain() *
         array::array_factor(tx_ula, tx_weights, path.aod_rad) *
         rx.response(path.aoa_rad);
}

CVec effective_csi(const std::vector<Path>& paths, const array::Ula& tx_ula,
                   const CVec& tx_weights, const WidebandSpec& spec,
                   const RxFrontend& rx) {
  CVec csi(spec.num_subcarriers);
  // Subcarrier grid computed once, shared across paths; the per-path delay
  // rotation is the batched kernel (same op order as the scalar loop).
  const RVec freqs = freq_grid(spec);
  effective_csi_into(paths, tx_ula, tx_weights, spec, rx, freqs.data(),
                     csi.data());
  return csi;
}

void effective_csi_into(const std::vector<Path>& paths,
                        const array::Ula& tx_ula, const CVec& tx_weights,
                        const WidebandSpec& spec, const RxFrontend& rx,
                        const double* freqs, cplx* csi) {
  MMR_EXPECTS(!paths.empty());
  const double t0 = min_delay(paths);
  for (std::size_t k = 0; k < spec.num_subcarriers; ++k) csi[k] = cplx{};
  for (const Path& p : paths) {
    const cplx alpha = path_amplitude(p, tx_ula, tx_weights, rx);
    dsp::accumulate_delay_phasors(alpha, freqs, p.delay_s - t0, csi,
                                  spec.num_subcarriers);
  }
}

CVec effective_csi_freq_weights(
    const std::vector<Path>& paths, const array::Ula& tx_ula,
    const std::function<CVec(double)>& weights_at, const WidebandSpec& spec,
    const RxFrontend& rx) {
  MMR_EXPECTS(!paths.empty());
  const double t0 = min_delay(paths);
  CVec csi(spec.num_subcarriers, cplx{});
  const RVec freqs = freq_grid(spec);
  for (std::size_t k = 0; k < spec.num_subcarriers; ++k) {
    const double f = freqs[k];
    const CVec w = weights_at(f);
    cplx acc{};
    for (const Path& p : paths) {
      const cplx alpha = p.effective_gain() *
                         array::array_factor(tx_ula, w, p.aod_rad) *
                         rx.response(p.aoa_rad);
      const double ang = -2.0 * kPi * f * (p.delay_s - t0);
      acc += alpha * cplx(std::cos(ang), std::sin(ang));
    }
    csi[k] = acc;
  }
  return csi;
}

CVec effective_cir(const std::vector<Path>& paths, const array::Ula& tx_ula,
                   const CVec& tx_weights, const WidebandSpec& spec,
                   std::size_t num_taps, const RxFrontend& rx,
                   double timing_offset_s) {
  MMR_EXPECTS(!paths.empty());
  MMR_EXPECTS(num_taps >= 1);
  const double t0 = min_delay(paths);
  const double ts = spec.sample_period();
  CVec cir(num_taps, cplx{});
  for (const Path& p : paths) {
    const cplx alpha = path_amplitude(p, tx_ula, tx_weights, rx);
    const double excess = p.delay_s - t0 + timing_offset_s;
    for (std::size_t n = 0; n < num_taps; ++n) {
      cir[n] += alpha *
                dsp::sampled_sinc_tap(n, ts, spec.bandwidth_hz, excess);
    }
  }
  return cir;
}

double received_power(const std::vector<Path>& paths,
                      const array::Ula& tx_ula, const CVec& tx_weights,
                      const WidebandSpec& spec, const RxFrontend& rx) {
  const CVec csi = effective_csi(paths, tx_ula, tx_weights, spec, rx);
  double acc = 0.0;
  for (const cplx& h : csi) acc += std::norm(h);
  return acc / static_cast<double>(csi.size());
}

double received_power_prepared(const std::vector<Path>& paths,
                               const array::Ula& tx_ula,
                               const CVec& tx_weights,
                               const WidebandSpec& spec, const RxFrontend& rx,
                               const double* freqs, cplx* csi) {
  effective_csi_into(paths, tx_ula, tx_weights, spec, rx, freqs, csi);
  double acc = 0.0;
  for (std::size_t k = 0; k < spec.num_subcarriers; ++k) {
    acc += std::norm(csi[k]);
  }
  return acc / static_cast<double>(spec.num_subcarriers);
}

CVec per_antenna_channel(const std::vector<Path>& paths,
                         const array::Ula& tx_ula, const RxFrontend& rx) {
  CVec h(tx_ula.num_elements, cplx{});
  for (const Path& p : paths) {
    const cplx g = p.effective_gain() * rx.response(p.aoa_rad);
    // Fused steering accumulate: h[n] += g * a(aod)[n] without the
    // steering-vector temporary.
    dsp::axpy_phasor_ramp(g, array::steering_phase_step(tx_ula, p.aod_rad),
                          h.data(), h.size());
  }
  return h;
}

}  // namespace mmr::channel
