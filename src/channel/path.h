// A propagation path: the unit the whole system reasons about. Beam
// training discovers path angles, constructive multi-beam matches their
// relative amplitude/phase, super-resolution separates them by ToF, and
// blockage acts on them individually.
#pragma once

#include <vector>

#include "channel/geometry2d.h"
#include "common/types.h"

namespace mmr::channel {

struct Path {
  /// Departure angle at the gNB array [rad from boresight].
  double aod_rad = 0.0;
  /// Arrival angle at the UE [rad from UE boresight].
  double aoa_rad = 0.0;
  /// Complex gain: |gain| is the amplitude attenuation (linear, includes
  /// path loss and reflection loss), arg(gain) the propagation phase.
  cplx gain{1.0, 0.0};
  /// Time of flight [s].
  double delay_s = 0.0;
  /// Extra time-varying attenuation [dB] imposed by blockers (>= 0).
  double blockage_db = 0.0;
  /// True for the direct (line-of-sight) path.
  bool is_los = false;
  /// Index of the reflecting wall in the environment (-1 for LOS).
  int reflector_id = -1;
  /// Specular reflection point (meaningful only when !is_los); used by
  /// geometric blockers to test ray occlusion.
  Vec2 reflection_point{0.0, 0.0};

  /// Gain actually experienced right now (includes blockage).
  cplx effective_gain() const;
  /// Power of the effective gain (linear).
  double effective_power() const;
};

/// Sort a copy of `paths` by descending effective power.
std::vector<Path> sorted_by_power(std::vector<Path> paths);

}  // namespace mmr::channel
