#include "channel/environment.h"

#include <algorithm>
#include <cmath>

#include "common/angles.h"
#include "common/constants.h"
#include "common/error.h"
#include "common/units.h"

namespace mmr::channel {
namespace {

// Angle of the ray direction `dir` relative to a terminal's boresight.
double relative_angle(const Pose& pose, Vec2 dir) {
  return wrap_pi(heading(dir) - pose.orientation_rad);
}

// Patch-element gain: the array radiates only into the front half-space,
// with the usual ~cosine roll-off. Without this, a ULA's array factor is
// front-back symmetric and rear-wall reflections alias onto forward beams.
double element_gain(double aod_rad) {
  const double g = std::cos(aod_rad);
  return g > 0.0 ? g : 0.0;
}

cplx path_gain(double path_length_m, double extra_loss_db, double carrier_hz) {
  const double loss_db =
      propagation_loss_db(path_length_m, carrier_hz) + extra_loss_db;
  const double amp = from_db_amp(-loss_db);
  const double tau = path_length_m / kSpeedOfLight;
  const double phase = -2.0 * kPi * carrier_hz * tau;
  // Phase wraps of fc*tau exceed double precision comfort for long links;
  // only the wrapped value matters.
  return std::polar(amp, wrap_pi(std::fmod(phase, 2.0 * kPi)));
}

}  // namespace

Environment::Environment(double carrier_hz) : carrier_hz_(carrier_hz) {
  MMR_EXPECTS(carrier_hz > 0.0);
}

void Environment::add_wall(Wall wall) { walls_.push_back(std::move(wall)); }

bool Environment::occluded(Vec2 p, Vec2 q, int ignore_wall_a,
                           int ignore_wall_b) const {
  for (std::size_t i = 0; i < walls_.size(); ++i) {
    if (static_cast<int>(i) == ignore_wall_a ||
        static_cast<int>(i) == ignore_wall_b) {
      continue;
    }
    if (!walls_[i].occludes) continue;
    const auto hit = intersect(walls_[i].segment, p, q);
    if (!hit) continue;
    // Endpoint touches (ray grazing the wall it starts next to) don't count.
    if (distance(*hit, p) < 1e-6 || distance(*hit, q) < 1e-6) continue;
    return true;
  }
  return false;
}

std::vector<Path> Environment::trace(const Pose& tx, const Pose& rx,
                                     double min_rel_power_db,
                                     int max_bounces) const {
  std::vector<Path> paths;
  trace_into(paths, tx, rx, min_rel_power_db, max_bounces);
  return paths;
}

void Environment::trace_into(std::vector<Path>& paths, const Pose& tx,
                             const Pose& rx, double min_rel_power_db,
                             int max_bounces) const {
  MMR_EXPECTS(max_bounces >= 1 && max_bounces <= 2);
  paths.clear();

  // LOS.
  if (!occluded(tx.position, rx.position, -1, -1)) {
    const double d = distance(tx.position, rx.position);
    if (d > 1e-6) {
      Path p;
      p.is_los = true;
      p.reflector_id = -1;
      p.aod_rad = relative_angle(tx, rx.position - tx.position);
      p.aoa_rad = relative_angle(rx, tx.position - rx.position);
      p.delay_s = d / kSpeedOfLight;
      const double elem = element_gain(p.aod_rad);
      if (elem > 0.0) {
        p.gain = path_gain(d, 0.0, carrier_hz_) * elem;
        paths.push_back(p);
      }
    }
  }

  // Single bounce off each wall (image method).
  for (std::size_t i = 0; i < walls_.size(); ++i) {
    const Wall& wall = walls_[i];
    const Vec2 image = mirror_across(wall.segment, tx.position);
    const auto hit = intersect(wall.segment, image, rx.position);
    if (!hit) continue;
    const Vec2 refl = *hit;
    // Degenerate geometry: reflection point coincides with a terminal.
    if (distance(refl, tx.position) < 1e-6 ||
        distance(refl, rx.position) < 1e-6) {
      continue;
    }
    const int wall_id = static_cast<int>(i);
    if (occluded(tx.position, refl, wall_id, -1)) continue;
    if (occluded(refl, rx.position, wall_id, -1)) continue;
    const double d = distance(tx.position, refl) + distance(refl, rx.position);
    Path p;
    p.is_los = false;
    p.reflector_id = wall_id;
    p.reflection_point = refl;
    p.aod_rad = relative_angle(tx, refl - tx.position);
    p.aoa_rad = relative_angle(rx, refl - rx.position);
    p.delay_s = d / kSpeedOfLight;
    const double elem = element_gain(p.aod_rad);
    if (elem <= 0.0) continue;
    p.gain =
        path_gain(d, wall.material.reflection_loss_db, carrier_hz_) * elem;
    paths.push_back(p);
  }

  // Double bounce off ordered wall pairs (image of the image). Only the
  // corridor/canyon benches ask for this; the default single-bounce trace
  // matches the sparse-cluster channel the paper's algorithms assume.
  if (max_bounces >= 2) {
    for (std::size_t i = 0; i < walls_.size(); ++i) {
      for (std::size_t j = 0; j < walls_.size(); ++j) {
        if (i == j) continue;
        const Wall& first = walls_[i];
        const Wall& second = walls_[j];
        const Vec2 image1 = mirror_across(first.segment, tx.position);
        const Vec2 image2 = mirror_across(second.segment, image1);
        const auto hit2 = intersect(second.segment, image2, rx.position);
        if (!hit2) continue;
        const Vec2 p2 = *hit2;
        const auto hit1 = intersect(first.segment, image1, p2);
        if (!hit1) continue;
        const Vec2 p1 = *hit1;
        if (distance(p1, tx.position) < 1e-6 ||
            distance(p2, rx.position) < 1e-6 ||
            distance(p1, p2) < 1e-6) {
          continue;
        }
        const int wi = static_cast<int>(i);
        const int wj = static_cast<int>(j);
        if (occluded(tx.position, p1, wi, -1)) continue;
        if (occluded(p1, p2, wi, wj)) continue;
        if (occluded(p2, rx.position, wj, -1)) continue;
        const double d = distance(tx.position, p1) + distance(p1, p2) +
                         distance(p2, rx.position);
        Path p;
        p.is_los = false;
        p.reflector_id = wi;  // first interaction names the path
        p.reflection_point = p1;
        p.aod_rad = relative_angle(tx, p1 - tx.position);
        p.aoa_rad = relative_angle(rx, p2 - rx.position);
        p.delay_s = d / kSpeedOfLight;
        const double elem = element_gain(p.aod_rad);
        if (elem <= 0.0) continue;
        p.gain = path_gain(d,
                           first.material.reflection_loss_db +
                               second.material.reflection_loss_db,
                           carrier_hz_) *
                 elem;
        paths.push_back(p);
      }
    }
  }

  if (paths.empty()) return;

  // Prune paths far below the strongest one. sorted_by_power takes the
  // vector by value and sorts in place, so the move round-trip preserves
  // capacity and allocates nothing.
  paths = sorted_by_power(std::move(paths));
  const double best = paths.front().effective_power();
  const double floor = best * from_db(-min_rel_power_db);
  paths.erase(std::remove_if(paths.begin(), paths.end(),
                             [floor](const Path& p) {
                               return p.effective_power() < floor;
                             }),
              paths.end());
}

Environment Environment::indoor_conference_room() {
  // 7 m x 10 m room (paper Fig. 13b). The link runs parallel to and close
  // to the glass wall and a metal cabinet row, so the dominant reflections
  // detour by well under a meter: the sub-2 ns excess delays the paper
  // measures (Fig. 15c shows per-beam phase stable over 100 MHz, which
  // requires exactly this regime -- constructive combining across a wide
  // band needs B * delta_tau well below 1).
  Environment env(kCarrier28GHz);
  env.add_wall({{{0.0, 0.0}, {10.0, 0.0}}, Material::drywall()});
  env.add_wall({{{0.0, 7.0}, {10.0, 7.0}}, Material::glass()});
  env.add_wall({{{0.0, 0.0}, {0.0, 7.0}}, Material::drywall()});
  env.add_wall({{{10.0, 0.0}, {10.0, 7.0}}, Material::metal()});  // whiteboard
  // Metal filing-cabinet row below the link line; reflects but does not
  // occlude (below the antenna plane).
  env.add_wall({{{2.0, 5.0}, {8.0, 5.0}}, Material::metal(), false});
  return env;
}

Environment Environment::indoor_sparse() {
  Environment env(kCarrier28GHz);
  env.add_wall({{{0.0, 0.0}, {10.0, 0.0}}, Material::wood()});
  env.add_wall({{{0.0, 7.0}, {10.0, 7.0}}, Material::glass()});
  env.add_wall({{{0.0, 0.0}, {0.0, 7.0}}, Material::drywall()});
  env.add_wall({{{10.0, 0.0}, {10.0, 7.0}}, Material::drywall()});
  return env;
}

Environment Environment::outdoor_street() {
  // Long building face with tinted glass along one side of the link
  // (paper Fig. 13c): the link runs parallel to the facade a few meters
  // out, so the wall reflection detours by only a few ns even at 80 m.
  Environment env(kCarrier28GHz);
  env.add_wall({{{-10.0, 6.0}, {100.0, 6.0}}, Material::glass()});
  env.add_wall({{{-10.0, -40.0}, {100.0, -40.0}}, Material::concrete()});
  return env;
}

}  // namespace mmr::channel
