// UE mobility trajectories. The paper's gantry provides controlled
// translation (up to 1.5 m/s) and rotation (24 deg/s, typical VR headset
// speed); these trajectory classes are the simulation equivalents, and
// they double as exact ground truth for tracking-accuracy experiments.
#pragma once

#include <memory>
#include <vector>

#include "channel/environment.h"

namespace mmr::channel {

class Trajectory {
 public:
  virtual ~Trajectory() = default;
  virtual Pose at(double t_s) const = 0;
};

/// Stationary UE.
class StaticPose final : public Trajectory {
 public:
  explicit StaticPose(Pose pose) : pose_(pose) {}
  Pose at(double) const override { return pose_; }

 private:
  Pose pose_;
};

/// Constant-velocity translation, fixed orientation.
class LinearTranslation final : public Trajectory {
 public:
  LinearTranslation(Pose start, Vec2 velocity_mps);
  Pose at(double t_s) const override;

 private:
  Pose start_;
  Vec2 velocity_;
};

/// In-place rotation at a constant rate.
class UniformRotation final : public Trajectory {
 public:
  UniformRotation(Pose start, double rate_rad_per_s);
  Pose at(double t_s) const override;

 private:
  Pose start_;
  double rate_;
};

/// Translation and rotation combined.
class TranslateAndRotate final : public Trajectory {
 public:
  TranslateAndRotate(Pose start, Vec2 velocity_mps, double rate_rad_per_s);
  Pose at(double t_s) const override;

 private:
  Pose start_;
  Vec2 velocity_;
  double rate_;
};

/// Piecewise-linear waypoint path (position interpolated, orientation
/// slerped); used for "natural motion" end-to-end runs.
class WaypointPath final : public Trajectory {
 public:
  struct Waypoint {
    double t_s;
    Pose pose;
  };
  explicit WaypointPath(std::vector<Waypoint> waypoints);
  Pose at(double t_s) const override;

 private:
  std::vector<Waypoint> waypoints_;
};

}  // namespace mmr::channel
