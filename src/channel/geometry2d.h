// Minimal 2-D geometry for the image-method ray tracer: points, segments,
// reflections, intersection and distance tests. The paper's scenarios are
// all effectively planar (array beamforms only in azimuth), so a 2-D model
// captures the path structure that matters.
#pragma once

#include <optional>

namespace mmr::channel {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
};

double dot(Vec2 a, Vec2 b);
double cross(Vec2 a, Vec2 b);
double length(Vec2 v);
double distance(Vec2 a, Vec2 b);
Vec2 normalized(Vec2 v);

/// Angle of the vector v measured from the +x axis, in radians.
double heading(Vec2 v);

struct Segment {
  Vec2 a;
  Vec2 b;
};

/// Mirror a point across the infinite line through the segment.
Vec2 mirror_across(const Segment& seg, Vec2 p);

/// Intersection of segment pq with segment seg, if any (proper crossing or
/// touch). Returns the intersection point.
std::optional<Vec2> intersect(const Segment& seg, Vec2 p, Vec2 q);

/// Shortest distance from point p to segment seg.
double point_segment_distance(const Segment& seg, Vec2 p);

}  // namespace mmr::channel
