#include "dsp/fft.h"

#include <cmath>

#include "common/angles.h"
#include "common/error.h"

namespace mmr::dsp {
namespace {

// Bit-reversal permutation for the iterative radix-2 kernel.
void bit_reverse(CVec& x) {
  const std::size_t n = x.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
}

void fft_radix2(CVec& x, bool inverse) {
  const std::size_t n = x.size();
  MMR_EXPECTS(is_pow2(n));
  bit_reverse(x);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = x[i + k];
        const cplx v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& c : x) c *= inv_n;
  }
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Bluestein's chirp-z transform: DFT of arbitrary N via a convolution of
// length >= 2N-1 done with power-of-two FFTs.
CVec bluestein(const CVec& x, bool inverse) {
  const std::size_t n = x.size();
  const double sign = inverse ? 1.0 : -1.0;
  CVec chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the argument small and exact for large k.
    const auto k2 = static_cast<double>((k * k) % (2 * n));
    const double ang = sign * kPi * k2 / static_cast<double>(n);
    chirp[k] = cplx(std::cos(ang), std::sin(ang));
  }
  const std::size_t m = next_pow2(2 * n - 1);
  CVec a(m, cplx{}), b(m, cplx{});
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * chirp[k];
  for (std::size_t k = 0; k < n; ++k) {
    b[k] = std::conj(chirp[k]);
    if (k != 0) b[m - k] = std::conj(chirp[k]);
  }
  fft_radix2(a, /*inverse=*/false);
  fft_radix2(b, /*inverse=*/false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_radix2(a, /*inverse=*/true);
  CVec out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * chirp[k];
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& c : out) c *= inv_n;
  }
  return out;
}

}  // namespace

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fft_pow2(CVec& x) { fft_radix2(x, /*inverse=*/false); }

void ifft_pow2(CVec& x) { fft_radix2(x, /*inverse=*/true); }

CVec fft(const CVec& x) {
  MMR_EXPECTS(!x.empty());
  if (is_pow2(x.size())) {
    CVec y = x;
    fft_pow2(y);
    return y;
  }
  return bluestein(x, /*inverse=*/false);
}

CVec ifft(const CVec& x) {
  MMR_EXPECTS(!x.empty());
  if (is_pow2(x.size())) {
    CVec y = x;
    ifft_pow2(y);
    return y;
  }
  return bluestein(x, /*inverse=*/true);
}

CVec circshift(const CVec& x, std::ptrdiff_t k) {
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  MMR_EXPECTS(n > 0);
  CVec out(x.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    std::ptrdiff_t j = (i + k) % n;
    if (j < 0) j += n;
    out[static_cast<std::size_t>(j)] = x[static_cast<std::size_t>(i)];
  }
  return out;
}

CVec fftshift(const CVec& x) {
  return circshift(x, static_cast<std::ptrdiff_t>(x.size() / 2));
}

}  // namespace mmr::dsp
