// Real least-squares polynomial fitting. The tracking algorithm smooths
// noisy per-beam power measurements by fitting a quadratic (paper
// Section 6.1: "fits a quadratic polynomial to smooth the data").
#pragma once

#include <cstddef>

#include "common/types.h"

namespace mmr::dsp {

/// Fit y ~ c0 + c1 x + ... + cd x^d in the least-squares sense.
/// Returns the d+1 coefficients (lowest order first).
/// Requires x.size() == y.size() and at least degree+1 points.
RVec polyfit(const RVec& x, const RVec& y, std::size_t degree);

/// Evaluate a polynomial (lowest order first) at x.
double polyval(const RVec& coeffs, double x);

}  // namespace mmr::dsp
