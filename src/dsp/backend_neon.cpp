// NEON backend (aarch64, where Advanced SIMD is baseline ISA -- no
// runtime CPU check needed beyond the architecture itself). One
// float64x2_t holds a single complex [re, im]; dots and axpy use the
// same raw-formula / multi-accumulator structure as the portable
// backend, and the phasor/delay kernels -- whose cost is libm sincos,
// not arithmetic -- reuse the portable anchor+delta implementations
// directly, so the declared NEON tolerances equal the portable ones.
#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>

#include "common/types.h"
#include "dsp/backend.h"
#include "dsp/backend_kernels.h"

namespace mmr::dsp::detail {

namespace {

// p * q for single complexes packed as [re, im].
inline float64x2_t cmul1(float64x2_t p, float64x2_t q) {
  const float64x2_t qre = vdupq_laneq_f64(q, 0);
  const float64x2_t qim = vdupq_laneq_f64(q, 1);
  const float64x2_t pswap = vextq_f64(p, p, 1);  // [im, re]
  const float64x2_t sign = {-1.0, 1.0};
  // [pr*qr, pi*qr] + [-pi*qi, +pr*qi]
  return vfmaq_f64(vmulq_f64(vmulq_f64(pswap, qim), sign), p, qre);
}

}  // namespace

cplx neon_cdot(const cplx* a, const cplx* b, std::size_t n) {
  const double* ap = reinterpret_cast<const double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0);
  float64x2_t acc3 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = vaddq_f64(acc0, cmul1(vld1q_f64(ap + 2 * i), vld1q_f64(bp + 2 * i)));
    acc1 = vaddq_f64(acc1, cmul1(vld1q_f64(ap + 2 * i + 2),
                                 vld1q_f64(bp + 2 * i + 2)));
    acc2 = vaddq_f64(acc2, cmul1(vld1q_f64(ap + 2 * i + 4),
                                 vld1q_f64(bp + 2 * i + 4)));
    acc3 = vaddq_f64(acc3, cmul1(vld1q_f64(ap + 2 * i + 6),
                                 vld1q_f64(bp + 2 * i + 6)));
  }
  const float64x2_t sum =
      vaddq_f64(vaddq_f64(acc0, acc1), vaddq_f64(acc2, acc3));
  double re = vgetq_lane_f64(sum, 0);
  double im = vgetq_lane_f64(sum, 1);
  for (; i < n; ++i) {
    const double ar = ap[2 * i];
    const double ai = ap[2 * i + 1];
    const double br = bp[2 * i];
    const double bi = bp[2 * i + 1];
    re += ar * br - ai * bi;
    im += ar * bi + ai * br;
  }
  return cplx(re, im);
}

void neon_axpy(cplx alpha, const cplx* x, cplx* y, std::size_t n) {
  const double* xp = reinterpret_cast<const double*>(x);
  double* yp = reinterpret_cast<double*>(y);
  const float64x2_t ar = vdupq_n_f64(alpha.real());
  const float64x2_t ai = vdupq_n_f64(alpha.imag());
  const float64x2_t sign = {-1.0, 1.0};
  for (std::size_t i = 0; i < n; ++i) {
    const float64x2_t xv = vld1q_f64(xp + 2 * i);
    const float64x2_t xswap = vextq_f64(xv, xv, 1);
    const float64x2_t prod =
        vfmaq_f64(vmulq_f64(vmulq_f64(xswap, ai), sign), xv, ar);
    vst1q_f64(yp + 2 * i, vaddq_f64(vld1q_f64(yp + 2 * i), prod));
  }
}

const KernelTable* neon_table() {
  static const KernelTable table = [] {
    KernelTable t;
    t.phasor_ramp_soa = &portable_phasor_ramp_soa;
    t.phasor_ramp_interleaved = &portable_phasor_ramp_interleaved;
    t.cdot = &neon_cdot;
    t.dot_phasor_ramp = &portable_dot_phasor_ramp;
    t.axpy = &neon_axpy;
    t.axpy_phasor_ramp = &portable_axpy_phasor_ramp;
    t.accumulate_delay_phasors = &portable_accumulate_delay_phasors;
    return t;
  }();
  return &table;
}

}  // namespace mmr::dsp::detail

#else  // !aarch64

#include "dsp/backend.h"

namespace mmr::dsp::detail {
const KernelTable* neon_table() { return nullptr; }
}  // namespace mmr::dsp::detail

#endif
