// AVX2+FMA backend (x86-64). Every function carrying intrinsics is
// annotated __attribute__((target("avx2,fma"))), so this TU compiles in
// ANY x86-64 build -- including -DMMR_NATIVE=OFF baseline-ISA builds --
// and the dispatcher only ever calls these entry points after CPUID
// reports avx2+fma (see backend.cpp). Do not add -mavx2 to this TU's
// flags: that would let the compiler leak AVX2 into code reachable
// before the CPUID check.
//
// Data layout: std::complex<double> is an [re, im] pair, so one __m256d
// holds two complexes [re0 im0 re1 im1]. Complex multiply p*q is the
// classic addsub idiom:
//   fmaddsub(p, dup_even(q), swap_pairs(p) * dup_odd(q))
//     even lane: pr*qr - pi*qi, odd lane: pi*qr + pr*qi.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cmath>
#include <cstddef>

#include "common/angles.h"
#include "common/types.h"
#include "dsp/backend.h"
#include "dsp/backend_kernels.h"

#define MMR_AVX2 __attribute__((target("avx2,fma")))

namespace mmr::dsp::detail {

namespace {

constexpr std::size_t kB = kRampBlock;

MMR_AVX2 inline __m256d cmul2(__m256d p, __m256d q) {
  const __m256d qre = _mm256_movedup_pd(q);
  const __m256d qim = _mm256_permute_pd(q, 0xF);
  const __m256d pswap = _mm256_permute_pd(p, 0x5);
  return _mm256_fmaddsub_pd(p, qre, _mm256_mul_pd(pswap, qim));
}

// p * (cr + j ci) with the scalar already broadcast.
MMR_AVX2 inline __m256d cmul_const(__m256d p, __m256d cr, __m256d ci) {
  const __m256d pswap = _mm256_permute_pd(p, 0x5);
  return _mm256_fmaddsub_pd(p, cr, _mm256_mul_pd(pswap, ci));
}

MMR_AVX2 inline cplx hsum_cplx(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  alignas(16) double buf[2];
  _mm_store_pd(buf, s);
  return cplx(buf[0], buf[1]);
}

inline void exact_phasor(double step, std::size_t i, double* re, double* im) {
  const double ang = -step * static_cast<double>(i);
  *re = std::cos(ang);
  *im = std::sin(ang);
}

// (a_re + j a_im) *= (rot_re + j rot_im). Used to derive every second
// anchor of the ramp kernels from the previous libm anchor: the sincos
// call is the block loop's bottleneck, and the derived anchor is only one
// rounded complex multiply away from exact, so the per-element error
// stays O(1) ulp regardless of n (each block's anchor is at most one
// multiply from a libm value -- the error does NOT accumulate across
// blocks).
inline void rotate_anchor(double rot_re, double rot_im, double* a_re,
                          double* a_im) {
  const double re = *a_re * rot_re - *a_im * rot_im;
  const double im = *a_re * rot_im + *a_im * rot_re;
  *a_re = re;
  *a_im = im;
}

}  // namespace

MMR_AVX2 cplx avx2_cdot(const cplx* a, const cplx* b, std::size_t n) {
  const double* ap = reinterpret_cast<const double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  // Two-FMA accumulation: acc_p collects [ar*br, ai*bi, ...] and acc_q
  // collects [ar*bi, ai*br, ...]; the horizontal finish combines
  // re = sum(ar*br) - sum(ai*bi), im = sum(ar*bi) + sum(ai*br). That is
  // one shuffle + two FMAs per two complexes, vs three shuffles + mul +
  // fmaddsub + add for the addsub idiom -- the loop runs at FMA-port
  // throughput instead of shuffle-port throughput. The difference of two
  // large sums is covered by the absolute arm of the dot tolerance.
  __m256d p0 = _mm256_setzero_pd();
  __m256d p1 = _mm256_setzero_pd();
  __m256d p2 = _mm256_setzero_pd();
  __m256d p3 = _mm256_setzero_pd();
  __m256d q0 = _mm256_setzero_pd();
  __m256d q1 = _mm256_setzero_pd();
  __m256d q2 = _mm256_setzero_pd();
  __m256d q3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d a0 = _mm256_loadu_pd(ap + 2 * i);
    const __m256d b0 = _mm256_loadu_pd(bp + 2 * i);
    p0 = _mm256_fmadd_pd(a0, b0, p0);
    q0 = _mm256_fmadd_pd(a0, _mm256_permute_pd(b0, 0x5), q0);
    const __m256d a1 = _mm256_loadu_pd(ap + 2 * i + 4);
    const __m256d b1 = _mm256_loadu_pd(bp + 2 * i + 4);
    p1 = _mm256_fmadd_pd(a1, b1, p1);
    q1 = _mm256_fmadd_pd(a1, _mm256_permute_pd(b1, 0x5), q1);
    const __m256d a2 = _mm256_loadu_pd(ap + 2 * i + 8);
    const __m256d b2 = _mm256_loadu_pd(bp + 2 * i + 8);
    p2 = _mm256_fmadd_pd(a2, b2, p2);
    q2 = _mm256_fmadd_pd(a2, _mm256_permute_pd(b2, 0x5), q2);
    const __m256d a3 = _mm256_loadu_pd(ap + 2 * i + 12);
    const __m256d b3 = _mm256_loadu_pd(bp + 2 * i + 12);
    p3 = _mm256_fmadd_pd(a3, b3, p3);
    q3 = _mm256_fmadd_pd(a3, _mm256_permute_pd(b3, 0x5), q3);
  }
  const __m256d P = _mm256_add_pd(_mm256_add_pd(p0, p1),
                                  _mm256_add_pd(p2, p3));
  const __m256d Q = _mm256_add_pd(_mm256_add_pd(q0, q1),
                                  _mm256_add_pd(q2, q3));
  alignas(32) double pb[4];
  alignas(32) double qb[4];
  _mm256_store_pd(pb, P);
  _mm256_store_pd(qb, Q);
  double re = (pb[0] - pb[1]) + (pb[2] - pb[3]);
  double im = (qb[0] + qb[1]) + (qb[2] + qb[3]);
  for (; i < n; ++i) {
    const double ar = ap[2 * i];
    const double ai = ap[2 * i + 1];
    const double br = bp[2 * i];
    const double bi = bp[2 * i + 1];
    re += ar * br - ai * bi;
    im += ar * bi + ai * br;
  }
  return cplx(re, im);
}

MMR_AVX2 void avx2_axpy(cplx alpha, const cplx* x, cplx* y, std::size_t n) {
  const double* xp = reinterpret_cast<const double*>(x);
  double* yp = reinterpret_cast<double*>(y);
  const __m256d ar = _mm256_set1_pd(alpha.real());
  const __m256d ai = _mm256_set1_pd(alpha.imag());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x0 = _mm256_loadu_pd(xp + 2 * i);
    const __m256d x1 = _mm256_loadu_pd(xp + 2 * i + 4);
    const __m256d y0 = _mm256_loadu_pd(yp + 2 * i);
    const __m256d y1 = _mm256_loadu_pd(yp + 2 * i + 4);
    _mm256_storeu_pd(yp + 2 * i, _mm256_add_pd(y0, cmul_const(x0, ar, ai)));
    _mm256_storeu_pd(yp + 2 * i + 4,
                     _mm256_add_pd(y1, cmul_const(x1, ar, ai)));
  }
  const double sar = alpha.real();
  const double sai = alpha.imag();
  for (; i < n; ++i) {
    const double xr = xp[2 * i];
    const double xi = xp[2 * i + 1];
    yp[2 * i] += sar * xr - sai * xi;
    yp[2 * i + 1] += sar * xi + sai * xr;
  }
}

MMR_AVX2 void avx2_phasor_ramp_soa(double step, std::size_t n, double* dst_re,
                                   double* dst_im) {
  if (n < 2 * kB) {
    scalar_phasor_ramp_soa(step, n, dst_re, dst_im);
    return;
  }
  const RampDeltas d = compute_ramp_deltas(step);
  const __m256d dre0 = _mm256_loadu_pd(d.re);
  const __m256d dre1 = _mm256_loadu_pd(d.re + 4);
  const __m256d dim0 = _mm256_loadu_pd(d.im);
  const __m256d dim1 = _mm256_loadu_pd(d.im + 4);
  double rot_re;
  double rot_im;
  exact_phasor(step, kB, &rot_re, &rot_im);
  const auto emit_block = [&](std::size_t base, double a_re, double a_im)
                              MMR_AVX2 {
    const __m256d are = _mm256_set1_pd(a_re);
    const __m256d aim = _mm256_set1_pd(a_im);
    // out_re = are*dre - aim*dim ; out_im = aim*dre + are*dim
    _mm256_storeu_pd(dst_re + base,
                     _mm256_fmsub_pd(are, dre0, _mm256_mul_pd(aim, dim0)));
    _mm256_storeu_pd(dst_re + base + 4,
                     _mm256_fmsub_pd(are, dre1, _mm256_mul_pd(aim, dim1)));
    _mm256_storeu_pd(dst_im + base,
                     _mm256_fmadd_pd(aim, dre0, _mm256_mul_pd(are, dim0)));
    _mm256_storeu_pd(dst_im + base + 4,
                     _mm256_fmadd_pd(aim, dre1, _mm256_mul_pd(are, dim1)));
  };
  std::size_t i = 0;
  // One libm sincos serves TWO blocks: the second block's anchor is the
  // first rotated by kB steps (see rotate_anchor).
  for (; i + 2 * kB <= n; i += 2 * kB) {
    double a_re;
    double a_im;
    exact_phasor(step, i, &a_re, &a_im);
    emit_block(i, a_re, a_im);
    rotate_anchor(rot_re, rot_im, &a_re, &a_im);
    emit_block(i + kB, a_re, a_im);
  }
  for (; i + kB <= n; i += kB) {
    double a_re;
    double a_im;
    exact_phasor(step, i, &a_re, &a_im);
    emit_block(i, a_re, a_im);
  }
  for (; i < n; ++i) exact_phasor(step, i, &dst_re[i], &dst_im[i]);
}

namespace {

// Deltas as two interleaved vectors [re0 im0 re1 im1] per pair.
struct InterleavedDeltas {
  __m256d v[kB / 2];
};

MMR_AVX2 inline InterleavedDeltas interleave_deltas(const RampDeltas& d) {
  InterleavedDeltas out;
  for (std::size_t k = 0; k < kB / 2; ++k) {
    out.v[k] = _mm256_set_pd(d.im[2 * k + 1], d.re[2 * k + 1], d.im[2 * k],
                             d.re[2 * k]);
  }
  return out;
}

}  // namespace

MMR_AVX2 void avx2_phasor_ramp_interleaved(double step, std::size_t n,
                                           cplx* dst) {
  if (n < 2 * kB) {
    scalar_phasor_ramp_interleaved(step, n, dst);
    return;
  }
  const RampDeltas d = compute_ramp_deltas(step);
  const InterleavedDeltas dv = interleave_deltas(d);
  double rot_re;
  double rot_im;
  exact_phasor(step, kB, &rot_re, &rot_im);
  double* out = reinterpret_cast<double*>(dst);
  const auto emit_block = [&](std::size_t base, double a_re, double a_im)
                              MMR_AVX2 {
    const __m256d are = _mm256_set1_pd(a_re);
    const __m256d aim = _mm256_set1_pd(a_im);
    for (std::size_t k = 0; k < kB / 2; ++k) {
      _mm256_storeu_pd(out + 2 * base + 4 * k, cmul_const(dv.v[k], are, aim));
    }
  };
  std::size_t i = 0;
  for (; i + 2 * kB <= n; i += 2 * kB) {
    double a_re;
    double a_im;
    exact_phasor(step, i, &a_re, &a_im);
    emit_block(i, a_re, a_im);
    rotate_anchor(rot_re, rot_im, &a_re, &a_im);
    emit_block(i + kB, a_re, a_im);
  }
  for (; i + kB <= n; i += kB) {
    double a_re;
    double a_im;
    exact_phasor(step, i, &a_re, &a_im);
    emit_block(i, a_re, a_im);
  }
  for (; i < n; ++i) {
    exact_phasor(step, i, &out[2 * i], &out[2 * i + 1]);
  }
}

MMR_AVX2 cplx avx2_dot_phasor_ramp(double step, const cplx* w, std::size_t n) {
  if (n < 2 * kB) return scalar_dot_phasor_ramp(step, w, n);
  const RampDeltas d = compute_ramp_deltas(step);
  const InterleavedDeltas dv = interleave_deltas(d);
  double rot_re;
  double rot_im;
  exact_phasor(step, kB, &rot_re, &rot_im);
  const double* wp = reinterpret_cast<const double*>(w);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  const auto add_block = [&](std::size_t base, double a_re, double a_im)
                             MMR_AVX2 {
    const __m256d are = _mm256_set1_pd(a_re);
    const __m256d aim = _mm256_set1_pd(a_im);
    acc0 = _mm256_add_pd(
        acc0, cmul2(cmul_const(dv.v[0], are, aim),
                    _mm256_loadu_pd(wp + 2 * base)));
    acc1 = _mm256_add_pd(
        acc1, cmul2(cmul_const(dv.v[1], are, aim),
                    _mm256_loadu_pd(wp + 2 * base + 4)));
    acc2 = _mm256_add_pd(
        acc2, cmul2(cmul_const(dv.v[2], are, aim),
                    _mm256_loadu_pd(wp + 2 * base + 8)));
    acc3 = _mm256_add_pd(
        acc3, cmul2(cmul_const(dv.v[3], are, aim),
                    _mm256_loadu_pd(wp + 2 * base + 12)));
  };
  std::size_t i = 0;
  for (; i + 2 * kB <= n; i += 2 * kB) {
    double a_re;
    double a_im;
    exact_phasor(step, i, &a_re, &a_im);
    add_block(i, a_re, a_im);
    rotate_anchor(rot_re, rot_im, &a_re, &a_im);
    add_block(i + kB, a_re, a_im);
  }
  for (; i + kB <= n; i += kB) {
    double a_re;
    double a_im;
    exact_phasor(step, i, &a_re, &a_im);
    add_block(i, a_re, a_im);
  }
  const __m256d sum = _mm256_add_pd(_mm256_add_pd(acc0, acc1),
                                    _mm256_add_pd(acc2, acc3));
  cplx acc = hsum_cplx(sum);
  double re = acc.real();
  double im = acc.imag();
  for (; i < n; ++i) {
    double pre;
    double pim;
    exact_phasor(step, i, &pre, &pim);
    const double wr = wp[2 * i];
    const double wi = wp[2 * i + 1];
    re += pre * wr - pim * wi;
    im += pre * wi + pim * wr;
  }
  return cplx(re, im);
}

MMR_AVX2 void avx2_axpy_phasor_ramp(cplx alpha, double step, cplx* y,
                                    std::size_t n) {
  if (n < 2 * kB) {
    scalar_axpy_phasor_ramp(alpha, step, y, n);
    return;
  }
  const RampDeltas d = compute_ramp_deltas(step);
  const InterleavedDeltas dv = interleave_deltas(d);
  double rot_re;
  double rot_im;
  exact_phasor(step, kB, &rot_re, &rot_im);
  const __m256d alr = _mm256_set1_pd(alpha.real());
  const __m256d ali = _mm256_set1_pd(alpha.imag());
  double* yp = reinterpret_cast<double*>(y);
  const auto add_block = [&](std::size_t base, double a_re, double a_im)
                             MMR_AVX2 {
    const __m256d are = _mm256_set1_pd(a_re);
    const __m256d aim = _mm256_set1_pd(a_im);
    for (std::size_t k = 0; k < kB / 2; ++k) {
      const __m256d ph = cmul_const(dv.v[k], are, aim);
      const __m256d yv = _mm256_loadu_pd(yp + 2 * base + 4 * k);
      _mm256_storeu_pd(yp + 2 * base + 4 * k,
                       _mm256_add_pd(yv, cmul_const(ph, alr, ali)));
    }
  };
  std::size_t i = 0;
  for (; i + 2 * kB <= n; i += 2 * kB) {
    double a_re;
    double a_im;
    exact_phasor(step, i, &a_re, &a_im);
    add_block(i, a_re, a_im);
    rotate_anchor(rot_re, rot_im, &a_re, &a_im);
    add_block(i + kB, a_re, a_im);
  }
  for (; i + kB <= n; i += kB) {
    double a_re;
    double a_im;
    exact_phasor(step, i, &a_re, &a_im);
    add_block(i, a_re, a_im);
  }
  const double sar = alpha.real();
  const double sai = alpha.imag();
  for (; i < n; ++i) {
    double pre;
    double pim;
    exact_phasor(step, i, &pre, &pim);
    yp[2 * i] += sar * pre - sai * pim;
    yp[2 * i + 1] += sar * pim + sai * pre;
  }
}

MMR_AVX2 void avx2_accumulate_delay_phasors(cplx alpha, const double* freqs,
                                            double delay_s, cplx* dst,
                                            std::size_t n) {
  double f0 = 0.0;
  double df = 0.0;
  if (n < 2 * kB || !affine_freqs(freqs, n, &f0, &df)) {
    scalar_accumulate_delay_phasors(alpha, freqs, delay_s, dst, n);
    return;
  }
  RampDeltas d;
  for (std::size_t k = 0; k < kB; ++k) {
    const double ang = -2.0 * kPi * (df * static_cast<double>(k)) * delay_s;
    d.re[k] = std::cos(ang);
    d.im[k] = std::sin(ang);
  }
  const InterleavedDeltas dv = interleave_deltas(d);
  // Block-to-block rotation for the affine grid (kB*df per block); one
  // complex multiply derives every second anchor (see rotate_anchor).
  const double rot_ang = -2.0 * kPi * (df * static_cast<double>(kB)) * delay_s;
  const double rot_re = std::cos(rot_ang);
  const double rot_im = std::sin(rot_ang);
  const __m256d alr = _mm256_set1_pd(alpha.real());
  const __m256d ali = _mm256_set1_pd(alpha.imag());
  double* dp = reinterpret_cast<double*>(dst);
  const auto add_block = [&](std::size_t base, double a_re, double a_im)
                             MMR_AVX2 {
    const __m256d are = _mm256_set1_pd(a_re);
    const __m256d aim = _mm256_set1_pd(a_im);
    for (std::size_t k = 0; k < kB / 2; ++k) {
      const __m256d ph = cmul_const(dv.v[k], are, aim);
      const __m256d yv = _mm256_loadu_pd(dp + 2 * base + 4 * k);
      _mm256_storeu_pd(dp + 2 * base + 4 * k,
                       _mm256_add_pd(yv, cmul_const(ph, alr, ali)));
    }
  };
  std::size_t i = 0;
  for (; i + 2 * kB <= n; i += 2 * kB) {
    const double ang = -2.0 * kPi * freqs[i] * delay_s;
    double a_re = std::cos(ang);
    double a_im = std::sin(ang);
    add_block(i, a_re, a_im);
    rotate_anchor(rot_re, rot_im, &a_re, &a_im);
    add_block(i + kB, a_re, a_im);
  }
  for (; i + kB <= n; i += kB) {
    const double ang = -2.0 * kPi * freqs[i] * delay_s;
    add_block(i, std::cos(ang), std::sin(ang));
  }
  const double sar = alpha.real();
  const double sai = alpha.imag();
  for (; i < n; ++i) {
    const double ang = -2.0 * kPi * freqs[i] * delay_s;
    const double pre = std::cos(ang);
    const double pim = std::sin(ang);
    dp[2 * i] += sar * pre - sai * pim;
    dp[2 * i + 1] += sar * pim + sai * pre;
  }
}

const KernelTable* avx2_table() {
  static const KernelTable table = [] {
    KernelTable t;
    t.phasor_ramp_soa = &avx2_phasor_ramp_soa;
    t.phasor_ramp_interleaved = &avx2_phasor_ramp_interleaved;
    t.cdot = &avx2_cdot;
    t.dot_phasor_ramp = &avx2_dot_phasor_ramp;
    t.axpy = &avx2_axpy;
    t.axpy_phasor_ramp = &avx2_axpy_phasor_ramp;
    t.accumulate_delay_phasors = &avx2_accumulate_delay_phasors;
    return t;
  }();
  return &table;
}

}  // namespace mmr::dsp::detail

#else  // !x86-64

#include "dsp/backend.h"

namespace mmr::dsp::detail {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace mmr::dsp::detail

#endif
