// Scalar reference backend: the PR-2 kernel loops, verbatim. This is the
// golden path -- figure goldens, journal byte-identity and every %.17g pin
// in the test tree assume these exact operations in this exact order.
// DO NOT restructure these loops; put fast variants in another backend TU.
#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/angles.h"
#include "common/types.h"
#include "dsp/backend.h"
#include "dsp/backend_kernels.h"

namespace mmr::dsp::detail {

namespace {

inline cplx ref_unit_phasor(double step, std::size_t i) {
  const double ang = -step * static_cast<double>(i);
  return cplx(std::cos(ang), std::sin(ang));
}

}  // namespace

void scalar_phasor_ramp_soa(double step, std::size_t n, double* dst_re,
                            double* dst_im) {
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = -step * static_cast<double>(i);
    dst_re[i] = std::cos(ang);
    dst_im[i] = std::sin(ang);
  }
}

void scalar_phasor_ramp_interleaved(double step, std::size_t n, cplx* dst) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = ref_unit_phasor(step, i);
}

cplx scalar_cdot(const cplx* a, const cplx* b, std::size_t n) {
  cplx acc{};
  std::size_t i = 0;
  // Unrolled by 4 into ONE accumulator: the additions stay in element
  // order, so the sum rounds exactly like the naive reference loop.
  for (; i + 4 <= n; i += 4) {
    acc += a[i] * b[i];
    acc += a[i + 1] * b[i + 1];
    acc += a[i + 2] * b[i + 2];
    acc += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

cplx scalar_dot_phasor_ramp(double step, const cplx* w, std::size_t n) {
  cplx acc{};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc += ref_unit_phasor(step, i) * w[i];
    acc += ref_unit_phasor(step, i + 1) * w[i + 1];
    acc += ref_unit_phasor(step, i + 2) * w[i + 2];
    acc += ref_unit_phasor(step, i + 3) * w[i + 3];
  }
  for (; i < n; ++i) acc += ref_unit_phasor(step, i) * w[i];
  return acc;
}

void scalar_axpy(cplx alpha, const cplx* x, cplx* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scalar_axpy_phasor_ramp(cplx alpha, double step, cplx* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * ref_unit_phasor(step, i);
}

void scalar_accumulate_delay_phasors(cplx alpha, const double* freqs,
                                     double delay_s, cplx* dst,
                                     std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = -2.0 * kPi * freqs[k] * delay_s;
    dst[k] += alpha * cplx(std::cos(ang), std::sin(ang));
  }
}

RampDeltas compute_ramp_deltas(double step) {
  RampDeltas d;
  for (std::size_t k = 0; k < kRampBlock; ++k) {
    const double ang = -step * static_cast<double>(k);
    d.re[k] = std::cos(ang);
    d.im[k] = std::sin(ang);
  }
  return d;
}

bool affine_freqs(const double* freqs, std::size_t n, double* f0, double* df) {
  if (n < 2) {
    *f0 = (n == 1) ? freqs[0] : 0.0;
    *df = 0.0;
    return true;
  }
  const double first = freqs[0];
  const double step = (freqs[n - 1] - first) / static_cast<double>(n - 1);
  const double span = std::abs(freqs[n - 1] - first);
  const double tol =
      1e-9 * std::max({span, std::abs(first), std::abs(freqs[n - 1])});
  for (std::size_t k = 1; k + 1 < n; ++k) {
    const double predicted = first + static_cast<double>(k) * step;
    if (std::abs(freqs[k] - predicted) > tol) return false;
  }
  *f0 = first;
  *df = step;
  return true;
}

}  // namespace mmr::dsp::detail

namespace mmr::dsp::detail {

const KernelTable* scalar_table() {
  static const KernelTable table = [] {
    KernelTable t;
    t.phasor_ramp_soa = &scalar_phasor_ramp_soa;
    t.phasor_ramp_interleaved = &scalar_phasor_ramp_interleaved;
    t.cdot = &scalar_cdot;
    t.dot_phasor_ramp = &scalar_dot_phasor_ramp;
    t.axpy = &scalar_axpy;
    t.axpy_phasor_ramp = &scalar_axpy_phasor_ramp;
    t.accumulate_delay_phasors = &scalar_accumulate_delay_phasors;
    return t;
  }();
  return &table;
}

}  // namespace mmr::dsp::detail
