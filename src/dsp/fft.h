// FFT built from scratch: iterative radix-2 for power-of-two sizes and
// Bluestein's algorithm for arbitrary sizes. Used for OFDM modulation and
// CIR <-> CSI conversion; sizes in this codebase are small (<= 8192) so a
// cache-oblivious plan is unnecessary.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace mmr::dsp {

/// True if n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

/// In-place forward FFT; x.size() must be a power of two.
void fft_pow2(CVec& x);

/// In-place inverse FFT (includes the 1/N normalization).
void ifft_pow2(CVec& x);

/// Forward DFT of arbitrary size (Bluestein for non-powers of two).
CVec fft(const CVec& x);

/// Inverse DFT of arbitrary size (includes the 1/N normalization).
CVec ifft(const CVec& x);

/// Circularly shift a vector right by k positions.
CVec circshift(const CVec& x, std::ptrdiff_t k);

/// fftshift: move the zero-frequency bin to the center.
CVec fftshift(const CVec& x);

}  // namespace mmr::dsp
