// Exponentially-weighted smoothing with a forgetting factor (paper
// Section 6.1: "mmReliable takes time average of power values with a
// forgetting factor").
#pragma once

#include "common/types.h"

namespace mmr::dsp {

/// EWMA filter: y_t = rho * y_{t-1} + (1 - rho) * x_t, rho in [0, 1).
class Ewma {
 public:
  /// rho is the forgetting factor; higher = smoother / slower.
  explicit Ewma(double rho);

  double update(double x);
  double value() const;
  bool primed() const { return primed_; }
  void reset();

 private:
  double rho_;
  double y_ = 0.0;
  bool primed_ = false;
};

/// Apply an EWMA across a whole series (convenience for offline analysis).
RVec ewma_filter(const RVec& x, double rho);

}  // namespace mmr::dsp
