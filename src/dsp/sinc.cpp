#include "dsp/sinc.h"

#include <cmath>

#include "common/angles.h"
#include "common/error.h"

namespace mmr::dsp {

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  const double px = kPi * x;
  return std::sin(px) / px;
}

double sampled_sinc_tap(std::size_t n, double ts, double bandwidth, double tau) {
  MMR_EXPECTS(ts > 0.0 && bandwidth > 0.0);
  return sinc(bandwidth * (static_cast<double>(n) * ts - tau));
}

RVec sampled_sinc(std::size_t num_taps, double ts, double bandwidth, double tau) {
  RVec out(num_taps);
  for (std::size_t n = 0; n < num_taps; ++n) {
    out[n] = sampled_sinc_tap(n, ts, bandwidth, tau);
  }
  return out;
}

cplx sinc_interpolate(const CVec& taps, double ts, double bandwidth, double tau) {
  MMR_EXPECTS(ts > 0.0 && bandwidth > 0.0);
  cplx acc{};
  for (std::size_t n = 0; n < taps.size(); ++n) {
    acc += taps[n] * sinc(bandwidth * (tau - static_cast<double>(n) * ts));
  }
  return acc;
}

}  // namespace mmr::dsp
