// Backend selection and dispatch-table publication. See backend.h for
// the selection policy and thread-safety contract.
#include "dsp/backend.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "dsp/backend_kernels.h"

namespace mmr::dsp {

namespace {

const KernelTable* table_for(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return detail::scalar_table();
    case Backend::kPortable:
      return detail::portable_table();
    case Backend::kAvx2:
      return detail::avx2_table();
    case Backend::kNeon:
      return detail::neon_table();
  }
  return nullptr;
}

bool cpu_supports(Backend b) {
  switch (b) {
    case Backend::kScalar:
    case Backend::kPortable:
      return true;
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

// Priority order for automatic selection and compiled_backends().
constexpr Backend kPriority[] = {Backend::kAvx2, Backend::kNeon,
                                 Backend::kPortable, Backend::kScalar};

std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<Backend> g_backend{Backend::kScalar};

// First-use initialization (not static-init): resolves the
// MMR_KERNEL_BACKEND override, falling back to automatic selection with
// a stderr warning rather than throwing from a pre-main context.
void ensure_init() {
  static const bool init = [] {
    Backend pick = best_backend();
    if (const char* env = std::getenv("MMR_KERNEL_BACKEND")) {
      const auto parsed = parse_backend(env);
      if (!parsed) {
        std::fprintf(stderr,
                     "mmr: MMR_KERNEL_BACKEND=%s is not a known backend "
                     "(scalar|portable|avx2|neon|auto); using %s\n",
                     env, std::string(backend_name(pick)).c_str());
      } else if (!backend_supported(*parsed)) {
        std::fprintf(stderr,
                     "mmr: MMR_KERNEL_BACKEND=%s is not compiled in or not "
                     "executable on this CPU; using %s\n",
                     env, std::string(backend_name(pick)).c_str());
      } else {
        pick = *parsed;
      }
    }
    g_table.store(table_for(pick), std::memory_order_relaxed);
    g_backend.store(pick, std::memory_order_relaxed);
    return true;
  }();
  (void)init;
}

}  // namespace

std::vector<Backend> compiled_backends() {
  std::vector<Backend> out;
  for (Backend b : kPriority) {
    if (table_for(b) != nullptr) out.push_back(b);
  }
  return out;
}

bool backend_supported(Backend backend) {
  return table_for(backend) != nullptr && cpu_supports(backend);
}

Backend best_backend() {
  for (Backend b : kPriority) {
    if (backend_supported(b)) return b;
  }
  return Backend::kScalar;
}

Backend active_backend() {
  ensure_init();
  return g_backend.load(std::memory_order_relaxed);
}

bool set_backend(Backend backend) {
  ensure_init();
  if (!backend_supported(backend)) return false;
  g_table.store(table_for(backend), std::memory_order_relaxed);
  g_backend.store(backend, std::memory_order_relaxed);
  return true;
}

const KernelTable& active_table() {
  ensure_init();
  return *g_table.load(std::memory_order_relaxed);
}

std::string_view backend_name(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kPortable:
      return "portable";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "portable") return Backend::kPortable;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "neon") return Backend::kNeon;
  if (name == "auto") return best_backend();
  return std::nullopt;
}

KernelTolerances tolerances(Backend backend) {
  // Budgets are a CONTRACT, not a snapshot of today's libm; measured
  // error is typically well under them. The abs_tol arm is relative to
  // the natural scale of the computation (sum of term magnitudes for
  // reductions, |alpha| for accumulates, 1 for unit phasors); see
  // tests/common/diff_harness.h. The dominant fast-path error is the
  // anchor+delta phase split -- fl(step*i) + fl(step*k) differs from
  // fl(step*(i+k)) by ~1 ulp of the TOTAL phase, so the absolute error
  // grows like ulp(|step| * n): < 1e-13 for production steering ranges
  // (total phase < ~1e3 rad), bounded by 1e-11 for total phase up to
  // ~4e4 rad, which the contracts below state.
  switch (backend) {
    case Backend::kScalar:
      return KernelTolerances{};  // the reference: exact by definition
    case Backend::kPortable:
    case Backend::kNeon:  // reuses the portable phasor/delay kernels
    case Backend::kAvx2:
      return KernelTolerances{
          /*phasor_ramp=*/{64, 1e-11},
          /*dot=*/{512, 1e-11},
          /*axpy=*/{64, 1e-11},
          /*delay_phasors=*/{512, 1e-9},
      };
  }
  return KernelTolerances{};
}

}  // namespace mmr::dsp
