// Runtime-dispatched SIMD backends for the dsp::kernels hot kernels.
//
// Every kernel in dsp/kernels.h routes through a per-process dispatch
// table selected at startup:
//
//   * kScalar   -- the bit-exact reference loops (the PR-2 kernels,
//                  unchanged). This is the GOLDEN path: figure goldens,
//                  journal byte-identity and every %.17g pin run on it.
//   * kPortable -- FMA-friendly restructuring in plain C++ (independent
//                  accumulators, anchor+delta phasor evaluation). Compiles
//                  and runs on every target.
//   * kAvx2     -- AVX2+FMA intrinsics (x86-64). Always COMPILED on x86
//                  via function-level target attributes -- no -mavx2
//                  build flag needed -- and only EXECUTED when CPUID
//                  reports avx2+fma, so -DMMR_NATIVE=OFF binaries run
//                  correctly on any x86 machine.
//   * kNeon     -- NEON intrinsics (aarch64, where NEON is baseline).
//
// Selection: highest-priority backend supported by the running CPU
// (avx2/neon > portable > scalar), overridden by the MMR_KERNEL_BACKEND
// environment variable or the benches' --kernel-backend flag. An override
// naming an uncompiled or unsupported backend falls back to automatic
// selection with a one-line stderr warning -- tests that must force a
// backend use set_backend() and check its return value instead.
//
// Accuracy contract: kScalar is the reference. Fast backends may
// reassociate accumulations and evaluate phasors by anchor+rotation, so
// their results differ from the reference by a declared, bounded amount
// (see tolerances() and the table in DESIGN.md), enforced per backend by
// tests/dsp/kernel_differential_test.cpp over >= 1e4 randomized cases.
//
// Thread safety: set_backend() publishes the table with a relaxed atomic
// store and kernels load it per call; select a backend at startup, before
// worker threads start issuing kernels, and leave it alone. Concurrent
// set_backend() calls are safe but make which-table-a-kernel-sees racy.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace mmr::dsp {

enum class Backend {
  kScalar = 0,
  kPortable = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// Dispatch table: one entry per hot kernel. Entries a backend does not
/// accelerate point at the scalar reference implementation.
struct KernelTable {
  void (*phasor_ramp_soa)(double step, std::size_t n, double* dst_re,
                          double* dst_im) = nullptr;
  void (*phasor_ramp_interleaved)(double step, std::size_t n,
                                  cplx* dst) = nullptr;
  cplx (*cdot)(const cplx* a, const cplx* b, std::size_t n) = nullptr;
  cplx (*dot_phasor_ramp)(double step, const cplx* w,
                          std::size_t n) = nullptr;
  void (*axpy)(cplx alpha, const cplx* x, cplx* y, std::size_t n) = nullptr;
  void (*axpy_phasor_ramp)(cplx alpha, double step, cplx* y,
                           std::size_t n) = nullptr;
  void (*accumulate_delay_phasors)(cplx alpha, const double* freqs,
                                   double delay_s, cplx* dst,
                                   std::size_t n) = nullptr;
};

/// Relative/absolute error bound of one kernel vs the scalar reference: a
/// result is in contract when it is within `max_ulp` ULPs of the
/// reference OR within `abs_tol * scale` absolutely, where `scale` is the
/// natural magnitude of the computation (sum of |term| for reductions,
/// 1.0 for unit phasors). The OR arm exists because ULP distance diverges
/// near cancellation-induced zeros even when the absolute error is ~eps.
struct Tolerance {
  std::uint64_t max_ulp = 0;
  double abs_tol = 0.0;
};

/// Declared per-kernel accuracy contract of a backend (the table enforced
/// by the backend-sweeping differential tier and printed in DESIGN.md).
struct KernelTolerances {
  Tolerance phasor_ramp;
  Tolerance dot;              ///< cdot and dot_phasor_ramp
  Tolerance axpy;             ///< axpy and axpy_phasor_ramp
  Tolerance delay_phasors;
};

/// Backends compiled into this binary, in dispatch-priority order
/// (fastest first). kScalar and kPortable are always present.
std::vector<Backend> compiled_backends();

/// True when the running CPU can execute `backend` (and it is compiled
/// in). kScalar/kPortable are always supported.
bool backend_supported(Backend backend);

/// The backend the automatic startup selection would pick on this
/// machine: the highest-priority supported backend.
Backend best_backend();

/// Currently active backend.
Backend active_backend();

/// Force `backend`; returns false (and leaves the active backend
/// unchanged) when it is not compiled in or not executable on this CPU.
bool set_backend(Backend backend);

/// Active dispatch table (always non-null entries).
const KernelTable& active_table();

/// Canonical lower-case name ("scalar", "portable", "avx2", "neon").
std::string_view backend_name(Backend backend);

/// Parse a backend name (or "auto" -> best_backend()); nullopt on
/// unknown names.
std::optional<Backend> parse_backend(std::string_view name);

/// Declared accuracy contract of `backend` (all-zero for kScalar).
KernelTolerances tolerances(Backend backend);

/// RAII backend override for tests: restores the previous backend on
/// destruction. `ok()` reports whether the switch took effect.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend backend)
      : previous_(active_backend()), ok_(set_backend(backend)) {}
  ~ScopedBackend() { set_backend(previous_); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;
  bool ok() const { return ok_; }

 private:
  Backend previous_;
  bool ok_;
};

namespace detail {
/// Per-backend kernel tables, defined in their backend_*.cpp TUs.
/// Null table => backend not compiled into this binary.
const KernelTable* scalar_table();
const KernelTable* portable_table();
const KernelTable* avx2_table();    // non-null on x86-64 builds
const KernelTable* neon_table();    // non-null on aarch64 builds
}  // namespace detail

}  // namespace mmr::dsp
