// Band-limited (sinc) pulse models. The super-resolution algorithm
// (paper Section 4.3, Eq. 22) fits attenuations of sinc pulses whose delays
// are known up to a small search window; these helpers build the sampled
// pulse dictionary.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace mmr::dsp {

/// Normalized sinc: sin(pi x) / (pi x), sinc(0) = 1.
double sinc(double x);

/// Sampled band-limited pulse: tap n of a pulse with delay tau [s] observed
/// by a receiver with bandwidth B [Hz] sampling at period ts [s]
/// (paper Eq. 22: sinc(B (n ts - tau))).
double sampled_sinc_tap(std::size_t n, double ts, double bandwidth, double tau);

/// Full sampled pulse of `num_taps` taps for delay tau.
RVec sampled_sinc(std::size_t num_taps, double ts, double bandwidth, double tau);

/// Band-limited interpolation of a sampled CIR at fractional delay tau:
/// sum_n x[n] sinc(B(tau - n ts)). Used to read a CIR "between taps".
cplx sinc_interpolate(const CVec& taps, double ts, double bandwidth, double tau);

}  // namespace mmr::dsp
