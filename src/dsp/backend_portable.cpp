// Portable fast backend: plain C++ restructurings that compile everywhere.
//
// Two ideas carry all the speedup:
//
//  * Anchor+delta phasor evaluation. exp(-j step i) is taken from libm
//    only every kRampBlock-th element (the anchor); the elements in
//    between are anchor * exp(-j step k) with the kRampBlock delta
//    rotations precomputed once. Cuts sincos calls by kRampBlock x and
//    bounds the per-element error to one complex multiply (~2 eps),
//    independent of n.
//
//  * Raw-formula complex arithmetic with independent accumulators.
//    std::complex operator* routes through __muldc3 (Annex G NaN
//    handling) at -O2; spelling out (ar*br - ai*bi, ar*bi + ai*br) and
//    splitting reductions across 4 accumulators keeps the loop in
//    registers. Reassociation changes rounding, covered by the declared
//    dot tolerance.
#include <cmath>
#include <cstddef>

#include "common/angles.h"
#include "common/types.h"
#include "dsp/backend.h"
#include "dsp/backend_kernels.h"

namespace mmr::dsp::detail {

namespace {

constexpr std::size_t kB = kRampBlock;

inline void exact_phasor(double step, std::size_t i, double* re, double* im) {
  const double ang = -step * static_cast<double>(i);
  *re = std::cos(ang);
  *im = std::sin(ang);
}

}  // namespace

void portable_phasor_ramp_soa(double step, std::size_t n, double* dst_re,
                              double* dst_im) {
  if (n < 2 * kB) {
    scalar_phasor_ramp_soa(step, n, dst_re, dst_im);
    return;
  }
  const RampDeltas d = compute_ramp_deltas(step);
  std::size_t i = 0;
  for (; i + kB <= n; i += kB) {
    double are;
    double aim;
    exact_phasor(step, i, &are, &aim);
    for (std::size_t k = 0; k < kB; ++k) {
      dst_re[i + k] = are * d.re[k] - aim * d.im[k];
      dst_im[i + k] = aim * d.re[k] + are * d.im[k];
    }
  }
  for (; i < n; ++i) exact_phasor(step, i, &dst_re[i], &dst_im[i]);
}

void portable_phasor_ramp_interleaved(double step, std::size_t n, cplx* dst) {
  if (n < 2 * kB) {
    scalar_phasor_ramp_interleaved(step, n, dst);
    return;
  }
  const RampDeltas d = compute_ramp_deltas(step);
  double* out = reinterpret_cast<double*>(dst);
  std::size_t i = 0;
  for (; i + kB <= n; i += kB) {
    double are;
    double aim;
    exact_phasor(step, i, &are, &aim);
    for (std::size_t k = 0; k < kB; ++k) {
      out[2 * (i + k)] = are * d.re[k] - aim * d.im[k];
      out[2 * (i + k) + 1] = aim * d.re[k] + are * d.im[k];
    }
  }
  for (; i < n; ++i) {
    exact_phasor(step, i, &out[2 * i], &out[2 * i + 1]);
  }
}

cplx portable_cdot(const cplx* a, const cplx* b, std::size_t n) {
  const double* ap = reinterpret_cast<const double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  double acc_re[4] = {0.0, 0.0, 0.0, 0.0};
  double acc_im[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t j = 0; j < 4; ++j) {
      const double ar = ap[2 * (i + j)];
      const double ai = ap[2 * (i + j) + 1];
      const double br = bp[2 * (i + j)];
      const double bi = bp[2 * (i + j) + 1];
      acc_re[j] += ar * br - ai * bi;
      acc_im[j] += ar * bi + ai * br;
    }
  }
  // Deterministic combine order: ((0+1)+(2+3)), then the tail in element
  // order. Fixed per backend so repeated calls are bit-stable.
  double re = (acc_re[0] + acc_re[1]) + (acc_re[2] + acc_re[3]);
  double im = (acc_im[0] + acc_im[1]) + (acc_im[2] + acc_im[3]);
  for (; i < n; ++i) {
    const double ar = ap[2 * i];
    const double ai = ap[2 * i + 1];
    const double br = bp[2 * i];
    const double bi = bp[2 * i + 1];
    re += ar * br - ai * bi;
    im += ar * bi + ai * br;
  }
  return cplx(re, im);
}

cplx portable_dot_phasor_ramp(double step, const cplx* w, std::size_t n) {
  if (n < 2 * kB) return scalar_dot_phasor_ramp(step, w, n);
  const RampDeltas d = compute_ramp_deltas(step);
  const double* wp = reinterpret_cast<const double*>(w);
  double acc_re[4] = {0.0, 0.0, 0.0, 0.0};
  double acc_im[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + kB <= n; i += kB) {
    double are;
    double aim;
    exact_phasor(step, i, &are, &aim);
    for (std::size_t k = 0; k < kB; ++k) {
      const double pre = are * d.re[k] - aim * d.im[k];
      const double pim = aim * d.re[k] + are * d.im[k];
      const double wr = wp[2 * (i + k)];
      const double wi = wp[2 * (i + k) + 1];
      acc_re[k & 3] += pre * wr - pim * wi;
      acc_im[k & 3] += pre * wi + pim * wr;
    }
  }
  double re = (acc_re[0] + acc_re[1]) + (acc_re[2] + acc_re[3]);
  double im = (acc_im[0] + acc_im[1]) + (acc_im[2] + acc_im[3]);
  for (; i < n; ++i) {
    double pre;
    double pim;
    exact_phasor(step, i, &pre, &pim);
    const double wr = wp[2 * i];
    const double wi = wp[2 * i + 1];
    re += pre * wr - pim * wi;
    im += pre * wi + pim * wr;
  }
  return cplx(re, im);
}

void portable_axpy(cplx alpha, const cplx* x, cplx* y, std::size_t n) {
  const double ar = alpha.real();
  const double ai = alpha.imag();
  const double* xp = reinterpret_cast<const double*>(x);
  double* yp = reinterpret_cast<double*>(y);
  for (std::size_t i = 0; i < n; ++i) {
    const double xr = xp[2 * i];
    const double xi = xp[2 * i + 1];
    yp[2 * i] += ar * xr - ai * xi;
    yp[2 * i + 1] += ar * xi + ai * xr;
  }
}

void portable_axpy_phasor_ramp(cplx alpha, double step, cplx* y,
                               std::size_t n) {
  if (n < 2 * kB) {
    scalar_axpy_phasor_ramp(alpha, step, y, n);
    return;
  }
  const RampDeltas d = compute_ramp_deltas(step);
  const double ar = alpha.real();
  const double ai = alpha.imag();
  double* yp = reinterpret_cast<double*>(y);
  std::size_t i = 0;
  for (; i + kB <= n; i += kB) {
    double are;
    double aim;
    exact_phasor(step, i, &are, &aim);
    for (std::size_t k = 0; k < kB; ++k) {
      const double pre = are * d.re[k] - aim * d.im[k];
      const double pim = aim * d.re[k] + are * d.im[k];
      yp[2 * (i + k)] += ar * pre - ai * pim;
      yp[2 * (i + k) + 1] += ar * pim + ai * pre;
    }
  }
  for (; i < n; ++i) {
    double pre;
    double pim;
    exact_phasor(step, i, &pre, &pim);
    yp[2 * i] += ar * pre - ai * pim;
    yp[2 * i + 1] += ar * pim + ai * pre;
  }
}

void portable_accumulate_delay_phasors(cplx alpha, const double* freqs,
                                       double delay_s, cplx* dst,
                                       std::size_t n) {
  double f0 = 0.0;
  double df = 0.0;
  if (n < 2 * kB || !affine_freqs(freqs, n, &f0, &df)) {
    scalar_accumulate_delay_phasors(alpha, freqs, delay_s, dst, n);
    return;
  }
  // Anchors use the ACTUAL freqs[] value with the scalar association
  // order, so anchor elements match the reference to one complex
  // multiply; interior elements additionally absorb the (tiny, checked)
  // deviation of the grid from perfectly affine.
  double dre[kB];
  double dim[kB];
  for (std::size_t k = 0; k < kB; ++k) {
    const double ang = -2.0 * kPi * (df * static_cast<double>(k)) * delay_s;
    dre[k] = std::cos(ang);
    dim[k] = std::sin(ang);
  }
  const double ar = alpha.real();
  const double ai = alpha.imag();
  double* dp = reinterpret_cast<double*>(dst);
  std::size_t i = 0;
  for (; i + kB <= n; i += kB) {
    const double ang = -2.0 * kPi * freqs[i] * delay_s;
    const double are = std::cos(ang);
    const double aim = std::sin(ang);
    for (std::size_t k = 0; k < kB; ++k) {
      const double pre = are * dre[k] - aim * dim[k];
      const double pim = aim * dre[k] + are * dim[k];
      dp[2 * (i + k)] += ar * pre - ai * pim;
      dp[2 * (i + k) + 1] += ar * pim + ai * pre;
    }
  }
  for (; i < n; ++i) {
    const double ang = -2.0 * kPi * freqs[i] * delay_s;
    const double pre = std::cos(ang);
    const double pim = std::sin(ang);
    dp[2 * i] += ar * pre - ai * pim;
    dp[2 * i + 1] += ar * pim + ai * pre;
  }
}

const KernelTable* portable_table() {
  static const KernelTable table = [] {
    KernelTable t;
    t.phasor_ramp_soa = &portable_phasor_ramp_soa;
    t.phasor_ramp_interleaved = &portable_phasor_ramp_interleaved;
    t.cdot = &portable_cdot;
    t.dot_phasor_ramp = &portable_dot_phasor_ramp;
    t.axpy = &portable_axpy;
    t.axpy_phasor_ramp = &portable_axpy_phasor_ramp;
    t.accumulate_delay_phasors = &portable_accumulate_delay_phasors;
    return t;
  }();
  return &table;
}

}  // namespace mmr::dsp::detail
