#include "dsp/kernels.h"

#include <cmath>

#include "common/error.h"
#include "dsp/backend.h"

namespace mmr::dsp {

CVec CplxBatch::row(std::size_t r) const {
  MMR_EXPECTS(r < rows_);
  CVec out(cols_);
  const double* re = row_re(r);
  const double* im = row_im(r);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = cplx(re[c], im[c]);
  return out;
}

cplx unit_phasor(double step, std::size_t i) {
  const double ang = -step * static_cast<double>(i);
  return cplx(std::cos(ang), std::sin(ang));
}

// Every batched kernel below routes through the active backend's
// dispatch table (dsp/backend.h). The scalar reference implementations
// live in backend_scalar.cpp, bit-for-bit the loops that used to sit
// here.

void phasor_ramp(double step, std::size_t n, cplx* dst) {
  active_table().phasor_ramp_interleaved(step, n, dst);
}

void phasor_ramp(double step, std::size_t n, double* dst_re, double* dst_im) {
  active_table().phasor_ramp_soa(step, n, dst_re, dst_im);
}

cplx dot_phasor_ramp(double step, const cplx* w, std::size_t n) {
  return active_table().dot_phasor_ramp(step, w, n);
}

cplx cdot(const cplx* a, const cplx* b, std::size_t n) {
  return active_table().cdot(a, b, n);
}

void axpy(cplx alpha, const cplx* x, cplx* y, std::size_t n) {
  active_table().axpy(alpha, x, y, n);
}

void axpy_phasor_ramp(cplx alpha, double step, cplx* y, std::size_t n) {
  active_table().axpy_phasor_ramp(alpha, step, y, n);
}

void accumulate_delay_phasors(cplx alpha, const double* freqs, double delay_s,
                              cplx* dst, std::size_t n) {
  active_table().accumulate_delay_phasors(alpha, freqs, delay_s, dst, n);
}

}  // namespace mmr::dsp
