#include "dsp/kernels.h"

#include <cmath>

#include "common/angles.h"

namespace mmr::dsp {

CVec CplxBatch::row(std::size_t r) const {
  CVec out(cols_);
  const double* re = row_re(r);
  const double* im = row_im(r);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = cplx(re[c], im[c]);
  return out;
}

cplx unit_phasor(double step, std::size_t i) {
  const double ang = -step * static_cast<double>(i);
  return cplx(std::cos(ang), std::sin(ang));
}

void phasor_ramp(double step, std::size_t n, cplx* dst) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = unit_phasor(step, i);
}

void phasor_ramp(double step, std::size_t n, double* dst_re, double* dst_im) {
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = -step * static_cast<double>(i);
    dst_re[i] = std::cos(ang);
    dst_im[i] = std::sin(ang);
  }
}

cplx dot_phasor_ramp(double step, const cplx* w, std::size_t n) {
  cplx acc{};
  std::size_t i = 0;
  // Unrolled by 4 into ONE accumulator: the additions stay in element
  // order, so the sum rounds exactly like the scalar reference loop.
  for (; i + 4 <= n; i += 4) {
    acc += unit_phasor(step, i) * w[i];
    acc += unit_phasor(step, i + 1) * w[i + 1];
    acc += unit_phasor(step, i + 2) * w[i + 2];
    acc += unit_phasor(step, i + 3) * w[i + 3];
  }
  for (; i < n; ++i) acc += unit_phasor(step, i) * w[i];
  return acc;
}

cplx cdot(const cplx* a, const cplx* b, std::size_t n) {
  cplx acc{};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc += a[i] * b[i];
    acc += a[i + 1] * b[i + 1];
    acc += a[i + 2] * b[i + 2];
    acc += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(cplx alpha, const cplx* x, cplx* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void axpy_phasor_ramp(cplx alpha, double step, cplx* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * unit_phasor(step, i);
}

void accumulate_delay_phasors(cplx alpha, const double* freqs, double delay_s,
                              cplx* dst, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = -2.0 * kPi * freqs[k] * delay_s;
    dst[k] += alpha * cplx(std::cos(ang), std::sin(ang));
  }
}

}  // namespace mmr::dsp
