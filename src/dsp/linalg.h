// Small dense complex linear algebra: just enough for the super-resolution
// solver (regularized least squares, paper Eq. 23) and oracle beamforming.
// Matrices are row-major and small (tens of rows/cols), so a straightforward
// Cholesky on the normal equations is both adequate and robust given the
// ridge term always present in our use.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace mmr::dsp {

class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  cplx& operator()(std::size_t r, std::size_t c);
  const cplx& operator()(std::size_t r, std::size_t c) const;

  CMatrix hermitian() const;  ///< conjugate transpose

  static CMatrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  CVec data_;
};

CMatrix operator*(const CMatrix& a, const CMatrix& b);
CVec operator*(const CMatrix& a, const CVec& x);
CMatrix operator+(const CMatrix& a, const CMatrix& b);
CMatrix operator*(cplx s, const CMatrix& a);

/// Hermitian positive-definite solve A x = b via Cholesky (A = L L^H).
/// Throws std::runtime_error if A is not (numerically) positive definite.
CVec cholesky_solve(const CMatrix& a, const CVec& b);

/// Ridge-regularized least squares: argmin_x ||b - S x||^2 + lambda ||x||^2,
/// solved through the normal equations (S^H S + lambda I) x = S^H b.
/// lambda > 0 guarantees positive definiteness.
CVec ridge_least_squares(const CMatrix& s, const CVec& b, double lambda);

/// Euclidean norm, inner product <a, b> = sum conj(a_i) b_i, and helpers.
double norm(const CVec& v);
cplx inner(const CVec& a, const CVec& b);
CVec conj(const CVec& v);

}  // namespace mmr::dsp
