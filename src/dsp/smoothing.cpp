#include "dsp/smoothing.h"

#include "common/error.h"

namespace mmr::dsp {

Ewma::Ewma(double rho) : rho_(rho) { MMR_EXPECTS(rho >= 0.0 && rho < 1.0); }

double Ewma::update(double x) {
  if (!primed_) {
    y_ = x;
    primed_ = true;
  } else {
    y_ = rho_ * y_ + (1.0 - rho_) * x;
  }
  return y_;
}

double Ewma::value() const {
  MMR_EXPECTS(primed_);
  return y_;
}

void Ewma::reset() {
  primed_ = false;
  y_ = 0.0;
}

RVec ewma_filter(const RVec& x, double rho) {
  Ewma f(rho);
  RVec out;
  out.reserve(x.size());
  for (double v : x) out.push_back(f.update(v));
  return out;
}

}  // namespace mmr::dsp
