// Batched complex microkernels: phasor ramps (steering-vector innards),
// fused phasor inner products (array factors), and complex axpy — the
// primitives every beamforming hot loop reduces to.
//
// Bit-compatibility contract: on the SCALAR backend every kernel performs
// the SAME per-element floating-point operations in the SAME order as the
// scalar loops it replaces (array/geometry.cpp, array/pattern.cpp,
// channel/wideband.cpp as of PR-1). Manual unrolling never reassociates
// the accumulation, so a kernel result is reproducible against a naive
// reference to <= 1 ULP (empirically bit-identical; enforced by
// tests/dsp/kernel_differential_test over >= 1e4 randomized cases). This
// is what lets the PatternCache hand one worker's result to every other
// sweep worker without perturbing the golden figures.
//
// Since PR-6 every batched kernel dispatches through a runtime-selected
// backend table (dsp/backend.h): the scalar reference keeps the contract
// above verbatim, while the portable/AVX2/NEON backends may reassociate
// sums and evaluate phasors by anchor+rotation within a declared,
// test-enforced tolerance (dsp::tolerances()). Goldens and journal
// byte-identity always run against the scalar reference.
//
// Edge/aliasing contract (all backends, enforced by
// tests/dsp/backend_test.cpp):
//  * n == 0 is a no-op (reductions return 0+0j); n == 1 is exact libm.
//  * axpy allows x == y (full aliasing: y[i] += alpha*y[i] element-wise).
//    PARTIALLY overlapping x/y ranges are undefined across all backends.
//  * phasor_ramp/axpy_phasor_ramp/accumulate_delay_phasors destinations
//    must not overlap their inputs (freqs vs dst).
#pragma once

#include <cstddef>

#include "common/types.h"

namespace mmr::dsp {

/// SoA batch of `rows` complex vectors of length `cols` in ONE contiguous
/// allocation. Row r's layout is [re x cols][im x cols], so a row's two
/// planes are adjacent in memory and a row can be processed without
/// touching any other row's cache lines.
class CplxBatch {
 public:
  CplxBatch() = default;
  CplxBatch(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(2 * rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double* row_re(std::size_t r) { return data_.data() + 2 * r * cols_; }
  double* row_im(std::size_t r) { return row_re(r) + cols_; }
  const double* row_re(std::size_t r) const {
    return data_.data() + 2 * r * cols_;
  }
  const double* row_im(std::size_t r) const { return row_re(r) + cols_; }

  cplx at(std::size_t r, std::size_t c) const {
    return cplx(row_re(r)[c], row_im(r)[c]);
  }

  /// Materialize row r as an interleaved complex vector. Bounds-checked
  /// (throws std::logic_error on r >= rows); the pointer accessors above
  /// stay unchecked -- they are the hot path.
  CVec row(std::size_t r) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  RVec data_;
};

/// Unit phasor exp(-j step i): the per-element op of a steering vector
/// with electrical phase step `step` between adjacent elements.
cplx unit_phasor(double step, std::size_t i);

/// Fill dst[i] = exp(-j step i) for i in [0, n) (interleaved complex).
void phasor_ramp(double step, std::size_t n, cplx* dst);

/// SoA variant: dst_re[i] = cos(-step i), dst_im[i] = sin(-step i).
void phasor_ramp(double step, std::size_t n, double* dst_re, double* dst_im);

/// Fused array factor: sum_i exp(-j step i) * w[i], without materializing
/// the phasor ramp. Sequential single-accumulator sum (unrolled by 4, no
/// reassociation) — matches `steering_vector` + sequential dot bit for bit.
cplx dot_phasor_ramp(double step, const cplx* w, std::size_t n);

/// Unconjugated complex inner product sum_i a[i] * b[i], sequential
/// single-accumulator order (unrolled by 4, no reassociation).
cplx cdot(const cplx* a, const cplx* b, std::size_t n);

/// y[i] += alpha * x[i] for i in [0, n).
void axpy(cplx alpha, const cplx* x, cplx* y, std::size_t n);

/// Fused steering accumulate: y[i] += alpha * exp(-j step i). Replaces
/// "build steering vector, then scale-add" without the temporary.
void axpy_phasor_ramp(cplx alpha, double step, cplx* y, std::size_t n);

/// Per-subcarrier delay rotation accumulate (paper Eq. 26 inner loop):
/// dst[k] += alpha * exp(j * ((-2 pi) * freqs[k]) * delay_s). The phase is
/// evaluated as ((-2 pi) * f) * delay — the exact association order of the
/// scalar loop it replaces in channel/wideband.cpp.
void accumulate_delay_phasors(cplx alpha, const double* freqs, double delay_s,
                              cplx* dst, std::size_t n);

}  // namespace mmr::dsp
