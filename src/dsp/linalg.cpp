#include "dsp/linalg.h"

#include <cmath>
#include <stdexcept>

#include "common/error.h"

namespace mmr::dsp {

CMatrix::CMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, cplx{}) {}

cplx& CMatrix::operator()(std::size_t r, std::size_t c) {
  MMR_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

const cplx& CMatrix::operator()(std::size_t r, std::size_t c) const {
  MMR_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

CMatrix CMatrix::hermitian() const {
  CMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = std::conj((*this)(r, c));
    }
  }
  return out;
}

CMatrix CMatrix::identity(std::size_t n) {
  CMatrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = cplx{1.0, 0.0};
  return out;
}

CMatrix operator*(const CMatrix& a, const CMatrix& b) {
  MMR_EXPECTS(a.cols() == b.rows());
  CMatrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const cplx aik = a(i, k);
      if (aik == cplx{}) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

CVec operator*(const CMatrix& a, const CVec& x) {
  MMR_EXPECTS(a.cols() == x.size());
  CVec out(a.rows(), cplx{});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    cplx acc{};
    for (std::size_t j = 0; j < a.cols(); ++j) acc += a(i, j) * x[j];
    out[i] = acc;
  }
  return out;
}

CMatrix operator+(const CMatrix& a, const CMatrix& b) {
  MMR_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  CMatrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) out(i, j) = a(i, j) + b(i, j);
  }
  return out;
}

CMatrix operator*(cplx s, const CMatrix& a) {
  CMatrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) out(i, j) = s * a(i, j);
  }
  return out;
}

CVec cholesky_solve(const CMatrix& a, const CVec& b) {
  MMR_EXPECTS(a.rows() == a.cols());
  MMR_EXPECTS(a.rows() == b.size());
  const std::size_t n = a.rows();
  // Factor A = L L^H (lower triangular L).
  CMatrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      cplx sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * std::conj(l(j, k));
      if (i == j) {
        const double diag = sum.real();
        if (diag <= 0.0 || std::abs(sum.imag()) > 1e-9 * (1.0 + diag)) {
          throw std::runtime_error(
              "cholesky_solve: matrix is not positive definite");
        }
        l(i, j) = cplx{std::sqrt(diag), 0.0};
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  // Forward substitution L y = b.
  CVec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    cplx sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Back substitution L^H x = y.
  CVec x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    cplx sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= std::conj(l(k, ii)) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

CVec ridge_least_squares(const CMatrix& s, const CVec& b, double lambda) {
  MMR_EXPECTS(lambda > 0.0);
  MMR_EXPECTS(s.rows() == b.size());
  const CMatrix sh = s.hermitian();
  CMatrix gram = sh * s;
  for (std::size_t i = 0; i < gram.rows(); ++i) gram(i, i) += lambda;
  const CVec rhs = sh * b;
  return cholesky_solve(gram, rhs);
}

double norm(const CVec& v) {
  double acc = 0.0;
  for (const cplx& c : v) acc += std::norm(c);
  return std::sqrt(acc);
}

cplx inner(const CVec& a, const CVec& b) {
  MMR_EXPECTS(a.size() == b.size());
  cplx acc{};
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::conj(a[i]) * b[i];
  return acc;
}

CVec conj(const CVec& v) {
  CVec out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::conj(v[i]);
  return out;
}

}  // namespace mmr::dsp
