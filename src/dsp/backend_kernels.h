// Internal declarations shared by the backend TUs (backend_*.cpp) and the
// dispatcher (backend.cpp). Not part of the public dsp API -- include
// dsp/backend.h instead.
//
// Naming: <backend>_<kernel>. Every backend must match the semantics of
// the scalar reference within its declared tolerance (dsp/backend.h);
// scalar_* IS the reference and is shared freely by other tables for
// kernels they do not accelerate.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace mmr::dsp::detail {

// ---------------------------------------------------------------------------
// Scalar reference (backend_scalar.cpp): bit-exact PR-2 loops.
// ---------------------------------------------------------------------------
void scalar_phasor_ramp_soa(double step, std::size_t n, double* dst_re,
                            double* dst_im);
void scalar_phasor_ramp_interleaved(double step, std::size_t n, cplx* dst);
cplx scalar_cdot(const cplx* a, const cplx* b, std::size_t n);
cplx scalar_dot_phasor_ramp(double step, const cplx* w, std::size_t n);
void scalar_axpy(cplx alpha, const cplx* x, cplx* y, std::size_t n);
void scalar_axpy_phasor_ramp(cplx alpha, double step, cplx* y, std::size_t n);
void scalar_accumulate_delay_phasors(cplx alpha, const double* freqs,
                                     double delay_s, cplx* dst, std::size_t n);

// ---------------------------------------------------------------------------
// Portable FMA-restructured kernels (backend_portable.cpp): plain C++,
// compiled everywhere. Reassociated accumulations (4 independent
// accumulators) and anchor+delta phasor evaluation.
// ---------------------------------------------------------------------------
void portable_phasor_ramp_soa(double step, std::size_t n, double* dst_re,
                              double* dst_im);
void portable_phasor_ramp_interleaved(double step, std::size_t n, cplx* dst);
cplx portable_cdot(const cplx* a, const cplx* b, std::size_t n);
cplx portable_dot_phasor_ramp(double step, const cplx* w, std::size_t n);
void portable_axpy(cplx alpha, const cplx* x, cplx* y, std::size_t n);
void portable_axpy_phasor_ramp(cplx alpha, double step, cplx* y,
                               std::size_t n);
void portable_accumulate_delay_phasors(cplx alpha, const double* freqs,
                                       double delay_s, cplx* dst,
                                       std::size_t n);

// ---------------------------------------------------------------------------
// Shared building blocks.
// ---------------------------------------------------------------------------

/// Anchor block length of the anchor+delta phasor evaluation: phasors are
/// taken exact (libm sincos) every kRampBlock elements and filled in
/// between by one complex rotation each, bounding the per-element error
/// to ~2 rounding steps regardless of n.
inline constexpr std::size_t kRampBlock = 8;

/// exp(-j step k) for k in [0, kRampBlock), evaluated with libm (exact
/// reference values; delta[0] == (1, 0) exactly).
struct RampDeltas {
  double re[kRampBlock];
  double im[kRampBlock];
};
RampDeltas compute_ramp_deltas(double step);

/// True when freqs[] is an affine grid freqs[k] ~= f0 + k*df (relative
/// deviation <= 1e-9 of the grid span). Production subcarrier grids are;
/// arbitrary inputs fall back to the scalar delay-phasor loop.
bool affine_freqs(const double* freqs, std::size_t n, double* f0, double* df);

}  // namespace mmr::dsp::detail
