#include "dsp/polyfit.h"

#include <cmath>

#include "common/error.h"
#include "dsp/linalg.h"

namespace mmr::dsp {

RVec polyfit(const RVec& x, const RVec& y, std::size_t degree) {
  MMR_EXPECTS(x.size() == y.size());
  MMR_EXPECTS(x.size() >= degree + 1);
  const std::size_t m = x.size();
  const std::size_t n = degree + 1;
  // Vandermonde design matrix; reuse the complex solver (imag parts zero).
  CMatrix v(m, n);
  CVec rhs(m);
  for (std::size_t i = 0; i < m; ++i) {
    double p = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      v(i, j) = cplx{p, 0.0};
      p *= x[i];
    }
    rhs[i] = cplx{y[i], 0.0};
  }
  // Tiny ridge for numerical safety; does not noticeably bias the fit.
  const CVec c = ridge_least_squares(v, rhs, 1e-12);
  RVec out(n);
  for (std::size_t j = 0; j < n; ++j) out[j] = c[j].real();
  return out;
}

double polyval(const RVec& coeffs, double x) {
  double acc = 0.0;
  for (std::size_t j = coeffs.size(); j-- > 0;) acc = acc * x + coeffs[j];
  return acc;
}

}  // namespace mmr::dsp
