// Gray-coded square QAM constellations (QPSK..256-QAM), the alphabets the
// NR MCS table schedules. Symbols are normalized to unit average energy so
// SNR comparisons across orders are fair.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace mmr::phy {

enum class Modulation : std::uint8_t {
  kQpsk,    ///< 2 bits/symbol
  kQam16,   ///< 4 bits/symbol
  kQam64,   ///< 6 bits/symbol
  kQam256,  ///< 8 bits/symbol
};

/// Bits carried per symbol.
unsigned bits_per_symbol(Modulation m);

/// Constellation size (2^bits).
unsigned constellation_size(Modulation m);

/// Map a symbol index (0 .. size-1) to its unit-average-energy point.
/// Gray mapping per I/Q axis.
cplx map_symbol(Modulation m, unsigned index);

/// Hard-decision demap: nearest constellation point's index.
unsigned demap_symbol(Modulation m, cplx received);

/// Map a bit vector (MSB first per symbol) into symbols. Requires
/// bits.size() divisible by bits_per_symbol(m).
CVec modulate_bits(Modulation m, const std::vector<std::uint8_t>& bits);

/// Hard-demap symbols back to bits.
std::vector<std::uint8_t> demodulate_bits(Modulation m, const CVec& symbols);

/// Theoretical symbol error rate of square M-QAM over AWGN at the given
/// SNR (per-symbol Es/N0), for test oracles.
double theoretical_ser(Modulation m, double snr_db);

}  // namespace mmr::phy
