// 5G NR timing numerology (TS 38.211). The testbed runs FR2 numerology
// mu = 3: 120 kHz subcarrier spacing, 0.125 ms slots of 14 OFDM symbols.
// All beam-management overhead accounting (Fig. 18d) hangs off these
// durations.
#pragma once

#include <cstddef>

namespace mmr::phy {

struct Numerology {
  /// 3GPP mu parameter; SCS = 15 kHz * 2^mu.
  unsigned mu = 3;

  double subcarrier_spacing_hz() const;
  /// Slot duration: 1 ms / 2^mu.
  double slot_duration_s() const;
  /// 14 OFDM symbols per slot (normal cyclic prefix).
  static constexpr std::size_t symbols_per_slot = 14;
  /// Duration of one OFDM symbol (slot / 14; ~8.93 us at mu=3).
  double symbol_duration_s() const;
  /// Slots per second.
  double slots_per_second() const;

  /// FR2 default used by the paper's testbed.
  static Numerology fr2_120khz() { return Numerology{3}; }
};

}  // namespace mmr::phy
