#include "phy/estimator.h"

#include <cmath>

#include "common/angles.h"
#include "common/error.h"

namespace mmr::phy {

double noise_reference(const LinkBudget& budget) {
  return budget.gain_for_snr(0.0);
}

ChannelEstimator::ChannelEstimator(EstimatorConfig config, Rng rng)
    : config_(config), rng_(rng) {
  MMR_EXPECTS(config_.noise_gain_0db > 0.0);
  MMR_EXPECTS(config_.pilot_averaging_gain >= 1.0);
}

CVec ChannelEstimator::estimate(const CVec& true_csi) {
  MMR_EXPECTS(!true_csi.empty());
  // CFO: per-probe carrier phase.
  if (config_.random_cfo_phase) {
    cfo_phase_ = rng_.uniform(0.0, 2.0 * kPi);
  } else {
    cfo_phase_ = wrap_2pi(cfo_phase_ +
                          rng_.normal(0.0, config_.cfo_walk_std_rad));
  }
  // SFO: linear phase ramp across subcarriers, fresh slope per probe.
  const double slope = rng_.normal(0.0, config_.sfo_slope_std_rad);
  // AWGN in channel-gain units. |H|^2 / noise_var == estimation SNR.
  const double noise_var =
      config_.noise_gain_0db / config_.pilot_averaging_gain;

  CVec est(true_csi.size());
  for (std::size_t k = 0; k < true_csi.size(); ++k) {
    const double phase = cfo_phase_ + slope * static_cast<double>(k);
    const cplx rot(std::cos(phase), std::sin(phase));
    est[k] = (true_csi[k] + rng_.complex_normal(noise_var)) * rot;
  }
  return est;
}

double ChannelEstimator::estimate_power(const CVec& true_csi) {
  const CVec est = estimate(true_csi);
  return true_power(est);
}

double ChannelEstimator::true_power(const CVec& csi) {
  MMR_EXPECTS(!csi.empty());
  double acc = 0.0;
  for (const cplx& h : csi) acc += std::norm(h);
  return acc / static_cast<double>(csi.size());
}

}  // namespace mmr::phy
