#include "phy/reference_signals.h"

#include <cmath>

#include "common/error.h"

namespace mmr::phy {

double ssb_duration_s(const ReferenceSignalConfig& config) {
  return static_cast<double>(config.slots_per_ssb) *
         config.numerology.slot_duration_s();
}

double csi_rs_duration_s(const ReferenceSignalConfig& config,
                         bool slot_granular) {
  if (slot_granular) return config.numerology.slot_duration_s();
  return config.numerology.symbol_duration_s();
}

double exhaustive_training_airtime_s(const ReferenceSignalConfig& config,
                                     std::size_t num_beams) {
  MMR_EXPECTS(num_beams >= 1);
  return static_cast<double>(num_beams) * ssb_duration_s(config);
}

double fast_training_airtime_s(const ReferenceSignalConfig& config,
                               std::size_t num_antennas) {
  MMR_EXPECTS(num_antennas >= 2);
  // log2(N) coarse probes plus a directionality-proportional refinement:
  // narrower beams (more antennas) need a second, finer pass. Calibrated to
  // the paper's quoted 3 ms at N=8 and 6 ms at N=64.
  const double log_n = std::log2(static_cast<double>(num_antennas));
  const double probes = 2.0 * log_n;  // bisection out + back
  return probes * ssb_duration_s(config);
}

double ssb_burst_airtime_s(const ReferenceSignalConfig& config,
                           std::size_t num_beams) {
  MMR_EXPECTS(num_beams >= 1);
  const double slots = std::ceil(static_cast<double>(num_beams) / 2.0);
  return slots * config.numerology.slot_duration_s() + 1.0e-3;
}

double mmreliable_refinement_airtime_s(const ReferenceSignalConfig& config,
                                       std::size_t num_beams) {
  MMR_EXPECTS(num_beams >= 1);
  const double probes = 2.0 * static_cast<double>(num_beams - 1) + 1.0;
  return probes * csi_rs_duration_s(config, /*slot_granular=*/true);
}

double overhead_fraction(double probe_airtime_s, double period_s) {
  MMR_EXPECTS(period_s > 0.0);
  MMR_EXPECTS(probe_airtime_s >= 0.0);
  return std::min(1.0, probe_airtime_s / period_s);
}

}  // namespace mmr::phy
