// 5G NR reference-signal scheduling and beam-management overhead model
// (paper Sections 2.2, 5.2, 6.2 / Fig. 18d).
//
// Two signal types matter:
//  * SSB (Synchronization Signal Block): used for beam training. One SSB
//    occupies 4 slots (0.5 ms); a full sweep sends one SSB per scanned
//    direction; the default period is 20 ms.
//  * CSI-RS: one OFDM symbol, schedulable every 0.5-80 ms; mmReliable's
//    probes ride on these.
#pragma once

#include <cstddef>

#include "phy/numerology.h"

namespace mmr::phy {

struct ReferenceSignalConfig {
  Numerology numerology = Numerology::fr2_120khz();
  /// SSB periodicity (default 20 ms in NR).
  double ssb_period_s = 20.0e-3;
  /// CSI-RS periodicity used for beam maintenance.
  double csi_rs_period_s = 20.0e-3;
  /// Slots occupied by one SSB (4 slots = 0.5 ms at mu=3 per the paper).
  std::size_t slots_per_ssb = 4;
};

/// Airtime cost of one SSB [s].
double ssb_duration_s(const ReferenceSignalConfig& config);

/// Airtime cost of one CSI-RS probe [s]. A CSI-RS occupies a single OFDM
/// symbol, but scheduling is slot-granular: when `slot_granular` is true
/// (how the overhead comparison in Fig. 18d counts it) each probe costs a
/// full slot.
double csi_rs_duration_s(const ReferenceSignalConfig& config,
                         bool slot_granular = true);

/// Total airtime of an exhaustive beam-training sweep over `num_beams`
/// directions using SSBs.
double exhaustive_training_airtime_s(const ReferenceSignalConfig& config,
                                     std::size_t num_beams);

/// Airtime of a fast (logarithmic, multi-armed hierarchical) sweep for an
/// `num_antennas`-element array (Hassanieh et al.; used as the generous
/// baseline in Fig. 18d). Probe count ~ c * log2(N) SSBs, and beams grow
/// more directional with N which adds a refinement pass.
double fast_training_airtime_s(const ReferenceSignalConfig& config,
                               std::size_t num_antennas);

/// Airtime of an SSB burst carrying `num_beams` SSBs packed two per slot
/// plus a fixed 1 ms of burst framing: the NR "5 ms to probe 64 beam
/// directions" cost (paper Section 2.2).
double ssb_burst_airtime_s(const ReferenceSignalConfig& config,
                           std::size_t num_beams);

/// Airtime of mmReliable's beam-refinement for a K-beam multi-beam:
/// 2(K-1) constructive-combining probes + 1 motion-disambiguation probe,
/// all CSI-RS (paper Section 6.2: 0.4 ms for 2-beam, ~0.6 ms for 3-beam).
double mmreliable_refinement_airtime_s(const ReferenceSignalConfig& config,
                                       std::size_t num_beams);

/// Fraction of airtime consumed when `probe_airtime_s` of probing happens
/// every `period_s`.
double overhead_fraction(double probe_airtime_s, double period_s);

}  // namespace mmr::phy
