// Link budget: maps the dimensionless channel/beamforming gains produced
// by the channel module to absolute SNR. Calibrated to the paper's
// testbed: 28 GHz, ~30 dBm EIRP-class transmit power into a 64-element
// array, 400 MHz noise bandwidth, indoor 7 m links measuring ~27 dB SNR
// (Fig. 15a).
#pragma once

namespace mmr::phy {

struct LinkBudget {
  /// Conducted transmit power [dBm] (before array gain; array gain comes
  /// out of the beamforming math itself).
  double tx_power_dbm = 20.0;
  /// Receiver noise figure [dB].
  double noise_figure_db = 7.0;
  /// Noise bandwidth [Hz].
  double bandwidth_hz = 400.0e6;
  /// Miscellaneous implementation loss [dB].
  double implementation_loss_db = 3.0;

  /// Thermal noise floor [dBm]: -174 + 10 log10(B) + NF.
  double noise_floor_dbm() const;

  /// SNR [dB] for a given end-to-end power gain (linear, includes path
  /// loss, blockage, and both array factors).
  double snr_db(double channel_power_gain_linear) const;

  /// Inverse: the channel power gain needed to hit a target SNR.
  double gain_for_snr(double snr_db) const;

  /// Paper testbed defaults (indoor, 400 MHz).
  static LinkBudget paper_indoor();
  /// Outdoor compact setup (USRP X300, 100 MHz).
  static LinkBudget paper_outdoor();
};

}  // namespace mmr::phy
