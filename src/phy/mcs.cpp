#include "phy/mcs.h"

#include <algorithm>

#include "common/constants.h"
#include "common/error.h"

namespace mmr::phy {

McsTable::McsTable(std::vector<McsEntry> entries)
    : entries_(std::move(entries)) {
  MMR_EXPECTS(!entries_.empty());
  MMR_EXPECTS(std::is_sorted(entries_.begin(), entries_.end(),
                             [](const McsEntry& a, const McsEntry& b) {
                               return a.min_snr_db < b.min_snr_db;
                             }));
}

const McsTable& McsTable::nr() {
  // SNR thresholds approximate the NR CQI table with a 6 dB floor for the
  // lowest usable scheme (paper: 6 dB SNR "required for decoding 5G-NR
  // OFDM signals").
  static const McsTable table(std::vector<McsEntry>{
      {6.0, "QPSK 1/3", 0.66},
      {8.0, "QPSK 1/2", 1.00},
      {10.0, "QPSK 3/4", 1.48},
      {12.0, "16QAM 1/2", 1.91},
      {14.0, "16QAM 2/3", 2.41},
      {16.0, "16QAM 5/6", 2.73},
      {18.0, "64QAM 1/2", 3.32},
      {20.0, "64QAM 2/3", 3.90},
      {22.0, "64QAM 3/4", 4.52},
      {24.0, "64QAM 5/6", 5.12},
      {26.0, "256QAM 3/4", 5.55},
      {28.0, "256QAM 4/5", 6.22},
      {30.0, "256QAM 7/8", 6.91},
      {32.0, "256QAM 15/16", 7.41},
  });
  return table;
}

const McsEntry* McsTable::select(double snr_db) const {
  const McsEntry* best = nullptr;
  for (const McsEntry& e : entries_) {
    if (snr_db >= e.min_snr_db) best = &e;
  }
  return best;
}

double McsTable::spectral_efficiency(double snr_db) const {
  const McsEntry* e = select(snr_db);
  return e == nullptr ? 0.0 : e->spectral_efficiency;
}

double McsTable::throughput_bps(double snr_db, double bandwidth_hz,
                                double overhead_fraction) const {
  MMR_EXPECTS(bandwidth_hz > 0.0);
  MMR_EXPECTS(overhead_fraction >= 0.0 && overhead_fraction < 1.0);
  return spectral_efficiency(snr_db) * bandwidth_hz *
         (1.0 - overhead_fraction);
}

const McsEntry& McsTable::entry(std::size_t idx) const {
  MMR_EXPECTS(idx < entries_.size());
  return entries_[idx];
}

}  // namespace mmr::phy
