#include "phy/qam.h"

#include <cmath>

#include "common/error.h"

namespace mmr::phy {
namespace {

// Per-axis levels for square QAM with sqrt(M) levels per axis.
unsigned levels_per_axis(Modulation m) {
  switch (m) {
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 8;
    case Modulation::kQam256: return 16;
  }
  return 2;
}

// Normalization so E[|s|^2] = 1: average energy of PAM levels
// {+-1, +-3, ...} per axis is (L^2 - 1)/3; two axes double it.
double axis_scale(Modulation m) {
  const double l = levels_per_axis(m);
  return std::sqrt(3.0 / (2.0 * (l * l - 1.0)));
}

// Gray code <-> binary.
unsigned gray_encode(unsigned b) { return b ^ (b >> 1); }

unsigned gray_decode(unsigned g) {
  unsigned b = 0;
  for (; g != 0; g >>= 1) b ^= g;
  return b;
}

// PAM level for a per-axis Gray index: index i (after Gray decode) maps to
// amplitude 2i - (L-1).
double pam_level(unsigned gray_index, unsigned levels) {
  const unsigned i = gray_decode(gray_index);
  return 2.0 * static_cast<double>(i) - (static_cast<double>(levels) - 1.0);
}

unsigned pam_index(double value, unsigned levels) {
  // Invert: nearest level index, then Gray encode.
  const double idx_f = (value + (static_cast<double>(levels) - 1.0)) / 2.0;
  long idx = std::lround(idx_f);
  if (idx < 0) idx = 0;
  if (idx >= static_cast<long>(levels)) idx = static_cast<long>(levels) - 1;
  return gray_encode(static_cast<unsigned>(idx));
}

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

}  // namespace

unsigned bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
    case Modulation::kQam256: return 8;
  }
  return 2;
}

unsigned constellation_size(Modulation m) { return 1u << bits_per_symbol(m); }

cplx map_symbol(Modulation m, unsigned index) {
  MMR_EXPECTS(index < constellation_size(m));
  const unsigned half_bits = bits_per_symbol(m) / 2;
  const unsigned levels = levels_per_axis(m);
  const unsigned i_bits = index >> half_bits;
  const unsigned q_bits = index & ((1u << half_bits) - 1u);
  const double scale = axis_scale(m);
  return {pam_level(i_bits, levels) * scale,
          pam_level(q_bits, levels) * scale};
}

unsigned demap_symbol(Modulation m, cplx received) {
  const unsigned half_bits = bits_per_symbol(m) / 2;
  const unsigned levels = levels_per_axis(m);
  const double scale = axis_scale(m);
  const unsigned i_bits = pam_index(received.real() / scale, levels);
  const unsigned q_bits = pam_index(received.imag() / scale, levels);
  return (i_bits << half_bits) | q_bits;
}

CVec modulate_bits(Modulation m, const std::vector<std::uint8_t>& bits) {
  const unsigned bps = bits_per_symbol(m);
  MMR_EXPECTS(bits.size() % bps == 0);
  CVec out;
  out.reserve(bits.size() / bps);
  for (std::size_t i = 0; i < bits.size(); i += bps) {
    unsigned index = 0;
    for (unsigned b = 0; b < bps; ++b) {
      MMR_EXPECTS(bits[i + b] <= 1);
      index = (index << 1) | bits[i + b];
    }
    out.push_back(map_symbol(m, index));
  }
  return out;
}

std::vector<std::uint8_t> demodulate_bits(Modulation m, const CVec& symbols) {
  const unsigned bps = bits_per_symbol(m);
  std::vector<std::uint8_t> out;
  out.reserve(symbols.size() * bps);
  for (const cplx& s : symbols) {
    const unsigned index = demap_symbol(m, s);
    for (unsigned b = 0; b < bps; ++b) {
      out.push_back((index >> (bps - 1 - b)) & 1u);
    }
  }
  return out;
}

double theoretical_ser(Modulation m, double snr_db) {
  // Square M-QAM over AWGN: P_axis = 2(1 - 1/L) Q(sqrt(3 Es/N0/(M-1))),
  // SER = 1 - (1 - P_axis)^2.
  const double snr = std::pow(10.0, snr_db / 10.0);
  const double big_m = constellation_size(m);
  const double l = levels_per_axis(m);
  const double arg = std::sqrt(3.0 * snr / (big_m - 1.0));
  const double p_axis = 2.0 * (1.0 - 1.0 / l) * q_function(arg);
  return 1.0 - (1.0 - p_axis) * (1.0 - p_axis);
}

}  // namespace mmr::phy
