#include "phy/link_budget.h"

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace mmr::phy {

double LinkBudget::noise_floor_dbm() const {
  MMR_EXPECTS(bandwidth_hz > 0.0);
  return -174.0 + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

double LinkBudget::snr_db(double channel_power_gain_linear) const {
  const double rx_dbm = tx_power_dbm + to_db(channel_power_gain_linear) -
                        implementation_loss_db;
  return rx_dbm - noise_floor_dbm();
}

double LinkBudget::gain_for_snr(double target_snr_db) const {
  const double rx_dbm = target_snr_db + noise_floor_dbm();
  return from_db(rx_dbm - tx_power_dbm + implementation_loss_db);
}

LinkBudget LinkBudget::paper_indoor() {
  return LinkBudget{20.0, 7.0, 400.0e6, 3.0};
}

LinkBudget LinkBudget::paper_outdoor() {
  return LinkBudget{24.0, 7.0, 100.0e6, 3.0};
}

}  // namespace mmr::phy
