#include "phy/ofdm.h"

#include <cmath>

#include "common/error.h"
#include "dsp/fft.h"

namespace mmr::phy {

CVec ofdm_modulate(const OfdmConfig& config, const CVec& grid) {
  MMR_EXPECTS(grid.size() == config.fft_size);
  MMR_EXPECTS(dsp::is_pow2(config.fft_size));
  MMR_EXPECTS(config.cp_len < config.fft_size);
  // IFFT with sqrt(N) scaling so average sample power equals average
  // subcarrier power.
  CVec time = dsp::ifft(grid);
  const double scale = std::sqrt(static_cast<double>(config.fft_size));
  for (cplx& s : time) s *= scale;
  CVec out;
  out.reserve(config.symbol_len());
  out.insert(out.end(), time.end() - config.cp_len, time.end());
  out.insert(out.end(), time.begin(), time.end());
  return out;
}

CVec ofdm_demodulate(const OfdmConfig& config, const CVec& samples) {
  MMR_EXPECTS(samples.size() >= config.symbol_len());
  CVec body(samples.begin() + config.cp_len,
            samples.begin() + config.symbol_len());
  CVec grid = dsp::fft(body);
  const double scale = 1.0 / std::sqrt(static_cast<double>(config.fft_size));
  for (cplx& s : grid) s *= scale;
  return grid;
}

CVec apply_cir(const CVec& samples, const CVec& cir) {
  MMR_EXPECTS(!cir.empty());
  CVec out(samples.size() + cir.size() - 1, cplx{});
  for (std::size_t n = 0; n < samples.size(); ++n) {
    for (std::size_t k = 0; k < cir.size(); ++k) {
      out[n + k] += samples[n] * cir[k];
    }
  }
  return out;
}

CVec ls_channel_estimate(const CVec& rx_grid, const CVec& pilot_grid) {
  MMR_EXPECTS(rx_grid.size() == pilot_grid.size());
  CVec h(rx_grid.size());
  for (std::size_t k = 0; k < rx_grid.size(); ++k) {
    MMR_EXPECTS(std::abs(pilot_grid[k]) > 0.0);
    h[k] = rx_grid[k] / pilot_grid[k];
  }
  return h;
}

CVec equalize(const CVec& rx_grid, const CVec& channel) {
  MMR_EXPECTS(rx_grid.size() == channel.size());
  CVec out(rx_grid.size());
  for (std::size_t k = 0; k < rx_grid.size(); ++k) {
    const double mag2 = std::norm(channel[k]);
    out[k] = mag2 > 1e-30 ? rx_grid[k] / channel[k] : cplx{};
  }
  return out;
}

double measure_evm(const CVec& equalized, const CVec& reference) {
  MMR_EXPECTS(equalized.size() == reference.size());
  MMR_EXPECTS(!equalized.empty());
  double err = 0.0, ref = 0.0;
  for (std::size_t k = 0; k < equalized.size(); ++k) {
    err += std::norm(equalized[k] - reference[k]);
    ref += std::norm(reference[k]);
  }
  MMR_EXPECTS(ref > 0.0);
  return std::sqrt(err / ref);
}

WaveformResult run_waveform_link(const OfdmConfig& config, const CVec& tx_grid,
                                 const CVec& cir, double noise_var, Rng& rng) {
  MMR_EXPECTS(cir.size() <= config.cp_len + 1);

  auto transmit = [&](const CVec& grid) {
    CVec rx = apply_cir(ofdm_modulate(config, grid), cir);
    for (cplx& s : rx) s += rng.complex_normal(noise_var);
    return ofdm_demodulate(config, rx);
  };

  // Pilot pass: all-ones grid for the LS channel estimate (CSI-RS role).
  const CVec pilots(config.fft_size, cplx{1.0, 0.0});
  const CVec h = ls_channel_estimate(transmit(pilots), pilots);

  WaveformResult result;
  result.equalized = equalize(transmit(tx_grid), h);
  result.evm = measure_evm(result.equalized, tx_grid);
  return result;
}

}  // namespace mmr::phy
