#include "phy/numerology.h"

#include <cmath>

namespace mmr::phy {

double Numerology::subcarrier_spacing_hz() const {
  return 15.0e3 * std::pow(2.0, static_cast<double>(mu));
}

double Numerology::slot_duration_s() const {
  return 1.0e-3 / std::pow(2.0, static_cast<double>(mu));
}

double Numerology::symbol_duration_s() const {
  return slot_duration_s() / static_cast<double>(symbols_per_slot);
}

double Numerology::slots_per_second() const {
  return 1.0 / slot_duration_s();
}

}  // namespace mmr::phy
