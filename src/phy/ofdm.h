// OFDM modem: the baseband waveform layer of the testbed (Section 5.2:
// "400 MHz baseband OFDM waveforms ... numerology that yields 120 kHz
// sub-carrier spacing"). Cyclic-prefix OFDM with per-subcarrier LS
// equalization from known pilots -- enough fidelity to carry QAM frames
// through the multipath CIRs the channel module produces and to measure
// EVM/SER against the MCS table's assumptions.
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "common/types.h"

namespace mmr::phy {

struct OfdmConfig {
  /// FFT size (power of two). Active subcarriers occupy the full grid in
  /// this model (no guard bands needed for a simulation).
  std::size_t fft_size = 64;
  /// Cyclic prefix length in samples. Must cover the channel's delay
  /// spread in taps.
  std::size_t cp_len = 16;

  std::size_t symbol_len() const { return fft_size + cp_len; }
};

/// Modulate one OFDM symbol: frequency-domain grid (fft_size subcarriers)
/// -> time-domain samples with cyclic prefix.
CVec ofdm_modulate(const OfdmConfig& config, const CVec& grid);

/// Demodulate one OFDM symbol: strip CP, FFT back to the grid.
CVec ofdm_demodulate(const OfdmConfig& config, const CVec& samples);

/// Linear convolution of a sample stream with a CIR (FIR channel).
CVec apply_cir(const CVec& samples, const CVec& cir);

/// Per-subcarrier least-squares channel estimate from a known pilot grid.
CVec ls_channel_estimate(const CVec& rx_grid, const CVec& pilot_grid);

/// One-tap equalization: rx / h per subcarrier.
CVec equalize(const CVec& rx_grid, const CVec& channel);

/// Error vector magnitude (RMS, linear) between an equalized grid and the
/// transmitted constellation points.
double measure_evm(const CVec& equalized, const CVec& reference);

/// End-to-end single-symbol link: modulate `tx_grid`, run it through
/// `cir` plus AWGN with per-sample variance `noise_var`, demodulate and
/// equalize using a pilot pass through the same channel. Returns the
/// equalized grid.
struct WaveformResult {
  CVec equalized;
  double evm = 0.0;
};
WaveformResult run_waveform_link(const OfdmConfig& config, const CVec& tx_grid,
                                 const CVec& cir, double noise_var, Rng& rng);

}  // namespace mmr::phy
