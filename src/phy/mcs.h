// Modulation-and-coding-scheme table: SNR -> spectral efficiency ->
// throughput. Follows the 5G NR CQI table (TS 38.214 Table 5.2.2.1-3)
// shape: QPSK through 256-QAM with the usual ~2 dB per step, a 6 dB
// decode floor (the paper's outage threshold), and a Shannon-gap sanity
// bound.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace mmr::phy {

struct McsEntry {
  double min_snr_db;          ///< lowest SNR at which this MCS decodes
  const char* modulation;     ///< human-readable label
  double spectral_efficiency; ///< bits/s/Hz after coding
};

class McsTable {
 public:
  /// 5G NR CQI-like table with a 6 dB decode floor.
  static const McsTable& nr();

  /// Highest-efficiency entry decodable at `snr_db`; nullptr if the link
  /// is in outage.
  const McsEntry* select(double snr_db) const;

  /// Spectral efficiency at snr_db (0 in outage).
  double spectral_efficiency(double snr_db) const;

  /// Throughput [bit/s] over `bandwidth_hz`, discounted by protocol
  /// overhead fraction in [0, 1).
  double throughput_bps(double snr_db, double bandwidth_hz,
                        double overhead_fraction = 0.0) const;

  std::size_t size() const { return entries_.size(); }
  const McsEntry& entry(std::size_t idx) const;

 private:
  explicit McsTable(std::vector<McsEntry> entries);
  std::vector<McsEntry> entries_;  // ascending min_snr_db
};

}  // namespace mmr::phy
