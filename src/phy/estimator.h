// Channel estimation from reference signals, with the hardware
// impairments that shaped mmReliable's design: CFO makes the absolute
// phase of consecutive probes unpredictable, SFO adds a drifting linear
// phase across subcarriers, and AWGN perturbs everything. Channel
// MAGNITUDE is the only stable observable across probes (paper
// Section 3.3), which is why the two-probe estimator works on |h|^2.
#pragma once

#include "common/rng.h"
#include "common/types.h"
#include "phy/link_budget.h"

namespace mmr::phy {

struct EstimatorConfig {
  /// Channel power gain (linear) at which the per-subcarrier estimation
  /// SNR is 0 dB. Derive from a LinkBudget via noise_reference().
  double noise_gain_0db = 1e-12;
  /// Linear noise reduction from averaging pilot resource elements within
  /// one reference signal.
  double pilot_averaging_gain = 10.0;
  /// If true, each probe gets an independent uniform carrier phase (CFO
  /// between probes is unpredictable). If false, phase random-walks with
  /// the std below.
  bool random_cfo_phase = true;
  /// Phase random-walk std per probe [rad] when random_cfo_phase is false.
  double cfo_walk_std_rad = 0.5;
  /// Std of the SFO-induced linear phase slope [rad per subcarrier].
  double sfo_slope_std_rad = 0.01;
};

/// Convenience: noise_gain_0db for a given link budget.
double noise_reference(const LinkBudget& budget);

class ChannelEstimator {
 public:
  ChannelEstimator(EstimatorConfig config, Rng rng);

  /// One probe: corrupt the true per-subcarrier CSI with AWGN and
  /// CFO/SFO phase impairments.
  CVec estimate(const CVec& true_csi);

  /// Magnitude-only power estimate: mean |H(k)|^2 across subcarriers of a
  /// fresh probe. Robust to CFO/SFO by construction.
  double estimate_power(const CVec& true_csi);

  /// Ideal (impairment-free) variant for oracle baselines.
  static double true_power(const CVec& csi);

  const EstimatorConfig& config() const { return config_; }

 private:
  EstimatorConfig config_;
  Rng rng_;
  double cfo_phase_ = 0.0;
};

}  // namespace mmr::phy
