#include "net/interference.h"

#include <cmath>
#include <complex>

#include "array/pattern.h"
#include "channel/pathloss.h"
#include "common/error.h"
#include "common/units.h"

namespace mmr::net {

void InterferenceConfig::validate() const {
  MMR_EXPECTS(std::isfinite(coupling_loss_db));
  MMR_EXPECTS(coupling_loss_db >= 0.0);
}

double interferer_gain(const array::Ula& ula, const CVec& weights,
                       double victim_angle_rad, double distance_m,
                       double carrier_hz, double coupling_loss_db) {
  MMR_EXPECTS(distance_m > 0.0);
  MMR_EXPECTS(carrier_hz > 0.0);
  MMR_EXPECTS(coupling_loss_db >= 0.0);
  // Free-space path-loss models break down inside the near field; clamp
  // to 1 m (the standard reference distance) so a pathological geometry
  // cannot produce gain > 1.
  const double d = distance_m < 1.0 ? 1.0 : distance_m;
  const double loss_db =
      channel::propagation_loss_db(d, carrier_hz) + coupling_loss_db;
  return array::power_gain(ula, weights, victim_angle_rad) *
         from_db(-loss_db);
}

void interferer_gain_batch_into(const array::Ula& ula, const CVec& weights,
                                std::span<const double> victim_angles_rad,
                                std::span<const double> distances_m,
                                double carrier_hz, double coupling_loss_db,
                                std::span<double> out) {
  MMR_EXPECTS(victim_angles_rad.size() == distances_m.size());
  MMR_EXPECTS(out.size() == victim_angles_rad.size());
  MMR_EXPECTS(carrier_hz > 0.0);
  MMR_EXPECTS(coupling_loss_db >= 0.0);
  // Each victim runs the SAME fused power_gain evaluation as the scalar
  // interferer_gain -- not array_factor_batch, whose separate
  // phasor-ramp + cdot loops reassociate differently under the SIMD
  // backends. That keeps batch == scalar BITWISE on every backend (the
  // network layer's byte-identity contracts fold these values into SINR).
  for (std::size_t i = 0; i < out.size(); ++i) {
    MMR_EXPECTS(distances_m[i] > 0.0);
    const double d = distances_m[i] < 1.0 ? 1.0 : distances_m[i];
    const double loss_db =
        channel::propagation_loss_db(d, carrier_hz) + coupling_loss_db;
    out[i] = array::power_gain(ula, weights, victim_angles_rad[i]) *
             from_db(-loss_db);
  }
}

RVec interferer_gain_batch(const array::Ula& ula, const CVec& weights,
                           const RVec& victim_angles_rad,
                           const RVec& distances_m, double carrier_hz,
                           double coupling_loss_db) {
  RVec out(victim_angles_rad.size());
  interferer_gain_batch_into(ula, weights, victim_angles_rad, distances_m,
                             carrier_hz, coupling_loss_db, out);
  return out;
}

double sinr_db(double snr_db, double inr_linear) {
  MMR_EXPECTS(inr_linear >= 0.0);
  // to_db(1.0) == 0.0 exactly, so a zero-INR victim keeps its SNR bits.
  return snr_db - to_db(1.0 + inr_linear);
}

}  // namespace mmr::net
