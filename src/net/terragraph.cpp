#include "net/terragraph.h"

#include <cmath>
#include <utility>

#include "common/error.h"
#include "common/units.h"
#include "core/probing.h"

namespace mmr::net {

void TerragraphConfig::validate() const {
  MMR_EXPECTS(std::isfinite(outage_power_linear));
  MMR_EXPECTS(outage_power_linear >= 0.0);
  MMR_EXPECTS(std::isfinite(recover_margin_db) && recover_margin_db >= 0.0);
  MMR_EXPECTS(refine_radius >= 1);
  link_state.validate();
}

TerragraphController::TerragraphController(const array::Ula& ula,
                                           array::Codebook codebook,
                                           TerragraphConfig config)
    : ula_(ula),
      codebook_(std::move(codebook)),
      config_(config),
      sm_(config.link_state) {
  config_.validate();
  MMR_EXPECTS(codebook_.size() >= 2);
  weights_ = codebook_.weights(0);
}

double TerragraphController::recover_threshold() const {
  return config_.outage_power_linear * from_db(config_.recover_margin_db);
}

std::size_t TerragraphController::nearest_codebook_index(
    double angle_rad) const {
  std::size_t best = 0;
  double best_err = std::abs(codebook_.angle(0) - angle_rad);
  for (std::size_t i = 1; i < codebook_.size(); ++i) {
    const double err = std::abs(codebook_.angle(i) - angle_rad);
    if (err < best_err) {
      best = i;
      best_err = err;
    }
  }
  return best;
}

void TerragraphController::serve_index(std::size_t index) {
  serving_index_ = index;
  weights_ = codebook_.weights(index);
}

bool TerragraphController::probe_power(const core::LinkProbeInterface& link,
                                       const CVec& weights,
                                       double& power) const {
  power = 0.0;
  return core::mean_probe_power(link.csi(weights), power);
}

double TerragraphController::training_airtime_s() const {
  return static_cast<double>(trainings_) *
         phy::ssb_burst_airtime_s(config_.rs, codebook_.size());
}

void TerragraphController::reacquire(double t_s,
                                     const core::LinkProbeInterface& link) {
  ++trainings_;
  sm_.apply(t_s, core::LinkEvent::kAcquire);
  const core::TrainingResult result =
      core::exhaustive_training(codebook_, link.csi, config_.training);
  MMR_EXPECTS(!result.beams.empty());
  candidates_.clear();
  candidates_.reserve(result.beams.size());
  for (const core::TrainedBeam& b : result.beams) {
    candidates_.push_back(nearest_codebook_index(b.angle_rad));
  }
  next_candidate_ = 1;
  refines_this_burst_ = 0;
  serve_index(candidates_.front());
  unavailable_until_ =
      t_s + phy::ssb_burst_airtime_s(config_.rs, codebook_.size());
}

void TerragraphController::start(double t_s,
                                 const core::LinkProbeInterface& link) {
  reacquire(t_s, link);
  started_ = true;
}

bool TerragraphController::refine(double t_s,
                                  const core::LinkProbeInterface& link) {
  ++refinements_;
  ++refines_this_burst_;
  std::size_t best = serving_index_;
  double best_power = 0.0;
  (void)probe_power(link, weights_, best_power);
  for (std::size_t off = 1; off <= config_.refine_radius; ++off) {
    for (const int sign : {-1, +1}) {
      const long idx = static_cast<long>(serving_index_) +
                       sign * static_cast<long>(off);
      if (idx < 0 || idx >= static_cast<long>(codebook_.size())) continue;
      double p = 0.0;
      if (!probe_power(link, codebook_.weights(static_cast<std::size_t>(idx)),
                       p)) {
        continue;
      }
      if (p > best_power) {
        best_power = p;
        best = static_cast<std::size_t>(idx);
      }
    }
  }
  if (best != serving_index_) serve_index(best);
  if (best_power >= recover_threshold()) {
    sm_.apply(t_s, core::LinkEvent::kRecovered);
    refines_this_burst_ = 0;
    return true;
  }
  return false;
}

bool TerragraphController::switch_beam(double t_s,
                                       const core::LinkProbeInterface& link) {
  if (next_candidate_ >= candidates_.size()) return false;
  ++switches_;
  serve_index(candidates_[next_candidate_++]);
  double p = 0.0;
  if (probe_power(link, weights_, p) && p >= recover_threshold()) {
    sm_.apply(t_s, core::LinkEvent::kRecovered);
    refines_this_burst_ = 0;
    return true;
  }
  return false;
}

void TerragraphController::step(double t_s,
                                const core::LinkProbeInterface& link) {
  MMR_EXPECTS(started_);
  if (t_s < unavailable_until_) return;  // sweep airtime in flight
  if (sm_.state() == core::LinkState::kAcquisition) {
    // The sweep that put us into acquisition has drained its airtime.
    sm_.apply(t_s, core::LinkEvent::kAcquisitionSuccess);
  }
  // Deadline pass: an over-long recovery tears down to LinkDown here.
  sm_.poll(t_s);
  if (sm_.state() == core::LinkState::kDown) {
    reacquire(t_s, link);
    return;
  }

  double power = 0.0;
  const bool usable = probe_power(link, weights_, power);
  if (sm_.state() == core::LinkState::kUp) {
    if (!usable || power < config_.outage_power_linear) {
      // May be suppressed by the up-dwell hysteresis; if it lands, the
      // recovery ladder starts fresh.
      if (sm_.apply(t_s, core::LinkEvent::kErrorBurst)) {
        refines_this_burst_ = 0;
        next_candidate_ = 1;
      }
    }
    return;
  }

  // LinkUnstable: the recovery ladder.
  if (usable && power >= recover_threshold()) {
    sm_.apply(t_s, core::LinkEvent::kRecovered);
    refines_this_burst_ = 0;
    return;
  }
  if (refines_this_burst_ < config_.refine_attempts) {
    (void)refine(t_s, link);
    return;
  }
  // Refinement exhausted: try the remembered next-best directions, then
  // let the recovery deadline tear the link down to full reacquisition.
  (void)switch_beam(t_s, link);
}

core::LinkState TerragraphController::link_state(double t_s) const {
  (void)t_s;
  return sm_.state();
}

}  // namespace mmr::net
