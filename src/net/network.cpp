#include "net/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "channel/pathloss.h"
#include "common/angles.h"
#include "common/constants.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/units.h"
#include "net/terragraph.h"
#include "phy/mcs.h"
#include "sim/faults.h"
#include "sim/scenario.h"
#include "sim/telemetry.h"
#include "sim/workspace.h"
#include "sim/world.h"

namespace mmr::net {
namespace {

inline constexpr std::size_t kNoCell = std::numeric_limits<std::size_t>::max();
/// Sub-stream for the crowd scenarios' walker draws.
inline constexpr std::uint64_t kCrowdSeedStream = 0xC20D;

bool is_outdoor(const sim::ScenarioSpec& s) {
  return s.name.rfind("outdoor", 0) == 0;
}

/// gNB position inside its cell's local frame (what the world factories
/// hard-code; see sim/engine.cpp's add_link_blockers call sites).
channel::Vec2 scenario_tx_local(const sim::ScenarioSpec& s) {
  return is_outdoor(s) ? channel::Vec2{0.0, 0.0} : channel::Vec2{0.5, 6.2};
}

channel::Vec2 scenario_ue_local(const sim::ScenarioSpec& s) {
  return is_outdoor(s) ? channel::Vec2{s.link_distance_m, 0.0} : s.ue_start;
}

channel::Vec2 rotate(channel::Vec2 v, double angle_rad) {
  const double c = std::cos(angle_rad), s = std::sin(angle_rad);
  return {v.x * c - v.y * s, v.x * s + v.y * c};
}

double norm(channel::Vec2 v) { return std::hypot(v.x, v.y); }

/// Crowd-blockage scenario: the sparse indoor room plus a seed-derived
/// crowd of walkers crossing the link line at random times/speeds/depths.
/// Authored spec.blockers are added first (engine convention), then the
/// crowd, so a crowd scenario composes with explicit blockage scripts.
sim::LinkWorld make_crowd(const sim::ScenarioSpec& spec, std::size_t min_crowd,
                          std::size_t max_crowd) {
  sim::ScenarioConfig config = spec.config;
  config.sparse_room = true;
  sim::LinkWorld world =
      sim::make_indoor_world(config, spec.ue_velocity,
                             spec.ue_rotation_rate_rad_s, spec.ue_start);
  for (const sim::BlockerSpec& b : spec.blockers) {
    world.add_blocker(sim::crossing_blocker({0.5, 6.2}, spec.ue_start,
                                            b.crossing_time_s, b.speed_mps,
                                            b.depth_db));
  }
  Rng rng(Rng::derive_stream_seed(config.seed, kCrowdSeedStream));
  const std::size_t n =
      min_crowd + static_cast<std::size_t>(
                      rng.uniform_index(max_crowd - min_crowd + 1));
  for (std::size_t k = 0; k < n; ++k) {
    const double crossing_time_s = rng.uniform(0.1, 0.9);
    const double speed_mps = rng.uniform(0.8, 1.8);
    const double depth_db = rng.uniform(25.0, 35.0);
    world.add_blocker(sim::crossing_blocker({0.5, 6.2}, spec.ue_start,
                                            crossing_time_s, speed_mps,
                                            depth_db));
  }
  return world;
}

}  // namespace

void HandoverConfig::validate() const {
  MMR_EXPECTS(std::isfinite(hysteresis_db) && hysteresis_db >= 0.0);
  MMR_EXPECTS(std::isfinite(time_to_trigger_s) && time_to_trigger_s >= 0.0);
  MMR_EXPECTS(std::isfinite(min_interval_s) && min_interval_s >= 0.0);
}

void NetworkSpec::validate() const {
  MMR_EXPECTS(num_cells >= 1);
  MMR_EXPECTS(ues_per_cell >= 1);
  MMR_EXPECTS(std::isfinite(cell_spacing_m) && cell_spacing_m > 0.0);
  MMR_EXPECTS(std::isfinite(ue_placement_jitter_m) &&
              ue_placement_jitter_m >= 0.0);
  link_state.validate();
  handover.validate();
  interference.validate();
  run.faults.validate();
}

struct Network::Session {
  std::size_t link = 0;
  std::size_t home_cell = 0;
  std::size_t serving_cell = 0;
  std::uint64_t link_seed = 0;
  /// Base fault seed (handover rebuilds derive per-rebuild streams).
  std::uint64_t fault_seed = 0;
  sim::ScenarioSpec scenario;
  std::unique_ptr<sim::LinkWorld> world;
  std::unique_ptr<core::BeamController> controller;
  std::unique_ptr<sim::FaultInjector> injector;
  core::LinkProbeInterface iface;
  core::LinkStateMachine sm;
  // Global kinematics (macro layer): position = start + velocity * t,
  // independent of which cell currently serves.
  channel::Vec2 global_start{0.0, 0.0};
  channel::Vec2 velocity{0.0, 0.0};
  // Streaming-table state: slot occupancy and local-timeline offset.
  // Batch tables keep birth_s = 0, so local time t - 0.0 is bitwise the
  // shared time and the historical behavior is unchanged.
  bool live = true;
  bool started = false;
  double birth_s = 0.0;
  // Handover bookkeeping.
  std::size_t ttt_candidate = kNoCell;
  double ttt_since = 0.0;
  double last_handover_s = -1.0e18;
  std::size_t handovers = 0;
  bool needs_restart = false;
  std::vector<core::LinkSample> samples;
  std::vector<core::FaultEvent> faults;

  explicit Session(const core::LinkStateConfig& sm_config) : sm(sm_config) {}

  channel::Vec2 global_pos(double t_s) const {
    return global_start + velocity * t_s;
  }
  double local_time(double t_s) const { return t_s - birth_s; }
};

Network::Network(const NetworkSpec& spec, std::uint64_t stream_seed,
                 sim::TrialWorkspace* workspace, bool populate_sessions)
    : spec_(spec), stream_seed_(stream_seed), workspace_(workspace) {
  spec_.validate();
  if (!populate_sessions) return;
  sessions_.reserve(spec_.num_links());
  for (std::size_t link = 0; link < spec_.num_links(); ++link) {
    sessions_.push_back(std::make_unique<Session>(spec_.link_state));
    build_session(*sessions_.back(), link);
    ++live_count_;
  }
  tick_samples_.resize(sessions_.size());
}

Network::~Network() {
  // The fault listeners capture raw Session pointers; detach before the
  // controllers (which may outlive this frame inside sessions_) could
  // fire them during teardown.
  for (auto& s : sessions_) {
    if (s->controller != nullptr) s->controller->set_fault_listener(nullptr);
  }
}

bool Network::slot_live(std::size_t slot) const {
  return slot < sessions_.size() && sessions_[slot]->live;
}

std::size_t Network::join(std::uint64_t session_id, double birth_s) {
  MMR_EXPECTS(std::isfinite(birth_s) && birth_s >= 0.0);
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = sessions_.size();
    sessions_.push_back(std::make_unique<Session>(spec_.link_state));
    tick_samples_.resize(sessions_.size());
    inr_accum_.resize(sessions_.size());
    pos_x_.resize(sessions_.size());
    pos_y_.resize(sessions_.size());
    batch_angles_.resize(sessions_.size());
    batch_dist_.resize(sessions_.size());
    batch_gain_.resize(sessions_.size());
    batch_victim_.resize(sessions_.size());
  }
  Session& s = *sessions_[slot];
  // Reset the recycled slot to a fresh Session, then seed it from the
  // session id exactly like link `session_id` of a batch table.
  s = Session(spec_.link_state);
  build_session(s, session_id);
  s.birth_s = birth_s;
  s.live = true;
  s.started = false;
  ++live_count_;
  return slot;
}

void Network::leave(std::size_t slot) {
  MMR_EXPECTS(slot_live(slot));
  Session& s = *sessions_[slot];
  if (s.controller != nullptr) s.controller->set_fault_listener(nullptr);
  s.controller.reset();
  s.injector.reset();
  s.world.reset();
  s.samples.clear();
  s.samples.shrink_to_fit();
  s.faults.clear();
  s.faults.shrink_to_fit();
  s.live = false;
  --live_count_;
  free_slots_.push_back(slot);
}

void Network::build_session(Session& s, std::uint64_t session_id) {
  const auto link = static_cast<std::size_t>(session_id);
  s.link = link;
  // Batch tables fill cell 0 first (link / ues_per_cell); streaming ids
  // beyond the table wrap around the cells with the same formula.
  s.home_cell = (link / spec_.ues_per_cell) % spec_.num_cells;
  s.serving_cell = s.home_cell;
  // Link 0 takes the trial's stream seed VERBATIM -- the single-link
  // collapse depends on it (the engine sets scenario.config.seed =
  // ctx.stream_seed). Other links fork their own streams.
  s.link_seed = link == 0 ? stream_seed_
                          : Rng::derive_stream_seed(stream_seed_, link);
  s.scenario = spec_.link_scenario;
  s.scenario.config.seed = s.link_seed;
  if (link > 0 && spec_.ue_placement_jitter_m > 0.0) {
    Rng place(Rng::derive_stream_seed(s.link_seed, kPlacementSeedStream));
    const double j = spec_.ue_placement_jitter_m;
    if (is_outdoor(s.scenario)) {
      s.scenario.link_distance_m = std::max(
          1.0, s.scenario.link_distance_m + place.uniform(-j, j));
    } else {
      s.scenario.ue_start.x += place.uniform(-j, j);
      s.scenario.ue_start.y += place.uniform(-j, j);
    }
    if (s.scenario.ue_velocity.x != 0.0 || s.scenario.ue_velocity.y != 0.0) {
      // Spread the crowd: same speed, random heading per session.
      s.scenario.ue_velocity =
          rotate(s.scenario.ue_velocity, place.uniform(0.0, 2.0 * kPi));
    }
  }
  s.velocity = s.scenario.ue_velocity;
  const channel::Vec2 origin{static_cast<double>(s.home_cell) *
                                 spec_.cell_spacing_m,
                             0.0};
  s.global_start = origin + scenario_ue_local(s.scenario);

  s.world = std::make_unique<sim::LinkWorld>(
      sim::ScenarioRegistry::instance().make(s.scenario));
  if (workspace_ != nullptr) s.world->bind_workspace(workspace_);
  s.controller = sim::ControllerRegistry::instance().make(
      *s.world, s.scenario.config, spec_.controller);
  s.iface = s.world->probe_interface();

  if (spec_.run.faults.enabled()) {
    sim::FaultPlan plan = spec_.run.faults;
    // Mirror the engine's fault seeding bit-exactly on link 0: a live
    // plan with seed 0 gets derive(stream_seed, kFaultSeedStream). Other
    // links decorrelate through their own link seed.
    if (plan.seed == 0) {
      plan.seed = Rng::derive_stream_seed(s.link_seed, sim::kFaultSeedStream);
    } else if (link > 0) {
      plan.seed = Rng::derive_stream_seed(plan.seed, link);
    }
    s.fault_seed = plan.seed;
    s.injector = std::make_unique<sim::FaultInjector>(plan, s.iface);
    s.iface = s.injector->interface();
    Session* sp = &s;
    auto record = [sp](const core::FaultEvent& ev) {
      sp->faults.push_back(ev);
    };
    s.injector->set_listener(record);
    s.controller->set_fault_listener(record);
  }
}

double Network::cell_rsrp_db(const Session& s, std::size_t cell,
                             double t_s) const {
  const channel::Vec2 gnb =
      channel::Vec2{static_cast<double>(cell) * spec_.cell_spacing_m, 0.0} +
      scenario_tx_local(spec_.link_scenario);
  const double d = std::max(1.0, norm(s.global_pos(t_s) - gnb));
  const double carrier = s.world->config().spec.carrier_hz;
  // Boresight sync beam: matched beamforming over N elements yields
  // |a^H w|^2 = N for unit-norm weights.
  const double n = static_cast<double>(s.world->config().tx_ula.num_elements);
  return to_db(n) - channel::propagation_loss_db(d, carrier);
}

void Network::accumulate_interference(double t_s) {
  // Per-interferer batched fold (interferer_gain_batch_into is
  // bitwise-identical to the scalar interferer_gain on every backend):
  // interferers walk the slots in order and scatter-add their leaked gain
  // into each victim's accumulator -- the SAME addends in the SAME order
  // as the historical per-victim scalar loop, so the folded totals keep
  // their bits. Allocation-free: all scratch is slot-sized and resized
  // only on join().
  const std::size_t n = sessions_.size();
  const channel::Vec2 tx_local = scenario_tx_local(spec_.link_scenario);
  for (std::size_t v = 0; v < n; ++v) {
    inr_accum_[v] = 0.0;
    if (!sessions_[v]->live) continue;
    const channel::Vec2 pos = sessions_[v]->global_pos(
        sessions_[v]->local_time(t_s));
    pos_x_[v] = pos.x;
    pos_y_[v] = pos.y;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Session& o = *sessions_[i];
    if (!o.live) continue;
    // Only links currently serving data transmit; a training sweep's
    // SSBs are discounted as protocol overhead, not interference.
    if (!o.controller->link_available(o.local_time(t_s))) continue;
    const channel::Vec2 gnb =
        channel::Vec2{static_cast<double>(o.serving_cell) *
                          spec_.cell_spacing_m,
                      0.0} +
        tx_local;
    std::size_t count = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (v == i || !sessions_[v]->live) continue;
      const channel::Vec2 delta{pos_x_[v] - gnb.x, pos_y_[v] - gnb.y};
      const double d = norm(delta);
      if (d <= 0.0) continue;
      // All cells share one array orientation (boresight +x), so the
      // victim's angle in the interferer's frame is the global bearing.
      batch_angles_[count] = std::atan2(delta.y, delta.x);
      batch_dist_[count] = d;
      batch_victim_[count] = v;
      ++count;
    }
    if (count == 0) continue;
    interferer_gain_batch_into(
        o.world->config().tx_ula, o.controller->tx_weights(),
        std::span<const double>(batch_angles_.data(), count),
        std::span<const double>(batch_dist_.data(), count),
        o.world->config().spec.carrier_hz,
        spec_.interference.coupling_loss_db,
        std::span<double>(batch_gain_.data(), count));
    for (std::size_t k = 0; k < count; ++k) {
      inr_accum_[batch_victim_[k]] += batch_gain_[k];
    }
  }
}

void Network::drive_state(Session& s, double t_s, double sinr_db_value) {
  s.sm.poll(t_s);
  core::LinkState desired = s.controller->link_state(t_s);
  if (desired == core::LinkState::kUp &&
      sinr_db_value < spec_.run.outage_snr_db) {
    desired = core::LinkState::kUnstable;
  }
  // Walk the unique legal event path toward `desired`; at most three
  // hops (Down -> Acquisition -> Up -> Unstable). The up-dwell
  // hysteresis may legitimately suppress the final error burst.
  for (int hop = 0; hop < 3 && s.sm.state() != desired; ++hop) {
    switch (s.sm.state()) {
      case core::LinkState::kDown:
        s.sm.apply(t_s, core::LinkEvent::kAcquire);
        break;
      case core::LinkState::kAcquisition:
        if (desired == core::LinkState::kDown) {
          s.sm.apply(t_s, core::LinkEvent::kAcquisitionFailure);
        } else {
          s.sm.apply(t_s, core::LinkEvent::kAcquisitionSuccess);
        }
        break;
      case core::LinkState::kUp:
        if (desired == core::LinkState::kUnstable) {
          if (!s.sm.apply(t_s, core::LinkEvent::kErrorBurst)) return;
        } else {
          // Controller fell back to (re)training or tore down.
          s.sm.apply(t_s, core::LinkEvent::kLinkLost);
        }
        break;
      case core::LinkState::kUnstable:
        if (desired == core::LinkState::kUp) {
          s.sm.apply(t_s, core::LinkEvent::kRecovered);
        } else {
          s.sm.apply(t_s, core::LinkEvent::kRecoveryTimeout);
        }
        break;
    }
  }
}

void Network::evaluate_handover(Session& s, double t_s) {
  if (t_s - s.last_handover_s < spec_.handover.min_interval_s) return;
  const double serving = cell_rsrp_db(s, s.serving_cell, t_s);
  std::size_t best_cell = kNoCell;
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < spec_.num_cells; ++c) {
    if (c == s.serving_cell) continue;
    const double rsrp = cell_rsrp_db(s, c, t_s);
    if (rsrp > best) {
      best = rsrp;
      best_cell = c;
    }
  }
  if (best_cell == kNoCell || best < serving + spec_.handover.hysteresis_db) {
    s.ttt_candidate = kNoCell;
    return;
  }
  if (s.ttt_candidate != best_cell) {
    s.ttt_candidate = best_cell;
    s.ttt_since = t_s;
  }
  if (t_s - s.ttt_since >= spec_.handover.time_to_trigger_s) {
    execute_handover(s, t_s, best_cell, serving, best);
  }
}

void Network::execute_handover(Session& s, double t_s, std::size_t to_cell,
                               double rsrp_from_db, double rsrp_to_db) {
  ++s.handovers;
  s.last_handover_s = t_s;
  s.ttt_candidate = kNoCell;
  s.sm.apply(t_s, core::LinkEvent::kLinkLost);
  const std::size_t from_cell = s.serving_cell;
  s.serving_cell = to_cell;

  // Rebuild the cell-local world around the UE's current global position.
  // The factories' trajectories are absolute-time (start + v * t), so the
  // new local start is back-propagated to t = 0.
  const channel::Vec2 origin{static_cast<double>(to_cell) *
                                 spec_.cell_spacing_m,
                             0.0};
  const channel::Vec2 local_now = s.global_pos(t_s) - origin;
  if (is_outdoor(s.scenario)) {
    // The outdoor factory only knows a boresight distance; project.
    s.scenario.link_distance_m =
        std::max(1.0, norm(local_now - s.velocity * t_s));
  } else {
    s.scenario.ue_start = local_now - s.velocity * t_s;
  }
  s.scenario.config.seed = Rng::derive_stream_seed(
      Rng::derive_stream_seed(s.link_seed, kHandoverSeedStream), s.handovers);
  if (s.controller != nullptr) s.controller->set_fault_listener(nullptr);
  s.world = std::make_unique<sim::LinkWorld>(
      sim::ScenarioRegistry::instance().make(s.scenario));
  if (workspace_ != nullptr) s.world->bind_workspace(workspace_);
  s.controller = sim::ControllerRegistry::instance().make(
      *s.world, s.scenario.config, spec_.controller);
  s.iface = s.world->probe_interface();
  if (spec_.run.faults.enabled()) {
    sim::FaultPlan plan = spec_.run.faults;
    plan.seed = Rng::derive_stream_seed(s.fault_seed, s.handovers);
    s.injector = std::make_unique<sim::FaultInjector>(plan, s.iface);
    s.iface = s.injector->interface();
    Session* sp = &s;
    auto record = [sp](const core::FaultEvent& ev) {
      sp->faults.push_back(ev);
    };
    s.injector->set_listener(record);
    s.controller->set_fault_listener(record);
  }
  s.needs_restart = true;

  core::HandoverEvent ev;
  ev.t_s = t_s;
  ev.link = s.link;
  ev.from_cell = from_cell;
  ev.to_cell = to_cell;
  ev.rsrp_from_db = rsrp_from_db;
  ev.rsrp_to_db = rsrp_to_db;
  handover_events_.push_back(ev);
}

void Network::begin() {
  const sim::RunConfig& rc = spec_.run;
  // Same up-front validation as sim::run_experiment.
  MMR_EXPECTS(rc.duration_s > 0.0 && std::isfinite(rc.duration_s));
  MMR_EXPECTS(rc.tick_s > 0.0 && std::isfinite(rc.tick_s));
  MMR_EXPECTS(std::isfinite(rc.outage_snr_db));
  MMR_EXPECTS(rc.protocol_overhead >= 0.0 && rc.protocol_overhead < 1.0);
  handover_events_.clear();
  const auto num_ticks = static_cast<std::size_t>(rc.duration_s / rc.tick_s);
  for (auto& s : sessions_) {
    s->started = false;
    s->samples.clear();
    if (record_samples_ && s->live) s->samples.reserve(num_ticks);
  }
  tick_samples_.resize(sessions_.size());
  inr_accum_.resize(sessions_.size());
  pos_x_.resize(sessions_.size());
  pos_y_.resize(sessions_.size());
  batch_angles_.resize(sessions_.size());
  batch_dist_.resize(sessions_.size());
  batch_gain_.resize(sessions_.size());
  batch_victim_.resize(sessions_.size());
}

void Network::advance_pass(double t_s) {
  // Worlds, injectors, controllers -- the exact per-link sequence
  // sim/runner.cpp executes.
  for (auto& sp : sessions_) {
    Session& s = *sp;
    if (!s.live) continue;
    const double t = s.local_time(t_s);
    s.world->set_time(t);
    if (s.injector != nullptr) s.injector->on_tick(t);
    if (!s.started || s.needs_restart) {
      s.controller->start(t, s.iface);
      s.started = true;
      s.needs_restart = false;
    } else {
      s.controller->step(t, s.iface);
    }
  }
}

void Network::scoring_pass(double t_s) {
  const sim::RunConfig& rc = spec_.run;
  const phy::McsTable& mcs = phy::McsTable::nr();
  const bool interference_on = spec_.interference.enabled && live_count_ > 1;
  if (interference_on) accumulate_interference(t_s);
  // Every link scored against the TRUE channel with the other links'
  // current beams folded in as interference.
  for (std::size_t slot = 0; slot < sessions_.size(); ++slot) {
    Session& s = *sessions_[slot];
    if (!s.live) continue;
    const double t = s.local_time(t_s);
    const double bandwidth = s.world->config().spec.bandwidth_hz;
    const double snr = s.world->true_snr_db(s.controller->tx_weights());
    double inr = 0.0;
    if (interference_on) {
      inr = inr_accum_[slot] / s.world->power_for_snr(0.0);
    }
    const double sinr = sinr_db(snr, inr);
    core::LinkSample sample;
    sample.t_s = t;
    sample.available = s.controller->link_available(t);
    sample.snr_db = sinr;
    sample.throughput_bps =
        sample.available
            ? mcs.throughput_bps(sinr, bandwidth, rc.protocol_overhead)
            : 0.0;
    tick_samples_[slot] = sample;
    if (record_samples_) s.samples.push_back(sample);
    drive_state(s, t, sinr);
  }
}

void Network::handover_pass(double t_s) {
  for (auto& sp : sessions_) {
    if (sp->live) evaluate_handover(*sp, sp->local_time(t_s));
  }
}

void Network::step_tick(double t_s) {
  advance_pass(t_s);
  scoring_pass(t_s);
  if (spec_.handover.enabled && spec_.num_cells > 1) handover_pass(t_s);
}

NetworkResult Network::run(sim::TelemetrySink* sink) {
  begin();
  const sim::RunConfig& rc = spec_.run;
  const auto num_ticks = static_cast<std::size_t>(rc.duration_s / rc.tick_s);
  for (std::size_t i = 0; i < num_ticks; ++i) {
    step_tick(static_cast<double>(i) * rc.tick_s);
  }
  return finish(sink);
}

NetworkResult Network::finish(sim::TelemetrySink* sink) {
  const sim::RunConfig& rc = spec_.run;
  NetworkResult result;
  result.links.reserve(live_count_);
  for (auto& sp : sessions_) {
    Session& s = *sp;
    if (!s.live) continue;
    if (s.controller != nullptr) s.controller->set_fault_listener(nullptr);
    // Close the availability ledger at the nominal end of the run (this
    // may legitimately fire a final deadline transition).
    s.sm.poll(rc.duration_s);
    const double bandwidth = s.world->config().spec.bandwidth_hz;
    LinkReport report;
    report.link = s.link;
    report.serving_cell = s.serving_cell;
    report.summary =
        core::summarize_link(s.samples, rc.outage_snr_db, bandwidth);
    report.handovers = s.handovers;
    report.time_down_s = s.sm.time_in(core::LinkState::kDown);
    report.time_acquisition_s = s.sm.time_in(core::LinkState::kAcquisition);
    report.time_up_s = s.sm.time_in(core::LinkState::kUp);
    report.time_unstable_s = s.sm.time_in(core::LinkState::kUnstable);
    report.final_state = s.sm.state();
    report.faults = s.faults;
    result.links.push_back(std::move(report));
  }
  result.handovers = handover_events_;
  std::stable_sort(result.handovers.begin(), result.handovers.end(),
                   [](const core::HandoverEvent& a,
                      const core::HandoverEvent& b) { return a.t_s < b.t_s; });

  if (result.links.size() == 1) {
    // Single-link collapse: the network IS the link, bit for bit.
    result.network = result.links.front().summary;
  } else {
    core::LinkSummary agg;
    const double n = static_cast<double>(result.links.size());
    for (const LinkReport& r : result.links) {
      agg.reliability += r.summary.reliability / n;
      agg.mean_throughput_bps += r.summary.mean_throughput_bps / n;
      agg.mean_spectral_efficiency += r.summary.mean_spectral_efficiency / n;
      agg.throughput_reliability_product +=
          r.summary.throughput_reliability_product / n;
      agg.num_samples += r.summary.num_samples;
    }
    result.network = agg;
  }

  if (sink != nullptr) {
    for (const core::HandoverEvent& ev : result.handovers) {
      sink->on_handover(ev);
    }
  }
  return result;
}

void register_net_builtins() {
  static const bool once = [] {
    auto& scenarios = sim::ScenarioRegistry::instance();
    if (!scenarios.contains("indoor_crowd")) {
      scenarios.add("indoor_crowd", [](const sim::ScenarioSpec& s) {
        return make_crowd(s, 2, 4);
      });
      scenarios.add("indoor_crowd_dense", [](const sim::ScenarioSpec& s) {
        return make_crowd(s, 5, 8);
      });
    }
    auto& controllers = sim::ControllerRegistry::instance();
    if (!controllers.contains("terragraph")) {
      controllers.add(
          "terragraph",
          [](const sim::LinkWorld& w, const sim::ScenarioConfig& c,
             const sim::ControllerSpec&)
              -> std::unique_ptr<core::BeamController> {
            const array::Ula ula = w.config().tx_ula;
            TerragraphConfig tc;
            tc.outage_power_linear = w.power_for_snr(kOutageSnrDb);
            return std::make_unique<TerragraphController>(
                ula, sim::sector_codebook(ula, c.codebook_size), tc);
          });
    }
    return true;
  }();
  (void)once;
}

}  // namespace mmr::net
