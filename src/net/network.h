// Multi-cell mesh network layer: many base stations (cells) on a line,
// many UE sessions per cell, one shared timeline.
//
// Each session owns a cell-local LinkWorld (the existing single-link
// channel abstraction), a BeamController built from the ControllerRegistry
// (any registered scheme works), and a Terragraph-style LinkStateMachine
// (core/link_state.h) driven from the controller's reported state plus
// the scored SINR -- the per-link availability ledger the network-wide
// CDFs are computed from.
//
// Cross-link coupling (net/interference.h): every other transmitting
// session leaks into a victim through its array pattern evaluated at the
// victim's global direction, so a neighbor cell's (or a co-scheduled
// co-cell session's) beam choice degrades my SINR. Handover: per-tick
// sync-beam RSRP toward every cell; a neighbor sustaining
// hysteresis_db above the serving cell for time_to_trigger_s takes the
// session (HandoverEvent through TelemetrySink::on_handover), which
// rebuilds the cell-local world and restarts the controller.
//
// Single-link collapse contract (pinned by tests/net): a 1-cell/1-UE
// network with interference/handover degenerate runs BYTE-IDENTICAL to
// the engine's run_experiment path -- same world seed, same tick
// sequence, same fault stream, same summary bits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/events.h"
#include "core/link_state.h"
#include "core/metrics.h"
#include "net/interference.h"
#include "sim/engine.h"
#include "sim/runner.h"

namespace mmr::sim {
class TelemetrySink;
class TrialWorkspace;
}  // namespace mmr::sim

namespace mmr::net {

/// Sub-stream ids hung off each link's seed (same splitmix64 derivation
/// discipline as sim::kFaultSeedStream).
inline constexpr std::uint64_t kPlacementSeedStream = 0x9E75;
inline constexpr std::uint64_t kHandoverSeedStream = 0x40F0;

struct HandoverConfig {
  bool enabled = true;
  /// A3-style offset: a neighbor must beat the serving cell by this much
  /// [dB] ...
  double hysteresis_db = 3.0;
  /// ... continuously for this long before the handover fires [s].
  double time_to_trigger_s = 40.0e-3;
  /// Per-session holddown between handovers (ping-pong brake) [s].
  double min_interval_s = 100.0e-3;

  void validate() const;
};

/// Declarative network: cells on a line, `ues_per_cell` sessions each,
/// every link instantiated from the same registered scenario template.
struct NetworkSpec {
  std::size_t num_cells = 1;
  std::size_t ues_per_cell = 1;
  /// Distance between neighboring cell origins [m].
  double cell_spacing_m = 40.0;
  /// Per-link template. Link 0 keeps it verbatim (single-link collapse);
  /// links k > 0 derive their world seed and jitter their UE placement
  /// from their own Rng streams.
  sim::ScenarioSpec link_scenario;
  sim::ControllerSpec controller;
  sim::RunConfig run;
  core::LinkStateConfig link_state;
  HandoverConfig handover;
  InterferenceConfig interference;
  /// Uniform placement jitter applied to non-reference UEs' start
  /// positions [m] (0 = every UE at the template position).
  double ue_placement_jitter_m = 2.0;

  std::size_t num_links() const { return num_cells * ues_per_cell; }
  void validate() const;
};

/// Per-link outcome: the familiar LinkSummary plus the state-machine
/// availability ledger and the session's mobility/fault history.
struct LinkReport {
  std::size_t link = 0;
  std::size_t serving_cell = 0;  ///< final serving cell
  core::LinkSummary summary;
  std::size_t handovers = 0;
  /// Cumulative time in each state over the run [s].
  double time_down_s = 0.0;
  double time_acquisition_s = 0.0;
  double time_up_s = 0.0;
  double time_unstable_s = 0.0;
  core::LinkState final_state = core::LinkState::kDown;
  std::vector<core::FaultEvent> faults;

  /// Fraction of the run the state machine ledger shows LinkUp.
  double availability(double duration_s) const {
    return duration_s > 0.0 ? time_up_s / duration_s : 0.0;
  }
};

struct NetworkResult {
  std::vector<LinkReport> links;
  /// All handover events, in time order.
  std::vector<core::HandoverEvent> handovers;
  /// Cross-link aggregate: for a single link this is links[0].summary
  /// bit-exactly; otherwise per-field means over links (num_samples
  /// summed).
  core::LinkSummary network;
};

/// One network timeline. Construction builds every session's
/// world/controller (link 0 from stream_seed verbatim); run() executes
/// the tick loop and scores every link with interference folded into its
/// SINR.
///
/// Resumable-step contract (PR-8): run() is now a thin wrapper over
///   begin();  step_tick(t) for each tick;  finish(sink);
/// and the step path is BYTE-IDENTICAL to the historical monolithic loop
/// (pinned by tests/net). Callers that own the timeline -- the streaming
/// service -- drive step_tick directly, join()/leave() sessions between
/// ticks (churn), and read the per-slot tick_samples() instead of calling
/// finish(). Slots are reused through a free list so a churning table
/// keeps bounded memory.
class Network {
 public:
  /// `workspace` (optional) is bound to every session's world so the
  /// per-tick scoring path is allocation-free; it must outlive run().
  /// `populate_sessions = false` starts with an EMPTY table (streaming
  /// mode: sessions arrive via join()).
  Network(const NetworkSpec& spec, std::uint64_t stream_seed,
          sim::TrialWorkspace* workspace = nullptr,
          bool populate_sessions = true);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Run the shared timeline. When `sink` is non-null, handover events
  /// stream to sink->on_handover (in time order, after the run -- one
  /// thread, deterministic).
  NetworkResult run(sim::TelemetrySink* sink = nullptr);

  // --- Resumable-step interface -------------------------------------
  /// Validate the run config and reset per-run state (sample buffers,
  /// handover events, controller start flags). Call once before a
  /// step_tick sequence; run() calls it for you.
  void begin();
  /// Advance every live session to absolute time `t_s` (advance /
  /// score+drive / handover passes -- the exact historical sequence) and
  /// leave each slot's scored sample in tick_samples()[slot]. Sessions
  /// joined mid-run are evaluated at their LOCAL time t_s - birth_s.
  void step_tick(double t_s);
  /// Close every live session's availability ledger at the configured
  /// duration and aggregate reports. run() == begin + ticks + finish.
  NetworkResult finish(sim::TelemetrySink* sink = nullptr);

  // --- Streaming session table --------------------------------------
  /// Add a session between ticks. `session_id` seeds its world/placement
  /// exactly like link `session_id` of the batch table (id 0 verbatim);
  /// `birth_s` offsets its local timeline. Reuses a free slot when one
  /// exists. Returns the slot index.
  std::size_t join(std::uint64_t session_id, double birth_s);
  /// Retire a live slot: releases its world/controller/injector and
  /// recycles the slot for the next join (bounded memory under churn).
  void leave(std::size_t slot);

  std::size_t slot_count() const { return sessions_.size(); }
  bool slot_live(std::size_t slot) const;
  std::size_t live_count() const { return live_count_; }
  /// Slot-indexed scored samples of the most recent step_tick (valid for
  /// live slots only). Storage is stable across ticks; resized on join.
  std::span<const core::LinkSample> tick_samples() const {
    return tick_samples_;
  }
  /// Retain per-tick sample history for finish()'s summaries (default
  /// true; the streaming service turns it off -- bounded memory).
  void set_record_samples(bool record) { record_samples_ = record; }

 private:
  struct Session;

  void build_session(Session& s, std::uint64_t session_id);
  void advance_pass(double t_s);
  void scoring_pass(double t_s);
  void handover_pass(double t_s);
  /// Batched cross-link interference fold: per interferer (slot order),
  /// one interferer_gain_batch_into sweep over all victims, scatter-added
  /// into inr_accum_. Bitwise-identical to the historical per-victim
  /// scalar fold (same addends, same order). Allocation-free once the
  /// scratch buffers are sized.
  void accumulate_interference(double t_s);
  void evaluate_handover(Session& s, double t_s);
  void execute_handover(Session& s, double t_s, std::size_t to_cell,
                        double rsrp_from_db, double rsrp_to_db);
  /// Drive a session's state machine toward the state its controller and
  /// SINR report, using only legal transitions.
  void drive_state(Session& s, double t_s, double sinr_db);
  /// Sync-beam RSRP of cell `cell` at the session's current global
  /// position [dB rel. unit gain]. Allocation-free.
  double cell_rsrp_db(const Session& s, std::size_t cell, double t_s) const;

  NetworkSpec spec_;
  std::uint64_t stream_seed_ = 0;
  sim::TrialWorkspace* workspace_ = nullptr;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::size_t> free_slots_;
  std::size_t live_count_ = 0;
  bool record_samples_ = true;
  std::vector<core::HandoverEvent> handover_events_;
  /// Slot-indexed scoring state (stable storage, resized on join).
  std::vector<core::LinkSample> tick_samples_;
  std::vector<double> inr_accum_;
  std::vector<double> pos_x_, pos_y_;
  /// Per-interferer batch scratch: victim angles/distances/gains plus the
  /// victim slot each batch entry scatter-adds into.
  std::vector<double> batch_angles_, batch_dist_, batch_gain_;
  std::vector<std::size_t> batch_victim_;
};

/// Register the net-layer builtins into the process-wide registries:
/// controller "terragraph" (net/terragraph.h) and the crowd-blockage
/// scenarios "indoor_crowd" / "indoor_crowd_dense" (sparse indoor room
/// plus a seed-derived crowd of crossing walkers). Idempotent; call it
/// before parsing CLI flags or building NetworkSpecs that use them (the
/// engine's builtin registration cannot see this library's statics).
void register_net_builtins();

}  // namespace mmr::net
