// Cross-link interference from the array-factor/sidelobe model.
//
// A neighbor link's transmit beam leaks into my receiver through its
// array pattern evaluated at MY direction (in the interferer's frame)
// attenuated by the propagation loss over the interferer-to-victim
// distance. The same expression covers co-cell co-scheduled sessions
// (src/core/multi_user.h's concern, promoted network-wide) and
// neighbor-cell leakage; the victim folds the summed interference into
// its SINR as SINR_dB = SNR_dB - 10 log10(1 + INR).
//
// The scalar entry points are allocation-free (array::array_factor is a
// fused dsp::dot_phasor_ramp) so the per-tick network scoring loop stays
// inside the zero-alloc contract; the batched variant runs the SAME fused
// evaluation per element into caller-provided storage, which keeps it
// bitwise-equal to the scalar path on every backend (pinned by the props
// tier) and allocation-free on the network's per-tick fold.
#pragma once

#include <span>

#include "array/geometry.h"
#include "common/types.h"

namespace mmr::net {

struct InterferenceConfig {
  bool enabled = true;
  /// Extra coupling loss between interferer and victim [dB] (walls,
  /// cross-polarization between deployments). 0 = co-polarized.
  double coupling_loss_db = 0.0;
  /// MMR_EXPECTS: coupling loss finite and non-negative.
  void validate() const;
};

/// Linear channel power gain leaked from an interfering transmitter
/// running `weights` toward a victim at `victim_angle_rad` (interferer's
/// frame), `distance_m` away: |AF(w, phi)|^2 * pathloss(d) * coupling.
/// Allocation-free.
double interferer_gain(const array::Ula& ula, const CVec& weights,
                       double victim_angle_rad, double distance_m,
                       double carrier_hz, double coupling_loss_db = 0.0);

/// Batched variant over many victims (one entry per angle/distance pair),
/// writing into caller-provided storage (`out.size()` must match).
/// BITWISE-identical to calling `interferer_gain` per victim on EVERY
/// kernel backend -- each element goes through the same fused
/// array::power_gain evaluation as the scalar path, so the network's
/// batched interference fold keeps the byte-identity contracts.
/// Allocation-free: the per-tick network scoring loop calls this with
/// preallocated buffers.
void interferer_gain_batch_into(const array::Ula& ula, const CVec& weights,
                                std::span<const double> victim_angles_rad,
                                std::span<const double> distances_m,
                                double carrier_hz, double coupling_loss_db,
                                std::span<double> out);

/// Batched variant over many victims (one entry per angle/distance pair).
/// Allocating convenience wrapper over interferer_gain_batch_into.
RVec interferer_gain_batch(const array::Ula& ula, const CVec& weights,
                           const RVec& victim_angles_rad,
                           const RVec& distances_m, double carrier_hz,
                           double coupling_loss_db = 0.0);

/// Fold an interference-to-noise ratio into a serving-link SNR:
/// SINR_dB = SNR_dB - 10 log10(1 + INR). Bitwise identity with the input
/// SNR when inr_linear == 0 (the single-link collapse the byte-identity
/// tests pin), and <= SNR for every INR >= 0.
double sinr_db(double snr_db, double inr_linear);

}  // namespace mmr::net
