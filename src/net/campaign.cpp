#include "net/campaign.h"

#include <ostream>
#include <utility>

#include "common/error.h"
#include "common/stats.h"
#include "sim/telemetry.h"
#include "sim/workspace.h"

namespace mmr::net {

NetworkCampaignResult run_network_campaign(const NetworkCampaignSpec& spec,
                                           sim::TelemetrySink* sink) {
  MMR_EXPECTS(spec.trials >= 1);
  register_net_builtins();
  spec.network.validate();

  NetworkCampaignResult result;
  result.details.resize(spec.trials);
  sim::SweepRunner runner({spec.trials, spec.jobs, spec.seed});
  result.trials = runner.run([&](sim::TrialContext& ctx) {
    sim::TrialWorkspace workspace;
    Network network(spec.network, ctx.stream_seed, &workspace);
    NetworkResult outcome = network.run(nullptr);
    const core::LinkSummary summary = outcome.network;
    // Index-addressed slot: no cross-thread ordering dependence.
    result.details[ctx.index] = std::move(outcome);
    return summary;
  });
  result.timing = runner.timing();
  if (spec.freeze_timing) {
    result.timing.wall_s = 0.0;
    result.timing.serial_equivalent_s = 0.0;
    for (auto& trial : result.trials) {
      trial.wall_s = 0.0;
      trial.cpu_s = 0.0;
    }
  }
  result.aggregate = sim::summarize_sweep(result.trials);

  if (sink != nullptr) {
    for (std::size_t i = 0; i < result.trials.size(); ++i) {
      const NetworkResult& detail = result.details[i];
      for (const LinkReport& link : detail.links) {
        for (const core::FaultEvent& ev : link.faults) sink->on_fault(ev);
      }
      for (const core::HandoverEvent& ev : detail.handovers) {
        sink->on_handover(ev);
      }
      sink->on_run_end(result.trials[i].value);
    }
    sim::SweepRecord record;
    record.name = spec.name;
    record.trials = result.trials;
    record.timing = result.timing;
    sink->on_sweep(record);
  }
  return result;
}

namespace {

void write_cdf(std::ostream& os, const char* key,
               std::span<const double> values) {
  os << "\"" << key << "\": [";
  for (int p = 0; p <= 100; p += 5) {
    if (p != 0) os << ", ";
    os << percentile(values, static_cast<double>(p));
  }
  os << "]";
}

}  // namespace

void write_network_json(std::ostream& os, const NetworkCampaignSpec& spec,
                        const NetworkCampaignResult& result) {
  MMR_EXPECTS(!result.details.empty());
  const double duration_s = spec.network.run.duration_s;
  std::vector<double> availability;
  std::vector<double> reliability;
  std::vector<double> throughput;
  availability.reserve(result.details.size() * spec.network.num_links());
  reliability.reserve(availability.capacity());
  throughput.reserve(availability.capacity());
  double mean_availability = 0.0;
  std::size_t handovers_total = 0;
  for (const NetworkResult& detail : result.details) {
    for (const LinkReport& link : detail.links) {
      availability.push_back(link.availability(duration_s));
      reliability.push_back(link.summary.reliability);
      throughput.push_back(link.summary.mean_throughput_bps);
      handovers_total += link.handovers;
    }
  }
  for (const double a : availability) {
    mean_availability += a / static_cast<double>(availability.size());
  }

  const auto flags = os.flags();
  const auto precision = os.precision();
  os.precision(10);
  os << "{\"bench\": \"" << spec.name << "\", \"network\": {"
     << "\"cells\": " << spec.network.num_cells
     << ", \"ues_per_cell\": " << spec.network.ues_per_cell
     << ", \"links\": " << spec.network.num_links()
     << ", \"trials\": " << spec.trials << ", \"jobs\": " << spec.jobs
     << ", \"seed\": " << spec.seed << ", \"controller\": \""
     << spec.network.controller.name << "\", \"scenario\": \""
     << spec.network.link_scenario.name
     << "\", \"duration_s\": " << duration_s << "}, \"aggregate\": {"
     << "\"mean_availability\": " << mean_availability
     << ", \"mean_reliability\": " << result.aggregate.mean_reliability
     << ", \"mean_throughput_bps\": "
     << result.aggregate.mean_throughput_bps
     << ", \"handovers_total\": " << handovers_total << "}, \"cdf\": {";
  write_cdf(os, "availability", availability);
  os << ", ";
  write_cdf(os, "reliability", reliability);
  os << ", ";
  write_cdf(os, "throughput_bps", throughput);
  os << "}}\n";
  os.precision(precision);
  os.flags(flags);
}

}  // namespace mmr::net
