// Network campaign: many deterministic network trials over the PR-2
// sweep runner (same {trials, jobs, seed} discipline as sim::Engine, same
// derive_stream_seed per-trial streams, same post-barrier sink replay in
// trial-index order), plus the network-wide JSON record bench_network
// emits: availability / reliability / throughput CDFs over every
// (trial, link) pair.
//
// Byte-identity contract (pinned by tests/net): a 1-cell/1-UE campaign's
// write_sweep_json record equals the engine's for the same
// (name, scenario, controller, run, trials, jobs, seed) under frozen
// timing, byte for byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/network.h"
#include "sim/sweep.h"

namespace mmr::net {

struct NetworkCampaignSpec {
  std::string name = "bench_network";  ///< bench name in the JSON record
  NetworkSpec network;
  std::size_t trials = 1;
  std::size_t jobs = 1;
  std::uint64_t seed = 1;
  /// Zero every timing field so the record is a pure function of
  /// (spec, seed) -- the replay/byte-identity mode.
  bool freeze_timing = false;
};

struct NetworkCampaignResult {
  /// Per-trial network-aggregate summaries (index order).
  std::vector<sim::SweepTrial<core::LinkSummary>> trials;
  /// Full per-trial network outcomes, index-addressed.
  std::vector<NetworkResult> details;
  sim::SweepTiming timing;
  sim::SweepSummary aggregate;
};

/// Run the campaign. Trials execute on the sweep runner (jobs=K replay of
/// jobs=1, bit for bit); each trial builds its own Network from
/// ctx.stream_seed with a trial-local workspace. When `sink` is non-null
/// it receives, after the barrier and in trial-index order: every link's
/// fault events (link order), every handover (time order), on_run_end
/// with the trial's network summary -- then one on_sweep record
/// (identical to the engine's for a single-link network).
NetworkCampaignResult run_network_campaign(const NetworkCampaignSpec& spec,
                                           sim::TelemetrySink* sink = nullptr);

/// Emit the network-wide record as one JSON line (fixed precision 10,
/// keys in fixed order -- byte-stable for identical results): campaign
/// shape, aggregate means (availability from the state-machine ledger,
/// reliability/throughput from the link summaries, total handovers), and
/// 21-point percentile CDFs (p0, p5, ..., p100) over every (trial, link)
/// pair for availability, reliability, and throughput.
void write_network_json(std::ostream& os, const NetworkCampaignSpec& spec,
                        const NetworkCampaignResult& result);

}  // namespace mmr::net
