// Terragraph-style single-beam link controller (SNIPPETS.md snippet 1):
// the link state machine IS the controller. Acquisition runs an
// exhaustive SSB sweep and remembers the ranked path candidates; Up
// monitors the serving beam on every CSI-RS; an error burst (monitored
// power under the outage threshold) moves to Unstable, where recovery
// escalates through the Terragraph ladder:
//
//   1. beam refinement  -- probe the codebook neighbors of the serving
//      beam (+/-1..refine_radius) and move to the best, for up to
//      refine_attempts rounds;
//   2. beam switching   -- jump to the next-strongest direction from the
//      last training sweep;
//   3. recovery timeout -- LinkDown, full reacquisition (the link pays
//      the SSB-burst airtime again).
//
// Baseline positioning: one serving beam at a time, so a blocked LOS
// costs the full switch-and-retrain dance that mmReliable's standing
// multi-beam avoids -- the comparison bench_network draws.
#pragma once

#include <cstddef>
#include <vector>

#include "array/codebook.h"
#include "array/geometry.h"
#include "core/beam_training.h"
#include "core/controller_base.h"
#include "core/link_state.h"
#include "phy/reference_signals.h"

namespace mmr::net {

struct TerragraphConfig {
  /// Mean |H|^2 below which the monitor declares an error burst; derive
  /// from LinkBudget::gain_for_snr(outage SNR).
  double outage_power_linear = 1e-12;
  /// A recovery action must clear outage by this margin to declare the
  /// link recovered (re-entry hysteresis) [dB].
  double recover_margin_db = 3.0;
  /// Refinement rounds before escalating to beam switching.
  std::size_t refine_attempts = 2;
  /// Codebook neighbors probed on each side during refinement.
  std::size_t refine_radius = 2;
  /// Ranked candidate directions remembered from each training sweep
  /// (switch targets).
  core::TrainingConfig training{.top_k = 4};
  /// Dwell/deadline knobs of the embedded state machine.
  core::LinkStateConfig link_state;
  phy::ReferenceSignalConfig rs;

  void validate() const;
};

class TerragraphController final : public core::BeamController {
 public:
  TerragraphController(const array::Ula& ula, array::Codebook codebook,
                       TerragraphConfig config);

  void start(double t_s, const core::LinkProbeInterface& link) override;
  void step(double t_s, const core::LinkProbeInterface& link) override;

  const CVec& tx_weights() const override { return weights_; }
  bool link_available(double t_s) const override {
    return t_s >= unavailable_until_;
  }
  const char* name() const override { return "terragraph"; }
  core::LinkState link_state(double t_s) const override;

  // Recovery-ladder observability for the test tier.
  int trainings() const { return trainings_; }
  int refinements() const { return refinements_; }
  int beam_switches() const { return switches_; }
  std::size_t serving_index() const { return serving_index_; }
  const core::LinkStateMachine& machine() const { return sm_; }
  /// Airtime the link has spent unavailable to data so far [s].
  double training_airtime_s() const;

 private:
  void reacquire(double t_s, const core::LinkProbeInterface& link);
  void serve_index(std::size_t index);
  /// Monitored mean |H|^2 on `weights`; false when the probe is unusable.
  bool probe_power(const core::LinkProbeInterface& link, const CVec& weights,
                   double& power) const;
  bool refine(double t_s, const core::LinkProbeInterface& link);
  bool switch_beam(double t_s, const core::LinkProbeInterface& link);
  std::size_t nearest_codebook_index(double angle_rad) const;
  double recover_threshold() const;

  array::Ula ula_;
  array::Codebook codebook_;
  TerragraphConfig config_;
  core::LinkStateMachine sm_;

  CVec weights_;
  std::size_t serving_index_ = 0;
  /// Ranked switch candidates from the last sweep (codebook indices,
  /// strongest first; [0] is the serving beam's home).
  std::vector<std::size_t> candidates_;
  std::size_t next_candidate_ = 1;
  std::size_t refines_this_burst_ = 0;

  double unavailable_until_ = 0.0;
  bool started_ = false;

  int trainings_ = 0;
  int refinements_ = 0;
  int switches_ = 0;
};

}  // namespace mmr::net
