// Reactive single-beam baseline (paper Section 6.2, after Hassanieh et
// al.'s fast beam alignment).
//
// One beam at the strongest trained direction; no proactive maintenance.
// The controller reacts only AFTER the link degrades below the outage
// threshold, re-running beam training -- fast (logarithmic probe count),
// but the link still goes down for the training airtime each time, which
// is exactly the reliability gap mmReliable closes.
#pragma once

#include "array/codebook.h"
#include "core/beam_training.h"
#include "core/controller_base.h"
#include "phy/reference_signals.h"

namespace mmr::baselines {

struct ReactiveConfig {
  /// Mean |H|^2 below which the link is in outage (trigger for retrain).
  double outage_power_linear = 1e-12;
  /// Use the fast log(N) training cost (else full exhaustive SSB burst).
  bool fast_training = true;
  /// Back-off between consecutive retrains [s] (avoid thrashing while the
  /// blocker is still in front of the array).
  double retrain_backoff_s = 10.0e-3;
  /// Reaction latency before training can start: NR beam-failure
  /// detection plus waiting for the next SSB occasion (~10 ms + up to a
  /// 20 ms period; we charge the mean).
  double reaction_latency_s = 15.0e-3;
  phy::ReferenceSignalConfig rs;
  core::TrainingConfig training;
};

class ReactiveSingleBeam final : public core::BeamController {
 public:
  ReactiveSingleBeam(const array::Ula& ula, array::Codebook codebook,
                     ReactiveConfig config);

  void start(double t_s, const core::LinkProbeInterface& link) override;
  void step(double t_s, const core::LinkProbeInterface& link) override;
  const CVec& tx_weights() const override { return weights_; }
  bool link_available(double t_s) const override {
    return t_s >= unavailable_until_;
  }
  const char* name() const override { return "reactive-single-beam"; }

  int trainings() const { return trainings_; }
  double beam_angle_rad() const { return angle_; }

 private:
  void retrain(double t_s, const core::LinkProbeInterface& link);
  double training_airtime() const;

  array::Ula ula_;
  array::Codebook codebook_;
  ReactiveConfig config_;
  CVec weights_;
  double angle_ = 0.0;
  double unavailable_until_ = 0.0;
  double last_retrain_ = -1.0;
  int trainings_ = 0;
  bool started_ = false;
};

}  // namespace mmr::baselines
