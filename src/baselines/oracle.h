// Oracle channel-dependent beamformer: w = h* / ||h|| from the true
// per-antenna channel (paper Fig. 15d, obtained there via the exhaustive
// ACO procedure). The upper bound every multi-beam configuration is
// measured against; it sees ground truth and pays no probing cost.
#pragma once

#include <functional>

#include "core/controller_base.h"

namespace mmr::baselines {

class Oracle final : public core::BeamController {
 public:
  /// `channel_fn` returns the TRUE per-antenna channel h[n] at call time.
  explicit Oracle(std::function<CVec()> channel_fn);

  void start(double t_s, const core::LinkProbeInterface& link) override;
  void step(double t_s, const core::LinkProbeInterface& link) override;
  const CVec& tx_weights() const override { return weights_; }
  bool link_available(double /*t_s*/) const override { return true; }
  const char* name() const override { return "oracle"; }

 private:
  void refresh();

  std::function<CVec()> channel_fn_;
  CVec weights_;
};

}  // namespace mmr::baselines
