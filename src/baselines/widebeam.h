// Wide-beam baseline (paper Fig. 18b's "widebeam").
//
// Trades array gain for angular coverage by exciting only a subaperture:
// an N/widening_factor-element beam is widening_factor times wider but
// 10 log10(widening_factor) dB weaker at the peak. Tolerant to small
// misalignment, but the lost gain costs throughput everywhere and a wide
// beam is still one beam -- a blocker in front of it takes the whole link
// down.
#pragma once

#include "array/codebook.h"
#include "core/beam_training.h"
#include "core/controller_base.h"
#include "phy/reference_signals.h"

namespace mmr::baselines {

struct WideBeamConfig {
  /// Aperture reduction factor (beamwidth multiplier).
  std::size_t widening_factor = 4;
  double outage_power_linear = 1e-12;
  double retrain_backoff_s = 10.0e-3;
  phy::ReferenceSignalConfig rs;
  core::TrainingConfig training;
};

/// Weights exciting the first N/factor elements toward `angle`, zero
/// elsewhere, unit norm.
CVec widebeam_weights(const array::Ula& ula, double angle_rad,
                      std::size_t widening_factor);

class WideBeam final : public core::BeamController {
 public:
  WideBeam(const array::Ula& ula, array::Codebook codebook,
           WideBeamConfig config);

  void start(double t_s, const core::LinkProbeInterface& link) override;
  void step(double t_s, const core::LinkProbeInterface& link) override;
  const CVec& tx_weights() const override { return weights_; }
  bool link_available(double t_s) const override {
    return t_s >= unavailable_until_;
  }
  const char* name() const override { return "widebeam"; }

  int trainings() const { return trainings_; }

 private:
  void retrain(double t_s, const core::LinkProbeInterface& link);

  array::Ula ula_;
  array::Codebook codebook_;
  WideBeamConfig config_;
  CVec weights_;
  double unavailable_until_ = 0.0;
  double last_retrain_ = -1.0;
  int trainings_ = 0;
  bool started_ = false;
};

}  // namespace mmr::baselines
