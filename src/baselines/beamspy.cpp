#include "baselines/beamspy.h"

#include <cmath>

#include "common/error.h"
#include "common/units.h"
#include "core/probing.h"

namespace mmr::baselines {

BeamSpy::BeamSpy(const array::Ula& ula, array::Codebook codebook,
                 BeamSpyConfig config)
    : ula_(ula), codebook_(std::move(codebook)), config_(config) {}

void BeamSpy::retrain(double t_s, const core::LinkProbeInterface& link) {
  ++trainings_;
  const core::TrainingResult result =
      core::exhaustive_training(codebook_, link.csi, config_.training);
  MMR_EXPECTS(!result.beams.empty());
  profile_ = result.scan_power;
  // Activate the strongest direction.
  current_idx_ = 0;
  for (std::size_t i = 1; i < profile_.size(); ++i) {
    if (profile_[i] > profile_[current_idx_]) current_idx_ = i;
  }
  weights_ = codebook_.weights(current_idx_);
  unavailable_until_ =
      t_s + phy::ssb_burst_airtime_s(config_.rs, codebook_.size());
  outage_since_ = -1.0;
}

void BeamSpy::switch_to_alternate(double t_s) {
  // Best profile entry angularly separated from the (blocked) current
  // beam. The profile is NOT re-measured -- that is BeamSpy's key trick
  // and its weakness under mobility.
  const double min_sep = config_.training.min_separation_rad;
  const double floor =
      profile_[current_idx_] * from_db(-config_.max_alt_rel_db);
  std::size_t best = profile_.size();
  for (std::size_t i = 0; i < profile_.size(); ++i) {
    const double sep =
        std::abs(codebook_.angle(i) - codebook_.angle(current_idx_));
    if (sep < min_sep) continue;
    if (profile_[i] < floor) continue;
    if (best == profile_.size() || profile_[i] > profile_[best]) best = i;
  }
  if (best == profile_.size()) return;  // no viable alternate
  current_idx_ = best;
  weights_ = codebook_.weights(current_idx_);
  unavailable_until_ = t_s + config_.switch_latency_s;
  ++switches_;
}

void BeamSpy::start(double t_s, const core::LinkProbeInterface& link) {
  retrain(t_s, link);
  started_ = true;
}

void BeamSpy::step(double t_s, const core::LinkProbeInterface& link) {
  MMR_EXPECTS(started_);
  if (t_s < unavailable_until_) return;
  // A failed probe reads as zero power: treated as outage, driving the
  // profile-based switch/retrain machinery like a real blockage would.
  double power = 0.0;
  core::mean_probe_power(link.csi(weights_), power);
  if (power >= config_.outage_power_linear) {
    outage_since_ = -1.0;
    return;
  }
  if (outage_since_ < 0.0) {
    outage_since_ = t_s;
    switch_to_alternate(t_s);
    return;
  }
  if (t_s - outage_since_ >= config_.stale_timeout_s) {
    retrain(t_s, link);  // profile stale; rebuild it
  } else {
    switch_to_alternate(t_s);
  }
}

}  // namespace mmr::baselines
