#include "baselines/widebeam.h"

#include <algorithm>
#include <cmath>

#include "array/weights.h"
#include "common/error.h"
#include "core/beam_training.h"
#include "core/probing.h"

namespace mmr::baselines {

CVec widebeam_weights(const array::Ula& ula, double angle_rad,
                      std::size_t widening_factor) {
  MMR_EXPECTS(widening_factor >= 1);
  const std::size_t active =
      std::max<std::size_t>(1, ula.num_elements / widening_factor);
  array::Ula sub = ula;
  sub.num_elements = active;
  const CVec sub_w = array::single_beam_weights(sub, angle_rad);
  CVec w(ula.num_elements, cplx{});
  std::copy(sub_w.begin(), sub_w.end(), w.begin());
  return array::normalize_trp(w);
}

WideBeam::WideBeam(const array::Ula& ula, array::Codebook codebook,
                   WideBeamConfig config)
    : ula_(ula), codebook_(std::move(codebook)), config_(config) {}

void WideBeam::retrain(double t_s, const core::LinkProbeInterface& link) {
  ++trainings_;
  core::TrainingConfig tc = config_.training;
  tc.top_k = 1;
  const core::TrainingResult result =
      core::exhaustive_training(codebook_, link.csi, tc);
  MMR_EXPECTS(!result.beams.empty());
  weights_ = widebeam_weights(ula_, result.beams.front().angle_rad,
                              config_.widening_factor);
  unavailable_until_ =
      t_s + phy::ssb_burst_airtime_s(config_.rs, codebook_.size());
  last_retrain_ = t_s;
}

void WideBeam::start(double t_s, const core::LinkProbeInterface& link) {
  retrain(t_s, link);
  started_ = true;
}

void WideBeam::step(double t_s, const core::LinkProbeInterface& link) {
  MMR_EXPECTS(started_);
  if (t_s < unavailable_until_) return;
  // Failed probe -> zero power -> outage -> retrain, like the reactive
  // baseline.
  double power = 0.0;
  core::mean_probe_power(link.csi(weights_), power);
  if (power < config_.outage_power_linear &&
      (last_retrain_ < 0.0 ||
       t_s - last_retrain_ >= config_.retrain_backoff_s)) {
    retrain(t_s, link);
  }
}

}  // namespace mmr::baselines
