#include "baselines/reactive_single_beam.h"

#include <cmath>

#include "common/error.h"
#include "core/beam_training.h"
#include "core/probing.h"

namespace mmr::baselines {

ReactiveSingleBeam::ReactiveSingleBeam(const array::Ula& ula,
                                       array::Codebook codebook,
                                       ReactiveConfig config)
    : ula_(ula), codebook_(std::move(codebook)), config_(config) {}

double ReactiveSingleBeam::training_airtime() const {
  if (config_.fast_training) {
    return phy::fast_training_airtime_s(config_.rs, ula_.num_elements);
  }
  return phy::ssb_burst_airtime_s(config_.rs, codebook_.size());
}

void ReactiveSingleBeam::retrain(double t_s,
                                 const core::LinkProbeInterface& link) {
  ++trainings_;
  core::TrainingConfig tc = config_.training;
  tc.top_k = 1;
  const core::TrainingResult result =
      core::exhaustive_training(codebook_, link.csi, tc);
  MMR_EXPECTS(!result.beams.empty());
  angle_ = result.beams.front().angle_rad;
  weights_ = array::single_beam_weights(ula_, angle_);
  unavailable_until_ = t_s + training_airtime();
  last_retrain_ = t_s;
}

void ReactiveSingleBeam::start(double t_s,
                               const core::LinkProbeInterface& link) {
  retrain(t_s, link);  // initial access: no failure-detection latency
  started_ = true;
}

void ReactiveSingleBeam::step(double t_s,
                              const core::LinkProbeInterface& link) {
  MMR_EXPECTS(started_);
  if (t_s < unavailable_until_) return;
  // Purely reactive: act only when the monitored power says outage. A
  // failed probe (empty or fully non-finite report) reads as zero power,
  // i.e. an outage -- which is exactly how a real UE experiences a dead
  // feedback path.
  double power = 0.0;
  core::mean_probe_power(link.csi(weights_), power);
  if (power < config_.outage_power_linear &&
      (last_retrain_ < 0.0 ||
       t_s - last_retrain_ >= config_.retrain_backoff_s)) {
    // Beam failure: the link is already effectively down while the UE
    // declares failure and waits for the next SSB occasion, then training
    // runs. Model that as extra unavailability before the sweep applies.
    retrain(t_s, link);
    unavailable_until_ += config_.reaction_latency_s;
  }
}

}  // namespace mmr::baselines
