// BeamSpy baseline (Sur et al., NSDI'16), ported from 60 GHz as in the
// paper's Fig. 18a comparison.
//
// BeamSpy keeps the full spatial profile captured at training time and,
// when the current single beam is blocked, switches straight to the best
// alternate direction from that profile instead of rescanning. That makes
// blockage recovery fast -- but the profile goes stale under mobility, and
// communication still rides a single beam, so it never gets multi-beam's
// constructive gain or its resilience to simultaneous degradation.
#pragma once

#include "array/codebook.h"
#include "core/beam_training.h"
#include "core/controller_base.h"
#include "phy/reference_signals.h"

namespace mmr::baselines {

struct BeamSpyConfig {
  double outage_power_linear = 1e-12;
  /// Alternates weaker than this many dB below the primary are not usable.
  double max_alt_rel_db = 15.0;
  /// Beam switch latency (profile lookup + reconfiguration): one slot.
  double switch_latency_s = 0.125e-3;
  /// If after switching the link stays in outage this long, the profile is
  /// stale: full retraining.
  double stale_timeout_s = 30.0e-3;
  phy::ReferenceSignalConfig rs;
  core::TrainingConfig training;
};

class BeamSpy final : public core::BeamController {
 public:
  BeamSpy(const array::Ula& ula, array::Codebook codebook,
          BeamSpyConfig config);

  void start(double t_s, const core::LinkProbeInterface& link) override;
  void step(double t_s, const core::LinkProbeInterface& link) override;
  const CVec& tx_weights() const override { return weights_; }
  bool link_available(double t_s) const override {
    return t_s >= unavailable_until_;
  }
  const char* name() const override { return "beamspy"; }

  int trainings() const { return trainings_; }
  int switches() const { return switches_; }

 private:
  void retrain(double t_s, const core::LinkProbeInterface& link);
  void switch_to_alternate(double t_s);

  array::Ula ula_;
  array::Codebook codebook_;
  BeamSpyConfig config_;
  CVec weights_;
  std::size_t current_idx_ = 0;       ///< codebook index of active beam
  RVec profile_;                      ///< trained power per codebook beam
  double unavailable_until_ = 0.0;
  double outage_since_ = -1.0;
  int trainings_ = 0;
  int switches_ = 0;
  bool started_ = false;
};

}  // namespace mmr::baselines
