#include "baselines/oracle.h"

#include <cmath>

#include "common/error.h"

namespace mmr::baselines {

Oracle::Oracle(std::function<CVec()> channel_fn)
    : channel_fn_(std::move(channel_fn)) {
  MMR_EXPECTS(static_cast<bool>(channel_fn_));
}

void Oracle::refresh() {
  const CVec h = channel_fn_();
  MMR_EXPECTS(!h.empty());
  double norm2 = 0.0;
  for (const cplx& c : h) norm2 += std::norm(c);
  MMR_EXPECTS(norm2 > 0.0);
  const double inv = 1.0 / std::sqrt(norm2);
  weights_.resize(h.size());
  for (std::size_t n = 0; n < h.size(); ++n) {
    weights_[n] = std::conj(h[n]) * inv;
  }
}

void Oracle::start(double, const core::LinkProbeInterface&) { refresh(); }

void Oracle::step(double, const core::LinkProbeInterface&) { refresh(); }

}  // namespace mmr::baselines
