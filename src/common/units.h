// dB <-> linear conversions and small unit helpers.
//
// Conventions: "db" functions operate on POWER ratios (10 log10);
// "db_amp" functions operate on AMPLITUDE ratios (20 log10).
#pragma once

#include <cmath>
#include <limits>

namespace mmr {

/// Power ratio -> dB. Returns -inf for zero, which propagates sanely
/// through comparisons (anything is louder than silence).
inline double to_db(double power_ratio) {
  if (power_ratio <= 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(power_ratio);
}

/// dB -> power ratio.
inline double from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Amplitude ratio -> dB (20 log10).
inline double to_db_amp(double amp_ratio) {
  if (amp_ratio <= 0.0) return -std::numeric_limits<double>::infinity();
  return 20.0 * std::log10(amp_ratio);
}

/// dB -> amplitude ratio.
inline double from_db_amp(double db) { return std::pow(10.0, db / 20.0); }

/// dBm -> watts.
inline double dbm_to_watts(double dbm) { return from_db(dbm) * 1e-3; }

/// Watts -> dBm.
inline double watts_to_dbm(double watts) { return to_db(watts / 1e-3); }

inline constexpr double kNano = 1e-9;
inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

}  // namespace mmr
