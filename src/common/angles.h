// Angle helpers. All internal math uses radians; "deg" appears only at
// API boundaries and in printed output (the paper quotes degrees).
#pragma once

#include <cmath>
#include <numbers>

namespace mmr {

inline constexpr double kPi = std::numbers::pi;

inline constexpr double deg_to_rad(double deg) { return deg * kPi / 180.0; }
inline constexpr double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

/// Wrap an angle to (-pi, pi].
inline double wrap_pi(double rad) {
  double w = std::remainder(rad, 2.0 * kPi);
  if (w <= -kPi) w += 2.0 * kPi;
  return w;
}

/// Wrap an angle to [0, 2*pi).
inline double wrap_2pi(double rad) {
  double w = std::fmod(rad, 2.0 * kPi);
  if (w < 0.0) w += 2.0 * kPi;
  return w;
}

/// Smallest absolute difference between two angles [rad].
inline double angle_diff(double a, double b) { return wrap_pi(a - b); }

}  // namespace mmr
