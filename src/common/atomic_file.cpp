#include "common/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/error.h"

namespace mmr {
namespace {

[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  throw std::runtime_error("AtomicFile: " + what + " '" + path +
                           "': " + std::strerror(errno));
}

/// Directory part of `path` ("." when the path has no separator), for the
/// post-rename directory fsync.
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

AtomicFile::AtomicFile(std::string path) : path_(std::move(path)) {
  MMR_EXPECTS(!path_.empty());
}

AtomicFile::~AtomicFile() {
#ifdef __unix__
  // A temp file only survives here if commit() threw halfway; the
  // destination is intact, so just drop the stage.
  if (!temp_path_.empty()) ::unlink(temp_path_.c_str());
#endif
}

void AtomicFile::commit() {
  MMR_EXPECTS(!committed_);
  const std::string content = buffer_.str();
#ifdef __unix__
  temp_path_ = path_ + ".tmp." + std::to_string(::getpid());
  const int fd =
      ::open(temp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    const std::string failed = temp_path_;
    temp_path_.clear();
    throw_io("cannot create temp file", failed);
  }
  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_io("write failed for", temp_path_);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_io("fsync failed for", temp_path_);
  }
  if (::close(fd) != 0) throw_io("close failed for", temp_path_);
  if (::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    throw_io("rename failed onto", path_);
  }
  temp_path_.clear();
  // Persist the rename itself: fsync the containing directory. Failure
  // here is ignorable on filesystems that forbid directory fsync.
  const int dir_fd = ::open(parent_dir(path_).c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
#else
  // Non-POSIX fallback: plain stdio replace (no durability guarantee).
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) throw_io("cannot open", path_);
  if (content.size() > 0 &&
      std::fwrite(content.data(), 1, content.size(), f) != content.size()) {
    std::fclose(f);
    throw_io("write failed for", path_);
  }
  std::fclose(f);
#endif
  committed_ = true;
}

void AtomicFile::write(const std::string& path, std::string_view content) {
  AtomicFile file(path);
  file.stream() << content;
  file.commit();
}

}  // namespace mmr
