#include "common/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/error.h"
#ifdef __unix__
#include "common/fs_ops.h"
#endif

namespace mmr {
namespace {

#ifndef __unix__
[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  throw std::runtime_error("AtomicFile: " + what + " '" + path +
                           "': " + std::strerror(errno));
}
#endif

/// Directory part of `path` ("." when the path has no separator), for the
/// post-rename directory fsync.
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

AtomicFile::AtomicFile(std::string path) : path_(std::move(path)) {
  MMR_EXPECTS(!path_.empty());
}

AtomicFile::~AtomicFile() {
#ifdef __unix__
  // A temp file can only survive here if commit() died between creating
  // it and its own cleanup (e.g. a foreign exception); the destination is
  // intact, so just drop the stage.
  if (!temp_path_.empty()) fsio::unlink_quiet(temp_path_);
#endif
}

void AtomicFile::commit() {
  MMR_EXPECTS(!committed_);
  const std::string content = buffer_.str();
#ifdef __unix__
  // Every syscall routes through fsio: transient failures (EINTR,
  // momentary EBUSY) are retried with bounded backoff, permanent ones
  // surface as typed IoError naming the operation and path. Whatever
  // fails, the staged temp file is unlinked before the throw so repeated
  // failed commits never accumulate '*.tmp.<pid>' litter next to the
  // destination.
  temp_path_ = path_ + ".tmp." + std::to_string(::getpid());
  try {
    const int fd =
        fsio::open_retry(temp_path_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    try {
      fsio::write_all(fd, content.data(), content.size(), temp_path_);
      fsio::fsync_retry(fd, temp_path_);
    } catch (...) {
      (void)fsio::ops().close_fn(fd);
      throw;
    }
    fsio::close_or_throw(fd, temp_path_);
    fsio::rename_retry(temp_path_, path_);
  } catch (...) {
    fsio::unlink_quiet(temp_path_);
    temp_path_.clear();
    throw;
  }
  temp_path_.clear();
  // Persist the rename itself: fsync the containing directory. Failure
  // here is ignorable on filesystems that forbid directory fsync.
  const int dir_fd = fsio::ops().open_fn(parent_dir(path_).c_str(),
                                         O_RDONLY, 0);
  if (dir_fd >= 0) {
    (void)fsio::ops().fsync_fn(dir_fd);
    (void)fsio::ops().close_fn(dir_fd);
  }
#else
  // Non-POSIX fallback: plain stdio replace (no durability guarantee).
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) throw_io("cannot open", path_);
  if (content.size() > 0 &&
      std::fwrite(content.data(), 1, content.size(), f) != content.size()) {
    std::fclose(f);
    throw_io("write failed for", path_);
  }
  std::fclose(f);
#endif
  committed_ = true;
}

void AtomicFile::write(const std::string& path, std::string_view content) {
  AtomicFile file(path);
  file.stream() << content;
  file.commit();
}

}  // namespace mmr
