// Precondition checking. Violations indicate programming errors inside
// the library or misuse of the public API; they throw std::logic_error so
// tests can assert on them and applications fail loudly rather than
// silently computing garbage beam weights.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mmr::detail {

[[noreturn]] inline void precondition_failure(const char* expr,
                                              const char* file, int line) {
  std::ostringstream oss;
  oss << "mmReliable precondition failed: (" << expr << ") at " << file << ":"
      << line;
  throw std::logic_error(oss.str());
}

}  // namespace mmr::detail

#define MMR_EXPECTS(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::mmr::detail::precondition_failure(#cond, __FILE__, __LINE__);  \
    }                                                                  \
  } while (false)

#define MMR_ENSURES(cond) MMR_EXPECTS(cond)
