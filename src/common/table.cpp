#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace mmr {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MMR_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  MMR_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(width[c], '-') + "  ";
  }
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace mmr
