// Fixed-width table printer for figure-reproduction benches. Keeps the
// bench binaries free of formatting noise and makes their stdout easy to
// diff against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mmr {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; cells are already-formatted strings.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 2);

  /// Render with aligned columns.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mmr
