#include "common/arena.h"

#include <cstdint>
#include <cstdlib>
#include <new>

#include "common/error.h"

namespace mmr {

namespace {

/// First offset >= `used` at which `data + offset` is `alignment`-aligned.
std::size_t aligned_offset(const char* data, std::size_t used,
                           std::size_t alignment) {
  const auto addr = reinterpret_cast<std::uintptr_t>(data) + used;
  const auto aligned = (addr + alignment - 1) & ~(std::uintptr_t(alignment) - 1);
  return used + static_cast<std::size_t>(aligned - addr);
}

}  // namespace

Arena::Arena(std::size_t initial_chunk_bytes)
    : next_chunk_bytes_(initial_chunk_bytes < 64 ? 64 : initial_chunk_bytes) {}

Arena::~Arena() {
  for (Chunk& c : chunks_) std::free(c.data);
}

void Arena::reset() {
  for (Chunk& c : chunks_) c.used = 0;
  active_ = 0;
  bytes_in_use_ = 0;
}

void* Arena::do_allocate(std::size_t bytes, std::size_t alignment) {
  MMR_EXPECTS(alignment != 0 && (alignment & (alignment - 1)) == 0);
  if (bytes == 0) bytes = 1;
  // Scan forward from the active chunk; earlier chunks were exhausted
  // (or skipped for being too small) in this cycle. Deterministic: the
  // same allocation sequence after reset() revisits the same chunks in
  // the same order and returns the same addresses.
  for (std::size_t i = active_; i < chunks_.size(); ++i) {
    Chunk& c = chunks_[i];
    const std::size_t offset = aligned_offset(c.data, c.used, alignment);
    if (offset + bytes <= c.size) {
      c.used = offset + bytes;
      active_ = i;
      bytes_in_use_ += bytes;
      if (bytes_in_use_ > high_water_) high_water_ = bytes_in_use_;
      return c.data + offset;
    }
  }
  // No chunk fits: malloc a new one (doubling, but at least big enough
  // for this request plus worst-case alignment slack).
  std::size_t want = next_chunk_bytes_;
  const std::size_t need = bytes + alignment;
  if (want < need) want = need;
  char* data = static_cast<char*>(std::malloc(want));
  if (data == nullptr) throw std::bad_alloc();
  next_chunk_bytes_ = want * 2;
  Chunk c;
  c.data = data;
  c.size = want;
  const std::size_t offset = aligned_offset(data, 0, alignment);
  c.used = offset + bytes;
  chunks_.push_back(c);
  active_ = chunks_.size() - 1;
  bytes_in_use_ += bytes;
  if (bytes_in_use_ > high_water_) high_water_ = bytes_in_use_;
  return data + offset;
}

void Arena::do_deallocate(void* /*p*/, std::size_t /*bytes*/,
                          std::size_t /*alignment*/) {
  // Monotonic: individual frees are no-ops; memory returns via reset().
}

bool Arena::do_is_equal(
    const std::pmr::memory_resource& other) const noexcept {
  return this == &other;
}

}  // namespace mmr
