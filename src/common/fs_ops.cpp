#include "common/fs_ops.h"

#ifdef __unix__

#include <atomic>
#include <cerrno>
#include <chrono>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

namespace mmr::fsio {
namespace {

int real_open(const char* path, int flags, unsigned mode) {
  return ::open(path, flags, static_cast<mode_t>(mode));
}

long real_write(int fd, const void* data, std::size_t n) {
  return static_cast<long>(::write(fd, data, n));
}

int real_fsync(int fd) { return ::fsync(fd); }

int real_close(int fd) { return ::close(fd); }

int real_rename(const char* from, const char* to) {
  return ::rename(from, to);
}

int real_unlink(const char* path) { return ::unlink(path); }

void real_sleep(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

const OpsTable kRealOps = {
    &real_open, &real_write, &real_fsync,  &real_close,
    &real_rename, &real_unlink, &real_sleep,
};

// Published like dsp::backend's dispatch table: relaxed atomic pointer,
// swapped only by tests before/after the code under test runs.
std::atomic<const OpsTable*> g_ops{&kRealOps};

/// One retry step: sleeps the current backoff and doubles it. Returns
/// false when the attempt budget is exhausted (caller throws).
bool backoff_step(int& attempts_left, double& backoff_s) {
  if (--attempts_left <= 0) return false;
  ops().sleep_fn(backoff_s);
  backoff_s *= 2.0;
  return true;
}

}  // namespace

const OpsTable* real_ops() { return &kRealOps; }

const OpsTable& ops() {
  return *g_ops.load(std::memory_order_relaxed);
}

const OpsTable* set_ops(const OpsTable* table) {
  const OpsTable* next = table != nullptr ? table : &kRealOps;
  return g_ops.exchange(next, std::memory_order_relaxed);
}

bool transient_errno(int err) {
  return err == EINTR || err == EAGAIN || err == EBUSY
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
         || err == EWOULDBLOCK
#endif
      ;
}

int open_retry(const std::string& path, int flags, unsigned mode,
               const RetryPolicy& policy) {
  int attempts_left = policy.max_attempts;
  double backoff_s = policy.initial_backoff_s;
  for (;;) {
    const int fd = ops().open_fn(path.c_str(), flags, mode);
    if (fd >= 0) return fd;
    if (!transient_errno(errno) || !backoff_step(attempts_left, backoff_s)) {
      throw IoError("open", path, errno);
    }
  }
}

void write_all(int fd, const void* data, std::size_t n,
               const std::string& path, const RetryPolicy& policy) {
  const char* bytes = static_cast<const char*>(data);
  std::size_t written = 0;
  int attempts_left = policy.max_attempts;
  double backoff_s = policy.initial_backoff_s;
  while (written < n) {
    const long w = ops().write_fn(fd, bytes + written, n - written);
    if (w > 0) {
      written += static_cast<std::size_t>(w);
      // Progress resets the budget: only consecutive failures count.
      attempts_left = policy.max_attempts;
      backoff_s = policy.initial_backoff_s;
      continue;
    }
    // w == 0 (a short write that made no progress) is retried like a
    // transient failure -- regular files never legitimately return 0
    // for a non-empty buffer.
    const int err = w == 0 ? EAGAIN : errno;
    if (!transient_errno(err) || !backoff_step(attempts_left, backoff_s)) {
      throw IoError("write", path, err);
    }
  }
}

void fsync_retry(int fd, const std::string& path, const RetryPolicy& policy) {
  int attempts_left = policy.max_attempts;
  double backoff_s = policy.initial_backoff_s;
  while (ops().fsync_fn(fd) != 0) {
    if (!transient_errno(errno) || !backoff_step(attempts_left, backoff_s)) {
      throw IoError("fsync", path, errno);
    }
  }
}

void rename_retry(const std::string& from, const std::string& to,
                  const RetryPolicy& policy) {
  int attempts_left = policy.max_attempts;
  double backoff_s = policy.initial_backoff_s;
  while (ops().rename_fn(from.c_str(), to.c_str()) != 0) {
    if (!transient_errno(errno) || !backoff_step(attempts_left, backoff_s)) {
      throw IoError("rename", to, errno);
    }
  }
}

bool rename_if_exists(const std::string& from, const std::string& to,
                      const RetryPolicy& policy) {
  int attempts_left = policy.max_attempts;
  double backoff_s = policy.initial_backoff_s;
  for (;;) {
    if (ops().rename_fn(from.c_str(), to.c_str()) == 0) return true;
    if (errno == ENOENT) return false;
    if (!transient_errno(errno) || !backoff_step(attempts_left, backoff_s)) {
      throw IoError("rename", to, errno);
    }
  }
}

void close_or_throw(int fd, const std::string& path) {
  if (ops().close_fn(fd) != 0 && errno != EINTR) {
    throw IoError("close", path, errno);
  }
}

void unlink_quiet(const std::string& path) {
  (void)ops().unlink_fn(path.c_str());
}

}  // namespace mmr::fsio

#endif  // __unix__
