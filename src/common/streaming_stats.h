// O(1) streaming accumulators for the long-running service mode.
//
// The batch harness keeps every sample and aggregates at the end; a
// traffic-serving run cannot (millions of session-ticks, bounded memory).
// This family accumulates in O(1) state per metric:
//   * StreamingMoments -- Welford mean/variance with min/max;
//   * P2Quantile      -- the P-square (Jain & Chlamtac) single-quantile
//                        estimator: five markers, no sample storage;
//   * AvailabilityCounter -- exact windowed + cumulative usable/outage
//                        tick counts.
//
// Mergeable-shard contract: every accumulator supports merge_from(other),
// so per-shard accumulators fold into one. Folding is DETERMINISTIC --
// merging the same states in the same order produces bit-identical
// results, regardless of which threads filled the shards (the streaming
// service always folds shards in shard-index order, making jobs=K output
// byte-identical to jobs=1). Counter merges are exact and associative;
// moments merge by Chan's parallel update (exact count/min/max, mean and
// variance correct up to floating-point reassociation); quantile merges
// are approximate (see P2Quantile::merge_from) with error bounded by the
// marker resolution, pinned by the props suite against exact sorted
// quantiles.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mmr {

/// Welford online mean/variance with exact min/max and a Chan-style
/// pairwise merge. O(1) state; no sample storage.
class StreamingMoments {
 public:
  void add(double x);
  /// Fold another accumulator's state into this one (Chan's parallel
  /// variance update). Deterministic: same operand states, same bits out.
  void merge_from(const StreamingMoments& other);

  std::uint64_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// P-square (P²) streaming quantile estimator (Jain & Chlamtac 1985; the
/// libtrs-style O(1) accumulator design): five markers tracking
/// {min, p/2, p, (1+p)/2, max} positions, adjusted by parabolic
/// interpolation as observations arrive. The first five observations are
/// buffered exactly; quantile() is exact until then.
class P2Quantile {
 public:
  /// `p` in (0, 1), e.g. 0.5 / 0.99 / 0.999.
  explicit P2Quantile(double p = 0.5);

  double p() const { return p_; }
  std::uint64_t count() const { return n_; }

  void add(double x);

  /// Current estimate of the p-quantile. Exact for n <= 5; requires at
  /// least one observation.
  double quantile() const;
  /// Exact observed extremes (markers 0 and 4 never drift).
  double min() const;
  double max() const;

  /// Fold another estimator for the SAME p into this one. Small operands
  /// (n <= 5) replay their buffered samples exactly; otherwise the two
  /// marker sets define piecewise-linear CDFs whose count-weighted
  /// mixture is inverted at the five P² marker fractions -- O(1), no
  /// sample storage. Deterministic (same operands -> same bits); the
  /// estimate error stays bounded by the marker resolution (props tier
  /// pins it against exact sorted quantiles under arbitrary sharding).
  void merge_from(const P2Quantile& other);

 private:
  void add_initial(double x);
  /// CDF fraction assigned to marker i: (pos - 1) / (n - 1).
  double marker_fraction(std::size_t i) const;
  /// Piecewise-linear CDF of this estimator's markers evaluated at x.
  double cdf_at(double x) const;

  double p_ = 0.5;
  std::uint64_t n_ = 0;
  /// Marker heights (sorted) and positions (1-based, fractional during
  /// adjustment as in the original algorithm).
  std::array<double, 5> q_{};
  std::array<double, 5> pos_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> rate_{};
};

/// Exact availability / outage tick counters, windowed and cumulative.
/// One call per scored session-tick; reset_window() at every snapshot
/// boundary. Merges are integer additions: exact, associative,
/// deterministic.
class AvailabilityCounter {
 public:
  /// `available`: the link could carry data this tick (not retraining);
  /// `above_floor`: SNR at or above the outage threshold.
  void add(bool available, bool above_floor);
  void merge_from(const AvailabilityCounter& other);
  void reset_window();

  // Cumulative (since construction).
  std::uint64_t ticks() const { return ticks_; }
  /// available AND above the outage floor (the reliability numerator).
  std::uint64_t usable() const { return usable_; }
  /// available but below the outage floor.
  std::uint64_t outage() const { return outage_; }
  /// consumed by (re)training.
  std::uint64_t unavailable() const { return ticks_ - usable_ - outage_; }
  double availability() const;

  // Window (since the last reset_window()).
  std::uint64_t window_ticks() const { return w_ticks_; }
  std::uint64_t window_usable() const { return w_usable_; }
  std::uint64_t window_outage() const { return w_outage_; }
  double window_availability() const;

 private:
  std::uint64_t ticks_ = 0;
  std::uint64_t usable_ = 0;
  std::uint64_t outage_ = 0;
  std::uint64_t w_ticks_ = 0;
  std::uint64_t w_usable_ = 0;
  std::uint64_t w_outage_ = 0;
};

}  // namespace mmr
