#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mmr {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::mean() const {
  MMR_EXPECTS(n_ > 0);
  return mean_;
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const {
  MMR_EXPECTS(n_ > 0);
  return min_;
}

double OnlineStats::max() const {
  MMR_EXPECTS(n_ > 0);
  return max_;
}

double percentile(std::span<const double> values, double p) {
  MMR_EXPECTS(!values.empty());
  MMR_EXPECTS(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> values) { return percentile(values, 50.0); }

double mean(std::span<const double> values) {
  MMR_EXPECTS(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

Cdf empirical_cdf(std::span<const double> values) {
  MMR_EXPECTS(!values.empty());
  Cdf cdf;
  cdf.value.assign(values.begin(), values.end());
  std::sort(cdf.value.begin(), cdf.value.end());
  cdf.prob.resize(cdf.value.size());
  const double n = static_cast<double>(cdf.value.size());
  for (std::size_t i = 0; i < cdf.value.size(); ++i) {
    cdf.prob[i] = static_cast<double>(i + 1) / n;
  }
  return cdf;
}

double cdf_at(const Cdf& cdf, double x) {
  MMR_EXPECTS(!cdf.value.empty());
  const auto it = std::upper_bound(cdf.value.begin(), cdf.value.end(), x);
  const auto idx = static_cast<std::size_t>(it - cdf.value.begin());
  return static_cast<double>(idx) / static_cast<double>(cdf.value.size());
}

}  // namespace mmr
