// Hookable filesystem syscalls with bounded deterministic retry.
//
// Every syscall the durability layer depends on (AtomicFile's staged
// commit, the campaign journal's fsync'd append, the shard queue's
// claim-by-rename) routes through a per-process fn-pointer table -- the
// same pattern as dsp::backend -- so tests can install a faulting table
// that deterministically injects EINTR storms, short writes, ENOSPC, and
// delays into every recovery path. Production always runs the real
// syscalls; the hook exists so crash-recovery code is exercised by tests
// rather than by luck.
//
// On top of the table sit retrying wrappers: transient failures (EINTR,
// EAGAIN, momentary EBUSY -- think interrupted syscalls and NFS hiccups)
// are retried a bounded number of times with doubling backoff through an
// injectable sleeper; exhaustion or a permanent errno (ENOSPC, EACCES,
// ENOENT where unexpected) throws a typed IoError naming the operation
// and path. The retry loop is deterministic by construction: attempt
// count and backoff schedule are fixed, and the sleeper is part of the
// hook table so tests observe the exact schedule without real delays.
//
// POSIX-only, like the shard queue: non-POSIX builds keep their stdio
// fallbacks and never reference this layer.
#pragma once

#include <cstddef>
#include <string>

#include "common/io_error.h"

namespace mmr::fsio {

/// Hook table over the raw syscalls. Entries must behave like their
/// POSIX namesakes (return value + errno); `sleep_fn` is the retry
/// backoff sleeper (seconds).
struct OpsTable {
  int (*open_fn)(const char* path, int flags, unsigned mode) = nullptr;
  long (*write_fn)(int fd, const void* data, std::size_t n) = nullptr;
  int (*fsync_fn)(int fd) = nullptr;
  int (*close_fn)(int fd) = nullptr;
  int (*rename_fn)(const char* from, const char* to) = nullptr;
  int (*unlink_fn)(const char* path) = nullptr;
  void (*sleep_fn)(double seconds) = nullptr;
};

/// The real-syscall table (never null entries).
const OpsTable* real_ops();

/// Currently active table.
const OpsTable& ops();

/// Install `table` (nullptr restores the real syscalls); returns the
/// previously active table. Like dsp::set_backend, installation is not
/// synchronized against in-flight I/O: tests install the faulting table
/// before the code under test runs and restore it after.
const OpsTable* set_ops(const OpsTable* table);

/// RAII table override for tests: restores the previous table on
/// destruction.
class ScopedOps {
 public:
  explicit ScopedOps(const OpsTable* table) : previous_(set_ops(table)) {}
  ~ScopedOps() { set_ops(previous_); }
  ScopedOps(const ScopedOps&) = delete;
  ScopedOps& operator=(const ScopedOps&) = delete;

 private:
  const OpsTable* previous_;
};

/// Bounded retry schedule: up to `max_attempts` tries per syscall, with
/// `initial_backoff_s` doubling between consecutive failures (first
/// retry waits initial_backoff_s, second 2x, ...). Partial writes making
/// progress reset the attempt counter -- only consecutive failures
/// count.
struct RetryPolicy {
  int max_attempts = 5;
  double initial_backoff_s = 0.0005;
};

/// True for errnos worth retrying: the syscall was interrupted or the
/// resource momentarily busy, and an identical retry can succeed.
bool transient_errno(int err);

/// open(2) with transient retry. Throws IoError("open", path, errno) on
/// a permanent errno or retry exhaustion.
int open_retry(const std::string& path, int flags, unsigned mode,
               const RetryPolicy& policy = {});

/// Write all `n` bytes to `fd`, continuing across short writes and
/// retrying transient failures. Throws IoError("write", path, errno).
void write_all(int fd, const void* data, std::size_t n,
               const std::string& path, const RetryPolicy& policy = {});

/// fsync(2) with transient retry. Throws IoError("fsync", path, errno).
void fsync_retry(int fd, const std::string& path,
                 const RetryPolicy& policy = {});

/// rename(2) with transient retry. Throws IoError("rename", to, errno).
void rename_retry(const std::string& from, const std::string& to,
                  const RetryPolicy& policy = {});

/// rename(2) where a missing source is an expected outcome (queue claim
/// races): returns false on ENOENT, true on success, and throws IoError
/// on anything else after transient retries.
bool rename_if_exists(const std::string& from, const std::string& to,
                      const RetryPolicy& policy = {});

/// close(2); EINTR is treated as success (POSIX leaves the fd state
/// unspecified and Linux closes it). Throws IoError("close", path, errno)
/// on a real failure.
void close_or_throw(int fd, const std::string& path);

/// unlink(2), ignoring every failure (best-effort cleanup).
void unlink_quiet(const std::string& path);

}  // namespace mmr::fsio
