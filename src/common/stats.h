// Streaming and batch statistics used by the experiment harness:
// means/variances, percentiles, empirical CDFs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mmr {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set with linear interpolation, p in [0, 100].
/// Requires a non-empty input.
double percentile(std::span<const double> values, double p);

/// Median shorthand.
double median(std::span<const double> values);

double mean(std::span<const double> values);

/// Empirical CDF evaluated at `points.size()` evenly spaced quantiles.
struct Cdf {
  std::vector<double> value;  ///< sorted sample values
  std::vector<double> prob;   ///< P(X <= value[i])
};

/// Build the empirical CDF of `values` (full resolution, sorted copy).
Cdf empirical_cdf(std::span<const double> values);

/// Evaluate an empirical CDF at x: fraction of samples <= x.
double cdf_at(const Cdf& cdf, double x);

}  // namespace mmr
