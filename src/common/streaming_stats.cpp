#include "common/streaming_stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mmr {

void StreamingMoments::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void StreamingMoments::merge_from(const StreamingMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  mean_ += delta * (nb / n);
  m2_ += other.m2_ + delta * delta * (na * nb / n);
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double StreamingMoments::mean() const {
  MMR_EXPECTS(n_ > 0);
  return mean_;
}

double StreamingMoments::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StreamingMoments::stddev() const { return std::sqrt(variance()); }

double StreamingMoments::min() const {
  MMR_EXPECTS(n_ > 0);
  return min_;
}

double StreamingMoments::max() const {
  MMR_EXPECTS(n_ > 0);
  return max_;
}

P2Quantile::P2Quantile(double p) : p_(p) {
  MMR_EXPECTS(std::isfinite(p) && p > 0.0 && p < 1.0);
  rate_ = {0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0};
}

void P2Quantile::add_initial(double x) {
  // Insertion into the sorted head buffer (exact for n <= 5).
  std::size_t i = n_;
  q_[i] = x;
  while (i > 0 && q_[i - 1] > q_[i]) {
    std::swap(q_[i - 1], q_[i]);
    --i;
  }
  ++n_;
  if (n_ == 5) {
    for (std::size_t j = 0; j < 5; ++j) {
      pos_[j] = static_cast<double>(j + 1);
      desired_[j] = 1.0 + rate_[j] * 4.0;
    }
  }
}

void P2Quantile::add(double x) {
  MMR_EXPECTS(std::isfinite(x));
  if (n_ < 5) {
    add_initial(x);
    return;
  }
  // Locate the marker cell and update the extremes.
  std::size_t k = 0;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = x;
    k = 3;
  } else {
    while (k < 3 && x >= q_[k + 1]) ++k;
  }
  for (std::size_t i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += rate_[i];
  ++n_;

  // Adjust the three interior markers toward their desired positions.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double sign = d >= 0.0 ? 1.0 : -1.0;
      // Piecewise-parabolic (P²) prediction of the marker height.
      const double dp = pos_[i + 1] - pos_[i];
      const double dm = pos_[i - 1] - pos_[i];
      const double qp = (q_[i + 1] - q_[i]) / dp;
      const double qm = (q_[i - 1] - q_[i]) / dm;
      double candidate =
          q_[i] + sign / (pos_[i + 1] - pos_[i - 1]) *
                      ((pos_[i] - pos_[i - 1] + sign) * qp * dp / dp +
                       (pos_[i + 1] - pos_[i] - sign) * qm * dm / dm);
      // The canonical parabolic form; fall back to linear when it would
      // leave the bracketing markers' interval.
      candidate = q_[i] + sign / (pos_[i + 1] - pos_[i - 1]) *
                              ((pos_[i] - pos_[i - 1] + sign) *
                                   (q_[i + 1] - q_[i]) / (pos_[i + 1] - pos_[i]) +
                               (pos_[i + 1] - pos_[i] - sign) *
                                   (q_[i] - q_[i - 1]) / (pos_[i] - pos_[i - 1]));
      if (q_[i - 1] < candidate && candidate < q_[i + 1]) {
        q_[i] = candidate;
      } else {
        const std::size_t j = sign > 0.0 ? i + 1 : i - 1;
        q_[i] += sign * (q_[j] - q_[i]) / (pos_[j] - pos_[i]);
      }
      pos_[i] += sign;
    }
  }
}

double P2Quantile::quantile() const {
  MMR_EXPECTS(n_ > 0);
  if (n_ >= 5) return q_[2];
  // Exact linear-interpolated quantile of the sorted head buffer.
  const double h = p_ * static_cast<double>(n_ - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, static_cast<std::size_t>(n_ - 1));
  const double frac = h - static_cast<double>(lo);
  return q_[lo] + (q_[hi] - q_[lo]) * frac;
}

double P2Quantile::min() const {
  MMR_EXPECTS(n_ > 0);
  return q_[0];
}

double P2Quantile::max() const {
  MMR_EXPECTS(n_ > 0);
  return q_[n_ >= 5 ? 4 : static_cast<std::size_t>(n_ - 1)];
}

double P2Quantile::marker_fraction(std::size_t i) const {
  if (n_ <= 1) return i == 0 ? 0.0 : 1.0;
  return (pos_[i] - 1.0) / (static_cast<double>(n_) - 1.0);
}

double P2Quantile::cdf_at(double x) const {
  if (x <= q_[0]) return 0.0;
  if (x >= q_[4]) return 1.0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (x <= q_[i + 1]) {
      const double span = q_[i + 1] - q_[i];
      const double f0 = marker_fraction(i);
      const double f1 = marker_fraction(i + 1);
      if (span <= 0.0) return f1;
      return f0 + (f1 - f0) * (x - q_[i]) / span;
    }
  }
  return 1.0;
}

void P2Quantile::merge_from(const P2Quantile& other) {
  MMR_EXPECTS(other.p_ == p_);
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  if (other.n_ < 5) {
    // The operand still holds its raw (sorted) head buffer: replay it.
    for (std::size_t i = 0; i < other.n_; ++i) add(other.q_[i]);
    return;
  }
  if (n_ < 5) {
    // Swap roles: adopt the larger estimator, replay my raw buffer.
    std::array<double, 5> raw = q_;
    const std::uint64_t raw_n = n_;
    *this = other;
    for (std::size_t i = 0; i < raw_n; ++i) add(raw[i]);
    return;
  }

  // Both sides are in marker mode: invert the count-weighted mixture of
  // the two piecewise-linear marker CDFs at the five P² fractions.
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  std::array<double, 10> breaks;
  std::merge(q_.begin(), q_.end(), other.q_.begin(), other.q_.end(),
             breaks.begin());
  std::array<double, 10> frac;
  for (std::size_t i = 0; i < 10; ++i) {
    frac[i] = (na * cdf_at(breaks[i]) + nb * other.cdf_at(breaks[i])) / nt;
  }

  std::array<double, 5> merged;
  merged[0] = std::min(q_[0], other.q_[0]);
  merged[4] = std::max(q_[4], other.q_[4]);
  for (std::size_t j = 1; j <= 3; ++j) {
    const double f = rate_[j];
    double x = breaks[9];
    if (f <= frac[0]) {
      x = breaks[0];
    } else {
      for (std::size_t i = 1; i < 10; ++i) {
        if (f <= frac[i]) {
          const double df = frac[i] - frac[i - 1];
          x = df > 0.0 ? breaks[i - 1] + (f - frac[i - 1]) *
                                             (breaks[i] - breaks[i - 1]) / df
                       : breaks[i];
          break;
        }
      }
    }
    merged[j] = x;
  }
  for (std::size_t j = 1; j < 5; ++j) {
    if (merged[j] < merged[j - 1]) merged[j] = merged[j - 1];
  }

  const std::uint64_t n_total = n_ + other.n_;
  q_ = merged;
  n_ = n_total;
  pos_[0] = 1.0;
  pos_[4] = static_cast<double>(n_total);
  for (std::size_t j = 1; j <= 3; ++j) {
    double pos = 1.0 + std::round(rate_[j] * (static_cast<double>(n_total) - 1.0));
    const double lo = pos_[j - 1] + 1.0;
    if (pos < lo) pos = lo;
    const double hi = pos_[4] - static_cast<double>(4 - j);
    if (pos > hi) pos = hi;
    pos_[j] = pos;
  }
  for (std::size_t j = 0; j < 5; ++j) {
    desired_[j] = 1.0 + rate_[j] * (static_cast<double>(n_total) - 1.0);
  }
}

void AvailabilityCounter::add(bool available, bool above_floor) {
  ++ticks_;
  ++w_ticks_;
  if (available && above_floor) {
    ++usable_;
    ++w_usable_;
  } else if (available) {
    ++outage_;
    ++w_outage_;
  }
}

void AvailabilityCounter::merge_from(const AvailabilityCounter& other) {
  ticks_ += other.ticks_;
  usable_ += other.usable_;
  outage_ += other.outage_;
  w_ticks_ += other.w_ticks_;
  w_usable_ += other.w_usable_;
  w_outage_ += other.w_outage_;
}

void AvailabilityCounter::reset_window() {
  w_ticks_ = 0;
  w_usable_ = 0;
  w_outage_ = 0;
}

double AvailabilityCounter::availability() const {
  return ticks_ > 0 ? static_cast<double>(usable_) / static_cast<double>(ticks_)
                    : 0.0;
}

double AvailabilityCounter::window_availability() const {
  return w_ticks_ > 0
             ? static_cast<double>(w_usable_) / static_cast<double>(w_ticks_)
             : 0.0;
}

}  // namespace mmr
