// Physical constants and canonical system parameters used throughout the
// reproduction. Values mirror the paper's testbed (Section 5).
#pragma once

namespace mmr {

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Paper testbed carrier: 28 GHz (5G NR FR2, band n257-ish).
inline constexpr double kCarrier28GHz = 28.0e9;

/// Appendix B comparison carrier: 60 GHz (IEEE 802.11ad).
inline constexpr double kCarrier60GHz = 60.0e9;

/// Paper baseband bandwidth: 400 MHz OFDM (Section 5.2).
inline constexpr double kBandwidth400MHz = 400.0e6;

/// Outdoor/USRP compact setup bandwidth: 100 MHz.
inline constexpr double kBandwidth100MHz = 100.0e6;

/// 5G NR FR2 subcarrier spacing used by the testbed: 120 kHz.
inline constexpr double kScs120kHz = 120.0e3;

/// SNR below which a 5G-NR OFDM link is in outage (Section 6.1: 6 dB is
/// required to decode the lowest MCS).
inline constexpr double kOutageSnrDb = 6.0;

/// Oxygen absorption near 60 GHz [dB/km]; negligible at 28 GHz.
inline constexpr double kOxygenAbsorption60GHzDbPerKm = 15.0;
inline constexpr double kOxygenAbsorption28GHzDbPerKm = 0.06;

}  // namespace mmr
