// Deterministic PRNG for reproducible experiments.
//
// Every stochastic component (channel realizations, blocker arrival, CFO
// drift, AWGN) draws from an explicitly seeded Rng so that figure
// reproductions are bit-stable across runs. The generator is
// xoshiro256++, which is fast, tiny, and has no global state.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace mmr {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal (Box-Muller; caches the second sample).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Circularly-symmetric complex Gaussian with E[|x|^2] = variance.
  cplx complex_normal(double variance = 1.0);

  /// True with probability p.
  bool bernoulli(double p);

  /// Exponential with given mean. Requires mean > 0.
  double exponential(double mean);

  /// Fork an independent stream (e.g. one per experiment repetition).
  /// Mutates this generator: consecutive calls return different streams.
  Rng fork();

  /// Fork the sub-stream `stream_id` of this generator's seed. Pure: the
  /// result depends only on (construction seed, stream_id), never on how
  /// many draws or forks happened in between, so parallel Monte-Carlo
  /// trials get identical streams regardless of scheduling or call order.
  Rng fork(std::uint64_t stream_id) const;

  /// Seed of the independent sub-stream `stream_id` under `base_seed`
  /// (splitmix64-based mixing; what fork(stream_id) seeds its child with).
  static std::uint64_t derive_stream_seed(std::uint64_t base_seed,
                                          std::uint64_t stream_id);

  /// The seed this generator was constructed with.
  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mmr
