#include "common/thread_pool.h"

#include <utility>

#include "common/error.h"

namespace mmr {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = hardware_jobs();
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t ThreadPool::hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::enqueue(std::function<void()> task) {
  const std::size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    // Bump under the wake mutex so a worker checking the predicate cannot
    // miss the notification.
    std::lock_guard<std::mutex> lock(wake_mutex_);
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_.notify_one();
}

bool ThreadPool::try_pop(std::size_t worker, std::function<void()>& task) {
  // Own queue first, newest task (LIFO keeps the working set warm)...
  {
    WorkerQueue& own = *queues_[worker];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // ...then steal the oldest task from a sibling.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& victim = *queues_[(worker + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t worker) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(worker, task)) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_.wait(lock, [this] {
      return stop_ || pending_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_ && pending_.load(std::memory_order_relaxed) == 0) return;
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  MMR_EXPECTS(body != nullptr);
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&body, i] { body(i); }));
  }
  // Collect everything before rethrowing so no task outlives `body`.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mmr
