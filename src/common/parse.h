// Strict numeric parsing for command-line values. strtoull alone accepts
// garbage silently ("abc" -> 0, "12x" -> 12, "-1" -> huge), which turned
// typos like `--jobs abc` into "use every hardware thread". These helpers
// accept ONLY a full base-10 unsigned integer that fits the target type.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>

namespace mmr {

/// Parse `text` as a base-10 unsigned 64-bit integer. Returns false (and
/// leaves `out` untouched) unless the ENTIRE string is a valid number:
/// no empty input, no sign, no whitespace, no trailing characters, no
/// overflow past uint64.
inline bool parse_u64(const char* text, std::uint64_t& out) {
  if (text == nullptr || *text == '\0') return false;
  // strtoull skips leading whitespace and accepts '+'/'-'; forbid both by
  // requiring the first character to be a digit.
  if (!std::isdigit(static_cast<unsigned char>(*text))) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno == ERANGE) return false;
  if (end == text || *end != '\0') return false;
  out = static_cast<std::uint64_t>(value);
  return true;
}

/// Same, for size_t (rejects values that do not fit size_t on this
/// platform).
inline bool parse_size(const char* text, std::size_t& out) {
  std::uint64_t value = 0;
  if (!parse_u64(text, value)) return false;
  if (value > std::numeric_limits<std::size_t>::max()) return false;
  out = static_cast<std::size_t>(value);
  return true;
}

/// Parse `text` as a non-negative finite base-10 double (e.g. a timeout in
/// seconds). Same strictness contract as parse_u64: the ENTIRE string must
/// be the number -- no sign, no whitespace, no trailing characters, no
/// inf/nan, no hex floats.
inline bool parse_f64(const char* text, double& out) {
  if (text == nullptr || *text == '\0') return false;
  // Require a digit or '.' up front: rejects signs, whitespace, "inf",
  // "nan", and hex-float "0x..." is stopped below.
  if (!std::isdigit(static_cast<unsigned char>(*text)) && *text != '.') {
    return false;
  }
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == 'x' || *p == 'X') return false;  // no hex floats
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (errno == ERANGE) return false;
  if (end == text || *end != '\0') return false;
  if (!(value >= 0.0) || value > std::numeric_limits<double>::max()) {
    return false;
  }
  out = value;
  return true;
}

}  // namespace mmr
