// Strict numeric parsing for command-line values. strtoull alone accepts
// garbage silently ("abc" -> 0, "12x" -> 12, "-1" -> huge), which turned
// typos like `--jobs abc` into "use every hardware thread". These helpers
// accept ONLY a full base-10 number that fits the target type, and parse
// it LOCALE-INDEPENDENTLY (std::from_chars): a bench run under a
// comma-decimal locale parses "1.5" the same as everywhere else, where
// strtod would have stopped at the '.' and rejected the flag.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstring>
#include <limits>

namespace mmr {

/// Parse `text` as a base-10 unsigned 64-bit integer. Returns false (and
/// leaves `out` untouched) unless the ENTIRE string is a valid number:
/// no empty input, no sign, no whitespace, no trailing characters, no
/// overflow past uint64.
inline bool parse_u64(const char* text, std::uint64_t& out) {
  if (text == nullptr || *text == '\0') return false;
  // from_chars already rejects signs and whitespace for unsigned types;
  // the explicit digit gate keeps the contract self-evident.
  if (*text < '0' || *text > '9') return false;
  const char* end = text + std::strlen(text);
  std::uint64_t value = 0;
  const std::from_chars_result r = std::from_chars(text, end, value, 10);
  if (r.ec != std::errc() || r.ptr != end) return false;
  out = value;
  return true;
}

/// Same, for size_t (rejects values that do not fit size_t on this
/// platform).
inline bool parse_size(const char* text, std::size_t& out) {
  std::uint64_t value = 0;
  if (!parse_u64(text, value)) return false;
  if (value > std::numeric_limits<std::size_t>::max()) return false;
  out = static_cast<std::size_t>(value);
  return true;
}

/// Parse `text` as a non-negative finite base-10 double (e.g. a timeout in
/// seconds). Same strictness contract as parse_u64: the ENTIRE string must
/// be the number -- no sign, no whitespace, no trailing characters, no
/// inf/nan, no hex floats. The decimal separator is ALWAYS '.', whatever
/// the process locale says.
inline bool parse_f64(const char* text, double& out) {
  if (text == nullptr || *text == '\0') return false;
  // Require a digit or '.' up front: rejects signs, whitespace, "inf",
  // "nan". from_chars's default chars_format::general has no hex-float
  // grammar, so "0x1p3" stops at the 'x' and fails the full-string check.
  if ((*text < '0' || *text > '9') && *text != '.') return false;
  const char* end = text + std::strlen(text);
  double value = 0.0;
  const std::from_chars_result r =
      std::from_chars(text, end, value, std::chars_format::general);
  if (r.ec != std::errc() || r.ptr != end) return false;
  if (!(value >= 0.0) || value > std::numeric_limits<double>::max()) {
    return false;
  }
  out = value;
  return true;
}

}  // namespace mmr
