// Monotonic chunked arena: the per-trial scratch allocator behind the
// zero-allocation trial hot path (PR-6).
//
// Arena is a std::pmr::memory_resource that hands out bump-pointer
// slices of malloc'd chunks. deallocate() is a no-op; reset() rewinds
// every chunk for reuse WITHOUT returning memory to the system, so a
// steady-state trial loop whose scratch lives on an arena touches the
// global heap exactly zero times after warm-up.
//
// Lifetime rules (see DESIGN.md "Kernel backends & dispatch"):
//  * Objects allocated from the arena are NOT destroyed by reset() --
//    only trivially-destructible payloads, or containers the owner
//    clears/rebuilds first, may live on an arena across a reset().
//    sim::TrialWorkspace enforces this by destroying and reconstructing
//    its scratch containers around every reset().
//  * The arena must outlive every container bound to it.
//  * Not thread-safe: one arena per trial, owned by one worker.
#pragma once

#include <cstddef>
#include <memory_resource>
#include <vector>

namespace mmr {

class Arena : public std::pmr::memory_resource {
 public:
  /// `initial_chunk_bytes` sizes the first chunk; later chunks double
  /// (geometric growth) so warm-up settles in O(log total) mallocs.
  explicit Arena(std::size_t initial_chunk_bytes = 16 * 1024);
  ~Arena() override;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Rewind every chunk for reuse; keeps all chunk memory. After reset()
  /// an identical allocation sequence returns the identical addresses --
  /// the property the arena-reuse bit-identity tests pin.
  void reset();

  /// Bytes handed out since construction / the last reset().
  std::size_t bytes_in_use() const { return bytes_in_use_; }
  /// Largest bytes_in_use() ever observed (across resets): the trial
  /// scratch footprint, reported by bench telemetry.
  std::size_t high_water() const { return high_water_; }
  /// Number of chunks malloc'd so far (never shrinks).
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  void* do_allocate(std::size_t bytes, std::size_t alignment) override;
  void do_deallocate(void* p, std::size_t bytes,
                     std::size_t alignment) override;
  bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override;

  struct Chunk {
    char* data = nullptr;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< index of the chunk currently bumping
  std::size_t next_chunk_bytes_;
  std::size_t bytes_in_use_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace mmr
