// Crash-safe whole-file replacement (write-temp + fsync + rename).
//
// Long campaigns must be able to die -- SIGKILL, OOM, power loss -- at any
// instruction without leaving a half-written results file behind. POSIX
// rename(2) within one filesystem is atomic, so the durable way to write
// FILE is: stage the full content into FILE.tmp.<pid>, fsync the staged
// bytes to disk, rename over FILE, then fsync the parent directory so the
// rename itself survives a crash. Readers therefore observe either the old
// complete file or the new complete file, never a truncated mix.
//
// AtomicFile buffers content in memory (stream()) and performs the whole
// stage/fsync/rename dance in commit(); a destructor without commit()
// discards the staged content and leaves any existing FILE untouched.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace mmr {

class AtomicFile {
 public:
  /// Prepares an atomic replacement of `path`. Nothing touches the
  /// filesystem until commit().
  explicit AtomicFile(std::string path);
  /// Discards uncommitted content (removes a stale temp file if commit()
  /// failed halfway).
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// Buffer for the future content of `path`.
  std::ostream& stream() { return buffer_; }

  /// The destination path this file will atomically replace.
  const std::string& path() const { return path_; }

  /// Stage + fsync + rename + fsync(parent dir). Each syscall routes
  /// through common/fs_ops.h: transient failures (EINTR, momentary
  /// EBUSY) retry with bounded backoff; permanent ones throw a typed
  /// IoError (a std::runtime_error) naming the operation and path. On
  /// any failure the destination is left untouched and the staged temp
  /// file is unlinked before the throw, so repeated failed commits never
  /// litter the directory. Calling commit() twice is an error
  /// (MMR_EXPECTS).
  void commit();

  /// True once commit() has succeeded.
  bool committed() const { return committed_; }

  /// Convenience: atomically replace `path` with `content`.
  static void write(const std::string& path, std::string_view content);

 private:
  std::string path_;
  std::string temp_path_;  ///< non-empty while a staged temp file exists
  std::ostringstream buffer_;
  bool committed_ = false;
};

}  // namespace mmr
