// Fundamental scalar and container aliases shared across mmReliable.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace mmr {

/// Complex baseband sample. All channel/beamforming math is double
/// precision: phased-array weight synthesis is sensitive to phase error
/// accumulation and the arrays involved are small (<= a few thousand taps).
using cplx = std::complex<double>;

/// Dense complex vector (channel snapshots, beam weights, CIR taps).
using CVec = std::vector<cplx>;

/// Dense real vector (powers, angles, frequency grids).
using RVec = std::vector<double>;

inline constexpr cplx kJ{0.0, 1.0};

}  // namespace mmr
