#include "common/rng.h"

#include <cmath>

#include "common/angles.h"
#include "common/error.h"

namespace mmr {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: expands one seed word into the four xoshiro state words.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  MMR_EXPECTS(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller. uniform() can return exactly 0; nudge to avoid log(0).
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = r * std::sin(2.0 * kPi * u2);
  has_cached_normal_ = true;
  return r * std::cos(2.0 * kPi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

cplx Rng::complex_normal(double variance) {
  const double s = std::sqrt(variance / 2.0);
  return {normal(0.0, s), normal(0.0, s)};
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  MMR_EXPECTS(mean > 0.0);
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::fork() { return Rng(next_u64()); }

Rng Rng::fork(std::uint64_t stream_id) const {
  return Rng(derive_stream_seed(seed_, stream_id));
}

std::uint64_t Rng::derive_stream_seed(std::uint64_t base_seed,
                                      std::uint64_t stream_id) {
  // Two splitmix64 rounds decorrelate adjacent stream ids; mixing the
  // hashed base seed into the stream counter keeps streams of different
  // base seeds disjoint (base 1 / stream 2 != base 2 / stream 1).
  std::uint64_t sm = base_seed;
  const std::uint64_t base_hash = splitmix64(sm);
  sm = base_hash ^ (stream_id + 0x6A09E667F3BCC909ull);
  (void)splitmix64(sm);
  return splitmix64(sm);
}

}  // namespace mmr
