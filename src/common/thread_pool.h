// Work-stealing thread pool for trial-level parallelism.
//
// Each worker owns a deque: it pops its own work LIFO (cache-warm) and
// steals FIFO from siblings when idle, so uneven trial durations balance
// without a central bottleneck. The pool makes no ordering promises --
// determinism is the caller's job (see sim::SweepRunner, which gives every
// trial an independent seed-derived Rng stream and writes results into
// index-addressed slots).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mmr {

class ThreadPool {
 public:
  /// Spawn `num_threads` workers; 0 means hardware_jobs().
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains every queued task, then joins the workers. Work submitted
  /// before destruction is guaranteed to run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Submit a nullary callable; the future carries its result or its
  /// exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Run body(i) for every i in [0, n) across the pool and block until all
  /// complete. If any invocation throws, the exception from the lowest
  /// index is rethrown (the remaining iterations still run). Must be
  /// called from outside the pool's own workers.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// Hardware concurrency, clamped to at least 1.
  static std::size_t hardware_jobs();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void enqueue(std::function<void()> task);
  bool try_pop(std::size_t worker, std::function<void()>& task);
  void worker_loop(std::size_t worker);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<std::size_t> pending_{0};
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stop_ = false;  // guarded by wake_mutex_
};

}  // namespace mmr
