// Typed filesystem error for the durability layer.
//
// AtomicFile, the campaign journal, and the shard queue previously threw
// bare std::runtime_error with errno text baked into the message; callers
// that need to react to the *kind* of failure (retryable vs fatal, which
// path, which operation) had to parse strings. IoError keeps the message
// (so every existing catch site still reads well) but carries the
// operation, path, and errno as typed fields. It derives from
// std::runtime_error, so code catching the old type keeps working.
#pragma once

#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace mmr {

class IoError : public std::runtime_error {
 public:
  /// `op` is the failing operation ("open", "write", "fsync", "rename",
  /// "close"), `path` the file it failed on, `error_code` the errno.
  IoError(std::string op, std::string path, int error_code)
      : std::runtime_error(op + " failed for '" + path +
                           "': " + std::strerror(error_code)),
        op_(std::move(op)),
        path_(std::move(path)),
        code_(error_code) {}

  const std::string& op() const { return op_; }
  const std::string& path() const { return path_; }
  /// The errno captured at the failure site.
  int code() const { return code_; }

 private:
  std::string op_;
  std::string path_;
  int code_;
};

}  // namespace mmr
