#include "core/link_state.h"

#include <cmath>

#include "common/error.h"

namespace mmr::core {

const char* to_string(LinkState state) {
  switch (state) {
    case LinkState::kDown: return "down";
    case LinkState::kAcquisition: return "acquisition";
    case LinkState::kUp: return "up";
    case LinkState::kUnstable: return "unstable";
  }
  return "unknown";
}

const char* to_string(LinkEvent event) {
  switch (event) {
    case LinkEvent::kAcquire: return "acquire";
    case LinkEvent::kAcquisitionSuccess: return "acquisition_success";
    case LinkEvent::kAcquisitionFailure: return "acquisition_failure";
    case LinkEvent::kErrorBurst: return "error_burst";
    case LinkEvent::kRecovered: return "recovered";
    case LinkEvent::kRecoveryTimeout: return "recovery_timeout";
    case LinkEvent::kLinkLost: return "link_lost";
  }
  return "unknown";
}

LinkState transition(LinkState state, LinkEvent event) {
  switch (state) {
    case LinkState::kDown:
      if (event == LinkEvent::kAcquire) return LinkState::kAcquisition;
      return state;  // everything else is a no-op on a dead link
    case LinkState::kAcquisition:
      switch (event) {
        case LinkEvent::kAcquisitionSuccess: return LinkState::kUp;
        case LinkEvent::kAcquisitionFailure: return LinkState::kDown;
        case LinkEvent::kLinkLost: return LinkState::kDown;
        default: return state;
      }
    case LinkState::kUp:
      switch (event) {
        case LinkEvent::kErrorBurst: return LinkState::kUnstable;
        case LinkEvent::kLinkLost: return LinkState::kDown;
        default: return state;
      }
    case LinkState::kUnstable:
      switch (event) {
        case LinkEvent::kRecovered: return LinkState::kUp;
        case LinkEvent::kRecoveryTimeout: return LinkState::kDown;
        case LinkEvent::kLinkLost: return LinkState::kDown;
        case LinkEvent::kErrorBurst: return state;  // still bursting
        default: return state;
      }
  }
  return state;
}

bool transition_is_legal(LinkState state, LinkEvent event) {
  // Moving pairs are legal by definition; the one legal self-loop is an
  // error burst while already unstable (the burst continues).
  if (transition(state, event) != state) return true;
  return state == LinkState::kUnstable && event == LinkEvent::kErrorBurst;
}

void LinkStateConfig::validate() const {
  MMR_EXPECTS(std::isfinite(min_up_dwell_s) && min_up_dwell_s >= 0.0);
  MMR_EXPECTS(std::isfinite(max_unstable_s) && max_unstable_s >= 0.0);
  MMR_EXPECTS(std::isfinite(max_acquisition_s) && max_acquisition_s >= 0.0);
}

LinkStateMachine::LinkStateMachine(LinkStateConfig config, double t0_s)
    : config_(config), entered_at_(t0_s), last_t_(t0_s) {
  config_.validate();
  MMR_EXPECTS(std::isfinite(t0_s));
}

void LinkStateMachine::advance_clock(double t_s) {
  MMR_EXPECTS(std::isfinite(t_s));
  MMR_EXPECTS(t_s >= last_t_);
  time_in_[static_cast<std::size_t>(state_)] += t_s - last_t_;
  last_t_ = t_s;
}

bool LinkStateMachine::apply(double t_s, LinkEvent event) {
  advance_clock(t_s);
  // Dwell-time hysteresis: a freshly established link shrugs off error
  // bursts until it has served for min_up_dwell_s.
  if (state_ == LinkState::kUp && event == LinkEvent::kErrorBurst &&
      dwell_s(t_s) < config_.min_up_dwell_s) {
    return false;
  }
  const LinkState next = transition(state_, event);
  if (next == state_) return false;
  state_ = next;
  entered_at_ = t_s;
  ++transitions_;
  return true;
}

std::optional<LinkEvent> LinkStateMachine::poll(double t_s) {
  advance_clock(t_s);
  if (state_ == LinkState::kUnstable &&
      dwell_s(t_s) >= config_.max_unstable_s) {
    apply(t_s, LinkEvent::kRecoveryTimeout);
    return LinkEvent::kRecoveryTimeout;
  }
  if (state_ == LinkState::kAcquisition &&
      dwell_s(t_s) >= config_.max_acquisition_s) {
    apply(t_s, LinkEvent::kAcquisitionFailure);
    return LinkEvent::kAcquisitionFailure;
  }
  return std::nullopt;
}

double LinkStateMachine::time_in(LinkState state) const {
  return time_in_[static_cast<std::size_t>(state)];
}

}  // namespace mmr::core
