// mmReliable's end-to-end beam management controller (paper Fig. 9).
//
// Lifecycle per link:
//   1. initial beam training (SSB sweep) -> top-K path angles
//   2. constructive multi-beam establishment (two probes per extra beam)
//   3. continuous maintenance:
//        - superres monitoring of per-beam power on every CSI-RS
//        - fast drop  -> blockage: zero that beam's coefficient (power
//          reallocation) and watch for recovery
//        - slow drift -> mobility: invert the beam pattern for the offset,
//          disambiguate +/- with one probe, realign
//        - periodic constructive-combining refresh (2(K-1) probes)
//        - sustained total outage -> full retraining (link unavailable for
//          the SSB-burst airtime)
//        - failed probes (empty / fully non-finite reports) -> keep the
//          last-good weights, back off monitoring after repeated failures,
//          retrain once the probe outage budget is spent -- every
//          degradation reported through the FaultListener
//
// The controller only observes the world through LinkProbeInterface; all
// measurements carry estimator noise and CFO/SFO impairments.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "array/codebook.h"
#include "array/geometry.h"
#include "array/weights.h"
#include "core/beam_training.h"
#include "core/controller_base.h"
#include "core/link_interface.h"
#include "core/multibeam.h"
#include "core/probing.h"
#include "core/superres.h"
#include "core/tracking.h"
#include "phy/reference_signals.h"

namespace mmr::core {

struct MaintenanceConfig {
  /// Beams in the multi-beam (paper: 3 beams reach 92% of oracle).
  std::size_t max_beams = 2;
  /// Link bandwidth; sets the CIR tap period (1/B).
  double bandwidth_hz = 400.0e6;
  /// Taps in the monitoring CIR.
  std::size_t cir_taps = 24;
  /// Period of refinement passes (realignment + CC refresh).
  double refine_period_s = 20.0e-3;
  /// Mean |H|^2 (channel power gain) below which the link is in outage;
  /// derive from LinkBudget::gain_for_snr(6 dB).
  double outage_power_linear = 1e-12;
  /// Sustained outage longer than this triggers full retraining [s].
  double retrain_timeout_s = 25.0e-3;
  /// Recovery margin when re-probing blocked beams [dB].
  double recover_margin_db = 5.0;
  /// Ablations (Fig. 17c): disable mobility realignment and/or the
  /// periodic constructive-combining refresh. Blockage reallocation and
  /// monitoring stay on either way.
  bool enable_tracking = true;
  bool enable_cc_refresh = true;
  /// Degraded-mode handling of failed monitor probes (empty or fully
  /// non-finite CIR reports): after probe_retry_limit consecutive
  /// failures, monitoring backs off exponentially from
  /// probe_backoff_initial_s up to probe_backoff_max_s (the controller
  /// keeps transmitting on its last-good weights throughout), and a probe
  /// outage lasting probe_outage_budget_s triggers full retraining.
  std::size_t probe_retry_limit = 3;
  double probe_backoff_initial_s = 5.0e-3;
  double probe_backoff_max_s = 20.0e-3;
  double probe_outage_budget_s = 50.0e-3;
  /// Hardware weight resolution applied to every transmitted pattern
  /// (paper Section 5.1: 6-bit phase, 0.5 dB gain steps).
  array::QuantizationSpec quantization = array::QuantizationSpec::paper_testbed();
  phy::ReferenceSignalConfig rs;
  SuperresConfig superres;
  TrackerConfig tracker;
  TrainingConfig training;
};

class MmReliableController final : public BeamController {
 public:
  MmReliableController(const array::Ula& ula, array::Codebook codebook,
                       MaintenanceConfig config);

  /// Run initial beam training + multi-beam establishment at time t.
  /// The link is unavailable for the training airtime.
  void start(double t_s, const LinkProbeInterface& link) override;

  /// One maintenance tick; call at the CSI-RS cadence.
  void step(double t_s, const LinkProbeInterface& link) override;

  /// Current transmit weights (unit norm).
  const CVec& tx_weights() const override { return multibeam_.weights; }

  /// False while (re)training occupies the link.
  bool link_available(double t_s) const override {
    return t_s >= unavailable_until_;
  }

  const char* name() const override { return "mmReliable"; }

  /// Faithful mapping of the maintenance lifecycle onto the link state
  /// machine: (re)training in flight = Acquisition, a declared outage or
  /// a failed-probe streak = Unstable, otherwise Up. Pure observation --
  /// the controller's behavior is unchanged.
  LinkState link_state(double t_s) const override {
    if (!started_) return LinkState::kDown;
    if (t_s < unavailable_until_ || pending_training_) {
      return LinkState::kAcquisition;
    }
    if (outage_since_ >= 0.0 || probe_outage_since_ >= 0.0 ||
        probe_failures_ > 0) {
      return LinkState::kUnstable;
    }
    return LinkState::kUp;
  }

  /// Degraded-mode event reporting (kProbeFailure, kFallbackLastGood,
  /// kBackoff, kEstimateRejected, kSanitizedReport, kRetrainTriggered).
  void set_fault_listener(FaultListener listener) override {
    listener_ = std::move(listener);
  }

  std::size_t num_active_beams() const;
  const std::vector<double>& beam_angles() const { return angles_; }
  const std::vector<bool>& blocked() const { return blocked_; }
  /// Last superres per-beam powers (linear |alpha|^2).
  const RVec& last_beam_powers() const { return last_powers_; }
  /// Last measured total channel power (mean |H|^2).
  double last_total_power() const { return last_total_power_; }

  // Overhead accounting.
  int monitor_probes() const { return monitor_probes_; }
  int refinement_probes() const { return refinement_probes_; }
  int trainings() const { return trainings_; }
  /// Consecutive failed monitor probes in the current streak.
  std::size_t consecutive_probe_failures() const { return probe_failures_; }
  /// Total airtime spent on beam management so far [s].
  double management_airtime_s() const;

 private:
  void do_training(double t_s, const LinkProbeInterface& link);
  void establish_multibeam(double t_s, const LinkProbeInterface& link,
                           const TrainingResult& training);
  void monitor(double t_s, const LinkProbeInterface& link);
  void refine(double t_s, const LinkProbeInterface& link);
  void resynthesize();
  void emit(double t_s, FaultEventKind kind, std::size_t beam = kNoBeam,
            double value = 0.0);
  /// Zero non-finite taps in place (reporting kSanitizedReport); false if
  /// the report is unusable (empty or no finite taps).
  bool sanitize_report(double t_s, CVec& report);
  /// Bookkeeping for one failed monitor probe: last-good fallback,
  /// bounded retry/backoff, outage-budget retraining.
  void on_probe_failure(double t_s);
  /// Active (unblocked) beam indices.
  std::vector<std::size_t> active_indices() const;
  double bandwidth() const { return config_.bandwidth_hz; }
  double sample_period() const { return 1.0 / config_.bandwidth_hz; }

  array::Ula ula_;
  array::Codebook codebook_;
  MaintenanceConfig config_;

  // Per-TRAINED-beam state. The superres dictionary tracks EVERY trained
  // direction (otherwise unmodeled paths contaminate the fitted per-beam
  // powers); only the first max_beams ("in_multibeam_") carry data.
  std::vector<double> angles_;
  std::vector<cplx> ratios_;        ///< h_k/h_0 estimates, [0] == 1
  std::vector<bool> in_multibeam_;
  std::vector<bool> blocked_;
  std::vector<double> single_power_db_;  ///< single-beam reference powers
  RVec nominal_delays_;
  std::vector<PerBeamTracker> trackers_;
  std::vector<double> misalign_;
  MultiBeam multibeam_;

  double unavailable_until_ = 0.0;
  bool pending_training_ = false;
  double outage_since_ = -1.0;
  double last_refine_ = 0.0;
  RVec last_powers_;
  double last_total_power_ = 0.0;
  bool started_ = false;

  // Degraded-mode state: consecutive failed monitor probes, the backoff
  // horizon while monitoring is suspended, and when the probe outage
  // began (-1 = not in one).
  FaultListener listener_;
  std::size_t probe_failures_ = 0;
  double monitor_backoff_until_ = 0.0;
  double probe_outage_since_ = -1.0;

  int monitor_probes_ = 0;
  int refinement_probes_ = 0;
  int trainings_ = 0;
};

}  // namespace mmr::core
