#include "core/multi_user.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "array/pattern.h"
#include "common/error.h"

namespace mmr::core {
namespace {

// Complex channel of user u projected through weights w:
// h_u(w) = sqrt(ref_power) * sum_k ratio_k * AF(w, angle_k).
cplx projected_channel(const array::Ula& ula, const UserChannel& user,
                       const CVec& weights) {
  cplx acc{};
  for (std::size_t k = 0; k < user.path_angles_rad.size(); ++k) {
    acc += user.ratios[k] *
           array::array_factor(ula, weights, user.path_angles_rad[k]);
  }
  return acc * std::sqrt(user.reference_power);
}

MultiBeam beam_for(const array::Ula& ula, const UserChannel& user,
                   const std::vector<std::size_t>& paths) {
  MMR_EXPECTS(!paths.empty());
  std::vector<double> angles;
  std::vector<cplx> ratios;
  for (std::size_t idx : paths) {
    angles.push_back(user.path_angles_rad[idx]);
    ratios.push_back(user.ratios[idx]);
  }
  // Re-reference to the first assigned path so coefficients stay sane
  // when the strongest path was excluded.
  const cplx base = ratios.front();
  MMR_EXPECTS(std::abs(base) > 0.0);
  for (cplx& r : ratios) r /= base;
  return synthesize_multibeam(ula, constructive_components(angles, ratios));
}

}  // namespace

std::vector<UserPlan> plan_multi_user(const array::Ula& ula,
                                      const std::vector<UserChannel>& users,
                                      const MultiUserConfig& config) {
  MMR_EXPECTS(!users.empty());
  // Serve stronger users first (they have the most to lose).
  std::vector<std::size_t> order(users.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return users[a].reference_power > users[b].reference_power;
  });

  std::vector<double> claimed_angles;
  std::vector<UserPlan> plans(users.size());
  for (std::size_t u : order) {
    const UserChannel& user = users[u];
    MMR_EXPECTS(user.path_angles_rad.size() == user.ratios.size());
    MMR_EXPECTS(!user.path_angles_rad.empty());

    // Path order by |ratio| (strongest first; index 0 has ratio 1).
    std::vector<std::size_t> path_order(user.path_angles_rad.size());
    std::iota(path_order.begin(), path_order.end(), std::size_t{0});
    std::sort(path_order.begin(), path_order.end(),
              [&](std::size_t a, std::size_t b) {
                return std::abs(user.ratios[a]) > std::abs(user.ratios[b]);
              });

    std::vector<std::size_t> assigned;
    for (std::size_t idx : path_order) {
      if (assigned.size() >= config.max_beams_per_user) break;
      const double angle = user.path_angles_rad[idx];
      const bool clear = std::none_of(
          claimed_angles.begin(), claimed_angles.end(), [&](double a) {
            return std::abs(a - angle) < config.min_separation_rad;
          });
      // A user always keeps its strongest path: a user with zero beams
      // has no link, which is worse than some interference.
      if (clear || assigned.empty()) assigned.push_back(idx);
    }
    for (std::size_t idx : assigned) {
      claimed_angles.push_back(user.path_angles_rad[idx]);
    }
    plans[u].assigned_paths = assigned;
    plans[u].beam = beam_for(ula, user, assigned);
  }
  return plans;
}

std::vector<UserPlan> plan_naive(const array::Ula& ula,
                                 const std::vector<UserChannel>& users,
                                 std::size_t max_beams_per_user) {
  std::vector<UserPlan> plans(users.size());
  for (std::size_t u = 0; u < users.size(); ++u) {
    const std::size_t n =
        std::min(max_beams_per_user, users[u].path_angles_rad.size());
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    plans[u].assigned_paths = all;
    plans[u].beam = beam_for(ula, users[u], all);
  }
  return plans;
}

double user_sinr(const array::Ula& ula, const std::vector<UserChannel>& users,
                 const std::vector<UserPlan>& plans, std::size_t user,
                 double noise_power) {
  MMR_EXPECTS(user < users.size());
  MMR_EXPECTS(plans.size() == users.size());
  MMR_EXPECTS(noise_power > 0.0);
  const double signal =
      std::norm(projected_channel(ula, users[user], plans[user].beam.weights));
  double interference = 0.0;
  for (std::size_t other = 0; other < users.size(); ++other) {
    if (other == user) continue;
    interference += std::norm(
        projected_channel(ula, users[user], plans[other].beam.weights));
  }
  return signal / (interference + noise_power);
}

}  // namespace mmr::core
