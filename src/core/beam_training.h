// Beam training: the SSB-based sweep that discovers viable path directions
// (paper Section 2 / Fig. 2). mmReliable is agnostic to the sweep
// algorithm; we provide the exhaustive codebook scan (what 5G NR does) and
// extract the top-K angularly-separated peaks as multi-beam candidates.
#pragma once

#include <vector>

#include "array/codebook.h"
#include "common/types.h"
#include "core/probing.h"

namespace mmr::core {

/// One discovered path direction.
struct TrainedBeam {
  double angle_rad = 0.0;
  double mean_power = 0.0;  ///< mean |H|^2 across subcarriers
  RVec subcarrier_power;    ///< per-subcarrier |H(f)|^2 (wideband probing)
};

struct TrainingResult {
  std::vector<TrainedBeam> beams;  ///< descending power, beams[0] strongest
  int probes_used = 0;
  /// Full scan profile: power for every codebook direction (BeamSpy-style
  /// spatial profile; also Fig. 4b's heatmap rows).
  RVec scan_power;

  std::vector<double> angles() const;
  std::vector<RVec> powers() const;
};

struct TrainingConfig {
  /// Number of strongest directions to keep (paper: 2-3 viable beams).
  std::size_t top_k = 3;
  /// Minimum angular separation between reported beams [rad]; peaks closer
  /// than this are the same lobe.
  double min_separation_rad = 0.12;
  /// Drop candidates weaker than this many dB below the strongest. The
  /// default sits just under the -13.2 dB first sidelobe of a uniform
  /// array, so sidelobe "ghost peaks" of the strongest path are rejected.
  double max_rel_power_db = 12.0;
};

/// Exhaustive sweep over the codebook: one probe per direction.
TrainingResult exhaustive_training(const array::Codebook& codebook,
                                   const ProbeFn& probe,
                                   const TrainingConfig& config = {});

/// Extract top-K separated peaks from a scan profile (exposed for reuse
/// by BeamSpy and the heatmap benches). When `codebook` is non-null,
/// candidates whose measured power is explainable as SIDELOBE leakage of
/// an already-picked stronger beam are rejected (ghost suppression): the
/// expected leakage is the candidate beam's pattern evaluated at the
/// stronger peak's angle.
std::vector<std::size_t> top_k_peaks(const RVec& scan_power,
                                     const RVec& scan_angles_rad,
                                     const TrainingConfig& config,
                                     const array::Codebook* codebook = nullptr);

}  // namespace mmr::core
