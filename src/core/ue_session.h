// Directional-UE link session (paper Section 4.4).
//
// When the link budget needs gain at BOTH ends (long outdoor links), the
// UE beamforms too, and user motion misaligns both sides at once. This
// session manages the pair of multi-beams jointly:
//   * joint training: gNB sweep under a wide UE beam, then a UE sweep per
//     gNB beam -- which also ASSOCIATES each gNB beam with its UE partner
//     (the ToF-based association of core/ue.h is exposed separately);
//   * monitoring: per-beam powers via superres on the joint CIR;
//   * classification: a RIGID UE rotation slides every arrival off its UE
//     beam by the same angle, so near-equal per-beam drops indicate
//     rotation; unequal drops indicate translation (paper Fig. 12);
//   * realignment: rotation turns only the UE beams; translation turns
//     gNB and UE beams by the same magnitude in opposite senses, with the
//     sign resolved by probing (one candidate set per sign).
#pragma once

#include <functional>
#include <vector>

#include "array/geometry.h"
#include "core/multibeam.h"
#include "core/superres.h"
#include "core/tracking.h"
#include "core/ue.h"

namespace mmr::core {

struct UeSessionConfig {
  array::Ula gnb_ula{8, 0.5};
  array::Ula ue_ula{4, 0.5};
  double bandwidth_hz = 400.0e6;
  std::size_t cir_taps = 24;
  std::size_t gnb_codebook_size = 48;
  std::size_t ue_codebook_size = 24;
  std::size_t max_beams = 2;
  double sector_lo_rad = -1.0472;
  double sector_hi_rad = 1.0472;
  /// Per-beam drop below which no action is taken [dB].
  double min_drop_db = 2.0;
  /// Drops within this spread across beams are treated as a rigid UE
  /// rotation [dB].
  double rotation_spread_db = 2.0;
};

/// Probe functions with weights for BOTH ends.
struct JointProbeFns {
  std::function<CVec(const CVec& tx_w, const CVec& rx_w)> csi;
  std::function<CVec(const CVec& tx_w, const CVec& rx_w, std::size_t taps)>
      cir;
};

class DirectionalUeSession {
 public:
  explicit DirectionalUeSession(UeSessionConfig config);

  /// Joint beam training + multi-beam establishment at both ends.
  void train(const JointProbeFns& link);

  /// One maintenance tick: monitor, classify motion, realign.
  void step(double t_s, const JointProbeFns& link);

  const CVec& tx_weights() const { return tx_beam_.weights; }
  const CVec& rx_weights() const { return rx_beam_.weights; }
  std::size_t num_beams() const { return gnb_angles_.size(); }
  const std::vector<double>& gnb_angles() const { return gnb_angles_; }
  const std::vector<double>& ue_angles() const { return ue_angles_; }
  MotionKind last_motion() const { return last_motion_; }
  int probes_used() const { return probes_; }

 private:
  void resynthesize();
  double measure_power(const JointProbeFns& link);
  RVec per_beam_powers(const JointProbeFns& link);

  UeSessionConfig config_;
  std::vector<double> gnb_angles_;
  std::vector<double> ue_angles_;
  RVec nominal_delays_;
  RVec reference_power_db_;
  MultiBeam tx_beam_;
  MultiBeam rx_beam_;
  MotionKind last_motion_ = MotionKind::kNone;
  int probes_ = 0;
  bool trained_ = false;
};

}  // namespace mmr::core
