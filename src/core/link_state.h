// Terragraph-style per-link state machine (SNIPPETS.md snippet 1; the
// 802.11ay mesh heritage the paper positions itself against).
//
// Every managed mmWave link lives in one of four states:
//
//                    acquire            success
//        LinkDown ------------> Acquisition ------> LinkUp
//            ^                      |                 |  ^
//            |            failure / |      error      |  | recovered
//            |              timeout |      burst      v  |
//            +----------------------+             LinkUnstable
//            ^                                        |
//            +---------- recovery timeout ------------+
//
// Recovery actions (beam refinement, beam switching) happen INSIDE
// LinkUnstable and are the controller's business; the machine only
// tracks which phase the link is in, enforces dwell-time hysteresis
// (a just-established link ignores error bursts for min_up_dwell_s so a
// single bad probe cannot flap it), and imposes deadlines (an unstable
// link that fails to recover within max_unstable_s, or an acquisition
// that overruns max_acquisition_s, is torn down to LinkDown).
//
// The transition table is a pure function so the test tier can assert
// every (state, event) pair exhaustively; illegal pairs self-loop --
// no event sequence, fuzzed or otherwise, can reach an undefined state.
#pragma once

#include <cstddef>
#include <optional>

namespace mmr::core {

enum class LinkState {
  kDown,         ///< no beam; nothing scheduled on the link
  kAcquisition,  ///< initial access / full retraining in flight
  kUp,           ///< serving traffic on the trained beam(s)
  kUnstable,     ///< error burst seen; refinement/switching in progress
};

inline constexpr std::size_t kNumLinkStates = 4;

/// Stable lower_snake names for logs and JSON.
const char* to_string(LinkState state);

enum class LinkEvent {
  kAcquire,             ///< begin initial access or reacquisition
  kAcquisitionSuccess,  ///< training produced a serving beam
  kAcquisitionFailure,  ///< training failed or overran its deadline
  kErrorBurst,          ///< burst of decode errors / probe power collapse
  kRecovered,           ///< refinement or switching restored the link
  kRecoveryTimeout,     ///< unstable too long; tear down
  kLinkLost,            ///< hard teardown (handover, radio reset)
};

inline constexpr std::size_t kNumLinkEvents = 7;

const char* to_string(LinkEvent event);

/// The pure transition table. Illegal (state, event) pairs return the
/// input state unchanged (self-loop) so the machine is total: no event
/// sequence can escape the four legal states.
LinkState transition(LinkState state, LinkEvent event);

/// True when `event` is meaningful in `state` (i.e. transition() moves,
/// or the pair is an explicit documented self-loop like an error burst
/// while already unstable).
bool transition_is_legal(LinkState state, LinkEvent event);

struct LinkStateConfig {
  /// Hysteresis: error bursts within this dwell of entering LinkUp are
  /// suppressed, so one bad probe right after training cannot flap the
  /// link back into recovery.
  double min_up_dwell_s = 10.0e-3;
  /// Deadline for recovery: LinkUnstable longer than this tears down to
  /// LinkDown (kRecoveryTimeout) on the next poll().
  double max_unstable_s = 25.0e-3;
  /// Deadline for acquisition: overrunning it fails to LinkDown.
  double max_acquisition_s = 100.0e-3;

  /// MMR_EXPECTS: all fields finite and non-negative.
  void validate() const;
};

/// Time-aware wrapper over transition(): dwell tracking, hysteresis,
/// deadline polling, and per-state time accounting (the availability
/// ledger the network layer reports from). Time must be non-decreasing
/// across apply()/poll() calls.
class LinkStateMachine {
 public:
  explicit LinkStateMachine(LinkStateConfig config = {}, double t0_s = 0.0);

  LinkState state() const { return state_; }
  /// Time the current state was entered.
  double entered_at() const { return entered_at_; }
  /// Time spent in the current state as of t_s.
  double dwell_s(double t_s) const { return t_s - entered_at_; }

  /// Apply an external event at time t_s. Returns true when the state
  /// changed. Error bursts inside the up-dwell hysteresis window are
  /// suppressed; illegal events self-loop (no change, returns false).
  bool apply(double t_s, LinkEvent event);

  /// Drive the deadline transitions (call once per tick, before reading
  /// state()): LinkUnstable past max_unstable_s applies kRecoveryTimeout,
  /// LinkAcquisition past max_acquisition_s applies kAcquisitionFailure.
  /// Returns the event applied, if any.
  std::optional<LinkEvent> poll(double t_s);

  /// Cumulative time spent in `state` (updated by every apply/poll).
  double time_in(LinkState state) const;
  /// State changes so far (self-loops and suppressed bursts excluded).
  std::size_t transitions() const { return transitions_; }
  const LinkStateConfig& config() const { return config_; }

 private:
  void advance_clock(double t_s);

  LinkStateConfig config_;
  LinkState state_ = LinkState::kDown;
  double entered_at_ = 0.0;
  double last_t_ = 0.0;
  double time_in_[kNumLinkStates] = {0.0, 0.0, 0.0, 0.0};
  std::size_t transitions_ = 0;
};

}  // namespace mmr::core
