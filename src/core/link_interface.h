// The narrow waist between beam-management algorithms and the world.
//
// On hardware these calls would be CSI-RS/SSB transmissions followed by a
// UE channel report; in this reproduction the simulation harness binds
// them to the channel model + impaired estimator. Algorithms never see
// ground truth through this interface.
#pragma once

#include <functional>

#include "common/types.h"

namespace mmr::core {

struct LinkProbeInterface {
  /// Transmit a reference signal with the given TX weights; returns the
  /// UE's per-subcarrier CSI estimate (noisy, CFO/SFO-impaired).
  std::function<CVec(const CVec& tx_weights)> csi;

  /// Same, but reported as a sampled CIR with `num_taps` taps at the
  /// Nyquist period of the configured bandwidth.
  std::function<CVec(const CVec& tx_weights, std::size_t num_taps)> cir;
};

}  // namespace mmr::core
