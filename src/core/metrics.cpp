#include "core/metrics.h"

#include "common/error.h"

namespace mmr::core {

LinkSummary summarize_link(std::span<const LinkSample> samples,
                           double outage_snr_db, double bandwidth_hz) {
  MMR_EXPECTS(!samples.empty());
  MMR_EXPECTS(bandwidth_hz > 0.0);
  LinkSummary s;
  s.num_samples = samples.size();
  std::size_t up = 0;
  double tput_acc = 0.0;
  for (const LinkSample& sample : samples) {
    const bool usable = sample.available && sample.snr_db >= outage_snr_db;
    if (usable) ++up;
    tput_acc += sample.available ? sample.throughput_bps : 0.0;
  }
  const double n = static_cast<double>(samples.size());
  s.reliability = static_cast<double>(up) / n;
  s.mean_throughput_bps = tput_acc / n;
  s.mean_spectral_efficiency = s.mean_throughput_bps / bandwidth_hz;
  s.throughput_reliability_product = s.reliability * s.mean_throughput_bps;
  return s;
}

}  // namespace mmr::core
