#include "core/superres.h"

#include <cmath>

#include "common/error.h"
#include "dsp/linalg.h"
#include "dsp/sinc.h"

namespace mmr::core {
namespace {

dsp::CMatrix sinc_dictionary(std::size_t num_taps, double ts,
                             double bandwidth_hz, const RVec& delays_s) {
  dsp::CMatrix s(num_taps, delays_s.size());
  for (std::size_t col = 0; col < delays_s.size(); ++col) {
    for (std::size_t n = 0; n < num_taps; ++n) {
      s(n, col) =
          cplx{dsp::sampled_sinc_tap(n, ts, bandwidth_hz, delays_s[col]), 0.0};
    }
  }
  return s;
}

double fit_residual(const CVec& cir, const dsp::CMatrix& s, const CVec& alpha) {
  const CVec model = s * alpha;
  double acc = 0.0;
  for (std::size_t n = 0; n < cir.size(); ++n) acc += std::norm(cir[n] - model[n]);
  return std::sqrt(acc);
}

struct Solve {
  CVec alpha;
  double residual;
};

Solve solve_for_delays(const CVec& cir, double ts, double bandwidth_hz,
                       const RVec& delays, double lambda) {
  const dsp::CMatrix s = sinc_dictionary(cir.size(), ts, bandwidth_hz, delays);
  CVec alpha = dsp::ridge_least_squares(s, cir, lambda);
  const double residual = fit_residual(cir, s, alpha);
  return {std::move(alpha), residual};
}

}  // namespace

RVec SuperresResult::powers() const {
  RVec p(alphas.size());
  for (std::size_t k = 0; k < alphas.size(); ++k) p[k] = std::norm(alphas[k]);
  return p;
}

SuperresResult superres_per_beam(const CVec& cir, const RVec& nominal_delays_s,
                                 double ts, double bandwidth_hz,
                                 const SuperresConfig& config) {
  MMR_EXPECTS(!cir.empty());
  MMR_EXPECTS(!nominal_delays_s.empty());
  MMR_EXPECTS(cir.size() >= nominal_delays_s.size());
  MMR_EXPECTS(config.lambda > 0.0);
  MMR_EXPECTS(config.common_shift_steps >= 1);
  MMR_EXPECTS(config.relative_steps >= 1);

  // Corrupted feedback words (NaN/Inf taps) would poison the normal
  // equations and surface as non-finite per-beam amplitudes; zero them so
  // the fit runs on the surviving taps. A clean CIR takes the fast path
  // untouched.
  CVec sanitized;
  const CVec* taps = &cir;
  for (std::size_t n = 0; n < cir.size(); ++n) {
    if (std::isfinite(cir[n].real()) && std::isfinite(cir[n].imag())) continue;
    if (sanitized.empty()) sanitized = cir;
    sanitized[n] = cplx{};
    taps = &sanitized;
  }
  const CVec& h = *taps;

  auto grid_offset = [](std::size_t idx, std::size_t steps, double span) {
    if (steps == 1) return 0.0;
    return (static_cast<double>(idx) / static_cast<double>(steps - 1) - 0.5) *
           2.0 * span;
  };

  // Stage 1: common shift, relative structure fixed. Coarse grid over the
  // full span, then a fine grid around the best coarse shift.
  RVec delays = nominal_delays_s;
  Solve best = solve_for_delays(h, ts, bandwidth_hz, delays, config.lambda);
  double best_shift = 0.0;
  auto try_shift = [&](double shift) {
    RVec trial(nominal_delays_s.size());
    for (std::size_t k = 0; k < trial.size(); ++k) {
      trial[k] = nominal_delays_s[k] + shift;
    }
    Solve attempt =
        solve_for_delays(h, ts, bandwidth_hz, trial, config.lambda);
    if (attempt.residual < best.residual) {
      best = std::move(attempt);
      delays = std::move(trial);
      best_shift = shift;
    }
  };
  if (config.common_shift_steps > 1 && config.common_shift_span_s > 0.0) {
    for (std::size_t si = 0; si < config.common_shift_steps; ++si) {
      const double shift = grid_offset(si, config.common_shift_steps,
                                       config.common_shift_span_s);
      if (shift != 0.0) try_shift(shift);
    }
    if (config.common_shift_fine_steps > 1) {
      const double coarse_step =
          2.0 * config.common_shift_span_s /
          static_cast<double>(config.common_shift_steps - 1);
      const double center = best_shift;
      for (std::size_t si = 0; si < config.common_shift_fine_steps; ++si) {
        const double shift =
            center +
            grid_offset(si, config.common_shift_fine_steps, coarse_step / 2.0);
        if (shift != center) try_shift(shift);
      }
    }
  }

  // Stage 2: small per-path refinement (relative-ToF drift).
  if (config.relative_steps > 1 && config.relative_span_s > 0.0) {
    for (std::size_t round = 0; round < config.refinement_rounds; ++round) {
      for (std::size_t k = 0; k < delays.size(); ++k) {
        const double center = delays[k];
        for (std::size_t si = 0; si < config.relative_steps; ++si) {
          const double off =
              grid_offset(si, config.relative_steps, config.relative_span_s);
          if (off == 0.0) continue;
          RVec trial = delays;
          trial[k] = center + off;
          Solve attempt =
              solve_for_delays(h, ts, bandwidth_hz, trial, config.lambda);
          if (attempt.residual < best.residual) {
            best = std::move(attempt);
            delays = std::move(trial);
          }
        }
      }
    }
  }

  SuperresResult result;
  result.alphas = std::move(best.alpha);
  result.delays_s = std::move(delays);
  result.residual = best.residual;
  // Last line of defense: a degenerate dictionary can still leak NaN out
  // of the solver; a non-finite "amplitude" is a claim of no energy, not
  // infinite energy, so clamp to zero rather than letting callers track
  // garbage powers.
  for (cplx& a : result.alphas) {
    if (!std::isfinite(a.real()) || !std::isfinite(a.imag())) a = cplx{};
  }
  if (!std::isfinite(result.residual)) result.residual = 0.0;
  return result;
}

CVec reconstruct_cir(const SuperresResult& fit, std::size_t num_taps,
                     double ts, double bandwidth_hz) {
  const dsp::CMatrix s =
      sinc_dictionary(num_taps, ts, bandwidth_hz, fit.delays_s);
  return s * fit.alphas;
}

double estimate_peak_delay(const CVec& cir, double ts) {
  MMR_EXPECTS(!cir.empty());
  MMR_EXPECTS(ts > 0.0);
  // Zero corrupted taps up front: they must neither win the coarse peak
  // search nor leak into the band-limited interpolation below (a single
  // Inf tap would otherwise make every interpolated magnitude Inf).
  CVec sanitized;
  const CVec* taps = &cir;
  for (std::size_t n = 0; n < cir.size(); ++n) {
    if (std::isfinite(cir[n].real()) && std::isfinite(cir[n].imag())) continue;
    if (sanitized.empty()) sanitized = cir;
    sanitized[n] = cplx{};
    taps = &sanitized;
  }
  const CVec& h = *taps;
  std::size_t peak = 0;
  double best = 0.0;
  for (std::size_t n = 0; n < h.size(); ++n) {
    const double mag = std::abs(h[n]);
    if (mag > best) {
      best = mag;
      peak = n;
    }
  }
  // Sub-tap refinement by maximizing the band-limited interpolation of
  // the CIR around the peak tap (a parabola over |taps| is biased because
  // the sinc's side lobes are not parabolic).
  const double bandwidth = 1.0 / ts;
  double best_tau = static_cast<double>(peak) * ts;
  double best_mag = best;
  const double lo = (static_cast<double>(peak) - 0.6) * ts;
  const double hi = (static_cast<double>(peak) + 0.6) * ts;
  for (int i = 0; i <= 48; ++i) {
    const double tau = lo + (hi - lo) * static_cast<double>(i) / 48.0;
    if (tau < 0.0) continue;
    const double mag = std::abs(dsp::sinc_interpolate(h, ts, bandwidth, tau));
    if (mag > best_mag) {
      best_mag = mag;
      best_tau = tau;
    }
  }
  return best_tau;
}

}  // namespace mmr::core
