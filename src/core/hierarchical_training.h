// Hierarchical (bisection) beam training: the fast-alignment family the
// paper's reactive baseline builds on (Hassanieh et al., SIGCOMM'18).
//
// Instead of sweeping every narrow beam, probe two WIDE beams covering
// the two halves of the sector (synthesized from a subaperture so the
// beamwidth matches the half), descend into the stronger half, and repeat
// until the window is one full-aperture beamwidth wide. Probe count is
// 2 log2(sector/beamwidth) ~ 2 log2(N) -- the cost model behind
// phy::fast_training_airtime_s and Fig. 18d.
#pragma once

#include "array/geometry.h"
#include "core/probing.h"

namespace mmr::core {

struct HierarchicalResult {
  double angle_rad = 0.0;    ///< estimated strongest-path direction
  double mean_power = 0.0;   ///< measured power of the winning final beam
  int probes_used = 0;
  int levels = 0;
};

struct HierarchicalConfig {
  double sector_lo_rad = -1.0472;  ///< -60 deg
  double sector_hi_rad = 1.0472;   ///< +60 deg
  /// Stop when the window is this factor of the full-aperture HPBW.
  double stop_beamwidth_factor = 1.0;
};

/// Wide probe beam covering [lo, hi]: a beam from the smallest subaperture
/// whose HPBW spans the window, steered at the window center, zero-padded
/// to the full array and TRP-normalized.
CVec wide_probe_weights(const array::Ula& ula, double lo_rad, double hi_rad);

HierarchicalResult hierarchical_training(const array::Ula& ula,
                                         const ProbeFn& probe,
                                         const HierarchicalConfig& config = {});

}  // namespace mmr::core
