// Proactive per-beam tracking (paper Section 4.1-4.2).
//
// Each beam's power (separated from the superposition by super-resolution)
// is monitored over time. A FAST drop is classified as blockage (measured
// onset: ~10 dB within 10 OFDM symbols); a GRADUAL decline is mobility
// sliding the user off the beam pattern, and the angular offset is
// recovered by inverting the known array pattern (Eqs. 18-20). The
// pattern is symmetric, so inversion yields +/- candidates; the caller
// disambiguates with one probe.
#pragma once

#include <cstddef>
#include <deque>

#include "common/types.h"

namespace mmr::core {

struct TrackerConfig {
  /// Forgetting factor of the power EWMA (Section 6.1).
  double forgetting_factor = 0.8;
  /// Drop below the reference power treated as blockage when it happens
  /// faster than blockage_window_s [dB].
  double blockage_drop_db = 10.0;
  /// Window within which a blockage_drop_db fall means "blocked" [s].
  double blockage_window_s = 6.0e-3;
  /// Consecutive samples that must show the drop before declaring
  /// blockage: single-sample spikes are estimation noise, a body in the
  /// path persists.
  std::size_t blockage_persistence = 2;
  /// Smoothed drop below which no realignment is attempted -- the noise
  /// floor of the per-beam power estimate [dB].
  double min_drop_for_realign_db = 3.0;
  /// A blocked beam whose power climbs back within this margin of the
  /// reference is considered recovered [dB].
  double recover_margin_db = 4.0;
  /// History length for the quadratic smoothing fit (Section 6.1).
  std::size_t fit_history = 8;
  /// Misalignment below this is noise; don't bother realigning [rad].
  double min_realign_rad = 0.008;
  /// Cap on a single realignment step [rad]. Large inverted offsets come
  /// from noisy drops (the pattern is steep near the null) and open-loop
  /// jumps that size walk beams off their paths; small capped steps at
  /// the refinement cadence still track fast motion (4 deg / 20 ms =
  /// 200 deg/s).
  double max_realign_rad = 0.07;
};

/// Invert the N-element ULA pattern: the |angular offset| [rad] that
/// produces a relative power drop of `drop_db` >= 0 within the main lobe.
/// Saturates at the -3 dB... first-null edge for very large drops.
double invert_pattern_offset(std::size_t num_elements,
                             double spacing_wavelengths, double drop_db);

enum class BeamState {
  kTracking,  ///< healthy; mobility compensation active
  kBlocked,   ///< fast drop detected; power reallocated away
};

class PerBeamTracker {
 public:
  PerBeamTracker(const TrackerConfig& config, std::size_t num_elements,
                 double spacing_wavelengths);

  /// Set/refresh the aligned reference power (call after (re)alignment).
  void reset_reference(double power_db);

  struct Update {
    BeamState state = BeamState::kTracking;
    /// |angular misalignment| estimate [rad]; 0 when below threshold or
    /// blocked. Sign is ambiguous (pattern symmetry).
    double misalign_rad = 0.0;
    /// Smoothed drop relative to reference [dB] (positive = weaker).
    double drop_db = 0.0;
  };

  /// Feed one per-beam power measurement.
  Update update(double t_s, double power_db);

  BeamState state() const { return state_; }
  double reference_power_db() const { return reference_db_; }
  bool has_reference() const { return has_reference_; }

 private:
  double smoothed_power_db(double t_s) const;

  TrackerConfig config_;
  std::size_t num_elements_;
  double spacing_;
  double reference_db_ = 0.0;
  bool has_reference_ = false;
  double ewma_db_ = 0.0;
  bool ewma_primed_ = false;
  BeamState state_ = BeamState::kTracking;
  struct Sample {
    double t_s;
    double power_db;
  };
  std::deque<Sample> history_;
  std::size_t consecutive_drops_ = 0;
};

}  // namespace mmr::core
