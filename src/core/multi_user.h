// Multi-user multi-beam coexistence (paper Section 8: "many multi-beams
// can be created, one from each RF chain ... interference-aware spatial
// multiplexing of beams in different directions").
//
// Each RF chain serves one user with its own constructive multi-beam.
// Beams pointed near another user's directions leak signal into that
// user (the multi-beam's lobes ARE the interference footprint), so the
// planner assigns each user the subset of its viable paths that stays
// angularly clear of the other users' assigned paths, greedily favoring
// stronger users' stronger paths.
#pragma once

#include <cstddef>
#include <vector>

#include "array/geometry.h"
#include "core/multibeam.h"

namespace mmr::core {

/// One user's channel as seen from the gNB: viable path directions and
/// their relative complex channels (from training + two-probe estimation).
struct UserChannel {
  std::vector<double> path_angles_rad;
  std::vector<cplx> ratios;  ///< h_k/h_0 per path; ratios[0] == 1
  /// Absolute power of the reference path (linear channel gain |h_0|^2).
  double reference_power = 1.0;
};

struct UserPlan {
  std::vector<std::size_t> assigned_paths;  ///< indices into the channel
  MultiBeam beam;                           ///< synthesized multi-beam
};

struct MultiUserConfig {
  /// Minimum angular clearance between one user's beam and another
  /// user's assigned path [rad].
  double min_separation_rad = 0.17;  // ~10 deg
  /// Maximum beams per user.
  std::size_t max_beams_per_user = 2;
};

/// Greedy interference-aware planning: users in descending reference
/// power; each claims up to max_beams_per_user of its paths that are
/// clear of every previously claimed path. Every user keeps at least its
/// strongest path (otherwise it would have no link at all).
std::vector<UserPlan> plan_multi_user(const array::Ula& ula,
                                      const std::vector<UserChannel>& users,
                                      const MultiUserConfig& config = {});

/// Naive planning: every user uses ALL its paths, ignoring the others.
std::vector<UserPlan> plan_naive(const array::Ula& ula,
                                 const std::vector<UserChannel>& users,
                                 std::size_t max_beams_per_user = 2);

/// SINR of user j under a plan: signal from its own chain vs leakage from
/// every other chain evaluated through user j's actual channel, plus
/// noise (linear, in the same units as reference_power).
double user_sinr(const array::Ula& ula, const std::vector<UserChannel>& users,
                 const std::vector<UserPlan>& plans, std::size_t user,
                 double noise_power);

}  // namespace mmr::core
