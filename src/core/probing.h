// Two-probe estimation of per-beam relative channels from magnitude-only
// measurements (paper Section 3.3, Eqs. 11-14).
//
// CFO/SFO make absolute channel phase unusable between probes, so the
// relative channel h_k / h_0 is recovered from four POWER measurements:
// the two single-beam powers p_0 = |h_0|^2, p_k = |h_k|^2 (already known
// from beam training) plus two 2-beam probes with the k-th beam phased at
// 0 and at pi/2. The TRP normalization the hardware applies to each probe
// pattern is undone using the known synthesis norm, which the paper's
// Eq. 11 leaves implicit.
#pragma once

#include <functional>
#include <vector>

#include "array/geometry.h"
#include "common/types.h"

namespace mmr::core {

/// A channel probe: transmit a reference signal through `weights` and
/// return the (noisy, CFO/SFO-impaired) per-subcarrier CSI estimate.
using ProbeFn = std::function<CVec(const CVec& weights)>;

/// Counts probes spent, split by which phase of the protocol pays them.
struct ProbeBudget {
  int training_probes = 0;   ///< single-beam probes (from beam training)
  int refinement_probes = 0; ///< extra 2-beam probes (CSI-RS)
  int total() const { return training_probes + refinement_probes; }
};

/// Narrowband result for one beam pair: the complex ratio h_k/h_0.
struct RelativeChannel {
  cplx ratio{1.0, 0.0};
  /// False when the probes behind this estimate were unusable (empty or
  /// non-finite reports, zero reference energy); ratio is then the
  /// neutral {1, 0} and callers should keep their previous estimate.
  bool valid = true;
  double delta() const;      ///< relative amplitude
  double sigma_rad() const;  ///< relative phase
};

/// Estimate h_k/h_0 for every k in [1, angles.size()) using 2 extra probes
/// per beam (Eqs. 11-12). `trained_powers`, if provided, supplies the
/// single-beam powers p_k from the beam-training phase; otherwise they are
/// measured here (and accounted as training probes).
///
/// Wideband handling (Eqs. 13-14): the ratio is computed per subcarrier
/// and combined with the closed-form inner-product estimator
/// <h_0(f), h_k(f)> / ||h_0(f)||^2, which is exactly the narrowband ratio
/// when the channel is flat.
///
/// Degraded probes (empty reports, non-finite powers, size mismatches,
/// zero reference energy) do not throw: the affected beam's estimate
/// comes back with valid == false and a neutral ratio.
std::vector<RelativeChannel> estimate_relative_channels(
    const array::Ula& ula, const std::vector<double>& beam_angles_rad,
    const ProbeFn& probe, const std::vector<RVec>* trained_powers = nullptr,
    ProbeBudget* budget = nullptr,
    std::vector<RVec>* measured_single_powers = nullptr);

/// Per-subcarrier power |H(k)|^2 of one probe.
RVec probe_powers(const CVec& csi);

/// Mean |H|^2 over the FINITE taps of a probe report. Returns false and
/// leaves `out` untouched when the report is empty or has no finite taps
/// (a dropped or fully corrupted probe); callers treat that as a probe
/// failure instead of propagating NaN. When every tap is finite the
/// result is bit-identical to the plain sum/size mean.
bool mean_probe_power(const CVec& csi, double& out);

/// Pure math of Eq. 12 for one subcarrier: recover h_k/h_0 from the four
/// powers (p0, pk, p_sum0, p_sum90). Exposed for unit testing.
cplx ratio_from_powers(double p0, double pk, double p_sum0, double p_sum90);

}  // namespace mmr::core
