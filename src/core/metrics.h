// Link quality metrics (paper Section 3.1, Eq. 1 and the
// throughput-reliability product of Section 6.2 / Fig. 18c).
#pragma once

#include <span>
#include <vector>

namespace mmr::core {

/// One evaluation instant of a controlled link.
struct LinkSample {
  double t_s = 0.0;
  double snr_db = 0.0;
  double throughput_bps = 0.0;
  /// False while the link is consumed by (re)training and cannot carry
  /// data -- which counts against reliability (Section 3.1).
  bool available = true;
};

struct LinkSummary {
  /// Fraction of time the link was available AND above the outage SNR.
  double reliability = 0.0;
  /// Mean throughput over ALL samples (zeros during outage/training).
  double mean_throughput_bps = 0.0;
  /// Mean spectral efficiency [bit/s/Hz] given the bandwidth used.
  double mean_spectral_efficiency = 0.0;
  /// reliability x mean throughput: the paper's combined figure of merit.
  double throughput_reliability_product = 0.0;
  std::size_t num_samples = 0;
};

LinkSummary summarize_link(std::span<const LinkSample> samples,
                           double outage_snr_db, double bandwidth_hz);

}  // namespace mmr::core
