// Super-resolution per-beam channel extraction (paper Section 4.3,
// Eqs. 21-23).
//
// With a single RF chain the receiver only ever sees the SUM of all beams.
// The beams are separated in the delay domain instead: each contributes a
// sinc pulse at its path's ToF to the sampled CIR. Because the relative
// ToFs are known from training and drift slowly, the solver fits only K
// complex amplitudes (ridge-regularized least squares on a K-column sinc
// dictionary) and refines the delays over a small local search -- which is
// how it resolves paths closer than the 1/B Fourier limit (2.5 ns at
// 400 MHz).
#pragma once

#include <cstddef>

#include "common/types.h"

namespace mmr::core {

struct SuperresConfig {
  /// L2 (ridge) regularization weight of Eq. 23.
  double lambda = 1e-3;
  /// COMMON timing-shift search (+/- span): absorbs receiver timing
  /// jitter while PRESERVING the relative-ToF structure from training --
  /// the paper's key prior ("shift h_CIR so the strongest path is at zero
  /// delay; relative ToF changes slowly"). Searching each delay
  /// independently instead makes closely-spaced (sub-resolution) paths
  /// ambiguous and the per-beam powers unstable.
  double common_shift_span_s = 1.0e-9;
  std::size_t common_shift_steps = 9;
  /// Fine second pass around the best coarse shift (span = one coarse
  /// step). Residual timing mismatch redistributes power between
  /// closely-spaced dictionary columns, so sub-grid accuracy matters.
  std::size_t common_shift_fine_steps = 5;
  /// Small per-path refinement around the shifted delays ("small
  /// variations in relative-ToF", Section 4.3).
  double relative_span_s = 0.15e-9;
  std::size_t relative_steps = 3;
  /// Greedy coordinate-descent rounds of the per-path refinement.
  std::size_t refinement_rounds = 1;
};

struct SuperresResult {
  CVec alphas;          ///< fitted complex per-beam amplitude
  RVec delays_s;        ///< refined per-beam delays
  double residual = 0;  ///< ||cir - S alpha|| at the solution
  RVec powers() const;  ///< |alpha_k|^2
};

/// Fit per-beam amplitudes to a measured CIR. `nominal_delays_s` come from
/// training (relative to the earliest path, which the receiver's timing
/// lock pins to tap 0). `ts` is the CIR sample period (1/B), `bandwidth_hz`
/// the sinc bandwidth.
///
/// Non-finite CIR taps (corrupted feedback) are zeroed before the fit and
/// any non-finite fitted amplitude is clamped to zero, so the returned
/// powers are always finite.
SuperresResult superres_per_beam(const CVec& cir, const RVec& nominal_delays_s,
                                 double ts, double bandwidth_hz,
                                 const SuperresConfig& config = {});

/// Reconstruct the model CIR from a fit (for residual checks and Fig. 11b).
CVec reconstruct_cir(const SuperresResult& fit, std::size_t num_taps,
                     double ts, double bandwidth_hz);

/// Delay of the strongest arrival in a sampled CIR, with sub-tap accuracy
/// from quadratic interpolation of |h[n]| around the peak. Used to seed
/// the superres dictionary with each beam's nominal ToF after training.
double estimate_peak_delay(const CVec& cir, double ts);

}  // namespace mmr::core
