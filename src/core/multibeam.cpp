#include "core/multibeam.h"

#include <cmath>

#include "array/pattern_cache.h"
#include "common/error.h"
#include "dsp/kernels.h"

namespace mmr::core {

MultiBeam synthesize_multibeam(const array::Ula& ula,
                               const std::vector<BeamComponent>& components) {
  MMR_EXPECTS(!components.empty());
  MultiBeam mb;
  mb.components = components;
  mb.weights.assign(ula.num_elements, cplx{});
  // The probing/tracking loops resynthesize multi-beams from the same few
  // trained angles every tick: pull the matched single-beam weights from
  // the shared PatternCache and scale-add them with the batched kernel.
  array::PatternCache& cache = array::PatternCache::instance();
  for (const BeamComponent& c : components) {
    const std::shared_ptr<const CVec> w =
        cache.beam_weights(ula, c.angle_rad);
    dsp::axpy(c.coefficient, w->data(), mb.weights.data(), w->size());
  }
  double norm2 = 0.0;
  for (const cplx& w : mb.weights) norm2 += std::norm(w);
  MMR_EXPECTS(norm2 > 0.0);
  mb.gain_norm = std::sqrt(norm2);
  const double inv = 1.0 / mb.gain_norm;
  for (cplx& w : mb.weights) w *= inv;
  return mb;
}

std::vector<BeamComponent> constructive_components(
    const std::vector<double>& angles_rad, const std::vector<cplx>& ratios) {
  MMR_EXPECTS(angles_rad.size() == ratios.size());
  MMR_EXPECTS(!angles_rad.empty());
  std::vector<BeamComponent> out;
  out.reserve(angles_rad.size());
  for (std::size_t k = 0; k < angles_rad.size(); ++k) {
    BeamComponent c;
    c.angle_rad = angles_rad[k];
    // MRC: coefficient conj(h_k/h_0) = delta_k e^{-j sigma_k} (Eq. 10).
    c.coefficient = std::conj(ratios[k]);
    out.push_back(c);
  }
  return out;
}

double ideal_multibeam_gain(const std::vector<double>& deltas) {
  MMR_EXPECTS(!deltas.empty());
  double gain = 0.0;
  for (double d : deltas) {
    MMR_EXPECTS(d >= 0.0);
    gain += d * d;
  }
  return gain;
}

double two_beam_gain(double delta_true, double sigma_true_rad,
                     double delta_hat, double sigma_hat_rad) {
  MMR_EXPECTS(delta_true >= 0.0);
  MMR_EXPECTS(delta_hat >= 0.0);
  // Received amplitude with coefficient c = d_hat e^{-j s_hat} on the
  // second beam, channel ratio r = d e^{j s}, unit-power normalization
  // 1 + d_hat^2 in the denominator; single beam on path 0 yields 1.
  const cplx c = std::polar(delta_hat, -sigma_hat_rad);
  const cplx r = std::polar(delta_true, sigma_true_rad);
  const double num = std::norm(cplx{1.0, 0.0} + c * r);
  const double den = 1.0 + delta_hat * delta_hat;
  return num / den;
}

}  // namespace mmr::core
