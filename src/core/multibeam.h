// Constructive multi-beam synthesis (paper Section 3.3, Eq. 10 and
// Appendix A).
//
// A multi-beam is a linear sum of single-beam weight vectors, one per
// channel path, with per-beam complex coefficients chosen so the copies
// of the signal arriving over each path add coherently at the receiver.
// TRP is conserved by normalizing the sum to unit norm.
#pragma once

#include <vector>

#include "array/geometry.h"
#include "common/types.h"

namespace mmr::core {

/// One constituent beam of a multi-beam.
struct BeamComponent {
  double angle_rad = 0.0;
  /// Relative complex coefficient: amplitude delta, phase -sigma relative
  /// to the reference beam (coefficient 1). Eq. 10: delta * e^{-j sigma}.
  cplx coefficient{1.0, 0.0};
};

/// Multi-beam synthesis result. `weights` is unit-norm; `gain_norm` is the
/// norm of the un-normalized sum — probing needs it to undo the TRP
/// normalization when relating measured powers to per-path channels.
struct MultiBeam {
  CVec weights;
  double gain_norm = 1.0;
  std::vector<BeamComponent> components;
};

/// Build a multi-beam from per-beam angles and coefficients (Eq. 10
/// generalized to K beams, Appendix A Eq. 29).
MultiBeam synthesize_multibeam(const array::Ula& ula,
                               const std::vector<BeamComponent>& components);

/// Constructive coefficients from estimated relative channels: path k has
/// channel ratio r_k = h_k / h_0 = delta_k e^{j sigma_k}; the maximizing
/// coefficient is conj(r_k) (matched/MRC combining).
std::vector<BeamComponent> constructive_components(
    const std::vector<double>& angles_rad, const std::vector<cplx>& ratios);

/// Theoretical SNR gain (linear) of an ideal K-beam constructive
/// multi-beam over the single strongest beam, for per-path relative
/// amplitudes delta_k (delta_0 = 1): 1 + sum_k delta_k^2 (Eq. 9).
double ideal_multibeam_gain(const std::vector<double>& deltas);

/// SNR gain (linear) of a 2-beam multi-beam with coefficient
/// (delta_hat, sigma_hat) against the TRUE relative channel
/// (delta, sigma), relative to a single beam on the stronger path.
/// Closed form used by the Fig. 14 sensitivity analysis:
///   |1 + d_hat e^{-j s_hat} d e^{j s}|^2 / (1 + d_hat^2).
double two_beam_gain(double delta_true, double sigma_true_rad,
                     double delta_hat, double sigma_hat_rad);

}  // namespace mmr::core
