#include "core/tracking.h"

#include <algorithm>
#include <cmath>

#include "array/pattern.h"
#include "common/error.h"
#include "dsp/polyfit.h"

namespace mmr::core {

double invert_pattern_offset(std::size_t num_elements,
                             double spacing_wavelengths, double drop_db) {
  MMR_EXPECTS(num_elements >= 2);
  MMR_EXPECTS(drop_db >= 0.0);
  if (drop_db == 0.0) return 0.0;
  const double target = std::pow(10.0, -drop_db / 10.0);
  // The pattern is monotone from 1 down to 0 between beam center and the
  // first null; bisect there. Drops beyond the first-null depth saturate.
  const double first_null = std::asin(
      std::min(1.0, 1.0 / (spacing_wavelengths *
                           static_cast<double>(num_elements))));
  double lo = 0.0;
  double hi = first_null * 0.999;
  if (array::ula_relative_gain(num_elements, spacing_wavelengths, hi) >=
      target) {
    return hi;  // saturated: deeper than the main lobe can explain
  }
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (array::ula_relative_gain(num_elements, spacing_wavelengths, mid) >
        target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

PerBeamTracker::PerBeamTracker(const TrackerConfig& config,
                               std::size_t num_elements,
                               double spacing_wavelengths)
    : config_(config), num_elements_(num_elements),
      spacing_(spacing_wavelengths) {
  MMR_EXPECTS(num_elements >= 2);
  MMR_EXPECTS(config.fit_history >= 3);
}

void PerBeamTracker::reset_reference(double power_db) {
  reference_db_ = power_db;
  has_reference_ = true;
  ewma_db_ = power_db;
  ewma_primed_ = true;
  history_.clear();
  state_ = BeamState::kTracking;
}

double PerBeamTracker::smoothed_power_db(double t_s) const {
  // Quadratic fit over the recent history (Section 6.1), evaluated at the
  // window CENTER: endpoint extrapolation would amplify noise ~3x, and
  // half a window of lag is harmless at the realignment cadence.
  if (history_.size() < config_.fit_history) return ewma_db_;
  RVec xs, ys;
  xs.reserve(history_.size());
  ys.reserve(history_.size());
  const double t0 = history_.front().t_s;
  for (const Sample& s : history_) {
    xs.push_back(s.t_s - t0);
    ys.push_back(s.power_db);
  }
  const RVec coeffs = dsp::polyfit(xs, ys, 2);
  return dsp::polyval(coeffs, 0.5 * (t_s - t0));
}

PerBeamTracker::Update PerBeamTracker::update(double t_s, double power_db) {
  MMR_EXPECTS(has_reference_);
  // A non-finite measurement (failed probe, corrupted estimate) must not
  // reach the EWMA or the fit history -- one NaN would poison both
  // permanently. Report the current state unchanged instead.
  if (!std::isfinite(power_db)) {
    Update up;
    up.state = state_;
    return up;
  }
  // EWMA with forgetting factor.
  ewma_db_ = ewma_primed_
                 ? config_.forgetting_factor * ewma_db_ +
                       (1.0 - config_.forgetting_factor) * power_db
                 : power_db;
  ewma_primed_ = true;
  history_.push_back({t_s, power_db});
  while (history_.size() > config_.fit_history) history_.pop_front();

  Update up;

  // Blockage: raw drop of blockage_drop_db or more within the window.
  double recent_max = power_db;
  for (const Sample& s : history_) {
    if (t_s - s.t_s <= config_.blockage_window_s) {
      recent_max = std::max(recent_max, s.power_db);
    }
  }
  const double fast_drop = recent_max - power_db;
  const double ref_drop = reference_db_ - power_db;

  if (state_ == BeamState::kTracking) {
    const bool dropping = fast_drop >= config_.blockage_drop_db ||
                          ref_drop >= config_.blockage_drop_db * 2.0;
    consecutive_drops_ = dropping ? consecutive_drops_ + 1 : 0;
    if (consecutive_drops_ >= config_.blockage_persistence) {
      state_ = BeamState::kBlocked;
      consecutive_drops_ = 0;
    }
  } else {
    if (ref_drop <= config_.recover_margin_db) {
      state_ = BeamState::kTracking;
      ewma_db_ = power_db;
    }
  }

  up.state = state_;
  const double smooth = smoothed_power_db(t_s);
  up.drop_db = reference_db_ - smooth;

  if (state_ == BeamState::kTracking &&
      up.drop_db >= config_.min_drop_for_realign_db) {
    double offset = invert_pattern_offset(num_elements_, spacing_, up.drop_db);
    offset = std::min(offset, config_.max_realign_rad);
    up.misalign_rad = offset >= config_.min_realign_rad ? offset : 0.0;
  }
  return up;
}

}  // namespace mmr::core
