#include "core/beam_training.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "array/pattern.h"
#include "common/error.h"
#include "common/units.h"

namespace mmr::core {

std::vector<double> TrainingResult::angles() const {
  std::vector<double> out;
  out.reserve(beams.size());
  for (const TrainedBeam& b : beams) out.push_back(b.angle_rad);
  return out;
}

std::vector<RVec> TrainingResult::powers() const {
  std::vector<RVec> out;
  out.reserve(beams.size());
  for (const TrainedBeam& b : beams) out.push_back(b.subcarrier_power);
  return out;
}

std::vector<std::size_t> top_k_peaks(const RVec& scan_power,
                                     const RVec& scan_angles_rad,
                                     const TrainingConfig& config,
                                     const array::Codebook* codebook) {
  MMR_EXPECTS(scan_power.size() == scan_angles_rad.size());
  MMR_EXPECTS(!scan_power.empty());
  std::vector<std::size_t> order(scan_power.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scan_power[a] > scan_power[b];
  });
  const double floor =
      scan_power[order.front()] * from_db(-config.max_rel_power_db);

  // Ghost test: could the candidate's measured power be mere sidelobe
  // leakage of a stronger, already-picked direction? Expected leakage is
  // |AF_candidate(stronger angle)|^2 / N; allow 5 dB of margin for
  // constructive leakage + noise.
  auto is_sidelobe_ghost = [&](std::size_t idx,
                               const std::vector<std::size_t>& picked) {
    if (codebook == nullptr) return false;
    const double n = static_cast<double>(codebook->ula().num_elements);
    for (std::size_t p : picked) {
      const double leak =
          array::power_gain(codebook->ula(), codebook->weights(idx),
                            scan_angles_rad[p]) /
          n;
      if (scan_power[idx] < scan_power[p] * leak * from_db(5.0)) {
        return true;
      }
    }
    return false;
  };

  std::vector<std::size_t> picked;
  for (std::size_t idx : order) {
    if (picked.size() >= config.top_k) break;
    if (scan_power[idx] < floor) break;
    const bool too_close = std::any_of(
        picked.begin(), picked.end(), [&](std::size_t p) {
          return std::abs(scan_angles_rad[idx] - scan_angles_rad[p]) <
                 config.min_separation_rad;
        });
    if (too_close || is_sidelobe_ghost(idx, picked)) continue;
    picked.push_back(idx);
  }
  return picked;
}

TrainingResult exhaustive_training(const array::Codebook& codebook,
                                   const ProbeFn& probe,
                                   const TrainingConfig& config) {
  TrainingResult result;
  result.scan_power.resize(codebook.size());
  std::vector<RVec> sc_powers(codebook.size());
  RVec angles(codebook.size());

  for (std::size_t i = 0; i < codebook.size(); ++i) {
    const CVec csi = probe(codebook.weights(i));
    sc_powers[i] = probe_powers(csi);
    // Degraded probes: a dropped report (empty) scans as zero power, and
    // non-finite subcarrier powers (corrupted taps) are zeroed so they
    // cannot poison the peak sort or the stored training powers.
    double mean_p = 0.0;
    if (!sc_powers[i].empty()) {
      for (double& p : sc_powers[i]) {
        if (!std::isfinite(p)) p = 0.0;
        mean_p += p;
      }
      mean_p /= static_cast<double>(sc_powers[i].size());
    }
    result.scan_power[i] = mean_p;
    angles[i] = codebook.angle(i);
    ++result.probes_used;
  }

  const std::vector<std::size_t> peaks =
      top_k_peaks(result.scan_power, angles, config, &codebook);
  for (std::size_t idx : peaks) {
    TrainedBeam beam;
    beam.angle_rad = angles[idx];
    beam.mean_power = result.scan_power[idx];
    beam.subcarrier_power = sc_powers[idx];
    result.beams.push_back(std::move(beam));
  }
  return result;
}

}  // namespace mmr::core
