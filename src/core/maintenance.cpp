#include "core/maintenance.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace mmr::core {
namespace {

double cir_power(const CVec& cir) {
  // Parseval: tap energy equals mean subcarrier power for a Nyquist CIR
  // long enough to hold the full response.
  double acc = 0.0;
  for (const cplx& h : cir) acc += std::norm(h);
  return acc;
}

}  // namespace

MmReliableController::MmReliableController(const array::Ula& ula,
                                           array::Codebook codebook,
                                           MaintenanceConfig config)
    : ula_(ula), codebook_(std::move(codebook)), config_(config) {
  MMR_EXPECTS(config_.max_beams >= 1);
  MMR_EXPECTS(config_.cir_taps >= 4);
  MMR_EXPECTS(config_.probe_retry_limit >= 1);
  MMR_EXPECTS(config_.probe_backoff_initial_s > 0.0);
  MMR_EXPECTS(config_.probe_backoff_max_s >= config_.probe_backoff_initial_s);
  MMR_EXPECTS(config_.probe_outage_budget_s > 0.0);
}

void MmReliableController::start(double t_s, const LinkProbeInterface& link) {
  do_training(t_s, link);
  started_ = true;
}

void MmReliableController::emit(double t_s, FaultEventKind kind,
                                std::size_t beam, double value) {
  if (!listener_) return;
  FaultEvent ev;
  ev.t_s = t_s;
  ev.kind = kind;
  ev.beam = beam;
  ev.value = value;
  listener_(ev);
}

bool MmReliableController::sanitize_report(double t_s, CVec& report) {
  if (report.empty()) return false;
  std::size_t bad = 0;
  for (cplx& h : report) {
    if (std::isfinite(h.real()) && std::isfinite(h.imag())) continue;
    h = cplx{};
    ++bad;
  }
  if (bad == report.size()) return false;
  if (bad > 0) {
    emit(t_s, FaultEventKind::kSanitizedReport, kNoBeam,
         static_cast<double>(bad));
  }
  return true;
}

void MmReliableController::on_probe_failure(double t_s) {
  ++probe_failures_;
  emit(t_s, FaultEventKind::kProbeFailure, kNoBeam,
       static_cast<double>(probe_failures_));
  if (probe_failures_ == 1) {
    // First failure of a streak: the controller transmits on whatever
    // weights it last trusted and starts the probe outage clock.
    probe_outage_since_ = t_s;
    emit(t_s, FaultEventKind::kFallbackLastGood);
  }
  if (probe_outage_since_ >= 0.0 &&
      t_s - probe_outage_since_ >= config_.probe_outage_budget_s) {
    // The probe path has been dark longer than the budget: the stored
    // channel knowledge is stale beyond trusting -- retrain from scratch.
    pending_training_ = true;
    emit(t_s, FaultEventKind::kRetrainTriggered, kNoBeam,
         t_s - probe_outage_since_);
    probe_outage_since_ = -1.0;
    probe_failures_ = 0;
    monitor_backoff_until_ = 0.0;
    return;
  }
  if (probe_failures_ >= config_.probe_retry_limit) {
    // Bounded retry exhausted: exponential backoff (capped) before the
    // next monitoring attempt, so a dead feedback path is not hammered.
    double backoff = config_.probe_backoff_initial_s;
    for (std::size_t i = config_.probe_retry_limit; i < probe_failures_ &&
         backoff < config_.probe_backoff_max_s; ++i) {
      backoff *= 2.0;
    }
    backoff = std::min(backoff, config_.probe_backoff_max_s);
    monitor_backoff_until_ = t_s + backoff;
    emit(t_s, FaultEventKind::kBackoff, kNoBeam, backoff);
  }
}

std::vector<std::size_t> MmReliableController::active_indices() const {
  std::vector<std::size_t> idx;
  for (std::size_t k = 0; k < angles_.size(); ++k) {
    if (in_multibeam_[k] && !blocked_[k]) idx.push_back(k);
  }
  return idx;
}

void MmReliableController::do_training(double t_s,
                                       const LinkProbeInterface& link) {
  ++trainings_;
  TrainingConfig tc = config_.training;
  // Train a couple of spare directions beyond the communication beams:
  // every significant path must be in the superres dictionary or its
  // energy contaminates the per-beam power estimates.
  tc.top_k = std::max<std::size_t>(config_.max_beams + 1, 3);
  const TrainingResult training =
      exhaustive_training(codebook_, link.csi, tc);
  MMR_EXPECTS(!training.beams.empty());
  establish_multibeam(t_s, link, training);
  // Link is consumed by the SSB burst.
  unavailable_until_ =
      t_s + phy::ssb_burst_airtime_s(config_.rs, codebook_.size());
  outage_since_ = -1.0;
  last_refine_ = t_s;
  // Fresh training resets the degraded-mode streak.
  probe_failures_ = 0;
  probe_outage_since_ = -1.0;
  monitor_backoff_until_ = 0.0;
}

void MmReliableController::establish_multibeam(double t_s,
                                               const LinkProbeInterface& link,
                                               const TrainingResult& training) {
  const std::size_t num_trained = training.beams.size();
  const std::size_t num_active = std::min(config_.max_beams, num_trained);
  angles_.clear();
  single_power_db_.clear();
  for (const TrainedBeam& b : training.beams) {
    angles_.push_back(b.angle_rad);
    single_power_db_.push_back(to_db(b.mean_power));
  }
  blocked_.assign(num_trained, false);
  misalign_.assign(num_trained, 0.0);
  in_multibeam_.assign(num_trained, false);
  for (std::size_t b = 0; b < num_active; ++b) in_multibeam_[b] = true;

  // Constructive combining over the ACTIVE beams: two probes per extra
  // beam (Eqs. 11-12), reusing the training-phase single-beam powers.
  ratios_.assign(num_trained, cplx{});
  ratios_[0] = cplx{1.0, 0.0};
  if (num_active >= 2) {
    std::vector<double> act_angles(angles_.begin(),
                                   angles_.begin() + num_active);
    std::vector<RVec> trained_powers = training.powers();
    trained_powers.resize(num_active);
    ProbeBudget budget;
    const std::vector<RelativeChannel> rel = estimate_relative_channels(
        ula_, act_angles, link.csi, &trained_powers, &budget);
    refinement_probes_ += budget.refinement_probes;
    for (std::size_t b = 0; b < num_active; ++b) ratios_[b] = rel[b].ratio;
  }
  resynthesize();

  // Nominal per-beam delays from single-beam CIR peaks (part of the
  // training budget: reuses the per-direction reference signals). ALL
  // trained directions enter the superres dictionary.
  const std::size_t k = num_trained;
  nominal_delays_.assign(k, 0.0);
  for (std::size_t b = 0; b < k; ++b) {
    const MultiBeam single =
        synthesize_multibeam(ula_, {{angles_[b], cplx{1.0, 0.0}}});
    const CVec cir = link.cir(single.weights, config_.cir_taps);
    ++refinement_probes_;
    // A dropped delay probe leaves this beam at the reference delay; the
    // monitor's common-shift search absorbs the residual error.
    nominal_delays_[b] =
        cir.empty() ? 0.0 : estimate_peak_delay(cir, sample_period());
  }
  // Reference everything to the earliest beam.
  const double t0 =
      *std::min_element(nominal_delays_.begin(), nominal_delays_.end());
  for (double& d : nominal_delays_) d -= t0;

  // Prime the trackers with a fresh monitoring snapshot.
  trackers_.assign(k, PerBeamTracker(config_.tracker, ula_.num_elements,
                                     ula_.spacing_wavelengths));
  CVec cir = link.cir(multibeam_.weights, config_.cir_taps);
  ++monitor_probes_;
  if (sanitize_report(t_s, cir)) {
    const SuperresResult fit = superres_per_beam(
        cir, nominal_delays_, sample_period(), bandwidth(), config_.superres);
    last_powers_ = fit.powers();
    last_total_power_ = cir_power(cir);
  } else {
    // Priming probe failed: seed the trackers from the training-phase
    // single-beam powers instead of garbage.
    emit(t_s, FaultEventKind::kProbeFailure);
    last_powers_.assign(k, 0.0);
    for (std::size_t b = 0; b < k; ++b) {
      last_powers_[b] = from_db(single_power_db_[b]);
    }
    last_total_power_ = 0.0;
  }
  for (std::size_t b = 0; b < k; ++b) {
    trackers_[b].reset_reference(to_db(last_powers_[b]));
  }
}

void MmReliableController::resynthesize() {
  std::vector<BeamComponent> components;
  for (std::size_t k = 0; k < angles_.size(); ++k) {
    if (!in_multibeam_[k] || blocked_[k]) continue;
    BeamComponent c;
    c.angle_rad = angles_[k];
    c.coefficient = std::conj(ratios_[k]);
    components.push_back(c);
  }
  if (components.empty()) {
    // Everything blocked: keep radiating on the strongest trained beam so
    // recovery can be observed.
    components.push_back({angles_.front(), cplx{1.0, 0.0}});
  }
  multibeam_ = synthesize_multibeam(ula_, components);
  // The hardware applies finite-resolution phase shifters and attenuators.
  multibeam_.weights =
      array::quantize(multibeam_.weights, config_.quantization);
}

void MmReliableController::step(double t_s, const LinkProbeInterface& link) {
  MMR_EXPECTS(started_);
  if (pending_training_) {
    pending_training_ = false;
    do_training(t_s, link);
    return;
  }
  monitor(t_s, link);
  if (t_s - last_refine_ >= config_.refine_period_s) {
    refine(t_s, link);
    last_refine_ = t_s;
  }
}

void MmReliableController::monitor(double t_s,
                                   const LinkProbeInterface& link) {
  if (t_s < monitor_backoff_until_) return;
  CVec cir = link.cir(multibeam_.weights, config_.cir_taps);
  ++monitor_probes_;
  if (!sanitize_report(t_s, cir)) {
    // Unusable report: keep the last-good beam weights and beam state
    // untouched; retry with bounded backoff, retrain once the probe
    // outage budget is spent.
    on_probe_failure(t_s);
    return;
  }
  if (probe_failures_ > 0) {
    probe_failures_ = 0;
    probe_outage_since_ = -1.0;
    monitor_backoff_until_ = 0.0;
  }
  last_total_power_ = cir_power(cir);

  const SuperresResult fit = superres_per_beam(
      cir, nominal_delays_, sample_period(), bandwidth(), config_.superres);
  last_powers_ = fit.powers();
  // Relative ToF drifts slowly with motion; adopt only the RELATIVE part
  // of the refined delays (the common shift is this probe's timing
  // jitter), and slowly, so one noisy fit cannot corrupt the prior.
  if (!fit.delays_s.empty()) {
    constexpr double kDelayEwma = 0.9;
    const double fit_base = fit.delays_s.front();
    const double nom_base = nominal_delays_.front();
    for (std::size_t k = 1; k < nominal_delays_.size(); ++k) {
      const double fit_rel = fit.delays_s[k] - fit_base;
      const double nom_rel = nominal_delays_[k] - nom_base;
      nominal_delays_[k] =
          nom_base + kDelayEwma * nom_rel + (1.0 - kDelayEwma) * fit_rel;
    }
  }

  bool topology_changed = false;
  for (std::size_t k = 0; k < angles_.size(); ++k) {
    if (!in_multibeam_[k]) continue;
    if (blocked_[k]) continue;  // recovery is handled by refine() probes
    const double pdb = to_db(std::max(last_powers_[k], 1e-30));
    const PerBeamTracker::Update up = trackers_[k].update(t_s, pdb);
    if (up.state == BeamState::kBlocked) {
      // The superres power split between closely-delayed beams is
      // ill-conditioned, so a detected drop can be an estimation artifact.
      // Verify with ONE single-beam probe before sacrificing the beam:
      // zeroing a healthy beam's coefficient takes the link down harder
      // than any blockage would.
      const MultiBeam single =
          synthesize_multibeam(ula_, {{angles_[k], cplx{1.0, 0.0}}});
      // A failed verify probe reads as zero power (-inf dB) and confirms
      // the blockage -- the conservative call when nothing comes back.
      double verify_power = 0.0;
      mean_probe_power(link.csi(single.weights), verify_power);
      const double verify_db = to_db(verify_power);
      ++refinement_probes_;
      if (verify_db >= single_power_db_[k] - config_.recover_margin_db) {
        // False alarm: beam is healthy on its own.
        trackers_[k].reset_reference(pdb);
      } else {
        blocked_[k] = true;
        misalign_[k] = 0.0;
        topology_changed = true;
      }
    } else {
      misalign_[k] = up.misalign_rad;
    }
  }
  if (topology_changed) resynthesize();  // reallocate power off blocked beams

  // Sustained total outage -> schedule full retraining.
  if (last_total_power_ < config_.outage_power_linear) {
    if (outage_since_ < 0.0) {
      outage_since_ = t_s;
    } else if (t_s - outage_since_ >= config_.retrain_timeout_s) {
      pending_training_ = true;
      outage_since_ = -1.0;
    }
  } else {
    outage_since_ = -1.0;
  }
}

void MmReliableController::refine(double t_s, const LinkProbeInterface& link) {
  // 1. Blocked-beam recovery: one cheap single-beam probe each.
  bool recovered_any = false;
  for (std::size_t k = 0; k < angles_.size(); ++k) {
    if (!in_multibeam_[k] || !blocked_[k]) continue;
    const MultiBeam single =
        synthesize_multibeam(ula_, {{angles_[k], cplx{1.0, 0.0}}});
    double p = 0.0;
    const bool usable = mean_probe_power(link.csi(single.weights), p);
    ++refinement_probes_;
    if (!usable) continue;  // no evidence of recovery from a dead probe
    const double p_db = to_db(p);
    if (p_db >= single_power_db_[k] - config_.recover_margin_db) {
      blocked_[k] = false;
      single_power_db_[k] = p_db;
      recovered_any = true;
    }
  }

  // 1b. When every communication beam is down, try promoting a spare
  // trained direction (they are already in the superres dictionary)
  // before resorting to a full, link-killing retrain.
  if (active_indices().empty()) {
    for (std::size_t k = 0; k < angles_.size(); ++k) {
      if (in_multibeam_[k]) continue;
      const MultiBeam single =
          synthesize_multibeam(ula_, {{angles_[k], cplx{1.0, 0.0}}});
      double p = 0.0;
      const bool usable = mean_probe_power(link.csi(single.weights), p);
      ++refinement_probes_;
      if (!usable) continue;
      const double p_db = to_db(p);
      if (p_db >= single_power_db_[k] - config_.recover_margin_db) {
        in_multibeam_[k] = true;
        blocked_[k] = false;
        ratios_[k] = cplx{1.0, 0.0};
        single_power_db_[k] = p_db;
        trackers_[k].reset_reference(p_db);
        recovered_any = true;
        break;
      }
    }
  }

  // 2. Mobility realignment with one disambiguation probe per moved beam:
  // try +offset; if total power does not improve, the offset was -.
  bool moved_any = false;
  auto separation_ok = [&](std::size_t k, double candidate) {
    for (std::size_t j = 0; j < angles_.size(); ++j) {
      if (j == k || !in_multibeam_[j]) continue;
      if (std::abs(candidate - angles_[j]) <
          config_.training.min_separation_rad) {
        return false;
      }
    }
    return true;
  };
  for (std::size_t k = 0; k < angles_.size(); ++k) {
    if (!config_.enable_tracking) break;
    if (!in_multibeam_[k] || blocked_[k] || misalign_[k] <= 0.0) continue;
    const double offset = misalign_[k];
    const double saved_angle = angles_[k];
    // Beams must stay angularly distinct: two beams on one path is a
    // wasted diversity branch and makes the superres columns collide.
    if (!separation_ok(k, saved_angle + offset) ||
        !separation_ok(k, saved_angle - offset)) {
      misalign_[k] = 0.0;
      continue;
    }
    // Resolve the pattern's sign ambiguity by probing the three
    // candidates (stay, +offset, -offset) and keeping the best. The paper
    // spends one probe by comparing against the pre-move measurement; a
    // fresh baseline costs one more CSI-RS but cannot be fooled by the
    // monitoring estimate's noise into walking the beam off its path.
    const std::array<double, 3> candidates{saved_angle, saved_angle + offset,
                                           saved_angle - offset};
    double best_power = -1.0;
    double best_angle = saved_angle;
    for (double cand : candidates) {
      angles_[k] = cand;
      resynthesize();
      // A failed candidate probe scores zero: never preferred over a
      // candidate that actually measured something.
      double p = 0.0;
      mean_probe_power(link.csi(multibeam_.weights), p);
      ++refinement_probes_;
      if (p > best_power) {
        best_power = p;
        best_angle = cand;
      }
    }
    angles_[k] = best_angle;
    misalign_[k] = 0.0;
    moved_any = true;
  }
  if (moved_any) resynthesize();

  // 3. Constructive-combining refresh (2(K-1) probes) whenever the beam
  // set or pointing changed, and periodically regardless (phase drifts).
  const std::vector<std::size_t> active = active_indices();
  if (config_.enable_cc_refresh && active.size() >= 2) {
    std::vector<double> act_angles;
    for (std::size_t k : active) act_angles.push_back(angles_[k]);
    ProbeBudget budget;
    std::vector<RVec> single_powers;
    const std::vector<RelativeChannel> rel = estimate_relative_channels(
        ula_, act_angles, link.csi, nullptr, &budget, &single_powers);
    // Count only the 2(K-1) two-beam probes against the refinement budget;
    // the single-beam powers ride the CSI-RS the monitor already sends
    // (the paper reuses training-phase powers the same way).
    refinement_probes_ += budget.refinement_probes;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (!rel[i].valid) {
        // Unusable two-probe estimate (dropped/corrupted probes): keep
        // the previous ratio -- a stale phase beats a fabricated one.
        emit(t_s, FaultEventKind::kEstimateRejected, active[i]);
      } else {
        // Blend with the previous estimate unless the beam set just
        // changed: each two-probe estimate carries noise, and the
        // channel's relative phase drifts slowly compared to the
        // refinement cadence.
        const cplx fresh = rel[i].ratio;
        const cplx old = ratios_[active[i]];
        const bool reuse_old = !recovered_any && !moved_any &&
                               std::abs(old) > 1e-9 && i != 0;
        ratios_[active[i]] = reuse_old ? 0.5 * old + 0.5 * fresh : fresh;
      }
      // Refresh the stored single-beam reference powers for recovery
      // detection; only finite measurements vote, and a fully failed
      // probe keeps the previous reference.
      double mp = 0.0;
      std::size_t finite = 0;
      for (double p : single_powers[i]) {
        if (!std::isfinite(p)) continue;
        mp += p;
        ++finite;
      }
      if (finite > 0) {
        mp /= static_cast<double>(finite);
        single_power_db_[active[i]] = to_db(std::max(mp, 1e-30));
      }
    }
  }
  resynthesize();

  // 4. Refresh monitoring references after any change. A failed refresh
  // probe keeps the previous references (last-good state).
  if (recovered_any || moved_any || active.size() >= 2) {
    CVec cir = link.cir(multibeam_.weights, config_.cir_taps);
    ++monitor_probes_;
    if (sanitize_report(t_s, cir)) {
      const SuperresResult fit = superres_per_beam(
          cir, nominal_delays_, sample_period(), bandwidth(),
          config_.superres);
      last_powers_ = fit.powers();
      last_total_power_ = cir_power(cir);
      for (std::size_t k = 0; k < angles_.size(); ++k) {
        if (!blocked_[k] && k < last_powers_.size()) {
          trackers_[k].reset_reference(
              to_db(std::max(last_powers_[k], 1e-30)));
        }
      }
    } else {
      emit(t_s, FaultEventKind::kProbeFailure);
    }
  }
}

std::size_t MmReliableController::num_active_beams() const {
  return active_indices().size();
}

double MmReliableController::management_airtime_s() const {
  const double train = static_cast<double>(trainings_) *
                       phy::ssb_burst_airtime_s(config_.rs, codebook_.size());
  const double probes =
      static_cast<double>(refinement_probes_) *
      phy::csi_rs_duration_s(config_.rs, /*slot_granular=*/true);
  return train + probes;
}

}  // namespace mmr::core
