#include "core/hierarchical_training.h"

#include <algorithm>
#include <cmath>

#include "array/pattern.h"
#include "array/weights.h"
#include "common/error.h"

namespace mmr::core {
namespace {

double mean_power(const CVec& csi) {
  double acc = 0.0;
  for (const cplx& h : csi) acc += std::norm(h);
  return acc / static_cast<double>(csi.size());
}

}  // namespace

CVec wide_probe_weights(const array::Ula& ula, double lo_rad, double hi_rad) {
  MMR_EXPECTS(hi_rad > lo_rad);
  const double center = 0.5 * (lo_rad + hi_rad);
  const double width = hi_rad - lo_rad;
  // Choose the largest subaperture whose half-power beamwidth still covers
  // the window (fewer elements -> wider beam). Never drop below two
  // elements: a single element is omni and cannot discriminate the two
  // halves at all.
  std::size_t active = ula.num_elements;
  while (active > 2 &&
         array::half_power_beamwidth(active, ula.spacing_wavelengths) <
             width) {
    active /= 2;
  }
  array::Ula sub = ula;
  sub.num_elements = active;
  CVec w(ula.num_elements, cplx{});
  const CVec sw = array::single_beam_weights(sub, center);
  std::copy(sw.begin(), sw.end(), w.begin());
  return array::normalize_trp(w);
}

HierarchicalResult hierarchical_training(const array::Ula& ula,
                                         const ProbeFn& probe,
                                         const HierarchicalConfig& config) {
  MMR_EXPECTS(config.sector_hi_rad > config.sector_lo_rad);
  const double hpbw = array::half_power_beamwidth(
      ula.num_elements, ula.spacing_wavelengths);
  const double stop_width = hpbw * config.stop_beamwidth_factor;

  HierarchicalResult result;
  double lo = config.sector_lo_rad;
  double hi = config.sector_hi_rad;
  double last_winner_power = 0.0;
  while (hi - lo > stop_width) {
    const double mid = 0.5 * (lo + hi);
    const CVec left = wide_probe_weights(ula, lo, mid);
    const CVec right = wide_probe_weights(ula, mid, hi);
    const double p_left = mean_power(probe(left));
    const double p_right = mean_power(probe(right));
    result.probes_used += 2;
    ++result.levels;
    if (p_left >= p_right) {
      hi = mid;
      last_winner_power = p_left;
    } else {
      lo = mid;
      last_winner_power = p_right;
    }
    // Runaway guard: the window halves every level, so ~20 levels covers
    // any realistic array.
    if (result.levels > 24) break;
  }
  result.angle_rad = 0.5 * (lo + hi);
  result.mean_power = last_winner_power;
  return result;
}

}  // namespace mmr::core
