// Abstract beam-management controller: the contract the simulation harness
// drives. Implemented by mmReliable and by every baseline, so end-to-end
// experiments can swap schemes without changing the harness.
#pragma once

#include "core/link_interface.h"
#include "common/types.h"

namespace mmr::core {

class BeamController {
 public:
  virtual ~BeamController() = default;

  /// Establish the link at time t (initial beam training).
  virtual void start(double t_s, const LinkProbeInterface& link) = 0;

  /// One management tick at the reference-signal cadence.
  virtual void step(double t_s, const LinkProbeInterface& link) = 0;

  /// Current transmit weights (unit norm).
  virtual const CVec& tx_weights() const = 0;

  /// False while the link is consumed by (re)training.
  virtual bool link_available(double t_s) const = 0;

  virtual const char* name() const = 0;
};

}  // namespace mmr::core
