// Abstract beam-management controller: the contract the simulation harness
// drives. Implemented by mmReliable and by every baseline, so end-to-end
// experiments can swap schemes without changing the harness.
#pragma once

#include "common/types.h"
#include "core/events.h"
#include "core/link_interface.h"
#include "core/link_state.h"

namespace mmr::core {

class BeamController {
 public:
  virtual ~BeamController() = default;

  /// Establish the link at time t (initial beam training).
  virtual void start(double t_s, const LinkProbeInterface& link) = 0;

  /// One management tick at the reference-signal cadence.
  virtual void step(double t_s, const LinkProbeInterface& link) = 0;

  /// Current transmit weights (unit norm).
  virtual const CVec& tx_weights() const = 0;

  /// False while the link is consumed by (re)training.
  virtual bool link_available(double t_s) const = 0;

  virtual const char* name() const = 0;

  /// Where the link stands in the Terragraph-style state machine
  /// (core/link_state.h). The default maps availability: available = Up,
  /// otherwise (re)training = Acquisition. Controllers with richer
  /// internal state (degraded modes, recovery ladders) override this
  /// with a faithful mapping; the network layer uses it for its per-link
  /// availability ledger.
  virtual LinkState link_state(double t_s) const {
    return link_available(t_s) ? LinkState::kUp : LinkState::kAcquisition;
  }

  /// Install a listener for degraded-mode events (probe failures,
  /// last-good fallbacks, backoff, rejected estimates, budget-triggered
  /// retrains). Controllers without degraded-mode reporting ignore it.
  /// Pass nullptr to detach before the listener's captures die.
  virtual void set_fault_listener(FaultListener listener) { (void)listener; }
};

}  // namespace mmr::core
