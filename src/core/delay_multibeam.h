// Delay-optimized multi-beam construction (paper Section 3.4).
//
// Combines the delay-phased-array architecture (array/delay_array.h) with
// mmReliable's estimated per-path parameters: each subarray is steered at
// one path, carries the constructive-combining coefficient, and is given a
// true-time delay that cancels the channel's inter-path delay difference,
// yielding a frequency-flat multi-beam response over the full band
// (Figs. 7-8).
#pragma once

#include <vector>

#include "array/delay_array.h"
#include "common/types.h"

namespace mmr::core {

/// Build a delay phased array for paths at `angles_rad` with relative
/// channel ratios `ratios` (h_k/h_0; ratios[0] == 1) and path delays
/// `delays_s`. If `compensate_delays` is false the delay lines are left at
/// zero -- the "conventional phased array" baseline of Fig. 8.
array::DelayPhasedArray build_delay_multibeam(
    const array::Ula& ula, const std::vector<double>& angles_rad,
    const std::vector<cplx>& ratios, const std::vector<double>& delays_s,
    bool compensate_delays = true);

}  // namespace mmr::core
