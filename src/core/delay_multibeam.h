// Delay-optimized multi-beam construction (paper Section 3.4).
//
// Combines the delay-phased-array architecture (array/delay_array.h) with
// mmReliable's estimated per-path parameters: each subarray is steered at
// one path, carries the constructive-combining coefficient, and is given a
// true-time delay that cancels the channel's inter-path delay difference,
// yielding a frequency-flat multi-beam response over the full band
// (Figs. 7-8).
#pragma once

#include <vector>

#include "array/codebook.h"
#include "array/delay_array.h"
#include "common/types.h"
#include "core/beam_training.h"
#include "core/controller_base.h"

namespace mmr::core {

/// Build a delay phased array for paths at `angles_rad` with relative
/// channel ratios `ratios` (h_k/h_0; ratios[0] == 1) and path delays
/// `delays_s`. If `compensate_delays` is false the delay lines are left at
/// zero -- the "conventional phased array" baseline of Fig. 8.
array::DelayPhasedArray build_delay_multibeam(
    const array::Ula& ula, const std::vector<double>& angles_rad,
    const std::vector<cplx>& ratios, const std::vector<double>& delays_s,
    bool compensate_delays = true);

struct DelayMultibeamConfig {
  /// Carrier the delay lines are tuned against (weights are reported at
  /// the carrier's center frequency).
  double carrier_hz = 28.0e9;
  /// Link bandwidth; sets the CIR tap period (1/B) for delay estimation.
  double bandwidth_hz = 400.0e6;
  std::size_t cir_taps = 24;
  /// Beams/subarrays in the delay phased array.
  std::size_t max_beams = 2;
  TrainingConfig training;
};

/// BeamController wrapper around the delay phased array: trains once at
/// start() (exhaustive sweep -> top-K directions), estimates the relative
/// per-path channels and per-beam delays from single-beam CIR peaks, and
/// holds the resulting delay-compensated multi-beam for the rest of the
/// run (the static architecture of Figs. 7-8; no maintenance loop).
class DelayMultibeamController final : public BeamController {
 public:
  DelayMultibeamController(const array::Ula& ula, array::Codebook codebook,
                           DelayMultibeamConfig config);

  void start(double t_s, const LinkProbeInterface& link) override;
  void step(double t_s, const LinkProbeInterface& link) override;
  const CVec& tx_weights() const override { return weights_; }
  bool link_available(double /*t_s*/) const override { return started_; }
  const char* name() const override { return "delay-multibeam"; }

  std::size_t num_beams() const { return angles_.size(); }
  const std::vector<double>& beam_delays_s() const { return delays_; }

 private:
  array::Ula ula_;
  array::Codebook codebook_;
  DelayMultibeamConfig config_;
  std::vector<double> angles_;
  std::vector<double> delays_;
  CVec weights_;
  bool started_ = false;
};

}  // namespace mmr::core
