#include "core/delay_multibeam.h"

#include "common/error.h"

namespace mmr::core {

array::DelayPhasedArray build_delay_multibeam(
    const array::Ula& ula, const std::vector<double>& angles_rad,
    const std::vector<cplx>& ratios, const std::vector<double>& delays_s,
    bool compensate_delays) {
  MMR_EXPECTS(!angles_rad.empty());
  MMR_EXPECTS(angles_rad.size() == ratios.size());
  MMR_EXPECTS(angles_rad.size() == delays_s.size());

  array::DelayPhasedArray dpa(ula, angles_rad);
  for (std::size_t k = 0; k < angles_rad.size(); ++k) {
    // Constructive combining: conjugate of the relative channel (Eq. 10).
    dpa.set_weight(k, std::conj(ratios[k]));
  }
  if (compensate_delays) {
    const std::vector<double> comp = array::compensating_delays(delays_s);
    for (std::size_t k = 0; k < comp.size(); ++k) dpa.set_delay(k, comp[k]);
  }
  return dpa;
}

}  // namespace mmr::core
