#include "core/delay_multibeam.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "core/multibeam.h"
#include "core/superres.h"

namespace mmr::core {

array::DelayPhasedArray build_delay_multibeam(
    const array::Ula& ula, const std::vector<double>& angles_rad,
    const std::vector<cplx>& ratios, const std::vector<double>& delays_s,
    bool compensate_delays) {
  MMR_EXPECTS(!angles_rad.empty());
  MMR_EXPECTS(angles_rad.size() == ratios.size());
  MMR_EXPECTS(angles_rad.size() == delays_s.size());

  array::DelayPhasedArray dpa(ula, angles_rad);
  for (std::size_t k = 0; k < angles_rad.size(); ++k) {
    // Constructive combining: conjugate of the relative channel (Eq. 10).
    dpa.set_weight(k, std::conj(ratios[k]));
  }
  if (compensate_delays) {
    const std::vector<double> comp = array::compensating_delays(delays_s);
    for (std::size_t k = 0; k < comp.size(); ++k) dpa.set_delay(k, comp[k]);
  }
  return dpa;
}

DelayMultibeamController::DelayMultibeamController(const array::Ula& ula,
                                                   array::Codebook codebook,
                                                   DelayMultibeamConfig config)
    : ula_(ula), codebook_(std::move(codebook)), config_(config) {
  MMR_EXPECTS(config_.max_beams >= 1);
  MMR_EXPECTS(config_.cir_taps >= 4);
  MMR_EXPECTS(config_.bandwidth_hz > 0.0);
  MMR_EXPECTS(config_.carrier_hz > 0.0);
}

void DelayMultibeamController::start(double /*t_s*/,
                                     const LinkProbeInterface& link) {
  TrainingConfig tc = config_.training;
  tc.top_k = std::max(tc.top_k, config_.max_beams);
  const TrainingResult training = exhaustive_training(codebook_, link.csi, tc);
  MMR_EXPECTS(!training.beams.empty());

  const std::size_t k = std::min(config_.max_beams, training.beams.size());
  angles_.clear();
  for (std::size_t b = 0; b < k; ++b) {
    angles_.push_back(training.beams[b].angle_rad);
  }

  if (k < 2) {
    // A delay phased array degenerates to a plain single beam.
    delays_.assign(1, 0.0);
    weights_ =
        synthesize_multibeam(ula_, {{angles_[0], cplx{1.0, 0.0}}}).weights;
    started_ = true;
    return;
  }

  // Constructive-combining coefficients via the two-probe relative-channel
  // estimator, reusing the training-phase single-beam powers.
  std::vector<RVec> trained_powers = training.powers();
  trained_powers.resize(k);
  const std::vector<RelativeChannel> rel =
      estimate_relative_channels(ula_, angles_, link.csi, &trained_powers);
  std::vector<cplx> ratios(k);
  for (std::size_t b = 0; b < k; ++b) ratios[b] = rel[b].ratio;

  // Per-beam ToFs from single-beam CIR peaks, referenced to the earliest
  // arrival: the inter-path delay spread the delay lines must cancel.
  const double ts = 1.0 / config_.bandwidth_hz;
  delays_.assign(k, 0.0);
  for (std::size_t b = 0; b < k; ++b) {
    const MultiBeam single =
        synthesize_multibeam(ula_, {{angles_[b], cplx{1.0, 0.0}}});
    const CVec cir = link.cir(single.weights, config_.cir_taps);
    delays_[b] = estimate_peak_delay(cir, ts);
  }
  const double t0 = *std::min_element(delays_.begin(), delays_.end());
  for (double& d : delays_) d -= t0;

  const array::DelayPhasedArray dpa =
      build_delay_multibeam(ula_, angles_, ratios, delays_, true);
  weights_ = dpa.weights_at(config_.carrier_hz, 0.0);
  started_ = true;
}

void DelayMultibeamController::step(double /*t_s*/,
                                    const LinkProbeInterface& /*link*/) {
  // Static architecture: no maintenance loop (the whole point of the
  // delay-compensated design is that one training suffices for the band).
}

}  // namespace mmr::core
