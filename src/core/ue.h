// Directional-UE generalization (paper Section 4.4).
//
// When the UE also beamforms, mobility misaligns BOTH ends. Three
// sub-problems:
//  1. association -- which UE beam pairs with which gNB beam: solved by
//     matching per-path ToF (unique per path) from each side's superres;
//  2. rotation  -- only the UE-side gain changes; invert the UE pattern;
//  3. translation -- both ends slide by the SAME angle; invert the SUM of
//     the two patterns.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace mmr::core {

struct BeamAssociation {
  std::size_t gnb_beam = 0;
  std::size_t ue_beam = 0;
  double tof_mismatch_s = 0.0;
};

/// Greedy ToF matching: each gNB beam is paired with the unmatched UE beam
/// whose delay is closest; pairs with mismatch above `tolerance_s` are
/// dropped. Delays come from each side's superres fit.
std::vector<BeamAssociation> associate_beams(const RVec& gnb_delays_s,
                                             const RVec& ue_delays_s,
                                             double tolerance_s);

enum class MotionKind {
  kNone,
  kRotation,     ///< UE-side drop only
  kTranslation,  ///< both sides drop together
};

/// Classify from the per-side power drops of an associated beam pair.
MotionKind classify_motion(double gnb_drop_db, double ue_drop_db,
                           double threshold_db = 1.0);

/// Rotation angle magnitude from the UE-side drop alone [rad].
double estimate_rotation_rad(std::size_t ue_elements,
                             double spacing_wavelengths, double ue_drop_db);

/// Translation-induced angular offset: both arrays slide off by the same
/// angle, so the observed TOTAL drop is the sum of both pattern losses;
/// invert that sum (monotone within both main lobes) [rad].
double estimate_translation_offset_rad(std::size_t gnb_elements,
                                       std::size_t ue_elements,
                                       double spacing_wavelengths,
                                       double total_drop_db);

/// Realignment prescription for one associated pair (paper Fig. 12):
/// rotation turns only the UE beam; translation turns gNB and UE beams by
/// the same magnitude in opposite senses.
struct Realignment {
  double gnb_delta_rad = 0.0;
  double ue_delta_rad = 0.0;
};
Realignment prescribe_realignment(MotionKind kind, double angle_rad);

}  // namespace mmr::core
