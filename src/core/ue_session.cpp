#include "core/ue_session.h"

#include <algorithm>
#include <numeric>
#include <cmath>

#include "array/codebook.h"
#include "array/pattern_cache.h"
#include "array/weights.h"
#include "common/error.h"
#include "common/units.h"
#include "core/beam_training.h"

namespace mmr::core {
namespace {

double mean_power(const CVec& csi) {
  double acc = 0.0;
  for (const cplx& h : csi) acc += std::norm(h);
  return acc / static_cast<double>(csi.size());
}

// Quasi-omni UE weights: single active element (widest pattern the array
// can make), TRP normalized.
CVec ue_wide_weights(const array::Ula& ue_ula) {
  CVec w(ue_ula.num_elements, cplx{});
  w[0] = cplx{1.0, 0.0};
  return w;
}

}  // namespace

DirectionalUeSession::DirectionalUeSession(UeSessionConfig config)
    : config_(config) {
  MMR_EXPECTS(config_.max_beams >= 1);
}

void DirectionalUeSession::resynthesize() {
  std::vector<BeamComponent> tx_comps, rx_comps;
  for (std::size_t k = 0; k < gnb_angles_.size(); ++k) {
    tx_comps.push_back({gnb_angles_[k], cplx{1.0, 0.0}});
    rx_comps.push_back({ue_angles_[k], cplx{1.0, 0.0}});
  }
  tx_beam_ = synthesize_multibeam(config_.gnb_ula, tx_comps);
  rx_beam_ = synthesize_multibeam(config_.ue_ula, rx_comps);
}

double DirectionalUeSession::measure_power(const JointProbeFns& link) {
  ++probes_;
  return mean_power(link.csi(tx_beam_.weights, rx_beam_.weights));
}

RVec DirectionalUeSession::per_beam_powers(const JointProbeFns& link) {
  ++probes_;
  const CVec cir =
      link.cir(tx_beam_.weights, rx_beam_.weights, config_.cir_taps);
  const SuperresResult fit =
      superres_per_beam(cir, nominal_delays_, 1.0 / config_.bandwidth_hz,
                        config_.bandwidth_hz);
  return fit.powers();
}

void DirectionalUeSession::train(const JointProbeFns& link) {
  // 1. gNB sweep under the wide UE beam.
  const array::Codebook gnb_cb(config_.gnb_ula, config_.sector_lo_rad,
                               config_.sector_hi_rad,
                               config_.gnb_codebook_size);
  const CVec ue_wide = ue_wide_weights(config_.ue_ula);
  TrainingConfig tc;
  tc.top_k = config_.max_beams;
  const TrainingResult gnb_training = exhaustive_training(
      gnb_cb, [&](const CVec& w) { ++probes_; return link.csi(w, ue_wide); },
      tc);
  MMR_EXPECTS(!gnb_training.beams.empty());
  gnb_angles_ = gnb_training.angles();

  // 2. Per gNB beam, sweep the UE codebook: best arrival direction AND
  //    implicit beam association.
  const array::Codebook ue_cb(config_.ue_ula, config_.sector_lo_rad,
                              config_.sector_hi_rad, config_.ue_codebook_size);
  ue_angles_.clear();
  array::PatternCache& cache = array::PatternCache::instance();
  for (double gnb_angle : gnb_angles_) {
    const auto tx_w = cache.beam_weights(config_.gnb_ula, gnb_angle);
    const CVec& tx = *tx_w;
    double best_p = -1.0;
    double best_angle = 0.0;
    for (std::size_t i = 0; i < ue_cb.size(); ++i) {
      ++probes_;
      const double p = mean_power(link.csi(tx, ue_cb.weights(i)));
      if (p > best_p) {
        best_p = p;
        best_angle = ue_cb.angle(i);
      }
    }
    ue_angles_.push_back(best_angle);
  }
  resynthesize();

  // 3. Per-beam nominal delays for the superres dictionary.
  nominal_delays_.clear();
  for (std::size_t k = 0; k < gnb_angles_.size(); ++k) {
    const auto tx_w = cache.beam_weights(config_.gnb_ula, gnb_angles_[k]);
    const auto rx_w = cache.beam_weights(config_.ue_ula, ue_angles_[k]);
    ++probes_;
    const CVec cir = link.cir(*tx_w, *rx_w, config_.cir_taps);
    nominal_delays_.push_back(
        estimate_peak_delay(cir, 1.0 / config_.bandwidth_hz));
  }
  const double t0 =
      *std::min_element(nominal_delays_.begin(), nominal_delays_.end());
  for (double& d : nominal_delays_) d -= t0;

  // 4. Reference per-beam powers.
  const RVec p = per_beam_powers(link);
  reference_power_db_.clear();
  for (double v : p) reference_power_db_.push_back(to_db(std::max(v, 1e-30)));
  trained_ = true;
}

void DirectionalUeSession::step(double /*t_s*/, const JointProbeFns& link) {
  MMR_EXPECTS(trained_);
  const RVec p = per_beam_powers(link);
  RVec drops(p.size());
  double min_drop = 1e9, max_drop = -1e9;
  for (std::size_t k = 0; k < p.size(); ++k) {
    drops[k] = reference_power_db_[k] - to_db(std::max(p[k], 1e-30));
    min_drop = std::min(min_drop, drops[k]);
    max_drop = std::max(max_drop, drops[k]);
  }
  if (max_drop < config_.min_drop_db) {
    last_motion_ = MotionKind::kNone;
    return;
  }

  const double p_base = measure_power(link);
  const std::vector<double> saved_gnb = gnb_angles_;
  const std::vector<double> saved_ue = ue_angles_;

  const bool rigid_rotation =
      (max_drop - min_drop) <= config_.rotation_spread_db &&
      min_drop >= config_.min_drop_db / 2.0;
  last_motion_ =
      rigid_rotation ? MotionKind::kRotation : MotionKind::kTranslation;

  double best_power = p_base;
  std::vector<double> best_gnb = saved_gnb;
  std::vector<double> best_ue = saved_ue;

  auto try_candidate = [&](const std::vector<double>& gnb,
                           const std::vector<double>& ue) {
    gnb_angles_ = gnb;
    ue_angles_ = ue;
    resynthesize();
    const double pw = measure_power(link);
    if (pw > best_power) {
      best_power = pw;
      best_gnb = gnb;
      best_ue = ue;
    }
  };

  if (rigid_rotation) {
    // One common UE rotation angle from the mean drop.
    const double mean_drop =
        std::accumulate(drops.begin(), drops.end(), 0.0) /
        static_cast<double>(drops.size());
    const double psi = estimate_rotation_rad(
        config_.ue_ula.num_elements, config_.ue_ula.spacing_wavelengths,
        std::max(0.0, mean_drop));
    for (double sign : {+1.0, -1.0}) {
      std::vector<double> ue = saved_ue;
      for (double& a : ue) a += sign * psi;
      try_candidate(saved_gnb, ue);
    }
  } else {
    // Translation: per-beam offset, gNB and UE turn in opposite senses
    // (paper Fig. 12). Two sign hypotheses probed.
    std::vector<double> offsets(drops.size(), 0.0);
    for (std::size_t k = 0; k < drops.size(); ++k) {
      if (drops[k] < config_.min_drop_db) continue;
      offsets[k] = estimate_translation_offset_rad(
          config_.gnb_ula.num_elements, config_.ue_ula.num_elements,
          config_.gnb_ula.spacing_wavelengths, drops[k]);
    }
    for (double sign : {+1.0, -1.0}) {
      std::vector<double> gnb = saved_gnb;
      std::vector<double> ue = saved_ue;
      for (std::size_t k = 0; k < offsets.size(); ++k) {
        const Realignment r = prescribe_realignment(MotionKind::kTranslation,
                                                    sign * offsets[k]);
        gnb[k] += r.gnb_delta_rad;
        ue[k] += r.ue_delta_rad;
      }
      try_candidate(gnb, ue);
    }
  }

  gnb_angles_ = best_gnb;
  ue_angles_ = best_ue;
  resynthesize();
  // Refresh references after any accepted move.
  if (best_power > p_base) {
    const RVec pp = per_beam_powers(link);
    for (std::size_t k = 0; k < pp.size(); ++k) {
      reference_power_db_[k] = to_db(std::max(pp[k], 1e-30));
    }
  }
}

}  // namespace mmr::core
