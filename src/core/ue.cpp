#include "core/ue.h"

#include <algorithm>
#include <cmath>

#include "array/pattern.h"
#include "common/error.h"
#include "core/tracking.h"

namespace mmr::core {

std::vector<BeamAssociation> associate_beams(const RVec& gnb_delays_s,
                                             const RVec& ue_delays_s,
                                             double tolerance_s) {
  MMR_EXPECTS(tolerance_s >= 0.0);
  std::vector<bool> ue_used(ue_delays_s.size(), false);
  std::vector<BeamAssociation> out;
  for (std::size_t g = 0; g < gnb_delays_s.size(); ++g) {
    std::size_t best = ue_delays_s.size();
    double best_diff = tolerance_s;
    for (std::size_t u = 0; u < ue_delays_s.size(); ++u) {
      if (ue_used[u]) continue;
      const double diff = std::abs(gnb_delays_s[g] - ue_delays_s[u]);
      if (diff <= best_diff) {
        best_diff = diff;
        best = u;
      }
    }
    if (best < ue_delays_s.size()) {
      ue_used[best] = true;
      out.push_back({g, best, best_diff});
    }
  }
  return out;
}

MotionKind classify_motion(double gnb_drop_db, double ue_drop_db,
                           double threshold_db) {
  const bool gnb_moved = gnb_drop_db > threshold_db;
  const bool ue_moved = ue_drop_db > threshold_db;
  if (gnb_moved) return MotionKind::kTranslation;
  if (ue_moved) return MotionKind::kRotation;
  return MotionKind::kNone;
}

double estimate_rotation_rad(std::size_t ue_elements,
                             double spacing_wavelengths, double ue_drop_db) {
  MMR_EXPECTS(ue_drop_db >= 0.0);
  return invert_pattern_offset(ue_elements, spacing_wavelengths, ue_drop_db);
}

double estimate_translation_offset_rad(std::size_t gnb_elements,
                                       std::size_t ue_elements,
                                       double spacing_wavelengths,
                                       double total_drop_db) {
  MMR_EXPECTS(total_drop_db >= 0.0);
  if (total_drop_db == 0.0) return 0.0;
  // Bisect the summed dB loss of both patterns within the narrower main
  // lobe (set by the larger array).
  const std::size_t larger = std::max(gnb_elements, ue_elements);
  const double first_null = std::asin(std::min(
      1.0, 1.0 / (spacing_wavelengths * static_cast<double>(larger))));
  auto summed_drop = [&](double offset) {
    const double g_tx = array::ula_relative_gain_db(
        gnb_elements, spacing_wavelengths, offset);
    const double g_rx = array::ula_relative_gain_db(
        ue_elements, spacing_wavelengths, offset);
    return -(g_tx + g_rx);  // positive drop
  };
  double lo = 0.0;
  double hi = first_null * 0.999;
  if (summed_drop(hi) <= total_drop_db) return hi;  // saturated
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (summed_drop(mid) < total_drop_db) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

Realignment prescribe_realignment(MotionKind kind, double angle_rad) {
  Realignment r;
  switch (kind) {
    case MotionKind::kNone:
      break;
    case MotionKind::kRotation:
      r.ue_delta_rad = angle_rad;
      break;
    case MotionKind::kTranslation:
      // Paper Fig. 12: gNB beam a1 moves by +phi, UE beam b1 by -phi.
      r.gnb_delta_rad = angle_rad;
      r.ue_delta_rad = -angle_rad;
      break;
  }
  return r;
}

}  // namespace mmr::core
