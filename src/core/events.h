// Typed fault/degradation events for the probe/CSI path.
//
// Two producers share this vocabulary:
//   * the sim-layer FaultInjector reports every fault it INJECTS into the
//     link-facing path (dropped reports, stale epochs, non-finite taps);
//   * controllers report every DEGRADATION they take in response (probe
//     failures, last-good fallbacks, monitor backoff, rejected estimates,
//     sanitized reports, budget-triggered retrains).
// The events flow through TelemetrySink::on_fault so fault campaigns are
// observable in the same JSON-lines stream as samples and summaries.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>

namespace mmr::core {

enum class FaultEventKind {
  // Injected by the fault layer.
  kProbeDropped,     ///< a probe report was lost in flight
  kStaleEpoch,       ///< feedback frozen: reports replayed for k ticks
  kNonFiniteTap,     ///< a NaN/Inf tap was planted in a report
  // Degradations taken by a controller.
  kProbeFailure,     ///< a monitor probe came back empty/unusable
  kFallbackLastGood, ///< kept last-good beam weights instead of adapting
  kBackoff,          ///< monitoring backed off after repeated failures
  kEstimateRejected, ///< a relative-channel estimate failed sanity gates
  kSanitizedReport,  ///< non-finite taps were zeroed before consumption
  kRetrainTriggered, ///< outage budget exhausted; full retraining queued
};

/// Stable lower_snake names for serialization (JSON-lines `fault` field).
inline const char* to_string(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kProbeDropped: return "probe_dropped";
    case FaultEventKind::kStaleEpoch: return "stale_epoch";
    case FaultEventKind::kNonFiniteTap: return "non_finite_tap";
    case FaultEventKind::kProbeFailure: return "probe_failure";
    case FaultEventKind::kFallbackLastGood: return "fallback_last_good";
    case FaultEventKind::kBackoff: return "backoff";
    case FaultEventKind::kEstimateRejected: return "estimate_rejected";
    case FaultEventKind::kSanitizedReport: return "sanitized_report";
    case FaultEventKind::kRetrainTriggered: return "retrain_triggered";
  }
  return "unknown";
}

/// `beam` when no specific beam is involved.
inline constexpr std::size_t kNoBeam = std::numeric_limits<std::size_t>::max();

struct FaultEvent {
  double t_s = 0.0;
  FaultEventKind kind = FaultEventKind::kProbeFailure;
  /// Beam index the event concerns, or kNoBeam.
  std::size_t beam = kNoBeam;
  /// Kind-specific payload (consecutive-failure count, epoch length in
  /// ticks, backoff horizon in seconds, tap index, ...). Always finite.
  double value = 0.0;
};

using FaultListener = std::function<void(const FaultEvent&)>;

/// A UE session switched serving cells (net-layer RSRP-threshold
/// handover). Flows through TelemetrySink::on_handover so network
/// campaigns expose their mobility decisions in the same JSON-lines
/// stream as faults and samples.
struct HandoverEvent {
  double t_s = 0.0;
  /// Network-wide session (link) index of the UE that moved.
  std::size_t link = 0;
  std::size_t from_cell = 0;
  std::size_t to_cell = 0;
  /// Sync-beam RSRP of the old/new serving cell at the trigger instant
  /// [dB, relative to unit channel gain].
  double rsrp_from_db = 0.0;
  double rsrp_to_db = 0.0;
};

}  // namespace mmr::core
