#include "core/probing.h"

#include <cmath>

#include "common/angles.h"
#include "common/error.h"
#include "core/multibeam.h"

namespace mmr::core {

double RelativeChannel::delta() const { return std::abs(ratio); }

double RelativeChannel::sigma_rad() const { return std::arg(ratio); }

RVec probe_powers(const CVec& csi) {
  RVec p(csi.size());
  for (std::size_t k = 0; k < csi.size(); ++k) p[k] = std::norm(csi[k]);
  return p;
}

bool mean_probe_power(const CVec& csi, double& out) {
  double acc = 0.0;
  std::size_t finite = 0;
  for (const cplx& h : csi) {
    const double p = std::norm(h);
    if (!std::isfinite(p)) continue;
    acc += p;
    ++finite;
  }
  if (finite == 0) return false;
  out = acc / static_cast<double>(finite);
  return true;
}

cplx ratio_from_powers(double p0, double pk, double p_sum0, double p_sum90) {
  MMR_EXPECTS(p0 > 0.0);
  const double sqrt_p0 = std::sqrt(p0);
  // Eq. 12 with h_0 taken real-positive: h_k = Re + j Im.
  const double re = (p_sum0 - p0 - pk) / (2.0 * sqrt_p0);
  const double im = (p0 + pk - p_sum90) / (2.0 * sqrt_p0);
  return cplx{re, im} / sqrt_p0;
}

std::vector<RelativeChannel> estimate_relative_channels(
    const array::Ula& ula, const std::vector<double>& beam_angles_rad,
    const ProbeFn& probe, const std::vector<RVec>* trained_powers,
    ProbeBudget* budget, std::vector<RVec>* measured_single_powers) {
  MMR_EXPECTS(beam_angles_rad.size() >= 2);
  const std::size_t num_beams = beam_angles_rad.size();
  ProbeBudget local_budget;

  // Single-beam powers: reuse beam-training measurements when available.
  std::vector<RVec> single_powers;
  if (trained_powers != nullptr) {
    MMR_EXPECTS(trained_powers->size() == num_beams);
    single_powers = *trained_powers;
    local_budget.training_probes = static_cast<int>(num_beams);
  } else {
    single_powers.reserve(num_beams);
    for (double angle : beam_angles_rad) {
      const MultiBeam single =
          synthesize_multibeam(ula, {{angle, cplx{1.0, 0.0}}});
      single_powers.push_back(probe_powers(probe(single.weights)));
      ++local_budget.training_probes;
    }
  }

  std::vector<RelativeChannel> out(num_beams);
  out[0].ratio = cplx{1.0, 0.0};

  for (std::size_t k = 1; k < num_beams; ++k) {
    // Probe 1: both beams in phase. Probe 2: k-th beam advanced by pi/2
    // (Eq. 11's e^{j pi/2} applied to the transmitted coefficient).
    const MultiBeam sum0 = synthesize_multibeam(
        ula, {{beam_angles_rad[0], cplx{1.0, 0.0}},
              {beam_angles_rad[k], cplx{1.0, 0.0}}});
    const MultiBeam sum90 = synthesize_multibeam(
        ula, {{beam_angles_rad[0], cplx{1.0, 0.0}},
              {beam_angles_rad[k], std::polar(1.0, kPi / 2.0)}});
    const RVec p_sum0 = probe_powers(probe(sum0.weights));
    const RVec p_sum90 = probe_powers(probe(sum90.weights));
    local_budget.refinement_probes += 2;

    // Undo the TRP normalization: the hardware transmitted w/||w||, so the
    // measured power is |h_sum|^2 / ||w||^2. Eq. 11 wants |h_sum|^2.
    const double scale0 = sum0.gain_norm * sum0.gain_norm;
    const double scale90 = sum90.gain_norm * sum90.gain_norm;

    const RVec& p0 = single_powers[0];
    const RVec& pk = single_powers[k];
    const std::size_t num_sc = p0.size();
    // Degraded probes (dropped reports shrink one vector, corrupted taps
    // poison a power): the estimate for this beam is unusable, not a
    // programming error -- report it invalid and move on.
    if (num_sc == 0 || pk.size() != num_sc || p_sum0.size() != num_sc ||
        p_sum90.size() != num_sc) {
      out[k].valid = false;
      continue;
    }

    // Wideband combining (Eq. 14): ratio per subcarrier, then the
    // p0-weighted average == <h_0, h_k> / ||h_0||^2. Subcarriers whose
    // powers are non-finite carry no vote.
    cplx weighted_sum{};
    double weight_total = 0.0;
    for (std::size_t f = 0; f < num_sc; ++f) {
      if (!(p0[f] > 0.0) || !std::isfinite(p0[f]) || !std::isfinite(pk[f]) ||
          !std::isfinite(p_sum0[f]) || !std::isfinite(p_sum90[f])) {
        continue;
      }
      const cplx r = ratio_from_powers(p0[f], pk[f], p_sum0[f] * scale0,
                                       p_sum90[f] * scale90);
      weighted_sum += p0[f] * r;
      weight_total += p0[f];
    }
    if (weight_total <= 0.0) {
      out[k].valid = false;
      continue;
    }
    const cplx ratio = weighted_sum / weight_total;
    if (!std::isfinite(ratio.real()) || !std::isfinite(ratio.imag())) {
      out[k].valid = false;
      continue;
    }
    out[k].ratio = ratio;
  }

  if (budget != nullptr) *budget = local_budget;
  if (measured_single_powers != nullptr) {
    *measured_single_powers = single_powers;
  }
  return out;
}

}  // namespace mmr::core
