#include "sim/sweep.h"

#include <algorithm>
#include <chrono>

#ifdef __unix__
#include <time.h>
#endif

#include "common/error.h"
#include "common/stats.h"

namespace mmr::sim {

double thread_cpu_now_s() {
#ifdef __unix__
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
  }
#endif
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SweepRunner::SweepRunner(SweepConfig config) : config_(config) {
  MMR_EXPECTS(config_.num_trials > 0);
  jobs_ = config_.jobs == 0 ? ThreadPool::hardware_jobs() : config_.jobs;
}

SweepSummary summarize_sweep(
    std::span<const SweepTrial<core::LinkSummary>> trials) {
  MMR_EXPECTS(!trials.empty());
  SweepSummary out;
  out.num_trials = trials.size();
  RVec rel, outage, tput, trp;
  rel.reserve(trials.size());
  outage.reserve(trials.size());
  tput.reserve(trials.size());
  trp.reserve(trials.size());
  for (const auto& trial : trials) {
    rel.push_back(trial.value.reliability);
    outage.push_back(1.0 - trial.value.reliability);
    tput.push_back(trial.value.mean_throughput_bps);
    trp.push_back(trial.value.throughput_reliability_product);
  }
  out.mean_reliability = mean(rel);
  out.median_reliability = median(rel);
  out.p25_reliability = percentile(rel, 25.0);
  out.p75_reliability = percentile(rel, 75.0);
  out.median_outage = median(outage);
  out.mean_throughput_bps = mean(tput);
  out.median_throughput_bps = median(tput);
  out.mean_trp_bps = mean(trp);
  out.median_trp_bps = median(trp);
  return out;
}

namespace {

void json_kv(std::ostream& os, const char* key, double value,
             bool trailing_comma = true) {
  os << "\"" << key << "\": " << value;
  if (trailing_comma) os << ", ";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\n') {  // exception texts can be multi-line
      out += "\\n";
      continue;
    }
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void write_sweep_json(std::ostream& os, const std::string& bench_name,
                      std::span<const SweepTrial<core::LinkSummary>> trials,
                      const SweepTiming& timing,
                      std::span<const std::string> labels,
                      std::span<const TrialFailure> failures) {
  MMR_EXPECTS(labels.empty() || labels.size() == trials.size());
  // Quarantined trials keep their slot but must not poison the aggregate.
  std::vector<bool> quarantined(trials.size(), false);
  for (const TrialFailure& f : failures) {
    MMR_EXPECTS(f.index < trials.size());
    if (f.quarantined()) quarantined[f.index] = true;
  }
  std::vector<SweepTrial<core::LinkSummary>> survivors;
  if (!failures.empty()) {
    survivors.reserve(trials.size());
    for (std::size_t i = 0; i < trials.size(); ++i) {
      if (!quarantined[i]) survivors.push_back(trials[i]);
    }
  }
  const auto flags = os.flags();
  const auto precision = os.precision();
  os.precision(10);
  os << "{\"bench\": \"" << json_escape(bench_name) << "\", ";
  os << "\"jobs\": " << timing.jobs << ", ";
  json_kv(os, "wall_s", timing.wall_s);
  json_kv(os, "serial_equivalent_s", timing.serial_equivalent_s);
  json_kv(os, "speedup", timing.speedup());
  os << "\"trials\": [";
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const auto& trial = trials[i];
    if (i > 0) os << ", ";
    os << "{\"index\": " << trial.index << ", ";
    if (!labels.empty()) {
      os << "\"label\": \"" << json_escape(labels[i]) << "\", ";
    }
    if (quarantined[i]) os << "\"failed\": true, ";
    json_kv(os, "wall_s", trial.wall_s);
    json_kv(os, "cpu_s", trial.cpu_s);
    json_kv(os, "reliability", trial.value.reliability);
    json_kv(os, "mean_throughput_bps", trial.value.mean_throughput_bps);
    json_kv(os, "trp_bps", trial.value.throughput_reliability_product,
            /*trailing_comma=*/false);
    os << "}";
  }
  os << "], ";
  if (!failures.empty()) {
    os << "\"failures\": [";
    for (std::size_t i = 0; i < failures.size(); ++i) {
      const TrialFailure& f = failures[i];
      if (i > 0) os << ", ";
      os << "{\"index\": " << f.index << ", \"stream_seed\": "
         << f.stream_seed << ", \"attempts\": " << f.attempts
         << ", \"timed_out\": " << (f.timed_out ? "true" : "false")
         << ", \"quarantined\": " << (f.quarantined() ? "true" : "false")
         << ", \"error\": \"" << json_escape(f.error) << "\"}";
    }
    os << "], ";
  }
  const SweepSummary agg = failures.empty()
                               ? summarize_sweep(trials)
                               : (survivors.empty()
                                      ? SweepSummary{}
                                      : summarize_sweep(survivors));
  os << "\"aggregate\": {";
  json_kv(os, "mean_reliability", agg.mean_reliability);
  json_kv(os, "median_reliability", agg.median_reliability);
  json_kv(os, "p25_reliability", agg.p25_reliability);
  json_kv(os, "p75_reliability", agg.p75_reliability);
  json_kv(os, "median_outage", agg.median_outage);
  json_kv(os, "mean_throughput_bps", agg.mean_throughput_bps);
  json_kv(os, "median_throughput_bps", agg.median_throughput_bps);
  json_kv(os, "mean_trp_bps", agg.mean_trp_bps);
  json_kv(os, "median_trp_bps", agg.median_trp_bps, /*trailing_comma=*/false);
  os << "}}\n";
  os.flags(flags);
  os.precision(precision);
}

}  // namespace mmr::sim
