#include "sim/engine.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "baselines/oracle.h"
#include "common/constants.h"
#include "common/error.h"
#include "core/delay_multibeam.h"
#include "sim/journal.h"
#include "sim/telemetry.h"
#include "sim/workspace.h"

namespace mmr::sim {
namespace {

[[noreturn]] void throw_unknown(const char* kind, const std::string& name,
                                const std::vector<std::string>& registered) {
  std::ostringstream msg;
  msg << "unknown " << kind << " '" << name << "'; registered " << kind
      << "s: ";
  for (std::size_t i = 0; i < registered.size(); ++i) {
    if (i > 0) msg << ", ";
    msg << registered[i];
  }
  throw std::invalid_argument(msg.str());
}

void add_link_blockers(LinkWorld& world, channel::Vec2 link_tx,
                       channel::Vec2 link_ue,
                       const std::vector<BlockerSpec>& blockers) {
  for (const BlockerSpec& b : blockers) {
    world.add_blocker(crossing_blocker(link_tx, link_ue, b.crossing_time_s,
                                       b.speed_mps, b.depth_db));
  }
}

LinkWorld make_indoor(const ScenarioSpec& spec, bool force_sparse) {
  ScenarioConfig config = spec.config;
  if (force_sparse) config.sparse_room = true;
  LinkWorld world = make_indoor_world(config, spec.ue_velocity,
                                      spec.ue_rotation_rate_rad_s,
                                      spec.ue_start);
  add_link_blockers(world, {0.5, 6.2}, spec.ue_start, spec.blockers);
  return world;
}

// Reflection-poor space (Section 8 / IRS future work): the only surface is
// a distant wooden wall whose reflection arrives too weak for training, so
// the link is effectively single-path until an IRS panel is deployed.
LinkWorld make_indoor_poor(const ScenarioSpec& spec) {
  channel::Environment env(kCarrier28GHz);
  env.add_wall({{{0.0, 0.0}, {10.0, 0.0}}, channel::Material::wood()});
  const channel::Pose tx{{0.5, 6.2}, 0.0};
  auto traj = std::make_shared<channel::StaticPose>(
      channel::Pose{spec.ue_start, kPi});
  WorldConfig wc;
  wc.spec = {kCarrier28GHz, kBandwidth400MHz, 64};
  wc.budget = phy::LinkBudget::paper_indoor();
  wc.budget.tx_power_dbm = spec.config.tx_power_dbm;
  wc.tx_ula = {spec.config.tx_elements, 0.5};
  LinkWorld world(std::move(env), tx, std::move(traj), wc,
                  Rng(spec.config.seed));
  if (spec.irs_gain_db > 0.0) {
    channel::IrsPanel panel;
    panel.position = spec.irs_position;
    panel.gain_db = spec.irs_gain_db;
    world.add_irs(panel);
  }
  add_link_blockers(world, {0.5, 6.2}, spec.ue_start, spec.blockers);
  return world;
}

LinkWorld make_outdoor(const ScenarioSpec& spec) {
  LinkWorld world =
      make_outdoor_world(spec.config, spec.link_distance_m, spec.ue_velocity);
  add_link_blockers(world, {0.0, 0.0}, {spec.link_distance_m, 0.0},
                    spec.blockers);
  return world;
}

void register_builtin_scenarios(ScenarioRegistry& reg) {
  reg.add("indoor",
          [](const ScenarioSpec& s) { return make_indoor(s, false); });
  reg.add("indoor_sparse",
          [](const ScenarioSpec& s) { return make_indoor(s, true); });
  reg.add("indoor_poor",
          [](const ScenarioSpec& s) { return make_indoor_poor(s); });
  reg.add("outdoor",
          [](const ScenarioSpec& s) { return make_outdoor(s); });
}

void register_builtin_controllers(ControllerRegistry& reg) {
  using Ptr = std::unique_ptr<core::BeamController>;
  reg.add("mmreliable", [](const LinkWorld& w, const ScenarioConfig& c,
                           const ControllerSpec& s) -> Ptr {
    return make_mmreliable(w, c, s.max_beams);
  });
  // Fig. 17c's ablated controller: default maintenance training (not the
  // scenario factory's widened separation) with the tracking and
  // constructive-combining stages individually toggleable.
  reg.add("mmreliable_ablation",
          [](const LinkWorld& w, const ScenarioConfig& /*c*/,
             const ControllerSpec& s) -> Ptr {
            const array::Ula ula = w.config().tx_ula;
            core::MaintenanceConfig mc;
            mc.max_beams = s.max_beams;
            mc.bandwidth_hz = w.config().spec.bandwidth_hz;
            mc.outage_power_linear = w.power_for_snr(kOutageSnrDb);
            mc.enable_tracking = s.enable_tracking;
            mc.enable_cc_refresh = s.enable_cc_refresh;
            return std::make_unique<core::MmReliableController>(
                ula, sector_codebook(ula), mc);
          });
  reg.add("delay_multibeam", [](const LinkWorld& w, const ScenarioConfig& c,
                                const ControllerSpec& s) -> Ptr {
    const array::Ula ula = w.config().tx_ula;
    core::DelayMultibeamConfig dc;
    dc.carrier_hz = w.config().spec.carrier_hz;
    dc.bandwidth_hz = w.config().spec.bandwidth_hz;
    dc.max_beams = s.max_beams;
    return std::make_unique<core::DelayMultibeamController>(
        ula, sector_codebook(ula, c.codebook_size), dc);
  });
  reg.add("reactive", [](const LinkWorld& w, const ScenarioConfig& c,
                         const ControllerSpec& /*s*/) -> Ptr {
    return make_reactive(w, c);
  });
  // The paper's frozen single-beam comparison (Fig. 16): trains once and
  // never reacts (outage threshold 0 disables retraining).
  reg.add("single_frozen", [](const LinkWorld& w, const ScenarioConfig& /*c*/,
                              const ControllerSpec& /*s*/) -> Ptr {
    const array::Ula ula = w.config().tx_ula;
    baselines::ReactiveConfig rc;
    rc.outage_power_linear = 0.0;
    return std::make_unique<baselines::ReactiveSingleBeam>(
        ula, sector_codebook(ula), rc);
  });
  reg.add("beamspy", [](const LinkWorld& w, const ScenarioConfig& c,
                        const ControllerSpec& /*s*/) -> Ptr {
    return make_beamspy(w, c);
  });
  reg.add("widebeam", [](const LinkWorld& w, const ScenarioConfig& c,
                         const ControllerSpec& /*s*/) -> Ptr {
    return make_widebeam(w, c);
  });
  reg.add("oracle", [](const LinkWorld& w, const ScenarioConfig& /*c*/,
                       const ControllerSpec& /*s*/) -> Ptr {
    return std::make_unique<baselines::Oracle>(
        [&w] { return w.true_per_antenna_channel(); });
  });
}

// Wall-clock watchdog for --trial-timeout-s. Trials register a deadline
// when they start and deregister on completion; a monitor thread warns on
// stderr the moment a deadline passes and remembers the index so the
// engine can attach a timed_out TrialFailure afterwards. The watchdog
// never kills a trial -- there is no safe way to cancel an arbitrary
// in-process computation -- it makes hangs observable and attributable.
class TrialWatchdog {
 public:
  explicit TrialWatchdog(double timeout_s) : timeout_s_(timeout_s) {
    if (enabled()) thread_ = std::thread([this] { loop(); });
  }

  ~TrialWatchdog() {
    if (!enabled()) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  bool enabled() const { return timeout_s_ > 0.0; }

  void begin(std::size_t index) {
    if (!enabled()) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      deadlines_[index] = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(timeout_s_));
    }
    cv_.notify_all();
  }

  void end(std::size_t index) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    deadlines_.erase(index);
  }

  /// Indices whose deadline passed (call after the sweep barrier).
  std::set<std::size_t> flagged() {
    std::lock_guard<std::mutex> lock(mutex_);
    return flagged_;
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      const auto now = std::chrono::steady_clock::now();
      auto next = now + std::chrono::hours(24);
      for (auto it = deadlines_.begin(); it != deadlines_.end();) {
        if (it->second <= now) {
          flagged_.insert(it->first);
          std::fprintf(stderr,
                       "mmr watchdog: trial %zu exceeded the %.3f s "
                       "trial timeout and is still running\n",
                       it->first, timeout_s_);
          it = deadlines_.erase(it);  // warn once per trial
        } else {
          next = std::min(next, it->second);
          ++it;
        }
      }
      cv_.wait_until(lock, next);
    }
  }

  const double timeout_s_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::size_t, std::chrono::steady_clock::time_point> deadlines_;
  std::set<std::size_t> flagged_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry* reg = [] {
    auto* r = new ScenarioRegistry();
    register_builtin_scenarios(*r);
    return r;
  }();
  return *reg;
}

void ScenarioRegistry::add(const std::string& name, Factory factory) {
  MMR_EXPECTS(!name.empty());
  MMR_EXPECTS(factory != nullptr);
  factories_[name] = std::move(factory);
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

LinkWorld ScenarioRegistry::make(const ScenarioSpec& spec) const {
  const auto it = factories_.find(spec.name);
  if (it == factories_.end()) throw_unknown("scenario", spec.name, names());
  return it->second(spec);
}

ControllerRegistry& ControllerRegistry::instance() {
  static ControllerRegistry* reg = [] {
    auto* r = new ControllerRegistry();
    register_builtin_controllers(*r);
    return r;
  }();
  return *reg;
}

void ControllerRegistry::add(const std::string& name, Factory factory) {
  MMR_EXPECTS(!name.empty());
  MMR_EXPECTS(factory != nullptr);
  factories_[name] = std::move(factory);
}

bool ControllerRegistry::contains(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::vector<std::string> ControllerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::unique_ptr<core::BeamController> ControllerRegistry::make(
    const LinkWorld& world, const ScenarioConfig& config,
    const ControllerSpec& spec) const {
  const auto it = factories_.find(spec.name);
  if (it == factories_.end()) throw_unknown("controller", spec.name, names());
  return it->second(world, config, spec);
}

EngineResult Engine::run(const ExperimentSpec& spec, TelemetrySink* sink) {
  return run(spec, sink, EngineOptions{});
}

EngineResult Engine::run(const ExperimentSpec& spec, TelemetrySink* sink,
                         const EngineOptions& options) {
  MMR_EXPECTS(spec.trials >= 1);
  MMR_EXPECTS(options.trial_timeout_s >= 0.0);
  // Journal replay restores summaries/faults/labels but not per-tick
  // sample series; campaigns that need samples cannot resume.
  MMR_EXPECTS(options.journal == nullptr || !spec.record_samples);
  MMR_EXPECTS(options.shard.valid());
  // A sharded worker's sample table would be full of holes.
  MMR_EXPECTS(!options.shard.enabled() || !spec.record_samples);
  // A shard worker may only checkpoint into its own shard's journal.
  MMR_EXPECTS(options.journal == nullptr ||
              options.journal->shard() == options.shard);
  const ScenarioRegistry& scenarios = ScenarioRegistry::instance();
  const ControllerRegistry& controllers = ControllerRegistry::instance();
  // Fail fast on the authored names; `customize` may rewrite them per
  // trial, and those rewrites are validated inside the trial body.
  if (!scenarios.contains(spec.scenario.name)) {
    throw_unknown("scenario", spec.scenario.name, scenarios.names());
  }
  if (!controllers.contains(spec.controller.name)) {
    throw_unknown("controller", spec.controller.name, controllers.names());
  }

  EngineResult result;
  if (spec.label) result.labels.assign(spec.trials, "");
  if (spec.record_samples) result.samples.resize(spec.trials);
  result.fault_events.resize(spec.trials);
  // Per-trial RunConfigs survive the sweep so the sink replay can emit
  // faithful on_run_begin events (customize may vary them per trial).
  std::vector<RunConfig> run_configs(spec.trials);
  // Index-addressed failure slots (workers never share a slot).
  std::vector<std::unique_ptr<TrialFailure>> failure_slots(spec.trials);
  const std::map<std::size_t, JournalTrial>* journaled =
      options.journal != nullptr ? &options.journal->completed() : nullptr;
  TrialWatchdog watchdog(options.trial_timeout_s);

  SweepRunner runner({spec.trials, spec.jobs, spec.seed});
  // Trials only write to index-addressed slots; see sim/sweep.h for the
  // determinism contract.
  result.trials = runner.run([&](TrialContext& ctx) -> core::LinkSummary {
    if (options.shard.enabled() && !options.shard.owns(ctx.index)) {
      // Another shard owns this trial: leave a default slot. ctx was
      // derived but never drawn from, so the owned trials' streams are
      // exactly the 1-process streams.
      return core::LinkSummary{};
    }
    if (journaled != nullptr) {
      const auto it = journaled->find(ctx.index);
      if (it != journaled->end()) {
        // Checkpoint replay: restore the journaled result bit-exactly
        // without executing the trial. (Timing is patched in after the
        // barrier; the runner would otherwise overwrite it with the
        // near-zero replay cost.)
        const JournalTrial& jt = it->second;
        if (spec.label) result.labels[ctx.index] = jt.label;
        result.fault_events[ctx.index] = jt.faults;
        run_configs[ctx.index] = spec.run;
        return jt.summary;
      }
    }
    const std::size_t max_attempts = 1 + options.trial_retries;
    std::string last_error;
    core::LinkSummary summary;
    double wall_s = 0.0, cpu_s = 0.0;
    bool succeeded = false;
    // Per-trial scratch arena for the world's scoring hot path; reset
    // between retry attempts (a retried trial reuses the same chunks and
    // stays bit-identical -- pinned by the props tier).
    TrialWorkspace workspace;
    watchdog.begin(ctx.index);
    for (std::size_t attempt = 0; attempt < max_attempts && !succeeded;
         ++attempt) {
      workspace.reset();
      try {
        // Every attempt restarts from pristine copies of the spec and the
        // SAME deterministic Rng stream (ctx is untouched), so a retried
        // trial that succeeds is bit-identical to one that succeeded
        // first try.
        ScenarioSpec scenario = spec.scenario;
        ControllerSpec controller = spec.controller;
        RunConfig rc = spec.run;
        if (spec.seed_policy == SeedPolicy::kPerTrialStream) {
          scenario.config.seed = ctx.stream_seed;
        }
        if (spec.customize) spec.customize(ctx, scenario, controller, rc);
        if (spec.label) result.labels[ctx.index] = spec.label(ctx);
        // A live plan with seed 0 gets a per-trial stream decoupled from
        // the world seed, so jobs=K stays bit-identical to jobs=1.
        if (rc.faults.enabled() && rc.faults.seed == 0) {
          rc.faults.seed =
              Rng::derive_stream_seed(ctx.stream_seed, kFaultSeedStream);
        }
        run_configs[ctx.index] = rc;

        const auto start = std::chrono::steady_clock::now();
        const double cpu_start = thread_cpu_now_s();
        LinkWorld world = scenarios.make(scenario);
        world.bind_workspace(&workspace);
        const std::unique_ptr<core::BeamController> ctrl =
            controllers.make(world, scenario.config, controller);
        RunResult rr = run_experiment(world, *ctrl, rc);
        cpu_s = thread_cpu_now_s() - cpu_start;
        wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
        if (spec.record_samples) {
          result.samples[ctx.index] = std::move(rr.samples);
        }
        result.fault_events[ctx.index] = std::move(rr.fault_events);
        summary = rr.summary;
        succeeded = true;
      } catch (const std::exception& e) {
        last_error = e.what();
      } catch (...) {
        last_error = "unknown exception";
      }
    }
    watchdog.end(ctx.index);
    if (!succeeded) {
      // Quarantine: the trial keeps its slot (default summary), the sweep
      // keeps running, and the failure is reported out-of-band.
      auto failure = std::make_unique<TrialFailure>();
      failure->index = ctx.index;
      failure->stream_seed = ctx.stream_seed;
      failure->attempts = max_attempts;
      failure->error = last_error;
      failure_slots[ctx.index] = std::move(failure);
      return core::LinkSummary{};
    }
    if (options.journal != nullptr) {
      // Checkpoint the completed trial (append + fsync). An I/O failure
      // here intentionally propagates and aborts the sweep: continuing
      // without durability would break the resume contract silently.
      JournalTrial jt;
      jt.index = ctx.index;
      jt.wall_s = wall_s;
      jt.cpu_s = cpu_s;
      if (spec.label) jt.label = result.labels[ctx.index];
      jt.summary = summary;
      jt.faults = result.fault_events[ctx.index];
      options.journal->record(jt);
    }
    return summary;
  });
  result.timing = runner.timing();
  if (options.shard.enabled()) {
    result.skipped_trials =
        spec.trials - options.shard.owned_of(spec.trials);
  }

  // The worker's pass over its owned trials is complete: seal the shard
  // journal (fsync'd count + fingerprint footer) so the file becomes
  // safe to copy between machines and the merger can tell "finished"
  // from "crashed mid-run". Unsharded journals are never copied around,
  // so they stay seal-free and byte-compatible with earlier formats.
  if (options.journal != nullptr && options.shard.enabled()) {
    options.journal->seal();
  }

  // Patch replayed trials' timing back to what the original run measured
  // (the runner only saw the near-zero replay cost).
  if (journaled != nullptr) {
    for (const auto& [index, jt] : *journaled) {
      if (index >= result.trials.size()) continue;
      result.trials[index].wall_s = jt.wall_s;
      result.trials[index].cpu_s = jt.cpu_s;
      ++result.replayed_trials;
    }
  }

  // Fold watchdog flags into the failure slots: a flagged trial that
  // completed anyway gets a timing-only TrialFailure (empty error).
  for (std::size_t index : watchdog.flagged()) {
    if (failure_slots[index] == nullptr) {
      failure_slots[index] = std::make_unique<TrialFailure>();
      failure_slots[index]->index = index;
      failure_slots[index]->stream_seed =
          Rng::derive_stream_seed(spec.seed, index);
      failure_slots[index]->attempts = 1 + options.trial_retries;
    }
    failure_slots[index]->timed_out = true;
  }
  for (auto& slot : failure_slots) {
    if (slot != nullptr) result.failures.push_back(std::move(*slot));
  }

  if (options.freeze_timing) {
    result.timing.wall_s = 0.0;
    result.timing.serial_equivalent_s = 0.0;
    for (auto& trial : result.trials) {
      trial.wall_s = 0.0;
      trial.cpu_s = 0.0;
    }
  }

  // Quarantined trials carry default summaries; keep them out of the
  // aggregate so one bad trial cannot poison the campaign statistics.
  bool any_quarantined = false;
  for (const TrialFailure& f : result.failures) {
    any_quarantined = any_quarantined || f.quarantined();
  }
  if (!any_quarantined) {
    result.aggregate = summarize_sweep(result.trials);
  } else {
    std::vector<SweepTrial<core::LinkSummary>> survivors;
    std::vector<bool> quarantined(result.trials.size(), false);
    for (const TrialFailure& f : result.failures) {
      if (f.quarantined()) quarantined[f.index] = true;
    }
    for (std::size_t i = 0; i < result.trials.size(); ++i) {
      if (!quarantined[i]) survivors.push_back(result.trials[i]);
    }
    result.aggregate =
        survivors.empty() ? SweepSummary{} : summarize_sweep(survivors);
  }

  if (sink != nullptr) {
    std::size_t next_failure = 0;
    for (std::size_t i = 0; i < result.trials.size(); ++i) {
      if (spec.record_samples) {
        sink->on_run_begin(run_configs[i]);
        for (const core::LinkSample& s : result.samples[i]) sink->on_sample(s);
      }
      for (const core::FaultEvent& ev : result.fault_events[i]) {
        sink->on_fault(ev);
      }
      if (next_failure < result.failures.size() &&
          result.failures[next_failure].index == i) {
        sink->on_trial_failure(result.failures[next_failure]);
        ++next_failure;
      }
      sink->on_run_end(result.trials[i].value);
    }
    SweepRecord record;
    record.name = spec.name;
    record.trials = result.trials;
    record.timing = result.timing;
    if (spec.label) record.labels = result.labels;
    record.failures = result.failures;
    sink->on_sweep(record);
  }
  return result;
}

}  // namespace mmr::sim
