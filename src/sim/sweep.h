// Deterministic parallel Monte-Carlo sweep engine.
//
// SweepRunner fans N independent trials across a work-stealing ThreadPool
// and guarantees that the per-trial results are BIT-IDENTICAL to a serial
// run of the same sweep:
//   * every trial draws from an Rng stream derived purely from
//     (base_seed, trial index) via Rng::fork(stream_id), so scheduling
//     order cannot perturb random draws;
//   * trials share no mutable state -- each builds its own world and
//     controller and writes its result into an index-addressed slot;
//   * aggregation happens after the barrier, walking trials in index
//     order, so floating-point reductions are order-stable too.
// jobs=1 therefore produces exactly the same bytes as jobs=K.
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/metrics.h"

namespace mmr::sim {

struct SweepConfig {
  std::size_t num_trials = 1;
  /// Worker threads; 1 runs inline on the calling thread, 0 means
  /// ThreadPool::hardware_jobs().
  std::size_t jobs = 1;
  /// Root of the per-trial stream derivation (see TrialContext).
  std::uint64_t base_seed = 1;
};

/// Everything a trial may depend on. `stream_seed` is
/// Rng::derive_stream_seed(base_seed, index); `rng` is an Rng seeded with
/// it. Trials must take all randomness from these (or from constants) --
/// never from globals, time, or shared generators.
struct TrialContext {
  std::size_t index = 0;
  std::uint64_t stream_seed = 0;
  Rng rng;
};

template <typename T>
struct SweepTrial {
  std::size_t index = 0;
  double wall_s = 0.0;  ///< this trial's own wall-clock time
  /// CPU time of the worker thread while running this trial. Unlike
  /// wall_s it does not inflate when workers timeshare a core, so it is
  /// the honest per-trial cost estimate.
  double cpu_s = 0.0;
  T value{};
};

struct SweepTiming {
  double wall_s = 0.0;  ///< whole-sweep wall-clock
  /// Sum of per-trial CPU times: what a serial run of the same trials
  /// would cost. speedup() stays ~1 on an oversubscribed single core
  /// (where per-trial wall-clock would claim a bogus jobs-fold win).
  double serial_equivalent_s = 0.0;
  std::size_t jobs = 1;
  /// Parallel efficiency: how much faster the sweep ran than executing
  /// its trials back-to-back on one thread.
  double speedup() const {
    return wall_s > 0.0 ? serial_equivalent_s / wall_s : 1.0;
  }
};

/// CPU time consumed so far by the calling thread [s] (falls back to
/// wall-clock where no thread CPU clock exists).
double thread_cpu_now_s();

class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig config);

  const SweepConfig& config() const { return config_; }
  /// Resolved worker count (config jobs with 0 mapped to hardware).
  std::size_t jobs() const { return jobs_; }
  /// Timing of the most recent run().
  const SweepTiming& timing() const { return timing_; }

  /// Run fn(TrialContext&) once per trial; results come back in trial
  /// index order regardless of which worker ran what. Exceptions from
  /// trial bodies propagate (lowest trial index first).
  template <typename Fn>
  auto run(Fn&& fn)
      -> std::vector<SweepTrial<std::invoke_result_t<Fn&, TrialContext&>>> {
    using R = std::invoke_result_t<Fn&, TrialContext&>;
    std::vector<SweepTrial<R>> trials(config_.num_trials);
    const auto sweep_start = std::chrono::steady_clock::now();
    auto one_trial = [&](std::size_t i) {
      TrialContext ctx;
      ctx.index = i;
      ctx.stream_seed = Rng::derive_stream_seed(config_.base_seed, i);
      ctx.rng = Rng(ctx.stream_seed);
      const auto trial_start = std::chrono::steady_clock::now();
      const double cpu_start = thread_cpu_now_s();
      trials[i].value = fn(ctx);
      trials[i].index = i;
      trials[i].cpu_s = thread_cpu_now_s() - cpu_start;
      trials[i].wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        trial_start)
              .count();
    };
    if (jobs_ <= 1 || config_.num_trials <= 1) {
      for (std::size_t i = 0; i < config_.num_trials; ++i) one_trial(i);
    } else {
      ThreadPool pool(std::min(jobs_, config_.num_trials));
      pool.parallel_for(config_.num_trials, one_trial);
    }
    timing_.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();
    timing_.serial_equivalent_s = 0.0;
    for (const auto& trial : trials) {
      timing_.serial_equivalent_s += trial.cpu_s;
    }
    timing_.jobs = jobs_;
    return trials;
  }

 private:
  SweepConfig config_;
  std::size_t jobs_ = 1;
  SweepTiming timing_;
};

/// A trial that exhausted its retry budget (or tripped the wall-clock
/// watchdog) during a durable campaign. Quarantined trials keep their slot
/// in the sweep (with a default-constructed value) so indices stay stable,
/// but are excluded from aggregates and reported out-of-band.
struct TrialFailure {
  std::size_t index = 0;
  /// The trial's deterministic Rng stream seed -- enough to re-run exactly
  /// this trial in isolation (`--seed` stays the campaign seed; the stream
  /// is derived from (seed, index)).
  std::uint64_t stream_seed = 0;
  /// Attempts made (1 + retries consumed).
  std::size_t attempts = 1;
  /// what() of the last exception, empty for pure watchdog flags.
  std::string error;
  /// True when the wall-clock watchdog flagged the trial as exceeding
  /// --trial-timeout-s. A flagged trial that eventually completed keeps
  /// its value (quarantined == !error.empty()).
  bool timed_out = false;

  /// Quarantined trials failed outright; timed-out-but-completed trials
  /// are flagged only and keep their results.
  bool quarantined() const { return !error.empty(); }
};

/// Order-stable aggregate over a sweep of LinkSummary trials (computed by
/// walking trials in index order; identical for any jobs count).
struct SweepSummary {
  std::size_t num_trials = 0;
  double mean_reliability = 0.0;
  double median_reliability = 0.0;
  double p25_reliability = 0.0;
  double p75_reliability = 0.0;
  /// Median of per-trial (1 - reliability): the sweep's outage figure.
  double median_outage = 0.0;
  double mean_throughput_bps = 0.0;
  double median_throughput_bps = 0.0;
  double mean_trp_bps = 0.0;    ///< throughput-reliability product
  double median_trp_bps = 0.0;
};

SweepSummary summarize_sweep(
    std::span<const SweepTrial<core::LinkSummary>> trials);

/// Emit the bench JSON record: sweep timing (per-trial wall-clock,
/// serial-equivalent time, speedup), per-trial LinkSummary values, and the
/// aggregate. `labels` (optional, one per trial) tags trials with e.g. a
/// scheme name.
///
/// `failures` (optional) reports retry-exhausted / watchdog-flagged trials
/// from a durable campaign. When non-empty, quarantined trial entries gain
/// a `"failed": true` field, the aggregate is computed over the surviving
/// trials only, and a trailing `"failures": [...]` array carries the
/// details. When empty (every pre-existing caller) the emitted bytes are
/// unchanged.
void write_sweep_json(std::ostream& os, const std::string& bench_name,
                      std::span<const SweepTrial<core::LinkSummary>> trials,
                      const SweepTiming& timing,
                      std::span<const std::string> labels = {},
                      std::span<const TrialFailure> failures = {});

}  // namespace mmr::sim
