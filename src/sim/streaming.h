// Streaming service mode: a long-running session timeline with bounded
// memory (ROADMAP item 3 -- the refactor from "sweep engine" to
// "traffic-serving system").
//
// Where a campaign runs trial i to completion and aggregates at the end,
// the StreamingService ticks epoch t across a sharded table of live UE
// sessions: each shard owns a net::Network session table (driven through
// the resumable step_tick interface), a PR-6 TrialWorkspace arena, a
// churn stream, and a set of O(1) streaming accumulators
// (common/streaming_stats.h). Sessions join and leave mid-run through a
// Poisson-arrival / exponential-lifetime churn model; retired slots are
// recycled, so RSS stays flat no matter how long the service runs.
//
// Determinism contract:
//   * The shard count is a SPEC field, independent of the worker count.
//     Shard k's network seeds from spec.seed (shard 0 verbatim, like the
//     engine's link-0 convention; shard k > 0 from Rng::derive_stream_seed),
//     its churn from a dedicated sub-stream -- so what each shard computes
//     is a pure function of the spec.
//   * jobs only parallelizes the per-epoch shard sweep over the PR-1
//     ThreadPool; accumulators are shard-local and fold in SHARD-INDEX
//     ORDER on the orchestrator thread at every snapshot boundary. With
//     freeze_timing (zeroing the wall-clock-derived rate field), jobs=K
//     snapshot output is BYTE-IDENTICAL to jobs=1.
//   * A 1-session/1-shard service with churn off collapses to the
//     engine-path trial: same seed, same tick sequence, same per-tick
//     sample bits (pinned by tests/streaming).
//
// Sharding approximation: cross-link interference and handover are scoped
// WITHIN a shard (each shard is its own interference domain). A 1-shard
// service is exact; more shards trade cross-shard coupling for parallel
// scaling -- the same trade Terragraph-style deployments make at cluster
// boundaries.
//
// Telemetry backpressure: snapshots deliver inline by default (fully
// deterministic). With async_snapshots a bounded ring queue decouples the
// service from a slow sink; when the queue is full the OLDEST snapshot is
// shed and a cumulative dropped-count watermark rides every later
// snapshot, so a consumer can always tell how much it missed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/streaming_stats.h"
#include "common/thread_pool.h"
#include "net/network.h"
#include "sim/telemetry.h"

namespace mmr::sim {

/// Session churn: Poisson arrivals at `arrival_rate_per_s` (service-wide,
/// split evenly across shards) with exponential lifetimes of mean
/// `mean_lifetime_s` (0 = sessions never leave). Draws come from per-shard
/// Rng sub-streams, so churn is deterministic and jobs-independent.
struct ChurnModel {
  double arrival_rate_per_s = 0.0;
  double mean_lifetime_s = 0.0;

  bool enabled() const {
    return arrival_rate_per_s > 0.0 || mean_lifetime_s > 0.0;
  }
  void validate() const;
};

struct StreamingSpec {
  std::string name = "streaming";
  /// Per-link template, cell layout, tick/outage config (network.run).
  /// network.num_cells/ues_per_cell define the cell topology; the LIVE
  /// session count is `sessions` + churn, not the batch table size.
  net::NetworkSpec network;
  /// Sessions joined at t = 0 (round-robin across shards).
  std::size_t sessions = 1;
  /// Hard cap on live sessions under churn (0 = uncapped). Applied per
  /// shard as max_sessions / shards.
  std::size_t max_sessions = 0;
  /// Shard count -- part of the RESULT's identity, never derived from the
  /// worker count.
  std::size_t shards = 1;
  /// Worker threads for the per-epoch shard sweep (0 = hardware_jobs()).
  std::size_t jobs = 1;
  std::uint64_t seed = 1;
  /// Shared-timeline horizon for run() [s].
  double duration_s = 1.0;
  /// Snapshot cadence [s] (>= network.run.tick_s; rounded to ticks).
  double snapshot_every_s = 0.1;
  ChurnModel churn;
  /// Zero the wall-clock-derived snapshot fields (session_ticks_per_s)
  /// so output is byte-stable across machines and thread counts.
  bool freeze_timing = false;
  /// Deliver snapshots through a bounded queue + drain thread instead of
  /// inline (drop-oldest load shedding; see header comment).
  bool async_snapshots = false;
  /// Ring capacity of the async snapshot queue.
  std::size_t queue_capacity = 64;

  void validate() const;
};

/// Final state of a streaming run: the last cumulative snapshot plus
/// queue/churn totals.
struct StreamingResult {
  std::uint64_t epochs = 0;
  std::uint64_t snapshots_emitted = 0;
  std::uint64_t snapshots_dropped = 0;
  std::uint64_t total_joined = 0;
  std::uint64_t total_left = 0;
  std::uint64_t live_sessions = 0;
  /// Cumulative-field snapshot at the final epoch (window fields cover
  /// the partial last window).
  StreamSnapshot final_snapshot;
};

/// The long-running service loop. Construct, then either run() the
/// configured horizon or drive begin()/step_epoch()/finish() manually.
class StreamingService {
 public:
  /// `sink` (optional) receives on_snapshot records; it must outlive the
  /// service. Ownership of nothing is taken.
  explicit StreamingService(const StreamingSpec& spec,
                            TelemetrySink* sink = nullptr);
  ~StreamingService();

  StreamingService(const StreamingService&) = delete;
  StreamingService& operator=(const StreamingService&) = delete;

  /// begin + duration_s worth of step_epoch + finish.
  StreamingResult run();

  /// Build the shard tables and join the initial sessions at t = 0.
  void begin();
  /// Advance ONE tick across every live session in every shard (churn,
  /// then network step, then accumulation), emitting a snapshot when the
  /// epoch crosses the cadence boundary. With jobs=1 the shards step
  /// inline on the calling thread and the steady-state loop is
  /// allocation-free (no churn, no snapshot boundary, slot capacities
  /// plateaued -- pinned by the alloc tier); jobs>1 fans the sweep over
  /// the pool at the cost of per-epoch task packaging.
  void step_epoch();
  /// Emit a final snapshot if the last window is non-empty, drain the
  /// async queue, and return the totals.
  StreamingResult finish();

  std::uint64_t epoch() const { return epoch_; }
  /// Live sessions across all shards (valid between epochs).
  std::size_t live_sessions() const;
  /// Snapshots shed by the async queue so far.
  std::uint64_t dropped_snapshots() const;

 private:
  struct Shard;
  struct SnapshotQueue;

  void process_churn(Shard& shard, double t_s);
  void accumulate(Shard& shard, double t_s);
  /// Fold every shard's accumulators (shard-index order) into a snapshot
  /// and deliver it (inline or queued). Resets the shard windows.
  void emit_snapshot(double t_s);
  void deliver(const StreamSnapshot& snapshot);

  StreamingSpec spec_;
  TelemetrySink* sink_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Null when the effective jobs count is 1 (inline shard sweep).
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<SnapshotQueue> queue_;
  bool begun_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t snapshot_index_ = 0;
  std::uint64_t ticks_per_snapshot_ = 1;
  /// Cumulative scored session-ticks at the previous snapshot (rate calc).
  std::uint64_t last_snapshot_ticks_ = 0;
  double last_snapshot_wall_s_ = 0.0;
  StreamSnapshot last_snapshot_;
};

}  // namespace mmr::sim
