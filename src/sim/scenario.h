// Canned evaluation scenarios matching the paper's Section 6 setups, plus
// the controller factory used by the end-to-end benches. Everything takes
// an explicit seed so figure reproductions are deterministic.
#pragma once

#include <memory>
#include <string>

#include "array/codebook.h"
#include "baselines/beamspy.h"
#include "baselines/reactive_single_beam.h"
#include "baselines/widebeam.h"
#include "core/maintenance.h"
#include "sim/world.h"

namespace mmr::sim {

/// Standard 120-degree sector codebook (paper scans a 120-degree sector).
array::Codebook sector_codebook(const array::Ula& ula, std::size_t size = 64);

struct ScenarioConfig {
  std::size_t tx_elements = 8;  ///< azimuth elements (8x8 array -> 8)
  std::size_t codebook_size = 64;
  std::uint64_t seed = 1;
  /// Use the sparse room (single strong reflector near the beam null):
  /// the regime where blocking a single beam causes a true outage.
  bool sparse_room = false;
  /// Conducted TX power [dBm]. Lower it to shrink the link margin --
  /// blockage experiments need peak SNR low enough that a blocked single
  /// beam actually falls below the 6 dB decode floor.
  double tx_power_dbm = 20.0;
};

/// Indoor conference room, gNB at one end, UE ~7 m away.
/// `ue_velocity` / `ue_rotation_rate` build the trajectory; zeros = static.
LinkWorld make_indoor_world(const ScenarioConfig& config,
                            channel::Vec2 ue_velocity = {0.0, 0.0},
                            double ue_rotation_rate_rad_s = 0.0,
                            channel::Vec2 ue_start = {7.0, 6.2});

/// Outdoor street link (default 40 m) next to the glass building.
LinkWorld make_outdoor_world(const ScenarioConfig& config,
                             double link_distance_m = 40.0,
                             channel::Vec2 ue_velocity = {0.0, 0.0});

/// Walking blocker that crosses the link midway at the given time.
channel::GeometricBlocker crossing_blocker(channel::Vec2 link_tx,
                                           channel::Vec2 link_ue,
                                           double crossing_time_s,
                                           double walking_speed_mps = 1.0,
                                           double depth_db = 26.0);

/// Controller factories sharing an outage threshold derived from a world.
std::unique_ptr<core::MmReliableController> make_mmreliable(
    const LinkWorld& world, const ScenarioConfig& config,
    std::size_t max_beams = 2);
std::unique_ptr<baselines::ReactiveSingleBeam> make_reactive(
    const LinkWorld& world, const ScenarioConfig& config);
std::unique_ptr<baselines::BeamSpy> make_beamspy(const LinkWorld& world,
                                                 const ScenarioConfig& config);
std::unique_ptr<baselines::WideBeam> make_widebeam(
    const LinkWorld& world, const ScenarioConfig& config);

}  // namespace mmr::sim
