// Per-trial scratch bundle: one Arena plus the pmr containers the
// LinkWorld scoring hot path (set_time + true_snr_db) draws from. The
// engine creates one TrialWorkspace per trial, binds it to the trial's
// world (LinkWorld::bind_workspace), and reset()s it between retry
// attempts -- so a steady-state trial performs zero heap allocations in
// its scoring loop (proven by tests/alloc/zero_alloc_test.cpp).
//
// Lifetime rules (see common/arena.h): the scratch containers live ON
// the arena, so reset() must destroy and reconstruct them -- their
// internal capacity pointers dangle the moment the arena rewinds. The
// std::optional dance below enforces that ordering. The workspace must
// outlive any world it is bound to.
#pragma once

#include <cstddef>
#include <memory_resource>
#include <optional>
#include <vector>

#include "common/arena.h"
#include "common/types.h"

namespace mmr::sim {

class TrialWorkspace {
 public:
  TrialWorkspace() { scratch_.emplace(&arena_); }

  TrialWorkspace(const TrialWorkspace&) = delete;
  TrialWorkspace& operator=(const TrialWorkspace&) = delete;

  /// Rewind the arena and rebuild the scratch containers on it. An
  /// identical trial replayed after reset() reuses the identical chunk
  /// memory (Arena::reset keeps chunks) and produces bit-identical
  /// results (pinned by the props tier).
  void reset() {
    scratch_.reset();  // destroy containers BEFORE their storage rewinds
    arena_.reset();
    scratch_.emplace(&arena_);
  }

  Arena& arena() { return arena_; }

  /// Cached subcarrier frequency grid (filled lazily by LinkWorld; keyed
  /// by size, which is the only spec-dependence after construction).
  std::pmr::vector<double>& freqs() { return scratch_->freqs; }
  /// CSI scratch for received_power_prepared (overwritten every call).
  std::pmr::vector<cplx>& csi() { return scratch_->csi; }
  /// Stable-order index scratch for the blockage event process.
  std::pmr::vector<std::size_t>& order() { return scratch_->order; }

 private:
  struct Scratch {
    explicit Scratch(std::pmr::memory_resource* mr)
        : freqs(mr), csi(mr), order(mr) {}
    std::pmr::vector<double> freqs;
    std::pmr::vector<cplx> csi;
    std::pmr::vector<std::size_t> order;
  };

  Arena arena_;
  std::optional<Scratch> scratch_;
};

}  // namespace mmr::sim
