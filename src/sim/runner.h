// Experiment runner: drives one controller through one world and scores
// the link at every tick, producing the LinkSample series all figures are
// computed from.
#pragma once

#include <vector>

#include "core/controller_base.h"
#include "core/events.h"
#include "core/metrics.h"
#include "sim/faults.h"
#include "sim/world.h"

namespace mmr::sim {

class TelemetrySink;

struct RunConfig {
  double duration_s = 1.0;     ///< paper: 1 s experiments
  double tick_s = 2.5e-3;      ///< CSI-RS cadence driving the controller
  double outage_snr_db = 6.0;  ///< decode floor
  /// Fixed protocol overhead discounted from throughput (reference
  /// signals etc.; paper Section 5.2: ~0.5%).
  double protocol_overhead = 0.005;
  /// Fault model applied to the probe/CSI path the controller sees. The
  /// default (all-zero) plan is inert: no injector is constructed and the
  /// run is byte-identical to one without the field.
  FaultPlan faults;
};

struct RunResult {
  std::vector<core::LinkSample> samples;
  core::LinkSummary summary;
  /// Injected faults and controller degradations, in emission order.
  /// Empty unless the run's FaultPlan is enabled.
  std::vector<core::FaultEvent> fault_events;
};

/// Run `controller` over `world` for the configured duration. The
/// controller is start()ed at t=0 and step()ped every tick; each tick is
/// scored with the TRUE channel under the controller's current weights.
///
/// `config` is validated up front (positive finite duration/tick, finite
/// outage threshold, protocol_overhead in [0, 1)); violations throw
/// std::logic_error per the common/error.h convention.
///
/// When `sink` is non-null it receives on_run_begin, one on_sample per
/// tick, and on_run_end with the summary -- the telemetry never perturbs
/// the result.
///
/// When `config.faults` is enabled, a FaultInjector (seeded from
/// config.faults.seed) is interposed between the world and the
/// controller, and every injected fault / controller degradation is
/// recorded in RunResult::fault_events and streamed to sink->on_fault as
/// it happens.
RunResult run_experiment(LinkWorld& world, core::BeamController& controller,
                         const RunConfig& config = {},
                         TelemetrySink* sink = nullptr);

}  // namespace mmr::sim
