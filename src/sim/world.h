// LinkWorld: one gNB-UE link inside an environment, advanced over time.
//
// This is the software stand-in for the paper's testbed: it owns the
// traced multipath state, moves the UE along its trajectory, runs blockers
// through the scene, and exposes exactly two faces:
//   * the IMPAIRED face (LinkProbeInterface) that controllers see -- CSI
//     and CIR estimates with AWGN, CFO, SFO, and timing jitter; and
//   * the TRUE face the experiment harness uses to score links (exact SNR
//     for any weights, exact per-antenna channel for the oracle).
#pragma once

#include <memory>
#include <vector>

#include "array/geometry.h"
#include "channel/blockage.h"
#include "channel/environment.h"
#include "channel/irs.h"
#include "channel/mobility.h"
#include "channel/wideband.h"
#include "common/rng.h"
#include "core/link_interface.h"
#include "phy/estimator.h"
#include "phy/link_budget.h"

namespace mmr::sim {

class TrialWorkspace;

struct WorldConfig {
  channel::WidebandSpec spec;
  phy::LinkBudget budget = phy::LinkBudget::paper_indoor();
  array::Ula tx_ula{8, 0.5};
  channel::RxFrontend rx = channel::RxFrontend::omni();
  /// UE array used by joint_probe_interface (directional-UE experiments).
  array::Ula ue_ula{4, 0.5};
  /// Pilot averaging gain of the channel estimator.
  double pilot_averaging_gain = 20.0;
  /// Std of the receiver timing error applied to CIR reports [s].
  double timing_jitter_std_s = 0.15e-9;
  /// SFO-induced phase slope std [rad/subcarrier].
  double sfo_slope_std_rad = 0.005;
};

class LinkWorld {
 public:
  LinkWorld(channel::Environment env, channel::Pose tx_pose,
            std::shared_ptr<const channel::Trajectory> ue_trajectory,
            WorldConfig config, Rng rng);

  void add_blocker(channel::GeometricBlocker blocker);
  void set_event_process(channel::BlockageEventProcess process);
  /// Deploy an intelligent reflecting surface (Section 8 future work):
  /// adds an engineered TX->panel->RX path on every trace.
  void add_irs(channel::IrsPanel panel);

  /// Bind per-trial scratch for the scoring hot path (set_time +
  /// true_power/true_snr_db): the frequency grid is cached and the CSI /
  /// path-order scratch live on the workspace arena, so the steady-state
  /// scoring loop allocates nothing. Results are bit-identical with or
  /// without a workspace. Pass nullptr to unbind. The workspace must
  /// outlive this world (or the unbind).
  void bind_workspace(TrialWorkspace* ws) { ws_ = ws; }

  /// Advance the world: re-trace paths for the UE pose at t and apply all
  /// blockage sources.
  void set_time(double t_s);

  double time() const { return t_s_; }
  const std::vector<channel::Path>& paths() const { return paths_; }
  const WorldConfig& config() const { return config_; }

  /// Impaired probe interface for controllers. The returned lambdas
  /// reference this world; keep it alive while they are used.
  core::LinkProbeInterface probe_interface();

  /// Joint-end probing for directional-UE experiments (Section 4.4):
  /// the caller supplies BOTH the gNB weights and the UE weights
  /// (applied over ue_ula). Same impairments as probe_interface().
  struct JointProbe {
    std::function<CVec(const CVec& tx_w, const CVec& rx_w)> csi;
    std::function<CVec(const CVec& tx_w, const CVec& rx_w,
                       std::size_t num_taps)> cir;
  };
  JointProbe joint_probe_interface();

  /// True SNR with explicit weights at both ends.
  double true_snr_db_joint(const CVec& tx_w, const CVec& rx_w) const;

  /// True mean channel power gain for given TX weights (linear).
  double true_power(const CVec& tx_weights) const;
  /// True SNR [dB] through the link budget.
  double true_snr_db(const CVec& tx_weights) const;
  /// True per-antenna channel (oracle access).
  CVec true_per_antenna_channel() const;
  /// Channel power gain corresponding to a target SNR (outage thresholds).
  double power_for_snr(double snr_db) const;

 private:
  /// Stable path index for the event process: 0 = LOS, then NLOS paths by
  /// descending nominal power.
  std::vector<std::size_t> stable_order() const;

  channel::Environment env_;
  channel::Pose tx_pose_;
  std::shared_ptr<const channel::Trajectory> ue_trajectory_;
  WorldConfig config_;
  Rng rng_;
  phy::ChannelEstimator estimator_;
  std::vector<channel::GeometricBlocker> blockers_;
  std::vector<channel::IrsPanel> irs_panels_;
  std::unique_ptr<channel::BlockageEventProcess> events_;
  std::vector<channel::Path> paths_;
  TrialWorkspace* ws_ = nullptr;  ///< not owned; see bind_workspace
  double t_s_ = 0.0;
};

}  // namespace mmr::sim
