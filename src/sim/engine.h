// Registry-driven experiment engine.
//
// The benches all share one shape -- build a world from a named scenario,
// build a controller from a named scheme, sweep trials deterministically,
// aggregate, emit one JSON record -- but each used to hand-roll it. The
// engine makes that shape declarative:
//
//   * ScenarioRegistry maps a name ("indoor", "indoor_sparse", "outdoor",
//     "indoor_poor") + a ScenarioSpec to a LinkWorld;
//   * ControllerRegistry maps a name ("mmreliable", "delay_multibeam",
//     "reactive", "single_frozen", "beamspy", "widebeam", "oracle",
//     "mmreliable_ablation") + a ControllerSpec to a BeamController;
//   * ExperimentSpec names both, adds the RunConfig and sweep shape
//     (trials/jobs/seed), and Engine::run() evaluates it on the
//     deterministic SweepRunner, streaming results to a TelemetrySink.
//
// Determinism contract (inherited from sim/sweep.h): for a fixed
// ExperimentSpec, jobs=K is bit-identical to jobs=1; sink events are
// replayed in trial-index order after the sweep barrier.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/controller_base.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "sim/shard.h"
#include "sim/sweep.h"
#include "sim/world.h"

namespace mmr::sim {

class CampaignJournal;
class TelemetrySink;

/// A walking blocker crossing the scenario's link line.
struct BlockerSpec {
  double crossing_time_s = 0.5;
  double speed_mps = 1.0;
  double depth_db = 26.0;
};

/// Declarative scenario: a registered name plus every knob the built-in
/// world factories expose. Fields a given scenario does not use are
/// ignored (e.g. link_distance_m indoors, ue_rotation outdoors).
struct ScenarioSpec {
  std::string name = "indoor";
  ScenarioConfig config;

  // Indoor knobs (make_indoor_world).
  channel::Vec2 ue_velocity{0.0, 0.0};
  double ue_rotation_rate_rad_s = 0.0;
  channel::Vec2 ue_start{7.0, 6.2};

  // Outdoor knobs (make_outdoor_world).
  double link_distance_m = 40.0;

  // indoor_poor knobs: a reflection-poor wooden room; an IRS panel is
  // deployed when irs_gain_db > 0 (Section 8 future work).
  double irs_gain_db = 0.0;
  channel::Vec2 irs_position{3.75, 5.0};

  /// Crossing blockers added after world construction, in order.
  std::vector<BlockerSpec> blockers;
};

/// Declarative controller: a registered name plus the shared knobs the
/// built-in factories consume.
struct ControllerSpec {
  std::string name = "mmreliable";
  std::size_t max_beams = 2;
  // mmreliable_ablation only (Fig. 17c): stage toggles.
  bool enable_tracking = true;
  bool enable_cc_refresh = true;
};

/// String-keyed scenario factory registry. Unknown names throw
/// std::invalid_argument whose message lists every registered name.
class ScenarioRegistry {
 public:
  using Factory = std::function<LinkWorld(const ScenarioSpec&)>;

  /// Process-wide registry, pre-populated with the built-in scenarios.
  static ScenarioRegistry& instance();

  void add(const std::string& name, Factory factory);
  bool contains(const std::string& name) const;
  /// Registered names in lexicographic order.
  std::vector<std::string> names() const;
  LinkWorld make(const ScenarioSpec& spec) const;

 private:
  std::map<std::string, Factory> factories_;
};

/// String-keyed controller factory registry; same error contract as
/// ScenarioRegistry. The world reference passed to make() must outlive
/// the returned controller (factories derive outage thresholds from it,
/// and the oracle holds a reference).
class ControllerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<core::BeamController>(
      const LinkWorld& world, const ScenarioConfig& config,
      const ControllerSpec& spec)>;

  /// Process-wide registry, pre-populated with the built-in controllers.
  static ControllerRegistry& instance();

  void add(const std::string& name, Factory factory);
  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;
  std::unique_ptr<core::BeamController> make(const LinkWorld& world,
                                             const ScenarioConfig& config,
                                             const ControllerSpec& spec) const;

 private:
  std::map<std::string, Factory> factories_;
};

/// How each trial's world seed is derived.
enum class SeedPolicy {
  /// scenario.config.seed = Rng::derive_stream_seed(seed, trial index):
  /// independent Monte-Carlo draws (the usual sweep).
  kPerTrialStream,
  /// Every trial keeps scenario.config.seed as authored (typically set by
  /// `customize`) -- for paired comparisons and ablation matrices.
  kFixed,
};

/// One declarative experiment campaign.
struct ExperimentSpec {
  std::string name;  ///< bench name in the emitted JSON record
  ScenarioSpec scenario;
  ControllerSpec controller;
  RunConfig run;

  std::size_t trials = 1;
  std::size_t jobs = 1;
  std::uint64_t seed = 1;
  SeedPolicy seed_policy = SeedPolicy::kPerTrialStream;

  /// Keep per-tick samples (and replay them to the sink). Off by default:
  /// big sweeps only need summaries.
  bool record_samples = false;

  /// Per-trial hook, run after the seed policy: mutate the copied specs
  /// for this trial (scheme matrices, randomized blockers, ...). Must be
  /// a pure function of the TrialContext for determinism.
  std::function<void(const TrialContext& ctx, ScenarioSpec& scenario,
                     ControllerSpec& controller, RunConfig& run)>
      customize;
  /// Optional per-trial label for the JSON record.
  std::function<std::string(const TrialContext& ctx)> label;
};

/// Durable-execution knobs for Engine::run. The defaults reproduce the
/// plain (non-durable) engine exactly: no journal, a throwing trial
/// aborts the sweep, no watchdog, live timing.
struct EngineOptions {
  /// Checkpoint journal (sim/journal.h). Trials found in
  /// journal->completed() are REPLAYED -- summary, wall/cpu time, label,
  /// and fault events restored bit-exactly, the trial body never runs --
  /// and every freshly completed trial is appended + fsync'd. Replay of
  /// per-tick samples is not supported: combining a journal with
  /// spec.record_samples throws (MMR_EXPECTS).
  CampaignJournal* journal = nullptr;
  /// Extra attempts for a trial whose body throws, each re-run from the
  /// same deterministic Rng stream (a retry of a deterministic failure
  /// fails again; the budget exists for environmental flakes). When the
  /// budget is exhausted the trial is QUARANTINED: it keeps its slot with
  /// a default LinkSummary, is excluded from the aggregate, and appears
  /// as a TrialFailure in the result / telemetry / sweep JSON instead of
  /// killing the sweep.
  std::size_t trial_retries = 0;
  /// Wall-clock watchdog [s]; 0 disables. A trial running longer is
  /// flagged (stderr warning from the watchdog thread the moment the
  /// deadline passes, plus a timed_out TrialFailure entry) but NOT
  /// killed: results of late trials are kept.
  double trial_timeout_s = 0.0;
  /// Zero every timing field (per-trial wall/cpu, sweep wall /
  /// serial-equivalent) so the JSON record is a pure function of
  /// (spec, seed) -- the mode the crash/resume byte-identity tests and
  /// any diff-based tooling run under.
  bool freeze_timing = false;
  /// Distributed sharding (sim/shard.h): when enabled, trials this worker
  /// does not own are SKIPPED -- no world build, no journal record, no
  /// failure slot; they keep default summaries and count in
  /// EngineResult::skipped_trials. Because trial randomness derives
  /// purely from (base_seed, index), skipping cannot perturb the owned
  /// trials' Rng streams: shard k's trial j is bit-identical to the
  /// 1-process trial j. Requires !spec.record_samples (a shard's sample
  /// table would be full of holes) and, when a journal is attached, the
  /// journal's shard plan must equal this one (MMR_EXPECTS).
  ShardPlan shard;
};

/// Everything Engine::run produces.
struct EngineResult {
  std::vector<SweepTrial<core::LinkSummary>> trials;
  /// Per-trial sample series; empty unless spec.record_samples.
  std::vector<std::vector<core::LinkSample>> samples;
  /// Per-trial fault events (empty vectors when the trial's FaultPlan is
  /// disabled); one entry per trial.
  std::vector<std::vector<core::FaultEvent>> fault_events;
  /// Per-trial labels; empty unless spec.label is set.
  std::vector<std::string> labels;
  /// Quarantined / watchdog-flagged trials in index order (durable mode
  /// only; empty means every trial succeeded in time).
  std::vector<TrialFailure> failures;
  /// Trials replayed from the journal instead of executed.
  std::size_t replayed_trials = 0;
  /// Trials skipped because another shard owns them (sharded runs only;
  /// their slots hold default summaries).
  std::size_t skipped_trials = 0;
  SweepTiming timing;
  SweepSummary aggregate;
};

/// Evaluates ExperimentSpecs over the deterministic sweep runner.
class Engine {
 public:
  /// Run the campaign. When `sink` is non-null it receives, after the
  /// sweep barrier and in trial-index order: per-trial run events
  /// (on_run_begin/on_sample... when record_samples, then any on_fault
  /// events, then on_trial_failure for a quarantined/flagged trial, then
  /// on_run_end) followed by one on_sweep record.
  ///
  /// Fault seeding: when spec.run.faults is enabled and its seed is left
  /// at 0 after `customize`, each trial derives an independent fault
  /// stream via Rng::derive_stream_seed(ctx.stream_seed, kFaultSeedStream)
  /// so fault draws are decoupled from the world's randomness and stable
  /// across jobs counts.
  EngineResult run(const ExperimentSpec& spec, TelemetrySink* sink = nullptr);

  /// Durable variant: checkpoint/resume via options.journal, per-trial
  /// retry/quarantine, wall-clock watchdog, frozen timing. With
  /// default-constructed options this is exactly the plain overload.
  EngineResult run(const ExperimentSpec& spec, TelemetrySink* sink,
                   const EngineOptions& options);
};

}  // namespace mmr::sim
