#include "sim/runner.h"

#include <cmath>
#include <memory>

#include "common/error.h"
#include "phy/mcs.h"
#include "sim/telemetry.h"

namespace mmr::sim {

RunResult run_experiment(LinkWorld& world, core::BeamController& controller,
                         const RunConfig& config, TelemetrySink* sink) {
  MMR_EXPECTS(config.duration_s > 0.0);
  MMR_EXPECTS(std::isfinite(config.duration_s));
  MMR_EXPECTS(config.tick_s > 0.0);
  MMR_EXPECTS(std::isfinite(config.tick_s));
  MMR_EXPECTS(std::isfinite(config.outage_snr_db));
  MMR_EXPECTS(config.protocol_overhead >= 0.0);
  MMR_EXPECTS(config.protocol_overhead < 1.0);
  config.faults.validate();
  if (sink != nullptr) sink->on_run_begin(config);

  const phy::McsTable& mcs = phy::McsTable::nr();
  const double bandwidth = world.config().spec.bandwidth_hz;
  core::LinkProbeInterface link = world.probe_interface();

  RunResult result;
  // The injector is only constructed when the plan is live, so a disabled
  // plan leaves this function's behavior (and output bytes) untouched.
  std::unique_ptr<FaultInjector> injector;
  if (config.faults.enabled()) {
    injector = std::make_unique<FaultInjector>(config.faults, link);
    link = injector->interface();
    auto record = [&result, sink](const core::FaultEvent& ev) {
      result.fault_events.push_back(ev);
      if (sink != nullptr) sink->on_fault(ev);
    };
    injector->set_listener(record);
    controller.set_fault_listener(record);
  }

  const auto num_ticks =
      static_cast<std::size_t>(config.duration_s / config.tick_s);
  result.samples.reserve(num_ticks);
  for (std::size_t i = 0; i < num_ticks; ++i) {
    const double t = static_cast<double>(i) * config.tick_s;
    world.set_time(t);
    if (injector != nullptr) injector->on_tick(t);
    if (i == 0) {
      controller.start(t, link);
    } else {
      controller.step(t, link);
    }

    core::LinkSample sample;
    sample.t_s = t;
    sample.available = controller.link_available(t);
    sample.snr_db = world.true_snr_db(controller.tx_weights());
    sample.throughput_bps =
        sample.available
            ? mcs.throughput_bps(sample.snr_db, bandwidth,
                                 config.protocol_overhead)
            : 0.0;
    result.samples.push_back(sample);
    if (sink != nullptr) sink->on_sample(sample);
  }
  // The listener lambda captures locals of this frame; detach it before
  // they go out of scope (the controller outlives this call).
  if (injector != nullptr) controller.set_fault_listener(nullptr);
  result.summary = core::summarize_link(result.samples, config.outage_snr_db,
                                        bandwidth);
  if (sink != nullptr) sink->on_run_end(result.summary);
  return result;
}

}  // namespace mmr::sim
