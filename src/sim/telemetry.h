// Pluggable telemetry for the experiment pipeline.
//
// A TelemetrySink observes a link experiment at three granularities:
//   * per-tick LinkSample events while run_experiment scores a link,
//   * a run-level LinkSummary when one controller run finishes,
//   * a sweep-level record (per-trial summaries + timing + labels) when a
//     whole Engine campaign completes.
// Built-in sinks: NullSink (discard), MemorySink (in-process capture),
// JsonLinesSink (the benches' one-line JSON record, byte-compatible with
// write_sweep_json), FanoutSink (tee to several sinks, e.g. stdout + a
// --json-out file).
//
// Ordering contract: sinks are driven from ONE thread. When the Engine
// fans trials across workers it buffers per-trial events and replays them
// to the sink in trial-index order after the sweep barrier, so sink output
// is deterministic and independent of the worker schedule.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/events.h"
#include "core/metrics.h"
#include "sim/sweep.h"

namespace mmr::sim {

struct RunConfig;

/// One periodic snapshot of a live streaming run (sim/streaming.h), as
/// delivered to TelemetrySink::on_snapshot: the merged shard accumulators
/// projected to scalars at a snapshot boundary. POD by design -- snapshots
/// queue by value through the backpressure buffer without allocating.
struct StreamSnapshot {
  /// Shared-timeline time of the snapshot boundary [s].
  double t_s = 0.0;
  /// Snapshot ordinal (0-based, monotonically increasing as emitted;
  /// gaps appear only through `dropped`).
  std::uint64_t index = 0;
  /// Live sessions at the boundary and cumulative joins/leaves.
  std::uint64_t live_sessions = 0;
  std::uint64_t total_joined = 0;
  std::uint64_t total_left = 0;
  /// Session-ticks scored this window / since the run began.
  std::uint64_t window_ticks = 0;
  std::uint64_t total_ticks = 0;
  /// Scored session-ticks per wall second over the window (0 when the
  /// service runs with freeze_timing -- byte-stable output).
  double session_ticks_per_s = 0.0;
  /// Availability = usable / ticks (window and cumulative).
  double window_availability = 0.0;
  double availability = 0.0;
  std::uint64_t outage_ticks = 0;
  /// Cumulative SINR moments and P² quantile estimates [dB].
  double snr_mean_db = 0.0;
  double snr_stddev_db = 0.0;
  double snr_p50_db = 0.0;
  double snr_p99_db = 0.0;
  double snr_p999_db = 0.0;
  /// Cumulative throughput moments and P² quantile estimates [bit/s].
  double tput_mean_bps = 0.0;
  double tput_stddev_bps = 0.0;
  double tput_p50_bps = 0.0;
  double tput_p99_bps = 0.0;
  double tput_p999_bps = 0.0;
  /// Snapshots shed by the bounded telemetry queue so far (drop-oldest
  /// watermark; 0 unless a sink fell behind).
  std::uint64_t dropped = 0;
};

/// One completed sweep campaign, as delivered to TelemetrySink::on_sweep.
struct SweepRecord {
  std::string name;
  std::span<const SweepTrial<core::LinkSummary>> trials;
  SweepTiming timing;
  /// One label per trial, or empty when the campaign does not tag trials.
  std::span<const std::string> labels;
  /// Quarantined / watchdog-flagged trials (durable campaigns only;
  /// empty when every trial succeeded in time).
  std::span<const TrialFailure> failures;
};

class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;

  /// A controller run is starting under `config`.
  virtual void on_run_begin(const RunConfig& config) { (void)config; }
  /// One scored tick of the active run.
  virtual void on_sample(const core::LinkSample& sample) { (void)sample; }
  /// An injected fault or controller degradation during the active run
  /// (only emitted when the run's FaultPlan is enabled).
  virtual void on_fault(const core::FaultEvent& event) { (void)event; }
  /// A UE session switched serving cells during the active network run
  /// (only emitted by net-layer campaigns with handover enabled).
  virtual void on_handover(const core::HandoverEvent& event) { (void)event; }
  /// The active trial was quarantined after exhausting its retry budget,
  /// or flagged by the wall-clock watchdog (durable campaigns only;
  /// delivered before the trial's on_run_end, in trial-index order).
  virtual void on_trial_failure(const TrialFailure& failure) {
    (void)failure;
  }
  /// A periodic snapshot of a live streaming run (sim/streaming.h). Like
  /// every other event, delivered from ONE thread; under the service's
  /// async telemetry queue that thread is the drain thread, still one at
  /// a time and in emission order (minus shed snapshots -- see
  /// StreamSnapshot::dropped).
  virtual void on_snapshot(const StreamSnapshot& snapshot) {
    (void)snapshot;
  }
  /// The active run finished with this summary.
  virtual void on_run_end(const core::LinkSummary& summary) { (void)summary; }
  /// A whole sweep campaign finished (one record per Engine::run).
  virtual void on_sweep(const SweepRecord& record) { (void)record; }
};

/// Discards everything (the default when no telemetry is requested).
class NullSink final : public TelemetrySink {};

/// Captures everything in memory: per-run sample series and summaries in
/// the order the runs were delivered, plus the last sweep record's
/// aggregate inputs. Replaces the benches' bespoke trace capture.
class MemorySink final : public TelemetrySink {
 public:
  void on_run_begin(const RunConfig& config) override;
  void on_sample(const core::LinkSample& sample) override;
  void on_fault(const core::FaultEvent& event) override;
  void on_handover(const core::HandoverEvent& event) override;
  void on_trial_failure(const TrialFailure& failure) override;
  void on_snapshot(const StreamSnapshot& snapshot) override;
  void on_run_end(const core::LinkSummary& summary) override;
  void on_sweep(const SweepRecord& record) override;

  /// Sample series of run r (in delivery order).
  const std::vector<std::vector<core::LinkSample>>& runs() const {
    return runs_;
  }
  /// Fault events of run r (parallel to runs()).
  const std::vector<std::vector<core::FaultEvent>>& faults() const {
    return faults_;
  }
  /// Handover events of run r (parallel to runs()).
  const std::vector<std::vector<core::HandoverEvent>>& handovers() const {
    return handovers_;
  }
  const std::vector<core::LinkSummary>& summaries() const {
    return summaries_;
  }
  /// Trial failures in delivery order (durable campaigns only).
  const std::vector<TrialFailure>& trial_failures() const {
    return trial_failures_;
  }
  /// Streaming snapshots in delivery order.
  const std::vector<StreamSnapshot>& snapshots() const { return snapshots_; }
  std::size_t num_sweeps() const { return num_sweeps_; }

 private:
  std::vector<std::vector<core::LinkSample>> runs_;
  std::vector<std::vector<core::FaultEvent>> faults_;
  std::vector<std::vector<core::HandoverEvent>> handovers_;
  std::vector<core::LinkSummary> summaries_;
  std::vector<TrialFailure> trial_failures_;
  std::vector<StreamSnapshot> snapshots_;
  std::size_t num_sweeps_ = 0;
};

/// Emits one JSON line per sweep record -- the exact bytes
/// write_sweep_json produces, so ported benches keep their machine-read
/// output stable. Optionally also emits per-tick sample records
/// (JSON-lines) for full-resolution traces. Fault events are always
/// emitted as their own JSON lines ({"fault": "...", ...}); a no-fault
/// run produces none, keeping its byte stream unchanged. Trial failures
/// appear as {"trial_failure": {...}} lines.
///
/// Durability contract: with the default `flush_every_n = 1` the sink
/// flushes the stream after EVERY record it writes (sample, fault, trial
/// failure, snapshot, sweep), so a process killed at an arbitrary
/// instruction loses at most the one record being written -- never
/// previously delivered lines sitting in a stream buffer. (Flushing
/// pushes bytes to the OS; callers that need power-loss durability should
/// write through common::AtomicFile or fsync the underlying file, as the
/// bench CLI's --json-out and the CampaignJournal do.)
///
/// At streaming snapshot rates unconditional flushing dominates sink
/// cost; `flush_every_n = N > 1` amortizes it to one flush per N records
/// (at most N records lost on a kill). `flush_every_n = 0` never flushes
/// mid-stream (the destructor-driven stream flush still applies).
/// Campaigns keep the durable default.
class JsonLinesSink final : public TelemetrySink {
 public:
  explicit JsonLinesSink(std::ostream& os, bool per_tick = false,
                         std::size_t flush_every_n = 1)
      : os_(os), per_tick_(per_tick), flush_every_n_(flush_every_n) {}

  void on_sample(const core::LinkSample& sample) override;
  void on_fault(const core::FaultEvent& event) override;
  void on_handover(const core::HandoverEvent& event) override;
  void on_trial_failure(const TrialFailure& failure) override;
  void on_snapshot(const StreamSnapshot& snapshot) override;
  void on_sweep(const SweepRecord& record) override;

 private:
  /// One record was written: flush per the flush_every_n policy.
  void record_written();

  std::ostream& os_;
  bool per_tick_ = false;
  std::size_t flush_every_n_ = 1;
  std::size_t records_since_flush_ = 0;
};

/// Fans every event out to several sinks in registration order (tee).
/// Does not own the sinks; keep them alive while the fanout is in use.
class FanoutSink final : public TelemetrySink {
 public:
  void add(TelemetrySink* sink);

  void on_run_begin(const RunConfig& config) override;
  void on_sample(const core::LinkSample& sample) override;
  void on_fault(const core::FaultEvent& event) override;
  void on_handover(const core::HandoverEvent& event) override;
  void on_trial_failure(const TrialFailure& failure) override;
  void on_snapshot(const StreamSnapshot& snapshot) override;
  void on_run_end(const core::LinkSummary& summary) override;
  void on_sweep(const SweepRecord& record) override;

 private:
  std::vector<TelemetrySink*> sinks_;
};

}  // namespace mmr::sim
