#include "sim/shard.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <utility>

#ifdef __unix__
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

#include "common/atomic_file.h"
#include "common/error.h"
#include "common/parse.h"
#include "sim/journal.h"

namespace mmr::sim {
namespace {

constexpr const char* kJournalSuffix = ".journal";
constexpr const char* kShardPrefix = "shard-";

bool order_by_plan(const std::pair<ShardPlan, std::string>& a,
                   const std::pair<ShardPlan, std::string>& b) {
  if (a.first.count != b.first.count) return a.first.count < b.first.count;
  if (a.first.index != b.first.index) return a.first.index < b.first.index;
  return a.second < b.second;
}

}  // namespace

std::size_t ShardPlan::owned_of(std::size_t total) const {
  if (count <= 1) return total;
  return total / count + (index < total % count ? 1 : 0);
}

std::string ShardPlan::suffix() const {
  return std::string(kShardPrefix) + std::to_string(index) + "-of-" +
         std::to_string(count);
}

std::optional<ShardPlan> ShardPlan::parse(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
    return std::nullopt;
  }
  std::size_t index = 0, count = 0;
  if (!mmr::parse_size(text.substr(0, slash).c_str(), index)) {
    return std::nullopt;
  }
  if (!mmr::parse_size(text.substr(slash + 1).c_str(), count)) {
    return std::nullopt;
  }
  if (count == 0 || index >= count) return std::nullopt;
  return ShardPlan{index, count};
}

std::optional<ShardPlan> ShardPlan::parse_suffix(const std::string& name) {
  const std::size_t prefix_len = std::strlen(kShardPrefix);
  if (name.compare(0, prefix_len, kShardPrefix) != 0) return std::nullopt;
  const std::size_t of = name.find("-of-", prefix_len);
  if (of == std::string::npos) return std::nullopt;
  return parse(name.substr(prefix_len, of - prefix_len) + "/" +
               name.substr(of + 4));
}

// ---------------------------------------------------------------------------
// Merge.

MergeStats merge_journals(const std::vector<std::string>& shard_paths,
                          const std::string& merged_path,
                          const CampaignKey& key) {
  if (shard_paths.empty()) {
    throw JournalMismatchError(
        "shard merge: no shard journals to merge (missing shard journals "
        "for every shard index)");
  }
  const auto mismatch = [](const std::string& what, const std::string& path) {
    throw JournalMismatchError("shard journal '" + path +
                               "' cannot be merged (" + what + ")");
  };
  std::size_t count = 0;
  std::string count_origin;
  std::map<std::size_t, std::string> seen;  // shard index -> journal path
  std::map<std::size_t, JournalTrial> trials;
  for (const std::string& path : shard_paths) {
    LoadedJournal lj = read_journal_file(path);
    if (!lj.shard.enabled()) {
      mismatch("not a shard journal: its header carries no shard field",
               path);
    }
    if (lj.key.name != key.name) mismatch("name differs", path);
    if (lj.key.base_seed != key.base_seed) mismatch("base seed differs", path);
    if (lj.key.trials != key.trials) mismatch("trial count differs", path);
    if (lj.key.seed_policy != key.seed_policy) {
      mismatch("seed policy differs", path);
    }
    if (lj.key.fingerprint != key.fingerprint) {
      mismatch("config fingerprint differs", path);
    }
    if (!lj.shard.valid()) mismatch("shard index out of range", path);
    if (count == 0) {
      count = lj.shard.count;
      count_origin = path;
    } else if (lj.shard.count != count) {
      mismatch("shard count differs: " + std::to_string(lj.shard.count) +
                   " here vs " + std::to_string(count) + " in '" +
                   count_origin + "'",
               path);
    }
    const auto [it, inserted] = seen.emplace(lj.shard.index, path);
    if (!inserted) {
      throw JournalMismatchError(
          "overlapping shard journals: shard index " +
          std::to_string(lj.shard.index) + " of " + std::to_string(count) +
          " is claimed by both '" + it->second + "' and '" + path + "'");
    }
    for (JournalTrial& t : lj.trials) {
      // read_journal_file already stops at foreign lines; these guards are
      // belt-and-braces against a hand-edited journal.
      if (t.index >= key.trials || !lj.shard.owns(t.index)) {
        mismatch("trial index " + std::to_string(t.index) +
                     " is outside the shard's ownership",
                 path);
      }
      trials.emplace(t.index, std::move(t));
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (seen.find(i) == seen.end()) {
      throw JournalMismatchError(
          "missing shard journal: shard index " + std::to_string(i) +
          " of " + std::to_string(count) + " has no journal in the merge "
          "set (run or resume that shard first)");
    }
  }

  std::string contents = journal_header_line(key);
  for (const auto& [index, trial] : trials) {
    contents += journal_trial_line(trial);
  }
  AtomicFile::write(merged_path, contents);

  MergeStats stats;
  stats.shard_count = count;
  stats.merged_trials = trials.size();
  stats.missing_trials = key.trials - trials.size();
  return stats;
}

std::vector<std::string> discover_shard_journals(
    const std::string& merged_path) {
  namespace fs = std::filesystem;
  std::string stem = merged_path;
  const std::size_t suffix_len = std::strlen(kJournalSuffix);
  if (stem.size() > suffix_len &&
      stem.compare(stem.size() - suffix_len, suffix_len, kJournalSuffix) ==
          0) {
    stem.resize(stem.size() - suffix_len);
  }
  const fs::path stem_path(stem);
  const fs::path dir =
      stem_path.has_parent_path() ? stem_path.parent_path() : fs::path(".");
  const std::string base = stem_path.filename().string() + ".";
  std::vector<std::pair<ShardPlan, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= base.size() + suffix_len) continue;
    if (name.compare(0, base.size(), base) != 0) continue;
    if (name.compare(name.size() - suffix_len, suffix_len, kJournalSuffix) !=
        0) {
      continue;
    }
    const std::string middle =
        name.substr(base.size(), name.size() - base.size() - suffix_len);
    const std::optional<ShardPlan> plan = ShardPlan::parse_suffix(middle);
    if (!plan.has_value()) continue;
    found.emplace_back(*plan, (dir / name).string());
  }
  std::sort(found.begin(), found.end(), order_by_plan);
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [plan, path] : found) paths.push_back(std::move(path));
  return paths;
}

// ---------------------------------------------------------------------------
// Work queue (POSIX).

#ifdef __unix__

namespace {

std::string join(const std::string& dir, const std::string& name) {
  return dir + "/" + name;
}

void ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST) return;
  throw std::runtime_error("shard queue: cannot create directory '" + path +
                           "': " + std::strerror(errno));
}

/// O_CREAT|O_EXCL marker creation: true iff WE created it.
bool create_exclusive(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd >= 0) {
    ::close(fd);
    return true;
  }
  if (errno == EEXIST) return false;
  throw std::runtime_error("shard queue: cannot create '" + path +
                           "': " + std::strerror(errno));
}

bool path_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

/// Ticket names under `dir`, sorted by (count, index).
std::vector<std::string> list_tickets(const std::string& dir) {
  std::vector<std::pair<ShardPlan, std::string>> found;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    throw std::runtime_error("shard queue: cannot list '" + dir +
                             "': " + std::strerror(errno));
  }
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    const std::optional<ShardPlan> plan = ShardPlan::parse_suffix(name);
    if (plan.has_value()) found.emplace_back(*plan, name);
  }
  ::closedir(d);
  std::sort(found.begin(), found.end(), order_by_plan);
  std::vector<std::string> names;
  names.reserve(found.size());
  for (auto& [plan, name] : found) names.push_back(std::move(name));
  return names;
}

}  // namespace

void ShardQueue::init(const std::string& dir, std::size_t count) {
  MMR_EXPECTS(!dir.empty());
  MMR_EXPECTS(count >= 1);
  ensure_dir(dir);
  ensure_dir(join(dir, "tickets"));
  ensure_dir(join(dir, "todo"));
  ensure_dir(join(dir, "claimed"));
  // A queue is permanently bound to its shard count: mixing counts would
  // mix ownership partitions.
  const std::string meta = join(dir, "shard-count");
  {
    std::ifstream in(meta);
    std::string text;
    if (in >> text) {
      std::size_t existing = 0;
      if (!mmr::parse_size(text.c_str(), existing) || existing != count) {
        throw std::runtime_error(
            "shard queue '" + dir + "' was initialized for " + text +
            " shards; refusing to re-initialize for " +
            std::to_string(count));
      }
    } else {
      AtomicFile::write(meta, std::to_string(count) + "\n");
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::string name = ShardPlan{i, count}.suffix();
    // The tickets/ marker is PERMANENT: whoever creates it owns the one
    // and only offer of the shard in todo/. A late initializer loses the
    // O_EXCL race and must not re-offer a shard someone may already have
    // claimed.
    if (create_exclusive(join(join(dir, "tickets"), name))) {
      (void)create_exclusive(join(join(dir, "todo"), name));
    }
  }
}

std::optional<ShardPlan> ShardQueue::claim(const std::string& dir) {
  const std::string todo = join(dir, "todo");
  const std::string claimed = join(dir, "claimed");
  for (;;) {
    const std::vector<std::string> names = list_tickets(todo);
    if (names.empty()) return std::nullopt;
    bool raced = false;
    for (const std::string& name : names) {
      if (::rename(join(todo, name).c_str(), join(claimed, name).c_str()) ==
          0) {
        return ShardPlan::parse_suffix(name);
      }
      if (errno == ENOENT) {
        // Another worker won this ticket between listing and rename.
        raced = true;
        continue;
      }
      throw std::runtime_error("shard queue: cannot claim '" +
                               join(todo, name) +
                               "': " + std::strerror(errno));
    }
    if (!raced) return std::nullopt;
  }
}

void ShardQueue::requeue(const std::string& dir, const ShardPlan& plan) {
  MMR_EXPECTS(plan.enabled() && plan.valid());
  const std::string name = plan.suffix();
  if (!path_exists(join(join(dir, "tickets"), name))) {
    throw std::runtime_error("shard queue '" + dir +
                             "' has no ticket for shard " + name);
  }
  const std::string from = join(join(dir, "claimed"), name);
  const std::string to = join(join(dir, "todo"), name);
  if (::rename(from.c_str(), to.c_str()) == 0) return;
  if (errno != ENOENT) {
    throw std::runtime_error("shard queue: cannot requeue '" + from +
                             "': " + std::strerror(errno));
  }
  // Not in claimed/: either already claimable or lost to a crash between
  // renames. The permanent ticket proves the shard belongs to this queue,
  // so ensure exactly one offer exists.
  (void)create_exclusive(to);
}

#else  // !__unix__

void ShardQueue::init(const std::string&, std::size_t) {
  throw std::runtime_error(
      "ShardQueue requires a POSIX filesystem (O_EXCL create + atomic "
      "rename); use explicit --shard i/N on this platform");
}

std::optional<ShardPlan> ShardQueue::claim(const std::string&) {
  throw std::runtime_error(
      "ShardQueue requires a POSIX filesystem (O_EXCL create + atomic "
      "rename); use explicit --shard i/N on this platform");
}

void ShardQueue::requeue(const std::string&, const ShardPlan&) {
  throw std::runtime_error(
      "ShardQueue requires a POSIX filesystem (O_EXCL create + atomic "
      "rename); use explicit --shard i/N on this platform");
}

#endif  // __unix__

}  // namespace mmr::sim
