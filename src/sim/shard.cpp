#include "sim/shard.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <utility>

#ifdef __unix__
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

#include "common/atomic_file.h"
#include "common/error.h"
#include "common/parse.h"
#include "sim/journal.h"

namespace mmr::sim {
namespace {

constexpr const char* kJournalSuffix = ".journal";
constexpr const char* kShardPrefix = "shard-";

bool order_by_plan(const std::pair<ShardPlan, std::string>& a,
                   const std::pair<ShardPlan, std::string>& b) {
  if (a.first.count != b.first.count) return a.first.count < b.first.count;
  if (a.first.index != b.first.index) return a.first.index < b.first.index;
  return a.second < b.second;
}

}  // namespace

std::size_t ShardPlan::owned_of(std::size_t total) const {
  if (count <= 1) return total;
  return total / count + (index < total % count ? 1 : 0);
}

std::string ShardPlan::suffix() const {
  return std::string(kShardPrefix) + std::to_string(index) + "-of-" +
         std::to_string(count);
}

std::optional<ShardPlan> ShardPlan::parse(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
    return std::nullopt;
  }
  std::size_t index = 0, count = 0;
  if (!mmr::parse_size(text.substr(0, slash).c_str(), index)) {
    return std::nullopt;
  }
  if (!mmr::parse_size(text.substr(slash + 1).c_str(), count)) {
    return std::nullopt;
  }
  if (count == 0 || index >= count) return std::nullopt;
  return ShardPlan{index, count};
}

std::optional<ShardPlan> ShardPlan::parse_suffix(const std::string& name) {
  const std::size_t prefix_len = std::strlen(kShardPrefix);
  if (name.compare(0, prefix_len, kShardPrefix) != 0) return std::nullopt;
  const std::size_t of = name.find("-of-", prefix_len);
  if (of == std::string::npos) return std::nullopt;
  return parse(name.substr(prefix_len, of - prefix_len) + "/" +
               name.substr(of + 4));
}

// ---------------------------------------------------------------------------
// Merge.

MergeStats merge_journals(const std::vector<std::string>& shard_paths,
                          const std::string& merged_path,
                          const CampaignKey& key) {
  if (shard_paths.empty()) {
    throw JournalMismatchError(
        "shard merge: no shard journals to merge (missing shard journals "
        "for every shard index)");
  }
  const auto mismatch = [](const std::string& what, const std::string& path) {
    throw JournalMismatchError("shard journal '" + path +
                               "' cannot be merged (" + what + ")");
  };
  std::size_t count = 0;
  std::size_t sealed_shards = 0;
  std::string count_origin;
  std::map<std::size_t, std::string> seen;  // shard index -> journal path
  std::map<std::size_t, JournalTrial> trials;
  for (const std::string& path : shard_paths) {
    LoadedJournal lj = read_journal_file(path);
    if (!lj.shard.enabled()) {
      mismatch("not a shard journal: its header carries no shard field",
               path);
    }
    if (lj.key.name != key.name) mismatch("name differs", path);
    if (lj.key.base_seed != key.base_seed) mismatch("base seed differs", path);
    if (lj.key.trials != key.trials) mismatch("trial count differs", path);
    if (lj.key.seed_policy != key.seed_policy) {
      mismatch("seed policy differs", path);
    }
    if (lj.key.fingerprint != key.fingerprint) {
      mismatch("config fingerprint differs", path);
    }
    if (!lj.shard.valid()) mismatch("shard index out of range", path);
    // A seal footer, when present, must vouch exactly for the records in
    // the file. A mismatch is transport damage (e.g. the file was
    // truncated at a record boundary, which record parsing alone cannot
    // see) -- merging it as "crashed early" would silently re-run trials
    // the worker in fact completed. Unsealed journals (in-progress,
    // crashed, or pre-seal-format) merge exactly as before.
    if (lj.seal.has_value() && !lj.seal_intact()) {
      std::string why = "seal footer does not match its records: seal says " +
                        std::to_string(lj.seal->trials) +
                        " trials, file holds " +
                        std::to_string(lj.trials.size()) + " intact";
      if (lj.torn_tail) why += ", with a torn line";
      if (lj.content_after_seal) why += ", with content after the seal";
      mismatch(why, path);
    }
    if (lj.seal_intact()) ++sealed_shards;
    if (count == 0) {
      count = lj.shard.count;
      count_origin = path;
    } else if (lj.shard.count != count) {
      mismatch("shard count differs: " + std::to_string(lj.shard.count) +
                   " here vs " + std::to_string(count) + " in '" +
                   count_origin + "'",
               path);
    }
    const auto [it, inserted] = seen.emplace(lj.shard.index, path);
    if (!inserted) {
      throw JournalMismatchError(
          "overlapping shard journals: shard index " +
          std::to_string(lj.shard.index) + " of " + std::to_string(count) +
          " is claimed by both '" + it->second + "' and '" + path + "'");
    }
    for (JournalTrial& t : lj.trials) {
      // read_journal_file already stops at foreign lines; these guards are
      // belt-and-braces against a hand-edited journal.
      if (t.index >= key.trials || !lj.shard.owns(t.index)) {
        mismatch("trial index " + std::to_string(t.index) +
                     " is outside the shard's ownership",
                 path);
      }
      trials.emplace(t.index, std::move(t));
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (seen.find(i) == seen.end()) {
      throw JournalMismatchError(
          "missing shard journal: shard index " + std::to_string(i) +
          " of " + std::to_string(count) + " has no journal in the merge "
          "set (run or resume that shard first)");
    }
  }

  std::string contents = journal_header_line(key);
  for (const auto& [index, trial] : trials) {
    contents += journal_trial_line(trial);
  }
  AtomicFile::write(merged_path, contents);

  MergeStats stats;
  stats.shard_count = count;
  stats.merged_trials = trials.size();
  stats.missing_trials = key.trials - trials.size();
  stats.sealed_shards = sealed_shards;
  return stats;
}

std::vector<std::string> discover_shard_journals(
    const std::string& merged_path) {
  namespace fs = std::filesystem;
  std::string stem = merged_path;
  const std::size_t suffix_len = std::strlen(kJournalSuffix);
  if (stem.size() > suffix_len &&
      stem.compare(stem.size() - suffix_len, suffix_len, kJournalSuffix) ==
          0) {
    stem.resize(stem.size() - suffix_len);
  }
  const fs::path stem_path(stem);
  const fs::path dir =
      stem_path.has_parent_path() ? stem_path.parent_path() : fs::path(".");
  const std::string base = stem_path.filename().string() + ".";
  std::vector<std::pair<ShardPlan, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= base.size() + suffix_len) continue;
    if (name.compare(0, base.size(), base) != 0) continue;
    if (name.compare(name.size() - suffix_len, suffix_len, kJournalSuffix) !=
        0) {
      continue;
    }
    const std::string middle =
        name.substr(base.size(), name.size() - base.size() - suffix_len);
    const std::optional<ShardPlan> plan = ShardPlan::parse_suffix(middle);
    if (!plan.has_value()) continue;
    found.emplace_back(*plan, (dir / name).string());
  }
  std::sort(found.begin(), found.end(), order_by_plan);
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [plan, path] : found) paths.push_back(std::move(path));
  return paths;
}

// ---------------------------------------------------------------------------
// Work queue (POSIX).

#ifdef __unix__

namespace {

std::string join(const std::string& dir, const std::string& name) {
  return dir + "/" + name;
}

void ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST) return;
  throw std::runtime_error("shard queue: cannot create directory '" + path +
                           "': " + std::strerror(errno));
}

/// O_CREAT|O_EXCL marker creation: true iff WE created it.
bool create_exclusive(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd >= 0) {
    ::close(fd);
    return true;
  }
  if (errno == EEXIST) return false;
  throw std::runtime_error("shard queue: cannot create '" + path +
                           "': " + std::strerror(errno));
}

bool path_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

/// Ticket names under `dir`, sorted by (count, index). With
/// `allow_missing`, a nonexistent directory reads as empty (queues made
/// before the done/ directory existed).
std::vector<std::string> list_tickets(const std::string& dir,
                                      bool allow_missing = false) {
  std::vector<std::pair<ShardPlan, std::string>> found;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (allow_missing && errno == ENOENT) return {};
    throw std::runtime_error("shard queue: cannot list '" + dir +
                             "': " + std::strerror(errno));
  }
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    const std::optional<ShardPlan> plan = ShardPlan::parse_suffix(name);
    if (plan.has_value()) found.emplace_back(*plan, name);
  }
  ::closedir(d);
  std::sort(found.begin(), found.end(), order_by_plan);
  std::vector<std::string> names;
  names.reserve(found.size());
  for (auto& [plan, name] : found) names.push_back(std::move(name));
  return names;
}

// ---------------------------------------------------------------------------
// Leases.

std::string self_host() {
  char buf[256] = {0};
  if (::gethostname(buf, sizeof(buf) - 1) != 0) return "unknown-host";
  return buf;
}

std::string lease_content(const std::string& host, long pid,
                          std::uint64_t renewals) {
  return "host " + host + "\npid " + std::to_string(pid) + "\nrenewals " +
         std::to_string(renewals) + "\n";
}

std::optional<LeaseInfo> read_lease(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  LeaseInfo info;
  std::string key;
  if (!(in >> key) || key != "host" || !(in >> info.host)) return std::nullopt;
  if (!(in >> key) || key != "pid" || !(in >> info.pid)) return std::nullopt;
  if (!(in >> key) || key != "renewals" || !(in >> info.renewals)) {
    return std::nullopt;
  }
  return info;
}

/// Age of `path` measured against a probe file freshly rewritten in the
/// queue directory: both mtimes come from the queue filesystem's clock,
/// so a worker on a machine with a skewed wall clock still ages (or
/// stays fresh) correctly. Negative ages (a lease stamped in the probe's
/// future, e.g. by a fast-clocked machine) read as fresh. nullopt when
/// `path` vanished mid-check (a racing rename).
std::optional<double> age_vs_probe(const std::string& dir,
                                   const std::string& path) {
  const std::string probe = join(dir, "probe");
  AtomicFile::write(probe, "probe\n");
  struct stat probe_st, lease_st;
  if (::stat(probe.c_str(), &probe_st) != 0) {
    throw std::runtime_error("shard queue: cannot stat probe '" + probe +
                             "': " + std::strerror(errno));
  }
  if (::stat(path.c_str(), &lease_st) != 0) {
    if (errno == ENOENT) return std::nullopt;
    throw std::runtime_error("shard queue: cannot stat '" + path +
                             "': " + std::strerror(errno));
  }
  const auto seconds_of = [](const struct stat& st) {
    return static_cast<double>(st.st_mtim.tv_sec) +
           static_cast<double>(st.st_mtim.tv_nsec) * 1e-9;
  };
  return seconds_of(probe_st) - seconds_of(lease_st);
}

bool lease_is_stale(std::optional<double> age, const LeaseOptions& opts) {
  return age.has_value() && *age > opts.ttl_s + opts.effective_grace_s();
}

}  // namespace

void ShardQueue::init(const std::string& dir, std::size_t count) {
  MMR_EXPECTS(!dir.empty());
  MMR_EXPECTS(count >= 1);
  ensure_dir(dir);
  ensure_dir(join(dir, "tickets"));
  ensure_dir(join(dir, "todo"));
  ensure_dir(join(dir, "claimed"));
  ensure_dir(join(dir, "done"));
  // A queue is permanently bound to its shard count: mixing counts would
  // mix ownership partitions.
  const std::string meta = join(dir, "shard-count");
  {
    std::ifstream in(meta);
    std::string text;
    if (in >> text) {
      std::size_t existing = 0;
      if (!mmr::parse_size(text.c_str(), existing) || existing != count) {
        throw std::runtime_error(
            "shard queue '" + dir + "' was initialized for " + text +
            " shards; refusing to re-initialize for " +
            std::to_string(count));
      }
    } else {
      AtomicFile::write(meta, std::to_string(count) + "\n");
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::string name = ShardPlan{i, count}.suffix();
    // The tickets/ marker is PERMANENT: whoever creates it owns the one
    // and only offer of the shard in todo/. A late initializer loses the
    // O_EXCL race and must not re-offer a shard someone may already have
    // claimed.
    if (create_exclusive(join(join(dir, "tickets"), name))) {
      (void)create_exclusive(join(join(dir, "todo"), name));
    }
  }
}

std::optional<ShardPlan> ShardQueue::claim(const std::string& dir,
                                           const LeaseOptions& opts) {
  const std::string todo = join(dir, "todo");
  const std::string claimed = join(dir, "claimed");
  for (;;) {
    bool raced = false;
    for (const std::string& name : list_tickets(todo)) {
      // Freshen the ticket's mtime BEFORE the claiming rename: rename(2)
      // preserves mtime, so a ticket that sat in todo/ longer than the
      // TTL would otherwise look instantly stale in claimed/ during the
      // gap before the lease content lands.
      (void)::utimensat(AT_FDCWD, join(todo, name).c_str(), nullptr, 0);
      if (::rename(join(todo, name).c_str(), join(claimed, name).c_str()) ==
          0) {
        // We own the shard; stamp the lease (AtomicFile gives the file a
        // fresh inode and mtime from the queue filesystem's clock).
        AtomicFile::write(join(claimed, name),
                          lease_content(self_host(), ::getpid(), 0));
        return ShardPlan::parse_suffix(name);
      }
      if (errno == ENOENT) {
        // Another worker won this ticket between listing and rename.
        raced = true;
        continue;
      }
      throw std::runtime_error("shard queue: cannot claim '" +
                               join(todo, name) +
                               "': " + std::strerror(errno));
    }
    if (raced) continue;
    // Nothing claimable: reclaim any claimed/ shard whose lease has gone
    // stale (its worker died without running destructors) and loop to
    // claim it through the normal rename race.
    bool reclaimed = false;
    for (const std::string& name : list_tickets(claimed)) {
      if (!lease_is_stale(age_vs_probe(dir, join(claimed, name)), opts)) {
        continue;
      }
      if (::rename(join(claimed, name).c_str(), join(todo, name).c_str()) ==
          0) {
        reclaimed = true;
      } else if (errno != ENOENT) {
        throw std::runtime_error("shard queue: cannot reclaim '" +
                                 join(claimed, name) +
                                 "': " + std::strerror(errno));
      }
    }
    if (!reclaimed) return std::nullopt;
  }
}

bool ShardQueue::renew(const std::string& dir, const ShardPlan& plan) {
  MMR_EXPECTS(plan.enabled() && plan.valid());
  const std::string path = join(join(dir, "claimed"), plan.suffix());
  const std::optional<LeaseInfo> info = read_lease(path);
  if (!info.has_value() || info->host != self_host() ||
      info->pid != static_cast<long>(::getpid())) {
    // Gone or renamed to another holder: the shard was reclaimed out
    // from under us. (The residual window -- reclaim landing between
    // this check and the write below -- is excluded by the queue
    // contract: leases only go stale after ttl + grace, and renewals
    // run every ttl/4.)
    return false;
  }
  AtomicFile::write(path,
                    lease_content(info->host, info->pid, info->renewals + 1));
  return true;
}

void ShardQueue::complete(const std::string& dir, const ShardPlan& plan) {
  MMR_EXPECTS(plan.enabled() && plan.valid());
  const std::string name = plan.suffix();
  if (!path_exists(join(join(dir, "tickets"), name))) {
    throw std::runtime_error("shard queue '" + dir +
                             "' has no ticket for shard " + name);
  }
  const std::string done = join(join(dir, "done"), name);
  if (path_exists(done)) return;  // already complete
  const std::string claimed = join(join(dir, "claimed"), name);
  const std::optional<LeaseInfo> info = read_lease(claimed);
  if (info.has_value() && (info->host != self_host() ||
                           info->pid != static_cast<long>(::getpid()))) {
    // The shard was reclaimed and is someone else's now; completion is
    // their call, not ours.
    return;
  }
  if (::rename(claimed.c_str(), done.c_str()) == 0) return;
  if (errno != ENOENT) {
    throw std::runtime_error("shard queue: cannot complete '" + claimed +
                             "': " + std::strerror(errno));
  }
  // Not claimed, not done: the ticket is back in todo/ (reclaimed) or
  // mid-rename; either way, nothing for us to mark.
}

void ShardQueue::requeue(const std::string& dir, const ShardPlan& plan,
                         const LeaseOptions& opts) {
  MMR_EXPECTS(plan.enabled() && plan.valid());
  const std::string name = plan.suffix();
  if (!path_exists(join(join(dir, "tickets"), name))) {
    throw std::runtime_error("shard queue '" + dir +
                             "' has no ticket for shard " + name);
  }
  // Idempotent exits first: already claimable, or already finished (a
  // done shard has nothing left to re-run).
  const std::string to = join(join(dir, "todo"), name);
  if (path_exists(to)) return;
  if (path_exists(join(join(dir, "done"), name))) return;
  const std::string from = join(join(dir, "claimed"), name);
  // Refuse to pull a live worker's shard: a lease fresher than
  // ttl + grace means its holder is still heartbeating, and re-offering
  // the shard would run the same trials twice.
  if (!lease_is_stale(age_vs_probe(dir, from), opts) && path_exists(from)) {
    const std::optional<LeaseInfo> info = read_lease(from);
    throw LeaseHeldError(
        "shard " + name + " in queue '" + dir + "' is held by live worker " +
        (info.has_value() ? info->describe() : std::string("(unknown)")) +
        "; its lease is fresher than ttl+grace (" +
        std::to_string(opts.ttl_s + opts.effective_grace_s()) +
        "s) -- wait for the lease to lapse or stop that worker first");
  }
  if (::rename(from.c_str(), to.c_str()) == 0) return;
  if (errno != ENOENT) {
    throw std::runtime_error("shard queue: cannot requeue '" + from +
                             "': " + std::strerror(errno));
  }
  // Not in claimed/: lost to a crash between renames. The permanent
  // ticket proves the shard belongs to this queue, so ensure exactly one
  // offer exists.
  (void)create_exclusive(to);
}

std::optional<LeaseInfo> ShardQueue::holder(const std::string& dir,
                                            const ShardPlan& plan) {
  MMR_EXPECTS(plan.enabled() && plan.valid());
  return read_lease(join(join(dir, "claimed"), plan.suffix()));
}

ShardQueue::Counts ShardQueue::counts(const std::string& dir) {
  Counts c;
  c.todo = list_tickets(join(dir, "todo"), /*allow_missing=*/true).size();
  c.claimed =
      list_tickets(join(dir, "claimed"), /*allow_missing=*/true).size();
  c.done = list_tickets(join(dir, "done"), /*allow_missing=*/true).size();
  return c;
}

#else  // !__unix__

namespace {

[[noreturn]] void throw_posix_only() {
  throw std::runtime_error(
      "ShardQueue requires a POSIX filesystem (O_EXCL create + atomic "
      "rename); use explicit --shard i/N on this platform");
}

}  // namespace

void ShardQueue::init(const std::string&, std::size_t) { throw_posix_only(); }

std::optional<ShardPlan> ShardQueue::claim(const std::string&,
                                           const LeaseOptions&) {
  throw_posix_only();
}

bool ShardQueue::renew(const std::string&, const ShardPlan&) {
  throw_posix_only();
}

void ShardQueue::complete(const std::string&, const ShardPlan&) {
  throw_posix_only();
}

void ShardQueue::requeue(const std::string&, const ShardPlan&,
                         const LeaseOptions&) {
  throw_posix_only();
}

std::optional<LeaseInfo> ShardQueue::holder(const std::string&,
                                            const ShardPlan&) {
  throw_posix_only();
}

ShardQueue::Counts ShardQueue::counts(const std::string&) {
  throw_posix_only();
}

#endif  // __unix__

// ---------------------------------------------------------------------------
// Lease keeper (platform-agnostic: built on the queue calls above).

ShardLeaseKeeper::ShardLeaseKeeper(std::string dir, ShardPlan plan,
                                   LeaseOptions opts)
    : dir_(std::move(dir)), plan_(plan), opts_(opts) {
  MMR_EXPECTS(plan_.enabled() && plan_.valid());
  heartbeat_ = std::thread([this] {
    // Renew every ttl/4: several heartbeats must fit inside ttl + grace
    // so one slow renewal never loses the lease.
    const auto interval =
        std::chrono::duration<double>(std::max(opts_.ttl_s / 4.0, 0.001));
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, interval, [this] { return stop_; })) {
      lock.unlock();
      bool renewed = true;
      try {
        renewed = ShardQueue::renew(dir_, plan_);
      } catch (...) {
        // Transient queue I/O trouble: keep the thread alive and retry
        // next beat -- the lease only lapses after ttl + grace.
      }
      if (!renewed) lost_.store(true, std::memory_order_relaxed);
      lock.lock();
      if (lost_.load(std::memory_order_relaxed)) return;
    }
  });
}

ShardLeaseKeeper::~ShardLeaseKeeper() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  // Normal destruction == the worker finished its pass: mark the shard
  // done so it is never reclaimed. A lost lease belongs to its new
  // holder, and a process that dies without destructors (SIGKILL,
  // _exit) never reaches this line -- its lease goes stale instead.
  if (!lost()) {
    try {
      ShardQueue::complete(dir_, plan_);
    } catch (...) {
      // Completion failure leaves the shard claimed; it will be
      // reclaimed after the TTL and its journal resumed -- safe.
    }
  }
}

}  // namespace mmr::sim
