#include "sim/world.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "sim/workspace.h"

namespace mmr::sim {
namespace {

// Shared between the plain and workspace-scratch order containers (the
// latter is a pmr vector): identical iota + sort, so the event process
// addresses the same stable ranks either way.
template <typename IndexVec>
void fill_stable_order(const std::vector<channel::Path>& paths,
                       IndexVec& order) {
  order.resize(paths.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (paths[a].is_los != paths[b].is_los) return paths[a].is_los;
    return std::norm(paths[a].gain) > std::norm(paths[b].gain);
  });
}

phy::EstimatorConfig make_estimator_config(const WorldConfig& config) {
  phy::EstimatorConfig est;
  est.noise_gain_0db = phy::noise_reference(config.budget);
  est.pilot_averaging_gain = config.pilot_averaging_gain;
  est.random_cfo_phase = true;
  est.sfo_slope_std_rad = config.sfo_slope_std_rad;
  return est;
}

}  // namespace

LinkWorld::LinkWorld(channel::Environment env, channel::Pose tx_pose,
                     std::shared_ptr<const channel::Trajectory> ue_trajectory,
                     WorldConfig config, Rng rng)
    : env_(std::move(env)), tx_pose_(tx_pose),
      ue_trajectory_(std::move(ue_trajectory)), config_(config), rng_(rng),
      estimator_(make_estimator_config(config), rng_.fork()) {
  MMR_EXPECTS(ue_trajectory_ != nullptr);
  set_time(0.0);
}

void LinkWorld::add_blocker(channel::GeometricBlocker blocker) {
  blockers_.push_back(std::move(blocker));
  set_time(t_s_);
}

void LinkWorld::set_event_process(channel::BlockageEventProcess process) {
  events_ = std::make_unique<channel::BlockageEventProcess>(std::move(process));
  set_time(t_s_);
}

std::vector<std::size_t> LinkWorld::stable_order() const {
  std::vector<std::size_t> order;
  fill_stable_order(paths_, order);
  return order;
}

void LinkWorld::add_irs(channel::IrsPanel panel) {
  irs_panels_.push_back(panel);
  set_time(t_s_);
}

void LinkWorld::set_time(double t_s) {
  t_s_ = t_s;
  const channel::Pose ue = ue_trajectory_->at(t_s);
  env_.trace_into(paths_, tx_pose_, ue);
  for (const auto& panel : irs_panels_) {
    channel::Path p = channel::irs_path(panel, tx_pose_, ue,
                                        env_.carrier_hz());
    if (std::norm(p.gain) > 0.0) paths_.push_back(std::move(p));
  }

  // Geometric blockers: test each path ray against each blocker body.
  for (channel::Path& p : paths_) {
    double atten = 0.0;
    const channel::Vec2* refl = p.is_los ? nullptr : &p.reflection_point;
    for (const auto& blocker : blockers_) {
      atten +=
          blocker.attenuation_db(t_s, tx_pose_.position, ue.position, refl);
    }
    p.blockage_db = atten;
  }

  // Stochastic event process: addressed by stable path index. With a
  // bound workspace the index scratch lives on the trial arena.
  if (events_ != nullptr && !paths_.empty()) {
    if (ws_ != nullptr) {
      auto& order = ws_->order();
      fill_stable_order(paths_, order);
      for (std::size_t rank = 0; rank < order.size(); ++rank) {
        paths_[order[rank]].blockage_db += events_->attenuation_db(t_s, rank);
      }
    } else {
      const std::vector<std::size_t> order = stable_order();
      for (std::size_t rank = 0; rank < order.size(); ++rank) {
        paths_[order[rank]].blockage_db += events_->attenuation_db(t_s, rank);
      }
    }
  }
}

core::LinkProbeInterface LinkWorld::probe_interface() {
  core::LinkProbeInterface link;
  link.csi = [this](const CVec& weights) -> CVec {
    if (paths_.empty()) {
      // Fully occluded: the estimate is pure noise.
      CVec noise(config_.spec.num_subcarriers);
      const double var = phy::noise_reference(config_.budget) /
                         config_.pilot_averaging_gain;
      for (cplx& c : noise) c = rng_.complex_normal(var);
      return noise;
    }
    const CVec truth = channel::effective_csi(paths_, config_.tx_ula, weights,
                                              config_.spec, config_.rx);
    return estimator_.estimate(truth);
  };
  link.cir = [this](const CVec& weights, std::size_t num_taps) -> CVec {
    const double var = phy::noise_reference(config_.budget) /
                       config_.pilot_averaging_gain /
                       static_cast<double>(config_.spec.num_subcarriers);
    CVec cir(num_taps, cplx{});
    if (!paths_.empty()) {
      const double jitter = rng_.normal(0.0, config_.timing_jitter_std_s);
      cir = channel::effective_cir(paths_, config_.tx_ula, weights,
                                   config_.spec, num_taps, config_.rx,
                                   std::abs(jitter));
    }
    // CFO: a common rotation leaves |taps| intact but keeps controllers
    // honest about not relying on absolute phase.
    const cplx rot = std::polar(1.0, rng_.uniform(0.0, 2.0 * 3.14159265358979));
    for (cplx& c : cir) c = c * rot + rng_.complex_normal(var);
    return cir;
  };
  return link;
}

LinkWorld::JointProbe LinkWorld::joint_probe_interface() {
  JointProbe jp;
  jp.csi = [this](const CVec& tx_w, const CVec& rx_w) -> CVec {
    if (paths_.empty()) {
      CVec noise(config_.spec.num_subcarriers);
      const double var = phy::noise_reference(config_.budget) /
                         config_.pilot_averaging_gain;
      for (cplx& c : noise) c = rng_.complex_normal(var);
      return noise;
    }
    const auto rx = channel::RxFrontend::beam(config_.ue_ula, rx_w);
    const CVec truth = channel::effective_csi(paths_, config_.tx_ula, tx_w,
                                              config_.spec, rx);
    return estimator_.estimate(truth);
  };
  jp.cir = [this](const CVec& tx_w, const CVec& rx_w,
                  std::size_t num_taps) -> CVec {
    const double var = phy::noise_reference(config_.budget) /
                       config_.pilot_averaging_gain /
                       static_cast<double>(config_.spec.num_subcarriers);
    CVec cir(num_taps, cplx{});
    if (!paths_.empty()) {
      const auto rx = channel::RxFrontend::beam(config_.ue_ula, rx_w);
      const double jitter = rng_.normal(0.0, config_.timing_jitter_std_s);
      cir = channel::effective_cir(paths_, config_.tx_ula, tx_w, config_.spec,
                                   num_taps, rx, std::abs(jitter));
    }
    const cplx rot = std::polar(1.0, rng_.uniform(0.0, 2.0 * 3.14159265358979));
    for (cplx& c : cir) c = c * rot + rng_.complex_normal(var);
    return cir;
  };
  return jp;
}

double LinkWorld::true_snr_db_joint(const CVec& tx_w, const CVec& rx_w) const {
  if (paths_.empty()) return -300.0;
  const auto rx = channel::RxFrontend::beam(config_.ue_ula, rx_w);
  const double power = channel::received_power(paths_, config_.tx_ula, tx_w,
                                               config_.spec, rx);
  if (power <= 0.0) return -300.0;
  return config_.budget.snr_db(power);
}

double LinkWorld::true_power(const CVec& tx_weights) const {
  if (paths_.empty()) return 0.0;
  if (ws_ != nullptr) {
    const std::size_t n = config_.spec.num_subcarriers;
    auto& freqs = ws_->freqs();
    auto& csi = ws_->csi();
    if (freqs.size() != n) {
      freqs.resize(n);
      channel::fill_freq_grid(config_.spec, freqs.data());
    }
    csi.resize(n);
    return channel::received_power_prepared(paths_, config_.tx_ula,
                                            tx_weights, config_.spec,
                                            config_.rx, freqs.data(),
                                            csi.data());
  }
  return channel::received_power(paths_, config_.tx_ula, tx_weights,
                                 config_.spec, config_.rx);
}

double LinkWorld::true_snr_db(const CVec& tx_weights) const {
  const double power = true_power(tx_weights);
  if (power <= 0.0) return -300.0;
  return config_.budget.snr_db(power);
}

CVec LinkWorld::true_per_antenna_channel() const {
  if (paths_.empty()) return CVec(config_.tx_ula.num_elements, cplx{1e-15, 0});
  return channel::per_antenna_channel(paths_, config_.tx_ula, config_.rx);
}

double LinkWorld::power_for_snr(double snr_db) const {
  return config_.budget.gain_for_snr(snr_db);
}

}  // namespace mmr::sim
