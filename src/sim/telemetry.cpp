#include "sim/telemetry.h"

#include "common/error.h"
#include "sim/runner.h"

namespace mmr::sim {

void MemorySink::on_run_begin(const RunConfig& /*config*/) {
  runs_.emplace_back();
  faults_.emplace_back();
  handovers_.emplace_back();
}

void MemorySink::on_sample(const core::LinkSample& sample) {
  // Tolerate callers that emit samples without a preceding on_run_begin
  // (e.g. hand-driven loops): open an implicit run.
  if (runs_.empty()) {
    runs_.emplace_back();
    faults_.emplace_back();
    handovers_.emplace_back();
  }
  runs_.back().push_back(sample);
}

void MemorySink::on_fault(const core::FaultEvent& event) {
  if (faults_.empty()) {
    runs_.emplace_back();
    faults_.emplace_back();
    handovers_.emplace_back();
  }
  faults_.back().push_back(event);
}

void MemorySink::on_handover(const core::HandoverEvent& event) {
  if (handovers_.empty()) {
    runs_.emplace_back();
    faults_.emplace_back();
    handovers_.emplace_back();
  }
  handovers_.back().push_back(event);
}

void MemorySink::on_trial_failure(const TrialFailure& failure) {
  trial_failures_.push_back(failure);
}

void MemorySink::on_snapshot(const StreamSnapshot& snapshot) {
  snapshots_.push_back(snapshot);
}

void MemorySink::on_run_end(const core::LinkSummary& summary) {
  summaries_.push_back(summary);
}

void MemorySink::on_sweep(const SweepRecord& /*record*/) { ++num_sweeps_; }

namespace {

/// Minimal escaping for strings embedded in the failure records
/// (write_sweep_json escapes its own fields).
std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void JsonLinesSink::record_written() {
  if (flush_every_n_ == 0) return;  // never flush mid-stream
  if (++records_since_flush_ >= flush_every_n_) {
    // Durability contract: at most flush_every_n records lost on a kill
    // (one, with the default policy).
    os_.flush();
    records_since_flush_ = 0;
  }
}

void JsonLinesSink::on_snapshot(const StreamSnapshot& s) {
  const auto flags = os_.flags();
  const auto precision = os_.precision();
  os_.precision(10);
  os_ << "{\"snapshot\": {\"index\": " << s.index << ", \"t_s\": " << s.t_s
      << ", \"live_sessions\": " << s.live_sessions
      << ", \"total_joined\": " << s.total_joined
      << ", \"total_left\": " << s.total_left
      << ", \"window_ticks\": " << s.window_ticks
      << ", \"total_ticks\": " << s.total_ticks
      << ", \"session_ticks_per_s\": " << s.session_ticks_per_s
      << ", \"window_availability\": " << s.window_availability
      << ", \"availability\": " << s.availability
      << ", \"outage_ticks\": " << s.outage_ticks
      << ", \"snr_mean_db\": " << s.snr_mean_db
      << ", \"snr_stddev_db\": " << s.snr_stddev_db
      << ", \"snr_p50_db\": " << s.snr_p50_db
      << ", \"snr_p99_db\": " << s.snr_p99_db
      << ", \"snr_p999_db\": " << s.snr_p999_db
      << ", \"tput_mean_bps\": " << s.tput_mean_bps
      << ", \"tput_stddev_bps\": " << s.tput_stddev_bps
      << ", \"tput_p50_bps\": " << s.tput_p50_bps
      << ", \"tput_p99_bps\": " << s.tput_p99_bps
      << ", \"tput_p999_bps\": " << s.tput_p999_bps
      << ", \"dropped\": " << s.dropped << "}}\n";
  os_.flags(flags);
  os_.precision(precision);
  record_written();
}

void JsonLinesSink::on_sample(const core::LinkSample& sample) {
  if (!per_tick_) return;
  const auto flags = os_.flags();
  const auto precision = os_.precision();
  os_.precision(10);
  os_ << "{\"t_s\": " << sample.t_s << ", \"snr_db\": " << sample.snr_db
      << ", \"throughput_bps\": " << sample.throughput_bps
      << ", \"available\": " << (sample.available ? "true" : "false")
      << "}\n";
  os_.flags(flags);
  os_.precision(precision);
  record_written();
}

void JsonLinesSink::on_fault(const core::FaultEvent& event) {
  const auto flags = os_.flags();
  const auto precision = os_.precision();
  os_.precision(10);
  os_ << "{\"fault\": \"" << core::to_string(event.kind)
      << "\", \"t_s\": " << event.t_s;
  if (event.beam != core::kNoBeam) os_ << ", \"beam\": " << event.beam;
  os_ << ", \"value\": " << event.value << "}\n";
  os_.flags(flags);
  os_.precision(precision);
  record_written();
}

void JsonLinesSink::on_handover(const core::HandoverEvent& event) {
  const auto flags = os_.flags();
  const auto precision = os_.precision();
  os_.precision(10);
  os_ << "{\"handover\": {\"t_s\": " << event.t_s
      << ", \"link\": " << event.link
      << ", \"from_cell\": " << event.from_cell
      << ", \"to_cell\": " << event.to_cell
      << ", \"rsrp_from_db\": " << event.rsrp_from_db
      << ", \"rsrp_to_db\": " << event.rsrp_to_db << "}}\n";
  os_.flags(flags);
  os_.precision(precision);
  record_written();
}

void JsonLinesSink::on_trial_failure(const TrialFailure& failure) {
  os_ << "{\"trial_failure\": {\"index\": " << failure.index
      << ", \"stream_seed\": " << failure.stream_seed
      << ", \"attempts\": " << failure.attempts << ", \"timed_out\": "
      << (failure.timed_out ? "true" : "false") << ", \"quarantined\": "
      << (failure.quarantined() ? "true" : "false") << ", \"error\": \""
      << escape_json(failure.error) << "\"}}\n";
  record_written();
}

void JsonLinesSink::on_sweep(const SweepRecord& record) {
  write_sweep_json(os_, record.name, record.trials, record.timing,
                   record.labels, record.failures);
  record_written();
}

void FanoutSink::add(TelemetrySink* sink) {
  MMR_EXPECTS(sink != nullptr);
  sinks_.push_back(sink);
}

void FanoutSink::on_run_begin(const RunConfig& config) {
  for (TelemetrySink* s : sinks_) s->on_run_begin(config);
}

void FanoutSink::on_sample(const core::LinkSample& sample) {
  for (TelemetrySink* s : sinks_) s->on_sample(sample);
}

void FanoutSink::on_fault(const core::FaultEvent& event) {
  for (TelemetrySink* s : sinks_) s->on_fault(event);
}

void FanoutSink::on_handover(const core::HandoverEvent& event) {
  for (TelemetrySink* s : sinks_) s->on_handover(event);
}

void FanoutSink::on_trial_failure(const TrialFailure& failure) {
  for (TelemetrySink* s : sinks_) s->on_trial_failure(failure);
}

void FanoutSink::on_snapshot(const StreamSnapshot& snapshot) {
  for (TelemetrySink* s : sinks_) s->on_snapshot(snapshot);
}

void FanoutSink::on_run_end(const core::LinkSummary& summary) {
  for (TelemetrySink* s : sinks_) s->on_run_end(summary);
}

void FanoutSink::on_sweep(const SweepRecord& record) {
  for (TelemetrySink* s : sinks_) s->on_sweep(record);
}

}  // namespace mmr::sim
