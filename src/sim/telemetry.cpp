#include "sim/telemetry.h"

#include "common/error.h"
#include "sim/runner.h"

namespace mmr::sim {

void MemorySink::on_run_begin(const RunConfig& /*config*/) {
  runs_.emplace_back();
  faults_.emplace_back();
  handovers_.emplace_back();
}

void MemorySink::on_sample(const core::LinkSample& sample) {
  // Tolerate callers that emit samples without a preceding on_run_begin
  // (e.g. hand-driven loops): open an implicit run.
  if (runs_.empty()) {
    runs_.emplace_back();
    faults_.emplace_back();
    handovers_.emplace_back();
  }
  runs_.back().push_back(sample);
}

void MemorySink::on_fault(const core::FaultEvent& event) {
  if (faults_.empty()) {
    runs_.emplace_back();
    faults_.emplace_back();
    handovers_.emplace_back();
  }
  faults_.back().push_back(event);
}

void MemorySink::on_handover(const core::HandoverEvent& event) {
  if (handovers_.empty()) {
    runs_.emplace_back();
    faults_.emplace_back();
    handovers_.emplace_back();
  }
  handovers_.back().push_back(event);
}

void MemorySink::on_trial_failure(const TrialFailure& failure) {
  trial_failures_.push_back(failure);
}

void MemorySink::on_run_end(const core::LinkSummary& summary) {
  summaries_.push_back(summary);
}

void MemorySink::on_sweep(const SweepRecord& /*record*/) { ++num_sweeps_; }

namespace {

/// Minimal escaping for strings embedded in the failure records
/// (write_sweep_json escapes its own fields).
std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void JsonLinesSink::on_sample(const core::LinkSample& sample) {
  if (!per_tick_) return;
  const auto flags = os_.flags();
  const auto precision = os_.precision();
  os_.precision(10);
  os_ << "{\"t_s\": " << sample.t_s << ", \"snr_db\": " << sample.snr_db
      << ", \"throughput_bps\": " << sample.throughput_bps
      << ", \"available\": " << (sample.available ? "true" : "false")
      << "}\n";
  os_.flags(flags);
  os_.precision(precision);
  os_.flush();  // durability contract: at most one record lost on a kill
}

void JsonLinesSink::on_fault(const core::FaultEvent& event) {
  const auto flags = os_.flags();
  const auto precision = os_.precision();
  os_.precision(10);
  os_ << "{\"fault\": \"" << core::to_string(event.kind)
      << "\", \"t_s\": " << event.t_s;
  if (event.beam != core::kNoBeam) os_ << ", \"beam\": " << event.beam;
  os_ << ", \"value\": " << event.value << "}\n";
  os_.flags(flags);
  os_.precision(precision);
  os_.flush();  // durability contract: at most one record lost on a kill
}

void JsonLinesSink::on_handover(const core::HandoverEvent& event) {
  const auto flags = os_.flags();
  const auto precision = os_.precision();
  os_.precision(10);
  os_ << "{\"handover\": {\"t_s\": " << event.t_s
      << ", \"link\": " << event.link
      << ", \"from_cell\": " << event.from_cell
      << ", \"to_cell\": " << event.to_cell
      << ", \"rsrp_from_db\": " << event.rsrp_from_db
      << ", \"rsrp_to_db\": " << event.rsrp_to_db << "}}\n";
  os_.flags(flags);
  os_.precision(precision);
  os_.flush();  // durability contract: at most one record lost on a kill
}

void JsonLinesSink::on_trial_failure(const TrialFailure& failure) {
  os_ << "{\"trial_failure\": {\"index\": " << failure.index
      << ", \"stream_seed\": " << failure.stream_seed
      << ", \"attempts\": " << failure.attempts << ", \"timed_out\": "
      << (failure.timed_out ? "true" : "false") << ", \"quarantined\": "
      << (failure.quarantined() ? "true" : "false") << ", \"error\": \""
      << escape_json(failure.error) << "\"}}\n";
  os_.flush();  // durability contract: at most one record lost on a kill
}

void JsonLinesSink::on_sweep(const SweepRecord& record) {
  write_sweep_json(os_, record.name, record.trials, record.timing,
                   record.labels, record.failures);
  os_.flush();  // durability contract: at most one record lost on a kill
}

void FanoutSink::add(TelemetrySink* sink) {
  MMR_EXPECTS(sink != nullptr);
  sinks_.push_back(sink);
}

void FanoutSink::on_run_begin(const RunConfig& config) {
  for (TelemetrySink* s : sinks_) s->on_run_begin(config);
}

void FanoutSink::on_sample(const core::LinkSample& sample) {
  for (TelemetrySink* s : sinks_) s->on_sample(sample);
}

void FanoutSink::on_fault(const core::FaultEvent& event) {
  for (TelemetrySink* s : sinks_) s->on_fault(event);
}

void FanoutSink::on_handover(const core::HandoverEvent& event) {
  for (TelemetrySink* s : sinks_) s->on_handover(event);
}

void FanoutSink::on_trial_failure(const TrialFailure& failure) {
  for (TelemetrySink* s : sinks_) s->on_trial_failure(failure);
}

void FanoutSink::on_run_end(const core::LinkSummary& summary) {
  for (TelemetrySink* s : sinks_) s->on_run_end(summary);
}

void FanoutSink::on_sweep(const SweepRecord& record) {
  for (TelemetrySink* s : sinks_) s->on_sweep(record);
}

}  // namespace mmr::sim
