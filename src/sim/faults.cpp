#include "sim/faults.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/error.h"
#include "common/units.h"

namespace mmr::sim {
namespace {

bool prob_ok(double p) { return std::isfinite(p) && p >= 0.0 && p <= 1.0; }

}  // namespace

bool FaultPlan::enabled() const {
  return probe_drop_prob > 0.0 || stale_epoch_prob > 0.0 ||
         csi_phase_noise_rad > 0.0 || csi_amp_noise_db > 0.0 ||
         csi_quant_bits > 0 || nan_tap_prob > 0.0 || snr_bias_db != 0.0;
}

void FaultPlan::validate() const {
  MMR_EXPECTS(prob_ok(probe_drop_prob));
  MMR_EXPECTS(prob_ok(stale_epoch_prob));
  MMR_EXPECTS(stale_epoch_ticks >= 1);
  MMR_EXPECTS(std::isfinite(csi_phase_noise_rad));
  MMR_EXPECTS(csi_phase_noise_rad >= 0.0);
  MMR_EXPECTS(std::isfinite(csi_amp_noise_db));
  MMR_EXPECTS(csi_amp_noise_db >= 0.0);
  MMR_EXPECTS(csi_quant_bits <= 24);
  MMR_EXPECTS(prob_ok(nan_tap_prob));
  MMR_EXPECTS(std::isfinite(snr_bias_db));
}

FaultPlan fault_preset(const std::string& name) {
  FaultPlan plan;
  if (name == "none") return plan;
  if (name == "light") {
    plan.probe_drop_prob = 0.02;
    plan.stale_epoch_prob = 0.01;
    plan.stale_epoch_ticks = 4;
    plan.csi_phase_noise_rad = 0.05;
    plan.csi_amp_noise_db = 0.5;
    plan.nan_tap_prob = 0.005;
    return plan;
  }
  if (name == "moderate") {
    plan.probe_drop_prob = 0.08;
    plan.stale_epoch_prob = 0.03;
    plan.stale_epoch_ticks = 6;
    plan.csi_phase_noise_rad = 0.15;
    plan.csi_amp_noise_db = 1.5;
    plan.csi_quant_bits = 6;
    plan.nan_tap_prob = 0.02;
    plan.snr_bias_db = -1.0;
    return plan;
  }
  if (name == "heavy") {
    plan.probe_drop_prob = 0.2;
    plan.stale_epoch_prob = 0.08;
    plan.stale_epoch_ticks = 10;
    plan.csi_phase_noise_rad = 0.4;
    plan.csi_amp_noise_db = 3.0;
    plan.csi_quant_bits = 4;
    plan.nan_tap_prob = 0.06;
    plan.snr_bias_db = -3.0;
    return plan;
  }
  std::ostringstream msg;
  msg << "unknown fault preset '" << name << "'; registered presets: ";
  const std::vector<std::string> names = fault_preset_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) msg << ", ";
    msg << names[i];
  }
  throw std::invalid_argument(msg.str());
}

std::vector<std::string> fault_preset_names() {
  return {"none", "light", "moderate", "heavy"};
}

FaultInjector::FaultInjector(const FaultPlan& plan,
                             core::LinkProbeInterface inner)
    : plan_(plan), inner_(std::move(inner)), rng_(plan.seed) {
  plan_.validate();
  MMR_EXPECTS(inner_.csi != nullptr);
  MMR_EXPECTS(inner_.cir != nullptr);
}

void FaultInjector::set_listener(core::FaultListener listener) {
  listener_ = std::move(listener);
}

void FaultInjector::emit(core::FaultEventKind kind, std::size_t beam,
                         double value) {
  if (!listener_) return;
  core::FaultEvent ev;
  ev.t_s = t_s_;
  ev.kind = kind;
  ev.beam = beam;
  ev.value = value;
  listener_(ev);
}

void FaultInjector::on_tick(double t_s) {
  t_s_ = t_s;
  if (stale_ticks_left_ > 0) {
    --stale_ticks_left_;
    return;
  }
  if (plan_.stale_epoch_prob > 0.0 && rng_.bernoulli(plan_.stale_epoch_prob)) {
    stale_ticks_left_ = plan_.stale_epoch_ticks;
    emit(core::FaultEventKind::kStaleEpoch, core::kNoBeam,
         static_cast<double>(plan_.stale_epoch_ticks));
  }
}

core::LinkProbeInterface FaultInjector::interface() {
  core::LinkProbeInterface link;
  link.csi = [this](const CVec& w) { return probe_csi(w); };
  link.cir = [this](const CVec& w, std::size_t taps) {
    return probe_cir(w, taps);
  };
  return link;
}

CVec FaultInjector::probe_csi(const CVec& tx_weights) {
  ++probes_seen_;
  if (stale_ticks_left_ > 0 && !last_csi_.empty()) {
    ++stale_replays_;
    return last_csi_;
  }
  return deliver(inner_.csi(tx_weights), last_csi_);
}

CVec FaultInjector::probe_cir(const CVec& tx_weights, std::size_t num_taps) {
  ++probes_seen_;
  // Replay only when the cached CIR has the geometry the caller asked
  // for; otherwise probe live (a frozen feedback link cannot resize).
  if (stale_ticks_left_ > 0 && !last_cir_.empty() &&
      last_cir_taps_ == num_taps) {
    ++stale_replays_;
    return last_cir_;
  }
  CVec out = deliver(inner_.cir(tx_weights, num_taps), last_cir_);
  last_cir_taps_ = num_taps;
  return out;
}

CVec FaultInjector::deliver(CVec report, CVec& last) {
  if (plan_.probe_drop_prob > 0.0 && rng_.bernoulli(plan_.probe_drop_prob)) {
    ++probes_dropped_;
    emit(core::FaultEventKind::kProbeDropped, core::kNoBeam,
         static_cast<double>(report.size()));
    // The report never arrives; the stale cache keeps its previous
    // contents (a drop is loss, not corruption of stored feedback).
    return CVec{};
  }
  perturb(report);
  last = report;
  return report;
}

void FaultInjector::perturb(CVec& report) {
  if (report.empty()) return;
  // Amplitude noise first (log-normal gain error), then phase noise, so
  // the two draws stay interpretable in dB / radians independently.
  if (plan_.csi_amp_noise_db > 0.0) {
    for (cplx& h : report) {
      h *= from_db_amp(rng_.normal(0.0, plan_.csi_amp_noise_db));
    }
  }
  if (plan_.csi_phase_noise_rad > 0.0) {
    for (cplx& h : report) {
      h *= std::polar(1.0, rng_.normal(0.0, plan_.csi_phase_noise_rad));
    }
  }
  // Uniform mid-rise I/Q quantizer scaled to the report's own peak
  // component, like a fixed-point feedback word with a per-report AGC.
  if (plan_.csi_quant_bits > 0) {
    double peak = 0.0;
    for (const cplx& h : report) {
      peak = std::max({peak, std::abs(h.real()), std::abs(h.imag())});
    }
    if (peak > 0.0) {
      const double step =
          peak / static_cast<double>(std::size_t{1} << (plan_.csi_quant_bits - 1));
      for (cplx& h : report) {
        h = cplx{std::round(h.real() / step) * step,
                 std::round(h.imag() / step) * step};
      }
    }
  }
  // Constant report bias: the receiver's power estimate is off by
  // snr_bias_db, i.e. every amplitude by half that in dB.
  if (plan_.snr_bias_db != 0.0) {
    const double scale = from_db_amp(plan_.snr_bias_db);
    for (cplx& h : report) h *= scale;
  }
  // Plant one corrupted feedback word: NaN and Inf alternate so both
  // non-finite classes exercise the consumers.
  if (plan_.nan_tap_prob > 0.0 && rng_.bernoulli(plan_.nan_tap_prob)) {
    const std::size_t tap = static_cast<std::size_t>(
        rng_.uniform_index(static_cast<std::uint64_t>(report.size())));
    const double bad = (nonfinite_taps_ % 2 == 0)
                           ? std::numeric_limits<double>::quiet_NaN()
                           : std::numeric_limits<double>::infinity();
    report[tap] = cplx{bad, bad};
    ++nonfinite_taps_;
    emit(core::FaultEventKind::kNonFiniteTap, core::kNoBeam,
         static_cast<double>(tap));
  }
}

}  // namespace mmr::sim
