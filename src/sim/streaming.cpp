#include "sim/streaming.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>

#include "common/error.h"
#include "common/rng.h"
#include "sim/workspace.h"

namespace mmr::sim {
namespace {

/// Sub-stream id for a shard's churn draws (same splitmix64 derivation
/// discipline as sim::kFaultSeedStream / net::kPlacementSeedStream).
inline constexpr std::uint64_t kChurnSeedStream = 0x5EAC;

double wall_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Knuth Poisson draw by uniform products -- exact inversion is overkill
/// for the per-tick arrival intensities (lambda << 10) churn runs at.
std::uint64_t poisson_draw(Rng& rng, double lambda) {
  const double limit = std::exp(-lambda);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform();
  } while (p > limit);
  return k - 1;
}

}  // namespace

void ChurnModel::validate() const {
  MMR_EXPECTS(std::isfinite(arrival_rate_per_s) && arrival_rate_per_s >= 0.0);
  MMR_EXPECTS(std::isfinite(mean_lifetime_s) && mean_lifetime_s >= 0.0);
}

void StreamingSpec::validate() const {
  network.validate();
  churn.validate();
  MMR_EXPECTS(!name.empty());
  MMR_EXPECTS(shards >= 1);
  MMR_EXPECTS(seed != 0);
  MMR_EXPECTS(std::isfinite(duration_s) && duration_s > 0.0);
  MMR_EXPECTS(std::isfinite(snapshot_every_s) &&
              snapshot_every_s >= network.run.tick_s);
  MMR_EXPECTS(queue_capacity >= 1);
}

/// One shard: a session table (its own interference/handover domain), a
/// workspace arena bound to every session world, a churn stream, slot
/// lifetime deadlines, and the shard-local O(1) accumulators. Everything
/// a shard computes is a pure function of the spec + shard index, never
/// of the worker schedule.
struct StreamingService::Shard {
  std::size_t index = 0;
  // Workspace declared before the network: worlds keep a pointer into it,
  // so it must be destroyed after them.
  std::unique_ptr<TrialWorkspace> workspace;
  std::unique_ptr<net::Network> network;
  Rng churn_rng{1};
  std::uint64_t next_local_id = 0;
  std::uint64_t joined = 0;
  std::uint64_t left = 0;
  /// Slot-indexed departure deadline (+inf = immortal).
  std::vector<double> death_s;

  StreamingMoments snr;
  StreamingMoments tput;
  P2Quantile snr_p50{0.5}, snr_p99{0.99}, snr_p999{0.999};
  P2Quantile tput_p50{0.5}, tput_p99{0.99}, tput_p999{0.999};
  AvailabilityCounter avail;
};

/// Bounded drop-oldest snapshot queue with a single drain thread. push()
/// never blocks: a full ring sheds its OLDEST entry and bumps the
/// dropped-count watermark. The drain thread is the only caller of the
/// sink, preserving the one-thread-at-a-time sink contract.
struct StreamingService::SnapshotQueue {
  SnapshotQueue(TelemetrySink* sink, std::size_t capacity)
      : sink_(sink), ring_(capacity) {
    thread_ = std::thread([this] { drain_loop(); });
  }
  ~SnapshotQueue() { stop(); }

  void push(const StreamSnapshot& snapshot) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (count_ == ring_.size()) {
        head_ = (head_ + 1) % ring_.size();
        --count_;
        dropped_.fetch_add(1, std::memory_order_relaxed);
      }
      ring_[(head_ + count_) % ring_.size()] = snapshot;
      ++count_;
    }
    cv_.notify_one();
  }

  /// Drain everything still queued, then join the thread. Idempotent.
  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  void drain_loop() {
    for (;;) {
      StreamSnapshot snapshot;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return count_ > 0 || done_; });
        if (count_ == 0) return;  // done_ and drained
        snapshot = ring_[head_];
        head_ = (head_ + 1) % ring_.size();
        --count_;
      }
      sink_->on_snapshot(snapshot);
    }
  }

  TelemetrySink* sink_;
  std::vector<StreamSnapshot> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::atomic<std::uint64_t> dropped_{0};
  bool done_ = false;
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
};

StreamingService::StreamingService(const StreamingSpec& spec,
                                   TelemetrySink* sink)
    : spec_(spec), sink_(sink) {
  spec_.validate();
}

StreamingService::~StreamingService() = default;

std::size_t StreamingService::live_sessions() const {
  std::size_t live = 0;
  for (const auto& sh : shards_) live += sh->network->live_count();
  return live;
}

std::uint64_t StreamingService::dropped_snapshots() const {
  return queue_ != nullptr ? queue_->dropped() : 0;
}

void StreamingService::begin() {
  MMR_EXPECTS(!begun_);
  begun_ = true;
  epoch_ = 0;
  snapshot_index_ = 0;
  last_snapshot_ticks_ = 0;
  const double tick = spec_.network.run.tick_s;
  ticks_per_snapshot_ = static_cast<std::uint64_t>(
      std::llround(spec_.snapshot_every_s / tick));
  if (ticks_per_snapshot_ == 0) ticks_per_snapshot_ = 1;

  // jobs=1 steps the shards inline on this thread: no pool dispatch, no
  // per-epoch task packaging -- the steady-state tick loop is
  // allocation-free (pinned by the alloc tier). jobs=K>1 fans the shard
  // sweep over a pool; either way the accumulator fold below is
  // orchestrator-side and in shard-index order, so results are identical.
  const std::size_t jobs =
      spec_.jobs == 0 ? ThreadPool::hardware_jobs() : spec_.jobs;
  if (jobs > 1) pool_ = std::make_unique<ThreadPool>(jobs);
  if (spec_.async_snapshots && sink_ != nullptr) {
    queue_ = std::make_unique<SnapshotQueue>(sink_, spec_.queue_capacity);
  }

  shards_.reserve(spec_.shards);
  for (std::size_t k = 0; k < spec_.shards; ++k) {
    auto sh = std::make_unique<Shard>();
    sh->index = k;
    // Shard 0 takes the service seed VERBATIM -- the same convention as
    // the engine's link 0, so a 1-shard/1-session service collapses to
    // the engine trial with scenario seed == spec.seed.
    const std::uint64_t shard_seed =
        k == 0 ? spec_.seed : Rng::derive_stream_seed(spec_.seed, k);
    sh->workspace = std::make_unique<TrialWorkspace>();
    sh->network = std::make_unique<net::Network>(
        spec_.network, shard_seed, sh->workspace.get(),
        /*populate_sessions=*/false);
    sh->network->set_record_samples(false);
    sh->network->begin();
    sh->churn_rng = Rng(Rng::derive_stream_seed(shard_seed, kChurnSeedStream));
    shards_.push_back(std::move(sh));
  }
  // Initial population, round-robin across shards: global session g lands
  // in shard g % shards with local ordinal g / shards, so its id is
  // exactly g (id = ordinal * shards + shard).
  for (std::size_t g = 0; g < spec_.sessions; ++g) {
    Shard& sh = *shards_[g % spec_.shards];
    const std::uint64_t id = sh.next_local_id++ * spec_.shards + sh.index;
    const std::size_t slot = sh.network->join(id, 0.0);
    if (sh.death_s.size() < sh.network->slot_count()) {
      sh.death_s.resize(sh.network->slot_count(),
                        std::numeric_limits<double>::infinity());
    }
    sh.death_s[slot] =
        spec_.churn.enabled() && spec_.churn.mean_lifetime_s > 0.0
            ? -spec_.churn.mean_lifetime_s * std::log(1.0 - sh.churn_rng.uniform())
            : std::numeric_limits<double>::infinity();
    ++sh.joined;
  }
  last_snapshot_wall_s_ = wall_now_s();
}

void StreamingService::process_churn(Shard& sh, double t_s) {
  // Departures first, so arrivals can recycle the freed slots this tick.
  for (std::size_t slot = 0; slot < sh.network->slot_count(); ++slot) {
    if (sh.network->slot_live(slot) && sh.death_s[slot] <= t_s) {
      sh.network->leave(slot);
      sh.death_s[slot] = std::numeric_limits<double>::infinity();
      ++sh.left;
    }
  }
  const double lambda = spec_.churn.arrival_rate_per_s /
                        static_cast<double>(spec_.shards) *
                        spec_.network.run.tick_s;
  if (lambda <= 0.0) return;
  const std::size_t cap =
      spec_.max_sessions > 0
          ? std::max<std::size_t>(1, spec_.max_sessions / spec_.shards)
          : std::numeric_limits<std::size_t>::max();
  const std::uint64_t arrivals = poisson_draw(sh.churn_rng, lambda);
  for (std::uint64_t a = 0; a < arrivals; ++a) {
    if (sh.network->live_count() >= cap) break;
    const std::uint64_t id = sh.next_local_id++ * spec_.shards + sh.index;
    const std::size_t slot = sh.network->join(id, t_s);
    if (sh.death_s.size() < sh.network->slot_count()) {
      sh.death_s.resize(sh.network->slot_count(),
                        std::numeric_limits<double>::infinity());
    }
    sh.death_s[slot] =
        spec_.churn.mean_lifetime_s > 0.0
            ? t_s - spec_.churn.mean_lifetime_s *
                        std::log(1.0 - sh.churn_rng.uniform())
            : std::numeric_limits<double>::infinity();
    ++sh.joined;
  }
}

void StreamingService::accumulate(Shard& sh, double /*t_s*/) {
  const double outage = spec_.network.run.outage_snr_db;
  const std::span<const core::LinkSample> samples = sh.network->tick_samples();
  for (std::size_t slot = 0; slot < sh.network->slot_count(); ++slot) {
    if (!sh.network->slot_live(slot)) continue;
    const core::LinkSample& sample = samples[slot];
    sh.snr.add(sample.snr_db);
    sh.snr_p50.add(sample.snr_db);
    sh.snr_p99.add(sample.snr_db);
    sh.snr_p999.add(sample.snr_db);
    sh.tput.add(sample.throughput_bps);
    sh.tput_p50.add(sample.throughput_bps);
    sh.tput_p99.add(sample.throughput_bps);
    sh.tput_p999.add(sample.throughput_bps);
    sh.avail.add(sample.available, sample.snr_db >= outage);
  }
}

void StreamingService::step_epoch() {
  MMR_EXPECTS(begun_);
  const double t = static_cast<double>(epoch_) * spec_.network.run.tick_s;
  const bool churn_on = spec_.churn.enabled();
  auto tick_shard = [this, t, churn_on](std::size_t k) {
    Shard& sh = *shards_[k];
    if (churn_on) process_churn(sh, t);
    sh.network->step_tick(t);
    accumulate(sh, t);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(shards_.size(), tick_shard);
  } else {
    for (std::size_t k = 0; k < shards_.size(); ++k) tick_shard(k);
  }
  ++epoch_;
  if (epoch_ % ticks_per_snapshot_ == 0) {
    emit_snapshot(static_cast<double>(epoch_) * spec_.network.run.tick_s);
  }
}

void StreamingService::emit_snapshot(double t_s) {
  // Fold the shard accumulators in SHARD-INDEX ORDER on this (the
  // orchestrator) thread: the merged bits are a pure function of the
  // shard states, so jobs=K output is byte-identical to jobs=1.
  StreamingMoments snr, tput;
  P2Quantile snr_p50(0.5), snr_p99(0.99), snr_p999(0.999);
  P2Quantile tput_p50(0.5), tput_p99(0.99), tput_p999(0.999);
  AvailabilityCounter avail;
  std::uint64_t joined = 0, left = 0, live = 0;
  for (const auto& shp : shards_) {
    const Shard& sh = *shp;
    snr.merge_from(sh.snr);
    tput.merge_from(sh.tput);
    snr_p50.merge_from(sh.snr_p50);
    snr_p99.merge_from(sh.snr_p99);
    snr_p999.merge_from(sh.snr_p999);
    tput_p50.merge_from(sh.tput_p50);
    tput_p99.merge_from(sh.tput_p99);
    tput_p999.merge_from(sh.tput_p999);
    avail.merge_from(sh.avail);
    joined += sh.joined;
    left += sh.left;
    live += sh.network->live_count();
  }

  StreamSnapshot s;
  s.t_s = t_s;
  s.index = snapshot_index_++;
  s.live_sessions = live;
  s.total_joined = joined;
  s.total_left = left;
  s.window_ticks = avail.window_ticks();
  s.total_ticks = avail.ticks();
  if (!spec_.freeze_timing) {
    const double now = wall_now_s();
    const double dt = now - last_snapshot_wall_s_;
    s.session_ticks_per_s =
        dt > 0.0 ? static_cast<double>(s.total_ticks - last_snapshot_ticks_) / dt
                 : 0.0;
    last_snapshot_wall_s_ = now;
  }
  last_snapshot_ticks_ = s.total_ticks;
  s.window_availability = avail.window_availability();
  s.availability = avail.availability();
  s.outage_ticks = avail.outage();
  if (snr.count() > 0) {
    s.snr_mean_db = snr.mean();
    s.snr_stddev_db = snr.stddev();
    s.snr_p50_db = snr_p50.quantile();
    s.snr_p99_db = snr_p99.quantile();
    s.snr_p999_db = snr_p999.quantile();
    s.tput_mean_bps = tput.mean();
    s.tput_stddev_bps = tput.stddev();
    s.tput_p50_bps = tput_p50.quantile();
    s.tput_p99_bps = tput_p99.quantile();
    s.tput_p999_bps = tput_p999.quantile();
  }
  s.dropped = dropped_snapshots();

  for (auto& shp : shards_) shp->avail.reset_window();
  last_snapshot_ = s;
  deliver(s);
}

void StreamingService::deliver(const StreamSnapshot& snapshot) {
  if (sink_ == nullptr) return;
  if (queue_ != nullptr) {
    queue_->push(snapshot);
  } else {
    sink_->on_snapshot(snapshot);
  }
}

StreamingResult StreamingService::run() {
  begin();
  const auto num_epochs = static_cast<std::uint64_t>(
      spec_.duration_s / spec_.network.run.tick_s);
  for (std::uint64_t i = 0; i < num_epochs; ++i) step_epoch();
  return finish();
}

StreamingResult StreamingService::finish() {
  MMR_EXPECTS(begun_);
  // Close a partial final window, if any ticks landed since the last
  // cadence boundary.
  bool pending = false;
  for (const auto& sh : shards_) {
    if (sh->avail.window_ticks() > 0) pending = true;
  }
  if (pending) {
    emit_snapshot(static_cast<double>(epoch_) * spec_.network.run.tick_s);
  }
  if (queue_ != nullptr) queue_->stop();

  StreamingResult result;
  result.epochs = epoch_;
  result.snapshots_emitted = snapshot_index_;
  result.snapshots_dropped = dropped_snapshots();
  for (const auto& sh : shards_) {
    result.total_joined += sh->joined;
    result.total_left += sh->left;
  }
  result.live_sessions = live_sessions();
  result.final_snapshot = last_snapshot_;
  return result;
}

}  // namespace mmr::sim
