// Sharded distributed campaigns over the PR-5 CampaignJournal.
//
// A campaign's trial index space can be partitioned across N worker
// processes (or machines): worker i runs the trials it OWNS under a
// ShardPlan and checkpoints them into its own shard journal
// (BASE.<campaign>.shard-i-of-N.journal) whose header extends the
// campaign fingerprint with the shard spec. Because every trial's
// randomness derives purely from (base_seed, index) -- never from which
// trials ran before it -- shard k's trial j is bit-identical to the
// single-process trial j, and merging the shard journals back into one
// unsharded journal reconstitutes the exact single-process campaign.
//
// The pieces:
//   * ShardPlan: "which trials does worker i of N own" (strided
//     round-robin, so heterogeneous trial costs balance across workers).
//   * merge_journals(): validate a set of shard journals (same campaign
//     key field-for-field, one consistent shard count, disjoint and
//     covering shard indices) and write the merged UNSHARDED journal
//     atomically. Trials a shard never completed (crash before
//     checkpoint, or quarantined -- quarantined trials are never
//     journaled) are simply absent; replaying the merged journal through
//     Engine::run re-runs exactly those, re-quarantining deterministic
//     failures, so the merged JSON is byte-identical to the 1-process
//     run under --freeze-timing.
//   * ShardQueue: a file-based work queue (claim-by-rename) so a fleet
//     of identical workers can self-assign shards:
//       tickets/  one permanent marker per shard, created with
//                 O_CREAT|O_EXCL -- the init winner for a ticket is the
//                 only process that offers it in todo/, so late
//                 initializers cannot resurrect an already-claimed shard;
//       todo/     claimable shard tickets;
//       claimed/  rename(2) target -- POSIX rename is atomic, so exactly
//                 one claimant wins each ticket. The claimed marker IS
//                 the worker's lease: host/pid/renewal-count content,
//                 rewritten (atomically) by the worker's heartbeat so its
//                 mtime proves liveness;
//       done/     rename target on completion -- a done shard is never
//                 reclaimed or re-offered.
//     A crashed worker's shard stays in claimed/ with a lease that goes
//     stale: once the lease's age exceeds ttl + grace, any claimer
//     auto-reclaims it (rename back to todo/) and resumes it via the
//     shard journal's --resume path. Staleness is measured against the
//     mtime of a probe file freshly touched in the SAME queue directory,
//     so both timestamps come from the queue filesystem's clock and
//     cross-machine wall-clock skew cannot fake (or hide) a death. The
//     contract that keeps renewal race-free: ttl + grace must comfortably
//     exceed the heartbeat interval (the keeper renews every ttl/4).
//
// Validation failures throw JournalMismatchError naming the offending
// field (and file), mirroring the journal's own refuse-to-resume
// contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace mmr::sim {

struct CampaignKey;  // sim/journal.h

/// A strided partition of the trial index space: worker `index` of
/// `count` owns trial t iff t % count == index. count == 0 means "not
/// sharded" (owns everything); count == 1 is a valid single-shard plan
/// (owns everything, but journals carry the shard header).
struct ShardPlan {
  std::size_t index = 0;
  std::size_t count = 0;

  bool enabled() const { return count > 0; }
  bool valid() const { return count == 0 || index < count; }
  bool owns(std::size_t trial) const {
    return count <= 1 || trial % count == index;
  }
  /// Trials of `total` this shard owns.
  std::size_t owned_of(std::size_t total) const;

  /// "shard-<i>-of-<N>": the journal-filename infix and queue ticket name.
  std::string suffix() const;

  /// Strict "i/N" (e.g. "0/3"): base-10 only, i < N, N >= 1.
  static std::optional<ShardPlan> parse(const std::string& text);
  /// Strict "shard-<i>-of-<N>" (the suffix()/ticket format).
  static std::optional<ShardPlan> parse_suffix(const std::string& name);

  friend bool operator==(const ShardPlan&, const ShardPlan&) = default;
};

/// What merge_journals() did.
struct MergeStats {
  std::size_t shard_count = 0;
  /// Completed trials carried into the merged journal.
  std::size_t merged_trials = 0;
  /// Trials of key.trials no shard had checkpointed (they re-run when the
  /// merged journal is replayed).
  std::size_t missing_trials = 0;
  /// Shard journals carrying an intact seal footer (finished workers);
  /// the rest were in-progress or crashed and their missing trials re-run.
  std::size_t sealed_shards = 0;
};

/// Validate `shard_paths` as a complete shard set for `key` and write the
/// merged UNSHARDED journal to `merged_path` (atomically; an existing file
/// is replaced). Throws JournalMismatchError naming the offending field
/// and file when a journal is unsharded, belongs to a different campaign
/// (name / base seed / trial count / seed policy / config fingerprint),
/// disagrees on the shard count, duplicates a shard index (overlap), or
/// leaves a shard index uncovered (missing); throws std::runtime_error on
/// I/O failure.
MergeStats merge_journals(const std::vector<std::string>& shard_paths,
                          const std::string& merged_path,
                          const CampaignKey& key);

/// Discover the shard journals next to an unsharded journal path
/// ("<stem>.journal" -> every "<stem>.shard-<i>-of-<N>.journal" in the
/// same directory), sorted by (count, index). Purely lexical + directory
/// scan; merge_journals() does the real validation.
std::vector<std::string> discover_shard_journals(
    const std::string& merged_path);

/// Tuning for lease-based shard claims. A worker's heartbeat rewrites
/// its lease every ttl/4; a lease older than ttl + grace is presumed
/// dead and reclaimable. grace < 0 means "ttl / 4".
struct LeaseOptions {
  double ttl_s = 300.0;
  double grace_s = -1.0;

  double effective_grace_s() const {
    return grace_s < 0.0 ? ttl_s / 4.0 : grace_s;
  }
};

/// Who holds a claimed shard, parsed from its lease file.
struct LeaseInfo {
  std::string host;
  long pid = 0;
  std::uint64_t renewals = 0;

  /// "host/pid" -- how errors and progress lines name the holder.
  std::string describe() const {
    return host + "/" + std::to_string(pid);
  }
};

/// Thrown by requeue() when the shard's holder is demonstrably alive
/// (its lease is fresher than ttl + grace): forcibly re-offering a live
/// worker's shard would run the same trials twice.
class LeaseHeldError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// File-based shard work queue (see the header comment). POSIX-only:
/// on platforms without O_EXCL open + atomic rename the calls throw.
class ShardQueue {
 public:
  /// Queue population counts (for fleet progress reporting).
  struct Counts {
    std::size_t todo = 0;
    std::size_t claimed = 0;
    std::size_t done = 0;
  };

  /// Create the queue layout under `dir` (made if missing) and offer one
  /// ticket per shard of `count`. Idempotent and concurrency-safe: any
  /// number of workers may race init() with the same count; a different
  /// count for an existing queue throws.
  static void init(const std::string& dir, std::size_t count);

  /// Claim the lowest-numbered claimable shard ticket, or std::nullopt
  /// when none remain. Exactly one concurrent claimant wins any ticket.
  /// When todo/ is empty, claimed/ shards whose lease has gone stale
  /// (age > ttl + grace, measured against the queue's probe file) are
  /// auto-reclaimed and re-claimed -- a SIGKILL'd worker's shard flows
  /// to the next free worker without operator intervention. The winner's
  /// lease file is stamped with this process's host/pid.
  static std::optional<ShardPlan> claim(const std::string& dir,
                                        const LeaseOptions& opts = {});

  /// Heartbeat: atomically rewrite the lease for a shard this process
  /// holds, refreshing its mtime. Returns false (without throwing) when
  /// the lease is gone or now names another holder -- the shard was
  /// reclaimed out from under us and this worker must stop writing to
  /// its journal.
  static bool renew(const std::string& dir, const ShardPlan& plan);

  /// Mark a held shard finished: move its ticket claimed/ -> done/.
  /// Idempotent (already-done is a no-op); a done shard is never
  /// reclaimed or re-offered.
  static void complete(const std::string& dir, const ShardPlan& plan);

  /// Re-offer a claimed shard: move its ticket back to todo/. Refuses
  /// with LeaseHeldError -- naming the live holder -- when the shard's
  /// lease is fresher than ttl + grace; no-op when the ticket is already
  /// in todo/ or in done/; throws std::runtime_error if `plan` was never
  /// a ticket of this queue.
  static void requeue(const std::string& dir, const ShardPlan& plan,
                      const LeaseOptions& opts = {});

  /// The lease of a claimed shard, or nullopt when the shard is not in
  /// claimed/ (or its lease file is unreadable mid-rewrite).
  static std::optional<LeaseInfo> holder(const std::string& dir,
                                         const ShardPlan& plan);

  /// How many tickets sit in todo/, claimed/, and done/ right now.
  static Counts counts(const std::string& dir);
};

/// RAII heartbeat for one claimed shard: a background thread renews the
/// lease every ttl/4 until destruction. Destruction stops the heartbeat
/// and marks the shard complete() -- unless the lease was lost (lost()
/// is sticky true once a renewal finds the lease reclaimed), in which
/// case the shard is left alone for its new holder. A worker that dies
/// without running destructors (SIGKILL, _exit) simply stops renewing,
/// which is exactly what lets the fleet reclaim its shard.
class ShardLeaseKeeper {
 public:
  ShardLeaseKeeper(std::string dir, ShardPlan plan, LeaseOptions opts = {});
  ~ShardLeaseKeeper();

  ShardLeaseKeeper(const ShardLeaseKeeper&) = delete;
  ShardLeaseKeeper& operator=(const ShardLeaseKeeper&) = delete;

  /// True once a renewal found the lease reclaimed by someone else.
  bool lost() const { return lost_.load(std::memory_order_relaxed); }

  const ShardPlan& plan() const { return plan_; }

 private:
  std::string dir_;
  ShardPlan plan_;
  LeaseOptions opts_;
  std::atomic<bool> lost_{false};
  bool stop_ = false;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::thread heartbeat_;
};

}  // namespace mmr::sim
