// Sharded distributed campaigns over the PR-5 CampaignJournal.
//
// A campaign's trial index space can be partitioned across N worker
// processes (or machines): worker i runs the trials it OWNS under a
// ShardPlan and checkpoints them into its own shard journal
// (BASE.<campaign>.shard-i-of-N.journal) whose header extends the
// campaign fingerprint with the shard spec. Because every trial's
// randomness derives purely from (base_seed, index) -- never from which
// trials ran before it -- shard k's trial j is bit-identical to the
// single-process trial j, and merging the shard journals back into one
// unsharded journal reconstitutes the exact single-process campaign.
//
// The pieces:
//   * ShardPlan: "which trials does worker i of N own" (strided
//     round-robin, so heterogeneous trial costs balance across workers).
//   * merge_journals(): validate a set of shard journals (same campaign
//     key field-for-field, one consistent shard count, disjoint and
//     covering shard indices) and write the merged UNSHARDED journal
//     atomically. Trials a shard never completed (crash before
//     checkpoint, or quarantined -- quarantined trials are never
//     journaled) are simply absent; replaying the merged journal through
//     Engine::run re-runs exactly those, re-quarantining deterministic
//     failures, so the merged JSON is byte-identical to the 1-process
//     run under --freeze-timing.
//   * ShardQueue: a file-based work queue (claim-by-rename) so a fleet
//     of identical workers can self-assign shards:
//       tickets/  one permanent marker per shard, created with
//                 O_CREAT|O_EXCL -- the init winner for a ticket is the
//                 only process that offers it in todo/, so late
//                 initializers cannot resurrect an already-claimed shard;
//       todo/     claimable shard tickets;
//       claimed/  rename(2) target -- POSIX rename is atomic, so exactly
//                 one claimant wins each ticket.
//     A crashed worker's shard stays in claimed/; requeue() moves it
//     back to todo/ and the next worker resumes it via the shard
//     journal's --resume path.
//
// Validation failures throw JournalMismatchError naming the offending
// field (and file), mirroring the journal's own refuse-to-resume
// contract.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace mmr::sim {

struct CampaignKey;  // sim/journal.h

/// A strided partition of the trial index space: worker `index` of
/// `count` owns trial t iff t % count == index. count == 0 means "not
/// sharded" (owns everything); count == 1 is a valid single-shard plan
/// (owns everything, but journals carry the shard header).
struct ShardPlan {
  std::size_t index = 0;
  std::size_t count = 0;

  bool enabled() const { return count > 0; }
  bool valid() const { return count == 0 || index < count; }
  bool owns(std::size_t trial) const {
    return count <= 1 || trial % count == index;
  }
  /// Trials of `total` this shard owns.
  std::size_t owned_of(std::size_t total) const;

  /// "shard-<i>-of-<N>": the journal-filename infix and queue ticket name.
  std::string suffix() const;

  /// Strict "i/N" (e.g. "0/3"): base-10 only, i < N, N >= 1.
  static std::optional<ShardPlan> parse(const std::string& text);
  /// Strict "shard-<i>-of-<N>" (the suffix()/ticket format).
  static std::optional<ShardPlan> parse_suffix(const std::string& name);

  friend bool operator==(const ShardPlan&, const ShardPlan&) = default;
};

/// What merge_journals() did.
struct MergeStats {
  std::size_t shard_count = 0;
  /// Completed trials carried into the merged journal.
  std::size_t merged_trials = 0;
  /// Trials of key.trials no shard had checkpointed (they re-run when the
  /// merged journal is replayed).
  std::size_t missing_trials = 0;
};

/// Validate `shard_paths` as a complete shard set for `key` and write the
/// merged UNSHARDED journal to `merged_path` (atomically; an existing file
/// is replaced). Throws JournalMismatchError naming the offending field
/// and file when a journal is unsharded, belongs to a different campaign
/// (name / base seed / trial count / seed policy / config fingerprint),
/// disagrees on the shard count, duplicates a shard index (overlap), or
/// leaves a shard index uncovered (missing); throws std::runtime_error on
/// I/O failure.
MergeStats merge_journals(const std::vector<std::string>& shard_paths,
                          const std::string& merged_path,
                          const CampaignKey& key);

/// Discover the shard journals next to an unsharded journal path
/// ("<stem>.journal" -> every "<stem>.shard-<i>-of-<N>.journal" in the
/// same directory), sorted by (count, index). Purely lexical + directory
/// scan; merge_journals() does the real validation.
std::vector<std::string> discover_shard_journals(
    const std::string& merged_path);

/// File-based shard work queue (see the header comment). POSIX-only:
/// on platforms without O_EXCL open + atomic rename the calls throw.
class ShardQueue {
 public:
  /// Create the queue layout under `dir` (made if missing) and offer one
  /// ticket per shard of `count`. Idempotent and concurrency-safe: any
  /// number of workers may race init() with the same count; a different
  /// count for an existing queue throws.
  static void init(const std::string& dir, std::size_t count);

  /// Claim the lowest-numbered unclaimed shard ticket, or std::nullopt
  /// when none remain. Exactly one concurrent claimant wins any ticket.
  static std::optional<ShardPlan> claim(const std::string& dir);

  /// Re-offer a claimed shard (crashed worker): move its ticket back to
  /// todo/. No-op if the ticket is already claimable; throws if `plan`
  /// was never a ticket of this queue.
  static void requeue(const std::string& dir, const ShardPlan& plan);
};

}  // namespace mmr::sim
