#include "sim/journal.h"

#include <bit>
#include <cerrno>
#include <cinttypes>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/atomic_file.h"
#include "common/error.h"
#ifdef __unix__
#include "common/fs_ops.h"
#endif

namespace mmr::sim {
namespace {

constexpr int kJournalFormat = 1;

// ---------------------------------------------------------------------------
// Serialization helpers. Doubles round-trip as raw IEEE-754 bit patterns so
// a replayed trial is the exact bits the original run produced.

std::string bits_of(double v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, std::bit_cast<std::uint64_t>(v));
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

const char* seed_policy_name(SeedPolicy policy) {
  return policy == SeedPolicy::kFixed ? "fixed" : "per_trial_stream";
}

// ---------------------------------------------------------------------------
// A strict positional scanner for the journal's own line format. Any
// deviation flips `ok` and stays false: the caller treats the line as torn.

struct Cursor {
  const std::string& s;
  std::size_t pos = 0;
  bool ok = true;

  bool lit(const char* text) {
    if (!ok) return false;
    const std::size_t n = std::strlen(text);
    if (s.compare(pos, n, text) != 0) return ok = false;
    pos += n;
    return true;
  }

  bool u64(std::uint64_t& out) {
    if (!ok) return false;
    std::size_t start = pos;
    std::uint64_t value = 0;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
      const std::uint64_t digit = static_cast<std::uint64_t>(s[pos] - '0');
      if (value > (UINT64_MAX - digit) / 10) return ok = false;
      value = value * 10 + digit;
      ++pos;
    }
    if (pos == start) return ok = false;
    out = value;
    return true;
  }

  /// Quoted string with the writer's escaping undone.
  bool quoted(std::string& out) {
    if (!ok || !lit("\"")) return false;
    out.clear();
    while (pos < s.size() && s[pos] != '"') {
      char c = s[pos++];
      if (c == '\\') {
        if (pos >= s.size()) return ok = false;
        const char e = s[pos++];
        if (e == 'n') {
          c = '\n';
        } else if (e == '"' || e == '\\') {
          c = e;
        } else {
          return ok = false;
        }
      }
      out.push_back(c);
    }
    return lit("\"");
  }

  /// Quoted "0x%016x" double bit pattern.
  bool bits(double& out) {
    if (!ok || !lit("\"0x")) return false;
    std::uint64_t value = 0;
    std::size_t digits = 0;
    while (pos < s.size() && digits < 16) {
      const char c = s[pos];
      int nibble;
      if (c >= '0' && c <= '9') {
        nibble = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        nibble = c - 'a' + 10;
      } else {
        break;
      }
      value = (value << 4) | static_cast<std::uint64_t>(nibble);
      ++digits;
      ++pos;
    }
    if (digits != 16) return ok = false;
    if (!lit("\"")) return false;
    out = std::bit_cast<double>(value);
    return true;
  }

  /// Quoted "0x%016x" 64-bit hex value (the fingerprint encoding).
  bool hex16(std::uint64_t& out) {
    if (!ok || !lit("\"0x")) return false;
    std::uint64_t value = 0;
    std::size_t digits = 0;
    while (pos < s.size() && digits < 16) {
      const char c = s[pos];
      int nibble;
      if (c >= '0' && c <= '9') {
        nibble = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        nibble = c - 'a' + 10;
      } else {
        break;
      }
      value = (value << 4) | static_cast<std::uint64_t>(nibble);
      ++digits;
      ++pos;
    }
    if (digits != 16) return ok = false;
    if (!lit("\"")) return false;
    out = value;
    return true;
  }

  bool boolean(bool& out) {
    if (!ok) return false;
    if (s.compare(pos, 4, "true") == 0) {
      out = true;
      pos += 4;
      return true;
    }
    if (s.compare(pos, 5, "false") == 0) {
      out = false;
      pos += 5;
      return true;
    }
    return ok = false;
  }

  bool done() const { return ok && pos == s.size(); }
};

bool parse_fault_kind(const std::string& name, core::FaultEventKind& out) {
  using K = core::FaultEventKind;
  for (K kind : {K::kProbeDropped, K::kStaleEpoch, K::kNonFiniteTap,
                 K::kProbeFailure, K::kFallbackLastGood, K::kBackoff,
                 K::kEstimateRejected, K::kSanitizedReport,
                 K::kRetrainTriggered}) {
    if (name == core::to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

std::string header_line(const CampaignKey& key, const ShardPlan& shard) {
  std::ostringstream os;
  os << "{\"campaign_header\": {\"format\": " << kJournalFormat
     << ", \"name\": \"" << escape(key.name)
     << "\", \"base_seed\": " << key.base_seed
     << ", \"trials\": " << key.trials << ", \"seed_policy\": \""
     << seed_policy_name(key.seed_policy) << "\", \"fingerprint\": \"";
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, key.fingerprint);
  os << buf << "\"";
  // The shard field exists only in shard-worker journals: an unsharded
  // header is byte-identical to the pre-shard format, so old journals
  // resume and the merged journal reproduces a 1-process journal exactly.
  if (shard.enabled()) {
    os << ", \"shard\": {\"index\": " << shard.index
       << ", \"count\": " << shard.count << "}";
  }
  os << "}}\n";
  return os.str();
}

bool parse_header_line(const std::string& line, CampaignKey& out,
                       ShardPlan& shard) {
  Cursor c{line};
  std::uint64_t format = 0, trials = 0, fingerprint = 0;
  std::string policy;
  c.lit("{\"campaign_header\": {\"format\": ");
  c.u64(format);
  c.lit(", \"name\": ");
  c.quoted(out.name);
  c.lit(", \"base_seed\": ");
  c.u64(out.base_seed);
  c.lit(", \"trials\": ");
  c.u64(trials);
  c.lit(", \"seed_policy\": ");
  c.quoted(policy);
  c.lit(", \"fingerprint\": ");
  c.hex16(fingerprint);
  shard = ShardPlan{};
  if (c.ok && c.pos < line.size() && line[c.pos] == ',') {
    std::uint64_t shard_index = 0, shard_count = 0;
    c.lit(", \"shard\": {\"index\": ");
    c.u64(shard_index);
    c.lit(", \"count\": ");
    c.u64(shard_count);
    c.lit("}");
    // A shard field must describe a real shard: count >= 1, index < count.
    if (!c.ok || shard_count == 0 || shard_index >= shard_count) {
      return false;
    }
    shard.index = static_cast<std::size_t>(shard_index);
    shard.count = static_cast<std::size_t>(shard_count);
  }
  c.lit("}}");
  if (!c.done() || format != kJournalFormat) return false;
  out.trials = static_cast<std::size_t>(trials);
  if (policy == "fixed") {
    out.seed_policy = SeedPolicy::kFixed;
  } else if (policy == "per_trial_stream") {
    out.seed_policy = SeedPolicy::kPerTrialStream;
  } else {
    return false;
  }
  out.fingerprint = fingerprint;
  return true;
}

std::string trial_line(const JournalTrial& t) {
  std::ostringstream os;
  os << "{\"trial\": {\"index\": " << t.index << ", \"wall_bits\": "
     << "\"" << bits_of(t.wall_s) << "\", \"cpu_bits\": \""
     << bits_of(t.cpu_s) << "\", \"label\": \"" << escape(t.label)
     << "\", \"summary_bits\": [\"" << bits_of(t.summary.reliability)
     << "\", \"" << bits_of(t.summary.mean_throughput_bps) << "\", \""
     << bits_of(t.summary.mean_spectral_efficiency) << "\", \""
     << bits_of(t.summary.throughput_reliability_product)
     << "\"], \"num_samples\": " << t.summary.num_samples
     << ", \"faults\": [";
  for (std::size_t i = 0; i < t.faults.size(); ++i) {
    const core::FaultEvent& ev = t.faults[i];
    if (i > 0) os << ", ";
    os << "{\"kind\": \"" << core::to_string(ev.kind) << "\", \"t_bits\": \""
       << bits_of(ev.t_s) << "\", \"beam\": " << ev.beam
       << ", \"value_bits\": \"" << bits_of(ev.value) << "\"}";
  }
  os << "]}}\n";
  return os.str();
}

bool parse_trial_line(const std::string& line, JournalTrial& out) {
  Cursor c{line};
  std::uint64_t index = 0, num_samples = 0;
  c.lit("{\"trial\": {\"index\": ");
  c.u64(index);
  c.lit(", \"wall_bits\": ");
  c.bits(out.wall_s);
  c.lit(", \"cpu_bits\": ");
  c.bits(out.cpu_s);
  c.lit(", \"label\": ");
  c.quoted(out.label);
  c.lit(", \"summary_bits\": [");
  c.bits(out.summary.reliability);
  c.lit(", ");
  c.bits(out.summary.mean_throughput_bps);
  c.lit(", ");
  c.bits(out.summary.mean_spectral_efficiency);
  c.lit(", ");
  c.bits(out.summary.throughput_reliability_product);
  c.lit("], \"num_samples\": ");
  c.u64(num_samples);
  c.lit(", \"faults\": [");
  out.faults.clear();
  if (c.ok && c.pos < line.size() && line[c.pos] != ']') {
    while (c.ok) {
      core::FaultEvent ev;
      std::string kind;
      std::uint64_t beam = 0;
      c.lit("{\"kind\": ");
      c.quoted(kind);
      c.lit(", \"t_bits\": ");
      c.bits(ev.t_s);
      c.lit(", \"beam\": ");
      c.u64(beam);
      c.lit(", \"value_bits\": ");
      c.bits(ev.value);
      c.lit("}");
      if (!c.ok || !parse_fault_kind(kind, ev.kind)) return false;
      ev.beam = static_cast<std::size_t>(beam);
      out.faults.push_back(ev);
      if (c.pos < line.size() && line[c.pos] == ',') {
        c.lit(", ");
        continue;
      }
      break;
    }
  }
  c.lit("]}}");
  if (!c.done()) return false;
  out.index = static_cast<std::size_t>(index);
  out.summary.num_samples = static_cast<std::size_t>(num_samples);
  return true;
}

std::string seal_line(const JournalSeal& seal) {
  std::ostringstream os;
  os << "{\"campaign_seal\": {\"format\": " << kJournalFormat
     << ", \"trials\": " << seal.trials << ", \"fingerprint\": \"";
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, seal.fingerprint);
  os << buf << "\"}}\n";
  return os.str();
}

bool parse_seal_line(const std::string& line, JournalSeal& out) {
  Cursor c{line};
  std::uint64_t format = 0, trials = 0, fingerprint = 0;
  c.lit("{\"campaign_seal\": {\"format\": ");
  c.u64(format);
  c.lit(", \"trials\": ");
  c.u64(trials);
  c.lit(", \"fingerprint\": ");
  c.hex16(fingerprint);
  c.lit("}}");
  if (!c.done() || format != kJournalFormat) return false;
  out.trials = static_cast<std::size_t>(trials);
  out.fingerprint = fingerprint;
  return true;
}

// ---------------------------------------------------------------------------
// Fingerprinting: FNV-1a 64 over a canonical serialization of the spec's
// declarative state (doubles as bit patterns, fields in fixed order).

struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void feed(std::string_view text) {
    for (unsigned char c : text) {
      h ^= c;
      h *= 0x100000001b3ull;
    }
  }
  void u64(std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ";", v);
    feed(buf);
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    feed(s);
    feed("\0;", 2);
  }
  void feed(const char* data, std::size_t n) {
    feed(std::string_view(data, n));
  }
};

}  // namespace

std::uint64_t journal_fnv1a(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fingerprint_spec(const ExperimentSpec& spec) {
  Fnv f;
  f.str(spec.name);
  // Scenario.
  f.str(spec.scenario.name);
  f.u64(spec.scenario.config.tx_elements);
  f.u64(spec.scenario.config.codebook_size);
  f.u64(spec.scenario.config.seed);
  f.u64(spec.scenario.config.sparse_room ? 1 : 0);
  f.f64(spec.scenario.config.tx_power_dbm);
  f.f64(spec.scenario.ue_velocity.x);
  f.f64(spec.scenario.ue_velocity.y);
  f.f64(spec.scenario.ue_rotation_rate_rad_s);
  f.f64(spec.scenario.ue_start.x);
  f.f64(spec.scenario.ue_start.y);
  f.f64(spec.scenario.link_distance_m);
  f.f64(spec.scenario.irs_gain_db);
  f.f64(spec.scenario.irs_position.x);
  f.f64(spec.scenario.irs_position.y);
  f.u64(spec.scenario.blockers.size());
  for (const BlockerSpec& b : spec.scenario.blockers) {
    f.f64(b.crossing_time_s);
    f.f64(b.speed_mps);
    f.f64(b.depth_db);
  }
  // Controller.
  f.str(spec.controller.name);
  f.u64(spec.controller.max_beams);
  f.u64(spec.controller.enable_tracking ? 1 : 0);
  f.u64(spec.controller.enable_cc_refresh ? 1 : 0);
  // RunConfig (incl. the full fault plan).
  f.f64(spec.run.duration_s);
  f.f64(spec.run.tick_s);
  f.f64(spec.run.outage_snr_db);
  f.f64(spec.run.protocol_overhead);
  f.f64(spec.run.faults.probe_drop_prob);
  f.f64(spec.run.faults.stale_epoch_prob);
  f.u64(spec.run.faults.stale_epoch_ticks);
  f.f64(spec.run.faults.csi_phase_noise_rad);
  f.f64(spec.run.faults.csi_amp_noise_db);
  f.u64(spec.run.faults.csi_quant_bits);
  f.f64(spec.run.faults.nan_tap_prob);
  f.f64(spec.run.faults.snr_bias_db);
  f.u64(spec.run.faults.seed);
  // Sweep shape.
  f.u64(spec.trials);
  f.u64(spec.seed);
  f.u64(spec.seed_policy == SeedPolicy::kFixed ? 1 : 0);
  f.u64(spec.record_samples ? 1 : 0);
  return f.h;
}

CampaignKey campaign_key(const ExperimentSpec& spec) {
  CampaignKey key;
  key.name = spec.name;
  key.base_seed = spec.seed;
  key.trials = spec.trials;
  key.seed_policy = spec.seed_policy;
  key.fingerprint = fingerprint_spec(spec);
  return key;
}

CampaignJournal::CampaignJournal(std::string path, CampaignKey key,
                                 ShardPlan shard)
    : path_(std::move(path)), key_(std::move(key)), shard_(shard) {
  MMR_EXPECTS(!path_.empty());
  MMR_EXPECTS(shard_.valid());
  bool exists = false;
  {
    std::ifstream in(path_);
    std::string line;
    if (in && std::getline(in, line) && !line.empty()) {
      exists = true;
      CampaignKey found;
      ShardPlan found_shard;
      if (!parse_header_line(line, found, found_shard)) {
        throw JournalMismatchError("campaign journal '" + path_ +
                                   "' has an unreadable header; refusing "
                                   "to resume (delete it to start over)");
      }
      const auto mismatch = [&](const std::string& what) {
        throw JournalMismatchError(
            "campaign journal '" + path_ + "' belongs to a different " +
            "campaign (" + what + " differs); refusing to resume");
      };
      if (found.name != key_.name) mismatch("name");
      if (found.base_seed != key_.base_seed) mismatch("base seed");
      if (found.trials != key_.trials) mismatch("trial count");
      if (found.seed_policy != key_.seed_policy) mismatch("seed policy");
      if (found.fingerprint != key_.fingerprint) {
        mismatch("config fingerprint");
      }
      if (found_shard.count != shard_.count) mismatch("shard count");
      if (found_shard.index != shard_.index) mismatch("shard index");
      // Load completed trials, keeping the raw bytes of every intact
      // record line (the seal fingerprints those bytes). Loading stops at
      // the first torn/foreign line -- a crash can only tear the tail --
      // but the scan continues so a seal footer is still found: a seal
      // that disagrees with the surviving records means the file lost or
      // gained bytes in transport, not that a worker crashed early.
      std::string kept;  // intact record lines, verbatim, in file order
      std::optional<JournalSeal> found_seal;
      bool damaged = false;
      bool after_seal = false;
      while (std::getline(in, line)) {
        if (found_seal.has_value()) {
          if (!line.empty()) after_seal = true;
          continue;
        }
        JournalSeal seal;
        if (parse_seal_line(line, seal)) {
          found_seal = seal;
          continue;
        }
        if (damaged) continue;
        JournalTrial trial;
        if (!parse_trial_line(line, trial) || trial.index >= key_.trials ||
            (shard_.enabled() && !shard_.owns(trial.index))) {
          damaged = true;
          continue;
        }
        kept += line;
        kept += '\n';
        records_fnv_ = journal_fnv1a(line, records_fnv_);
        records_fnv_ = journal_fnv1a("\n", records_fnv_);
        ++record_count_;
        completed_.emplace(trial.index, std::move(trial));
      }
      if (found_seal.has_value() &&
          (damaged || after_seal || found_seal->trials != record_count_ ||
           found_seal->fingerprint != records_fnv_)) {
        throw JournalMismatchError(
            "campaign journal '" + path_ + "' has a seal footer that does " +
            "not match its records (seal says " +
            std::to_string(found_seal->trials) + " trials, file holds " +
            std::to_string(record_count_) +
            " intact); the file was damaged in transport, not crashed "
            "mid-write -- refusing to resume");
      }
      // Re-opening for append must never concatenate onto torn bytes or a
      // seal footer: atomically rewrite the file back to header + intact
      // records (the seal, if any, was just proven honest and is
      // re-stamped when this pass completes).
      if (damaged || found_seal.has_value()) {
        AtomicFile::write(path_, header_line(key_, shard_) + kept);
      }
    }
  }
  if (!exists) {
    AtomicFile::write(path_, header_line(key_, shard_));
  }
#ifdef __unix__
  out_fd_ = fsio::open_retry(path_, O_WRONLY | O_APPEND, 0644);
#else
  out_ = std::fopen(path_.c_str(), "ab");
  if (out_ == nullptr) {
    throw std::runtime_error("cannot open campaign journal for append: '" +
                             path_ + "': " + std::strerror(errno));
  }
#endif
}

CampaignJournal::~CampaignJournal() {
#ifdef __unix__
  if (out_fd_ >= 0) (void)fsio::ops().close_fn(out_fd_);
#else
  if (out_ != nullptr) std::fclose(out_);
#endif
}

void CampaignJournal::record(const JournalTrial& trial) {
  // A shard journal must never hold a trial its shard does not own --
  // the merge validator would (rightly) reject the whole journal.
  MMR_EXPECTS(!shard_.enabled() || shard_.owns(trial.index));
  const std::string line = trial_line(trial);
  std::lock_guard<std::mutex> lock(mutex_);
  // The seal is the "nothing more will be written" promise; recording
  // past it would silently invalidate the fingerprint.
  MMR_EXPECTS(!sealed_);
#ifdef __unix__
  fsio::write_all(out_fd_, line.data(), line.size(), path_);
  // One fsync per completed trial: the durability point of the journal.
  fsio::fsync_retry(out_fd_, path_);
#else
  if (std::fwrite(line.data(), 1, line.size(), out_) != line.size() ||
      std::fflush(out_) != 0) {
    throw std::runtime_error("campaign journal append failed: '" + path_ +
                             "': " + std::strerror(errno));
  }
#endif
  records_fnv_ = journal_fnv1a(line, records_fnv_);
  ++record_count_;
}

void CampaignJournal::seal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sealed_) return;
  const std::string line =
      seal_line(JournalSeal{record_count_, records_fnv_});
#ifdef __unix__
  fsio::write_all(out_fd_, line.data(), line.size(), path_);
  fsio::fsync_retry(out_fd_, path_);
#else
  if (std::fwrite(line.data(), 1, line.size(), out_) != line.size() ||
      std::fflush(out_) != 0) {
    throw std::runtime_error("campaign journal seal failed: '" + path_ +
                             "': " + std::strerror(errno));
  }
#endif
  sealed_ = true;
}

LoadedJournal read_journal_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open journal: '" + path +
                             "': " + std::strerror(errno));
  }
  LoadedJournal out;
  std::string line;
  if (!std::getline(in, line) || line.empty() ||
      !parse_header_line(line, out.key, out.shard)) {
    throw JournalMismatchError("journal '" + path +
                               "' has an unreadable header");
  }
  while (std::getline(in, line)) {
    if (out.seal.has_value()) {
      if (!line.empty()) out.content_after_seal = true;
      continue;
    }
    JournalSeal seal;
    if (parse_seal_line(line, seal)) {
      out.seal = seal;
      continue;
    }
    if (out.torn_tail) continue;
    JournalTrial trial;
    if (!parse_trial_line(line, trial)) {
      // Record loading stops at the first torn line, but the scan keeps
      // looking for a seal: a seal over records that are no longer all
      // there is transport damage, and seal_intact() must see it.
      out.torn_tail = true;
      continue;
    }
    // Intact records are returned even when out of range / outside the
    // shard's ownership: the merge validator rejects those loudly, which
    // beats silently treating a corrupt journal's trials as missing.
    out.records_fnv = journal_fnv1a(line, out.records_fnv);
    out.records_fnv = journal_fnv1a("\n", out.records_fnv);
    out.trials.push_back(std::move(trial));
  }
  return out;
}

std::string journal_header_line(const CampaignKey& key,
                                const ShardPlan& shard) {
  return header_line(key, shard);
}

std::string journal_trial_line(const JournalTrial& trial) {
  return trial_line(trial);
}

std::string journal_seal_line(const JournalSeal& seal) {
  return seal_line(seal);
}

}  // namespace mmr::sim
