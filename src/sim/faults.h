// Deterministic fault injection for the probe/CSI path.
//
// mmReliable's reliability claims only mean something if the controller
// pipeline degrades gracefully when its measurements do -- so FaultPlan
// declares a perturbation model for everything a controller sees through
// LinkProbeInterface, and FaultInjector applies it between the world and
// the controller:
//   * dropped probe reports (the report never arrives: empty CSI/CIR),
//   * stale-CSI epochs (feedback frozen: the last delivered report is
//     replayed for k consecutive ticks),
//   * per-tap amplitude/phase noise and quantization error,
//   * NaN/Inf channel taps (corrupted feedback words),
//   * SNR-report bias (mis-calibrated receiver gain).
//
// Determinism: the injector draws from its own Rng seeded by
// FaultPlan::seed. The engine derives that seed per trial from the trial's
// stream seed (sub-stream kFaultSeedStream), so jobs=K stays bit-identical
// to jobs=1 and faulted sweeps reproduce like clean ones. A default
// (all-zero) plan is inert: run_experiment does not construct an injector
// at all, keeping the no-fault path byte-identical to a plan-free run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/events.h"
#include "core/link_interface.h"

namespace mmr::sim {

/// Declarative fault model carried on RunConfig (and through it on
/// ExperimentSpec::run). All-zero (the default) means no faults.
struct FaultPlan {
  /// Probability a probe report is lost in flight (empty report).
  double probe_drop_prob = 0.0;
  /// Per-tick probability of entering a stale-CSI epoch while not in one.
  double stale_epoch_prob = 0.0;
  /// Length of a stale-CSI epoch in controller ticks.
  std::size_t stale_epoch_ticks = 4;
  /// Std-dev of per-tap phase noise [rad].
  double csi_phase_noise_rad = 0.0;
  /// Std-dev of per-tap amplitude noise [dB] (log-normal perturbation).
  double csi_amp_noise_db = 0.0;
  /// Quantize each tap's I/Q to this many bits (0 = off, max 24).
  std::size_t csi_quant_bits = 0;
  /// Probability a report gets one NaN/Inf tap planted in it.
  double nan_tap_prob = 0.0;
  /// Constant power bias applied to every report [dB] (negative = the
  /// receiver under-reports its SNR).
  double snr_bias_db = 0.0;
  /// Injector stream seed. 0 = derive from the trial's stream seed
  /// (sub-stream kFaultSeedStream), which is what the engine does.
  std::uint64_t seed = 0;

  /// True when any perturbation is switched on.
  bool enabled() const;
  /// MMR_EXPECTS (std::logic_error) on malformed plans: probabilities
  /// outside [0, 1], negative or non-finite noise sigmas, non-finite
  /// bias, zero-length stale epochs, quantization beyond 24 bits.
  void validate() const;
};

/// Named escalation presets for the CLI and the resilience bench:
/// "none" < "light" < "moderate" < "heavy". Unknown names throw
/// std::invalid_argument listing the registered presets (same contract as
/// the scenario/controller registries).
FaultPlan fault_preset(const std::string& name);
/// Preset names in escalation order.
std::vector<std::string> fault_preset_names();

/// Sub-stream id the engine forks each trial's fault seed from.
inline constexpr std::uint64_t kFaultSeedStream = 0xFA17;

/// Wraps a LinkProbeInterface and perturbs every report per a FaultPlan.
/// Single-threaded, one per trial; must outlive the interface() handles.
class FaultInjector {
 public:
  /// `plan` must be valid (validate() passes). The injector keeps its own
  /// copy of `inner` and draws all randomness from Rng(plan.seed).
  FaultInjector(const FaultPlan& plan, core::LinkProbeInterface inner);

  /// Listener for injected-fault events (kProbeDropped, kStaleEpoch,
  /// kNonFiniteTap). Pass nullptr to detach.
  void set_listener(core::FaultListener listener);

  /// Advance per-tick state (stale-epoch entry/decay) at time t. Call
  /// once per controller tick, before the controller probes.
  void on_tick(double t_s);

  /// The perturbed probe interface to hand the controller. References
  /// this injector; do not use after the injector is destroyed.
  core::LinkProbeInterface interface();

  /// True while a stale-CSI epoch is freezing feedback.
  bool in_stale_epoch() const { return stale_ticks_left_ > 0; }

  // Injection counters (for tests and campaign reports).
  std::size_t probes_seen() const { return probes_seen_; }
  std::size_t probes_dropped() const { return probes_dropped_; }
  std::size_t stale_replays() const { return stale_replays_; }
  std::size_t nonfinite_taps() const { return nonfinite_taps_; }

 private:
  CVec probe_csi(const CVec& tx_weights);
  CVec probe_cir(const CVec& tx_weights, std::size_t num_taps);
  /// Drop/perturb one fresh report; updates the stale-replay cache.
  CVec deliver(CVec report, CVec& last);
  void perturb(CVec& report);
  void emit(core::FaultEventKind kind, std::size_t beam, double value);

  FaultPlan plan_;
  core::LinkProbeInterface inner_;
  Rng rng_;
  core::FaultListener listener_;

  double t_s_ = 0.0;
  std::size_t stale_ticks_left_ = 0;
  CVec last_csi_;
  CVec last_cir_;
  std::size_t last_cir_taps_ = 0;

  std::size_t probes_seen_ = 0;
  std::size_t probes_dropped_ = 0;
  std::size_t stale_replays_ = 0;
  std::size_t nonfinite_taps_ = 0;
};

}  // namespace mmr::sim
