// Trial-granular checkpoint journal for durable campaigns.
//
// A CampaignJournal is a JSON-lines file: one atomically-written header
// line identifying the campaign (spec name, base seed, trial count, seed
// policy, and a fingerprint of every config scalar), followed by one line
// per COMPLETED trial, appended and fsync'd as trials finish. Because
// every trial's randomness derives purely from (base_seed, index), a
// journaled trial can be replayed -- summary, timing, label, and fault
// events restored bit-exactly -- instead of re-run, so a campaign killed
// at any point resumes by re-running only the missing indices and emits
// output byte-identical to an uninterrupted run.
//
// Durability contract:
//   * the header is written via common::AtomicFile (write-temp + fsync +
//     rename), so a journal either exists with a complete header or not
//     at all;
//   * each trial record is one line, flushed and fsync'd before record()
//     returns -- a SIGKILL loses at most the trial(s) still in flight;
//   * a torn trailing line (killed mid-append) is tolerated on load: the
//     damaged record and anything after it are ignored, the file is
//     truncated back to its intact prefix (atomically rewritten) so new
//     appends never concatenate onto torn bytes, and those trials simply
//     re-run;
//   * all doubles are serialized as raw IEEE-754 bit patterns (hex), so a
//     replayed value is the exact bits the original run produced.
//
// Seal footer (the multi-machine transport convention): a shard worker
// that finishes its pass over the owned trials writes one fsync'd seal
// line -- record count + FNV-1a fingerprint over the raw bytes of every
// trial record line -- as the journal's last line. A sealed journal is
// safe to rsync/copy between machines: a partial copy either loses the
// seal (classified as in-progress, missing trials re-run -- safe) or
// keeps a seal that no longer matches the records (rejected loudly with
// a JournalMismatchError naming the seal mismatch -- never silently
// treated as an early crash). Unsealed journals are loadable and
// mergeable exactly as before the seal existed.
//
// Safety contract: opening a journal whose header does not match the
// campaign key (different name, seed, trials, seed policy, or config
// fingerprint) throws JournalMismatchError -- resuming someone else's
// checkpoint silently would corrupt results.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/events.h"
#include "core/metrics.h"
#include "sim/engine.h"
#include "sim/shard.h"

namespace mmr::sim {

/// One completed trial as persisted in (and replayed from) the journal.
struct JournalTrial {
  std::size_t index = 0;
  double wall_s = 0.0;
  double cpu_s = 0.0;
  std::string label;
  core::LinkSummary summary;
  std::vector<core::FaultEvent> faults;
};

/// Identity of a campaign: the journal refuses to resume under any other.
struct CampaignKey {
  std::string name;
  std::uint64_t base_seed = 1;
  std::size_t trials = 1;
  SeedPolicy seed_policy = SeedPolicy::kPerTrialStream;
  /// fingerprint_spec() over every config scalar of the ExperimentSpec.
  std::uint64_t fingerprint = 0;
};

/// FNV-1a over a canonical serialization of the spec's declarative state:
/// scenario (name + every knob), controller (name + knobs), RunConfig
/// (incl. the full FaultPlan), trials/seed/seed_policy/record_samples.
/// The `customize`/`label` hooks cannot be fingerprinted -- they are
/// assumed stable for the same binary and flags (documented in DESIGN.md).
std::uint64_t fingerprint_spec(const ExperimentSpec& spec);

/// The spec's full journal identity (name/seed/trials/policy/fingerprint).
CampaignKey campaign_key(const ExperimentSpec& spec);

/// Thrown when a journal exists but belongs to a different campaign (or
/// its header is unreadable, or its seal footer denounces the records).
class JournalMismatchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Seal footer of a completed shard journal: how many trial record lines
/// the worker wrote and the FNV-1a-64 fingerprint over their raw bytes
/// (each line including its trailing newline, in file order).
struct JournalSeal {
  std::size_t trials = 0;
  std::uint64_t fingerprint = 0;

  friend bool operator==(const JournalSeal&, const JournalSeal&) = default;
};

/// FNV-1a-64 offset basis / running fold used by the seal fingerprint
/// (exposed so tests and the watch merger can recompute it over record
/// lines).
inline constexpr std::uint64_t kJournalFnvOffset = 0xcbf29ce484222325ull;
std::uint64_t journal_fnv1a(std::string_view bytes,
                            std::uint64_t seed = kJournalFnvOffset);

class CampaignJournal {
 public:
  /// Open-or-create `path` for `key`. An existing journal is validated
  /// against `key` (JournalMismatchError on mismatch) and its completed
  /// trials loaded; a missing/empty one is created with an atomically
  /// written header. Throws std::runtime_error on I/O failure.
  ///
  /// `shard` (default: not sharded) stamps the shard spec into the header
  /// and validates it on resume: a shard worker's journal can only be
  /// resumed by the SAME shard of the SAME campaign (mismatched shard
  /// index/count throw JournalMismatchError like every other key field).
  /// An unsharded plan writes the exact pre-shard header bytes, so
  /// existing journals stay readable and resumable.
  CampaignJournal(std::string path, CampaignKey key, ShardPlan shard = {});
  ~CampaignJournal();

  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  const std::string& path() const { return path_; }
  const CampaignKey& key() const { return key_; }
  const ShardPlan& shard() const { return shard_; }

  /// Trials already completed by previous runs, keyed by index (the state
  /// at open; record() does not add to it).
  const std::map<std::size_t, JournalTrial>& completed() const {
    return completed_;
  }

  /// Append one completed trial and make it durable (flush + fsync)
  /// before returning. Thread-safe: workers call this concurrently.
  /// Calling record() on a sealed journal is a logic error (MMR_EXPECTS):
  /// the seal is the worker's "nothing more will be written" promise.
  void record(const JournalTrial& trial);

  /// Append the fsync'd seal footer (record count + FNV-1a fingerprint
  /// over every record line written or replayed through this journal).
  /// Idempotent: sealing a journal this handle already sealed is a no-op.
  /// After seal() the file is safe to copy between machines -- see the
  /// transport convention in the header comment.
  void seal();

  /// True once this handle has written (or re-confirmed) the seal footer.
  bool sealed() const { return sealed_; }

 private:
  std::string path_;
  CampaignKey key_;
  ShardPlan shard_;
  std::map<std::size_t, JournalTrial> completed_;
#ifdef __unix__
  int out_fd_ = -1;
#else
  std::FILE* out_ = nullptr;
#endif
  /// Running FNV-1a over the raw bytes of every intact record line (loaded
  /// prefix + everything record() appended), i.e. what seal() will stamp.
  std::uint64_t records_fnv_ = kJournalFnvOffset;
  std::size_t record_count_ = 0;
  bool sealed_ = false;
  std::mutex mutex_;
};

/// A journal file parsed without resuming it: identity, shard spec
/// (disabled for unsharded journals), every intact trial record, and the
/// seal state observed on disk.
struct LoadedJournal {
  CampaignKey key;
  ShardPlan shard;
  std::vector<JournalTrial> trials;
  /// The seal footer, when one was found (regardless of whether it
  /// matches the records -- callers check seal_intact()).
  std::optional<JournalSeal> seal;
  /// FNV-1a over the raw bytes of every intact record line, in file
  /// order (what an honest seal must carry).
  std::uint64_t records_fnv = kJournalFnvOffset;
  /// True when the file ended in a damaged (torn) trailing line.
  bool torn_tail = false;
  /// True when non-empty lines follow the seal footer -- a sealed
  /// journal promises the seal is the last line, so this is corruption.
  bool content_after_seal = false;

  /// True when a seal is present and vouches exactly for the records
  /// read: matching count, matching fingerprint, nothing torn, nothing
  /// after it. A sealed-looking journal failing this is NOT an early
  /// crash -- it lost or gained bytes in transport.
  bool seal_intact() const {
    return seal.has_value() && !torn_tail && !content_after_seal &&
           seal->trials == trials.size() && seal->fingerprint == records_fnv;
  }
};

/// Read `path` as a journal: throws std::runtime_error when the file
/// cannot be opened and JournalMismatchError when the header is
/// unreadable; trial loading stops at the first torn line. Unlike the
/// resume path, intact records outside the trial range or the shard's
/// ownership ARE returned -- merge validation rejects them by name
/// instead of silently re-running "missing" trials.
LoadedJournal read_journal_file(const std::string& path);

/// The exact line bytes the journal writes (exposed for the shard merge
/// writer, which must reproduce a 1-process journal byte-for-byte, and
/// for tests that forge journals).
std::string journal_header_line(const CampaignKey& key,
                                const ShardPlan& shard = {});
std::string journal_trial_line(const JournalTrial& trial);
std::string journal_seal_line(const JournalSeal& seal);

}  // namespace mmr::sim
