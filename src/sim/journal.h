// Trial-granular checkpoint journal for durable campaigns.
//
// A CampaignJournal is a JSON-lines file: one atomically-written header
// line identifying the campaign (spec name, base seed, trial count, seed
// policy, and a fingerprint of every config scalar), followed by one line
// per COMPLETED trial, appended and fsync'd as trials finish. Because
// every trial's randomness derives purely from (base_seed, index), a
// journaled trial can be replayed -- summary, timing, label, and fault
// events restored bit-exactly -- instead of re-run, so a campaign killed
// at any point resumes by re-running only the missing indices and emits
// output byte-identical to an uninterrupted run.
//
// Durability contract:
//   * the header is written via common::AtomicFile (write-temp + fsync +
//     rename), so a journal either exists with a complete header or not
//     at all;
//   * each trial record is one line, flushed and fsync'd before record()
//     returns -- a SIGKILL loses at most the trial(s) still in flight;
//   * a torn trailing line (killed mid-append) is tolerated on load: the
//     damaged record and anything after it are ignored and those trials
//     simply re-run;
//   * all doubles are serialized as raw IEEE-754 bit patterns (hex), so a
//     replayed value is the exact bits the original run produced.
//
// Safety contract: opening a journal whose header does not match the
// campaign key (different name, seed, trials, seed policy, or config
// fingerprint) throws JournalMismatchError -- resuming someone else's
// checkpoint silently would corrupt results.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/events.h"
#include "core/metrics.h"
#include "sim/engine.h"
#include "sim/shard.h"

namespace mmr::sim {

/// One completed trial as persisted in (and replayed from) the journal.
struct JournalTrial {
  std::size_t index = 0;
  double wall_s = 0.0;
  double cpu_s = 0.0;
  std::string label;
  core::LinkSummary summary;
  std::vector<core::FaultEvent> faults;
};

/// Identity of a campaign: the journal refuses to resume under any other.
struct CampaignKey {
  std::string name;
  std::uint64_t base_seed = 1;
  std::size_t trials = 1;
  SeedPolicy seed_policy = SeedPolicy::kPerTrialStream;
  /// fingerprint_spec() over every config scalar of the ExperimentSpec.
  std::uint64_t fingerprint = 0;
};

/// FNV-1a over a canonical serialization of the spec's declarative state:
/// scenario (name + every knob), controller (name + knobs), RunConfig
/// (incl. the full FaultPlan), trials/seed/seed_policy/record_samples.
/// The `customize`/`label` hooks cannot be fingerprinted -- they are
/// assumed stable for the same binary and flags (documented in DESIGN.md).
std::uint64_t fingerprint_spec(const ExperimentSpec& spec);

/// The spec's full journal identity (name/seed/trials/policy/fingerprint).
CampaignKey campaign_key(const ExperimentSpec& spec);

/// Thrown when a journal exists but belongs to a different campaign (or
/// its header is unreadable).
class JournalMismatchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CampaignJournal {
 public:
  /// Open-or-create `path` for `key`. An existing journal is validated
  /// against `key` (JournalMismatchError on mismatch) and its completed
  /// trials loaded; a missing/empty one is created with an atomically
  /// written header. Throws std::runtime_error on I/O failure.
  ///
  /// `shard` (default: not sharded) stamps the shard spec into the header
  /// and validates it on resume: a shard worker's journal can only be
  /// resumed by the SAME shard of the SAME campaign (mismatched shard
  /// index/count throw JournalMismatchError like every other key field).
  /// An unsharded plan writes the exact pre-shard header bytes, so
  /// existing journals stay readable and resumable.
  CampaignJournal(std::string path, CampaignKey key, ShardPlan shard = {});
  ~CampaignJournal();

  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  const std::string& path() const { return path_; }
  const CampaignKey& key() const { return key_; }
  const ShardPlan& shard() const { return shard_; }

  /// Trials already completed by previous runs, keyed by index (the state
  /// at open; record() does not add to it).
  const std::map<std::size_t, JournalTrial>& completed() const {
    return completed_;
  }

  /// Append one completed trial and make it durable (flush + fsync)
  /// before returning. Thread-safe: workers call this concurrently.
  void record(const JournalTrial& trial);

 private:
  std::string path_;
  CampaignKey key_;
  ShardPlan shard_;
  std::map<std::size_t, JournalTrial> completed_;
  std::FILE* out_ = nullptr;
  std::mutex mutex_;
};

/// A journal file parsed without resuming it: identity, shard spec
/// (disabled for unsharded journals), and every intact trial record.
struct LoadedJournal {
  CampaignKey key;
  ShardPlan shard;
  std::vector<JournalTrial> trials;
};

/// Read `path` as a journal: throws std::runtime_error when the file
/// cannot be opened and JournalMismatchError when the header is
/// unreadable; trial loading stops at the first torn line. Unlike the
/// resume path, intact records outside the trial range or the shard's
/// ownership ARE returned -- merge validation rejects them by name
/// instead of silently re-running "missing" trials.
LoadedJournal read_journal_file(const std::string& path);

/// The exact line bytes the journal writes (exposed for the shard merge
/// writer, which must reproduce a 1-process journal byte-for-byte, and
/// for tests that forge journals).
std::string journal_header_line(const CampaignKey& key,
                                const ShardPlan& shard = {});
std::string journal_trial_line(const JournalTrial& trial);

}  // namespace mmr::sim
