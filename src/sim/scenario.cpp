#include "sim/scenario.h"

#include <cmath>

#include "common/angles.h"
#include "common/constants.h"
#include "common/error.h"

namespace mmr::sim {

array::Codebook sector_codebook(const array::Ula& ula, std::size_t size) {
  return array::Codebook(ula, deg_to_rad(-60.0), deg_to_rad(60.0), size);
}

LinkWorld make_indoor_world(const ScenarioConfig& config,
                            channel::Vec2 ue_velocity,
                            double ue_rotation_rate_rad_s,
                            channel::Vec2 ue_start) {
  channel::Environment env =
      config.sparse_room ? channel::Environment::indoor_sparse()
                         : channel::Environment::indoor_conference_room();
  // gNB near the x=0 wall, boresight down the room (+x), link line close
  // to the glass wall so reflections detour by <1 m (see
  // Environment::indoor_conference_room).
  const channel::Pose tx{{0.5, 6.2}, 0.0};
  // UE faces back toward the gNB.
  const channel::Pose ue0{ue_start, kPi};

  std::shared_ptr<const channel::Trajectory> traj;
  if (ue_velocity.x == 0.0 && ue_velocity.y == 0.0 &&
      ue_rotation_rate_rad_s == 0.0) {
    traj = std::make_shared<channel::StaticPose>(ue0);
  } else {
    traj = std::make_shared<channel::TranslateAndRotate>(
        ue0, ue_velocity, ue_rotation_rate_rad_s);
  }

  WorldConfig wc;
  wc.spec = {kCarrier28GHz, kBandwidth400MHz, 64};
  wc.budget = phy::LinkBudget::paper_indoor();
  wc.budget.tx_power_dbm = config.tx_power_dbm;
  wc.tx_ula = {config.tx_elements, 0.5};
  wc.rx = channel::RxFrontend::omni();
  return LinkWorld(std::move(env), tx, std::move(traj), wc, Rng(config.seed));
}

LinkWorld make_outdoor_world(const ScenarioConfig& config,
                             double link_distance_m,
                             channel::Vec2 ue_velocity) {
  MMR_EXPECTS(link_distance_m > 1.0);
  channel::Environment env = channel::Environment::outdoor_street();
  const channel::Pose tx{{0.0, 0.0}, 0.0};
  const channel::Pose ue0{{link_distance_m, 0.0}, kPi};

  std::shared_ptr<const channel::Trajectory> traj;
  if (ue_velocity.x == 0.0 && ue_velocity.y == 0.0) {
    traj = std::make_shared<channel::StaticPose>(ue0);
  } else {
    traj = std::make_shared<channel::LinearTranslation>(ue0, ue_velocity);
  }

  WorldConfig wc;
  wc.spec = {kCarrier28GHz, kBandwidth100MHz, 64};
  wc.budget = phy::LinkBudget::paper_outdoor();
  wc.tx_ula = {config.tx_elements, 0.5};
  wc.rx = channel::RxFrontend::omni();
  return LinkWorld(std::move(env), tx, std::move(traj), wc, Rng(config.seed));
}

channel::GeometricBlocker crossing_blocker(channel::Vec2 link_tx,
                                           channel::Vec2 link_ue,
                                           double crossing_time_s,
                                           double walking_speed_mps,
                                           double depth_db) {
  MMR_EXPECTS(walking_speed_mps > 0.0);
  const channel::Vec2 mid = (link_tx + link_ue) * 0.5;
  const channel::Vec2 dir = normalized(link_ue - link_tx);
  const channel::Vec2 perp{-dir.y, dir.x};
  channel::GeometricBlocker::Config bc;
  bc.velocity = perp * walking_speed_mps;
  bc.start = mid - bc.velocity * crossing_time_s;
  bc.depth_db = depth_db;
  return channel::GeometricBlocker(bc);
}

namespace {

core::TrainingConfig default_training() {
  core::TrainingConfig tc;
  tc.top_k = 3;
  tc.min_separation_rad = deg_to_rad(8.0);
  tc.max_rel_power_db = 12.0;
  return tc;
}

}  // namespace

std::unique_ptr<core::MmReliableController> make_mmreliable(
    const LinkWorld& world, const ScenarioConfig& config,
    std::size_t max_beams) {
  const array::Ula ula = world.config().tx_ula;
  core::MaintenanceConfig mc;
  mc.max_beams = max_beams;
  mc.bandwidth_hz = world.config().spec.bandwidth_hz;
  mc.outage_power_linear = world.power_for_snr(kOutageSnrDb);
  mc.training = default_training();
  return std::make_unique<core::MmReliableController>(
      ula, sector_codebook(ula, config.codebook_size), mc);
}

std::unique_ptr<baselines::ReactiveSingleBeam> make_reactive(
    const LinkWorld& world, const ScenarioConfig& config) {
  const array::Ula ula = world.config().tx_ula;
  baselines::ReactiveConfig rc;
  rc.outage_power_linear = world.power_for_snr(kOutageSnrDb);
  rc.training = default_training();
  return std::make_unique<baselines::ReactiveSingleBeam>(
      ula, sector_codebook(ula, config.codebook_size), rc);
}

std::unique_ptr<baselines::BeamSpy> make_beamspy(const LinkWorld& world,
                                                 const ScenarioConfig& config) {
  const array::Ula ula = world.config().tx_ula;
  baselines::BeamSpyConfig bc;
  bc.outage_power_linear = world.power_for_snr(kOutageSnrDb);
  bc.training = default_training();
  return std::make_unique<baselines::BeamSpy>(
      ula, sector_codebook(ula, config.codebook_size), bc);
}

std::unique_ptr<baselines::WideBeam> make_widebeam(
    const LinkWorld& world, const ScenarioConfig& config) {
  const array::Ula ula = world.config().tx_ula;
  baselines::WideBeamConfig wc;
  wc.outage_power_linear = world.power_for_snr(kOutageSnrDb);
  wc.training = default_training();
  return std::make_unique<baselines::WideBeam>(
      ula, sector_codebook(ula, config.codebook_size), wc);
}

}  // namespace mmr::sim
