// Scenario/controller registries: the string-keyed factories must produce
// bit-identical results to calling the underlying factories directly, the
// builtin names must all be registered, and unknown names must fail with
// an error that tells the user what IS registered.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/runner.h"
#include "sim/scenario.h"

namespace mmr::sim {
namespace {

bool has(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

TEST(Registries, BuiltinScenariosAreRegistered) {
  const auto names = ScenarioRegistry::instance().names();
  EXPECT_GE(names.size(), 4u);
  for (const char* expected :
       {"indoor", "indoor_sparse", "indoor_poor", "outdoor"}) {
    EXPECT_TRUE(has(names, expected)) << expected;
    EXPECT_TRUE(ScenarioRegistry::instance().contains(expected)) << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()))
      << "names() must enumerate deterministically";
}

TEST(Registries, BuiltinControllersAreRegistered) {
  const auto names = ControllerRegistry::instance().names();
  EXPECT_GE(names.size(), 5u);
  for (const char* expected :
       {"mmreliable", "mmreliable_ablation", "delay_multibeam", "reactive",
        "single_frozen", "beamspy", "widebeam", "oracle"}) {
    EXPECT_TRUE(has(names, expected)) << expected;
    EXPECT_TRUE(ControllerRegistry::instance().contains(expected))
        << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registries, UnknownScenarioListsRegisteredNames) {
  ScenarioSpec spec;
  spec.name = "moon_base";
  try {
    ScenarioRegistry::instance().make(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown scenario 'moon_base'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("indoor"), std::string::npos) << msg;
    EXPECT_NE(msg.find("outdoor"), std::string::npos) << msg;
  }
}

TEST(Registries, UnknownControllerListsRegisteredNames) {
  ScenarioConfig cfg;
  LinkWorld world = make_indoor_world(cfg);
  ControllerSpec spec;
  spec.name = "psychic";
  try {
    ControllerRegistry::instance().make(world, cfg, spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown controller 'psychic'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("mmreliable"), std::string::npos) << msg;
    EXPECT_NE(msg.find("oracle"), std::string::npos) << msg;
  }
}

TEST(Registries, EngineFailsFastOnUnknownNames) {
  ExperimentSpec spec;
  spec.scenario.name = "nope";
  EXPECT_THROW(Engine().run(spec), std::invalid_argument);
  spec.scenario.name = "indoor";
  spec.controller.name = "nope";
  EXPECT_THROW(Engine().run(spec), std::invalid_argument);
}

// The registry path must be indistinguishable from constructing worlds
// and controllers by hand -- summaries compare with exact equality.
void expect_identical(const core::LinkSummary& a, const core::LinkSummary& b) {
  EXPECT_EQ(a.reliability, b.reliability);
  EXPECT_EQ(a.mean_throughput_bps, b.mean_throughput_bps);
  EXPECT_EQ(a.mean_spectral_efficiency, b.mean_spectral_efficiency);
  EXPECT_EQ(a.throughput_reliability_product,
            b.throughput_reliability_product);
  EXPECT_EQ(a.num_samples, b.num_samples);
}

TEST(Registries, IndoorScenarioMatchesDirectFactory) {
  ScenarioConfig cfg;
  cfg.seed = 7;
  RunConfig rc;
  rc.duration_s = 0.15;

  ScenarioSpec sspec;
  sspec.name = "indoor";
  sspec.config = cfg;
  LinkWorld reg_world = ScenarioRegistry::instance().make(sspec);
  ControllerSpec cspec;  // defaults to "mmreliable"
  auto reg_ctrl = ControllerRegistry::instance().make(reg_world, cfg, cspec);
  const RunResult via_registry = run_experiment(reg_world, *reg_ctrl, rc);

  LinkWorld direct_world = make_indoor_world(cfg);
  auto direct_ctrl = make_mmreliable(direct_world, cfg);
  const RunResult direct = run_experiment(direct_world, *direct_ctrl, rc);

  expect_identical(via_registry.summary, direct.summary);
  ASSERT_EQ(via_registry.samples.size(), direct.samples.size());
  for (std::size_t i = 0; i < direct.samples.size(); ++i) {
    EXPECT_EQ(via_registry.samples[i].snr_db, direct.samples[i].snr_db);
  }
}

TEST(Registries, OutdoorScenarioMatchesDirectFactory) {
  ScenarioConfig cfg;
  cfg.seed = 19;
  RunConfig rc;
  rc.duration_s = 0.15;

  ScenarioSpec sspec;
  sspec.name = "outdoor";
  sspec.config = cfg;
  sspec.link_distance_m = 60.0;
  LinkWorld reg_world = ScenarioRegistry::instance().make(sspec);
  ControllerSpec cspec;
  cspec.name = "reactive";
  auto reg_ctrl = ControllerRegistry::instance().make(reg_world, cfg, cspec);
  const RunResult via_registry = run_experiment(reg_world, *reg_ctrl, rc);

  LinkWorld direct_world = make_outdoor_world(cfg, 60.0);
  auto direct_ctrl = make_reactive(direct_world, cfg);
  const RunResult direct = run_experiment(direct_world, *direct_ctrl, rc);

  expect_identical(via_registry.summary, direct.summary);
}

TEST(Registries, BlockersInTheSpecMatchManualAddBlocker) {
  ScenarioConfig cfg;
  cfg.seed = 42;
  cfg.sparse_room = true;
  RunConfig rc;
  rc.duration_s = 0.6;

  ScenarioSpec sspec;
  sspec.name = "indoor_sparse";
  sspec.config = cfg;
  sspec.config.sparse_room = false;  // the registry entry forces it
  sspec.blockers = {{0.3, 1.5, 30.0}};
  LinkWorld reg_world = ScenarioRegistry::instance().make(sspec);
  auto reg_ctrl = make_mmreliable(reg_world, cfg);
  const RunResult via_registry = run_experiment(reg_world, *reg_ctrl, rc);

  LinkWorld direct_world = make_indoor_world(cfg);
  direct_world.add_blocker(
      crossing_blocker({0.5, 6.2}, {7.0, 6.2}, 0.3, 1.5, 30.0));
  auto direct_ctrl = make_mmreliable(direct_world, cfg);
  const RunResult direct = run_experiment(direct_world, *direct_ctrl, rc);

  expect_identical(via_registry.summary, direct.summary);
}

TEST(Registries, CustomRegistrationIsResolvable) {
  // User-defined entries compose with the builtins.
  ScenarioRegistry& reg = ScenarioRegistry::instance();
  reg.add("test_custom_room", [](const ScenarioSpec& s) {
    ScenarioConfig cfg = s.config;
    return make_indoor_world(cfg);
  });
  EXPECT_TRUE(reg.contains("test_custom_room"));
  ScenarioSpec spec;
  spec.name = "test_custom_room";
  spec.config.seed = 3;
  LinkWorld world = reg.make(spec);
  EXPECT_GT(world.paths().size(), 0u);
}

}  // namespace
}  // namespace mmr::sim
