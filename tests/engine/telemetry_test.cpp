// Telemetry sinks and the run_experiment config validation added with the
// experiment engine: MemorySink capture, JsonLinesSink byte-compatibility
// with write_sweep_json, FanoutSink teeing, and the RunConfig contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "sim/telemetry.h"

namespace mmr::sim {
namespace {

RunConfig short_run() {
  RunConfig rc;
  rc.duration_s = 0.1;
  return rc;
}

TEST(Telemetry, MemorySinkCapturesSamplesAndSummary) {
  ScenarioConfig cfg;
  cfg.seed = 7;
  LinkWorld world = make_indoor_world(cfg);
  auto ctrl = make_mmreliable(world, cfg);
  MemorySink sink;
  const RunResult r = run_experiment(world, *ctrl, short_run(), &sink);

  ASSERT_EQ(sink.runs().size(), 1u);
  ASSERT_EQ(sink.summaries().size(), 1u);
  EXPECT_EQ(sink.runs()[0].size(), r.samples.size());
  EXPECT_EQ(sink.summaries()[0].reliability, r.summary.reliability);
  EXPECT_EQ(sink.summaries()[0].mean_throughput_bps,
            r.summary.mean_throughput_bps);
  for (std::size_t i = 0; i < r.samples.size(); ++i) {
    EXPECT_EQ(sink.runs()[0][i].t_s, r.samples[i].t_s);
    EXPECT_EQ(sink.runs()[0][i].snr_db, r.samples[i].snr_db);
  }
}

TEST(Telemetry, SinkNeverPerturbsTheResult) {
  ScenarioConfig cfg;
  cfg.seed = 7;
  LinkWorld world_a = make_indoor_world(cfg);
  LinkWorld world_b = make_indoor_world(cfg);
  auto ctrl_a = make_mmreliable(world_a, cfg);
  auto ctrl_b = make_mmreliable(world_b, cfg);
  MemorySink sink;
  const RunResult with_sink = run_experiment(world_a, *ctrl_a, short_run(),
                                             &sink);
  const RunResult without = run_experiment(world_b, *ctrl_b, short_run());
  EXPECT_EQ(with_sink.summary.reliability, without.summary.reliability);
  EXPECT_EQ(with_sink.summary.mean_throughput_bps,
            without.summary.mean_throughput_bps);
}

TEST(Telemetry, JsonLinesSinkMatchesWriteSweepJsonByteForByte) {
  std::vector<SweepTrial<core::LinkSummary>> trials(2);
  trials[0].index = 0;
  trials[0].wall_s = 0.25;
  trials[0].cpu_s = 0.2;
  trials[0].value.reliability = 0.5;
  trials[0].value.mean_throughput_bps = 1.25e9;
  trials[0].value.throughput_reliability_product = 6.25e8;
  trials[1].index = 1;
  trials[1].wall_s = 0.5;
  trials[1].cpu_s = 0.4;
  trials[1].value.reliability = 1.0 / 3.0;  // exercises precision
  trials[1].value.mean_throughput_bps = 987654321.123;
  trials[1].value.throughput_reliability_product = 3.2e8;
  SweepTiming timing;
  timing.wall_s = 0.75;
  timing.serial_equivalent_s = 0.6;
  timing.jobs = 2;
  const std::vector<std::string> labels = {"a", "b"};

  std::ostringstream expected;
  write_sweep_json(expected, "bytecheck", trials, timing, labels);

  std::ostringstream actual;
  JsonLinesSink sink(actual);
  SweepRecord record;
  record.name = "bytecheck";
  record.trials = trials;
  record.timing = timing;
  record.labels = labels;
  sink.on_sweep(record);

  EXPECT_EQ(actual.str(), expected.str());
}

TEST(Telemetry, FanoutDeliversEveryEventToEverySink) {
  MemorySink a, b;
  FanoutSink fanout;
  fanout.add(&a);
  fanout.add(&b);

  ScenarioConfig cfg;
  cfg.seed = 3;
  LinkWorld world = make_indoor_world(cfg);
  auto ctrl = make_mmreliable(world, cfg);
  run_experiment(world, *ctrl, short_run(), &fanout);

  ASSERT_EQ(a.runs().size(), 1u);
  ASSERT_EQ(b.runs().size(), 1u);
  EXPECT_EQ(a.runs()[0].size(), b.runs()[0].size());
  EXPECT_EQ(a.summaries().size(), 1u);
  EXPECT_EQ(b.summaries().size(), 1u);
}

TEST(Telemetry, EngineReplaysSinkEventsInTrialIndexOrder) {
  // jobs=2 must deliver the same sink stream as jobs=1 (the ordering
  // contract: per-trial events buffer and replay after the barrier).
  auto capture = [](std::size_t jobs) {
    ExperimentSpec spec;
    spec.name = "order";
    spec.scenario.name = "indoor";
    spec.run.duration_s = 0.1;
    spec.trials = 4;
    spec.jobs = jobs;
    spec.seed = 5;
    spec.record_samples = true;
    MemorySink sink;
    Engine().run(spec, &sink);
    return sink;
  };
  const MemorySink serial = capture(1);
  const MemorySink parallel = capture(2);
  ASSERT_EQ(serial.runs().size(), 4u);
  ASSERT_EQ(parallel.runs().size(), 4u);
  EXPECT_EQ(serial.num_sweeps(), 1u);
  EXPECT_EQ(parallel.num_sweeps(), 1u);
  for (std::size_t i = 0; i < 4; ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(serial.summaries()[i].reliability,
              parallel.summaries()[i].reliability);
    ASSERT_EQ(serial.runs()[i].size(), parallel.runs()[i].size());
    for (std::size_t k = 0; k < serial.runs()[i].size(); ++k) {
      EXPECT_EQ(serial.runs()[i][k].snr_db, parallel.runs()[i][k].snr_db);
    }
  }
}

// --- Streaming snapshots and the flush_every_n policy -------------------

StreamSnapshot sample_snapshot() {
  StreamSnapshot s;
  s.t_s = 0.25;
  s.index = 3;
  s.live_sessions = 42;
  s.total_joined = 50;
  s.total_left = 8;
  s.window_ticks = 420;
  s.total_ticks = 1680;
  s.availability = 0.975;
  s.snr_mean_db = 21.5;
  s.tput_mean_bps = 1.5e9;
  s.dropped = 2;
  return s;
}

TEST(Telemetry, JsonLinesSinkEmitsOneSnapshotLine) {
  std::ostringstream os;
  JsonLinesSink sink(os);
  sink.on_snapshot(sample_snapshot());
  const std::string line = os.str();
  EXPECT_EQ(line.rfind("{\"snapshot\": {\"index\": 3, ", 0), 0u);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_NE(line.find("\"live_sessions\": 42"), std::string::npos);
  EXPECT_NE(line.find("\"total_ticks\": 1680"), std::string::npos);
  EXPECT_NE(line.find("\"availability\": 0.975"), std::string::npos);
  EXPECT_NE(line.find("\"dropped\": 2"), std::string::npos);
  // One line per snapshot: no embedded newlines.
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
}

TEST(Telemetry, MemoryAndFanoutSinksCaptureSnapshots) {
  MemorySink a, b;
  FanoutSink fanout;
  fanout.add(&a);
  fanout.add(&b);
  fanout.on_snapshot(sample_snapshot());
  ASSERT_EQ(a.snapshots().size(), 1u);
  ASSERT_EQ(b.snapshots().size(), 1u);
  EXPECT_EQ(a.snapshots()[0].index, 3u);
  EXPECT_EQ(a.snapshots()[0].total_ticks, 1680u);
  EXPECT_EQ(b.snapshots()[0].availability, 0.975);
}

/// ostringstream buffer that counts sync() (i.e. flush) calls.
struct CountingBuf : std::stringbuf {
  int syncs = 0;
  int sync() override {
    ++syncs;
    return std::stringbuf::sync();
  }
};

TEST(Telemetry, FlushEveryNAmortizesFlushesWithoutChangingBytes) {
  const StreamSnapshot snap = sample_snapshot();
  auto emit = [&](std::size_t flush_every_n, int* syncs) {
    CountingBuf buf;
    std::ostream os(&buf);
    JsonLinesSink sink(os, /*per_tick=*/false, flush_every_n);
    for (int i = 0; i < 10; ++i) sink.on_snapshot(snap);
    if (syncs != nullptr) *syncs = buf.syncs;
    return buf.str();
  };

  int durable = 0, amortized = 0, never = 0;
  const std::string bytes_durable = emit(1, &durable);
  const std::string bytes_amortized = emit(4, &amortized);
  const std::string bytes_never = emit(0, &never);
  // The policy changes WHEN bytes reach the OS, never WHICH bytes.
  EXPECT_EQ(bytes_durable, bytes_amortized);
  EXPECT_EQ(bytes_durable, bytes_never);
  EXPECT_EQ(durable, 10);   // the durable default: every record
  EXPECT_EQ(amortized, 2);  // 10 records / 4 per flush
  EXPECT_EQ(never, 0);      // 0 = never flush mid-stream
}

TEST(Telemetry, DefaultFlushPolicyStaysPerRecordForFaultLines) {
  // The campaign durability contract rides on the default: every record
  // type flushes as it is written.
  CountingBuf buf;
  std::ostream os(&buf);
  JsonLinesSink sink(os);
  core::FaultEvent ev;
  ev.t_s = 0.5;
  sink.on_fault(ev);
  sink.on_snapshot(sample_snapshot());
  EXPECT_EQ(buf.syncs, 2);
}

// --- RunConfig validation ----------------------------------------------

class RunConfigValidation : public ::testing::Test {
 protected:
  RunConfigValidation() : world_(make_indoor_world(cfg_)) {
    ctrl_ = make_mmreliable(world_, cfg_);
  }
  ScenarioConfig cfg_;
  LinkWorld world_;
  std::unique_ptr<core::MmReliableController> ctrl_;
};

TEST_F(RunConfigValidation, RejectsNonPositiveDuration) {
  RunConfig rc;
  rc.duration_s = 0.0;
  EXPECT_THROW(run_experiment(world_, *ctrl_, rc), std::logic_error);
  rc.duration_s = -1.0;
  EXPECT_THROW(run_experiment(world_, *ctrl_, rc), std::logic_error);
}

TEST_F(RunConfigValidation, RejectsNonPositiveOrNonFiniteTick) {
  RunConfig rc;
  rc.tick_s = 0.0;
  EXPECT_THROW(run_experiment(world_, *ctrl_, rc), std::logic_error);
  rc.tick_s = std::numeric_limits<double>::infinity();
  EXPECT_THROW(run_experiment(world_, *ctrl_, rc), std::logic_error);
}

TEST_F(RunConfigValidation, RejectsNonFiniteOutageThreshold) {
  RunConfig rc;
  rc.outage_snr_db = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(run_experiment(world_, *ctrl_, rc), std::logic_error);
}

TEST_F(RunConfigValidation, RejectsOverheadOutsideUnitInterval) {
  RunConfig rc;
  rc.protocol_overhead = 1.0;
  EXPECT_THROW(run_experiment(world_, *ctrl_, rc), std::logic_error);
  rc.protocol_overhead = -0.1;
  EXPECT_THROW(run_experiment(world_, *ctrl_, rc), std::logic_error);
}

TEST_F(RunConfigValidation, AcceptsTheDefaultConfig) {
  RunConfig rc;
  rc.duration_s = 0.05;
  EXPECT_NO_THROW(run_experiment(world_, *ctrl_, rc));
}

}  // namespace
}  // namespace mmr::sim
