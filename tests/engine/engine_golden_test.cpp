// Engine-vs-direct regression: shortened versions of the four ported
// figure campaigns (Figs. 15-18), each run twice -- once through
// Engine::run with registry names, once hand-rolled against SweepRunner
// and the factories the registries wrap. Summaries must match with EXACT
// floating-point equality and the serialized JSON (timings zeroed, since
// wall-clock can never reproduce) must match byte for byte. This is the
// contract that let the benches move onto the engine without their JSON
// records changing.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/reactive_single_beam.h"
#include "common/constants.h"
#include "core/maintenance.h"
#include "sim/engine.h"
#include "sim/runner.h"
#include "sim/scenario.h"

namespace mmr::sim {
namespace {

using Trials = std::vector<SweepTrial<core::LinkSummary>>;

void expect_identical(const Trials& engine, const Trials& direct) {
  ASSERT_EQ(engine.size(), direct.size());
  for (std::size_t i = 0; i < engine.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(engine[i].value.reliability, direct[i].value.reliability);
    EXPECT_EQ(engine[i].value.mean_throughput_bps,
              direct[i].value.mean_throughput_bps);
    EXPECT_EQ(engine[i].value.mean_spectral_efficiency,
              direct[i].value.mean_spectral_efficiency);
    EXPECT_EQ(engine[i].value.throughput_reliability_product,
              direct[i].value.throughput_reliability_product);
    EXPECT_EQ(engine[i].value.num_samples, direct[i].value.num_samples);
  }
}

/// Serialize with per-trial and sweep timings zeroed: the only
/// run-to-run-varying fields, everything else must be byte-stable.
std::string json_of(const std::string& name, Trials trials,
                    std::span<const std::string> labels = {}) {
  for (auto& t : trials) {
    t.wall_s = 0.0;
    t.cpu_s = 0.0;
  }
  SweepTiming timing;
  timing.jobs = 1;
  std::ostringstream os;
  write_sweep_json(os, name, trials, timing, labels);
  return os.str();
}

// --- Fig. 15 shape: per-trial seed streams, one controller --------------

TEST(EngineGolden, Fig15ShapeMatchesHandRolledSweep) {
  ExperimentSpec spec;
  spec.name = "fig15_shape";
  spec.scenario.name = "indoor";
  spec.controller.name = "mmreliable";
  spec.run.duration_s = 0.2;
  spec.trials = 3;
  spec.seed = 7;
  spec.seed_policy = SeedPolicy::kPerTrialStream;
  const EngineResult engine = Engine().run(spec);

  SweepRunner runner({3, 1, 7});
  const Trials direct = runner.run([](TrialContext& ctx) {
    ScenarioConfig cfg;
    cfg.seed = ctx.stream_seed;
    LinkWorld world = make_indoor_world(cfg);
    auto ctrl = make_mmreliable(world, cfg);
    RunConfig rc;
    rc.duration_s = 0.2;
    return run_experiment(world, *ctrl, rc).summary;
  });

  expect_identical(engine.trials, direct);
  EXPECT_EQ(json_of(spec.name, engine.trials), json_of(spec.name, direct));
}

// --- Fig. 16 shape: fixed seed, blocker, controller matrix --------------

TEST(EngineGolden, Fig16ShapeMatchesHandRolledSweep) {
  ExperimentSpec spec;
  spec.name = "fig16_shape";
  spec.scenario.name = "indoor_sparse";
  spec.scenario.config.seed = 13;
  spec.scenario.config.tx_power_dbm = 14.0;
  spec.scenario.blockers = {{0.45, 1.2, 30.0}};
  spec.run.duration_s = 0.4;
  spec.trials = 2;
  spec.seed = 13;
  spec.seed_policy = SeedPolicy::kFixed;
  spec.record_samples = true;
  spec.customize = [](const TrialContext& ctx, ScenarioSpec& /*scenario*/,
                      ControllerSpec& controller, RunConfig& /*run*/) {
    controller.name = ctx.index == 0 ? "single_frozen" : "mmreliable";
  };
  const EngineResult engine = Engine().run(spec);

  auto direct_trial = [](bool multi) {
    ScenarioConfig cfg;
    cfg.seed = 13;
    cfg.tx_power_dbm = 14.0;
    cfg.sparse_room = true;
    LinkWorld world = make_indoor_world(cfg);
    world.add_blocker(
        crossing_blocker({0.5, 6.2}, {7.0, 6.2}, 0.45, 1.2, 30.0));
    RunConfig rc;
    rc.duration_s = 0.4;
    if (multi) {
      auto ctrl = make_mmreliable(world, cfg);
      return run_experiment(world, *ctrl, rc);
    }
    baselines::ReactiveConfig rcfg;
    rcfg.outage_power_linear = 0.0;
    baselines::ReactiveSingleBeam ctrl(
        world.config().tx_ula, sector_codebook(world.config().tx_ula), rcfg);
    return run_experiment(world, ctrl, rc);
  };
  const RunResult single = direct_trial(false);
  const RunResult multi = direct_trial(true);

  ASSERT_EQ(engine.trials.size(), 2u);
  EXPECT_EQ(engine.trials[0].value.reliability, single.summary.reliability);
  EXPECT_EQ(engine.trials[1].value.reliability, multi.summary.reliability);
  ASSERT_EQ(engine.samples.size(), 2u);
  ASSERT_EQ(engine.samples[0].size(), single.samples.size());
  ASSERT_EQ(engine.samples[1].size(), multi.samples.size());
  for (std::size_t i = 0; i < single.samples.size(); ++i) {
    EXPECT_EQ(engine.samples[0][i].snr_db, single.samples[i].snr_db);
    EXPECT_EQ(engine.samples[1][i].snr_db, multi.samples[i].snr_db);
  }
}

// --- Fig. 17c shape: ablation controller, stage toggles -----------------

TEST(EngineGolden, Fig17ShapeMatchesHandRolledSweep) {
  ExperimentSpec spec;
  spec.name = "fig17_shape";
  spec.scenario.name = "indoor";
  spec.scenario.config.seed = 11;
  spec.scenario.ue_velocity = {0.0, -1.5};
  spec.controller.name = "mmreliable_ablation";
  spec.run.duration_s = 0.3;
  spec.trials = 2;
  spec.seed = 11;
  spec.seed_policy = SeedPolicy::kFixed;
  spec.customize = [](const TrialContext& ctx, ScenarioSpec& /*scenario*/,
                      ControllerSpec& controller, RunConfig& /*run*/) {
    controller.enable_tracking = ctx.index == 1;
  };
  const EngineResult engine = Engine().run(spec);

  auto direct_trial = [](bool tracking) {
    ScenarioConfig cfg;
    cfg.seed = 11;
    LinkWorld world = make_indoor_world(cfg, {0.0, -1.5});
    const array::Ula ula = world.config().tx_ula;
    core::MaintenanceConfig mc;
    mc.max_beams = 2;
    mc.bandwidth_hz = world.config().spec.bandwidth_hz;
    mc.outage_power_linear = world.power_for_snr(kOutageSnrDb);
    mc.enable_tracking = tracking;
    core::MmReliableController ctrl(ula, sector_codebook(ula), mc);
    RunConfig rc;
    rc.duration_s = 0.3;
    return run_experiment(world, ctrl, rc).summary;
  };

  ASSERT_EQ(engine.trials.size(), 2u);
  const core::LinkSummary frozen = direct_trial(false);
  const core::LinkSummary tracked = direct_trial(true);
  EXPECT_EQ(engine.trials[0].value.reliability, frozen.reliability);
  EXPECT_EQ(engine.trials[0].value.mean_throughput_bps,
            frozen.mean_throughput_bps);
  EXPECT_EQ(engine.trials[1].value.reliability, tracked.reliability);
  EXPECT_EQ(engine.trials[1].value.mean_throughput_bps,
            tracked.mean_throughput_bps);
}

// --- Fig. 18 shape: four-scheme matrix on a blocked room ----------------

TEST(EngineGolden, Fig18ShapeMatchesHandRolledSweep) {
  const std::vector<std::string> schemes = {"mmreliable", "reactive",
                                            "beamspy", "widebeam"};
  ExperimentSpec spec;
  spec.name = "fig18_shape";
  spec.scenario.name = "indoor_sparse";
  spec.scenario.config.seed = 31;
  spec.scenario.config.tx_power_dbm = 14.0;
  spec.scenario.blockers = {{0.4, 1.0, 30.0}};
  spec.run.duration_s = 0.4;
  spec.trials = schemes.size();
  spec.seed = 31;
  spec.seed_policy = SeedPolicy::kFixed;
  spec.customize = [&schemes](const TrialContext& ctx,
                              ScenarioSpec& /*scenario*/,
                              ControllerSpec& controller,
                              RunConfig& /*run*/) {
    controller.name = schemes[ctx.index];
  };
  spec.label = [&schemes](const TrialContext& ctx) {
    return schemes[ctx.index];
  };
  const EngineResult engine = Engine().run(spec);

  SweepRunner runner({schemes.size(), 1, 31});
  const Trials direct = runner.run([&schemes](TrialContext& ctx) {
    ScenarioConfig cfg;
    cfg.seed = 31;
    cfg.tx_power_dbm = 14.0;
    cfg.sparse_room = true;
    LinkWorld world = make_indoor_world(cfg);
    world.add_blocker(
        crossing_blocker({0.5, 6.2}, {7.0, 6.2}, 0.4, 1.0, 30.0));
    RunConfig rc;
    rc.duration_s = 0.4;
    std::unique_ptr<core::BeamController> ctrl;
    const std::string& scheme = schemes[ctx.index];
    if (scheme == "mmreliable") {
      ctrl = make_mmreliable(world, cfg);
    } else if (scheme == "reactive") {
      ctrl = make_reactive(world, cfg);
    } else if (scheme == "beamspy") {
      ctrl = make_beamspy(world, cfg);
    } else {
      ctrl = make_widebeam(world, cfg);
    }
    return run_experiment(world, *ctrl, rc).summary;
  });

  expect_identical(engine.trials, direct);
  EXPECT_EQ(json_of(spec.name, engine.trials, engine.labels),
            json_of(spec.name, direct, schemes));
}

// --- Determinism through the engine ------------------------------------

TEST(EngineGolden, ParallelEngineRunIsByteIdenticalToSerial) {
  auto run_with_jobs = [](std::size_t jobs) {
    ExperimentSpec spec;
    spec.name = "jobs_check";
    spec.scenario.name = "indoor";
    spec.run.duration_s = 0.15;
    spec.trials = 4;
    spec.jobs = jobs;
    spec.seed = 99;
    return Engine().run(spec);
  };
  const EngineResult serial = run_with_jobs(1);
  const EngineResult parallel = run_with_jobs(3);
  expect_identical(serial.trials, parallel.trials);
  EXPECT_EQ(json_of("jobs_check", serial.trials),
            json_of("jobs_check", parallel.trials));
  EXPECT_EQ(serial.aggregate.mean_reliability,
            parallel.aggregate.mean_reliability);
  EXPECT_EQ(serial.aggregate.median_throughput_bps,
            parallel.aggregate.median_throughput_bps);
}

}  // namespace
}  // namespace mmr::sim
