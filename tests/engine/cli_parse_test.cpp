// Strict numeric parsing for the bench CLI (common/parse.h) and the
// sweep_cli flag handling itself. The old strtoull-based parsing accepted
// "abc" as 0 (= every hardware thread) and "12x" as 12; these pins make
// sure garbage exits with status 2 instead of being silently truncated.
#include <gtest/gtest.h>

#include <clocale>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/parse.h"
#include "dsp/backend.h"
#include "sweep_cli.h"

namespace mmr {
namespace {

TEST(ParseU64, AcceptsFullBase10Integers) {
  std::uint64_t v = 99;
  EXPECT_TRUE(parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u64("42", v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64, RejectsGarbageAndLeavesOutputUntouched) {
  std::uint64_t v = 7;
  EXPECT_FALSE(parse_u64(nullptr, v));
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("abc", v));
  EXPECT_FALSE(parse_u64("12x", v));       // trailing garbage
  EXPECT_FALSE(parse_u64("-1", v));        // sign
  EXPECT_FALSE(parse_u64("+1", v));        // sign
  EXPECT_FALSE(parse_u64(" 1", v));        // leading whitespace
  EXPECT_FALSE(parse_u64("1 ", v));        // trailing whitespace
  EXPECT_FALSE(parse_u64("0x10", v));      // hex
  EXPECT_FALSE(parse_u64("1e3", v));       // float notation
  EXPECT_FALSE(parse_u64("18446744073709551616", v));  // uint64 overflow
  EXPECT_EQ(v, 7u) << "failed parse must not clobber the output";
}

TEST(ParseU64, ExactOverflowBoundary) {
  // UINT64_MAX parses, UINT64_MAX + 1 does not -- the boundary must be
  // exact, not "some large numbers fail".
  std::uint64_t v = 7;
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());
  EXPECT_TRUE(parse_u64("18446744073709551614", v));
  EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max() - 1);
  EXPECT_FALSE(parse_u64("18446744073709551616", v));
  EXPECT_FALSE(parse_u64("99999999999999999999", v));
  EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max() - 1);
}

TEST(ParseU64, RejectsHexAndSignPrefixesEvenWithValidDigits) {
  std::uint64_t v = 7;
  EXPECT_FALSE(parse_u64("0xff", v));
  EXPECT_FALSE(parse_u64("0Xff", v));
  EXPECT_FALSE(parse_u64("+0", v));
  EXPECT_FALSE(parse_u64("++1", v));
  // But a plain leading zero is just base 10, not octal.
  EXPECT_TRUE(parse_u64("010", v));
  EXPECT_EQ(v, 10u);
}

TEST(ParseSize, TracksU64Semantics) {
  std::size_t v = 3;
  EXPECT_TRUE(parse_size("123", v));
  EXPECT_EQ(v, 123u);
  EXPECT_FALSE(parse_size("nope", v));
  EXPECT_EQ(v, 123u);
}

TEST(ParseF64, RejectsSignedAndHexFloatSpellings) {
  double v = 9.0;
  EXPECT_FALSE(parse_f64("+1.5", v));    // explicit sign
  EXPECT_FALSE(parse_f64("-1.5", v));
  EXPECT_FALSE(parse_f64("0x1p3", v));   // hex float
  EXPECT_FALSE(parse_f64("0x10", v));    // hex int spelling of 16.0
  EXPECT_FALSE(parse_f64("1.5.5", v));
  EXPECT_FALSE(parse_f64("1e", v));      // dangling exponent
  EXPECT_EQ(v, 9.0);
}

TEST(ParseF64, IsLocaleIndependent) {
  // A comma-decimal locale must not change what "1.5" (or "1,5") means.
  // The container may only ship the C locale; then there is nothing to
  // vary and the test skips.
  const char* comma_locale = nullptr;
  for (const char* name : {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8", "fr_FR",
                           "nl_NL.UTF-8"}) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) {
      comma_locale = name;
      break;
    }
  }
  if (comma_locale == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  double v = 0.0;
  const bool dot_ok = parse_f64("1.5", v);
  const bool comma_ok = parse_f64("1,5", v);
  std::setlocale(LC_NUMERIC, "C");
  EXPECT_TRUE(dot_ok);
  EXPECT_EQ(v, 1.5);
  EXPECT_FALSE(comma_ok);
}

// --- sweep_cli flag handling -------------------------------------------

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return argv;
}

TEST(SweepCli, ParsesAllFlagsInBothForms) {
  std::vector<std::string> args = {"prog",       "--jobs",     "4",
                                   "--trials=9", "--seed",     "77",
                                   "--scenario", "outdoor",    "--controller=reactive",
                                   "--json-out", "/tmp/x.json"};
  auto argv = argv_of(args);
  const bench::SweepCliOptions opts =
      bench::parse_sweep_cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(opts.jobs, 4u);
  EXPECT_EQ(opts.trials, 9u);
  EXPECT_EQ(opts.seed, 77u);
  EXPECT_EQ(opts.scenario, "outdoor");
  EXPECT_EQ(opts.controller, "reactive");
  EXPECT_EQ(opts.json_out, "/tmp/x.json");
}

TEST(SweepCli, DefaultsWhenNoFlags) {
  std::vector<std::string> args = {"prog"};
  auto argv = argv_of(args);
  const bench::SweepCliOptions opts =
      bench::parse_sweep_cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(opts.jobs, 1u);
  EXPECT_EQ(opts.trials, 0u);
  EXPECT_EQ(opts.seed, 0u);
  EXPECT_TRUE(opts.scenario.empty());
  EXPECT_TRUE(opts.controller.empty());
  EXPECT_TRUE(opts.json_out.empty());
}

int run_cli(std::vector<std::string> args) {
  auto argv = argv_of(args);
  bench::parse_sweep_cli(static_cast<int>(argv.size()), argv.data());
  return 0;
}

TEST(SweepCliDeathTest, GarbageJobsExits2) {
  EXPECT_EXIT(run_cli({"prog", "--jobs", "abc"}),
              ::testing::ExitedWithCode(2), "invalid value for --jobs");
}

TEST(SweepCliDeathTest, TrailingGarbageTrialsExits2) {
  EXPECT_EXIT(run_cli({"prog", "--trials=12x"}),
              ::testing::ExitedWithCode(2), "invalid value for --trials");
}

TEST(SweepCliDeathTest, NegativeSeedExits2) {
  EXPECT_EXIT(run_cli({"prog", "--seed", "-1"}),
              ::testing::ExitedWithCode(2), "invalid value for --seed");
}

TEST(SweepCliDeathTest, MissingValueExits2) {
  EXPECT_EXIT(run_cli({"prog", "--jobs"}), ::testing::ExitedWithCode(2),
              "unknown argument");
}

TEST(SweepCliDeathTest, UnknownFlagExits2) {
  EXPECT_EXIT(run_cli({"prog", "--frobnicate"}),
              ::testing::ExitedWithCode(2), "unknown argument");
}

TEST(SweepCliDeathTest, ListExits0AndPrintsRegistries) {
  EXPECT_EXIT(run_cli({"prog", "--list"}), ::testing::ExitedWithCode(0),
              "");
}

// --- distributed-campaign flags ----------------------------------------

TEST(SweepCli, ParsesShardAndMergeFlags) {
  std::vector<std::string> args = {"prog", "--resume", "/tmp/base",
                                   "--shard", "1/3"};
  auto argv = argv_of(args);
  const bench::SweepCliOptions opts =
      bench::parse_sweep_cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(opts.shard.enabled());
  EXPECT_EQ(opts.shard.index, 1u);
  EXPECT_EQ(opts.shard.count, 3u);
  EXPECT_TRUE(bench::distributed_mode(opts));

  std::vector<std::string> margs = {"prog", "--merge=/tmp/base"};
  auto margv = argv_of(margs);
  const bench::SweepCliOptions mopts =
      bench::parse_sweep_cli(static_cast<int>(margv.size()), margv.data());
  EXPECT_EQ(mopts.merge, "/tmp/base");
  EXPECT_TRUE(bench::distributed_mode(mopts));
}

TEST(SweepCliDeathTest, MalformedShardSpecExits2) {
  EXPECT_EXIT(run_cli({"prog", "--resume", "/tmp/b", "--shard", "3/3"}),
              ::testing::ExitedWithCode(2), "invalid value for --shard");
  EXPECT_EXIT(run_cli({"prog", "--resume", "/tmp/b", "--shard", "0x1/3"}),
              ::testing::ExitedWithCode(2), "invalid value for --shard");
  EXPECT_EXIT(run_cli({"prog", "--resume", "/tmp/b", "--shard", "a/b"}),
              ::testing::ExitedWithCode(2), "invalid value for --shard");
}

TEST(SweepCliDeathTest, ShardWithoutResumeExits2) {
  EXPECT_EXIT(run_cli({"prog", "--shard", "0/2"}),
              ::testing::ExitedWithCode(2), "--resume");
}

TEST(SweepCliDeathTest, ShardCombinedWithQueueExits2) {
  EXPECT_EXIT(run_cli({"prog", "--resume", "/tmp/b", "--shard", "0/2",
                       "--shard-queue", "/tmp/q"}),
              ::testing::ExitedWithCode(2), "--shard-queue");
}

TEST(SweepCliDeathTest, ShardsWithoutQueueExits2) {
  EXPECT_EXIT(run_cli({"prog", "--resume", "/tmp/b", "--shards", "3"}),
              ::testing::ExitedWithCode(2),
              "--shards requires --shard-queue");
}

TEST(SweepCliDeathTest, ZeroShardsExits2) {
  EXPECT_EXIT(run_cli({"prog", "--resume", "/tmp/b", "--shard-queue",
                       "/tmp/q", "--shards", "0"}),
              ::testing::ExitedWithCode(2), "--shards");
}

TEST(SweepCliDeathTest, MergeCombinedWithWorkerFlagsExits2) {
  EXPECT_EXIT(run_cli({"prog", "--merge", "/tmp/b", "--resume", "/tmp/b"}),
              ::testing::ExitedWithCode(2), "standalone");
  EXPECT_EXIT(run_cli({"prog", "--merge", "/tmp/b", "--shard", "0/2"}),
              ::testing::ExitedWithCode(2), "standalone");
}

// --kernel-backend: scalar/portable are compiled on every target, so
// forcing them must succeed and switch the process-global dispatch.
TEST(SweepCli, KernelBackendFlagAppliesEagerly) {
  const dsp::Backend before = dsp::active_backend();
  std::vector<std::string> args = {"prog", "--kernel-backend", "scalar"};
  auto argv = argv_of(args);
  const bench::SweepCliOptions opts =
      bench::parse_sweep_cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(opts.kernel_backend, "scalar");
  EXPECT_EQ(dsp::active_backend(), dsp::Backend::kScalar);
  dsp::set_backend(before);  // restore for the rest of the binary
}

TEST(SweepCli, KernelBackendAutoPicksBestBackend) {
  const dsp::Backend before = dsp::active_backend();
  std::vector<std::string> args = {"prog", "--kernel-backend=auto"};
  auto argv = argv_of(args);
  (void)bench::parse_sweep_cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(dsp::active_backend(), dsp::best_backend());
  dsp::set_backend(before);
}

TEST(SweepCliDeathTest, UnknownKernelBackendExits2) {
  EXPECT_EXIT(run_cli({"prog", "--kernel-backend", "sse9"}),
              ::testing::ExitedWithCode(2), "unknown --kernel-backend");
}

TEST(SweepCli, ApplyCliOverridesRegistryNamesAndJobs) {
  bench::SweepCliOptions opts;
  opts.jobs = 3;
  opts.scenario = "outdoor";
  opts.controller = "reactive";
  sim::ExperimentSpec spec;
  bench::apply_cli(opts, spec);
  EXPECT_EQ(spec.jobs, 3u);
  EXPECT_EQ(spec.scenario.name, "outdoor");
  EXPECT_EQ(spec.controller.name, "reactive");

  // Empty overrides keep the bench's defaults.
  bench::SweepCliOptions defaults;
  sim::ExperimentSpec spec2;
  spec2.scenario.name = "indoor_sparse";
  spec2.controller.name = "beamspy";
  bench::apply_cli(defaults, spec2);
  EXPECT_EQ(spec2.scenario.name, "indoor_sparse");
  EXPECT_EQ(spec2.controller.name, "beamspy");
}

}  // namespace
}  // namespace mmr
