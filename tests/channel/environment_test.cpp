#include "channel/environment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.h"
#include "common/constants.h"

namespace mmr::channel {
namespace {

TEST(Environment, FreeSpaceHasOnlyLos) {
  Environment env(kCarrier28GHz);
  const Pose tx{{0.0, 0.0}, 0.0};
  const Pose rx{{10.0, 0.0}, kPi};
  const auto paths = env.trace(tx, rx);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths[0].is_los);
  EXPECT_NEAR(paths[0].aod_rad, 0.0, 1e-12);
  EXPECT_NEAR(paths[0].aoa_rad, 0.0, 1e-12);
  EXPECT_NEAR(paths[0].delay_s, 10.0 / kSpeedOfLight, 1e-15);
}

TEST(Environment, SingleReflectorGeometry) {
  // Wall at y = 5, tx at origin, rx at (10, 0): reflection point (5, 5),
  // AoD 45 degrees, path length 10 sqrt(2).
  Environment env(kCarrier28GHz);
  env.add_wall({{{-20.0, 5.0}, {30.0, 5.0}}, Material::metal()});
  const Pose tx{{0.0, 0.0}, 0.0};
  const Pose rx{{10.0, 0.0}, kPi};
  const auto paths = env.trace(tx, rx);
  ASSERT_EQ(paths.size(), 2u);
  const Path* nlos = paths[0].is_los ? &paths[1] : &paths[0];
  EXPECT_NEAR(nlos->aod_rad, deg_to_rad(45.0), 1e-9);
  EXPECT_NEAR(nlos->reflection_point.x, 5.0, 1e-9);
  EXPECT_NEAR(nlos->reflection_point.y, 5.0, 1e-9);
  EXPECT_NEAR(nlos->delay_s, 10.0 * std::sqrt(2.0) / kSpeedOfLight, 1e-14);
}

TEST(Environment, ReflectedPathWeakerThanLos) {
  Environment env(kCarrier28GHz);
  env.add_wall({{{-20.0, 5.0}, {30.0, 5.0}}, Material::glass()});
  const auto paths =
      env.trace({{0.0, 0.0}, 0.0}, {{10.0, 0.0}, kPi});
  ASSERT_EQ(paths.size(), 2u);
  // sorted_by_power: LOS first.
  EXPECT_TRUE(paths[0].is_los);
  EXPECT_GT(paths[0].effective_power(), paths[1].effective_power());
}

TEST(Environment, OcclusionBlocksLos) {
  Environment env(kCarrier28GHz);
  // Occluding wall between tx and rx.
  env.add_wall({{{5.0, -1.0}, {5.0, 1.0}}, Material::concrete()});
  const auto paths =
      env.trace({{0.0, 0.0}, 0.0}, {{10.0, 0.0}, kPi});
  for (const Path& p : paths) EXPECT_FALSE(p.is_los);
}

TEST(Environment, NonOccludingWallReflectsButDoesNotBlock) {
  Environment env(kCarrier28GHz);
  env.add_wall({{{5.0, -1.0}, {5.0, 1.0}}, Material::metal(), false});
  const auto paths =
      env.trace({{0.0, 0.0}, 0.0}, {{10.0, 0.0}, kPi});
  bool has_los = false;
  for (const Path& p : paths) has_los |= p.is_los;
  EXPECT_TRUE(has_los);
}

TEST(Environment, RearPathsMaskedByElementPattern) {
  // A reflector BEHIND the tx would need |AoD| > 90 deg; the element
  // pattern must suppress it entirely.
  Environment env(kCarrier28GHz);
  env.add_wall({{{-5.0, -10.0}, {-5.0, 10.0}}, Material::metal()});
  const auto paths =
      env.trace({{0.0, 0.0}, 0.0}, {{10.0, 0.0}, kPi});
  for (const Path& p : paths) {
    EXPECT_LE(std::abs(p.aod_rad), kPi / 2.0 + 1e-9);
  }
}

TEST(Environment, PruningDropsVeryWeakPaths) {
  Environment env(kCarrier28GHz);
  env.add_wall({{{-20.0, 5.0}, {30.0, 5.0}}, Material::metal()});
  const Pose tx{{0.0, 0.0}, 0.0};
  const Pose rx{{10.0, 0.0}, kPi};
  // With a 1 dB pruning threshold the (weaker) reflection must vanish.
  const auto paths = env.trace(tx, rx, /*min_rel_power_db=*/1.0);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths[0].is_los);
}

TEST(Environment, CannedRoomsProduceMultipath) {
  {
    Environment env = Environment::indoor_conference_room();
    const auto paths = env.trace({{0.5, 6.2}, 0.0}, {{7.0, 6.2}, kPi});
    EXPECT_GE(paths.size(), 3u);
  }
  {
    Environment env = Environment::indoor_sparse();
    const auto paths = env.trace({{0.5, 6.2}, 0.0}, {{7.0, 6.2}, kPi});
    EXPECT_GE(paths.size(), 2u);
  }
  {
    Environment env = Environment::outdoor_street();
    const auto paths = env.trace({{0.0, 0.0}, 0.0}, {{40.0, 0.0}, kPi});
    EXPECT_GE(paths.size(), 2u);
  }
}

TEST(Environment, OutdoorReflectorWithinPaperAttenuationRange) {
  // Paper Fig. 4a: outdoor reflectors attenuate 1-10 dB relative to LOS
  // with a median near 5 dB.
  Environment env = Environment::outdoor_street();
  const auto paths = env.trace({{0.0, 0.0}, 0.0}, {{40.0, 0.0}, kPi});
  ASSERT_GE(paths.size(), 2u);
  const double rel_db = 10.0 * std::log10(paths[0].effective_power() /
                                          paths[1].effective_power());
  EXPECT_GT(rel_db, 1.0);
  EXPECT_LT(rel_db, 12.0);
}

TEST(Path, BlockageAttenuatesEffectiveGain) {
  Path p;
  p.gain = cplx{1.0, 0.0};
  p.blockage_db = 20.0;
  EXPECT_NEAR(p.effective_power(), 0.01, 1e-9);
}

TEST(Path, SortedByPowerUsesBlockage) {
  Path strong_but_blocked;
  strong_but_blocked.gain = cplx{1.0, 0.0};
  strong_but_blocked.blockage_db = 30.0;
  Path weak_clear;
  weak_clear.gain = cplx{0.5, 0.0};
  const auto sorted = sorted_by_power({strong_but_blocked, weak_clear});
  EXPECT_NEAR(std::abs(sorted[0].gain), 0.5, 1e-12);
}

}  // namespace
}  // namespace mmr::channel

namespace mmr::channel {
namespace {

TEST(Environment, DoubleBounceInCorridor) {
  // Two parallel metal walls: the zig-zag TX -> wall A -> wall B -> RX
  // path exists only when max_bounces = 2.
  Environment env(kCarrier28GHz);
  env.add_wall({{{-5.0, 3.0}, {15.0, 3.0}}, Material::metal()});
  env.add_wall({{{-5.0, -3.0}, {15.0, -3.0}}, Material::metal()});
  const Pose tx{{0.0, 0.0}, 0.0};
  const Pose rx{{10.0, 0.0}, kPi};

  const auto single = env.trace(tx, rx, 60.0, 1);
  const auto doubled = env.trace(tx, rx, 60.0, 2);
  EXPECT_GT(doubled.size(), single.size());

  // Find a two-bounce path: longer than any single-bounce reflection.
  double longest_single = 0.0;
  for (const auto& p : single) longest_single = std::max(longest_single, p.delay_s);
  double longest_double = 0.0;
  for (const auto& p : doubled) longest_double = std::max(longest_double, p.delay_s);
  EXPECT_GT(longest_double, longest_single);
}

TEST(Environment, DoubleBounceGeometryExact) {
  // Symmetric corridor: TX (0,0), RX (12,0), walls at y = +-3. The
  // A(top)->B(bottom) zig-zag reflects at y=+3 then y=-3 with equal
  // x-spacing thirds: P1 = (3, 3)... solved: total vertical unfolding is
  // 12 (0 -> 3 -> -3 -> 0 unfolds to 12 over dx = 12), so the path length
  // is sqrt(12^2 + 12^2) = 16.97 m.
  Environment env(kCarrier28GHz);
  env.add_wall({{{-5.0, 3.0}, {20.0, 3.0}}, Material::metal()});
  env.add_wall({{{-5.0, -3.0}, {20.0, -3.0}}, Material::metal()});
  const Pose tx{{0.0, 0.0}, 0.0};
  const Pose rx{{12.0, 0.0}, kPi};
  const auto paths = env.trace(tx, rx, 80.0, 2);
  bool found = false;
  for (const auto& p : paths) {
    if (std::abs(p.delay_s * kSpeedOfLight - std::sqrt(2.0) * 12.0) < 0.01) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Environment, DoubleBouncePaysBothReflectionLosses) {
  Environment env(kCarrier28GHz);
  env.add_wall({{{-5.0, 3.0}, {20.0, 3.0}}, Material::wood()});   // 11 dB
  env.add_wall({{{-5.0, -3.0}, {20.0, -3.0}}, Material::metal()}); // 1 dB
  const Pose tx{{0.0, 0.0}, 0.0};
  const Pose rx{{12.0, 0.0}, kPi};
  const auto paths = env.trace(tx, rx, 80.0, 2);
  // The strongest double-bounce must be weaker than the strongest
  // single bounce by at least the extra material loss.
  double best_single = 0.0, best_double = 0.0;
  for (const auto& p : paths) {
    if (p.is_los) continue;
    const double len = p.delay_s * kSpeedOfLight;
    if (len > 15.0) {
      best_double = std::max(best_double, p.effective_power());
    } else {
      best_single = std::max(best_single, p.effective_power());
    }
  }
  ASSERT_GT(best_single, 0.0);
  ASSERT_GT(best_double, 0.0);
  EXPECT_GT(best_single, best_double);
}

TEST(Environment, DefaultTraceIsSingleBounce) {
  Environment env(kCarrier28GHz);
  env.add_wall({{{-5.0, 3.0}, {15.0, 3.0}}, Material::metal()});
  env.add_wall({{{-5.0, -3.0}, {15.0, -3.0}}, Material::metal()});
  const auto def = env.trace({{0.0, 0.0}, 0.0}, {{10.0, 0.0}, kPi}, 60.0);
  const auto one = env.trace({{0.0, 0.0}, 0.0}, {{10.0, 0.0}, kPi}, 60.0, 1);
  EXPECT_EQ(def.size(), one.size());
}

TEST(Environment, RejectsUnsupportedBounceCount) {
  Environment env(kCarrier28GHz);
  EXPECT_THROW(env.trace({{0.0, 0.0}, 0.0}, {{1.0, 0.0}, kPi}, 40.0, 3),
               std::logic_error);
  EXPECT_THROW(env.trace({{0.0, 0.0}, 0.0}, {{1.0, 0.0}, kPi}, 40.0, 0),
               std::logic_error);
}

}  // namespace
}  // namespace mmr::channel
