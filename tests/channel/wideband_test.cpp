#include "channel/wideband.h"

#include <gtest/gtest.h>

#include <cmath>

#include "array/pattern.h"
#include "common/angles.h"
#include "common/constants.h"

namespace mmr::channel {
namespace {

Path make_path(double aod_deg, double gain_amp, double phase_rad,
               double delay_ns, bool los = true) {
  Path p;
  p.aod_rad = deg_to_rad(aod_deg);
  p.aoa_rad = 0.0;
  p.gain = std::polar(gain_amp, phase_rad);
  p.delay_s = delay_ns * 1e-9;
  p.is_los = los;
  return p;
}

const WidebandSpec kSpec{28e9, 400e6, 64};
const array::Ula kUla{8, 0.5};

TEST(Wideband, SinglePathFlatSpectrum) {
  const std::vector<Path> paths{make_path(10.0, 1e-4, 0.3, 5.0)};
  const CVec w = array::single_beam_weights(kUla, deg_to_rad(10.0));
  const CVec csi = effective_csi(paths, kUla, w, kSpec, RxFrontend::omni());
  ASSERT_EQ(csi.size(), 64u);
  const double mag0 = std::abs(csi[0]);
  for (const cplx& h : csi) EXPECT_NEAR(std::abs(h), mag0, 1e-12);
  // Matched beam: |H| = gain * sqrt(N).
  EXPECT_NEAR(mag0, 1e-4 * std::sqrt(8.0), 1e-9);
}

TEST(Wideband, TwoPathFringePeriodMatchesDelaySpread) {
  // Two equal paths 10 ns apart: |H(f)|^2 oscillates with period
  // 1/10ns = 100 MHz across the band.
  const std::vector<Path> paths{make_path(0.0, 1e-4, 0.0, 0.0),
                                make_path(0.0, 1e-4, 0.0, 10.0, false)};
  CVec w(kUla.num_elements, cplx{1.0 / std::sqrt(8.0), 0.0});  // boresight
  const CVec csi = effective_csi(paths, kUla, w, kSpec, RxFrontend::omni());
  // Count minima: 400 MHz / 100 MHz = 4 fringes.
  int minima = 0;
  for (std::size_t k = 1; k + 1 < csi.size(); ++k) {
    if (std::abs(csi[k]) < std::abs(csi[k - 1]) &&
        std::abs(csi[k]) < std::abs(csi[k + 1])) {
      ++minima;
    }
  }
  EXPECT_GE(minima, 3);
  EXPECT_LE(minima, 5);
}

TEST(Wideband, PathAmplitudeIncludesAllGains) {
  const Path p = make_path(20.0, 2e-4, 0.0, 0.0);
  const CVec w = array::single_beam_weights(kUla, deg_to_rad(20.0));
  const cplx alpha = path_amplitude(p, kUla, w, RxFrontend::omni(3.0));
  EXPECT_NEAR(std::abs(alpha), 2e-4 * std::sqrt(8.0) * 3.0, 1e-9);
}

TEST(Wideband, CirPeaksAtPathDelays) {
  const std::vector<Path> paths{make_path(0.0, 1e-4, 0.0, 0.0),
                                make_path(25.0, 0.5e-4, 1.0, 12.5, false)};
  // Omni-ish weights so both paths radiate.
  CVec w(kUla.num_elements, cplx{});
  w[0] = cplx{1.0, 0.0};
  const CVec cir =
      effective_cir(paths, kUla, w, kSpec, 16, RxFrontend::omni());
  // Path delays 0 ns and 12.5 ns = taps 0 and 5 at Ts = 2.5 ns.
  const double t0 = std::abs(cir[0]);
  const double t5 = std::abs(cir[5]);
  EXPECT_GT(t0, std::abs(cir[2]));
  EXPECT_GT(t5, std::abs(cir[3]));
  EXPECT_GT(t0, t5);  // first path is stronger
}

TEST(Wideband, CirTimingOffsetShiftsPeak) {
  const std::vector<Path> paths{make_path(0.0, 1e-4, 0.0, 0.0)};
  CVec w(kUla.num_elements, cplx{});
  w[0] = cplx{1.0, 0.0};
  const CVec cir = effective_cir(paths, kUla, w, kSpec, 16,
                                 RxFrontend::omni(), 2.5e-9);
  EXPECT_GT(std::abs(cir[1]), std::abs(cir[0]));
}

TEST(Wideband, ReceivedPowerMatchesCsiMean) {
  const std::vector<Path> paths{make_path(0.0, 1e-4, 0.0, 0.0),
                                make_path(30.0, 0.7e-4, 0.4, 3.0, false)};
  const CVec w = array::single_beam_weights(kUla, 0.0);
  const CVec csi = effective_csi(paths, kUla, w, kSpec, RxFrontend::omni());
  double mean = 0.0;
  for (const cplx& h : csi) mean += std::norm(h);
  mean /= static_cast<double>(csi.size());
  EXPECT_NEAR(received_power(paths, kUla, w, kSpec, RxFrontend::omni()),
              mean, 1e-20);
}

TEST(Wideband, CirEnergyApproximatesCsiMeanPower) {
  // Parseval: full-length Nyquist CIR energy = mean subcarrier power.
  const std::vector<Path> paths{make_path(0.0, 1e-4, 0.0, 0.0),
                                make_path(15.0, 0.6e-4, 0.9, 4.0, false)};
  const CVec w = array::single_beam_weights(kUla, 0.0);
  const CVec cir =
      effective_cir(paths, kUla, w, kSpec, 48, RxFrontend::omni());
  double cir_energy = 0.0;
  for (const cplx& h : cir) cir_energy += std::norm(h);
  const double p = received_power(paths, kUla, w, kSpec, RxFrontend::omni());
  EXPECT_NEAR(cir_energy / p, 1.0, 0.1);
}

TEST(Wideband, PerAntennaChannelMatchesSteeringSum) {
  const std::vector<Path> paths{make_path(10.0, 1e-4, 0.2, 0.0),
                                make_path(-25.0, 0.5e-4, -0.8, 2.0, false)};
  const CVec h = per_antenna_channel(paths, kUla, RxFrontend::omni());
  ASSERT_EQ(h.size(), 8u);
  for (std::size_t n = 0; n < 8; ++n) {
    cplx expected{};
    for (const Path& p : paths) {
      const CVec a = array::steering_vector(kUla, p.aod_rad);
      expected += p.gain * a[n];
    }
    EXPECT_NEAR(std::abs(h[n] - expected), 0.0, 1e-15);
  }
}

TEST(Wideband, OraclePerAntennaBeatsSingleBeamNarrowband) {
  const std::vector<Path> paths{make_path(0.0, 1e-4, 0.0, 0.0),
                                make_path(30.0, 0.8e-4, 1.2, 0.4, false)};
  const CVec h = per_antenna_channel(paths, kUla, RxFrontend::omni());
  // Oracle weights.
  double norm2 = 0.0;
  for (const cplx& c : h) norm2 += std::norm(c);
  CVec oracle(h.size());
  for (std::size_t n = 0; n < h.size(); ++n) {
    oracle[n] = std::conj(h[n]) / std::sqrt(norm2);
  }
  const CVec single = array::single_beam_weights(kUla, 0.0);
  const double p_oracle =
      received_power(paths, kUla, oracle, kSpec, RxFrontend::omni());
  const double p_single =
      received_power(paths, kUla, single, kSpec, RxFrontend::omni());
  EXPECT_GT(p_oracle, p_single);
}

TEST(Wideband, DirectionalRxAddsArrayGain) {
  const std::vector<Path> paths{make_path(0.0, 1e-4, 0.0, 0.0)};
  const CVec w = array::single_beam_weights(kUla, 0.0);
  const array::Ula rx_ula{4, 0.5};
  const RxFrontend rx_beam = RxFrontend::beam(
      rx_ula, array::single_beam_weights(rx_ula, 0.0));
  const double p_omni =
      received_power(paths, kUla, w, kSpec, RxFrontend::omni());
  const double p_dir = received_power(paths, kUla, w, kSpec, rx_beam);
  EXPECT_NEAR(p_dir / p_omni, 4.0, 1e-9);  // N_rx gain
}

TEST(Wideband, FreqWeightsMatchesStaticWhenConstant) {
  const std::vector<Path> paths{make_path(5.0, 1e-4, 0.0, 0.0),
                                make_path(-15.0, 0.5e-4, 0.7, 1.0, false)};
  const CVec w = array::single_beam_weights(kUla, deg_to_rad(5.0));
  const CVec a = effective_csi(paths, kUla, w, kSpec, RxFrontend::omni());
  const CVec b = effective_csi_freq_weights(
      paths, kUla, [&](double) { return w; }, kSpec, RxFrontend::omni());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(std::abs(a[k] - b[k]), 0.0, 1e-15);
  }
}

TEST(WidebandSpec, GridProperties) {
  EXPECT_NEAR(kSpec.subcarrier_spacing(), 6.25e6, 1e-3);
  EXPECT_NEAR(kSpec.sample_period(), 2.5e-9, 1e-15);
  // Centered grid: symmetric extremes.
  EXPECT_NEAR(kSpec.freq_offset(0), -kSpec.freq_offset(63), 1e-6);
}

}  // namespace
}  // namespace mmr::channel
