#include "channel/geometry2d.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mmr::channel {
namespace {

TEST(Geometry2d, VectorBasics) {
  const Vec2 a{3.0, 4.0};
  EXPECT_NEAR(length(a), 5.0, 1e-12);
  EXPECT_NEAR(distance({0, 0}, a), 5.0, 1e-12);
  EXPECT_NEAR(dot(a, {1.0, 0.0}), 3.0, 1e-12);
  EXPECT_NEAR(cross({1.0, 0.0}, {0.0, 1.0}), 1.0, 1e-12);
  const Vec2 n = normalized(a);
  EXPECT_NEAR(length(n), 1.0, 1e-12);
}

TEST(Geometry2d, NormalizedZeroIsZero) {
  const Vec2 z = normalized({0.0, 0.0});
  EXPECT_EQ(z.x, 0.0);
  EXPECT_EQ(z.y, 0.0);
}

TEST(Geometry2d, Heading) {
  EXPECT_NEAR(heading({1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(heading({0.0, 1.0}), 1.5707963, 1e-6);
  EXPECT_NEAR(heading({-1.0, 0.0}), 3.1415926, 1e-6);
}

TEST(Mirror, AcrossHorizontalLine) {
  const Segment wall{{0.0, 2.0}, {10.0, 2.0}};
  const Vec2 image = mirror_across(wall, {3.0, 0.0});
  EXPECT_NEAR(image.x, 3.0, 1e-12);
  EXPECT_NEAR(image.y, 4.0, 1e-12);
}

TEST(Mirror, AcrossDiagonalLine) {
  // Line y = x: mirror of (2, 0) is (0, 2).
  const Segment wall{{0.0, 0.0}, {5.0, 5.0}};
  const Vec2 image = mirror_across(wall, {2.0, 0.0});
  EXPECT_NEAR(image.x, 0.0, 1e-12);
  EXPECT_NEAR(image.y, 2.0, 1e-12);
}

TEST(Mirror, PointOnLineIsFixed) {
  const Segment wall{{0.0, 0.0}, {1.0, 1.0}};
  const Vec2 image = mirror_across(wall, {0.5, 0.5});
  EXPECT_NEAR(image.x, 0.5, 1e-12);
  EXPECT_NEAR(image.y, 0.5, 1e-12);
}

TEST(Intersect, ProperCrossing) {
  const Segment seg{{0.0, 0.0}, {2.0, 2.0}};
  const auto hit = intersect(seg, {0.0, 2.0}, {2.0, 0.0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->x, 1.0, 1e-12);
  EXPECT_NEAR(hit->y, 1.0, 1e-12);
}

TEST(Intersect, MissReturnsNullopt) {
  const Segment seg{{0.0, 0.0}, {1.0, 0.0}};
  EXPECT_FALSE(intersect(seg, {2.0, 1.0}, {3.0, -1.0}).has_value());
  EXPECT_FALSE(intersect(seg, {0.0, 1.0}, {1.0, 2.0}).has_value());
}

TEST(Intersect, ParallelReturnsNullopt) {
  const Segment seg{{0.0, 0.0}, {1.0, 0.0}};
  EXPECT_FALSE(intersect(seg, {0.0, 1.0}, {1.0, 1.0}).has_value());
}

TEST(Intersect, EndpointTouchCounts) {
  const Segment seg{{0.0, 0.0}, {2.0, 0.0}};
  const auto hit = intersect(seg, {1.0, 0.0}, {1.0, 1.0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->x, 1.0, 1e-9);
  EXPECT_NEAR(hit->y, 0.0, 1e-9);
}

TEST(PointSegmentDistance, PerpendicularFoot) {
  const Segment seg{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_NEAR(point_segment_distance(seg, {5.0, 3.0}), 3.0, 1e-12);
}

TEST(PointSegmentDistance, BeyondEndpointsUsesEndpoint) {
  const Segment seg{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_NEAR(point_segment_distance(seg, {13.0, 4.0}), 5.0, 1e-12);
  EXPECT_NEAR(point_segment_distance(seg, {-3.0, 4.0}), 5.0, 1e-12);
}

TEST(PointSegmentDistance, DegenerateSegment) {
  const Segment seg{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_NEAR(point_segment_distance(seg, {4.0, 5.0}), 5.0, 1e-12);
}

}  // namespace
}  // namespace mmr::channel
