#include "channel/irs.h"

#include <gtest/gtest.h>

#include <cmath>

#include "channel/pathloss.h"
#include "common/angles.h"
#include "common/constants.h"
#include "common/units.h"

namespace mmr::channel {
namespace {

const Pose kTx{{0.0, 0.0}, 0.0};
const Pose kRx{{10.0, 0.0}, kPi};

TEST(Irs, GeometryOfEngineeredPath) {
  IrsPanel panel;
  panel.position = {5.0, 5.0};
  const Path p = irs_path(panel, kTx, kRx, kCarrier28GHz);
  EXPECT_FALSE(p.is_los);
  EXPECT_EQ(p.reflector_id, -2);
  EXPECT_NEAR(rad_to_deg(p.aod_rad), 45.0, 1e-9);
  EXPECT_NEAR(p.delay_s, 2.0 * std::hypot(5.0, 5.0) / kSpeedOfLight, 1e-15);
  EXPECT_NEAR(p.reflection_point.x, 5.0, 0.0);
}

TEST(Irs, ProductDistanceLawWithGain) {
  IrsPanel panel;
  panel.position = {5.0, 5.0};
  panel.gain_db = 60.0;
  const Path p = irs_path(panel, kTx, kRx, kCarrier28GHz);
  const double d = std::hypot(5.0, 5.0);  // both hops are 5*sqrt(2) m
  // Power: -(FSPL(d1) + FSPL(d2)) + panel gain - absorption, plus the
  // cos(AoD) element pattern (amplitude factor -> 20 log10 in power).
  const double expected_db =
      -2.0 * free_space_path_loss_db(d, kCarrier28GHz) + 60.0 +
      to_db_amp(std::cos(deg_to_rad(45.0))) -
      atmospheric_absorption_db(2.0 * d, kCarrier28GHz);
  EXPECT_NEAR(to_db(std::norm(p.gain)), expected_db, 0.01);
}

TEST(Irs, MoreGainMeansStrongerPath) {
  IrsPanel weak, strong;
  weak.position = strong.position = {5.0, 4.0};
  weak.gain_db = 40.0;
  strong.gain_db = 60.0;
  const Path pw = irs_path(weak, kTx, kRx, kCarrier28GHz);
  const Path ps = irs_path(strong, kTx, kRx, kCarrier28GHz);
  EXPECT_NEAR(to_db(std::norm(ps.gain) / std::norm(pw.gain)), 20.0, 1e-9);
}

TEST(Irs, UnconfiguredPanelHasNoPath) {
  IrsPanel panel;
  panel.position = {5.0, 5.0};
  panel.configured = false;
  const Path p = irs_path(panel, kTx, kRx, kCarrier28GHz);
  EXPECT_EQ(std::norm(p.gain), 0.0);
}

TEST(Irs, BehindArrayIsMasked) {
  IrsPanel panel;
  panel.position = {-5.0, 1.0};  // behind the gNB
  const Path p = irs_path(panel, kTx, kRx, kCarrier28GHz);
  EXPECT_EQ(std::norm(p.gain), 0.0);
}

TEST(Irs, DegeneratePlacementIsRejectedGracefully) {
  IrsPanel panel;
  panel.position = kTx.position;  // on top of the gNB
  const Path p = irs_path(panel, kTx, kRx, kCarrier28GHz);
  EXPECT_EQ(std::norm(p.gain), 0.0);
}

TEST(Irs, SixtyDbPanelWithinFewDbOfSpecularWall) {
  // The headline design point: a ~60 dB panel at room scale produces a
  // path comparable to a glass-wall reflection.
  IrsPanel panel;
  panel.position = {5.0, 1.5};
  const Path irs = irs_path(panel, kTx, kRx, kCarrier28GHz);
  // Specular equivalent: wall along y = 1.5.
  Environment env(kCarrier28GHz);
  env.add_wall({{{-5.0, 1.5}, {15.0, 1.5}}, Material::glass()});
  const auto paths = env.trace(kTx, kRx);
  const Path* wall = nullptr;
  for (const auto& p : paths) {
    if (!p.is_los) wall = &p;
  }
  ASSERT_NE(wall, nullptr);
  const double rel_db =
      to_db(std::norm(irs.gain) / std::norm(wall->gain));
  EXPECT_GT(rel_db, -8.0);
  EXPECT_LT(rel_db, 8.0);
}

}  // namespace
}  // namespace mmr::channel
