#include "channel/mobility.h"

#include <gtest/gtest.h>

#include "common/angles.h"

namespace mmr::channel {
namespace {

TEST(StaticPose, NeverMoves) {
  const StaticPose traj({{1.0, 2.0}, 0.5});
  const Pose p = traj.at(123.0);
  EXPECT_EQ(p.position.x, 1.0);
  EXPECT_EQ(p.position.y, 2.0);
  EXPECT_EQ(p.orientation_rad, 0.5);
}

TEST(LinearTranslation, ConstantVelocity) {
  const LinearTranslation traj({{0.0, 0.0}, 1.0}, {1.5, -0.5});
  const Pose p = traj.at(2.0);
  EXPECT_NEAR(p.position.x, 3.0, 1e-12);
  EXPECT_NEAR(p.position.y, -1.0, 1e-12);
  EXPECT_EQ(p.orientation_rad, 1.0);  // orientation unchanged
}

TEST(UniformRotation, RateIntegrates) {
  const UniformRotation traj({{1.0, 1.0}, 0.0}, deg_to_rad(24.0));
  const Pose p = traj.at(0.5);
  EXPECT_NEAR(p.orientation_rad, deg_to_rad(12.0), 1e-12);
  EXPECT_EQ(p.position.x, 1.0);
}

TEST(UniformRotation, WrapsOrientation) {
  const UniformRotation traj({{0.0, 0.0}, 0.0}, deg_to_rad(360.0));
  const Pose p = traj.at(1.5);  // 540 deg -> 180 deg
  EXPECT_NEAR(std::abs(p.orientation_rad), kPi, 1e-9);
}

TEST(TranslateAndRotate, Combines) {
  const TranslateAndRotate traj({{0.0, 0.0}, 0.0}, {1.0, 0.0},
                                deg_to_rad(10.0));
  const Pose p = traj.at(2.0);
  EXPECT_NEAR(p.position.x, 2.0, 1e-12);
  EXPECT_NEAR(p.orientation_rad, deg_to_rad(20.0), 1e-12);
}

TEST(WaypointPath, InterpolatesBetweenWaypoints) {
  const WaypointPath traj({{0.0, {{0.0, 0.0}, 0.0}},
                           {1.0, {{10.0, 0.0}, deg_to_rad(90.0)}}});
  const Pose p = traj.at(0.5);
  EXPECT_NEAR(p.position.x, 5.0, 1e-12);
  EXPECT_NEAR(p.orientation_rad, deg_to_rad(45.0), 1e-9);
}

TEST(WaypointPath, ClampsOutsideRange) {
  const WaypointPath traj({{0.0, {{0.0, 0.0}, 0.0}},
                           {1.0, {{10.0, 0.0}, 0.0}}});
  EXPECT_EQ(traj.at(-1.0).position.x, 0.0);
  EXPECT_EQ(traj.at(2.0).position.x, 10.0);
}

TEST(WaypointPath, OrientationTakesShortestArc) {
  // 170 deg to -170 deg should pass through 180, not 0.
  const WaypointPath traj({{0.0, {{0.0, 0.0}, deg_to_rad(170.0)}},
                           {1.0, {{0.0, 0.0}, deg_to_rad(-170.0)}}});
  const Pose p = traj.at(0.5);
  EXPECT_NEAR(std::abs(p.orientation_rad), kPi, 1e-9);
}

TEST(WaypointPath, RejectsTooFewOrUnsorted) {
  EXPECT_THROW(WaypointPath({{0.0, {{0.0, 0.0}, 0.0}}}), std::logic_error);
  EXPECT_THROW(WaypointPath({{1.0, {{0.0, 0.0}, 0.0}},
                             {0.0, {{1.0, 0.0}, 0.0}}}),
               std::logic_error);
}

}  // namespace
}  // namespace mmr::channel
