#include "channel/pathloss.h"

#include <gtest/gtest.h>

#include "common/constants.h"

namespace mmr::channel {
namespace {

TEST(PathLoss, KnownFsplValues) {
  // FSPL(1 m, 28 GHz) = 20 log10(4 pi * 28e9 / c) ~ 61.4 dB.
  EXPECT_NEAR(free_space_path_loss_db(1.0, 28e9), 61.4, 0.2);
  // +20 dB per decade of distance.
  EXPECT_NEAR(free_space_path_loss_db(10.0, 28e9) -
                  free_space_path_loss_db(1.0, 28e9),
              20.0, 1e-9);
}

TEST(PathLoss, HigherFrequencyLosesMore) {
  const double d = 10.0;
  const double diff = free_space_path_loss_db(d, kCarrier60GHz) -
                      free_space_path_loss_db(d, kCarrier28GHz);
  // 20 log10(60/28) ~ 6.6 dB.
  EXPECT_NEAR(diff, 6.6, 0.1);
}

TEST(PathLoss, MonotoneInDistance) {
  double prev = 0.0;
  for (double d = 1.0; d < 100.0; d *= 1.5) {
    const double pl = free_space_path_loss_db(d, 28e9);
    EXPECT_GT(pl, prev);
    prev = pl;
  }
}

TEST(Absorption, SixtyGhzDominates) {
  const double a28 = atmospheric_absorption_db(1000.0, kCarrier28GHz);
  const double a60 = atmospheric_absorption_db(1000.0, kCarrier60GHz);
  EXPECT_NEAR(a28, kOxygenAbsorption28GHzDbPerKm, 1e-9);
  EXPECT_NEAR(a60, kOxygenAbsorption60GHzDbPerKm, 1e-9);
  EXPECT_GT(a60, 100.0 * a28);
}

TEST(Absorption, LinearInDistance) {
  EXPECT_NEAR(atmospheric_absorption_db(500.0, kCarrier60GHz),
              kOxygenAbsorption60GHzDbPerKm / 2.0, 1e-9);
  EXPECT_EQ(atmospheric_absorption_db(0.0, kCarrier60GHz), 0.0);
}

TEST(Absorption, InterpolatesBetweenAnchors) {
  const double mid = atmospheric_absorption_db(1000.0, 44e9);
  EXPECT_GT(mid, kOxygenAbsorption28GHzDbPerKm);
  EXPECT_LT(mid, kOxygenAbsorption60GHzDbPerKm);
}

TEST(PropagationLoss, IsSumOfComponents) {
  const double d = 80.0;
  EXPECT_NEAR(propagation_loss_db(d, kCarrier60GHz),
              free_space_path_loss_db(d, kCarrier60GHz) +
                  atmospheric_absorption_db(d, kCarrier60GHz),
              1e-12);
}

TEST(Materials, OrderedByReflectivity) {
  EXPECT_LT(Material::metal().reflection_loss_db,
            Material::glass().reflection_loss_db);
  EXPECT_LT(Material::glass().reflection_loss_db,
            Material::concrete().reflection_loss_db);
  EXPECT_LT(Material::concrete().reflection_loss_db,
            Material::wood().reflection_loss_db);
}

TEST(PathLoss, RejectsBadArgs) {
  EXPECT_THROW(free_space_path_loss_db(0.0, 28e9), std::logic_error);
  EXPECT_THROW(free_space_path_loss_db(1.0, 0.0), std::logic_error);
}

}  // namespace
}  // namespace mmr::channel
