#include "channel/blockage.h"

#include <gtest/gtest.h>

namespace mmr::channel {
namespace {

GeometricBlocker::Config blocker_at(Vec2 start, Vec2 vel) {
  GeometricBlocker::Config c;
  c.start = start;
  c.velocity = vel;
  c.radius_m = 0.25;
  c.ramp_margin_m = 0.15;
  c.depth_db = 26.0;
  return c;
}

TEST(GeometricBlocker, PositionFollowsVelocity) {
  const GeometricBlocker b(blocker_at({1.0, 2.0}, {0.5, -1.0}));
  const Vec2 p = b.position_at(2.0);
  EXPECT_NEAR(p.x, 2.0, 1e-12);
  EXPECT_NEAR(p.y, 0.0, 1e-12);
}

TEST(GeometricBlocker, FullDepthOnPath) {
  const GeometricBlocker b(blocker_at({5.0, 0.0}, {0.0, 0.0}));
  // LOS from (0,0) to (10,0) passes through the blocker.
  EXPECT_NEAR(b.attenuation_db(0.0, {0.0, 0.0}, {10.0, 0.0}, nullptr), 26.0,
              1e-12);
}

TEST(GeometricBlocker, ZeroFarFromPath) {
  const GeometricBlocker b(blocker_at({5.0, 3.0}, {0.0, 0.0}));
  EXPECT_EQ(b.attenuation_db(0.0, {0.0, 0.0}, {10.0, 0.0}, nullptr), 0.0);
}

TEST(GeometricBlocker, RampIsMonotone) {
  // Slide the blocker toward the path; attenuation grows monotonically
  // through the ramp region.
  double prev = -1.0;
  for (double y = 0.41; y > 0.24; y -= 0.02) {
    const GeometricBlocker b(blocker_at({5.0, y}, {0.0, 0.0}));
    const double a = b.attenuation_db(0.0, {0.0, 0.0}, {10.0, 0.0}, nullptr);
    EXPECT_GE(a, prev);
    prev = a;
  }
  EXPECT_NEAR(prev, 26.0, 2.0);
}

TEST(GeometricBlocker, ReflectedPathUsesBothLegs) {
  const GeometricBlocker b(blocker_at({2.5, 2.5}, {0.0, 0.0}));
  const Vec2 refl{5.0, 5.0};
  // Blocker sits on the tx->reflection leg.
  EXPECT_NEAR(b.attenuation_db(0.0, {0.0, 0.0}, {10.0, 0.0}, &refl), 26.0,
              1e-9);
  // But not on the LOS.
  EXPECT_EQ(b.attenuation_db(0.0, {0.0, 0.0}, {10.0, 0.0}, nullptr), 0.0);
}

TEST(ApplyBlockers, FillsPerPathAttenuation) {
  Path los;
  los.is_los = true;
  Path nlos;
  nlos.is_los = false;
  nlos.reflection_point = {5.0, 5.0};
  std::vector<Path> paths{los, nlos};
  std::vector<GeometricBlocker> blockers{
      GeometricBlocker(blocker_at({5.0, 0.0}, {0.0, 0.0}))};
  apply_blockers(paths, blockers, 0.0, {0.0, 0.0}, {10.0, 0.0},
                 {{0.0, 0.0}, {5.0, 5.0}});
  EXPECT_NEAR(paths[0].blockage_db, 26.0, 1e-9);
  EXPECT_EQ(paths[1].blockage_db, 0.0);
}

TEST(EventProcess, DeterministicForSeed) {
  BlockageEventProcess::Config c;
  c.event_rate_hz = 3.0;
  BlockageEventProcess a(c, Rng(5));
  BlockageEventProcess b(c, Rng(5));
  a.generate(10.0, 2);
  b.generate(10.0, 2);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].start_s, b.events()[i].start_s);
  }
}

TEST(EventProcess, DurationsWithinConfiguredRange) {
  BlockageEventProcess::Config c;
  c.event_rate_hz = 5.0;
  c.min_duration_s = 0.1;
  c.max_duration_s = 0.5;
  BlockageEventProcess p(c, Rng(7));
  p.generate(20.0, 3);
  ASSERT_GT(p.events().size(), 10u);
  for (const auto& ev : p.events()) {
    EXPECT_GE(ev.duration_s, 0.1);
    EXPECT_LE(ev.duration_s, 0.5);
  }
}

TEST(EventProcess, AttenuationOnlyDuringEvent) {
  BlockageEventProcess::Config c;
  c.event_rate_hz = 1.0;
  c.onset_s = 0.0;
  BlockageEventProcess p(c, Rng(11));
  p.generate(10.0, 1);
  ASSERT_FALSE(p.events().empty());
  // Events are generated in time order: before the first one, nothing.
  const auto& first = p.events().front();
  EXPECT_EQ(p.attenuation_db(first.start_s - 0.001, 0), 0.0);
  // During an event attenuation is at least the depth (overlapping
  // events stack, like two blockers would).
  EXPECT_GE(p.attenuation_db(first.start_s + first.duration_s / 2.0, 0),
            c.depth_db - 1e-9);
  // After every event has ended: nothing.
  double last_end = 0.0;
  for (const auto& ev : p.events()) {
    last_end = std::max(last_end, ev.start_s + ev.duration_s);
  }
  EXPECT_EQ(p.attenuation_db(last_end + 0.001, 0), 0.0);
}

TEST(EventProcess, OnsetRampsAttenuation) {
  BlockageEventProcess::Config c;
  c.event_rate_hz = 1.0;
  c.onset_s = 0.01;
  BlockageEventProcess p(c, Rng(13));
  p.generate(10.0, 1);
  ASSERT_FALSE(p.events().empty());
  const auto& ev = p.events().front();
  const double half = p.attenuation_db(ev.start_s + 0.005, 0);
  EXPECT_GT(half, 0.0);
  EXPECT_LT(half, c.depth_db);
}

TEST(EventProcess, TargetsOnlyListedPaths) {
  BlockageEventProcess::Config c;
  c.event_rate_hz = 1.0;
  c.los_bias = 1.0;  // always path 0
  c.correlated_prob = 0.0;
  BlockageEventProcess p(c, Rng(17));
  p.generate(10.0, 3);
  ASSERT_FALSE(p.events().empty());
  const auto& ev = p.events().front();
  const double mid = ev.start_s + ev.duration_s / 2.0;
  EXPECT_GT(p.attenuation_db(mid, 0), 0.0);
  EXPECT_EQ(p.attenuation_db(mid, 1), 0.0);
  EXPECT_EQ(p.attenuation_db(mid, 2), 0.0);
}

TEST(EventProcess, ZeroRateProducesNoEvents) {
  BlockageEventProcess::Config c;
  c.event_rate_hz = 0.0;
  BlockageEventProcess p(c, Rng(19));
  p.generate(100.0, 2);
  EXPECT_TRUE(p.events().empty());
}

}  // namespace
}  // namespace mmr::channel
