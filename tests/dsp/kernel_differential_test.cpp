// Differential tests for the batched/cached beamforming kernels: every
// fast path (dsp/kernels.h, array/pattern_cache.h, the rewired
// geometry/pattern/wideband callers) is driven with randomized inputs
// from Rng::fork sub-streams and compared element-wise against a scalar
// reference that re-states the pre-batching implementation, to a budget
// of <= 1 ULP. The cache suites additionally require BIT-IDENTICAL
// results (cached vs uncached vs disabled) and hammer a shared cache
// from a thread pool so the `kernels` ctest label under -DMMR_TSAN=ON
// proves the sharded storage race-clean.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <vector>

#include "array/codebook.h"
#include "array/geometry.h"
#include "array/pattern.h"
#include "array/pattern_cache.h"
#include "channel/wideband.h"
#include "common/angles.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "core/multibeam.h"
#include "dsp/backend.h"
#include "dsp/kernels.h"
#include "tests/common/diff_harness.h"

namespace mmr {
namespace {

using array::Ula;
using mmr::testing::UlpAudit;

// The <= 1-ULP pins below state the bit-compat contract of the SCALAR
// reference backend; fast backends are audited by the KernelBackendSweep
// tier at the end of this file under their declared tolerances
// (dsp::tolerances). Force the reference path for the pinned suites no
// matter what the machine's CPUID default is.
class KernelDiff : public ::testing::Test {
 protected:
  KernelDiff() : scoped_(dsp::Backend::kScalar) {}
  void SetUp() override { ASSERT_TRUE(scoped_.ok()); }

 private:
  dsp::ScopedBackend scoped_;
};

// ---------------------------------------------------------------------------
// Scalar references: the pre-batching implementations, restated naively.
// ---------------------------------------------------------------------------

CVec ref_steering(const Ula& ula, double phi_rad) {
  CVec a(ula.num_elements);
  const double k = 2.0 * kPi * ula.spacing_wavelengths * std::sin(phi_rad);
  for (std::size_t n = 0; n < ula.num_elements; ++n) {
    const double ang = -k * static_cast<double>(n);
    a[n] = cplx(std::cos(ang), std::sin(ang));
  }
  return a;
}

CVec ref_steering_wideband(const Ula& ula, double phi_rad, double carrier_hz,
                           double freq_offset_hz) {
  const double scale = (carrier_hz + freq_offset_hz) / carrier_hz;
  Ula scaled = ula;
  scaled.spacing_wavelengths = ula.spacing_wavelengths * scale;
  return ref_steering(scaled, phi_rad);
}

CVec ref_single_beam_weights(const Ula& ula, double phi_rad) {
  CVec w = ref_steering(ula, phi_rad);
  const double inv_sqrt_n = 1.0 / std::sqrt(static_cast<double>(w.size()));
  for (auto& c : w) c = std::conj(c) * inv_sqrt_n;
  return w;
}

cplx ref_array_factor(const Ula& ula, const CVec& weights, double phi_rad) {
  const CVec a = ref_steering(ula, phi_rad);
  cplx acc{};
  for (std::size_t n = 0; n < a.size(); ++n) acc += a[n] * weights[n];
  return acc;
}

array::PatternCut ref_pattern_cut(const Ula& ula, const CVec& weights,
                                  double lo_rad, double hi_rad,
                                  std::size_t points) {
  array::PatternCut cut;
  cut.angle_rad.resize(points);
  cut.gain_db.resize(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double phi = lo_rad + (hi_rad - lo_rad) * static_cast<double>(i) /
                                    static_cast<double>(points - 1);
    cut.angle_rad[i] = phi;
    cut.gain_db[i] = to_db(std::norm(ref_array_factor(ula, weights, phi)));
  }
  return cut;
}

CVec ref_effective_csi(const std::vector<channel::Path>& paths,
                       const Ula& tx_ula, const CVec& tx_weights,
                       const channel::WidebandSpec& spec,
                       const channel::RxFrontend& rx) {
  double t0 = paths.front().delay_s;
  for (const channel::Path& p : paths) t0 = std::min(t0, p.delay_s);
  CVec csi(spec.num_subcarriers, cplx{});
  for (const channel::Path& p : paths) {
    const cplx alpha = p.effective_gain() *
                       ref_array_factor(tx_ula, tx_weights, p.aod_rad) *
                       rx.response(p.aoa_rad);
    const double excess = p.delay_s - t0;
    for (std::size_t k = 0; k < spec.num_subcarriers; ++k) {
      const double ang = -2.0 * kPi * spec.freq_offset(k) * excess;
      csi[k] += alpha * cplx(std::cos(ang), std::sin(ang));
    }
  }
  return csi;
}

CVec ref_per_antenna_channel(const std::vector<channel::Path>& paths,
                             const Ula& tx_ula,
                             const channel::RxFrontend& rx) {
  CVec h(tx_ula.num_elements, cplx{});
  for (const channel::Path& p : paths) {
    const cplx g = p.effective_gain() * rx.response(p.aoa_rad);
    const CVec a = ref_steering(tx_ula, p.aod_rad);
    for (std::size_t n = 0; n < h.size(); ++n) h[n] += g * a[n];
  }
  return h;
}

Ula random_ula(Rng& rng) {
  return Ula{1 + rng.uniform_index(64), rng.uniform(0.05, 1.0)};
}

double random_angle(Rng& rng) { return rng.uniform(-kPi / 2.0, kPi / 2.0); }

CVec random_cvec(Rng& rng, std::size_t n) {
  CVec v(n);
  for (auto& c : v) c = rng.complex_normal();
  return v;
}

std::vector<channel::Path> random_paths(Rng& rng, std::size_t count) {
  std::vector<channel::Path> paths(count);
  for (channel::Path& p : paths) {
    p.aod_rad = random_angle(rng);
    p.aoa_rad = random_angle(rng);
    p.gain = rng.complex_normal(0.1);
    p.delay_s = rng.uniform(0.0, 500e-9);
    p.blockage_db = rng.bernoulli(0.3) ? rng.uniform(0.0, 20.0) : 0.0;
  }
  return paths;
}

bool bitwise_equal(const CVec& a, const CVec& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (mmr::testing::ulp_distance(a[i], b[i]) != 0) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// dsp kernel primitives vs naive loops
// ---------------------------------------------------------------------------

TEST_F(KernelDiff, PhasorRampMatchesScalarReference) {
  Rng base(0xA11CE5EEDull);
  UlpAudit audit("phasor_ramp");
  for (std::uint64_t c = 0; c < 300; ++c) {
    Rng rng = base.fork(c);
    const double step = rng.uniform(-20.0, 20.0);
    const std::size_t n = 1 + rng.uniform_index(96);
    CVec interleaved(n);
    dsp::phasor_ramp(step, n, interleaved.data());
    RVec re(n), im(n);
    dsp::phasor_ramp(step, n, re.data(), im.data());
    for (std::size_t i = 0; i < n; ++i) {
      const double ang = -step * static_cast<double>(i);
      const cplx ref(std::cos(ang), std::sin(ang));
      audit.compare(interleaved[i], ref, 1);
      audit.compare(cplx(re[i], im[i]), ref, 1);
      audit.compare(dsp::unit_phasor(step, i), ref, 1);
    }
  }
  audit.finish(10000);
}

TEST_F(KernelDiff, CdotMatchesSequentialAccumulation) {
  Rng base(0xC0D07ull);
  UlpAudit audit("cdot");
  for (std::uint64_t c = 0; c < 400; ++c) {
    Rng rng = base.fork(c);
    const std::size_t n = 1 + rng.uniform_index(257);
    const CVec a = random_cvec(rng, n);
    const CVec b = random_cvec(rng, n);
    cplx ref{};
    for (std::size_t i = 0; i < n; ++i) ref += a[i] * b[i];
    audit.compare(dsp::cdot(a.data(), b.data(), n), ref, 1);
  }
  audit.finish(400);
}

TEST_F(KernelDiff, DotPhasorRampMatchesMaterializedDot) {
  Rng base(0xD07FA50ull);
  UlpAudit audit("dot_phasor_ramp");
  for (std::uint64_t c = 0; c < 600; ++c) {
    Rng rng = base.fork(c);
    const std::size_t n = 1 + rng.uniform_index(128);
    const double step = rng.uniform(-20.0, 20.0);
    const CVec w = random_cvec(rng, n);
    cplx ref{};
    for (std::size_t i = 0; i < n; ++i) {
      const double ang = -step * static_cast<double>(i);
      ref += cplx(std::cos(ang), std::sin(ang)) * w[i];
    }
    audit.compare(dsp::dot_phasor_ramp(step, w.data(), n), ref, 1);
  }
  audit.finish(600);
}

TEST_F(KernelDiff, AxpyKernelsMatchNaiveLoops) {
  Rng base(0xA4B1ull);
  UlpAudit audit("axpy family");
  for (std::uint64_t c = 0; c < 300; ++c) {
    Rng rng = base.fork(c);
    const std::size_t n = 1 + rng.uniform_index(96);
    const cplx alpha = rng.complex_normal();
    const CVec x = random_cvec(rng, n);
    const CVec y0 = random_cvec(rng, n);

    CVec got = y0;
    dsp::axpy(alpha, x.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      audit.compare(got[i], y0[i] + alpha * x[i], 1);
    }

    const double step = rng.uniform(-20.0, 20.0);
    CVec got_ramp = y0;
    dsp::axpy_phasor_ramp(alpha, step, got_ramp.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const double ang = -step * static_cast<double>(i);
      const cplx ref = y0[i] + alpha * cplx(std::cos(ang), std::sin(ang));
      audit.compare(got_ramp[i], ref, 1);
    }
  }
  audit.finish(10000);
}

TEST_F(KernelDiff, DelayPhasorAccumulateMatchesScalarLoop) {
  Rng base(0xDE1A7ull);
  UlpAudit audit("accumulate_delay_phasors");
  for (std::uint64_t c = 0; c < 150; ++c) {
    Rng rng = base.fork(c);
    channel::WidebandSpec spec;
    spec.num_subcarriers = 16 + 16 * rng.uniform_index(4);
    spec.bandwidth_hz = rng.uniform(50e6, 800e6);
    RVec freqs(spec.num_subcarriers);
    for (std::size_t k = 0; k < freqs.size(); ++k) {
      freqs[k] = spec.freq_offset(k);
    }
    const cplx alpha = rng.complex_normal();
    const double delay = rng.uniform(0.0, 500e-9);
    const CVec dst0 = random_cvec(rng, freqs.size());

    CVec got = dst0;
    dsp::accumulate_delay_phasors(alpha, freqs.data(), delay, got.data(),
                                  got.size());
    for (std::size_t k = 0; k < freqs.size(); ++k) {
      const double ang = -2.0 * kPi * freqs[k] * delay;
      const cplx ref = dst0[k] + alpha * cplx(std::cos(ang), std::sin(ang));
      audit.compare(got[k], ref, 1);
    }
  }
  audit.finish(2400);
}

// ---------------------------------------------------------------------------
// Rewired production functions vs pre-PR scalar references
// ---------------------------------------------------------------------------

TEST_F(KernelDiff, SteeringVectorAndBatchMatchScalarReference) {
  Rng base(0x57EE41ull);
  UlpAudit audit("steering_vector[_batch]");
  for (std::uint64_t c = 0; c < 150; ++c) {
    Rng rng = base.fork(c);
    const Ula ula = random_ula(rng);
    const std::size_t num_angles = 1 + rng.uniform_index(16);
    RVec phis(num_angles);
    for (double& p : phis) p = random_angle(rng);

    const dsp::CplxBatch batch = array::steering_vector_batch(ula, phis);
    ASSERT_EQ(batch.rows(), num_angles);
    ASSERT_EQ(batch.cols(), ula.num_elements);
    for (std::size_t r = 0; r < num_angles; ++r) {
      const CVec ref = ref_steering(ula, phis[r]);
      const CVec prod = array::steering_vector(ula, phis[r]);
      const CVec row = batch.row(r);
      for (std::size_t n = 0; n < ula.num_elements; ++n) {
        audit.compare(prod[n], ref[n], 1);
        audit.compare(batch.at(r, n), ref[n], 1);
        // Batched and production paths run the identical expression:
        // they must agree exactly, not just within the ULP budget.
        audit.compare(row[n], prod[n], 0);
      }
    }
  }
  audit.finish(10000);
}

TEST_F(KernelDiff, WidebandSteeringBatchMatchesScalarReference) {
  Rng base(0x51D37ull);
  UlpAudit audit("steering_vector_wideband_batch");
  for (std::uint64_t c = 0; c < 120; ++c) {
    Rng rng = base.fork(c);
    const Ula ula = random_ula(rng);
    const double phi = random_angle(rng);
    const double carrier = rng.uniform(24e9, 40e9);
    const std::size_t num_offsets = 1 + rng.uniform_index(8);
    RVec offsets(num_offsets);
    for (double& f : offsets) f = rng.uniform(-200e6, 200e6);

    const dsp::CplxBatch batch =
        array::steering_vector_wideband_batch(ula, phi, carrier, offsets);
    for (std::size_t r = 0; r < num_offsets; ++r) {
      const CVec ref = ref_steering_wideband(ula, phi, carrier, offsets[r]);
      const CVec prod =
          array::steering_vector_wideband(ula, phi, carrier, offsets[r]);
      for (std::size_t n = 0; n < ula.num_elements; ++n) {
        audit.compare(prod[n], ref[n], 1);
        audit.compare(batch.at(r, n), prod[n], 0);
      }
    }
  }
  audit.finish(10000);
}

TEST_F(KernelDiff, ArrayFactorFusedMatchesMaterializedReference) {
  Rng base(0xAF5EEDull);
  UlpAudit audit("array_factor[_batch]");
  for (std::uint64_t c = 0; c < 250; ++c) {
    Rng rng = base.fork(c);
    const Ula ula = random_ula(rng);
    const CVec w = random_cvec(rng, ula.num_elements);
    const std::size_t num_angles = 1 + rng.uniform_index(8);
    RVec phis(num_angles);
    for (double& p : phis) p = random_angle(rng);

    const CVec batch = array::array_factor_batch(ula, w, phis);
    const RVec gains = array::power_gain_db_batch(ula, w, phis);
    for (std::size_t r = 0; r < num_angles; ++r) {
      const cplx ref = ref_array_factor(ula, w, phis[r]);
      const cplx prod = array::array_factor(ula, w, phis[r]);
      audit.compare(prod, ref, 1);
      audit.compare(batch[r], prod, 0);
      audit.compare(gains[r], array::power_gain_db(ula, w, phis[r]), 0);
    }
  }
  audit.finish(1000);
}

TEST_F(KernelDiff, SingleBeamWeightsBatchMatchesScalarReference) {
  Rng base(0x5B3Dull);
  UlpAudit audit("single_beam_weights[_batch]");
  for (std::uint64_t c = 0; c < 120; ++c) {
    Rng rng = base.fork(c);
    const Ula ula = random_ula(rng);
    const std::size_t num_angles = 1 + rng.uniform_index(6);
    RVec phis(num_angles);
    for (double& p : phis) p = random_angle(rng);

    const std::vector<CVec> batch =
        array::single_beam_weights_batch(ula, phis);
    for (std::size_t r = 0; r < num_angles; ++r) {
      const CVec ref = ref_single_beam_weights(ula, phis[r]);
      const CVec prod = array::single_beam_weights(ula, phis[r]);
      for (std::size_t n = 0; n < ula.num_elements; ++n) {
        audit.compare(prod[n], ref[n], 1);
        audit.compare(batch[r][n], prod[n], 0);
      }
    }
  }
  audit.finish(10000);
}

TEST_F(KernelDiff, PatternCutMatchesScalarReference) {
  Rng base(0x9A77E2Cull);
  UlpAudit angle_audit("pattern_cut angles");
  UlpAudit gain_audit("pattern_cut gains");
  for (std::uint64_t c = 0; c < 60; ++c) {
    Rng rng = base.fork(c);
    const Ula ula = random_ula(rng);
    const CVec w = random_cvec(rng, ula.num_elements);
    const double lo = rng.uniform(-kPi / 2.0, 0.0);
    const double hi = rng.uniform(lo + 0.01, kPi / 2.0);
    const std::size_t points = 2 + rng.uniform_index(63);

    const array::PatternCut got = array::pattern_cut(ula, w, lo, hi, points);
    const array::PatternCut ref = ref_pattern_cut(ula, w, lo, hi, points);
    // The angle grid is exact arithmetic on identical expressions.
    angle_audit.compare_vec(got.angle_rad, ref.angle_rad, 0);
    gain_audit.compare_vec(got.gain_db, ref.gain_db, 1);
  }
  angle_audit.finish(120);
  gain_audit.finish(120);
}

TEST_F(KernelDiff, EffectiveCsiMatchesPrePrReference) {
  Rng base(0xC51D1FFull);
  UlpAudit audit("effective_csi");
  for (std::uint64_t c = 0; c < 60; ++c) {
    Rng rng = base.fork(c);
    const Ula tx_ula = random_ula(rng);
    const CVec tx_w = ref_single_beam_weights(tx_ula, random_angle(rng));
    channel::WidebandSpec spec;
    spec.num_subcarriers = 16 + 16 * rng.uniform_index(4);
    const std::vector<channel::Path> paths =
        random_paths(rng, 1 + rng.uniform_index(4));

    channel::RxFrontend rx;
    if (rng.bernoulli(0.5)) {
      rx = channel::RxFrontend::omni(rng.uniform(0.5, 2.0));
    } else {
      const Ula rx_ula = random_ula(rng);
      rx = channel::RxFrontend::beam(
          rx_ula, ref_single_beam_weights(rx_ula, random_angle(rng)));
    }

    const CVec got = channel::effective_csi(paths, tx_ula, tx_w, spec, rx);
    const CVec ref = ref_effective_csi(paths, tx_ula, tx_w, spec, rx);
    audit.compare_vec(got, ref, 1);
  }
  audit.finish(960);
}

TEST_F(KernelDiff, PerAntennaChannelMatchesPrePrReference) {
  Rng base(0x9E2A27ull);
  UlpAudit audit("per_antenna_channel");
  for (std::uint64_t c = 0; c < 120; ++c) {
    Rng rng = base.fork(c);
    const Ula tx_ula = random_ula(rng);
    const std::vector<channel::Path> paths =
        random_paths(rng, 1 + rng.uniform_index(4));
    const channel::RxFrontend rx =
        channel::RxFrontend::omni(rng.uniform(0.5, 2.0));
    const CVec got = channel::per_antenna_channel(paths, tx_ula, rx);
    const CVec ref = ref_per_antenna_channel(paths, tx_ula, rx);
    audit.compare_vec(got, ref, 1);
  }
  audit.finish(120);
}

// ---------------------------------------------------------------------------
// PatternCache: bit-identity, stats, invalidation, thread safety
// ---------------------------------------------------------------------------

TEST(PatternCacheDiff, BeamWeightsBitIdenticalColdWarmAndDisabled) {
  array::PatternCache cache;
  Rng base(0xCAC8Eull);
  UlpAudit audit("cache beam_weights");
  for (std::uint64_t c = 0; c < 50; ++c) {
    Rng rng = base.fork(c);
    const Ula ula = random_ula(rng);
    const double phi = random_angle(rng);
    const CVec direct = array::single_beam_weights(ula, phi);

    const auto cold = cache.beam_weights(ula, phi);  // miss: computes
    const auto warm = cache.beam_weights(ula, phi);  // hit: shared object
    EXPECT_EQ(cold.get(), warm.get());
    audit.compare_vec(*cold, direct, 0);

    cache.set_enabled(false);
    const auto bypass = cache.beam_weights(ula, phi);
    cache.set_enabled(true);
    EXPECT_NE(bypass.get(), cold.get());
    audit.compare_vec(*bypass, direct, 0);
  }
  audit.finish(100);
}

TEST(PatternCacheDiff, CutBitIdenticalColdWarmAndDisabled) {
  array::PatternCache cache;
  Rng base(0xC07C17ull);
  UlpAudit audit("cache cut");
  for (std::uint64_t c = 0; c < 30; ++c) {
    Rng rng = base.fork(c);
    const Ula ula = random_ula(rng);
    const CVec w = random_cvec(rng, ula.num_elements);
    const double lo = rng.uniform(-kPi / 2.0, 0.0);
    const double hi = rng.uniform(lo + 0.01, kPi / 2.0);
    const std::size_t points = 2 + rng.uniform_index(31);
    const array::PatternCut direct =
        array::pattern_cut(ula, w, lo, hi, points);

    const auto cold = cache.cut(ula, w, lo, hi, points);
    const auto warm = cache.cut(ula, w, lo, hi, points);
    EXPECT_EQ(cold.get(), warm.get());
    audit.compare_vec(cold->angle_rad, direct.angle_rad, 0);
    audit.compare_vec(cold->gain_db, direct.gain_db, 0);

    cache.set_enabled(false);
    const auto bypass = cache.cut(ula, w, lo, hi, points);
    cache.set_enabled(true);
    EXPECT_NE(bypass.get(), cold.get());
    audit.compare_vec(bypass->gain_db, direct.gain_db, 0);
  }
  audit.finish(60);
}

TEST(PatternCacheDiff, StatsCountHitsAndMisses) {
  array::PatternCache cache;
  const Ula ula{16, 0.5};
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);

  (void)cache.beam_weights(ula, 0.1);
  (void)cache.beam_weights(ula, 0.2);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);

  (void)cache.beam_weights(ula, 0.1);
  (void)cache.beam_weights(ula, 0.1);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 2u);

  // Distinct keys must not alias: a sign flip or different element count
  // is a different entry, not a hit.
  (void)cache.beam_weights(ula, -0.1);
  (void)cache.beam_weights(Ula{8, 0.5}, 0.1);
  EXPECT_EQ(cache.stats().misses, 4u);

  cache.reset_stats();
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);

  // Disabled lookups touch neither counter.
  cache.set_enabled(false);
  (void)cache.beam_weights(ula, 0.1);
  cache.set_enabled(true);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(PatternCacheDiff, ClearKeepsOutstandingResultsValid) {
  array::PatternCache cache;
  const Ula ula{32, 0.5};
  const auto held = cache.beam_weights(ula, 0.25);
  const CVec snapshot = *held;

  cache.clear();
  // The outstanding shared_ptr still owns the (immutable) value.
  EXPECT_TRUE(bitwise_equal(*held, snapshot));

  // Post-clear lookup recomputes: fresh object, identical bits.
  const auto recomputed = cache.beam_weights(ula, 0.25);
  EXPECT_NE(recomputed.get(), held.get());
  EXPECT_TRUE(bitwise_equal(*recomputed, snapshot));
}

TEST(PatternCacheDiff, SharedAcrossThreadsBitIdenticalAndRaceClean) {
  // Many workers hammer one cache on a small key set while other tasks
  // clear() it mid-flight: every returned value must still be bitwise
  // equal to the scalar reference (and TSAN must see no races — this test
  // is the core of the `kernels` label's -DMMR_TSAN=ON run).
  array::PatternCache cache;
  const Ula ula{32, 0.5};
  constexpr std::size_t kAngles = 8;
  std::vector<double> phis(kAngles);
  std::vector<CVec> refs(kAngles);
  for (std::size_t i = 0; i < kAngles; ++i) {
    phis[i] = -0.7 + 0.2 * static_cast<double>(i);
    refs[i] = array::single_beam_weights(ula, phis[i]);
  }
  const CVec probe_w = refs[0];
  const array::PatternCut cut_ref =
      array::pattern_cut(ula, probe_w, -1.0, 1.0, 33);

  std::atomic<std::size_t> mismatches{0};
  ThreadPool pool(4);
  pool.parallel_for(96, [&](std::size_t task) {
    if (task % 16 == 15) cache.clear();
    for (std::size_t rep = 0; rep < 8; ++rep) {
      const std::size_t i = (task + rep) % kAngles;
      const auto w = cache.beam_weights(ula, phis[i]);
      if (!bitwise_equal(*w, refs[i])) mismatches.fetch_add(1);
    }
    const auto cut = cache.cut(ula, probe_w, -1.0, 1.0, 33);
    if (cut->gain_db != cut_ref.gain_db ||
        cut->angle_rad != cut_ref.angle_rad) {
      mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
  const auto st = cache.stats();
  EXPECT_GT(st.hits, 0u);
  EXPECT_GT(st.misses, 0u);
}

TEST(PatternCacheDiff, RewiredCallersBitStableAcrossCacheStates) {
  // synthesize_multibeam and Codebook go through the global instance;
  // their output must not depend on cache state (cold / warm / disabled).
  array::PatternCache& cache = array::PatternCache::instance();
  const Ula ula{16, 0.5};
  const std::vector<core::BeamComponent> comps = {
      {-0.3, cplx{1.0, 0.0}}, {0.4, cplx{0.6, -0.2}}};

  cache.clear();
  const CVec cold = core::synthesize_multibeam(ula, comps).weights;
  const CVec warm = core::synthesize_multibeam(ula, comps).weights;
  cache.set_enabled(false);
  const CVec bypass = core::synthesize_multibeam(ula, comps).weights;
  cache.set_enabled(true);
  EXPECT_TRUE(bitwise_equal(cold, warm));
  EXPECT_TRUE(bitwise_equal(cold, bypass));

  cache.clear();
  const array::Codebook cb_cold(ula, -1.0, 1.0, 9);
  const array::Codebook cb_warm(ula, -1.0, 1.0, 9);
  for (std::size_t i = 0; i < cb_cold.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(cb_cold.weights(i), cb_warm.weights(i)));
    EXPECT_TRUE(bitwise_equal(
        cb_cold.weights(i),
        array::single_beam_weights(ula, cb_cold.angle(i))));
  }
}

// ---------------------------------------------------------------------------
// Backend sweep: every compiled+executable backend vs the scalar
// reference, under the backend's DECLARED tolerance (dsp::tolerances).
// One parameterized instance per backend so a failure names the backend
// in the test id; compiled-but-unexecutable backends (e.g. avx2 binary
// on a pre-AVX2 CPU) skip.
// ---------------------------------------------------------------------------

class KernelBackendSweep : public ::testing::TestWithParam<dsp::Backend> {
 protected:
  void SetUp() override {
    if (!dsp::backend_supported(GetParam())) {
      GTEST_SKIP() << "backend " << dsp::backend_name(GetParam())
                   << " not executable on this CPU";
    }
    tol_ = dsp::tolerances(GetParam());
  }

  // Runs `fn` with the swept backend active; references are computed
  // with an inner scalar override so both sides come from the same
  // binary.
  template <typename Fn>
  void with_backend(Fn&& fn) {
    dsp::ScopedBackend scoped(GetParam());
    ASSERT_TRUE(scoped.ok());
    fn();
  }

  dsp::KernelTolerances tol_;
};

TEST_P(KernelBackendSweep, PhasorRampWithinDeclaredTolerance) {
  Rng base(0xB4C4E2ADull);
  UlpAudit audit(std::string("phasor_ramp/") +
                 std::string(dsp::backend_name(GetParam())));
  for (std::uint64_t c = 0; c < 300; ++c) {
    Rng rng = base.fork(c);
    const double step = rng.uniform(-20.0, 20.0);
    const std::size_t n = 1 + rng.uniform_index(192);
    CVec ref_i(n);
    RVec ref_re(n), ref_im(n);
    {
      dsp::ScopedBackend scalar(dsp::Backend::kScalar);
      ASSERT_TRUE(scalar.ok());
      dsp::phasor_ramp(step, n, ref_i.data());
      dsp::phasor_ramp(step, n, ref_re.data(), ref_im.data());
    }
    with_backend([&] {
      CVec got_i(n);
      RVec got_re(n), got_im(n);
      dsp::phasor_ramp(step, n, got_i.data());
      dsp::phasor_ramp(step, n, got_re.data(), got_im.data());
      for (std::size_t i = 0; i < n; ++i) {
        // Unit phasors: natural scale 1.
        audit.compare_tol(got_i[i], ref_i[i], tol_.phasor_ramp, 1.0);
        audit.compare_tol(cplx(got_re[i], got_im[i]),
                          cplx(ref_re[i], ref_im[i]), tol_.phasor_ramp, 1.0);
      }
    });
  }
  audit.finish(10000);
}

TEST_P(KernelBackendSweep, DotKernelsWithinDeclaredTolerance) {
  Rng base(0xB4C4D07ull);
  UlpAudit audit(std::string("cdot+dot_phasor_ramp/") +
                 std::string(dsp::backend_name(GetParam())));
  for (std::uint64_t c = 0; c < 5000; ++c) {
    Rng rng = base.fork(c);
    const std::size_t n = 1 + rng.uniform_index(257);
    const double step = rng.uniform(-20.0, 20.0);
    const CVec a = random_cvec(rng, n);
    const CVec b = random_cvec(rng, n);
    double dot_scale = 0.0;
    double ramp_scale = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dot_scale += std::abs(a[i]) * std::abs(b[i]);
      ramp_scale += std::abs(a[i]);  // |phasor| == 1
    }
    cplx ref_dot;
    cplx ref_ramp;
    {
      dsp::ScopedBackend scalar(dsp::Backend::kScalar);
      ASSERT_TRUE(scalar.ok());
      ref_dot = dsp::cdot(a.data(), b.data(), n);
      ref_ramp = dsp::dot_phasor_ramp(step, a.data(), n);
    }
    with_backend([&] {
      audit.compare_tol(dsp::cdot(a.data(), b.data(), n), ref_dot, tol_.dot,
                        dot_scale);
      audit.compare_tol(dsp::dot_phasor_ramp(step, a.data(), n), ref_ramp,
                        tol_.dot, ramp_scale);
    });
  }
  audit.finish(10000);
}

TEST_P(KernelBackendSweep, AxpyKernelsWithinDeclaredTolerance) {
  Rng base(0xB4C4A4B1ull);
  UlpAudit audit(std::string("axpy family/") +
                 std::string(dsp::backend_name(GetParam())));
  for (std::uint64_t c = 0; c < 400; ++c) {
    Rng rng = base.fork(c);
    const std::size_t n = 1 + rng.uniform_index(128);
    const cplx alpha = rng.complex_normal();
    const double step = rng.uniform(-20.0, 20.0);
    const CVec x = random_cvec(rng, n);
    const CVec y0 = random_cvec(rng, n);
    CVec ref_axpy = y0;
    CVec ref_ramp = y0;
    {
      dsp::ScopedBackend scalar(dsp::Backend::kScalar);
      ASSERT_TRUE(scalar.ok());
      dsp::axpy(alpha, x.data(), ref_axpy.data(), n);
      dsp::axpy_phasor_ramp(alpha, step, ref_ramp.data(), n);
    }
    with_backend([&] {
      CVec got_axpy = y0;
      CVec got_ramp = y0;
      dsp::axpy(alpha, x.data(), got_axpy.data(), n);
      dsp::axpy_phasor_ramp(alpha, step, got_ramp.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        audit.compare_tol(got_axpy[i], ref_axpy[i], tol_.axpy,
                          std::abs(y0[i]) + std::abs(alpha) * std::abs(x[i]));
        audit.compare_tol(got_ramp[i], ref_ramp[i], tol_.axpy,
                          std::abs(y0[i]) + std::abs(alpha));
      }
    });
  }
  audit.finish(10000);
}

TEST_P(KernelBackendSweep, DelayPhasorsWithinDeclaredTolerance) {
  Rng base(0xB4C4DE1A7ull);
  UlpAudit audit(std::string("accumulate_delay_phasors/") +
                 std::string(dsp::backend_name(GetParam())));
  for (std::uint64_t c = 0; c < 300; ++c) {
    Rng rng = base.fork(c);
    const std::size_t n = 8 + rng.uniform_index(121);
    RVec freqs(n);
    if (rng.bernoulli(0.7)) {
      // Affine grid (the production shape; exercises the fast path).
      const double f0 = rng.uniform(-400e6, 0.0);
      const double df = rng.uniform(1e5, 1e7);
      for (std::size_t k = 0; k < n; ++k) {
        freqs[k] = f0 + static_cast<double>(k) * df;
      }
    } else {
      // Jittered grid: must take the scalar fallback and still pass.
      for (std::size_t k = 0; k < n; ++k) {
        freqs[k] = rng.uniform(-400e6, 400e6);
      }
    }
    const cplx alpha = rng.complex_normal();
    const double delay = rng.uniform(0.0, 500e-9);
    const CVec dst0 = random_cvec(rng, n);
    CVec ref = dst0;
    {
      dsp::ScopedBackend scalar(dsp::Backend::kScalar);
      ASSERT_TRUE(scalar.ok());
      dsp::accumulate_delay_phasors(alpha, freqs.data(), delay, ref.data(), n);
    }
    with_backend([&] {
      CVec got = dst0;
      dsp::accumulate_delay_phasors(alpha, freqs.data(), delay, got.data(), n);
      for (std::size_t k = 0; k < n; ++k) {
        audit.compare_tol(got[k], ref[k], tol_.delay_phasors,
                          std::abs(dst0[k]) + std::abs(alpha));
      }
    });
  }
  audit.finish(10000);
}

TEST_P(KernelBackendSweep, BatchedSteeringEvaluatorsWithinTolerance) {
  // The PatternCache batch evaluators reach the backends through the
  // dsp kernels; sweep them end-to-end so a backend bug that only shows
  // through the SoA batch layout is caught here, not in a golden run.
  Rng base(0xB4C457EEull);
  UlpAudit audit(std::string("steering/array-factor batch/") +
                 std::string(dsp::backend_name(GetParam())));
  for (std::uint64_t c = 0; c < 200; ++c) {
    Rng rng = base.fork(c);
    const Ula ula = random_ula(rng);
    const CVec w = random_cvec(rng, ula.num_elements);
    const std::size_t num_angles = 1 + rng.uniform_index(12);
    RVec phis(num_angles);
    for (double& p : phis) p = random_angle(rng);

    std::vector<CVec> ref_rows(num_angles);
    CVec ref_af;
    {
      dsp::ScopedBackend scalar(dsp::Backend::kScalar);
      ASSERT_TRUE(scalar.ok());
      const dsp::CplxBatch ref_batch = array::steering_vector_batch(ula, phis);
      for (std::size_t r = 0; r < num_angles; ++r) {
        ref_rows[r] = ref_batch.row(r);
      }
      ref_af = array::array_factor_batch(ula, w, phis);
    }
    double w_scale = 0.0;
    for (const cplx& v : w) w_scale += std::abs(v);
    with_backend([&] {
      const dsp::CplxBatch batch = array::steering_vector_batch(ula, phis);
      const CVec af = array::array_factor_batch(ula, w, phis);
      for (std::size_t r = 0; r < num_angles; ++r) {
        for (std::size_t e = 0; e < ula.num_elements; ++e) {
          audit.compare_tol(batch.at(r, e), ref_rows[r][e], tol_.phasor_ramp,
                            1.0);
        }
        audit.compare_tol(af[r], ref_af[r], tol_.dot, w_scale);
      }
    });
  }
  audit.finish(10000);
}

INSTANTIATE_TEST_SUITE_P(
    AllCompiled, KernelBackendSweep,
    ::testing::ValuesIn(dsp::compiled_backends()),
    [](const ::testing::TestParamInfo<dsp::Backend>& info) {
      return std::string(dsp::backend_name(info.param));
    });

}  // namespace
}  // namespace mmr
