#include "dsp/fft.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.h"
#include "common/rng.h"

namespace mmr::dsp {
namespace {

// Reference O(N^2) DFT.
CVec naive_dft(const CVec& x, bool inverse) {
  const std::size_t n = x.size();
  CVec out(n, cplx{});
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * kPi * static_cast<double>(k * j) /
                         static_cast<double>(n);
      out[k] += x[j] * cplx(std::cos(ang), std::sin(ang));
    }
  }
  if (inverse) {
    for (auto& c : out) c /= static_cast<double>(n);
  }
  return out;
}

double max_err(const CVec& a, const CVec& b) {
  double e = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) e = std::max(e, std::abs(a[i] - b[i]));
  return e;
}

TEST(Fft, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(96));
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  CVec x(8, cplx{});
  x[0] = cplx{1.0, 0.0};
  const CVec y = fft(x);
  for (const cplx& c : y) EXPECT_NEAR(std::abs(c - cplx{1.0, 0.0}), 0.0, 1e-12);
}

TEST(Fft, DcGivesImpulse) {
  CVec x(16, cplx{1.0, 0.0});
  const CVec y = fft(x);
  EXPECT_NEAR(std::abs(y[0]), 16.0, 1e-10);
  for (std::size_t k = 1; k < y.size(); ++k) EXPECT_NEAR(std::abs(y[k]), 0.0, 1e-10);
}

TEST(Fft, SingleToneLandsOnBin) {
  const std::size_t n = 32;
  const std::size_t bin = 5;
  CVec x(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double ang = 2.0 * kPi * static_cast<double>(bin * j) / n;
    x[j] = cplx(std::cos(ang), std::sin(ang));
  }
  const CVec y = fft(x);
  EXPECT_NEAR(std::abs(y[bin]), static_cast<double>(n), 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != bin) EXPECT_NEAR(std::abs(y[k]), 0.0, 1e-9);
  }
}

TEST(Fft, RoundTripPow2) {
  Rng rng(5);
  CVec x(64);
  for (auto& c : x) c = rng.complex_normal();
  EXPECT_LT(max_err(ifft(fft(x)), x), 1e-10);
}

TEST(Fft, ParsevalPow2) {
  Rng rng(6);
  CVec x(128);
  double time_energy = 0.0;
  for (auto& c : x) {
    c = rng.complex_normal();
    time_energy += std::norm(c);
  }
  double freq_energy = 0.0;
  for (const cplx& c : fft(x)) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / 128.0, time_energy, 1e-8);
}

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, MatchesNaiveDft) {
  Rng rng(GetParam());
  CVec x(GetParam());
  for (auto& c : x) c = rng.complex_normal();
  EXPECT_LT(max_err(fft(x), naive_dft(x, false)), 1e-8);
  EXPECT_LT(max_err(ifft(x), naive_dft(x, true)), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeTest,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 12, 16, 17, 30,
                                           33, 64, 100));

TEST(Fft, CircshiftBasic) {
  CVec x{{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  const CVec y = circshift(x, 1);
  EXPECT_EQ(y[1].real(), 1.0);
  EXPECT_EQ(y[0].real(), 4.0);
  const CVec z = circshift(x, -1);
  EXPECT_EQ(z[0].real(), 2.0);
  EXPECT_EQ(z[3].real(), 1.0);
}

TEST(Fft, CircshiftFullPeriodIsIdentity) {
  CVec x{{1, 0}, {2, 0}, {3, 0}};
  const CVec y = circshift(x, 3);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Fft, FftshiftMovesDcToCenter) {
  CVec x(8, cplx{});
  x[0] = cplx{1.0, 0.0};
  const CVec y = fftshift(x);
  EXPECT_EQ(y[4].real(), 1.0);
}

}  // namespace
}  // namespace mmr::dsp
