#include "dsp/sinc.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mmr::dsp {
namespace {

TEST(Sinc, KnownValues) {
  EXPECT_NEAR(sinc(0.0), 1.0, 1e-15);
  EXPECT_NEAR(sinc(1.0), 0.0, 1e-15);
  EXPECT_NEAR(sinc(2.0), 0.0, 1e-15);
  EXPECT_NEAR(sinc(0.5), 2.0 / 3.14159265358979, 1e-9);
}

TEST(Sinc, Symmetry) {
  for (double x : {0.1, 0.5, 1.3, 2.7}) EXPECT_NEAR(sinc(x), sinc(-x), 1e-15);
}

TEST(SampledSinc, PulseAtIntegerDelayIsKronecker) {
  // tau = 3 Ts with B = 1/Ts: taps are sinc(n - 3) = delta[n-3].
  const double ts = 2.5e-9;
  const double bw = 1.0 / ts;
  const RVec taps = sampled_sinc(8, ts, bw, 3.0 * ts);
  for (std::size_t n = 0; n < 8; ++n) {
    EXPECT_NEAR(taps[n], n == 3 ? 1.0 : 0.0, 1e-12);
  }
}

TEST(SampledSinc, FractionalDelaySpreadsEnergy) {
  const double ts = 2.5e-9;
  const double bw = 1.0 / ts;
  const RVec taps = sampled_sinc(16, ts, bw, 3.5 * ts);
  // Peak split between taps 3 and 4.
  EXPECT_NEAR(taps[3], taps[4], 1e-12);
  EXPECT_GT(taps[3], 0.6);
}

TEST(SincInterpolate, RecoversBandlimitedSignal) {
  // Build taps from a single fractional-delay pulse and interpolate back
  // at that delay: must return the pulse amplitude.
  const double ts = 2.5e-9;
  const double bw = 1.0 / ts;
  const double tau = 5.3 * ts;
  const cplx amp{0.7, -0.2};
  CVec taps(64);
  for (std::size_t n = 0; n < taps.size(); ++n) {
    taps[n] = amp * sampled_sinc_tap(n, ts, bw, tau);
  }
  const cplx rec = sinc_interpolate(taps, ts, bw, tau);
  EXPECT_NEAR(std::abs(rec - amp), 0.0, 2e-2);
}

TEST(SincInterpolate, AtSampleInstantsReturnsTaps) {
  const double ts = 1.0;
  const double bw = 1.0;
  CVec taps{{1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}};
  EXPECT_NEAR(std::abs(sinc_interpolate(taps, ts, bw, 1.0) - cplx(2.0, 0.0)),
              0.0, 1e-12);
}

TEST(SampledSinc, RejectsBadArgs) {
  EXPECT_THROW(sampled_sinc_tap(0, 0.0, 1.0, 0.0), std::logic_error);
  EXPECT_THROW(sampled_sinc_tap(0, 1.0, 0.0, 0.0), std::logic_error);
}

}  // namespace
}  // namespace mmr::dsp
