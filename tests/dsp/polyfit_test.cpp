#include "dsp/polyfit.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mmr::dsp {
namespace {

TEST(Polyval, HornerEvaluation) {
  // 2 + 3x + x^2 at x = 2 -> 12.
  const RVec c{2.0, 3.0, 1.0};
  EXPECT_NEAR(polyval(c, 2.0), 12.0, 1e-12);
  EXPECT_NEAR(polyval(c, 0.0), 2.0, 1e-12);
}

TEST(Polyval, EmptyIsZero) { EXPECT_EQ(polyval({}, 5.0), 0.0); }

class PolyfitExactTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PolyfitExactTest, RecoversExactPolynomial) {
  const std::size_t degree = GetParam();
  RVec coeffs(degree + 1);
  for (std::size_t i = 0; i <= degree; ++i) {
    coeffs[i] = 1.0 + static_cast<double>(i) * 0.5;
  }
  RVec xs, ys;
  for (int i = 0; i < 20; ++i) {
    const double x = -1.0 + 0.1 * i;
    xs.push_back(x);
    ys.push_back(polyval(coeffs, x));
  }
  const RVec fit = polyfit(xs, ys, degree);
  ASSERT_EQ(fit.size(), degree + 1);
  for (std::size_t i = 0; i <= degree; ++i) {
    EXPECT_NEAR(fit[i], coeffs[i], 1e-6) << "coefficient " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolyfitExactTest,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(Polyfit, SmoothsNoise) {
  // Quadratic + noise: fitted curve should be much closer to the truth
  // than the raw samples are.
  Rng rng(3);
  const RVec truth{1.0, -2.0, 0.5};
  RVec xs, ys;
  double raw_err = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i;
    const double clean = polyval(truth, x);
    const double noisy = clean + rng.normal(0.0, 0.5);
    xs.push_back(x);
    ys.push_back(noisy);
    raw_err += std::abs(noisy - clean);
  }
  raw_err /= 50.0;
  const RVec fit = polyfit(xs, ys, 2);
  double fit_err = 0.0;
  for (int i = 0; i < 50; ++i) {
    fit_err += std::abs(polyval(fit, xs[i]) - polyval(truth, xs[i]));
  }
  fit_err /= 50.0;
  EXPECT_LT(fit_err, raw_err / 2.0);
}

TEST(Polyfit, RejectsUnderdetermined) {
  const RVec xs{0.0, 1.0};
  const RVec ys{1.0, 2.0};
  EXPECT_THROW(polyfit(xs, ys, 2), std::logic_error);
}

TEST(Polyfit, RejectsMismatchedSizes) {
  const RVec xs{0.0, 1.0, 2.0};
  const RVec ys{1.0, 2.0};
  EXPECT_THROW(polyfit(xs, ys, 1), std::logic_error);
}

}  // namespace
}  // namespace mmr::dsp
