// Backend selection/dispatch contract tests plus the kernel edge and
// aliasing contracts of dsp/kernels.h, exercised on EVERY compiled
// backend:
//   * selection: parse_backend round-trips, auto maps to best_backend,
//     set_backend refuses unsupported backends, ScopedBackend restores,
//   * edges: n == 0 is a no-op / zero reduction, n == 1 is exact libm,
//   * aliasing: axpy with x == y (full overlap) is well-defined,
//   * CplxBatch: length-0 and length-1 batches, bounds-checked row().
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "dsp/backend.h"
#include "dsp/kernels.h"
#include "tests/common/diff_harness.h"

namespace mmr {
namespace {

TEST(BackendSelection, ScalarAndPortableAreAlwaysCompiled) {
  const auto backends = dsp::compiled_backends();
  EXPECT_NE(std::find(backends.begin(), backends.end(), dsp::Backend::kScalar),
            backends.end());
  EXPECT_NE(std::find(backends.begin(), backends.end(),
                      dsp::Backend::kPortable),
            backends.end());
}

TEST(BackendSelection, ParseRoundTripsEveryName) {
  for (dsp::Backend b : dsp::compiled_backends()) {
    const auto parsed = dsp::parse_backend(dsp::backend_name(b));
    ASSERT_TRUE(parsed.has_value()) << dsp::backend_name(b);
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(dsp::parse_backend("sse9").has_value());
  EXPECT_FALSE(dsp::parse_backend("").has_value());
  EXPECT_FALSE(dsp::parse_backend("AVX2").has_value()) << "names are lowercase";
}

TEST(BackendSelection, AutoParsesToBestBackend) {
  const auto parsed = dsp::parse_backend("auto");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, dsp::best_backend());
  EXPECT_TRUE(dsp::backend_supported(dsp::best_backend()));
}

TEST(BackendSelection, SetBackendRefusesUnsupported) {
  const dsp::Backend before = dsp::active_backend();
  for (dsp::Backend b :
       {dsp::Backend::kScalar, dsp::Backend::kPortable, dsp::Backend::kAvx2,
        dsp::Backend::kNeon}) {
    if (dsp::backend_supported(b)) continue;
    EXPECT_FALSE(dsp::set_backend(b)) << dsp::backend_name(b);
    EXPECT_EQ(dsp::active_backend(), before)
        << "a refused set_backend must not change the active backend";
  }
}

TEST(BackendSelection, ScopedBackendRestoresOnExit) {
  const dsp::Backend before = dsp::active_backend();
  {
    dsp::ScopedBackend scoped(dsp::Backend::kPortable);
    ASSERT_TRUE(scoped.ok());
    EXPECT_EQ(dsp::active_backend(), dsp::Backend::kPortable);
  }
  EXPECT_EQ(dsp::active_backend(), before);
}

class KernelEdges : public ::testing::TestWithParam<dsp::Backend> {
 protected:
  void SetUp() override {
    if (!dsp::backend_supported(GetParam())) {
      GTEST_SKIP() << dsp::backend_name(GetParam())
                   << " not executable on this machine";
    }
    scoped_.emplace(GetParam());
    ASSERT_TRUE(scoped_->ok());
  }

 private:
  std::optional<dsp::ScopedBackend> scoped_;
};

TEST_P(KernelEdges, LengthZeroIsANoOp) {
  // Guard values around a zero-length call must be untouched and
  // reductions must return exactly 0+0j.
  cplx guard(42.0, -7.0);
  dsp::phasor_ramp(1.3, 0, &guard);
  EXPECT_EQ(guard, cplx(42.0, -7.0));
  double gre = 1.0, gim = 2.0;
  dsp::phasor_ramp(1.3, 0, &gre, &gim);
  EXPECT_EQ(gre, 1.0);
  EXPECT_EQ(gim, 2.0);
  EXPECT_EQ(dsp::cdot(&guard, &guard, 0), cplx(0.0, 0.0));
  EXPECT_EQ(dsp::dot_phasor_ramp(0.7, &guard, 0), cplx(0.0, 0.0));
  dsp::axpy(cplx(3.0, 1.0), &guard, &guard, 0);
  EXPECT_EQ(guard, cplx(42.0, -7.0));
  dsp::axpy_phasor_ramp(cplx(3.0, 1.0), 0.7, &guard, 0);
  EXPECT_EQ(guard, cplx(42.0, -7.0));
  const double freq = 1e6;
  dsp::accumulate_delay_phasors(cplx(3.0, 1.0), &freq, 1e-9, &guard, 0);
  EXPECT_EQ(guard, cplx(42.0, -7.0));
}

TEST_P(KernelEdges, LengthOneIsExactLibm) {
  // Element 0 of any ramp is exp(0) = 1 exactly; a 1-element dot is one
  // complex multiply with no accumulation to reassociate, so every
  // backend must match the scalar formula bit-for-bit.
  for (double step : {0.0, 1.7, -3.9, 25.0}) {
    cplx one;
    dsp::phasor_ramp(step, 1, &one);
    EXPECT_EQ(one, cplx(1.0, 0.0)) << "step " << step;
    const cplx w(1.25, -0.5);
    EXPECT_EQ(dsp::dot_phasor_ramp(step, &w, 1), w) << "step " << step;
  }
  const cplx a(1.5, -2.0), b(-0.25, 3.0);
  const cplx expect(a.real() * b.real() - a.imag() * b.imag(),
                    a.real() * b.imag() + a.imag() * b.real());
  const cplx got = dsp::cdot(&a, &b, 1);
  EXPECT_EQ(got.real(), expect.real());
  EXPECT_EQ(got.imag(), expect.imag());
}

TEST_P(KernelEdges, AxpyAllowsFullyAliasedInputOutput) {
  // Contract: x == y is allowed (y[i] += alpha*y[i]); verify against the
  // unaliased computation within the backend's declared axpy tolerance.
  const dsp::Tolerance tol = dsp::tolerances(GetParam()).axpy;
  mmr::testing::UlpAudit audit(std::string("aliased axpy on ") +
                               std::string(dsp::backend_name(GetParam())));
  const Rng base(424242);
  for (std::size_t i = 0; i < 300; ++i) {
    Rng rng = base.fork(i);
    const std::size_t n = rng.uniform_index(64);
    const cplx alpha(rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0));
    CVec y(n);
    for (cplx& c : y) c = cplx(rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0));
    const CVec original = y;
    CVec unaliased = y;
    dsp::axpy(alpha, original.data(), unaliased.data(), n);
    dsp::axpy(alpha, y.data(), y.data(), n);  // x == y
    for (std::size_t k = 0; k < n; ++k) {
      const double scale =
          std::abs(original[k]) * (1.0 + std::abs(alpha)) + 1e-30;
      audit.compare_tol(y[k], unaliased[k], tol, scale);
    }
  }
  audit.finish(200);
}

INSTANTIATE_TEST_SUITE_P(
    AllCompiled, KernelEdges,
    ::testing::ValuesIn(dsp::compiled_backends()),
    [](const ::testing::TestParamInfo<dsp::Backend>& info) {
      return std::string(dsp::backend_name(info.param));
    });

TEST(CplxBatchEdges, LengthZeroBatches) {
  const dsp::CplxBatch empty;
  EXPECT_EQ(empty.rows(), 0u);
  EXPECT_EQ(empty.cols(), 0u);

  dsp::CplxBatch no_rows(0, 8);
  EXPECT_EQ(no_rows.rows(), 0u);

  dsp::CplxBatch no_cols(3, 0);
  EXPECT_EQ(no_cols.rows(), 3u);
  const CVec row = no_cols.row(1);
  EXPECT_TRUE(row.empty());
}

TEST(CplxBatchEdges, LengthOneBatchRoundTrips) {
  dsp::CplxBatch batch(1, 1);
  batch.row_re(0)[0] = 2.5;
  batch.row_im(0)[0] = -1.25;
  EXPECT_EQ(batch.at(0, 0), cplx(2.5, -1.25));
  const CVec row = batch.row(0);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0], cplx(2.5, -1.25));
}

TEST(CplxBatchEdges, RowIsBoundsChecked) {
  dsp::CplxBatch batch(2, 4);
  EXPECT_THROW((void)batch.row(2), std::logic_error);
  const dsp::CplxBatch empty;
  EXPECT_THROW((void)empty.row(0), std::logic_error);
}

}  // namespace
}  // namespace mmr
