#include "dsp/smoothing.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mmr::dsp {
namespace {

TEST(Ewma, FirstSamplePrimes) {
  Ewma f(0.9);
  EXPECT_FALSE(f.primed());
  EXPECT_EQ(f.update(5.0), 5.0);
  EXPECT_TRUE(f.primed());
  EXPECT_EQ(f.value(), 5.0);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma f(0.8);
  f.update(0.0);
  double y = 0.0;
  for (int i = 0; i < 200; ++i) y = f.update(10.0);
  EXPECT_NEAR(y, 10.0, 1e-6);
}

TEST(Ewma, UpdateRule) {
  Ewma f(0.5);
  f.update(0.0);
  EXPECT_NEAR(f.update(4.0), 2.0, 1e-12);
  EXPECT_NEAR(f.update(2.0), 2.0, 1e-12);
}

TEST(Ewma, ZeroRhoTracksInput) {
  Ewma f(0.0);
  f.update(1.0);
  EXPECT_EQ(f.update(7.0), 7.0);
}

TEST(Ewma, ResetClearsState) {
  Ewma f(0.5);
  f.update(3.0);
  f.reset();
  EXPECT_FALSE(f.primed());
  EXPECT_EQ(f.update(9.0), 9.0);
}

TEST(Ewma, ValueBeforePrimingThrows) {
  Ewma f(0.5);
  EXPECT_THROW(f.value(), std::logic_error);
}

TEST(Ewma, RejectsBadRho) {
  EXPECT_THROW(Ewma(1.0), std::logic_error);
  EXPECT_THROW(Ewma(-0.1), std::logic_error);
}

TEST(EwmaFilter, ReducesNoiseVariance) {
  Rng rng(4);
  RVec x(2000);
  for (auto& v : x) v = rng.normal(0.0, 1.0);
  const RVec y = ewma_filter(x, 0.9);
  double var_x = 0.0, var_y = 0.0;
  for (std::size_t i = 500; i < x.size(); ++i) {
    var_x += x[i] * x[i];
    var_y += y[i] * y[i];
  }
  // Steady-state variance ratio is (1-rho)/(1+rho) = 1/19.
  EXPECT_LT(var_y, var_x / 8.0);
}

TEST(EwmaFilter, PreservesLength) {
  const RVec x{1.0, 2.0, 3.0};
  EXPECT_EQ(ewma_filter(x, 0.5).size(), 3u);
}

}  // namespace
}  // namespace mmr::dsp
