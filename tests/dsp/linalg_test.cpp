#include "dsp/linalg.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"

namespace mmr::dsp {
namespace {

TEST(CMatrix, IdentityAndIndexing) {
  const CMatrix eye = CMatrix::identity(3);
  EXPECT_EQ(eye(0, 0), (cplx{1.0, 0.0}));
  EXPECT_EQ(eye(0, 1), (cplx{0.0, 0.0}));
}

TEST(CMatrix, OutOfRangeThrows) {
  CMatrix m(2, 2);
  EXPECT_THROW(m(2, 0), std::logic_error);
  EXPECT_THROW(m(0, 2), std::logic_error);
}

TEST(CMatrix, HermitianTranspose) {
  CMatrix m(1, 2);
  m(0, 0) = cplx{1.0, 2.0};
  m(0, 1) = cplx{3.0, -4.0};
  const CMatrix h = m.hermitian();
  EXPECT_EQ(h.rows(), 2u);
  EXPECT_EQ(h.cols(), 1u);
  EXPECT_EQ(h(0, 0), (cplx{1.0, -2.0}));
  EXPECT_EQ(h(1, 0), (cplx{3.0, 4.0}));
}

TEST(CMatrix, MatrixVectorProduct) {
  CMatrix m(2, 2);
  m(0, 0) = cplx{1.0, 0.0};
  m(0, 1) = cplx{0.0, 1.0};
  m(1, 0) = cplx{2.0, 0.0};
  m(1, 1) = cplx{0.0, 0.0};
  const CVec x{{1.0, 0.0}, {1.0, 0.0}};
  const CVec y = m * x;
  EXPECT_NEAR(std::abs(y[0] - cplx(1.0, 1.0)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(y[1] - cplx(2.0, 0.0)), 0.0, 1e-14);
}

TEST(CMatrix, MatrixMatrixIdentity) {
  Rng rng(3);
  CMatrix m(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) m(i, j) = rng.complex_normal();
  const CMatrix p = m * CMatrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(std::abs(p(i, j) - m(i, j)), 0.0, 1e-14);
}

TEST(Cholesky, SolvesKnownSystem) {
  // A = [[4, 2], [2, 3]] (real SPD), b = [8, 7] -> x = [1.1, 1.6].
  CMatrix a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 3.0;
  const CVec b{{8.0, 0.0}, {7.0, 0.0}};
  const CVec x = cholesky_solve(a, b);
  EXPECT_NEAR(x[0].real(), 1.25, 1e-12);
  EXPECT_NEAR(x[1].real(), 1.5, 1e-12);
}

TEST(Cholesky, ComplexHermitianSystem) {
  // Build A = M^H M + I (guaranteed HPD), check A x = b residual.
  Rng rng(7);
  CMatrix m(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) m(i, j) = rng.complex_normal();
  CMatrix a = m.hermitian() * m;
  for (std::size_t i = 0; i < 4; ++i) a(i, i) += 1.0;
  CVec b(4);
  for (auto& c : b) c = rng.complex_normal();
  const CVec x = cholesky_solve(a, b);
  const CVec ax = a * x;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(ax[i] - b[i]), 0.0, 1e-10);
  }
}

TEST(Cholesky, RejectsIndefinite) {
  CMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3, -1
  const CVec b{{1.0, 0.0}, {1.0, 0.0}};
  EXPECT_THROW(cholesky_solve(a, b), std::runtime_error);
}

TEST(RidgeLs, RecoversExactSolutionLowLambda) {
  // Overdetermined: S (4x2) with known x, noiseless.
  Rng rng(11);
  CMatrix s(4, 2);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 2; ++j) s(i, j) = rng.complex_normal();
  const CVec x_true{{1.0, -0.5}, {0.3, 2.0}};
  const CVec b = s * x_true;
  const CVec x = ridge_least_squares(s, b, 1e-12);
  EXPECT_NEAR(std::abs(x[0] - x_true[0]), 0.0, 1e-6);
  EXPECT_NEAR(std::abs(x[1] - x_true[1]), 0.0, 1e-6);
}

TEST(RidgeLs, LargeLambdaShrinksTowardZero) {
  CMatrix s = CMatrix::identity(2);
  const CVec b{{1.0, 0.0}, {1.0, 0.0}};
  const CVec x = ridge_least_squares(s, b, 100.0);
  EXPECT_LT(std::abs(x[0]), 0.05);
}

TEST(RidgeLs, RejectsNonPositiveLambda) {
  CMatrix s = CMatrix::identity(2);
  const CVec b{{1.0, 0.0}, {1.0, 0.0}};
  EXPECT_THROW(ridge_least_squares(s, b, 0.0), std::logic_error);
}

TEST(VecOps, NormInnerConj) {
  const CVec a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_NEAR(norm(a), 5.0, 1e-14);
  const CVec b{{1.0, 0.0}, {0.0, 1.0}};
  // <a, b> = conj(3) * 1 + conj(4i) * i = 3 + 4.
  EXPECT_NEAR(std::abs(inner(a, b) - cplx(7.0, 0.0)), 0.0, 1e-14);
  const CVec c = conj(a);
  EXPECT_EQ(c[1], (cplx{0.0, -4.0}));
}

}  // namespace
}  // namespace mmr::dsp
