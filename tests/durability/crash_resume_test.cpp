// The resume contract, proven the hard way: a child process running a
// journaled campaign through the bench CLI helpers is SIGKILLed mid-sweep;
// the parent resumes from the journal and the resulting --json-out bytes
// must be identical to an uninterrupted run. Timing is frozen in every run
// (--freeze-timing) since wall-clock can never reproduce.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sim/engine.h"
#include "sim/journal.h"
#include "sweep_cli.h"

namespace mmr {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// The campaign under test: the first trials are fast, the later ones
/// sleep long enough that the parent can reliably SIGKILL the child while
/// the sweep is still in flight. Faults are enabled so journal replay has
/// to restore fault-event streams, and labels so it has to restore those.
sim::ExperimentSpec crash_spec() {
  sim::ExperimentSpec spec;
  spec.name = "crash_resume_demo";
  spec.scenario.name = "indoor";
  spec.controller.name = "mmreliable";
  spec.run.duration_s = 0.1;
  spec.run.faults.probe_drop_prob = 0.2;
  spec.trials = 6;
  spec.jobs = 2;
  spec.seed = 11;
  spec.seed_policy = sim::SeedPolicy::kPerTrialStream;
  spec.customize = [](const sim::TrialContext& ctx, sim::ScenarioSpec&,
                      sim::ControllerSpec&, sim::RunConfig&) {
    if (ctx.index >= 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
  };
  spec.label = [](const sim::TrialContext& ctx) {
    return "rep" + std::to_string(ctx.index);
  };
  return spec;
}

class CrashResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/mmr_crash_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::string cmd = "rm -rf '" + dir_ + "'";
    (void)std::system(cmd.c_str());
  }
  std::string dir_;
};

TEST_F(CrashResumeTest, SigkilledCampaignResumesByteIdentically) {
  const sim::ExperimentSpec spec = crash_spec();
  const std::string journal_base = dir_ + "/ckpt";
  const std::string journal_file =
      bench::detail::journal_path(journal_base, spec.name);

  // --- child: run the journaled campaign until we kill it ---------------
  const pid_t child = ::fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    bench::SweepCliOptions opts;
    opts.jobs = 2;
    opts.resume = journal_base;
    opts.json_out = dir_ + "/child.json";
    opts.freeze_timing = true;
    (void)bench::run_campaign(spec, opts);
    ::_exit(0);  // never reached: the parent kills us mid-sweep
  }

  // Wait for at least two checkpointed trials, then SIGKILL mid-flight.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool child_exited = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (count_occurrences(read_all(journal_file), "{\"trial\":") >= 2) break;
    int status = 0;
    if (::waitpid(child, &status, WNOHANG) == child) {
      child_exited = true;  // finished early; resume degenerates to replay
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (!child_exited) {
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);
  }

  // The kill must have left a usable journal with partial progress.
  const std::string journal_bytes = read_all(journal_file);
  EXPECT_GE(count_occurrences(journal_bytes, "{\"trial\":"), 2u);
  if (!child_exited) {
    // No committed --json-out: the AtomicFile was never committed.
    EXPECT_TRUE(read_all(dir_ + "/child.json").empty());
  }

  // --- parent: resume ---------------------------------------------------
  bench::SweepCliOptions resume_opts;
  resume_opts.jobs = 2;
  resume_opts.resume = journal_base;
  resume_opts.json_out = dir_ + "/resumed.json";
  resume_opts.freeze_timing = true;
  const sim::EngineResult resumed = bench::run_campaign(spec, resume_opts);
  EXPECT_GE(resumed.replayed_trials, 2u);
  EXPECT_LE(resumed.replayed_trials, spec.trials);
  EXPECT_TRUE(resumed.failures.empty());

  // --- reference: the same campaign, uninterrupted, no journal ----------
  bench::SweepCliOptions ref_opts;
  ref_opts.jobs = 2;
  ref_opts.json_out = dir_ + "/reference.json";
  ref_opts.freeze_timing = true;
  (void)bench::run_campaign(spec, ref_opts);

  const std::string resumed_json = read_all(dir_ + "/resumed.json");
  const std::string reference_json = read_all(dir_ + "/reference.json");
  ASSERT_FALSE(reference_json.empty());
  EXPECT_EQ(resumed_json, reference_json)
      << "resumed output must be byte-identical to an uninterrupted run";
}

TEST_F(CrashResumeTest, SecondResumeReplaysEveryTrial) {
  sim::ExperimentSpec spec = crash_spec();
  spec.customize = nullptr;  // no need to be slow here
  spec.trials = 3;
  const std::string path = dir_ + "/done.journal";

  sim::EngineOptions opts;
  opts.freeze_timing = true;
  std::string first_json;
  {
    sim::CampaignJournal journal(path, sim::campaign_key(spec));
    opts.journal = &journal;
    std::ostringstream os;
    sim::JsonLinesSink sink(os);
    const sim::EngineResult r = sim::Engine().run(spec, &sink, opts);
    EXPECT_EQ(r.replayed_trials, 0u);
    first_json = os.str();
  }
  {
    sim::CampaignJournal journal(path, sim::campaign_key(spec));
    EXPECT_EQ(journal.completed().size(), spec.trials);
    opts.journal = &journal;
    std::ostringstream os;
    sim::JsonLinesSink sink(os);
    const sim::EngineResult r = sim::Engine().run(spec, &sink, opts);
    EXPECT_EQ(r.replayed_trials, spec.trials);
    EXPECT_EQ(os.str(), first_json);
  }
}

TEST_F(CrashResumeTest, MismatchedCampaignJournalIsRejected) {
  sim::ExperimentSpec spec = crash_spec();
  spec.customize = nullptr;
  spec.trials = 2;
  const std::string path = dir_ + "/mismatch.journal";
  { sim::CampaignJournal journal(path, sim::campaign_key(spec)); }
  sim::ExperimentSpec other = spec;
  other.run.faults.probe_drop_prob = 0.5;  // different config fingerprint
  EXPECT_THROW(sim::CampaignJournal(path, sim::campaign_key(other)),
               sim::JournalMismatchError);
}

}  // namespace
}  // namespace mmr
