// common::AtomicFile: crash-safe whole-file replacement.
#include "common/atomic_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

namespace mmr {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/mmr_atomic_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    // Best-effort cleanup of anything the tests created.
    std::string cmd = "rm -rf '" + dir_ + "'";
    (void)std::system(cmd.c_str());
  }
  std::string dir_;
};

TEST_F(AtomicFileTest, CommitCreatesFileWithExactContent) {
  const std::string path = dir_ + "/out.json";
  AtomicFile file(path);
  file.stream() << "{\"a\": 1}\n";
  EXPECT_FALSE(exists(path));  // nothing on disk before commit
  file.commit();
  EXPECT_TRUE(file.committed());
  EXPECT_EQ(read_all(path), "{\"a\": 1}\n");
}

TEST_F(AtomicFileTest, CommitReplacesExistingContentAtomically) {
  const std::string path = dir_ + "/out.json";
  AtomicFile::write(path, "old content");
  AtomicFile file(path);
  file.stream() << "new content";
  EXPECT_EQ(read_all(path), "old content");  // untouched until commit
  file.commit();
  EXPECT_EQ(read_all(path), "new content");
}

TEST_F(AtomicFileTest, DestructionWithoutCommitLeavesTargetUntouched) {
  const std::string path = dir_ + "/out.json";
  AtomicFile::write(path, "survives");
  {
    AtomicFile file(path);
    file.stream() << "discarded";
  }
  EXPECT_EQ(read_all(path), "survives");
}

TEST_F(AtomicFileTest, NoTempFileSurvivesCommit) {
  const std::string path = dir_ + "/out.json";
  AtomicFile::write(path, "x");
  // The directory must contain exactly the destination file.
  std::string cmd = "ls -A '" + dir_ + "'";
  FILE* p = ::popen(cmd.c_str(), "r");
  ASSERT_NE(p, nullptr);
  char buf[256] = {0};
  std::string listing;
  while (std::fgets(buf, sizeof(buf), p) != nullptr) listing += buf;
  ::pclose(p);
  EXPECT_EQ(listing, "out.json\n");
}

TEST_F(AtomicFileTest, CommitIntoMissingDirectoryThrows) {
  AtomicFile file(dir_ + "/no/such/dir/out.json");
  file.stream() << "content";
  EXPECT_THROW(file.commit(), std::runtime_error);
}

TEST_F(AtomicFileTest, EmptyContentCommitsAnEmptyFile) {
  const std::string path = dir_ + "/empty";
  AtomicFile file(path);
  file.commit();
  EXPECT_TRUE(exists(path));
  EXPECT_EQ(read_all(path), "");
}

TEST_F(AtomicFileTest, DoubleCommitIsAPreconditionViolation) {
  const std::string path = dir_ + "/out";
  AtomicFile file(path);
  file.stream() << "x";
  file.commit();
  EXPECT_THROW(file.commit(), std::logic_error);
}

}  // namespace
}  // namespace mmr
