// The durability-facing half of the bench CLI: strict parse_f64, the
// --resume / --trial-retries / --trial-timeout-s / --freeze-timing flags,
// and the exit(2) error paths the flags add.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parse.h"
#include "sim/engine.h"
#include "sweep_cli.h"

namespace mmr {
namespace {

TEST(ParseF64, AcceptsPlainNonNegativeDecimals) {
  double v = -1.0;
  EXPECT_TRUE(parse_f64("0", v));
  EXPECT_EQ(v, 0.0);
  EXPECT_TRUE(parse_f64("2.5", v));
  EXPECT_EQ(v, 2.5);
  EXPECT_TRUE(parse_f64("0.125", v));
  EXPECT_EQ(v, 0.125);
  EXPECT_TRUE(parse_f64(".5", v));
  EXPECT_EQ(v, 0.5);
  EXPECT_TRUE(parse_f64("1e3", v));
  EXPECT_EQ(v, 1000.0);
}

TEST(ParseF64, RejectsGarbageSignsAndNonFinites) {
  double v = 7.0;
  EXPECT_FALSE(parse_f64(nullptr, v));
  EXPECT_FALSE(parse_f64("", v));
  EXPECT_FALSE(parse_f64("abc", v));
  EXPECT_FALSE(parse_f64("1.5x", v));   // trailing garbage
  EXPECT_FALSE(parse_f64("-1.5", v));   // negative
  EXPECT_FALSE(parse_f64("+1.5", v));   // sign
  EXPECT_FALSE(parse_f64(" 1.5", v));   // leading whitespace
  EXPECT_FALSE(parse_f64("inf", v));
  EXPECT_FALSE(parse_f64("nan", v));
  EXPECT_FALSE(parse_f64("0x10", v));   // hex floats
  EXPECT_FALSE(parse_f64("1e400", v));  // overflow
  EXPECT_EQ(v, 7.0) << "failed parse must not clobber the output";
}

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return argv;
}

TEST(SweepCliDurability, ParsesTheDurabilityFlags) {
  std::vector<std::string> args = {
      "prog",          "--resume",          "/tmp/ckpt",
      "--trial-retries=2", "--trial-timeout-s", "1.5",
      "--freeze-timing"};
  auto argv = argv_of(args);
  const bench::SweepCliOptions opts =
      bench::parse_sweep_cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(opts.resume, "/tmp/ckpt");
  EXPECT_EQ(opts.trial_retries, 2u);
  EXPECT_EQ(opts.trial_timeout_s, 1.5);
  EXPECT_TRUE(opts.freeze_timing);
}

TEST(SweepCliDurability, DurabilityDefaultsAreOff) {
  std::vector<std::string> args = {"prog"};
  auto argv = argv_of(args);
  const bench::SweepCliOptions opts =
      bench::parse_sweep_cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(opts.resume.empty());
  EXPECT_EQ(opts.trial_retries, 0u);
  EXPECT_EQ(opts.trial_timeout_s, 0.0);
  EXPECT_FALSE(opts.freeze_timing);
}

TEST(SweepCliDurability, JournalPathIsPerCampaignAndSanitized) {
  EXPECT_EQ(bench::detail::journal_path("/tmp/ckpt", "fig16_blockage"),
            "/tmp/ckpt.fig16_blockage.journal");
  EXPECT_EQ(bench::detail::journal_path("base", "weird name/with:stuff"),
            "base.weird_name_with_stuff.journal");
}

int run_cli(std::vector<std::string> args) {
  auto argv = argv_of(args);
  bench::parse_sweep_cli(static_cast<int>(argv.size()), argv.data());
  return 0;
}

TEST(SweepCliDurabilityDeathTest, GarbageTimeoutExits2) {
  EXPECT_EXIT(run_cli({"prog", "--trial-timeout-s", "fast"}),
              ::testing::ExitedWithCode(2),
              "invalid value for --trial-timeout-s");
}

TEST(SweepCliDurabilityDeathTest, NegativeTimeoutExits2) {
  EXPECT_EXIT(run_cli({"prog", "--trial-timeout-s=-1"}),
              ::testing::ExitedWithCode(2),
              "invalid value for --trial-timeout-s");
}

TEST(SweepCliDurabilityDeathTest, GarbageRetriesExits2) {
  EXPECT_EXIT(run_cli({"prog", "--trial-retries", "lots"}),
              ::testing::ExitedWithCode(2),
              "invalid value for --trial-retries");
}

TEST(SweepCliDurabilityDeathTest, EmptyResumeBaseExits2) {
  EXPECT_EXIT(run_cli({"prog", "--resume="}), ::testing::ExitedWithCode(2),
              "--resume needs a journal base path");
}

int resume_sampled_campaign() {
  sim::ExperimentSpec spec;
  spec.name = "sampled";
  spec.scenario.name = "indoor";
  spec.controller.name = "mmreliable";
  spec.run.duration_s = 0.05;
  spec.record_samples = true;  // journals cannot replay per-tick samples
  bench::SweepCliOptions opts;
  opts.resume = "/tmp/mmr_cli_durability_ckpt";
  (void)bench::run_campaign(spec, opts);
  return 0;
}

TEST(SweepCliDurabilityDeathTest, ResumeWithRecordedSamplesExits2) {
  EXPECT_EXIT(resume_sampled_campaign(), ::testing::ExitedWithCode(2),
              "--resume is not supported for campaign 'sampled'");
}

int campaign_to_unwritable_json() {
  sim::ExperimentSpec spec;
  spec.name = "unwritable";
  spec.scenario.name = "indoor";
  spec.controller.name = "mmreliable";
  spec.run.duration_s = 0.05;
  bench::SweepCliOptions opts;
  opts.json_out = "/no/such/dir/out.json";
  (void)bench::run_campaign(spec, opts);
  return 0;
}

TEST(SweepCliDurabilityDeathTest, UnwritableJsonOutExits2BeforeSweeping) {
  EXPECT_EXIT(campaign_to_unwritable_json(), ::testing::ExitedWithCode(2),
              "cannot open --json-out file");
}

}  // namespace
}  // namespace mmr
