// Durable engine execution: per-trial retry with deterministic streams,
// quarantine after exhausted retries, watchdog flagging, frozen timing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/engine.h"
#include "sim/telemetry.h"

namespace mmr::sim {
namespace {

/// A small, fast campaign every test starts from.
ExperimentSpec base_spec(std::size_t trials = 4) {
  ExperimentSpec spec;
  spec.name = "durability_demo";
  spec.scenario.name = "indoor";
  spec.controller.name = "mmreliable";
  spec.run.duration_s = 0.1;
  spec.trials = trials;
  spec.seed = 21;
  spec.seed_policy = SeedPolicy::kPerTrialStream;
  return spec;
}

void expect_trials_identical(
    const std::vector<SweepTrial<core::LinkSummary>>& a,
    const std::vector<SweepTrial<core::LinkSummary>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].value.reliability, b[i].value.reliability);
    EXPECT_EQ(a[i].value.mean_throughput_bps,
              b[i].value.mean_throughput_bps);
    EXPECT_EQ(a[i].value.mean_spectral_efficiency,
              b[i].value.mean_spectral_efficiency);
    EXPECT_EQ(a[i].value.throughput_reliability_product,
              b[i].value.throughput_reliability_product);
    EXPECT_EQ(a[i].value.num_samples, b[i].value.num_samples);
  }
}

TEST(RetryQuarantine, TransientFailureIsRetriedBitIdentically) {
  // Trial 1 throws exactly once; with one retry the sweep must produce
  // results bit-identical to a sweep that never failed (the retry restarts
  // from the same deterministic Rng stream).
  const EngineResult clean = Engine().run(base_spec());

  ExperimentSpec flaky = base_spec();
  auto first_attempt = std::make_shared<std::atomic<bool>>(true);
  flaky.customize = [first_attempt](const TrialContext& ctx, ScenarioSpec&,
                                    ControllerSpec&, RunConfig&) {
    if (ctx.index == 1 && first_attempt->exchange(false)) {
      throw std::runtime_error("transient fault injected by test");
    }
  };
  EngineOptions opts;
  opts.trial_retries = 1;
  const EngineResult retried = Engine().run(flaky, nullptr, opts);

  EXPECT_TRUE(retried.failures.empty());
  expect_trials_identical(retried.trials, clean.trials);
  EXPECT_EQ(retried.aggregate.mean_reliability,
            clean.aggregate.mean_reliability);
}

TEST(RetryQuarantine, ExhaustedRetriesQuarantineWithoutAbortingTheSweep) {
  ExperimentSpec spec = base_spec();
  auto attempts_seen = std::make_shared<std::atomic<int>>(0);
  spec.customize = [attempts_seen](const TrialContext& ctx, ScenarioSpec&,
                                   ControllerSpec&, RunConfig&) {
    if (ctx.index == 2) {
      attempts_seen->fetch_add(1);
      throw std::runtime_error("deterministic failure in trial 2");
    }
  };
  EngineOptions opts;
  opts.trial_retries = 2;
  MemorySink sink;
  const EngineResult r = Engine().run(spec, &sink, opts);

  // The sweep completed: every trial keeps its slot.
  ASSERT_EQ(r.trials.size(), 4u);
  EXPECT_EQ(attempts_seen->load(), 3);  // 1 try + 2 retries

  ASSERT_EQ(r.failures.size(), 1u);
  const TrialFailure& f = r.failures[0];
  EXPECT_EQ(f.index, 2u);
  EXPECT_EQ(f.attempts, 3u);
  EXPECT_TRUE(f.quarantined());
  EXPECT_FALSE(f.timed_out);
  EXPECT_NE(f.error.find("deterministic failure in trial 2"),
            std::string::npos);
  EXPECT_NE(f.stream_seed, 0u);

  // Quarantined slot holds a default summary...
  EXPECT_EQ(r.trials[2].value.num_samples, 0u);
  // ...and is excluded from the aggregate: the aggregate must equal a
  // summarize_sweep over the three survivors.
  std::vector<SweepTrial<core::LinkSummary>> survivors = {
      r.trials[0], r.trials[1], r.trials[3]};
  const SweepSummary expected = summarize_sweep(survivors);
  EXPECT_EQ(r.aggregate.mean_reliability, expected.mean_reliability);
  EXPECT_EQ(r.aggregate.mean_throughput_bps, expected.mean_throughput_bps);

  // The failure reached telemetry too.
  ASSERT_EQ(sink.trial_failures().size(), 1u);
  EXPECT_EQ(sink.trial_failures()[0].index, 2u);
}

TEST(RetryQuarantine, QuarantineIsReportedInSweepJson) {
  ExperimentSpec spec = base_spec(3);
  spec.customize = [](const TrialContext& ctx, ScenarioSpec&,
                      ControllerSpec&, RunConfig&) {
    if (ctx.index == 0) throw std::runtime_error("boom");
  };
  EngineOptions opts;
  opts.freeze_timing = true;
  std::ostringstream os;
  JsonLinesSink sink(os);
  (void)Engine().run(spec, &sink, opts);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"trial_failure\""), std::string::npos);
  EXPECT_NE(json.find("\"failed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"failures\": ["), std::string::npos);
  EXPECT_NE(json.find("\"quarantined\": true"), std::string::npos);
  EXPECT_NE(json.find("boom"), std::string::npos);
}

TEST(RetryQuarantine, CleanRunEmitsNoFailureMachinery) {
  // Byte-compat guard: without failures the JSON must not mention the
  // failure fields at all (older consumers never see new keys).
  ExperimentSpec spec = base_spec(2);
  EngineOptions opts;
  opts.trial_retries = 3;  // budget present but unused
  opts.freeze_timing = true;
  std::ostringstream os;
  JsonLinesSink sink(os);
  const EngineResult r = Engine().run(spec, &sink, opts);
  EXPECT_TRUE(r.failures.empty());
  EXPECT_EQ(os.str().find("\"failed\""), std::string::npos);
  EXPECT_EQ(os.str().find("\"failures\""), std::string::npos);
  EXPECT_EQ(os.str().find("\"trial_failure\""), std::string::npos);
}

TEST(RetryQuarantine, WatchdogFlagsSlowTrialsWithoutKillingThem) {
  ExperimentSpec spec = base_spec(2);
  spec.customize = [](const TrialContext& ctx, ScenarioSpec&,
                      ControllerSpec&, RunConfig&) {
    if (ctx.index == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
    }
  };
  EngineOptions opts;
  opts.trial_timeout_s = 0.05;
  const EngineResult r = Engine().run(spec, nullptr, opts);

  // Trial 0 slept past the deadline, so it MUST be flagged. (A loaded
  // machine may legitimately flag the other trial too; the contract
  // under test is flag-not-kill, not scheduler latency.)
  const TrialFailure* f = nullptr;
  for (const TrialFailure& candidate : r.failures) {
    if (candidate.index == 0) f = &candidate;
  }
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->timed_out);
  // Flagged, not quarantined: the late trial's results are kept...
  for (const TrialFailure& any : r.failures) {
    EXPECT_FALSE(any.quarantined());
  }
  EXPECT_GT(r.trials[0].value.num_samples, 0u);
  // ...and still count toward the aggregate.
  const SweepSummary expected = summarize_sweep(r.trials);
  EXPECT_EQ(r.aggregate.mean_reliability, expected.mean_reliability);
}

TEST(RetryQuarantine, FreezeTimingZeroesEveryTimingField) {
  ExperimentSpec spec = base_spec(2);
  EngineOptions opts;
  opts.freeze_timing = true;
  const EngineResult r = Engine().run(spec, nullptr, opts);
  EXPECT_EQ(r.timing.wall_s, 0.0);
  EXPECT_EQ(r.timing.serial_equivalent_s, 0.0);
  for (const auto& t : r.trials) {
    EXPECT_EQ(t.wall_s, 0.0);
    EXPECT_EQ(t.cpu_s, 0.0);
  }
  // Frozen runs of the same spec serialize to identical bytes.
  std::ostringstream a, b;
  JsonLinesSink sa(a), sb(b);
  (void)Engine().run(spec, &sa, opts);
  (void)Engine().run(spec, &sb, opts);
  EXPECT_EQ(a.str(), b.str());
}

TEST(RetryQuarantine, DefaultOptionsMatchThePlainOverload) {
  ExperimentSpec spec = base_spec(3);
  const EngineResult plain = Engine().run(spec);
  const EngineResult durable = Engine().run(spec, nullptr, EngineOptions{});
  expect_trials_identical(plain.trials, durable.trials);
  EXPECT_TRUE(durable.failures.empty());
  EXPECT_EQ(durable.replayed_trials, 0u);
}

}  // namespace
}  // namespace mmr::sim
