// sim::CampaignJournal: checkpoint round-trip, fingerprint-keyed
// mismatch rejection, and torn-tail tolerance.
#include "sim/journal.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <unistd.h>

namespace mmr::sim {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/mmr_journal_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    path_ = dir_ + "/campaign.journal";
  }
  void TearDown() override {
    std::string cmd = "rm -rf '" + dir_ + "'";
    (void)std::system(cmd.c_str());
  }

  static ExperimentSpec demo_spec() {
    ExperimentSpec spec;
    spec.name = "journal_demo";
    spec.scenario.name = "indoor";
    spec.controller.name = "mmreliable";
    spec.trials = 8;
    spec.seed = 42;
    return spec;
  }

  static JournalTrial demo_trial(std::size_t index) {
    JournalTrial t;
    t.index = index;
    t.wall_s = 0.25 + 0.125 * static_cast<double>(index);
    t.cpu_s = 0.125;
    t.label = "scheme/rep" + std::to_string(index);
    t.summary.reliability = 0.9990000000001 + 1e-13 * index;
    t.summary.mean_throughput_bps = 1.23456789e9;
    t.summary.mean_spectral_efficiency = 7.654321;
    t.summary.throughput_reliability_product = 1.2333e9;
    t.summary.num_samples = 400;
    core::FaultEvent ev;
    ev.t_s = 0.1 * static_cast<double>(index);
    ev.kind = core::FaultEventKind::kProbeDropped;
    ev.beam = index % 2 == 0 ? core::kNoBeam : index;
    ev.value = 3.0;
    t.faults.push_back(ev);
    return t;
  }

  std::string dir_, path_;
};

TEST_F(JournalTest, RoundTripRestoresTrialsBitExactly) {
  const CampaignKey key = campaign_key(demo_spec());
  {
    CampaignJournal journal(path_, key);
    EXPECT_TRUE(journal.completed().empty());
    journal.record(demo_trial(0));
    journal.record(demo_trial(3));
    journal.record(demo_trial(7));
  }
  CampaignJournal reopened(path_, key);
  ASSERT_EQ(reopened.completed().size(), 3u);
  for (std::size_t index : {0u, 3u, 7u}) {
    const auto it = reopened.completed().find(index);
    ASSERT_NE(it, reopened.completed().end()) << "index " << index;
    const JournalTrial expected = demo_trial(index);
    const JournalTrial& got = it->second;
    // Bit-exact doubles: compare the raw IEEE-754 patterns.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.wall_s),
              std::bit_cast<std::uint64_t>(expected.wall_s));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.cpu_s),
              std::bit_cast<std::uint64_t>(expected.cpu_s));
    EXPECT_EQ(got.label, expected.label);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.summary.reliability),
              std::bit_cast<std::uint64_t>(expected.summary.reliability));
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(got.summary.mean_throughput_bps),
        std::bit_cast<std::uint64_t>(expected.summary.mean_throughput_bps));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(
                  got.summary.mean_spectral_efficiency),
              std::bit_cast<std::uint64_t>(
                  expected.summary.mean_spectral_efficiency));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(
                  got.summary.throughput_reliability_product),
              std::bit_cast<std::uint64_t>(
                  expected.summary.throughput_reliability_product));
    EXPECT_EQ(got.summary.num_samples, expected.summary.num_samples);
    ASSERT_EQ(got.faults.size(), expected.faults.size());
    EXPECT_EQ(got.faults[0].kind, expected.faults[0].kind);
    EXPECT_EQ(got.faults[0].beam, expected.faults[0].beam);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.faults[0].t_s),
              std::bit_cast<std::uint64_t>(expected.faults[0].t_s));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.faults[0].value),
              std::bit_cast<std::uint64_t>(expected.faults[0].value));
  }
}

TEST_F(JournalTest, RoundTripsAwkwardDoublesAndLabels) {
  const CampaignKey key = campaign_key(demo_spec());
  JournalTrial t;
  t.index = 1;
  t.wall_s = -0.0;  // negative zero must survive
  t.cpu_s = std::numeric_limits<double>::denorm_min();
  t.label = "weird \"label\" with \\ and\nnewline";
  t.summary.reliability = std::numeric_limits<double>::quiet_NaN();
  {
    CampaignJournal journal(path_, key);
    journal.record(t);
  }
  CampaignJournal reopened(path_, key);
  const auto it = reopened.completed().find(1);
  ASSERT_NE(it, reopened.completed().end());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(it->second.wall_s),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(it->second.cpu_s),
            std::bit_cast<std::uint64_t>(
                std::numeric_limits<double>::denorm_min()));
  EXPECT_EQ(it->second.label, t.label);
  EXPECT_TRUE(std::isnan(it->second.summary.reliability));
}

TEST_F(JournalTest, MismatchedSeedIsRejected) {
  { CampaignJournal journal(path_, campaign_key(demo_spec())); }
  ExperimentSpec other = demo_spec();
  other.seed = 43;
  EXPECT_THROW(CampaignJournal(path_, campaign_key(other)),
               JournalMismatchError);
}

TEST_F(JournalTest, MismatchedTrialCountIsRejected) {
  { CampaignJournal journal(path_, campaign_key(demo_spec())); }
  ExperimentSpec other = demo_spec();
  other.trials = 9;
  EXPECT_THROW(CampaignJournal(path_, campaign_key(other)),
               JournalMismatchError);
}

TEST_F(JournalTest, MismatchedNameIsRejected) {
  { CampaignJournal journal(path_, campaign_key(demo_spec())); }
  ExperimentSpec other = demo_spec();
  other.name = "different_campaign";
  EXPECT_THROW(CampaignJournal(path_, campaign_key(other)),
               JournalMismatchError);
}

TEST_F(JournalTest, ConfigChangeFlipsTheFingerprintAndIsRejected) {
  { CampaignJournal journal(path_, campaign_key(demo_spec())); }
  // Any config scalar drift -- here the run duration -- must be caught by
  // the fingerprint even though name/seed/trials all still match.
  ExperimentSpec other = demo_spec();
  other.run.duration_s = 2.0;
  EXPECT_NE(fingerprint_spec(other), fingerprint_spec(demo_spec()));
  EXPECT_THROW(CampaignJournal(path_, campaign_key(other)),
               JournalMismatchError);
}

TEST_F(JournalTest, FaultPlanChangeFlipsTheFingerprint) {
  ExperimentSpec a = demo_spec();
  ExperimentSpec b = demo_spec();
  b.run.faults.probe_drop_prob = 0.05;
  EXPECT_NE(fingerprint_spec(a), fingerprint_spec(b));
}

TEST_F(JournalTest, GarbageHeaderIsRejected) {
  {
    std::ofstream out(path_);
    out << "not a journal at all\n";
  }
  EXPECT_THROW(CampaignJournal(path_, campaign_key(demo_spec())),
               JournalMismatchError);
}

TEST_F(JournalTest, UnknownExtraHeaderFieldIsRejectedAsUnreadable) {
  // Forward-compat contract: the header parser is strict and positional,
  // so a journal written by a FUTURE format that appends an extra header
  // field must be refused as unreadable -- never half-understood and
  // resumed with the unknown field silently dropped. (Adding a field
  // means bumping kJournalFormat; the shard field is the one sanctioned
  // extension and is parsed explicitly.)
  const CampaignKey key = campaign_key(demo_spec());
  std::string header = journal_header_line(key);
  ASSERT_EQ(header.substr(header.size() - 3), "}}\n");
  header.insert(header.size() - 3, ", \"future_knob\": 1");
  {
    std::ofstream out(path_, std::ios::binary);
    out << header;
  }
  try {
    CampaignJournal journal(path_, key);
    FAIL() << "resumed a journal with an unknown extra header field";
  } catch (const JournalMismatchError& e) {
    EXPECT_NE(std::string(e.what()).find("unreadable header"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(read_journal_file(path_), JournalMismatchError);
}

TEST_F(JournalTest, TornTrailingLineIsDroppedNotFatal) {
  const CampaignKey key = campaign_key(demo_spec());
  {
    CampaignJournal journal(path_, key);
    journal.record(demo_trial(0));
    journal.record(demo_trial(1));
  }
  // Simulate a SIGKILL mid-append: chop the file mid-way through the last
  // record's line.
  std::string content;
  {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    content = os.str();
  }
  const std::size_t cut = content.size() - 25;
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(cut));
  }
  CampaignJournal reopened(path_, key);
  EXPECT_EQ(reopened.completed().size(), 1u);
  EXPECT_TRUE(reopened.completed().count(0));
  EXPECT_FALSE(reopened.completed().count(1));
  // And the journal still accepts new records after the torn tail.
  reopened.record(demo_trial(1));
}

TEST_F(JournalTest, DuplicateIndexKeepsTheFirstRecord) {
  const CampaignKey key = campaign_key(demo_spec());
  {
    CampaignJournal journal(path_, key);
    JournalTrial first = demo_trial(2);
    first.label = "first";
    JournalTrial second = demo_trial(2);
    second.label = "second";
    journal.record(first);
    journal.record(second);
  }
  CampaignJournal reopened(path_, key);
  ASSERT_EQ(reopened.completed().size(), 1u);
  EXPECT_EQ(reopened.completed().at(2).label, "first");
}

}  // namespace
}  // namespace mmr::sim
