// fsio retry wrappers under injected faults: transient errnos retry
// with the documented doubling backoff, permanent errnos and exhausted
// budgets throw typed IoError naming the operation and path, and short
// writes resume where they left off.
#include "common/fs_ops.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include <fcntl.h>
#include <unistd.h>

#include "tests/fsfaults/fault_ops.h"

namespace mmr {
namespace {

class FsOpsFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/mmr_fsops_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::string cmd = "rm -rf '" + dir_ + "'";
    (void)std::system(cmd.c_str());
  }

  std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  std::string dir_;
};

TEST_F(FsOpsFaultTest, TransientErrnosAreRetriedOthersAreNot) {
  EXPECT_TRUE(fsio::transient_errno(EINTR));
  EXPECT_TRUE(fsio::transient_errno(EAGAIN));
  EXPECT_TRUE(fsio::transient_errno(EBUSY));
  EXPECT_FALSE(fsio::transient_errno(ENOSPC));
  EXPECT_FALSE(fsio::transient_errno(EACCES));
  EXPECT_FALSE(fsio::transient_errno(ENOENT));
}

TEST_F(FsOpsFaultTest, OpenRetriesEintrWithDoublingBackoff) {
  fsfaults::ScopedFaults faults;
  fsfaults::script().fail_open = 3;
  const std::string path = dir_ + "/file";
  const int fd = fsio::open_retry(path, O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  fsio::close_or_throw(fd, path);
  // Three failures = three backoffs, each double the last.
  ASSERT_EQ(fsfaults::script().slept.size(), 3u);
  EXPECT_DOUBLE_EQ(fsfaults::script().slept[0], 0.0005);
  EXPECT_DOUBLE_EQ(fsfaults::script().slept[1], 0.001);
  EXPECT_DOUBLE_EQ(fsfaults::script().slept[2], 0.002);
}

TEST_F(FsOpsFaultTest, ExhaustedRetryBudgetThrowsIoErrorNamingTheOp) {
  fsfaults::ScopedFaults faults;
  fsfaults::script().fail_open = 100;  // never recovers
  const std::string path = dir_ + "/file";
  try {
    (void)fsio::open_retry(path, O_WRONLY | O_CREAT, 0644);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.op(), "open");
    EXPECT_EQ(e.path(), path);
    EXPECT_EQ(e.code(), EINTR);
  }
  // max_attempts = 5: the first try plus four retries, so four sleeps.
  EXPECT_EQ(fsfaults::script().slept.size(), 4u);
}

TEST_F(FsOpsFaultTest, PermanentErrnoFailsFastWithoutSleeping) {
  fsfaults::ScopedFaults faults;
  fsfaults::script().fail_open = 1;
  fsfaults::script().open_errno = EACCES;
  try {
    (void)fsio::open_retry(dir_ + "/file", O_WRONLY | O_CREAT, 0644);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), EACCES);
  }
  EXPECT_TRUE(fsfaults::script().slept.empty());
}

TEST_F(FsOpsFaultTest, ShortWritesResumeAndCompleteTheBuffer) {
  fsfaults::ScopedFaults faults;
  fsfaults::script().short_writes = true;
  const std::string path = dir_ + "/file";
  const std::string content = "one byte at a time, all the way through";
  const int fd = fsio::open_retry(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  fsio::write_all(fd, content.data(), content.size(), path);
  fsio::close_or_throw(fd, path);
  EXPECT_EQ(read_file(path), content);
  // Progress resets the budget, so no backoff was ever needed.
  EXPECT_TRUE(fsfaults::script().slept.empty());
}

TEST_F(FsOpsFaultTest, WriteEintrStormInterleavedWithProgressRecovers) {
  fsfaults::ScopedFaults faults;
  fsfaults::script().short_writes = true;
  fsfaults::script().fail_write = 4;  // consumed across the byte loop
  const std::string path = dir_ + "/file";
  const std::string content = "abcdefgh";
  const int fd = fsio::open_retry(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  fsio::write_all(fd, content.data(), content.size(), path);
  fsio::close_or_throw(fd, path);
  EXPECT_EQ(read_file(path), content);
  EXPECT_EQ(fsfaults::script().slept.size(), 4u);
}

TEST_F(FsOpsFaultTest, EnospcOnWriteIsTypedAndNamesThePath) {
  fsfaults::ScopedFaults faults;
  fsfaults::script().fail_write = 1;
  fsfaults::script().write_errno = ENOSPC;
  const std::string path = dir_ + "/file";
  const int fd = fsio::open_retry(path, O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  try {
    fsio::write_all(fd, "x", 1, path);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.op(), "write");
    EXPECT_EQ(e.path(), path);
    EXPECT_EQ(e.code(), ENOSPC);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  fsio::close_or_throw(fd, path);
  EXPECT_TRUE(fsfaults::script().slept.empty());
}

TEST_F(FsOpsFaultTest, RenameIfExistsReportsEnoentAsFalseNotError) {
  fsfaults::ScopedFaults faults;
  EXPECT_FALSE(fsio::rename_if_exists(dir_ + "/missing", dir_ + "/target"));
  std::ofstream(dir_ + "/src") << "x";
  fsfaults::script().fail_rename = 2;
  EXPECT_TRUE(fsio::rename_if_exists(dir_ + "/src", dir_ + "/target"));
  EXPECT_EQ(fsfaults::script().slept.size(), 2u);
}

}  // namespace
}  // namespace mmr
