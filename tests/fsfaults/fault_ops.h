// Test-only filesystem fault injection for the fsio hook table.
//
// A fsfaults::ScopedFaults installs an OpsTable whose entries consult a
// mutable FaultScript before delegating to the real syscalls: "fail the
// next K open(2)s with EINTR", "cap every write at one byte", "record
// the backoff schedule instead of sleeping". The script is plain global
// state (the table is bare fn pointers, so there is no closure to hang
// context on) -- tests are single-threaded through the code under test,
// exactly like dsp::backend's ScopedBackend.
#pragma once

#include <cerrno>
#include <cstddef>
#include <vector>

#include "common/fs_ops.h"

namespace mmr::fsfaults {

/// What to inject. fail_<op> counts down: each faulting call consumes
/// one and sets <op>_errno; at zero the real syscall runs.
struct FaultScript {
  int fail_open = 0;
  int open_errno = EINTR;
  int fail_write = 0;
  int write_errno = EINTR;
  int fail_fsync = 0;
  int fsync_errno = EINTR;
  int fail_rename = 0;
  int rename_errno = EINTR;
  /// Cap every successful write at one byte (exercises the short-write
  /// resume loop in write_all).
  bool short_writes = false;
  /// Every backoff the retry loop requested, in order. Nothing actually
  /// sleeps, so EINTR storms test in microseconds.
  std::vector<double> slept;
};

inline FaultScript& script() {
  static FaultScript s;
  return s;
}

namespace detail {

inline bool take(int& budget, int err) {
  if (budget <= 0) return false;
  --budget;
  errno = err;
  return true;
}

inline int open_fn(const char* path, int flags, unsigned mode) {
  if (take(script().fail_open, script().open_errno)) return -1;
  return fsio::real_ops()->open_fn(path, flags, mode);
}

inline long write_fn(int fd, const void* data, std::size_t n) {
  if (take(script().fail_write, script().write_errno)) return -1;
  if (script().short_writes && n > 1) n = 1;
  return fsio::real_ops()->write_fn(fd, data, n);
}

inline int fsync_fn(int fd) {
  if (take(script().fail_fsync, script().fsync_errno)) return -1;
  return fsio::real_ops()->fsync_fn(fd);
}

inline int close_fn(int fd) { return fsio::real_ops()->close_fn(fd); }

inline int rename_fn(const char* from, const char* to) {
  if (take(script().fail_rename, script().rename_errno)) return -1;
  return fsio::real_ops()->rename_fn(from, to);
}

inline int unlink_fn(const char* path) {
  return fsio::real_ops()->unlink_fn(path);
}

inline void sleep_fn(double seconds) { script().slept.push_back(seconds); }

}  // namespace detail

/// The faulting table (install via ScopedFaults or fsio::ScopedOps).
inline const fsio::OpsTable* table() {
  static const fsio::OpsTable t = {
      &detail::open_fn,   &detail::write_fn,  &detail::fsync_fn,
      &detail::close_fn,  &detail::rename_fn, &detail::unlink_fn,
      &detail::sleep_fn,
  };
  return &t;
}

/// RAII: reset the script, install the faulting table, and undo both on
/// scope exit.
class ScopedFaults {
 public:
  ScopedFaults() : guard_(table()) { script() = FaultScript{}; }
  ~ScopedFaults() { script() = FaultScript{}; }

  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;

 private:
  fsio::ScopedOps guard_;
};

}  // namespace mmr::fsfaults
