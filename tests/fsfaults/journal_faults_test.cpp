// CampaignJournal's fsync'd append path under injected faults: EINTR
// storms during record()/seal() produce a journal byte-identical to a
// clean run, and ENOSPC surfaces as a typed IoError naming the journal
// path instead of a silent partial checkpoint.
#include "sim/journal.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/fs_ops.h"
#include "tests/fsfaults/fault_ops.h"

namespace mmr::sim {
namespace {

class JournalFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/mmr_journal_faults_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::string cmd = "rm -rf '" + dir_ + "'";
    (void)std::system(cmd.c_str());
  }

  static ExperimentSpec demo_spec() {
    ExperimentSpec spec;
    spec.name = "journal_faults_demo";
    spec.scenario.name = "indoor";
    spec.controller.name = "mmreliable";
    spec.trials = 6;
    spec.seed = 7;
    return spec;
  }

  static JournalTrial demo_trial(std::size_t index) {
    JournalTrial t;
    t.index = index;
    t.wall_s = 0.5 + 0.25 * static_cast<double>(index);
    t.cpu_s = 0.25;
    t.label = "rep" + std::to_string(index);
    t.summary.reliability = 0.999;
    t.summary.mean_throughput_bps = 1.5e9;
    t.summary.num_samples = 100;
    return t;
  }

  std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  std::string dir_;
};

TEST_F(JournalFaultTest, EintrStormRecordsByteIdenticalJournal) {
  const CampaignKey key = campaign_key(demo_spec());
  const ShardPlan shard{0, 2};
  const std::string clean = dir_ + "/clean.journal";
  const std::string faulty = dir_ + "/faulty.journal";
  {
    CampaignJournal journal(clean, key, shard);
    journal.record(demo_trial(0));
    journal.record(demo_trial(2));
    journal.seal();
  }
  {
    fsfaults::ScopedFaults faults;
    fsfaults::script().fail_write = 3;
    fsfaults::script().fail_fsync = 2;
    fsfaults::script().short_writes = true;
    CampaignJournal journal(faulty, key, shard);
    journal.record(demo_trial(0));
    journal.record(demo_trial(2));
    journal.seal();
    EXPECT_FALSE(fsfaults::script().slept.empty());
  }
  EXPECT_EQ(read_file(faulty), read_file(clean));
}

TEST_F(JournalFaultTest, EnospcOnRecordThrowsIoErrorNamingTheJournal) {
  const CampaignKey key = campaign_key(demo_spec());
  const std::string path = dir_ + "/campaign.journal";
  CampaignJournal journal(path, key);
  journal.record(demo_trial(0));
  fsfaults::ScopedFaults faults;
  fsfaults::script().fail_write = 1;
  fsfaults::script().write_errno = ENOSPC;
  try {
    journal.record(demo_trial(1));
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.op(), "write");
    EXPECT_EQ(e.path(), path);
    EXPECT_EQ(e.code(), ENOSPC);
  }
}

TEST_F(JournalFaultTest, SealSurvivesTransientFsyncTrouble) {
  const CampaignKey key = campaign_key(demo_spec());
  const ShardPlan shard{1, 2};
  const std::string path = dir_ + "/seal.journal";
  {
    CampaignJournal journal(path, key, shard);
    journal.record(demo_trial(1));
    fsfaults::ScopedFaults faults;
    fsfaults::script().fail_fsync = 3;
    journal.seal();
    EXPECT_TRUE(journal.sealed());
    EXPECT_EQ(fsfaults::script().slept.size(), 3u);
  }
  const LoadedJournal lj = read_journal_file(path);
  EXPECT_TRUE(lj.seal_intact());
  ASSERT_TRUE(lj.seal.has_value());
  EXPECT_EQ(lj.seal->trials, 1u);
}

}  // namespace
}  // namespace mmr::sim
