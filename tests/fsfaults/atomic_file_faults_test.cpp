// AtomicFile::commit under injected filesystem faults: transient storms
// produce byte-identical results to a clean run, permanent failures
// surface as typed IoError, and every failure path unlinks the staged
// temp file (no *.tmp.<pid> litter, satellite of the durability
// contract).
#include "common/atomic_file.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fs_ops.h"
#include "tests/fsfaults/fault_ops.h"

namespace mmr {
namespace {

class AtomicFileFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/mmr_atomic_faults_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    path_ = dir_ + "/out.json";
  }
  void TearDown() override {
    std::string cmd = "rm -rf '" + dir_ + "'";
    (void)std::system(cmd.c_str());
  }

  std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  std::vector<std::string> dir_entries() {
    std::vector<std::string> names;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      names.push_back(entry.path().filename().string());
    }
    return names;
  }

  std::string dir_, path_;
};

TEST_F(AtomicFileFaultTest, TransientStormCommitsByteIdentically) {
  const std::string content = "{\"record\": 1}\n{\"record\": 2}\n";
  // Reference bytes from a clean commit.
  AtomicFile::write(path_ + ".clean", content);
  const std::string expected = read_file(path_ + ".clean");
  // Same commit under an EINTR storm across open/write/fsync/rename.
  {
    fsfaults::ScopedFaults faults;
    fsfaults::script().fail_open = 2;
    fsfaults::script().fail_write = 2;
    fsfaults::script().fail_fsync = 1;
    fsfaults::script().fail_rename = 1;
    AtomicFile::write(path_, content);
    EXPECT_FALSE(fsfaults::script().slept.empty());
  }
  EXPECT_EQ(read_file(path_), expected);
  EXPECT_EQ(read_file(path_), content);
}

TEST_F(AtomicFileFaultTest, EnospcThrowsTypedIoErrorAndLeavesNoLitter) {
  std::ofstream(path_) << "previous content\n";
  fsfaults::ScopedFaults faults;
  fsfaults::script().fail_write = 1;
  fsfaults::script().write_errno = ENOSPC;
  try {
    AtomicFile::write(path_, "replacement that will not fit");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.op(), "write");
    EXPECT_EQ(e.code(), ENOSPC);
    // The failing path is the staged temp next to the destination.
    EXPECT_NE(e.path().find(path_ + ".tmp."), std::string::npos);
  }
  // Destination untouched, staged temp unlinked.
  EXPECT_EQ(read_file(path_), "previous content\n");
  EXPECT_EQ(dir_entries().size(), 1u);
  EXPECT_EQ(dir_entries()[0], "out.json");
}

TEST_F(AtomicFileFaultTest, RenameFailureUnlinksTheStagedTemp) {
  std::ofstream(path_) << "previous content\n";
  fsfaults::ScopedFaults faults;
  fsfaults::script().fail_rename = 100;  // exhausts the retry budget
  EXPECT_THROW(AtomicFile::write(path_, "new content"), IoError);
  EXPECT_EQ(read_file(path_), "previous content\n");
  EXPECT_EQ(dir_entries().size(), 1u) << "staged temp file littered";
}

TEST_F(AtomicFileFaultTest, RepeatedFailedCommitsNeverAccumulateTemps) {
  fsfaults::ScopedFaults faults;
  for (int i = 0; i < 5; ++i) {
    fsfaults::script().fail_fsync = 100;
    fsfaults::script().fsync_errno = EIO;
    EXPECT_THROW(AtomicFile::write(path_, "content"), IoError);
  }
  EXPECT_TRUE(dir_entries().empty());
}

}  // namespace
}  // namespace mmr
