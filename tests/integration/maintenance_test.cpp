#include "core/maintenance.h"

#include <gtest/gtest.h>

#include "sim/runner.h"
#include "sim/scenario.h"

namespace mmr::core {
namespace {

sim::ScenarioConfig cfg(std::uint64_t seed, bool sparse = false) {
  sim::ScenarioConfig c;
  c.seed = seed;
  c.sparse_room = sparse;
  return c;
}

TEST(Maintenance, EstablishesMultibeamOnStart) {
  sim::LinkWorld world = sim::make_indoor_world(cfg(3));
  auto ctrl = sim::make_mmreliable(world, cfg(3), 2);
  const auto link = world.probe_interface();
  ctrl->start(0.0, link);
  EXPECT_EQ(ctrl->num_active_beams(), 2u);
  EXPECT_EQ(ctrl->trainings(), 1);
  EXPECT_FALSE(ctrl->link_available(0.0));  // SSB burst in flight
  EXPECT_TRUE(ctrl->link_available(0.1));
}

TEST(Maintenance, StaticLinkStableForOneSecond) {
  sim::LinkWorld world = sim::make_indoor_world(cfg(5));
  auto ctrl = sim::make_mmreliable(world, cfg(5), 2);
  sim::RunConfig rc;
  rc.duration_s = 1.0;
  const auto r = sim::run_experiment(world, *ctrl, rc);
  EXPECT_EQ(ctrl->trainings(), 1);  // never needed a retrain
  EXPECT_GT(r.summary.reliability, 0.98);
  // SNR should never collapse on a static link.
  for (const auto& s : r.samples) {
    if (s.available) EXPECT_GT(s.snr_db, 20.0) << "at t=" << s.t_s;
  }
}

TEST(Maintenance, BlockageMarksBeamAndReallocates) {
  sim::LinkWorld world = sim::make_indoor_world(cfg(7), {0, 0}, 0.0);
  auto ctrl = sim::make_mmreliable(world, cfg(7), 2);
  const auto link = world.probe_interface();
  // Warm up.
  for (int i = 0; i < 40; ++i) {
    const double t = i * 2.5e-3;
    world.set_time(t);
    if (i == 0) ctrl->start(t, link); else ctrl->step(t, link);
  }
  // Park a deep blocker on the LOS.
  channel::GeometricBlocker::Config bc;
  bc.start = {3.75, 6.2};
  bc.velocity = {0.0, 0.0};
  bc.depth_db = 30.0;
  world.add_blocker(channel::GeometricBlocker(bc));
  for (int i = 40; i < 80; ++i) {
    const double t = i * 2.5e-3;
    world.set_time(t);
    ctrl->step(t, link);
  }
  // The LOS beam (index of angle nearest 0) should be flagged blocked.
  bool any_blocked = false;
  for (bool b : ctrl->blocked()) any_blocked |= b;
  EXPECT_TRUE(any_blocked);
  // And the link must still be above outage via the remaining beam(s).
  EXPECT_GT(world.true_snr_db(ctrl->tx_weights()), 6.0);
}

TEST(Maintenance, RecoversBlockedBeamAfterBlockerLeaves) {
  sim::LinkWorld world = sim::make_indoor_world(cfg(9));
  auto ctrl = sim::make_mmreliable(world, cfg(9), 2);
  const auto link = world.probe_interface();
  // Blocker crosses the LOS between t=0.3 and t=0.6.
  world.add_blocker(
      sim::crossing_blocker({0.5, 6.2}, {7.0, 6.2}, 0.45, 1.5));
  int blocked_during = 0, blocked_after = 0;
  for (int i = 0; i < 400; ++i) {
    const double t = i * 2.5e-3;
    world.set_time(t);
    if (i == 0) ctrl->start(t, link); else ctrl->step(t, link);
    int nb = 0;
    for (bool b : ctrl->blocked()) nb += b;
    if (t > 0.40 && t < 0.50) blocked_during += nb;
    if (t > 0.9) blocked_after += nb;
  }
  EXPECT_GT(blocked_during, 0);
  EXPECT_EQ(blocked_after, 0);  // recovered
}

TEST(Maintenance, TracksTranslatingUser) {
  sim::LinkWorld world = sim::make_indoor_world(cfg(11), {0.0, -1.0});
  auto ctrl = sim::make_mmreliable(world, cfg(11), 2);
  sim::RunConfig rc;
  rc.duration_s = 1.0;
  const auto r = sim::run_experiment(world, *ctrl, rc);
  EXPECT_GT(r.summary.reliability, 0.95);
  // Mean SNR while available stays healthy.
  double acc = 0.0;
  int n = 0;
  for (const auto& s : r.samples) {
    if (s.available) {
      acc += s.snr_db;
      ++n;
    }
  }
  EXPECT_GT(acc / n, 24.0);
}

TEST(Maintenance, RetrainsAfterTotalSustainedOutage) {
  sim::LinkWorld world = sim::make_indoor_world(cfg(13), {0, 0});
  auto ctrl = sim::make_mmreliable(world, cfg(13), 2);
  const auto link = world.probe_interface();
  for (int i = 0; i < 20; ++i) {
    const double t = i * 2.5e-3;
    world.set_time(t);
    if (i == 0) ctrl->start(t, link); else ctrl->step(t, link);
  }
  // Giant absorber right in front of the gNB: every path gone.
  channel::GeometricBlocker::Config bc;
  bc.start = {0.8, 6.2};
  bc.velocity = {0.0, 0.0};
  bc.radius_m = 1.2;
  bc.depth_db = 60.0;
  world.add_blocker(channel::GeometricBlocker(bc));
  for (int i = 20; i < 100; ++i) {
    const double t = i * 2.5e-3;
    world.set_time(t);
    ctrl->step(t, link);
  }
  EXPECT_GE(ctrl->trainings(), 2);
}

TEST(Maintenance, ProbeOverheadStaysLow) {
  sim::LinkWorld world = sim::make_indoor_world(cfg(15));
  auto ctrl = sim::make_mmreliable(world, cfg(15), 2);
  sim::RunConfig rc;
  rc.duration_s = 1.0;
  sim::run_experiment(world, *ctrl, rc);
  // Management airtime (excluding the one training) should be a small
  // fraction of the second (paper: sub-1% in steady state).
  const double mgmt = ctrl->management_airtime_s();
  EXPECT_LT(mgmt, 0.06);  // includes the 5 ms SSB burst
}

TEST(Maintenance, ThreeBeamUsesThreeActive) {
  sim::LinkWorld world = sim::make_indoor_world(cfg(17));
  auto ctrl = sim::make_mmreliable(world, cfg(17), 3);
  const auto link = world.probe_interface();
  ctrl->start(0.0, link);
  EXPECT_EQ(ctrl->num_active_beams(), 3u);
}

}  // namespace
}  // namespace mmr::core
