// The sweep engine's headline guarantee: a parallel sweep produces
// BIT-IDENTICAL per-trial results and aggregates to a serial sweep of the
// same seed. Runs a 32-trial randomized blockage campaign with jobs=1 and
// jobs=4 and compares every double with exact equality.
#include "sim/sweep.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "sim/runner.h"
#include "sim/scenario.h"

namespace mmr::sim {
namespace {

// One randomized blockage trial: room geometry, blocker crossing time,
// and walking speed all come from the trial's seed-derived stream.
core::LinkSummary blockage_trial(TrialContext& ctx) {
  ScenarioConfig cfg;
  cfg.sparse_room = true;
  cfg.tx_power_dbm = 14.0;
  cfg.seed = ctx.stream_seed;
  LinkWorld world = make_indoor_world(cfg);
  world.add_blocker(crossing_blocker({0.5, 6.2}, {7.0, 6.2},
                                     ctx.rng.uniform(0.05, 0.15),
                                     ctx.rng.uniform(0.8, 2.0), 30.0));
  auto ctrl = make_mmreliable(world, cfg, 2);
  RunConfig rc;
  rc.duration_s = 0.25;
  return run_experiment(world, *ctrl, rc).summary;
}

std::vector<SweepTrial<core::LinkSummary>> run_sweep(std::size_t jobs) {
  SweepConfig sc;
  sc.num_trials = 32;
  sc.jobs = jobs;
  sc.base_seed = 2021;
  SweepRunner runner(sc);
  return runner.run(blockage_trial);
}

TEST(SweepDeterminism, ParallelBitIdenticalToSerial) {
  const auto serial = run_sweep(1);
  const auto parallel = run_sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].index, i);
    EXPECT_EQ(parallel[i].index, i);
    // Exact bit equality, not NEAR: scheduling must not perturb a single
    // floating-point operation of any trial.
    EXPECT_EQ(serial[i].value.reliability, parallel[i].value.reliability)
        << "trial " << i;
    EXPECT_EQ(serial[i].value.mean_throughput_bps,
              parallel[i].value.mean_throughput_bps)
        << "trial " << i;
    EXPECT_EQ(serial[i].value.mean_spectral_efficiency,
              parallel[i].value.mean_spectral_efficiency)
        << "trial " << i;
    EXPECT_EQ(serial[i].value.throughput_reliability_product,
              parallel[i].value.throughput_reliability_product)
        << "trial " << i;
    EXPECT_EQ(serial[i].value.num_samples, parallel[i].value.num_samples)
        << "trial " << i;
  }
}

TEST(SweepDeterminism, AggregateBitIdenticalAcrossJobs) {
  const auto agg1 = summarize_sweep(run_sweep(1));
  const auto agg4 = summarize_sweep(run_sweep(4));
  EXPECT_EQ(agg1.mean_reliability, agg4.mean_reliability);
  EXPECT_EQ(agg1.median_reliability, agg4.median_reliability);
  EXPECT_EQ(agg1.p25_reliability, agg4.p25_reliability);
  EXPECT_EQ(agg1.p75_reliability, agg4.p75_reliability);
  EXPECT_EQ(agg1.median_outage, agg4.median_outage);
  EXPECT_EQ(agg1.mean_throughput_bps, agg4.mean_throughput_bps);
  EXPECT_EQ(agg1.median_throughput_bps, agg4.median_throughput_bps);
  EXPECT_EQ(agg1.mean_trp_bps, agg4.mean_trp_bps);
  EXPECT_EQ(agg1.median_trp_bps, agg4.median_trp_bps);
}

TEST(SweepDeterminism, AggregateIndependentOfCompletionOrder) {
  // summarize_sweep walks trials by index; a shuffled-then-reindexed copy
  // (what any completion order reduces to) must aggregate identically.
  auto trials = run_sweep(4);
  auto shuffled = trials;
  std::mt19937 shuffle_rng(99);
  std::shuffle(shuffled.begin(), shuffled.end(), shuffle_rng);
  std::sort(shuffled.begin(), shuffled.end(),
            [](const auto& a, const auto& b) { return a.index < b.index; });
  const auto agg_a = summarize_sweep(trials);
  const auto agg_b = summarize_sweep(shuffled);
  EXPECT_EQ(agg_a.mean_reliability, agg_b.mean_reliability);
  EXPECT_EQ(agg_a.mean_throughput_bps, agg_b.mean_throughput_bps);
  EXPECT_EQ(agg_a.mean_trp_bps, agg_b.mean_trp_bps);
}

TEST(SweepDeterminism, RepeatedRunsIdentical) {
  const auto a = run_sweep(4);
  const auto b = run_sweep(4);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value.mean_throughput_bps, b[i].value.mean_throughput_bps);
    EXPECT_EQ(a[i].value.reliability, b[i].value.reliability);
  }
}

TEST(SweepDeterminism, TrialExceptionPropagates) {
  SweepConfig sc;
  sc.num_trials = 8;
  sc.jobs = 4;
  SweepRunner runner(sc);
  EXPECT_THROW(runner.run([](TrialContext& ctx) -> int {
    if (ctx.index == 3) throw std::runtime_error("trial failed");
    return 0;
  }),
               std::runtime_error);
}

TEST(SweepDeterminism, TimingIsPopulated) {
  SweepConfig sc;
  sc.num_trials = 4;
  sc.jobs = 2;
  SweepRunner runner(sc);
  (void)runner.run(blockage_trial);
  EXPECT_GT(runner.timing().wall_s, 0.0);
  EXPECT_GT(runner.timing().serial_equivalent_s, 0.0);
  EXPECT_EQ(runner.timing().jobs, 2u);
}

}  // namespace
}  // namespace mmr::sim
