// End-to-end reproduction checks: the paper's headline effects must hold
// in the full simulation with all impairments active.
#include <gtest/gtest.h>

#include "baselines/oracle.h"
#include "core/beam_training.h"
#include "core/multibeam.h"
#include "core/probing.h"
#include "sim/runner.h"
#include "sim/scenario.h"

namespace mmr {
namespace {

sim::ScenarioConfig cfg(std::uint64_t seed, bool sparse = false) {
  sim::ScenarioConfig c;
  c.seed = seed;
  c.sparse_room = sparse;
  return c;
}

TEST(EndToEnd, ConstructiveMultibeamBeatsSingleBeam) {
  // Paper Fig. 15d: 2-beam constructive combining gains ~1 dB over a
  // single beam on a static unblocked indoor link.
  sim::LinkWorld world = sim::make_indoor_world(cfg(7));
  const array::Ula ula = world.config().tx_ula;
  const auto link = world.probe_interface();
  core::TrainingConfig tc;
  tc.top_k = 2;
  const auto training = core::exhaustive_training(
      sim::sector_codebook(ula), link.csi, tc);
  ASSERT_EQ(training.beams.size(), 2u);
  const auto powers = training.powers();
  const auto rel = core::estimate_relative_channels(
      ula, training.angles(), link.csi, &powers);
  const auto multi = core::synthesize_multibeam(
      ula, core::constructive_components(training.angles(),
                                         {rel[0].ratio, rel[1].ratio}));
  const auto single = core::synthesize_multibeam(
      ula, {{training.beams[0].angle_rad, cplx{1.0, 0.0}}});
  const double gain =
      world.true_snr_db(multi.weights) - world.true_snr_db(single.weights);
  EXPECT_GT(gain, 0.4);
  EXPECT_LT(gain, 3.1);
}

TEST(EndToEnd, OracleUpperBoundsMultibeam) {
  sim::LinkWorld world = sim::make_indoor_world(cfg(9));
  auto ctrl = sim::make_mmreliable(world, cfg(9), 3);
  const auto link = world.probe_interface();
  ctrl->start(0.0, link);
  baselines::Oracle oracle([&] { return world.true_per_antenna_channel(); });
  oracle.start(0.0, link);
  EXPECT_GE(world.true_snr_db(oracle.tx_weights()) + 0.5,
            world.true_snr_db(ctrl->tx_weights()));
}

TEST(EndToEnd, ThreeBeamsCloserToOracleThanTwo) {
  // Paper Fig. 15d: 3-beam reaches ~92% of the oracle.
  sim::LinkWorld world = sim::make_indoor_world(cfg(11));
  auto two = sim::make_mmreliable(world, cfg(11), 2);
  auto three = sim::make_mmreliable(world, cfg(11), 3);
  const auto link = world.probe_interface();
  two->start(0.0, link);
  three->start(0.0, link);
  baselines::Oracle oracle([&] { return world.true_per_antenna_channel(); });
  oracle.start(0.0, link);
  const double g2 = world.true_snr_db(two->tx_weights());
  const double g3 = world.true_snr_db(three->tx_weights());
  const double go = world.true_snr_db(oracle.tx_weights());
  EXPECT_GE(g3 + 0.3, g2);   // more beams never much worse
  EXPECT_GT(g3, go - 1.5);   // close to oracle
}

TEST(EndToEnd, BlockageResilience) {
  // Paper Fig. 16: when a walker crosses the link, the multi-beam SNR
  // dips far less than the single-beam SNR; the single beam goes into
  // outage in the sparse room while the multi-beam survives.
  auto min_snr_during_crossing = [](core::BeamController& ctrl,
                                    sim::LinkWorld& world) {
    const auto link = world.probe_interface();
    double min_snr = 1e9;
    for (int i = 0; i < 400; ++i) {
      const double t = i * 2.5e-3;
      world.set_time(t);
      if (i == 0) ctrl.start(t, link); else ctrl.step(t, link);
      if (t > 0.3 && t < 0.7) {
        min_snr = std::min(min_snr, world.true_snr_db(ctrl.tx_weights()));
      }
    }
    return min_snr;
  };

  sim::LinkWorld w1 = sim::make_indoor_world(cfg(13, true));
  w1.add_blocker(sim::crossing_blocker({0.5, 6.2}, {7.0, 6.2}, 0.5, 1.0, 30.0));
  auto mmr_ctrl = sim::make_mmreliable(w1, cfg(13, true), 2);
  const double min_multi = min_snr_during_crossing(*mmr_ctrl, w1);

  sim::LinkWorld w2 = sim::make_indoor_world(cfg(13, true));
  w2.add_blocker(sim::crossing_blocker({0.5, 6.2}, {7.0, 6.2}, 0.5, 1.0, 30.0));
  // A FROZEN single beam (no reaction): the paper's Fig. 16 comparison.
  baselines::ReactiveConfig rc_cfg;
  rc_cfg.outage_power_linear = 0.0;  // never retrains
  baselines::ReactiveSingleBeam frozen(
      w2.config().tx_ula, sim::sector_codebook(w2.config().tx_ula), rc_cfg);
  const double min_single = min_snr_during_crossing(frozen, w2);

  EXPECT_GT(min_multi, min_single + 6.0);
  EXPECT_GT(min_multi, 6.0);   // multi-beam stays out of outage
  EXPECT_LT(min_single, 8.0);  // single-beam dives toward/below outage
}

TEST(EndToEnd, MmreliableBeatsReactiveUnderBlockageAndMobility) {
  // Paper Fig. 18c / Section 6.2 protocol: 1 s runs where the user moves
  // AND a human blocker crosses the link midway; mmReliable must post a
  // clearly higher throughput-reliability product than the reactive
  // baseline. Tight link margin so a blocked single beam truly decodes
  // nothing (the paper's regime).
  double mmr_trp = 0.0, reactive_trp = 0.0;
  const int reps = 3;
  for (int rep = 0; rep < reps; ++rep) {
    auto c = cfg(100 + rep, true);
    c.tx_power_dbm = 14.0;
    // Blocker reaches the LOS well after training and clears before the
    // run ends (full depth for ~300-500 ms, the paper's range).
    const double crossing = 0.35 + 0.1 * rep;
    const double speed = 1.0 + 0.2 * rep;
    for (int which = 0; which < 2; ++which) {
      sim::LinkWorld world = sim::make_indoor_world(c, {0.0, -0.7});
      world.add_blocker(sim::crossing_blocker({0.5, 6.2}, {7.0, 6.2},
                                              crossing, speed, 30.0));
      std::unique_ptr<core::BeamController> ctrl;
      if (which == 0) {
        ctrl = sim::make_mmreliable(world, c, 2);
      } else {
        ctrl = sim::make_reactive(world, c);
      }
      sim::RunConfig rc;
      const auto r = sim::run_experiment(world, *ctrl, rc);
      (which == 0 ? mmr_trp : reactive_trp) +=
          r.summary.throughput_reliability_product;
    }
  }
  EXPECT_GT(mmr_trp, reactive_trp * 1.1);
}

}  // namespace
}  // namespace mmr
