#include "sim/world.h"

#include <gtest/gtest.h>

#include "array/geometry.h"
#include "common/angles.h"
#include "sim/scenario.h"

namespace mmr::sim {
namespace {

ScenarioConfig cfg(std::uint64_t seed) {
  ScenarioConfig c;
  c.seed = seed;
  return c;
}

TEST(World, DeterministicAcrossRunsWithSameSeed) {
  LinkWorld a = make_indoor_world(cfg(3));
  LinkWorld b = make_indoor_world(cfg(3));
  const auto la = a.probe_interface();
  const auto lb = b.probe_interface();
  const CVec w = array::single_beam_weights(a.config().tx_ula, 0.0);
  const CVec ca = la.csi(w);
  const CVec cb = lb.csi(w);
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t k = 0; k < ca.size(); ++k) {
    EXPECT_EQ(ca[k], cb[k]);
  }
}

TEST(World, ProbesReflectTruePowerAtHighSnr) {
  LinkWorld world = make_indoor_world(cfg(5));
  const auto link = world.probe_interface();
  const CVec w = array::single_beam_weights(world.config().tx_ula, 0.0);
  const double truth = world.true_power(w);
  double measured = 0.0;
  const int reps = 10;
  for (int i = 0; i < reps; ++i) {
    const CVec csi = link.csi(w);
    double p = 0.0;
    for (const cplx& h : csi) p += std::norm(h);
    measured += p / static_cast<double>(csi.size());
  }
  measured /= reps;
  EXPECT_NEAR(measured / truth, 1.0, 0.05);
}

TEST(World, MobilityChangesPathAngles) {
  LinkWorld world = make_indoor_world(cfg(7), {0.0, -1.5});
  double aod0 = 0.0, aod1 = 0.0;
  world.set_time(0.0);
  for (const auto& p : world.paths()) {
    if (p.is_los) aod0 = p.aod_rad;
  }
  world.set_time(1.0);
  for (const auto& p : world.paths()) {
    if (p.is_los) aod1 = p.aod_rad;
  }
  EXPECT_GT(std::abs(aod1 - aod0), deg_to_rad(5.0));
}

TEST(World, BlockerAttenuatesLosOnly) {
  LinkWorld world = make_indoor_world(cfg(9));
  channel::GeometricBlocker::Config bc;
  bc.start = {3.75, 6.2};  // on the LOS line
  bc.velocity = {0.0, 0.0};
  bc.depth_db = 26.0;
  world.add_blocker(channel::GeometricBlocker(bc));
  for (const auto& p : world.paths()) {
    if (p.is_los) {
      EXPECT_NEAR(p.blockage_db, 26.0, 1e-9);
    } else if (std::abs(rad_to_deg(p.aod_rad)) > 10.0) {
      EXPECT_LT(p.blockage_db, 1.0);
    }
  }
}

TEST(World, EventProcessAppliedByStableIndex) {
  LinkWorld world = make_indoor_world(cfg(11));
  channel::BlockageEventProcess::Config ec;
  ec.event_rate_hz = 1000.0;  // force an event right away
  ec.los_bias = 1.0;
  ec.onset_s = 0.0;
  channel::BlockageEventProcess events(ec, Rng(1));
  events.generate(1.0, 3);
  world.set_event_process(std::move(events));
  world.set_time(0.05);
  bool los_blocked = false;
  for (const auto& p : world.paths()) {
    if (p.is_los && p.blockage_db > 10.0) los_blocked = true;
  }
  EXPECT_TRUE(los_blocked);
}

TEST(World, SnrMatchesBudgetRoundTrip) {
  LinkWorld world = make_indoor_world(cfg(13));
  const CVec w = array::single_beam_weights(world.config().tx_ula, 0.0);
  const double snr = world.true_snr_db(w);
  EXPECT_NEAR(world.config().budget.snr_db(world.true_power(w)), snr, 1e-12);
  // Indoor 6.5 m with 8-element gain: sane SNR range.
  EXPECT_GT(snr, 20.0);
  EXPECT_LT(snr, 40.0);
}

TEST(World, PerAntennaChannelSize) {
  LinkWorld world = make_indoor_world(cfg(15));
  EXPECT_EQ(world.true_per_antenna_channel().size(),
            world.config().tx_ula.num_elements);
}

TEST(World, OutdoorLinkHasLowerSnrAtDistance) {
  const double snr40 =
      [&] {
        LinkWorld w = make_outdoor_world(cfg(17), 40.0);
        return w.true_snr_db(
            array::single_beam_weights(w.config().tx_ula, 0.0));
      }();
  const double snr80 =
      [&] {
        LinkWorld w = make_outdoor_world(cfg(17), 80.0);
        return w.true_snr_db(
            array::single_beam_weights(w.config().tx_ula, 0.0));
      }();
  EXPECT_GT(snr40, snr80 + 4.0);
  EXPECT_GT(snr80, 6.0);  // still a viable link (paper: 80 m works)
}

}  // namespace
}  // namespace mmr::sim
