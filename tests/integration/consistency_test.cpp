// Cross-module consistency properties: the kind of invariants that break
// silently when one module's convention drifts.
#include <gtest/gtest.h>

#include <cmath>

#include "array/weights.h"
#include "channel/wideband.h"
#include "common/angles.h"
#include "common/rng.h"
#include "phy/mcs.h"
#include "phy/ofdm.h"
#include "phy/qam.h"
#include "sim/runner.h"
#include "sim/scenario.h"

namespace mmr {
namespace {

TEST(Consistency, CsiAndCirDescribeTheSameChannel) {
  // effective_csi and effective_cir are two views of one channel: the
  // centered-frequency DFT of the sinc-sampled CIR must reproduce the CSI.
  const array::Ula ula{8, 0.5};
  const channel::WidebandSpec spec{28e9, 400e6, 64};
  channel::Path p0;
  p0.aod_rad = 0.0;
  p0.gain = cplx{1e-4, 0.0};
  channel::Path p1;
  p1.aod_rad = deg_to_rad(25.0);
  p1.gain = std::polar(0.5e-4, 0.9);
  p1.delay_s = 6.25e-9;  // a few taps of excess delay
  const std::vector<channel::Path> paths{p0, p1};
  const CVec w = array::single_beam_weights(ula, deg_to_rad(10.0));
  const auto rx = channel::RxFrontend::omni();

  const CVec csi = channel::effective_csi(paths, ula, w, spec, rx);
  const CVec cir = channel::effective_cir(paths, ula, w, spec, 64, rx);

  const double ts = spec.sample_period();
  for (std::size_t k = 0; k < spec.num_subcarriers; k += 7) {
    const double f = spec.freq_offset(k);
    cplx acc{};
    for (std::size_t n = 0; n < cir.size(); ++n) {
      const double ang = -2.0 * kPi * f * static_cast<double>(n) * ts;
      acc += cir[n] * cplx(std::cos(ang), std::sin(ang));
    }
    EXPECT_NEAR(std::abs(acc - csi[k]) / std::abs(csi[k]), 0.0, 0.05)
        << "subcarrier " << k;
  }
}

TEST(Consistency, ControllerAlwaysTransmitsUnitTrp) {
  // FCC story of Section 1: the controller must never exceed the
  // single-beam total radiated power, in any state (blocked, realigned,
  // retrained, quantized).
  sim::ScenarioConfig cfg;
  cfg.seed = 23;
  cfg.sparse_room = true;
  sim::LinkWorld world = sim::make_indoor_world(cfg, {0.0, -1.0});
  world.add_blocker(sim::crossing_blocker({0.5, 6.2}, {7.0, 6.2}, 0.4, 1.5));
  auto ctrl = sim::make_mmreliable(world, cfg, 2);
  const auto link = world.probe_interface();
  for (int i = 0; i < 300; ++i) {
    const double t = i * 2.5e-3;
    world.set_time(t);
    if (i == 0) ctrl->start(t, link); else ctrl->step(t, link);
    EXPECT_NEAR(array::total_radiated_power(ctrl->tx_weights()), 1.0, 1e-9)
        << "tick " << i;
  }
}

TEST(Consistency, FullRunsAreDeterministic) {
  auto run_once = [] {
    sim::ScenarioConfig cfg;
    cfg.seed = 29;
    sim::LinkWorld world = sim::make_indoor_world(cfg, {0.0, -0.8});
    world.add_blocker(sim::crossing_blocker({0.5, 6.2}, {7.0, 6.2}, 0.5));
    auto ctrl = sim::make_mmreliable(world, cfg, 2);
    sim::RunConfig rc;
    rc.duration_s = 0.5;
    return sim::run_experiment(world, *ctrl, rc);
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].snr_db, b.samples[i].snr_db) << "tick " << i;
    EXPECT_EQ(a.samples[i].available, b.samples[i].available);
  }
}

struct McsWaveformCase {
  phy::Modulation modulation;
  double min_snr_db;
};

class McsWaveformTest : public ::testing::TestWithParam<McsWaveformCase> {};

TEST_P(McsWaveformTest, UncodedSerAtThresholdIsCorrectable) {
  // The MCS table promises each scheme decodes at its threshold SNR.
  // Through the actual OFDM waveform, the UNCODED symbol error rate at
  // that SNR must be in the range forward error correction handles
  // (< ~20%), and must improve markedly 4 dB above threshold.
  const auto param = GetParam();
  Rng rng(31);
  const phy::OfdmConfig cfg{64, 16};
  auto ser_at = [&](double snr_db) {
    const double noise_var = std::pow(10.0, -snr_db / 10.0);
    int errors = 0, total = 0;
    for (int frame = 0; frame < 30; ++frame) {
      CVec grid(cfg.fft_size);
      std::vector<unsigned> tx_idx(cfg.fft_size);
      for (std::size_t k = 0; k < cfg.fft_size; ++k) {
        tx_idx[k] = static_cast<unsigned>(
            rng.uniform_index(phy::constellation_size(param.modulation)));
        grid[k] = phy::map_symbol(param.modulation, tx_idx[k]);
      }
      const auto result =
          phy::run_waveform_link(cfg, grid, {{1.0, 0.0}}, noise_var, rng);
      for (std::size_t k = 0; k < cfg.fft_size; ++k) {
        errors += phy::demap_symbol(param.modulation,
                                    result.equalized[k]) != tx_idx[k];
        ++total;
      }
    }
    return static_cast<double>(errors) / total;
  };
  // Single-shot LS pilot estimation costs ~3 dB of effective SNR (a real
  // receiver averages pilots over many symbols), so the raw SER bound is
  // looser than the AWGN figure -- but still inside what rate-1/2..3/4
  // coding corrects, and it must fall steeply above threshold.
  const double at_threshold = ser_at(param.min_snr_db);
  const double above = ser_at(param.min_snr_db + 4.0);
  EXPECT_LT(at_threshold, 0.35);
  EXPECT_LT(above, at_threshold * 0.5 + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, McsWaveformTest,
    ::testing::Values(McsWaveformCase{phy::Modulation::kQpsk, 6.0},
                      McsWaveformCase{phy::Modulation::kQam16, 12.0},
                      McsWaveformCase{phy::Modulation::kQam64, 18.0},
                      McsWaveformCase{phy::Modulation::kQam256, 26.0}));

TEST(Consistency, ControllerQuantizationCostsLittle) {
  // 6-bit phase / 0.5 dB quantization inside the live controller must not
  // change the established link materially.
  sim::ScenarioConfig cfg;
  cfg.seed = 37;
  auto run_with = [&](array::QuantizationSpec spec) {
    sim::LinkWorld world = sim::make_indoor_world(cfg);
    core::MaintenanceConfig mc;
    mc.max_beams = 2;
    mc.bandwidth_hz = world.config().spec.bandwidth_hz;
    mc.outage_power_linear = world.power_for_snr(6.0);
    mc.quantization = spec;
    core::MmReliableController ctrl(
        world.config().tx_ula, sim::sector_codebook(world.config().tx_ula),
        mc);
    const auto link = world.probe_interface();
    ctrl.start(0.0, link);
    return world.true_snr_db(ctrl.tx_weights());
  };
  const double ideal = run_with(array::QuantizationSpec::ideal());
  const double testbed = run_with(array::QuantizationSpec::paper_testbed());
  EXPECT_NEAR(testbed, ideal, 0.3);
}

TEST(Consistency, TrackingDisabledFreezesAngles) {
  sim::ScenarioConfig cfg;
  cfg.seed = 41;
  sim::LinkWorld world = sim::make_indoor_world(cfg, {0.0, -1.5});
  core::MaintenanceConfig mc;
  mc.max_beams = 2;
  mc.bandwidth_hz = world.config().spec.bandwidth_hz;
  mc.outage_power_linear = world.power_for_snr(6.0);
  mc.enable_tracking = false;
  core::MmReliableController ctrl(
      world.config().tx_ula, sim::sector_codebook(world.config().tx_ula), mc);
  const auto link = world.probe_interface();
  std::vector<double> initial;
  for (int i = 0; i < 200; ++i) {
    const double t = i * 2.5e-3;
    world.set_time(t);
    if (i == 0) {
      ctrl.start(t, link);
      initial = ctrl.beam_angles();
    } else {
      ctrl.step(t, link);
    }
  }
  // No retraining happened (the link never collapsed fully), so angles
  // must be exactly the initial ones.
  ASSERT_EQ(ctrl.trainings(), 1);
  ASSERT_EQ(ctrl.beam_angles().size(), initial.size());
  for (std::size_t k = 0; k < initial.size(); ++k) {
    EXPECT_EQ(ctrl.beam_angles()[k], initial[k]);
  }
}

}  // namespace
}  // namespace mmr
