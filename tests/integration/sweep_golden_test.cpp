// Golden-value regression for the figure pipeline: a small fixed-seed
// indoor blockage sweep whose per-trial and aggregate numbers are pinned.
// A refactor of runner.cpp / world.cpp / the channel stack that shifts any
// of these silently shifts every Fig. 15-18 reproduction, so it must fail
// here first. Regenerate the constants ONLY for a deliberate, documented
// behaviour change (run the sweep below and paste the %.17g values).
#include <gtest/gtest.h>

#include <array>

#include "baselines/reactive_single_beam.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "sim/sweep.h"

namespace mmr::sim {
namespace {

// Fixed campaign: sparse room at 14 dBm (tight margin), one walking
// blocker crossing after the training transient, frozen single beam (so
// blockage turns into measurable outage). All randomness comes from the
// trial's seed-derived stream.
std::vector<SweepTrial<core::LinkSummary>> golden_sweep(std::size_t jobs) {
  SweepConfig sc;
  sc.num_trials = 6;
  sc.jobs = jobs;
  sc.base_seed = 424242;
  SweepRunner runner(sc);
  return runner.run([](TrialContext& ctx) {
    ScenarioConfig cfg;
    cfg.sparse_room = true;
    cfg.tx_power_dbm = 14.0;
    cfg.seed = ctx.stream_seed;
    LinkWorld world = make_indoor_world(cfg);
    world.add_blocker(crossing_blocker({0.5, 6.2}, {7.0, 6.2},
                                       ctx.rng.uniform(0.25, 0.45),
                                       ctx.rng.uniform(0.8, 2.0), 30.0));
    baselines::ReactiveConfig rcfg;
    rcfg.outage_power_linear = 0.0;  // frozen beam: blockage = outage
    baselines::ReactiveSingleBeam ctrl(
        world.config().tx_ula, sector_codebook(world.config().tx_ula), rcfg);
    RunConfig rc;
    rc.duration_s = 0.6;
    return run_experiment(world, ctrl, rc).summary;
  });
}

struct GoldenTrial {
  double reliability;
  double mean_throughput_bps;
  double trp_bps;
};

constexpr std::array<GoldenTrial, 6> kGoldenTrials = {{
    {0.37916666666666665, 626866583.33333325, 237686912.84722218},
    {0.37916666666666665, 647512833.33333337, 245515282.6388889},
    {0.19166666666666668, 301468416.66666669, 57781446.527777784},
    {0.3125, 539090999.99999988, 168465937.49999997},
    {0.39583333333333331, 672586833.33333325, 266232288.19444439},
    {0.9916666666666667, 1310348666.6666667, 1299429094.4444447},
}};

// Aggregates (index-ordered reduction over the trials above).
constexpr double kGoldenMedianThroughputBps = 637189708.33333325;
constexpr double kGoldenMedianOutage = 0.62083333333333335;
constexpr double kGoldenMeanReliability = 0.44166666666666665;
constexpr double kGoldenMedianReliability = 0.37916666666666665;
constexpr double kGoldenMeanThroughputBps = 682979055.55555546;
constexpr double kGoldenMeanTrpBps = 379185160.3587963;

// Tight relative tolerance: loose enough to survive a compiler/libm
// update, tight enough that any algorithmic change trips it.
constexpr double kRelTol = 1e-9;

void expect_close(double actual, double expected, const char* what) {
  EXPECT_NEAR(actual, expected, std::abs(expected) * kRelTol + 1e-12)
      << what;
}

TEST(SweepGolden, PerTrialValuesPinned) {
  const auto trials = golden_sweep(/*jobs=*/1);
  ASSERT_EQ(trials.size(), kGoldenTrials.size());
  for (std::size_t i = 0; i < trials.size(); ++i) {
    SCOPED_TRACE(i);
    expect_close(trials[i].value.reliability, kGoldenTrials[i].reliability,
                 "reliability");
    expect_close(trials[i].value.mean_throughput_bps,
                 kGoldenTrials[i].mean_throughput_bps, "mean_throughput_bps");
    expect_close(trials[i].value.throughput_reliability_product,
                 kGoldenTrials[i].trp_bps, "trp_bps");
    EXPECT_EQ(trials[i].value.num_samples, 240u);
  }
}

TEST(SweepGolden, AggregatesPinned) {
  const auto agg = summarize_sweep(golden_sweep(/*jobs=*/1));
  expect_close(agg.median_throughput_bps, kGoldenMedianThroughputBps,
               "median_throughput_bps");
  expect_close(agg.median_outage, kGoldenMedianOutage, "median_outage");
  expect_close(agg.mean_reliability, kGoldenMeanReliability,
               "mean_reliability");
  expect_close(agg.median_reliability, kGoldenMedianReliability,
               "median_reliability");
  expect_close(agg.mean_throughput_bps, kGoldenMeanThroughputBps,
               "mean_throughput_bps");
  expect_close(agg.mean_trp_bps, kGoldenMeanTrpBps, "mean_trp_bps");
}

TEST(SweepGolden, ParallelSweepMatchesGoldenToo) {
  // The same pins hold under a parallel schedule: golden values + the
  // determinism contract in one shot.
  const auto trials = golden_sweep(/*jobs=*/4);
  ASSERT_EQ(trials.size(), kGoldenTrials.size());
  for (std::size_t i = 0; i < trials.size(); ++i) {
    SCOPED_TRACE(i);
    expect_close(trials[i].value.reliability, kGoldenTrials[i].reliability,
                 "reliability");
    expect_close(trials[i].value.mean_throughput_bps,
                 kGoldenTrials[i].mean_throughput_bps, "mean_throughput_bps");
  }
}

}  // namespace
}  // namespace mmr::sim
