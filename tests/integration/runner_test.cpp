#include "sim/runner.h"

#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace mmr::sim {
namespace {

ScenarioConfig cfg(std::uint64_t seed) {
  ScenarioConfig c;
  c.seed = seed;
  c.sparse_room = true;
  return c;
}

TEST(Runner, ProducesExpectedSampleCount) {
  LinkWorld world = make_indoor_world(cfg(3));
  auto ctrl = make_reactive(world, cfg(3));
  RunConfig rc;
  rc.duration_s = 0.1;
  rc.tick_s = 2.5e-3;
  const RunResult r = run_experiment(world, *ctrl, rc);
  EXPECT_EQ(r.samples.size(), 40u);
  EXPECT_EQ(r.summary.num_samples, 40u);
}

TEST(Runner, InitialTrainingShowsAsUnavailable) {
  LinkWorld world = make_indoor_world(cfg(5));
  auto ctrl = make_reactive(world, cfg(5));
  RunConfig rc;
  rc.duration_s = 0.1;
  const RunResult r = run_experiment(world, *ctrl, rc);
  EXPECT_FALSE(r.samples.front().available);
  EXPECT_TRUE(r.samples.back().available);
  EXPECT_LT(r.summary.reliability, 1.0);
}

TEST(Runner, ThroughputZeroWhileUnavailable) {
  LinkWorld world = make_indoor_world(cfg(7));
  auto ctrl = make_reactive(world, cfg(7));
  RunConfig rc;
  rc.duration_s = 0.1;
  const RunResult r = run_experiment(world, *ctrl, rc);
  for (const auto& s : r.samples) {
    if (!s.available) EXPECT_EQ(s.throughput_bps, 0.0);
  }
}

TEST(Runner, SummaryConsistentWithSamples) {
  LinkWorld world = make_indoor_world(cfg(9));
  auto ctrl = make_reactive(world, cfg(9));
  RunConfig rc;
  rc.duration_s = 0.2;
  const RunResult r = run_experiment(world, *ctrl, rc);
  const auto manual = core::summarize_link(r.samples, rc.outage_snr_db,
                                           world.config().spec.bandwidth_hz);
  EXPECT_EQ(manual.reliability, r.summary.reliability);
  EXPECT_EQ(manual.mean_throughput_bps, r.summary.mean_throughput_bps);
}

TEST(Runner, ProtocolOverheadReducesThroughput) {
  LinkWorld w1 = make_indoor_world(cfg(11));
  auto c1 = make_reactive(w1, cfg(11));
  RunConfig rc1;
  rc1.duration_s = 0.2;
  rc1.protocol_overhead = 0.0;
  const RunResult r1 = run_experiment(w1, *c1, rc1);
  LinkWorld w2 = make_indoor_world(cfg(11));
  auto c2 = make_reactive(w2, cfg(11));
  RunConfig rc2 = rc1;
  rc2.protocol_overhead = 0.2;
  const RunResult r2 = run_experiment(w2, *c2, rc2);
  EXPECT_NEAR(r2.summary.mean_throughput_bps /
                  r1.summary.mean_throughput_bps,
              0.8, 0.01);
}

TEST(Runner, RejectsBadConfig) {
  LinkWorld world = make_indoor_world(cfg(13));
  auto ctrl = make_reactive(world, cfg(13));
  RunConfig rc;
  rc.duration_s = 0.0;
  EXPECT_THROW(run_experiment(world, *ctrl, rc), std::logic_error);
}

}  // namespace
}  // namespace mmr::sim
