// Unit tests for the O(1) streaming accumulators (common/streaming_stats.h):
// StreamingMoments against the batch OnlineStats, Chan's parallel merge,
// exact P² behavior on small streams, and the integer availability /
// outage counters with their windowed view.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/streaming_stats.h"

namespace {

using namespace mmr;

TEST(StreamingMoments, MatchesOnlineStatsOnTheSameStream) {
  Rng rng(0x517EA);
  StreamingMoments streaming;
  OnlineStats batch;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(3.0, 2.5);
    streaming.add(x);
    batch.add(x);
  }
  EXPECT_EQ(streaming.count(), batch.count());
  EXPECT_EQ(streaming.min(), batch.min());
  EXPECT_EQ(streaming.max(), batch.max());
  EXPECT_NEAR(streaming.mean(), batch.mean(), 1e-12 * std::abs(batch.mean()));
  EXPECT_NEAR(streaming.variance(), batch.variance(),
              1e-10 * batch.variance());
  EXPECT_NEAR(streaming.stddev(), batch.stddev(), 1e-10 * batch.stddev());
}

TEST(StreamingMoments, EmptyAndSingletonEdgeCases) {
  StreamingMoments m;
  EXPECT_EQ(m.count(), 0u);
  // mean/min/max are meaningless on an empty stream -- the accumulator
  // enforces that as a precondition (snapshot folds guard on count()).
  EXPECT_THROW(m.mean(), std::exception);
  EXPECT_THROW(m.min(), std::exception);
  EXPECT_EQ(m.variance(), 0.0);
  m.add(4.25);
  EXPECT_EQ(m.count(), 1u);
  EXPECT_EQ(m.mean(), 4.25);
  EXPECT_EQ(m.variance(), 0.0);
  EXPECT_EQ(m.min(), 4.25);
  EXPECT_EQ(m.max(), 4.25);
}

TEST(StreamingMoments, ChanMergeMatchesTheUnshardedStream) {
  Rng rng(0xC4A1);
  StreamingMoments full, left, right;
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.uniform(-50.0, 120.0);
    full.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge_from(right);
  EXPECT_EQ(left.count(), full.count());
  EXPECT_EQ(left.min(), full.min());
  EXPECT_EQ(left.max(), full.max());
  EXPECT_NEAR(left.mean(), full.mean(), 1e-12 * std::abs(full.mean()));
  EXPECT_NEAR(left.variance(), full.variance(), 1e-9 * full.variance());
}

TEST(StreamingMoments, MergingAnEmptyOperandIsIdentity) {
  StreamingMoments filled, empty;
  filled.add(1.0);
  filled.add(2.0);
  filled.add(7.0);
  const double mean = filled.mean();
  const double var = filled.variance();
  filled.merge_from(empty);
  EXPECT_EQ(filled.count(), 3u);
  EXPECT_EQ(filled.mean(), mean);
  EXPECT_EQ(filled.variance(), var);

  StreamingMoments adopt;
  adopt.merge_from(filled);
  EXPECT_EQ(adopt.count(), 3u);
  EXPECT_EQ(adopt.mean(), mean);
  EXPECT_EQ(adopt.min(), 1.0);
  EXPECT_EQ(adopt.max(), 7.0);
}

// The distributed/streaming shard-merge story leans on this identity: a
// shard that saw NO sessions merges as a true no-op, down to the last
// bit. Value equality (EXPECT_EQ on doubles) would let -0.0 or a
// squashed NaN payload slip through, so compare the raw IEEE-754 bits.
std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

TEST(StreamingMoments, EmptyShardMergeIsBitwiseIdentity) {
  StreamingMoments filled, empty;
  for (double x : {0.3, -7.25, 1e9, 0.0, 5.5}) filled.add(x);
  const std::uint64_t mean = bits(filled.mean());
  const std::uint64_t var = bits(filled.variance());
  const std::uint64_t lo = bits(filled.min());
  const std::uint64_t hi = bits(filled.max());

  filled.merge_from(empty);  // filled <- empty: nothing changes
  EXPECT_EQ(filled.count(), 5u);
  EXPECT_EQ(bits(filled.mean()), mean);
  EXPECT_EQ(bits(filled.variance()), var);
  EXPECT_EQ(bits(filled.min()), lo);
  EXPECT_EQ(bits(filled.max()), hi);

  StreamingMoments adopt;  // empty <- filled: adopts the exact bits
  adopt.merge_from(filled);
  EXPECT_EQ(adopt.count(), 5u);
  EXPECT_EQ(bits(adopt.mean()), mean);
  EXPECT_EQ(bits(adopt.variance()), var);
  EXPECT_EQ(bits(adopt.min()), lo);
  EXPECT_EQ(bits(adopt.max()), hi);
}

TEST(P2Quantile, EmptyShardMergeIsBitwiseIdentity) {
  P2Quantile filled(0.9), empty(0.9);
  for (int i = 0; i < 50; ++i) filled.add(0.125 * static_cast<double>(i));
  const std::uint64_t q = bits(filled.quantile());
  const std::uint64_t lo = bits(filled.min());
  const std::uint64_t hi = bits(filled.max());

  filled.merge_from(empty);
  EXPECT_EQ(filled.count(), 50u);
  EXPECT_EQ(bits(filled.quantile()), q);
  EXPECT_EQ(bits(filled.min()), lo);
  EXPECT_EQ(bits(filled.max()), hi);

  P2Quantile adopt(0.9);
  adopt.merge_from(filled);
  EXPECT_EQ(adopt.count(), 50u);
  EXPECT_EQ(bits(adopt.quantile()), q);
  EXPECT_EQ(bits(adopt.min()), lo);
  EXPECT_EQ(bits(adopt.max()), hi);
}

TEST(AvailabilityCounter, EmptyShardMergeIsIdentity) {
  AvailabilityCounter filled, empty;
  filled.add(true, true);
  filled.add(true, false);
  filled.add(false, false);
  filled.merge_from(empty);
  EXPECT_EQ(filled.ticks(), 3u);
  EXPECT_EQ(filled.usable(), 1u);
  EXPECT_EQ(filled.outage(), 1u);
  EXPECT_EQ(filled.unavailable(), 1u);

  AvailabilityCounter adopt;
  adopt.merge_from(filled);
  EXPECT_EQ(adopt.ticks(), 3u);
  EXPECT_EQ(adopt.usable(), 1u);
  EXPECT_EQ(adopt.window_ticks(), 3u);
}

TEST(P2Quantile, ExactForFiveOrFewerObservations) {
  P2Quantile median(0.5);
  median.add(9.0);
  EXPECT_EQ(median.quantile(), 9.0);
  median.add(1.0);
  // Linear interpolation over the sorted head {1, 9} at h = 0.5.
  EXPECT_DOUBLE_EQ(median.quantile(), 5.0);
  median.add(5.0);
  EXPECT_EQ(median.quantile(), 5.0);
  median.add(3.0);
  median.add(7.0);
  EXPECT_EQ(median.quantile(), 5.0);
  EXPECT_EQ(median.min(), 1.0);
  EXPECT_EQ(median.max(), 9.0);
}

TEST(P2Quantile, ExtremesNeverDrift) {
  Rng rng(0x9E99);
  P2Quantile q(0.99);
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.normal(0.0, 10.0);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    q.add(x);
  }
  EXPECT_EQ(q.min(), lo);
  EXPECT_EQ(q.max(), hi);
  EXPECT_GE(q.quantile(), lo);
  EXPECT_LE(q.quantile(), hi);
}

TEST(P2Quantile, SmallOperandMergeReplaysSamplesExactly) {
  // A merge where the OTHER side has n < 5 must behave as if its buffered
  // samples had been added directly -- bit for bit.
  Rng rng(0x3E6);
  P2Quantile merged(0.5), direct(0.5), small(0.5);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    merged.add(x);
    direct.add(x);
  }
  const double extras[] = {0.25, 0.75, 0.5};
  for (const double x : extras) {
    small.add(x);
    direct.add(x);
  }
  merged.merge_from(small);
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.quantile(), direct.quantile());
  EXPECT_EQ(merged.min(), direct.min());
  EXPECT_EQ(merged.max(), direct.max());
}

TEST(AvailabilityCounter, CountsUsableOutageAndUnavailableTicks) {
  AvailabilityCounter c;
  c.add(true, true);    // usable
  c.add(true, true);    // usable
  c.add(true, false);   // outage: carrying data below the floor
  c.add(false, true);   // retraining: unavailable regardless of SNR
  c.add(false, false);  // retraining
  EXPECT_EQ(c.ticks(), 5u);
  EXPECT_EQ(c.usable(), 2u);
  EXPECT_EQ(c.outage(), 1u);
  EXPECT_EQ(c.unavailable(), 2u);
  EXPECT_DOUBLE_EQ(c.availability(), 2.0 / 5.0);
}

TEST(AvailabilityCounter, WindowResetsWithoutTouchingCumulative) {
  AvailabilityCounter c;
  for (int i = 0; i < 10; ++i) c.add(true, i % 2 == 0);
  EXPECT_EQ(c.window_ticks(), 10u);
  EXPECT_EQ(c.window_usable(), 5u);
  c.reset_window();
  EXPECT_EQ(c.window_ticks(), 0u);
  EXPECT_EQ(c.window_availability(), 0.0);
  EXPECT_EQ(c.ticks(), 10u);
  EXPECT_EQ(c.usable(), 5u);
  c.add(true, true);
  EXPECT_EQ(c.window_ticks(), 1u);
  EXPECT_DOUBLE_EQ(c.window_availability(), 1.0);
  EXPECT_EQ(c.ticks(), 11u);
}

TEST(AvailabilityCounter, MergeIsExactIntegerAddition) {
  AvailabilityCounter a, b;
  for (int i = 0; i < 7; ++i) a.add(true, true);
  a.add(true, false);
  for (int i = 0; i < 3; ++i) b.add(false, false);
  b.add(true, true);
  a.merge_from(b);
  EXPECT_EQ(a.ticks(), 12u);
  EXPECT_EQ(a.usable(), 8u);
  EXPECT_EQ(a.outage(), 1u);
  EXPECT_EQ(a.unavailable(), 3u);
  EXPECT_EQ(a.window_ticks(), 12u);
}

}  // namespace
