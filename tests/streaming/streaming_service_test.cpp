// Integration tests of the streaming service (sim/streaming.h): the
// 1-session/1-shard collapse onto the engine's run_experiment path, the
// jobs=K byte-identity of snapshot telemetry, bounded session tables
// under churn, drop-oldest backpressure with the dropped-count watermark,
// snapshot cadence, and spec validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/network.h"
#include "sim/engine.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "sim/streaming.h"
#include "sim/telemetry.h"
#include "sim/workspace.h"

namespace {

using namespace mmr;

sim::ScenarioSpec sparse_scenario() {
  sim::ScenarioSpec s;
  s.name = "indoor_sparse";
  s.config.tx_power_dbm = 14.0;
  s.ue_velocity = {1.0, 0.0};
  return s;
}

sim::StreamingSpec base_spec() {
  sim::StreamingSpec spec;
  spec.name = "streaming_test";
  spec.network.link_scenario = sparse_scenario();
  spec.network.run.duration_s = 0.2;
  spec.duration_s = 0.2;
  spec.snapshot_every_s = 0.2;
  spec.seed = 21;
  return spec;
}

// The collapse contract: a 1-shard/1-session service with churn off
// scores the exact tick sequence of the engine's run_experiment with
// scenario seed == spec.seed (shard 0 takes the seed verbatim, session 0
// takes the shard seed verbatim -- both conventions pinned here).
TEST(StreamingService, SingleSessionCollapsesToEngineTrial) {
  net::register_net_builtins();
  sim::StreamingSpec spec = base_spec();
  sim::MemorySink sink;
  sim::StreamingService service(spec, &sink);
  const sim::StreamingResult result = service.run();

  sim::ScenarioSpec scenario = sparse_scenario();
  scenario.config.seed = spec.seed;
  sim::LinkWorld world = sim::ScenarioRegistry::instance().make(scenario);
  sim::TrialWorkspace ws;
  world.bind_workspace(&ws);
  const auto controller = sim::ControllerRegistry::instance().make(
      world, scenario.config, spec.network.controller);
  const sim::RunResult direct =
      sim::run_experiment(world, *controller, spec.network.run);

  ASSERT_FALSE(direct.samples.empty());
  EXPECT_EQ(result.epochs, direct.samples.size());
  EXPECT_EQ(result.total_joined, 1u);
  EXPECT_EQ(result.total_left, 0u);
  EXPECT_EQ(result.live_sessions, 1u);

  const sim::StreamSnapshot& snap = result.final_snapshot;
  EXPECT_EQ(snap.total_ticks, direct.samples.size());
  // reliability and availability are the same usable/ticks integer
  // division: bit-identical.
  EXPECT_EQ(snap.availability, direct.summary.reliability);
  // Welford vs naive-sum mean: equal to reassociation accuracy.
  EXPECT_NEAR(snap.tput_mean_bps, direct.summary.mean_throughput_bps,
              1e-12 * (1.0 + direct.summary.mean_throughput_bps));
  std::vector<double> snr;
  double snr_sum = 0.0;
  for (const core::LinkSample& s : direct.samples) {
    snr.push_back(s.snr_db);
    snr_sum += s.snr_db;
  }
  EXPECT_NEAR(snap.snr_mean_db, snr_sum / static_cast<double>(snr.size()),
              1e-9);
  // The P² median lands inside a rank band of the exact per-tick SNRs.
  std::sort(snr.begin(), snr.end());
  const auto rank = [&](double f) {
    return snr[static_cast<std::size_t>(f * static_cast<double>(snr.size() - 1))];
  };
  EXPECT_GE(snap.snr_p50_db, rank(0.35) - 1e-9);
  EXPECT_LE(snap.snr_p50_db, rank(0.65) + 1e-9);
  // One snapshot was emitted, and it matches the returned final one.
  ASSERT_EQ(sink.snapshots().size(), 1u);
  EXPECT_EQ(sink.snapshots()[0].total_ticks, snap.total_ticks);
  EXPECT_EQ(sink.snapshots()[0].availability, snap.availability);
}

std::string snapshot_bytes(std::size_t jobs) {
  sim::StreamingSpec spec = base_spec();
  spec.sessions = 8;
  spec.shards = 4;
  spec.jobs = jobs;
  spec.duration_s = 0.05;
  spec.network.run.duration_s = 0.05;
  spec.snapshot_every_s = 0.0125;
  spec.freeze_timing = true;
  spec.network.interference.enabled = true;  // exercise the batched fold
  std::ostringstream os;
  sim::JsonLinesSink sink(os);
  sim::StreamingService service(spec, &sink);
  (void)service.run();
  return os.str();
}

// jobs only parallelizes the per-epoch shard sweep; shard accumulators
// fold in shard-index order on the orchestrator thread. With frozen
// timing the snapshot JSON must be BYTE-identical across worker counts.
TEST(StreamingService, Jobs8SnapshotBytesMatchJobs1) {
  net::register_net_builtins();
  const std::string serial = snapshot_bytes(1);
  const std::string parallel = snapshot_bytes(8);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  // 20 epochs at a 5-tick cadence: exactly 4 snapshot lines, no partial.
  EXPECT_EQ(std::count(serial.begin(), serial.end(), '\n'), 4);
}

TEST(StreamingService, RepeatedRunsAreByteStable) {
  net::register_net_builtins();
  EXPECT_EQ(snapshot_bytes(2), snapshot_bytes(2));
}

TEST(StreamingService, MoreShardsThanSessionsLeavesEmptyShardsHarmless) {
  // shards > sessions: the tail shards own zero sessions and their
  // accumulators merge as pure identities (pinned bitwise in
  // streaming_stats_test.cpp). The run must behave, count the live
  // population correctly, and stay byte-stable.
  net::register_net_builtins();
  auto run_bytes = [] {
    sim::StreamingSpec spec = base_spec();
    spec.sessions = 3;
    spec.shards = 8;
    spec.duration_s = 0.05;
    spec.network.run.duration_s = 0.05;
    spec.snapshot_every_s = 0.025;
    spec.freeze_timing = true;
    std::ostringstream os;
    sim::JsonLinesSink sink(os);
    sim::StreamingService service(spec, &sink);
    const sim::StreamingResult result = service.run();
    EXPECT_EQ(service.live_sessions(), 3u);
    EXPECT_GT(result.final_snapshot.total_ticks, 0u);
    return os.str();
  };
  const std::string first = run_bytes();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, run_bytes());
}

TEST(StreamingService, ChurnKeepsTheSessionTableBounded) {
  net::register_net_builtins();
  sim::StreamingSpec spec = base_spec();
  spec.sessions = 4;
  spec.shards = 2;
  spec.max_sessions = 6;
  spec.duration_s = 0.4;
  spec.network.run.duration_s = 0.4;
  spec.snapshot_every_s = 0.1;
  spec.churn.arrival_rate_per_s = 300.0;
  spec.churn.mean_lifetime_s = 0.05;
  sim::MemorySink sink;
  sim::StreamingService service(spec, &sink);
  const sim::StreamingResult result = service.run();

  // Sessions actually churned...
  EXPECT_GT(result.total_joined, spec.sessions);
  EXPECT_GT(result.total_left, 0u);
  // ...and the live table never exceeded the cap (checked at every
  // snapshot boundary, not just at the end).
  EXPECT_EQ(result.total_joined - result.total_left, result.live_sessions);
  ASSERT_FALSE(sink.snapshots().empty());
  for (const sim::StreamSnapshot& s : sink.snapshots()) {
    EXPECT_LE(s.live_sessions, spec.max_sessions);
    EXPECT_EQ(s.total_joined - s.total_left, s.live_sessions);
  }
  EXPECT_LE(result.live_sessions, spec.max_sessions);
}

// Churn draws come from dedicated per-shard sub-streams: the whole churn
// history is a pure function of the spec, independent of jobs.
TEST(StreamingService, ChurnIsDeterministicAcrossJobs) {
  net::register_net_builtins();
  auto run_churn = [](std::size_t jobs) {
    sim::StreamingSpec spec = base_spec();
    spec.sessions = 4;
    spec.shards = 2;
    spec.max_sessions = 8;
    spec.jobs = jobs;
    spec.duration_s = 0.2;
    spec.network.run.duration_s = 0.2;
    spec.snapshot_every_s = 0.05;
    spec.churn.arrival_rate_per_s = 200.0;
    spec.churn.mean_lifetime_s = 0.04;
    sim::StreamingService service(spec);
    return service.run();
  };
  const sim::StreamingResult a = run_churn(1);
  const sim::StreamingResult b = run_churn(4);
  EXPECT_EQ(a.total_joined, b.total_joined);
  EXPECT_EQ(a.total_left, b.total_left);
  EXPECT_EQ(a.live_sessions, b.live_sessions);
  EXPECT_EQ(a.final_snapshot.total_ticks, b.final_snapshot.total_ticks);
  EXPECT_EQ(a.final_snapshot.availability, b.final_snapshot.availability);
  EXPECT_EQ(a.final_snapshot.snr_mean_db, b.final_snapshot.snr_mean_db);
}

/// A sink that cannot keep up: sleeps on every snapshot and records what
/// it actually received.
class SlowSink final : public sim::TelemetrySink {
 public:
  void on_snapshot(const sim::StreamSnapshot& snapshot) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    received_.push_back(snapshot);
  }
  const std::vector<sim::StreamSnapshot>& received() const {
    return received_;
  }

 private:
  std::vector<sim::StreamSnapshot> received_;
};

TEST(StreamingService, BackpressureShedsOldestAndWatermarksTheDrops) {
  net::register_net_builtins();
  sim::StreamingSpec spec = base_spec();
  spec.duration_s = 0.25;
  spec.network.run.duration_s = 0.25;
  spec.snapshot_every_s = spec.network.run.tick_s;  // one per epoch
  spec.async_snapshots = true;
  spec.queue_capacity = 2;
  SlowSink sink;
  sim::StreamingService service(spec, &sink);
  const sim::StreamingResult result = service.run();

  ASSERT_GT(result.snapshots_emitted, 10u);
  // The sink fell behind: snapshots were shed, never blocking the run.
  EXPECT_GT(result.snapshots_dropped, 0u);
  EXPECT_EQ(sink.received().size() + result.snapshots_dropped,
            result.snapshots_emitted);
  // Delivery preserves emission order (oldest-first shedding only makes
  // index gaps, never reordering), and the final snapshot -- the newest
  // push -- always survives, carrying a positive dropped watermark.
  const auto& got = sink.received();
  ASSERT_FALSE(got.empty());
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LT(got[i - 1].index, got[i].index);
  }
  EXPECT_EQ(got.back().index, result.snapshots_emitted - 1);
  EXPECT_GT(got.back().dropped, 0u);
  EXPECT_LE(got.back().dropped, result.snapshots_dropped);
}

TEST(StreamingService, SnapshotCadenceAndPartialFinalWindow) {
  net::register_net_builtins();
  sim::StreamingSpec spec = base_spec();
  spec.duration_s = 0.1;  // 40 ticks
  spec.network.run.duration_s = 0.1;
  spec.snapshot_every_s = 0.0075;  // every 3 ticks -> 13 full + 1 partial
  sim::MemorySink sink;
  sim::StreamingService service(spec, &sink);
  const sim::StreamingResult result = service.run();

  EXPECT_EQ(result.epochs, 40u);
  ASSERT_EQ(result.snapshots_emitted, 14u);
  ASSERT_EQ(sink.snapshots().size(), 14u);
  std::uint64_t window_sum = 0;
  for (std::size_t i = 0; i < sink.snapshots().size(); ++i) {
    const sim::StreamSnapshot& s = sink.snapshots()[i];
    EXPECT_EQ(s.index, i);
    EXPECT_EQ(s.window_ticks, i + 1 < sink.snapshots().size() ? 3u : 1u);
    window_sum += s.window_ticks;
    if (i > 0) EXPECT_GT(s.t_s, sink.snapshots()[i - 1].t_s);
  }
  EXPECT_EQ(window_sum, result.final_snapshot.total_ticks);
  EXPECT_EQ(result.final_snapshot.total_ticks, 40u);
}

TEST(StreamingService, ValidatesTheSpec) {
  net::register_net_builtins();
  {
    sim::StreamingSpec spec = base_spec();
    spec.seed = 0;
    EXPECT_THROW(sim::StreamingService service(spec), std::logic_error);
  }
  {
    sim::StreamingSpec spec = base_spec();
    spec.shards = 0;
    EXPECT_THROW(sim::StreamingService service(spec), std::logic_error);
  }
  {
    sim::StreamingSpec spec = base_spec();
    spec.snapshot_every_s = spec.network.run.tick_s / 2.0;
    EXPECT_THROW(sim::StreamingService service(spec), std::logic_error);
  }
  {
    sim::StreamingSpec spec = base_spec();
    spec.churn.arrival_rate_per_s = -1.0;
    EXPECT_THROW(sim::StreamingService service(spec), std::logic_error);
  }
  {
    sim::StreamingSpec spec = base_spec();
    spec.duration_s = 0.0;
    EXPECT_THROW(sim::StreamingService service(spec), std::logic_error);
  }
}

}  // namespace
