// Property suite for the P² streaming quantile estimator and the
// mergeable-shard contract (common/streaming_stats.h), >= 1000 Rng::fork
// cases per property:
//   * the P² estimate lands inside a rank band around the exact sorted
//     quantile for uniform, lognormal, and bimodal streams;
//   * the far tail (p999) stays inside its band on large streams;
//   * shard-merged estimators stay inside the band under arbitrary shard
//     counts, and merging is deterministic (same operands -> same bits);
//   * different merge GROUPINGS agree: exactly for the integer counters,
//     to fp-reassociation accuracy for the moments, and within the rank
//     band for P² (its merge is approximate, so bit-level associativity
//     is not claimed -- bounded error under any grouping is).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/streaming_stats.h"

namespace {

using namespace mmr;

constexpr std::size_t kCases = 1050;
constexpr std::uint64_t kBaseSeed = 0x509A1;

/// Draw one observation of distribution family `family` (0 = uniform,
/// 1 = lognormal, 2 = bimodal Gaussian mixture).
double draw(Rng& rng, int family) {
  switch (family) {
    case 0:
      return rng.uniform(-25.0, 75.0);
    case 1:
      return std::exp(rng.normal(0.0, 1.0));
    default:
      return rng.bernoulli(0.5) ? rng.normal(-10.0, 1.0)
                                : rng.normal(10.0, 1.0);
  }
}

/// Exact quantile of a SORTED sample at fraction f, linear interpolation
/// (the same h = f * (n - 1) convention the exact small-n P² path uses).
double exact_at(const std::vector<double>& sorted, double f) {
  f = std::clamp(f, 0.0, 1.0);
  const double h = f * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] + (h - static_cast<double>(lo)) * (sorted[hi] - sorted[lo]);
}

/// Assert `estimate` lies inside the value band the rank band
/// [p - band, p + band] maps to under the exact sample CDF.
void expect_in_rank_band(double estimate, const std::vector<double>& sorted,
                         double p, double band, const char* what,
                         std::size_t c) {
  const double lo = exact_at(sorted, p - band);
  const double hi = exact_at(sorted, p + band);
  const double tol = 1e-9 * (1.0 + std::abs(lo) + std::abs(hi));
  ASSERT_GE(estimate, lo - tol) << what << " case " << c << " p " << p;
  ASSERT_LE(estimate, hi + tol) << what << " case " << c << " p " << p;
}

TEST(StreamingStatsProps, P2MatchesExactSortedQuantiles) {
  const Rng base(kBaseSeed);
  for (std::size_t c = 0; c < kCases; ++c) {
    Rng rng = base.fork(c);
    const int family = static_cast<int>(c % 3);
    const std::size_t n = 500 + rng.uniform_index(2000);
    P2Quantile p50(0.5), p99(0.99);
    std::vector<double> samples;
    samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = draw(rng, family);
      samples.push_back(x);
      p50.add(x);
      p99.add(x);
    }
    std::sort(samples.begin(), samples.end());
    expect_in_rank_band(p50.quantile(), samples, 0.5, 0.05, "p50", c);
    expect_in_rank_band(p99.quantile(), samples, 0.99, 0.02, "p99", c);
    ASSERT_EQ(p50.min(), samples.front()) << "case " << c;
    ASSERT_EQ(p50.max(), samples.back()) << "case " << c;
  }
}

TEST(StreamingStatsProps, P2FarTailStaysInBandOnLargeStreams) {
  const Rng base(kBaseSeed + 1);
  for (std::size_t c = 0; c < 48; ++c) {
    Rng rng = base.fork(c);
    const int family = static_cast<int>(c % 3);
    const std::size_t n = 20000;
    P2Quantile p999(0.999);
    std::vector<double> samples;
    samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = draw(rng, family);
      samples.push_back(x);
      p999.add(x);
    }
    std::sort(samples.begin(), samples.end());
    expect_in_rank_band(p999.quantile(), samples, 0.999, 0.004, "p999", c);
  }
}

TEST(StreamingStatsProps, ShardMergedP2StaysInRankBand) {
  const Rng base(kBaseSeed + 2);
  for (std::size_t c = 0; c < kCases; ++c) {
    Rng rng = base.fork(c);
    const int family = static_cast<int>(c % 3);
    const std::size_t shards = 2 + rng.uniform_index(7);
    const std::size_t n = 1000 + rng.uniform_index(2000);
    std::vector<P2Quantile> shard_q(shards, P2Quantile(0.5));
    std::vector<double> samples;
    samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = draw(rng, family);
      samples.push_back(x);
      shard_q[i % shards].add(x);
    }
    // Fold in shard-index order, exactly as the streaming service does.
    P2Quantile merged(0.5);
    for (const P2Quantile& q : shard_q) merged.merge_from(q);
    ASSERT_EQ(merged.count(), n) << "case " << c;
    std::sort(samples.begin(), samples.end());
    // The merge is approximate on top of the P² approximation: allow a
    // wider band than the unsharded property above.
    expect_in_rank_band(merged.quantile(), samples, 0.5, 0.10, "merged p50",
                        c);
    ASSERT_EQ(merged.min(), samples.front()) << "case " << c;
    ASSERT_EQ(merged.max(), samples.back()) << "case " << c;
  }
}

TEST(StreamingStatsProps, P2MergeIsDeterministic) {
  // Same operand states, same fold order -> bit-identical results. This
  // is the property that makes jobs=K snapshots byte-identical to jobs=1
  // (the service always folds shards in index order).
  const Rng base(kBaseSeed + 3);
  for (std::size_t c = 0; c < kCases; ++c) {
    Rng rng = base.fork(c);
    const std::size_t shards = 2 + rng.uniform_index(5);
    std::vector<P2Quantile> shard_q(shards, P2Quantile(0.99));
    const std::size_t n = 200 + rng.uniform_index(800);
    for (std::size_t i = 0; i < n; ++i) {
      shard_q[i % shards].add(draw(rng, static_cast<int>(c % 3)));
    }
    P2Quantile a(0.99), b(0.99);
    for (const P2Quantile& q : shard_q) a.merge_from(q);
    for (const P2Quantile& q : shard_q) b.merge_from(q);
    ASSERT_EQ(a.quantile(), b.quantile()) << "case " << c;
    ASSERT_EQ(a.count(), b.count()) << "case " << c;
    ASSERT_EQ(a.min(), b.min()) << "case " << c;
    ASSERT_EQ(a.max(), b.max()) << "case " << c;
  }
}

TEST(StreamingStatsProps, P2GroupedMergesAgreeWithinTheBand) {
  // Associativity in the bounded-error sense: sequential fold vs pairwise
  // tree fold both land in the rank band (bit-level associativity is not
  // claimed for the approximate quantile merge).
  const Rng base(kBaseSeed + 4);
  for (std::size_t c = 0; c < 260; ++c) {
    Rng rng = base.fork(c);
    const int family = static_cast<int>(c % 3);
    std::vector<P2Quantile> shard_q(4, P2Quantile(0.5));
    const std::size_t n = 2000;
    std::vector<double> samples;
    samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = draw(rng, family);
      samples.push_back(x);
      shard_q[i % 4].add(x);
    }
    P2Quantile seq(0.5);
    for (const P2Quantile& q : shard_q) seq.merge_from(q);
    P2Quantile left = shard_q[0], right = shard_q[2];
    left.merge_from(shard_q[1]);
    right.merge_from(shard_q[3]);
    left.merge_from(right);
    ASSERT_EQ(seq.count(), left.count()) << "case " << c;
    std::sort(samples.begin(), samples.end());
    expect_in_rank_band(seq.quantile(), samples, 0.5, 0.10, "seq", c);
    expect_in_rank_band(left.quantile(), samples, 0.5, 0.10, "tree", c);
  }
}

TEST(StreamingStatsProps, MomentsAndCountersMergeUnderAnyGrouping) {
  const Rng base(kBaseSeed + 5);
  for (std::size_t c = 0; c < kCases; ++c) {
    Rng rng = base.fork(c);
    std::vector<StreamingMoments> m(4);
    std::vector<AvailabilityCounter> a(4);
    const std::size_t n = 400 + rng.uniform_index(400);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = draw(rng, static_cast<int>(c % 3));
      m[i % 4].add(x);
      a[i % 4].add(rng.bernoulli(0.9), rng.bernoulli(0.8));
    }
    StreamingMoments m_seq;
    AvailabilityCounter a_seq;
    for (std::size_t k = 0; k < 4; ++k) {
      m_seq.merge_from(m[k]);
      a_seq.merge_from(a[k]);
    }
    StreamingMoments m_left = m[0], m_right = m[2];
    m_left.merge_from(m[1]);
    m_right.merge_from(m[3]);
    m_left.merge_from(m_right);
    AvailabilityCounter a_left = a[0], a_right = a[2];
    a_left.merge_from(a[1]);
    a_right.merge_from(a[3]);
    a_left.merge_from(a_right);

    // Counter merges are exact integer additions: associative in bits.
    ASSERT_EQ(a_seq.ticks(), a_left.ticks()) << "case " << c;
    ASSERT_EQ(a_seq.usable(), a_left.usable()) << "case " << c;
    ASSERT_EQ(a_seq.outage(), a_left.outage()) << "case " << c;
    // Moments: counts and extremes exact, mean/variance to reassociation.
    ASSERT_EQ(m_seq.count(), m_left.count()) << "case " << c;
    ASSERT_EQ(m_seq.min(), m_left.min()) << "case " << c;
    ASSERT_EQ(m_seq.max(), m_left.max()) << "case " << c;
    ASSERT_NEAR(m_seq.mean(), m_left.mean(),
                1e-11 * (1.0 + std::abs(m_seq.mean())))
        << "case " << c;
    ASSERT_NEAR(m_seq.variance(), m_left.variance(),
                1e-8 * (1.0 + m_seq.variance()))
        << "case " << c;
  }
}

}  // namespace
