// Golden-value regression for the rewired kernel callers, in the style of
// integration/sweep_golden_test.cpp: fixed inputs, constants pinned at
// %.17g from the first post-kernel run. The differential suite proves the
// kernels match a scalar reference; this file freezes the absolute values
// so a future "optimization" that shifts results numerically trips a
// loud, reviewable diff instead of drifting silently.
#include <gtest/gtest.h>

#include <cmath>

#include "array/geometry.h"
#include "array/pattern.h"
#include "common/angles.h"
#include "common/rng.h"

namespace mmr::array {
namespace {

constexpr double kRelTol = 1e-9;

void expect_close(double got, double want, const char* what) {
  const double tol = std::abs(want) * kRelTol + 1e-12;
  EXPECT_NEAR(got, want, tol) << what;
}

TEST(KernelGolden, MatchedBeamPatternCut) {
  const Ula ula{16, 0.5};
  const CVec w = single_beam_weights(ula, 0.3);
  const PatternCut cut = pattern_cut(ula, w, -kPi / 3.0, kPi / 3.0, 9);
  ASSERT_EQ(cut.angle_rad.size(), 9u);
  ASSERT_EQ(cut.gain_db.size(), 9u);

  expect_close(cut.angle_rad.front(), -1.0471975511965976, "angle[0]");
  expect_close(cut.angle_rad.back(), 1.0471975511965976, "angle[8]");

  const double want_gain_db[9] = {
      -13.754576842129149,  -35.653478752746693, -12.401382401768466,
      -9.8963166108542797,  -5.8772785064663875, 10.7773707532392,
      -2.8428925658478259,  -9.6283194135577883, -10.070395734303986};
  for (std::size_t i = 0; i < 9; ++i) {
    expect_close(cut.gain_db[i], want_gain_db[i], "matched cut gain");
  }
  // The grid point nearest the steered direction carries the ~10*log10(N)
  // matched gain; sanity-pin the peak location too.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < 9; ++i) {
    if (cut.gain_db[i] > cut.gain_db[peak]) peak = i;
  }
  EXPECT_EQ(peak, 5u);
}

TEST(KernelGolden, FrozenSeedRandomWeightPatternCut) {
  const Ula ula{8, 0.5};
  Rng rng(0xB07D5EEDull);
  CVec w(ula.num_elements);
  for (auto& c : w) c = rng.complex_normal();
  const PatternCut cut = pattern_cut(ula, w, -1.2, 1.2, 7);
  ASSERT_EQ(cut.gain_db.size(), 7u);

  const double want_gain_db[7] = {
      6.9560302506840008, 6.0215334723455607,  13.330272172935153,
      12.102094539773844, -1.2368606838960736, 10.435857206740042,
      9.3825558863024874};
  for (std::size_t i = 0; i < 7; ++i) {
    expect_close(cut.gain_db[i], want_gain_db[i], "random-weight cut gain");
  }
}

TEST(KernelGolden, WidebandSteeringVector) {
  const Ula ula{8, 0.5};
  constexpr double kCarrier = 28e9;
  constexpr double kPhi = 0.35;

  struct Pin {
    double offset_hz;
    double a1_re, a1_im;  // element 1
    double a7_re, a7_im;  // element 7
  };
  const Pin pins[3] = {
      {-200e6, 0.48051837336654946, -0.87698465941951653,
       0.35893561484348352, -0.93336232214340564},
      {0.0, 0.47375616111536478, -0.8806560621520938, 0.30816637796383606,
       -0.95133247789227193},
      {200e6, 0.4669658993193278, -0.88427532413433962, 0.25650332240598811,
       -0.96654334905098271},
  };
  for (const Pin& pin : pins) {
    const CVec a =
        steering_vector_wideband(ula, kPhi, kCarrier, pin.offset_hz);
    ASSERT_EQ(a.size(), 8u);
    // Element 0 is the phase reference at every frequency.
    expect_close(a[0].real(), 1.0, "a[0].re");
    expect_close(a[0].imag(), 0.0, "a[0].im");
    expect_close(a[1].real(), pin.a1_re, "a[1].re");
    expect_close(a[1].imag(), pin.a1_im, "a[1].im");
    expect_close(a[7].real(), pin.a7_re, "a[7].re");
    expect_close(a[7].imag(), pin.a7_im, "a[7].im");
    // Unit-modulus phasors, squint or not.
    for (const cplx& c : a) expect_close(std::abs(c), 1.0, "|a[n]|");
  }
}

}  // namespace
}  // namespace mmr::array
