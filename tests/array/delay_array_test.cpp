#include "array/delay_array.h"

#include <gtest/gtest.h>

#include <cmath>

#include "array/pattern.h"
#include "array/weights.h"
#include "common/angles.h"

namespace mmr::array {
namespace {

TEST(DelayArray, SplitsApertureEvenly) {
  const Ula ula{8, 0.5};
  const DelayPhasedArray dpa(ula, {deg_to_rad(-20.0), deg_to_rad(20.0)});
  EXPECT_EQ(dpa.num_beams(), 2u);
  EXPECT_EQ(dpa.subarray(0).num_elements, 4u);
  EXPECT_EQ(dpa.subarray(1).num_elements, 4u);
  EXPECT_EQ(dpa.subarray(1).first_element, 4u);
}

TEST(DelayArray, LastSubarrayAbsorbsRemainder) {
  const Ula ula{8, 0.5};
  const DelayPhasedArray dpa(
      ula, {deg_to_rad(-20.0), 0.0, deg_to_rad(20.0)});
  EXPECT_EQ(dpa.subarray(0).num_elements, 2u);
  EXPECT_EQ(dpa.subarray(1).num_elements, 2u);
  EXPECT_EQ(dpa.subarray(2).num_elements, 4u);
}

TEST(DelayArray, WeightsUnitNorm) {
  const Ula ula{16, 0.5};
  DelayPhasedArray dpa(ula, {deg_to_rad(-15.0), deg_to_rad(25.0)});
  dpa.set_weight(1, std::polar(0.6, 1.0));
  dpa.set_delay(0, 5e-9);
  const CVec w = dpa.weights_at(28e9, 100e6);
  EXPECT_NEAR(total_radiated_power(w), 1.0, 1e-12);
}

TEST(DelayArray, EachSubarrayBeamsAtItsAngle) {
  const Ula ula{16, 0.5};
  const double a0 = deg_to_rad(-25.0);
  const double a1 = deg_to_rad(25.0);
  const DelayPhasedArray dpa(ula, {a0, a1});
  const CVec w = dpa.weights_at(28e9, 0.0);
  // Two lobes: gain at both steering angles well above a random direction.
  const double g0 = power_gain_db(ula, w, a0);
  const double g1 = power_gain_db(ula, w, a1);
  const double g_off = power_gain_db(ula, w, deg_to_rad(55.0));
  EXPECT_GT(g0, g_off + 6.0);
  EXPECT_GT(g1, g_off + 6.0);
}

TEST(DelayArray, DelayAddsLinearPhaseAcrossFrequency) {
  const Ula ula{8, 0.5};
  DelayPhasedArray dpa(ula, {0.0});
  dpa.set_delay(0, 10e-9);
  const CVec w0 = dpa.weights_at(28e9, 0.0);
  const CVec w1 = dpa.weights_at(28e9, 50e6);  // 2 pi * 50e6 * 10e-9 = pi
  const double dphase =
      wrap_pi(std::arg(w1[0]) - std::arg(w0[0]));
  EXPECT_NEAR(std::abs(dphase), kPi, 1e-9);
}

TEST(DelayArray, ZeroDelayIsFrequencyFlat) {
  const Ula ula{8, 0.5};
  const DelayPhasedArray dpa(ula, {deg_to_rad(10.0)});
  const CVec w0 = dpa.weights_at(28e9, 0.0);
  const CVec w1 = dpa.weights_at(28e9, 200e6);
  for (std::size_t n = 0; n < 8; ++n) {
    EXPECT_NEAR(std::abs(w0[n] - w1[n]), 0.0, 1e-12);
  }
}

TEST(CompensatingDelays, CancelsSpread) {
  const std::vector<double> path_delays{3e-9, 8e-9, 5e-9};
  const std::vector<double> comp = compensating_delays(path_delays);
  // path delay + compensation is equal for every path.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(path_delays[i] + comp[i], 8e-9, 1e-15);
  }
  // The latest path needs no extra delay.
  EXPECT_NEAR(comp[1], 0.0, 1e-15);
}

TEST(DelayArray, RejectsMoreBeamsThanElements) {
  const Ula ula{2, 0.5};
  EXPECT_THROW(DelayPhasedArray(ula, {0.0, 0.1, 0.2}), std::logic_error);
}

}  // namespace
}  // namespace mmr::array
