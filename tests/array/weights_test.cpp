#include "array/weights.h"

#include <gtest/gtest.h>

#include <cmath>

#include "array/geometry.h"
#include "array/pattern.h"
#include "common/angles.h"

namespace mmr::array {
namespace {

TEST(NormalizeTrp, UnitNormResult) {
  CVec w{{3.0, 0.0}, {0.0, 4.0}};
  const CVec n = normalize_trp(w);
  EXPECT_NEAR(total_radiated_power(n), 1.0, 1e-12);
  // Direction preserved.
  EXPECT_NEAR(n[0].real(), 0.6, 1e-12);
  EXPECT_NEAR(n[1].imag(), 0.8, 1e-12);
}

TEST(NormalizeTrp, RejectsZeroVector) {
  CVec w{{0.0, 0.0}};
  EXPECT_THROW(normalize_trp(w), std::logic_error);
}

TEST(Quantize, IdealSpecIsLossless) {
  const Ula ula{8, 0.5};
  const CVec w = single_beam_weights(ula, deg_to_rad(20.0));
  const CVec q = quantize(w, QuantizationSpec::ideal());
  for (std::size_t n = 0; n < 8; ++n) {
    EXPECT_NEAR(std::abs(q[n] - w[n]), 0.0, 1e-9);
  }
}

TEST(Quantize, PhaseSnapsToGrid) {
  QuantizationSpec spec;
  spec.phase_bits = 2;  // steps of 90 degrees
  spec.gain_range_db = 100.0;
  spec.gain_step_db = 0.0;
  CVec w{std::polar(1.0, 0.4), std::polar(1.0, 1.2)};
  const CVec q = quantize(w, spec);
  for (const cplx& c : q) {
    const double phase = std::arg(c);
    const double snapped = std::round(phase / (kPi / 2.0)) * (kPi / 2.0);
    EXPECT_NEAR(wrap_pi(phase - snapped), 0.0, 1e-9);
  }
}

TEST(Quantize, ResultIsUnitNorm) {
  const Ula ula{16, 0.5};
  const CVec w = single_beam_weights(ula, deg_to_rad(-35.0));
  const CVec q = quantize(w, QuantizationSpec::paper_testbed());
  EXPECT_NEAR(total_radiated_power(q), 1.0, 1e-12);
}

TEST(Quantize, PaperTestbedPreservesBeamShape) {
  // 6-bit phase + 0.5 dB amplitude steps must keep the main lobe within a
  // fraction of a dB of ideal (paper Fig. 13d).
  const Ula ula{8, 0.5};
  const double phi = deg_to_rad(25.0);
  const CVec w = single_beam_weights(ula, phi);
  const CVec q = quantize(w, QuantizationSpec::paper_testbed());
  const double ideal_db = power_gain_db(ula, w, phi);
  const double quant_db = power_gain_db(ula, q, phi);
  EXPECT_NEAR(quant_db, ideal_db, 0.3);
}

TEST(Quantize, Commodity11adStillFormsBeam) {
  // 2-bit phase, on/off amplitude (paper Section 5.1 cites this as the
  // minimum for phase-coherent multi-beams).
  const Ula ula{8, 0.5};
  const double phi = deg_to_rad(15.0);
  const CVec w = single_beam_weights(ula, phi);
  const CVec q = quantize(w, QuantizationSpec::commodity_11ad());
  const double peak = power_gain_db(ula, q, phi);
  const double off = power_gain_db(ula, q, deg_to_rad(-45.0));
  EXPECT_GT(peak - off, 8.0);  // beam still points the right way
}

TEST(Quantize, GainFloorClampsWeakElements) {
  QuantizationSpec spec;
  spec.phase_bits = 0;
  spec.gain_range_db = 10.0;
  spec.gain_step_db = 0.0;
  // Second element requested 40 dB below the first: clamps to -10 dB.
  CVec w{{1.0, 0.0}, {0.01, 0.0}};
  const CVec q = quantize(w, spec);
  const double rel_db = 20.0 * std::log10(std::abs(q[1]) / std::abs(q[0]));
  EXPECT_NEAR(rel_db, -10.0, 0.1);
}

TEST(TotalRadiatedPower, SumsSquares) {
  CVec w{{1.0, 0.0}, {0.0, 2.0}};
  EXPECT_NEAR(total_radiated_power(w), 5.0, 1e-12);
}

}  // namespace
}  // namespace mmr::array
