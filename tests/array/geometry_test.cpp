#include "array/geometry.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.h"

namespace mmr::array {
namespace {

TEST(Steering, UnitModulusElements) {
  const Ula ula{8, 0.5};
  const CVec a = steering_vector(ula, deg_to_rad(23.0));
  ASSERT_EQ(a.size(), 8u);
  for (const cplx& c : a) EXPECT_NEAR(std::abs(c), 1.0, 1e-12);
}

TEST(Steering, BroadsideIsAllOnes) {
  const Ula ula{8, 0.5};
  const CVec a = steering_vector(ula, 0.0);
  for (const cplx& c : a) EXPECT_NEAR(std::abs(c - cplx{1.0, 0.0}), 0.0, 1e-12);
}

TEST(Steering, PhaseProgression) {
  const Ula ula{4, 0.5};
  const double phi = deg_to_rad(30.0);
  const CVec a = steering_vector(ula, phi);
  // Adjacent-element phase difference: -2 pi d/lambda sin(phi) = -pi/2.
  const double expected = -2.0 * kPi * 0.5 * std::sin(phi);
  for (std::size_t n = 1; n < 4; ++n) {
    EXPECT_NEAR(wrap_pi(std::arg(a[n]) - std::arg(a[n - 1])), expected, 1e-12);
  }
}

TEST(SingleBeamWeights, UnitNorm) {
  const Ula ula{16, 0.5};
  const CVec w = single_beam_weights(ula, deg_to_rad(-17.0));
  double norm2 = 0.0;
  for (const cplx& c : w) norm2 += std::norm(c);
  EXPECT_NEAR(norm2, 1.0, 1e-12);
}

class MatchedGainTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatchedGainTest, MatchedBeamGainIsN) {
  // |a(phi)^T w_phi|^2 = N for matched unit-norm weights.
  const Ula ula{GetParam(), 0.5};
  const double phi = deg_to_rad(11.0);
  const CVec a = steering_vector(ula, phi);
  const CVec w = single_beam_weights(ula, phi);
  cplx af{};
  for (std::size_t n = 0; n < a.size(); ++n) af += a[n] * w[n];
  EXPECT_NEAR(std::norm(af), static_cast<double>(GetParam()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatchedGainTest,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(SteeringWideband, ReducesToCarrierAtZeroOffset) {
  const Ula ula{8, 0.5};
  const double phi = deg_to_rad(40.0);
  const CVec a0 = steering_vector(ula, phi);
  const CVec aw = steering_vector_wideband(ula, phi, 28e9, 0.0);
  for (std::size_t n = 0; n < 8; ++n) {
    EXPECT_NEAR(std::abs(a0[n] - aw[n]), 0.0, 1e-12);
  }
}

TEST(SteeringWideband, SquintGrowsWithOffset) {
  // At a frequency offset, the matched (carrier) beam loses gain off
  // boresight -- beam squint.
  const Ula ula{64, 0.5};
  const double phi = deg_to_rad(50.0);
  const CVec w = single_beam_weights(ula, phi);
  auto gain_at = [&](double offset_hz) {
    const CVec a = steering_vector_wideband(ula, phi, 28e9, offset_hz);
    cplx af{};
    for (std::size_t n = 0; n < a.size(); ++n) af += a[n] * w[n];
    return std::norm(af);
  };
  const double g0 = gain_at(0.0);
  const double g200 = gain_at(200e6);
  const double g2000 = gain_at(2000e6);
  EXPECT_GT(g0, g200);
  EXPECT_GT(g200, g2000);
}

TEST(Steering, RejectsDegenerateArray) {
  EXPECT_THROW(steering_vector(Ula{0, 0.5}, 0.0), std::logic_error);
  EXPECT_THROW(steering_vector(Ula{4, 0.0}, 0.0), std::logic_error);
}

}  // namespace
}  // namespace mmr::array
