#include "array/codebook.h"

#include <gtest/gtest.h>

#include "common/angles.h"

namespace mmr::array {
namespace {

TEST(Codebook, CoversRequestedSector) {
  const Ula ula{8, 0.5};
  const Codebook cb(ula, deg_to_rad(-60.0), deg_to_rad(60.0), 64);
  EXPECT_EQ(cb.size(), 64u);
  EXPECT_NEAR(cb.angle(0), deg_to_rad(-60.0), 1e-12);
  EXPECT_NEAR(cb.angle(63), deg_to_rad(60.0), 1e-12);
}

TEST(Codebook, AnglesUniformlySpaced) {
  const Ula ula{8, 0.5};
  const Codebook cb(ula, -1.0, 1.0, 21);
  const double step = cb.angular_step();
  EXPECT_NEAR(step, 0.1, 1e-12);
  for (std::size_t i = 1; i < cb.size(); ++i) {
    EXPECT_NEAR(cb.angle(i) - cb.angle(i - 1), step, 1e-12);
  }
}

TEST(Codebook, WeightsAreMatchedBeams) {
  const Ula ula{8, 0.5};
  const Codebook cb(ula, -1.0, 1.0, 9);
  for (std::size_t i = 0; i < cb.size(); ++i) {
    const CVec expected = single_beam_weights(ula, cb.angle(i));
    const CVec& w = cb.weights(i);
    for (std::size_t n = 0; n < 8; ++n) {
      EXPECT_NEAR(std::abs(w[n] - expected[n]), 0.0, 1e-12);
    }
  }
}

TEST(Codebook, NearestFindsClosest) {
  const Ula ula{8, 0.5};
  const Codebook cb(ula, -1.0, 1.0, 21);  // step 0.1
  EXPECT_EQ(cb.nearest(0.0), 10u);
  EXPECT_EQ(cb.nearest(0.04), 10u);
  EXPECT_EQ(cb.nearest(0.06), 11u);
  EXPECT_EQ(cb.nearest(-5.0), 0u);  // clamped to edge
  EXPECT_EQ(cb.nearest(5.0), 20u);
}

TEST(Codebook, RejectsDegenerateRange) {
  const Ula ula{8, 0.5};
  EXPECT_THROW(Codebook(ula, 1.0, -1.0, 8), std::logic_error);
  EXPECT_THROW(Codebook(ula, -1.0, 1.0, 1), std::logic_error);
}

TEST(Codebook, IndexBoundsChecked) {
  const Ula ula{8, 0.5};
  const Codebook cb(ula, -1.0, 1.0, 4);
  EXPECT_THROW(cb.angle(4), std::logic_error);
  EXPECT_THROW(cb.weights(4), std::logic_error);
}

}  // namespace
}  // namespace mmr::array
