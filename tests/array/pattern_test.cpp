#include "array/pattern.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/angles.h"
#include "common/units.h"

namespace mmr::array {
namespace {

TEST(Pattern, PeakAtSteeredAngleEqualsN) {
  const Ula ula{8, 0.5};
  const double phi = deg_to_rad(30.0);
  const CVec w = single_beam_weights(ula, phi);
  EXPECT_NEAR(power_gain(ula, w, phi), 8.0, 1e-9);
  // And it is the global maximum over the sector.
  for (double a = -60.0; a <= 60.0; a += 1.0) {
    EXPECT_LE(power_gain(ula, w, deg_to_rad(a)), 8.0 + 1e-9);
  }
}

TEST(Pattern, FirstNullPosition) {
  // Null of an N-element half-wavelength array at sin(phi) = 2/N from
  // beam center (broadside beam).
  const Ula ula{8, 0.5};
  const CVec w = single_beam_weights(ula, 0.0);
  const double null_angle = std::asin(2.0 / 8.0);
  EXPECT_LT(power_gain_db(ula, w, null_angle), -40.0);
}

TEST(Pattern, FirstSidelobeNearMinus13dB) {
  // Uniform arrays have a -13.2 dB first sidelobe; check for N = 16.
  const Ula ula{16, 0.5};
  const CVec w = single_beam_weights(ula, 0.0);
  // First sidelobe peak near sin(phi) = 3/N.
  double best = -1e9;
  for (double s = 2.2 / 16.0; s < 3.8 / 16.0; s += 0.001) {
    best = std::max(best, power_gain_db(ula, w, std::asin(s)));
  }
  const double peak_db = to_db(16.0);
  EXPECT_NEAR(best - peak_db, -13.2, 0.6);
}

TEST(RelativeGain, UnityAtZeroOffset) {
  EXPECT_NEAR(ula_relative_gain(8, 0.5, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(ula_relative_gain_db(8, 0.5, 0.0), 0.0, 1e-9);
}

TEST(RelativeGain, MatchesFullPatternForBroadsideBeam) {
  const Ula ula{8, 0.5};
  const CVec w = single_beam_weights(ula, 0.0);
  for (double off = 0.0; off < 0.12; off += 0.02) {
    const double full = power_gain(ula, w, off) / 8.0;
    EXPECT_NEAR(ula_relative_gain(8, 0.5, off), full, 1e-9);
  }
}

class RelativeGainMonotoneTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(RelativeGainMonotoneTest, DecreasesWithinMainLobe) {
  const std::size_t n = GetParam();
  const double first_null = std::asin(1.0 / (0.5 * static_cast<double>(n)));
  double prev = 1.1;
  for (double off = 0.0; off < first_null * 0.98; off += first_null / 40.0) {
    const double g = ula_relative_gain(n, 0.5, off);
    EXPECT_LT(g, prev + 1e-12);
    prev = g;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RelativeGainMonotoneTest,
                         ::testing::Values(4, 8, 16, 32, 64));

TEST(Hpbw, MatchesRuleOfThumb) {
  // HPBW ~ 0.886 lambda / (N d) radians for broadside uniform ULA.
  for (std::size_t n : {8, 16, 32}) {
    const double hpbw = half_power_beamwidth(n, 0.5);
    const double expected = 0.886 / (0.5 * static_cast<double>(n));
    EXPECT_NEAR(hpbw, expected, expected * 0.08) << "N = " << n;
  }
}

TEST(Hpbw, ShrinksWithAperture) {
  EXPECT_GT(half_power_beamwidth(8, 0.5), half_power_beamwidth(16, 0.5));
  EXPECT_GT(half_power_beamwidth(16, 0.5), half_power_beamwidth(64, 0.5));
}

TEST(Hpbw, GainAtHalfWidthIsMinus3dB) {
  const double hpbw = half_power_beamwidth(16, 0.5);
  EXPECT_NEAR(ula_relative_gain_db(16, 0.5, hpbw / 2.0), -3.0, 0.1);
}

TEST(PatternCut, SamplesRequestedGrid) {
  const Ula ula{8, 0.5};
  const CVec w = single_beam_weights(ula, 0.0);
  const PatternCut cut =
      pattern_cut(ula, w, deg_to_rad(-60.0), deg_to_rad(60.0), 121);
  ASSERT_EQ(cut.angle_rad.size(), 121u);
  EXPECT_NEAR(cut.angle_rad.front(), deg_to_rad(-60.0), 1e-12);
  EXPECT_NEAR(cut.angle_rad.back(), deg_to_rad(60.0), 1e-12);
  // Max of the cut is at the center sample (index 60).
  const auto it =
      std::max_element(cut.gain_db.begin(), cut.gain_db.end());
  EXPECT_EQ(it - cut.gain_db.begin(), 60);
}

TEST(Pattern, MismatchedWeightsThrow) {
  const Ula ula{8, 0.5};
  CVec w(4, cplx{1.0, 0.0});
  EXPECT_THROW(power_gain(ula, w, 0.0), std::logic_error);
}

TEST(PatternCut, RejectsDegenerateGrids) {
  const Ula ula{8, 0.5};
  const CVec w = single_beam_weights(ula, 0.0);
  // Fewer than two points cannot span an interval.
  EXPECT_THROW(pattern_cut(ula, w, -1.0, 1.0, 0), std::logic_error);
  EXPECT_THROW(pattern_cut(ula, w, -1.0, 1.0, 1), std::logic_error);
  // Reversed and empty bounds.
  EXPECT_THROW(pattern_cut(ula, w, 1.0, -1.0, 11), std::logic_error);
  EXPECT_THROW(pattern_cut(ula, w, 0.5, 0.5, 11), std::logic_error);
  // Non-finite bounds would silently poison the whole grid.
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(pattern_cut(ula, w, nan, 1.0, 11), std::logic_error);
  EXPECT_THROW(pattern_cut(ula, w, -1.0, inf, 11), std::logic_error);
  // Weight/aperture mismatch.
  const CVec bad(4, cplx{1.0, 0.0});
  EXPECT_THROW(pattern_cut(ula, bad, -1.0, 1.0, 11), std::logic_error);
  // The minimal valid grid still works.
  const PatternCut cut = pattern_cut(ula, w, -1.0, 1.0, 2);
  ASSERT_EQ(cut.gain_db.size(), 2u);
}

}  // namespace
}  // namespace mmr::array
