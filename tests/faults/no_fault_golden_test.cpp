// Inert-plan golden: carrying an all-zero FaultPlan (or the "none"
// preset) through the engine must be indistinguishable -- byte for byte
// in the serialized JSON, bit for bit in every sample -- from a spec that
// never mentions faults. This is the contract that let the fault layer
// land without the fig16/17/18 bench records changing. Also pins that a
// FAULTED sweep keeps the jobs=K == jobs=1 determinism contract.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/faults.h"
#include "sim/telemetry.h"

namespace mmr::sim {
namespace {

using Trials = std::vector<SweepTrial<core::LinkSummary>>;

/// Serialize with timings zeroed (the only run-to-run-varying fields).
std::string json_of(const std::string& name, Trials trials,
                    std::span<const std::string> labels = {}) {
  for (auto& t : trials) {
    t.wall_s = 0.0;
    t.cpu_s = 0.0;
  }
  SweepTiming timing;
  timing.jobs = 1;
  std::ostringstream os;
  write_sweep_json(os, name, trials, timing, labels);
  return os.str();
}

/// Fig. 16 campaign shape: fixed seed, blocker, two-scheme matrix.
ExperimentSpec fig16_shape() {
  ExperimentSpec spec;
  spec.name = "fig16_shape";
  spec.scenario.name = "indoor_sparse";
  spec.scenario.config.seed = 13;
  spec.scenario.blockers = {{0.45, 1.2, 30.0}};
  spec.run.duration_s = 0.4;
  spec.trials = 2;
  spec.seed = 13;
  spec.seed_policy = SeedPolicy::kFixed;
  spec.record_samples = true;
  spec.customize = [](const TrialContext& ctx, ScenarioSpec& /*scenario*/,
                      ControllerSpec& controller, RunConfig& /*run*/) {
    controller.name = ctx.index == 0 ? "single_frozen" : "mmreliable";
  };
  spec.label = [](const TrialContext& ctx) {
    return std::string(ctx.index == 0 ? "single" : "multi");
  };
  return spec;
}

/// Fig. 17 campaign shape: per-trial seed streams, mobile UE.
ExperimentSpec fig17_shape() {
  ExperimentSpec spec;
  spec.name = "fig17_shape";
  spec.scenario.name = "indoor";
  spec.scenario.ue_velocity = {0.0, -1.5};
  spec.run.duration_s = 0.3;
  spec.trials = 3;
  spec.seed = 11;
  spec.seed_policy = SeedPolicy::kPerTrialStream;
  spec.record_samples = true;
  return spec;
}

/// Drop the sink's end-of-sweep summary line: it embeds wall-clock
/// timings that legitimately vary run to run. (Its *content* is still
/// compared through the timing-zeroed json_of below.)
std::string without_timing_lines(const std::string& stream) {
  std::string out;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    std::size_t eol = stream.find('\n', pos);
    if (eol == std::string::npos) eol = stream.size() - 1;
    const std::string line = stream.substr(pos, eol - pos + 1);
    if (line.find("\"wall_s\"") == std::string::npos) out += line;
    pos = eol + 1;
  }
  return out;
}

void expect_byte_identical(const ExperimentSpec& base) {
  // Three ways of saying "no faults": never touching the field, an
  // explicitly default-constructed plan, and the registered "none"
  // preset. All three must produce the same bytes and bits.
  ExperimentSpec zeroed = base;
  zeroed.run.faults = FaultPlan{};
  ExperimentSpec none = base;
  none.run.faults = fault_preset("none");

  struct Capture {
    EngineResult result;
    std::string stream;
  };
  auto run = [](const ExperimentSpec& spec) {
    std::ostringstream os;
    JsonLinesSink sink(os, /*per_tick=*/true);
    Capture cap;
    cap.result = Engine().run(spec, &sink);
    cap.stream = without_timing_lines(os.str());
    return cap;
  };
  const Capture a = run(base);
  const Capture b = run(zeroed);
  const Capture c = run(none);

  EXPECT_EQ(a.stream, b.stream) << "per-tick JSON stream must not change";
  EXPECT_EQ(a.stream, c.stream);
  EXPECT_EQ(json_of(base.name, a.result.trials, a.result.labels),
            json_of(base.name, b.result.trials, b.result.labels));
  EXPECT_EQ(json_of(base.name, a.result.trials, a.result.labels),
            json_of(base.name, c.result.trials, c.result.labels));

  ASSERT_EQ(a.result.samples.size(), b.result.samples.size());
  for (std::size_t t = 0; t < a.result.samples.size(); ++t) {
    ASSERT_EQ(a.result.samples[t].size(), b.result.samples[t].size());
    for (std::size_t i = 0; i < a.result.samples[t].size(); ++i) {
      EXPECT_EQ(a.result.samples[t][i].snr_db, b.result.samples[t][i].snr_db);
      EXPECT_EQ(a.result.samples[t][i].snr_db, c.result.samples[t][i].snr_db);
    }
    EXPECT_TRUE(a.result.fault_events[t].empty());
    EXPECT_TRUE(b.result.fault_events[t].empty());
    EXPECT_TRUE(c.result.fault_events[t].empty());
  }
}

TEST(NoFaultGolden, Fig16ShapeIsByteIdenticalWithInertPlan) {
  expect_byte_identical(fig16_shape());
}

TEST(NoFaultGolden, Fig17ShapeIsByteIdenticalWithInertPlan) {
  expect_byte_identical(fig17_shape());
}

TEST(NoFaultGolden, InertPlanIsByteIdenticalAcrossJobsCounts) {
  ExperimentSpec spec = fig17_shape();
  spec.run.faults = fault_preset("none");
  ExperimentSpec parallel = spec;
  parallel.jobs = 3;
  const EngineResult serial = Engine().run(spec);
  const EngineResult multi = Engine().run(parallel);
  EXPECT_EQ(json_of(spec.name, serial.trials),
            json_of(spec.name, multi.trials));
}

TEST(NoFaultGolden, FaultedSweepIsDeterministicAcrossJobsCounts) {
  ExperimentSpec spec = fig16_shape();
  spec.run.faults = fault_preset("moderate");
  ExperimentSpec parallel = spec;
  parallel.jobs = 3;
  const EngineResult serial = Engine().run(spec);
  const EngineResult multi = Engine().run(parallel);
  EXPECT_EQ(json_of(spec.name, serial.trials, serial.labels),
            json_of(spec.name, multi.trials, multi.labels));
  // The fault event streams themselves must replay identically.
  ASSERT_EQ(serial.fault_events.size(), multi.fault_events.size());
  for (std::size_t t = 0; t < serial.fault_events.size(); ++t) {
    ASSERT_EQ(serial.fault_events[t].size(), multi.fault_events[t].size());
    for (std::size_t i = 0; i < serial.fault_events[t].size(); ++i) {
      EXPECT_EQ(serial.fault_events[t][i].kind, multi.fault_events[t][i].kind);
      EXPECT_EQ(serial.fault_events[t][i].t_s, multi.fault_events[t][i].t_s);
      EXPECT_EQ(serial.fault_events[t][i].value,
                multi.fault_events[t][i].value);
    }
  }
  // And an enabled plan must actually do something in this shape.
  std::size_t total = 0;
  for (const auto& evs : serial.fault_events) total += evs.size();
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace mmr::sim
