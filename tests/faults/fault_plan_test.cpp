// FaultPlan validation and preset registry. Mirrors the CLI death-test
// style of engine/cli_parse_test.cpp: malformed plans throw
// std::logic_error via MMR_EXPECTS, an unknown preset name throws
// std::invalid_argument listing the registered presets, and a bogus
// --faults flag exits(2) before any sweep runs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/faults.h"
#include "sweep_cli.h"

namespace mmr::sim {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(FaultPlan, DefaultPlanIsValidAndDisabled) {
  FaultPlan plan;
  EXPECT_NO_THROW(plan.validate());
  EXPECT_FALSE(plan.enabled());
}

TEST(FaultPlan, AnyNonZeroKnobEnables) {
  auto enabled_with = [](auto&& set) {
    FaultPlan plan;
    set(plan);
    return plan.enabled();
  };
  EXPECT_TRUE(enabled_with([](FaultPlan& p) { p.probe_drop_prob = 0.1; }));
  EXPECT_TRUE(enabled_with([](FaultPlan& p) { p.stale_epoch_prob = 0.1; }));
  EXPECT_TRUE(
      enabled_with([](FaultPlan& p) { p.csi_phase_noise_rad = 0.1; }));
  EXPECT_TRUE(enabled_with([](FaultPlan& p) { p.csi_amp_noise_db = 0.5; }));
  EXPECT_TRUE(enabled_with([](FaultPlan& p) { p.csi_quant_bits = 8; }));
  EXPECT_TRUE(enabled_with([](FaultPlan& p) { p.nan_tap_prob = 0.01; }));
  EXPECT_TRUE(enabled_with([](FaultPlan& p) { p.snr_bias_db = -1.0; }));
  // Seed and epoch length alone do not enable anything.
  EXPECT_FALSE(enabled_with([](FaultPlan& p) { p.seed = 5; }));
  EXPECT_FALSE(enabled_with([](FaultPlan& p) { p.stale_epoch_ticks = 9; }));
}

TEST(FaultPlanDeathTest, RejectsProbabilitiesOutsideUnitInterval) {
  auto validate_with = [](auto&& set) {
    FaultPlan plan;
    set(plan);
    plan.validate();
  };
  EXPECT_THROW(
      validate_with([](FaultPlan& p) { p.probe_drop_prob = -0.1; }),
      std::logic_error);
  EXPECT_THROW(validate_with([](FaultPlan& p) { p.probe_drop_prob = 1.5; }),
               std::logic_error);
  EXPECT_THROW(
      validate_with([](FaultPlan& p) { p.probe_drop_prob = kNan; }),
      std::logic_error);
  EXPECT_THROW(
      validate_with([](FaultPlan& p) { p.stale_epoch_prob = -1.0; }),
      std::logic_error);
  EXPECT_THROW(validate_with([](FaultPlan& p) { p.nan_tap_prob = 2.0; }),
               std::logic_error);
}

TEST(FaultPlanDeathTest, RejectsMalformedNoiseAndEpochKnobs) {
  auto validate_with = [](auto&& set) {
    FaultPlan plan;
    set(plan);
    plan.validate();
  };
  EXPECT_THROW(
      validate_with([](FaultPlan& p) { p.csi_phase_noise_rad = -0.2; }),
      std::logic_error);
  EXPECT_THROW(
      validate_with([](FaultPlan& p) { p.csi_phase_noise_rad = kInf; }),
      std::logic_error);
  EXPECT_THROW(
      validate_with([](FaultPlan& p) { p.csi_amp_noise_db = kNan; }),
      std::logic_error);
  EXPECT_THROW(validate_with([](FaultPlan& p) { p.stale_epoch_ticks = 0; }),
               std::logic_error);
  EXPECT_THROW(validate_with([](FaultPlan& p) { p.csi_quant_bits = 25; }),
               std::logic_error);
  EXPECT_THROW(validate_with([](FaultPlan& p) { p.snr_bias_db = kInf; }),
               std::logic_error);
}

TEST(FaultPlan, PresetsEscalateAndValidate) {
  const std::vector<std::string> names = fault_preset_names();
  ASSERT_EQ(names,
            (std::vector<std::string>{"none", "light", "moderate", "heavy"}));
  const FaultPlan none = fault_preset("none");
  EXPECT_FALSE(none.enabled());
  const FaultPlan light = fault_preset("light");
  const FaultPlan moderate = fault_preset("moderate");
  const FaultPlan heavy = fault_preset("heavy");
  for (const FaultPlan& p : {light, moderate, heavy}) {
    EXPECT_NO_THROW(p.validate());
    EXPECT_TRUE(p.enabled());
  }
  EXPECT_LT(light.probe_drop_prob, moderate.probe_drop_prob);
  EXPECT_LT(moderate.probe_drop_prob, heavy.probe_drop_prob);
  EXPECT_LT(light.nan_tap_prob, moderate.nan_tap_prob);
  EXPECT_LT(moderate.nan_tap_prob, heavy.nan_tap_prob);
  EXPECT_LT(light.csi_phase_noise_rad, heavy.csi_phase_noise_rad);
}

TEST(FaultPlan, UnknownPresetThrowsListingRegisteredNames) {
  try {
    fault_preset("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos);
    EXPECT_NE(msg.find("moderate"), std::string::npos);
  }
}

// --- CLI integration ----------------------------------------------------

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return argv;
}

int run_cli(std::vector<std::string> args) {
  auto argv = argv_of(args);
  bench::parse_sweep_cli(static_cast<int>(argv.size()), argv.data());
  return 0;
}

TEST(FaultCli, ParsesAndAppliesPreset) {
  std::vector<std::string> args = {"prog", "--faults", "moderate"};
  auto argv = argv_of(args);
  const bench::SweepCliOptions opts =
      bench::parse_sweep_cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(opts.faults, "moderate");
  ExperimentSpec spec;
  bench::apply_cli(opts, spec);
  EXPECT_TRUE(spec.run.faults.enabled());
  EXPECT_EQ(spec.run.faults.probe_drop_prob,
            fault_preset("moderate").probe_drop_prob);
}

TEST(FaultCliDeathTest, UnknownPresetExits2) {
  EXPECT_EXIT(run_cli({"prog", "--faults", "bogus"}),
              ::testing::ExitedWithCode(2), "unknown fault preset");
}

TEST(FaultCliDeathTest, ListExits0AndMentionsFaultPresets) {
  EXPECT_EXIT(run_cli({"prog", "--list"}), ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace mmr::sim
