// Campaign-level acceptance for the fault layer, mirroring
// bench_fault_resilience's moderate-preset comparison:
//   * mmReliable's delivered (availability-weighted) mean SNR stays
//     strictly above the reactive single-beam baseline,
//   * no trial leaks a NaN/Inf into any telemetry event -- asserted by
//     scanning the actual JSON-lines byte stream a sink produces,
//   * every recorded fault event is finite and timestamped within the run.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "sim/telemetry.h"

namespace mmr::sim {
namespace {

constexpr std::size_t kReps = 3;
const std::vector<std::string> kSchemes = {"mmreliable", "reactive"};

/// The bench's campaign shape: paired walker crossings, moderate preset.
ExperimentSpec campaign(const std::string& preset) {
  ExperimentSpec spec;
  spec.name = "fault_campaign_" + preset;
  spec.scenario.name = "indoor_sparse";
  spec.run.duration_s = 1.0;
  spec.run.tick_s = 2.5e-3;
  spec.run.faults = fault_preset(preset);
  spec.trials = kSchemes.size() * kReps;
  spec.seed = 13;
  spec.seed_policy = SeedPolicy::kFixed;
  spec.record_samples = true;
  spec.customize = [](const TrialContext& ctx, ScenarioSpec& scenario,
                      ControllerSpec& controller, RunConfig& /*run*/) {
    const std::size_t rep = ctx.index % kReps;
    scenario.config.seed =
        rep == 0 ? 13 : Rng::derive_stream_seed(13, rep);
    double crossing_s = 0.5, speed_mps = 1.0;
    if (rep > 0) {
      Rng rng = Rng(13).fork(rep);
      crossing_s = rng.uniform(0.35, 0.65);
      speed_mps = rng.uniform(0.8, 1.8);
    }
    scenario.blockers = {{crossing_s, speed_mps, 30.0}};
    controller.name = kSchemes[ctx.index / kReps];
  };
  return spec;
}

/// Delivered mean SNR: unavailable ticks contribute zero linear SNR.
double delivered_snr_db(const std::vector<core::LinkSample>& samples) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples) {
    if (s.t_s < 0.2) continue;
    sum += s.available ? from_db(s.snr_db) : 0.0;
    ++n;
  }
  return to_db(sum / static_cast<double>(n));
}

TEST(FaultCampaign, MmReliableBeatsReactiveUnderModerateFaults) {
  const EngineResult res = Engine().run(campaign("moderate"));
  double mm = 0.0, reactive = 0.0;
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    mm += delivered_snr_db(res.samples[rep]);
    reactive += delivered_snr_db(res.samples[kReps + rep]);
  }
  mm /= kReps;
  reactive /= kReps;
  EXPECT_GT(mm, reactive)
      << "multi-beam + degraded-mode hardening must out-deliver the "
         "reactive baseline under moderate faults (mm="
      << mm << " dB, reactive=" << reactive << " dB)";
}

TEST(FaultCampaign, TelemetryStreamCarriesNoNonFiniteValues) {
  std::ostringstream os;
  JsonLinesSink sink(os, /*per_tick=*/true);
  const EngineResult res = Engine().run(campaign("moderate"), &sink);
  const std::string stream = os.str();
  ASSERT_FALSE(stream.empty());

  // Scan the emitted bytes: a leaked non-finite double serializes as
  // "nan"/"inf" tokens, which must never appear in any JSON line.
  std::string lower;
  lower.reserve(stream.size());
  for (char c : stream) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  EXPECT_EQ(lower.find("nan"), std::string::npos);
  EXPECT_EQ(lower.find("inf"), std::string::npos);

  // The stream must actually contain fault lines to make the scan mean
  // something.
  EXPECT_NE(stream.find("\"fault\": "), std::string::npos);
  std::size_t events = 0;
  for (const auto& evs : res.fault_events) events += evs.size();
  EXPECT_GT(events, 0u);
}

TEST(FaultCampaign, FaultEventsAreFiniteTypedAndInRange) {
  const ExperimentSpec spec = campaign("moderate");
  const EngineResult res = Engine().run(spec);
  ASSERT_EQ(res.fault_events.size(), spec.trials);
  for (const auto& evs : res.fault_events) {
    for (const core::FaultEvent& ev : evs) {
      EXPECT_TRUE(std::isfinite(ev.t_s));
      EXPECT_GE(ev.t_s, 0.0);
      EXPECT_LT(ev.t_s, spec.run.duration_s);
      EXPECT_TRUE(std::isfinite(ev.value));
      const std::string name = core::to_string(ev.kind);
      EXPECT_FALSE(name.empty());
      EXPECT_NE(name, "unknown");
    }
  }
}

TEST(FaultCampaign, MemorySinkRecordsFaultsPerRun) {
  MemorySink sink;
  const ExperimentSpec spec = campaign("moderate");
  const EngineResult res = Engine().run(spec, &sink);
  ASSERT_EQ(sink.runs().size(), spec.trials);
  ASSERT_EQ(sink.faults().size(), spec.trials);
  for (std::size_t t = 0; t < spec.trials; ++t) {
    ASSERT_EQ(sink.faults()[t].size(), res.fault_events[t].size());
    for (std::size_t i = 0; i < sink.faults()[t].size(); ++i) {
      EXPECT_EQ(sink.faults()[t][i].kind, res.fault_events[t][i].kind);
      EXPECT_EQ(sink.faults()[t][i].t_s, res.fault_events[t][i].t_s);
    }
  }
  EXPECT_EQ(sink.summaries().size(), spec.trials);
  EXPECT_EQ(sink.num_sweeps(), 1u);
}

}  // namespace
}  // namespace mmr::sim
