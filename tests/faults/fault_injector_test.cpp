// FaultInjector unit tests: each fault class is exercised against a
// synthetic LinkProbeInterface whose reports are known exactly, so the
// perturbations can be checked tap by tap. Also pins the determinism
// contract (same plan + seed => identical perturbed streams) and the
// pass-through identity of a disabled plan.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/units.h"
#include "core/events.h"
#include "sim/faults.h"

namespace mmr::sim {
namespace {

/// Probe interface returning a fixed 4-tap report, counting calls.
struct FakeLink {
  CVec report{cplx{1.0, 0.0}, cplx{0.0, 0.5}, cplx{-0.25, 0.25},
              cplx{0.1, -0.7}};
  int csi_calls = 0;
  int cir_calls = 0;

  core::LinkProbeInterface interface() {
    core::LinkProbeInterface link;
    link.csi = [this](const CVec& /*w*/) {
      ++csi_calls;
      return report;
    };
    link.cir = [this](const CVec& /*w*/, std::size_t taps) {
      ++cir_calls;
      CVec out = report;
      out.resize(taps, cplx{});
      return out;
    };
    return link;
  }
};

const CVec kWeights{cplx{1.0, 0.0}};

TEST(FaultInjector, RequiresValidPlanAndNonNullInner) {
  FakeLink fake;
  FaultPlan bad;
  bad.probe_drop_prob = 2.0;
  EXPECT_THROW(FaultInjector(bad, fake.interface()), std::logic_error);
  EXPECT_THROW(FaultInjector(FaultPlan{}, core::LinkProbeInterface{}),
               std::logic_error);
}

TEST(FaultInjector, DisabledPlanPassesReportsThroughUnchanged) {
  FakeLink fake;
  FaultInjector inj(FaultPlan{}, fake.interface());
  core::LinkProbeInterface link = inj.interface();
  for (int tick = 0; tick < 50; ++tick) {
    inj.on_tick(tick * 1e-3);
    const CVec csi = link.csi(kWeights);
    ASSERT_EQ(csi.size(), fake.report.size());
    for (std::size_t i = 0; i < csi.size(); ++i) {
      EXPECT_EQ(csi[i], fake.report[i]);
    }
  }
  EXPECT_EQ(inj.probes_dropped(), 0u);
  EXPECT_EQ(inj.stale_replays(), 0u);
  EXPECT_EQ(inj.nonfinite_taps(), 0u);
}

TEST(FaultInjector, SameSeedReproducesIdenticalPerturbedStream) {
  FaultPlan plan = fault_preset("heavy");
  plan.seed = 42;
  auto stream = [&plan] {
    FakeLink fake;
    FaultInjector inj(plan, fake.interface());
    core::LinkProbeInterface link = inj.interface();
    std::vector<CVec> out;
    for (int tick = 0; tick < 200; ++tick) {
      inj.on_tick(tick * 1e-3);
      out.push_back(link.csi(kWeights));
      out.push_back(link.cir(kWeights, 8));
    }
    return out;
  };
  const std::vector<CVec> a = stream();
  const std::vector<CVec> b = stream();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "report " << i;
    for (std::size_t k = 0; k < a[i].size(); ++k) {
      // NaNs compare unequal; compare their bit class instead.
      if (std::isnan(a[i][k].real())) {
        EXPECT_TRUE(std::isnan(b[i][k].real()));
      } else {
        EXPECT_EQ(a[i][k], b[i][k]);
      }
    }
  }
}

TEST(FaultInjector, DropsReportsAtRoughlyTheConfiguredRate) {
  FaultPlan plan;
  plan.probe_drop_prob = 0.25;
  plan.seed = 7;
  FakeLink fake;
  FaultInjector inj(plan, fake.interface());
  core::LinkProbeInterface link = inj.interface();
  int events = 0;
  inj.set_listener([&events](const core::FaultEvent& ev) {
    if (ev.kind == core::FaultEventKind::kProbeDropped) ++events;
  });
  int empty = 0;
  const int kProbes = 4000;
  for (int i = 0; i < kProbes; ++i) {
    inj.on_tick(i * 1e-3);
    if (link.csi(kWeights).empty()) ++empty;
  }
  EXPECT_EQ(inj.probes_seen(), static_cast<std::size_t>(kProbes));
  EXPECT_EQ(inj.probes_dropped(), static_cast<std::size_t>(empty));
  EXPECT_EQ(events, empty);
  EXPECT_NEAR(static_cast<double>(empty) / kProbes, 0.25, 0.03);
}

TEST(FaultInjector, StaleEpochReplaysLastDeliveredReport) {
  FaultPlan plan;
  plan.stale_epoch_prob = 1.0;  // enter an epoch on the first tick
  plan.stale_epoch_ticks = 3;
  plan.seed = 5;
  FakeLink fake;
  FaultInjector inj(plan, fake.interface());
  core::LinkProbeInterface link = inj.interface();

  // No cache yet: the first probes go live even inside an epoch.
  inj.on_tick(0.0);
  EXPECT_TRUE(inj.in_stale_epoch());
  const CVec first = link.csi(kWeights);
  EXPECT_EQ(fake.csi_calls, 1);

  // Mutate the ground truth; while the epoch lasts the controller keeps
  // seeing the cached report.
  fake.report[0] = cplx{9.0, 9.0};
  int live_before = fake.csi_calls;
  std::size_t replays = 0;
  for (int tick = 1; tick <= 2; ++tick) {  // ticks 1..2 still stale
    inj.on_tick(tick * 1e-3);
    ASSERT_TRUE(inj.in_stale_epoch());
    const CVec csi = link.csi(kWeights);
    EXPECT_EQ(csi[0], first[0]);
    ++replays;
  }
  EXPECT_EQ(fake.csi_calls, live_before);
  EXPECT_EQ(inj.stale_replays(), replays);

  // A CIR with a different tap count than the cache probes live.
  inj.on_tick(3e-3);
  if (inj.in_stale_epoch()) {
    const int cir_before = fake.cir_calls;
    (void)link.cir(kWeights, 16);
    EXPECT_EQ(fake.cir_calls, cir_before + 1);
  }
}

TEST(FaultInjector, BiasScalesReportPowerByTheConfiguredDb) {
  FaultPlan plan;
  plan.snr_bias_db = -6.0;
  plan.seed = 3;
  FakeLink fake;
  FaultInjector inj(plan, fake.interface());
  core::LinkProbeInterface link = inj.interface();
  inj.on_tick(0.0);
  const CVec csi = link.csi(kWeights);
  ASSERT_EQ(csi.size(), fake.report.size());
  for (std::size_t i = 0; i < csi.size(); ++i) {
    const double truth = std::norm(fake.report[i]);
    if (truth == 0.0) continue;
    const double got = std::norm(csi[i]);
    EXPECT_NEAR(10.0 * std::log10(got / truth), -6.0, 1e-9) << "tap " << i;
  }
}

TEST(FaultInjector, QuantizationSnapsTapsToTheGrid) {
  FaultPlan plan;
  plan.csi_quant_bits = 4;
  plan.seed = 3;
  FakeLink fake;
  FaultInjector inj(plan, fake.interface());
  core::LinkProbeInterface link = inj.interface();
  inj.on_tick(0.0);
  const CVec csi = link.csi(kWeights);
  double peak = 0.0;
  for (const cplx& h : fake.report) {
    peak = std::max({peak, std::abs(h.real()), std::abs(h.imag())});
  }
  const double step = peak / 8.0;  // 2^(4-1)
  for (const cplx& h : csi) {
    EXPECT_NEAR(std::remainder(h.real(), step), 0.0, 1e-12);
    EXPECT_NEAR(std::remainder(h.imag(), step), 0.0, 1e-12);
  }
}

TEST(FaultInjector, PlantsNonFiniteTapsAndEmitsEvents) {
  FaultPlan plan;
  plan.nan_tap_prob = 1.0;
  plan.seed = 11;
  FakeLink fake;
  FaultInjector inj(plan, fake.interface());
  core::LinkProbeInterface link = inj.interface();
  std::vector<core::FaultEvent> events;
  inj.set_listener(
      [&events](const core::FaultEvent& ev) { events.push_back(ev); });
  bool saw_nan = false, saw_inf = false;
  for (int i = 0; i < 10; ++i) {
    inj.on_tick(i * 1e-3);
    const CVec csi = link.csi(kWeights);
    int bad = 0;
    for (const cplx& h : csi) {
      if (!std::isfinite(h.real())) {
        ++bad;
        saw_nan = saw_nan || std::isnan(h.real());
        saw_inf = saw_inf || std::isinf(h.real());
      }
    }
    EXPECT_EQ(bad, 1) << "exactly one planted tap per report";
  }
  EXPECT_TRUE(saw_nan);
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(inj.nonfinite_taps(), 10u);
  ASSERT_EQ(events.size(), 10u);
  for (const core::FaultEvent& ev : events) {
    EXPECT_EQ(ev.kind, core::FaultEventKind::kNonFiniteTap);
    EXPECT_LT(ev.value, static_cast<double>(fake.report.size()));
  }
}

TEST(FaultInjector, PhaseNoisePreservesTapMagnitudes) {
  FaultPlan plan;
  plan.csi_phase_noise_rad = 0.5;
  plan.seed = 13;
  FakeLink fake;
  FaultInjector inj(plan, fake.interface());
  core::LinkProbeInterface link = inj.interface();
  inj.on_tick(0.0);
  const CVec csi = link.csi(kWeights);
  bool rotated = false;
  for (std::size_t i = 0; i < csi.size(); ++i) {
    EXPECT_NEAR(std::abs(csi[i]), std::abs(fake.report[i]), 1e-12);
    if (std::abs(csi[i] - fake.report[i]) > 1e-9) rotated = true;
  }
  EXPECT_TRUE(rotated) << "phase noise must actually rotate taps";
}

}  // namespace
}  // namespace mmr::sim
