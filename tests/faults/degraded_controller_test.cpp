// Degraded-mode hardening of the mmReliable controller: failed monitor
// probes must never corrupt the beam state -- the controller keeps its
// last-good weights, backs off with bounded retries, and retrains once
// the probe outage budget is spent, reporting every step through the
// FaultListener. Also end-to-end smoke: full runs under the heaviest
// fault preset keep every sample and event finite for all controllers.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/constants.h"
#include "core/maintenance.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "sim/runner.h"
#include "sim/scenario.h"

namespace mmr::sim {
namespace {

core::MaintenanceConfig config_for(const LinkWorld& world) {
  core::MaintenanceConfig mc;
  mc.bandwidth_hz = world.config().spec.bandwidth_hz;
  mc.outage_power_linear = world.power_for_snr(kOutageSnrDb);
  return mc;
}

bool finite_weights(const CVec& w) {
  if (w.empty()) return false;
  for (const cplx& x : w) {
    if (!std::isfinite(x.real()) || !std::isfinite(x.imag())) return false;
  }
  return true;
}

TEST(DegradedController, ProbeBlackoutFallsBackThenRetrains) {
  ScenarioConfig cfg;
  cfg.seed = 13;
  LinkWorld world = make_indoor_world(cfg);
  const array::Ula ula = world.config().tx_ula;
  core::MaintenanceConfig mc = config_for(world);
  core::MmReliableController ctrl(ula, sector_codebook(ula), mc);

  std::vector<core::FaultEvent> events;
  ctrl.set_fault_listener(
      [&events](const core::FaultEvent& ev) { events.push_back(ev); });

  // The whole probe path can be cut: every report comes back empty. The
  // controller must coast on last-good weights and, once the budget is
  // spent, retrain -- which the hardened training path survives even
  // while the link stays dark (zero-power scans still yield beams).
  bool dark = false;
  const core::LinkProbeInterface inner = world.probe_interface();
  core::LinkProbeInterface link;
  link.csi = [&dark, inner](const CVec& w) {
    return dark ? CVec{} : inner.csi(w);
  };
  link.cir = [&dark, inner](const CVec& w, std::size_t taps) {
    return dark ? CVec{} : inner.cir(w, taps);
  };

  const double tick = 2.5e-3;
  world.set_time(0.0);
  ctrl.start(0.0, link);
  const int trainings_before = ctrl.trainings();

  // Healthy phase: monitoring works, no failures accumulate.
  double t = tick;
  for (; t < 0.1; t += tick) {
    world.set_time(t);
    ctrl.step(t, link);
  }
  EXPECT_EQ(ctrl.consecutive_probe_failures(), 0u);
  EXPECT_TRUE(events.empty());
  const CVec last_good = ctrl.tx_weights();
  ASSERT_TRUE(finite_weights(last_good));

  // Blackout phase: the probe path goes completely dark.
  dark = true;
  bool weights_held = true;
  int trainings_seen = trainings_before;
  for (; t < 0.3; t += tick) {
    world.set_time(t);
    ctrl.step(t, link);
    if (ctrl.trainings() == trainings_seen) {
      // Until a retrain rebuilds the multibeam, the transmit weights must
      // stay exactly the last-good pattern.
      weights_held = weights_held && ctrl.tx_weights() == last_good;
    } else {
      trainings_seen = ctrl.trainings();
    }
    if (ctrl.trainings() > trainings_before) break;
  }
  EXPECT_TRUE(weights_held);
  EXPECT_GT(ctrl.trainings(), trainings_before)
      << "outage budget must force retraining";
  ASSERT_TRUE(finite_weights(ctrl.tx_weights()));

  auto count = [&events](core::FaultEventKind kind) {
    int n = 0;
    for (const auto& ev : events) n += ev.kind == kind;
    return n;
  };
  EXPECT_GE(count(core::FaultEventKind::kProbeFailure), 3);
  EXPECT_GE(count(core::FaultEventKind::kFallbackLastGood), 1);
  EXPECT_GE(count(core::FaultEventKind::kBackoff), 1);
  EXPECT_GE(count(core::FaultEventKind::kRetrainTriggered), 1);
  for (const auto& ev : events) {
    EXPECT_TRUE(std::isfinite(ev.t_s));
    EXPECT_TRUE(std::isfinite(ev.value));
  }
}

TEST(DegradedController, SanitizesPartiallyCorruptReports) {
  ScenarioConfig cfg;
  cfg.seed = 21;
  LinkWorld world = make_indoor_world(cfg);
  const array::Ula ula = world.config().tx_ula;
  core::MmReliableController ctrl(ula, sector_codebook(ula),
                                  config_for(world));
  std::vector<core::FaultEvent> events;
  ctrl.set_fault_listener(
      [&events](const core::FaultEvent& ev) { events.push_back(ev); });

  // Every CIR report gets one NaN tap planted after start-up.
  bool corrupt = false;
  core::LinkProbeInterface link = world.probe_interface();
  core::LinkProbeInterface inner = world.probe_interface();
  link.cir = [&corrupt, inner](const CVec& w, std::size_t taps) {
    CVec out = inner.cir(w, taps);
    if (corrupt && !out.empty()) {
      out[0] = cplx{std::nan(""), std::nan("")};
    }
    return out;
  };

  const double tick = 2.5e-3;
  world.set_time(0.0);
  ctrl.start(0.0, link);
  corrupt = true;
  for (double t = tick; t < 0.2; t += tick) {
    world.set_time(t);
    ctrl.step(t, link);
    // A sanitized report is a usable report: no failure streak builds up.
    EXPECT_EQ(ctrl.consecutive_probe_failures(), 0u);
  }
  int sanitized = 0;
  for (const auto& ev : events) {
    sanitized += ev.kind == core::FaultEventKind::kSanitizedReport;
  }
  EXPECT_GT(sanitized, 0);
  EXPECT_TRUE(finite_weights(ctrl.tx_weights()));
  for (double p : ctrl.last_beam_powers()) EXPECT_TRUE(std::isfinite(p));
  EXPECT_TRUE(std::isfinite(ctrl.last_total_power()));
}

TEST(DegradedController, MalformedDegradedConfigThrows) {
  ScenarioConfig cfg;
  LinkWorld world = make_indoor_world(cfg);
  const array::Ula ula = world.config().tx_ula;
  auto make_with = [&](auto&& set) {
    core::MaintenanceConfig mc = config_for(world);
    set(mc);
    core::MmReliableController ctrl(ula, sector_codebook(ula), mc);
  };
  EXPECT_THROW(
      make_with([](core::MaintenanceConfig& m) { m.probe_retry_limit = 0; }),
      std::logic_error);
  EXPECT_THROW(make_with([](core::MaintenanceConfig& m) {
                 m.probe_backoff_initial_s = 0.0;
               }),
               std::logic_error);
  EXPECT_THROW(make_with([](core::MaintenanceConfig& m) {
                 m.probe_backoff_max_s = m.probe_backoff_initial_s / 2.0;
               }),
               std::logic_error);
  EXPECT_THROW(make_with([](core::MaintenanceConfig& m) {
                 m.probe_outage_budget_s = 0.0;
               }),
               std::logic_error);
}

// Every registered controller must survive a full run under the heaviest
// preset: no throw, no NaN in any sample, finite weights throughout.
TEST(DegradedController, AllControllersSurviveHeavyFaults) {
  for (const std::string& name :
       {std::string("mmreliable"), std::string("reactive"),
        std::string("single_frozen"), std::string("beamspy"),
        std::string("widebeam")}) {
    SCOPED_TRACE(name);
    ExperimentSpec spec;
    spec.name = "survive_heavy";
    spec.scenario.name = "indoor_sparse";
    spec.scenario.blockers = {{0.2, 1.2, 30.0}};
    spec.controller.name = name;
    spec.run.duration_s = 0.4;
    spec.run.faults = fault_preset("heavy");
    spec.trials = 1;
    spec.seed = 17;
    spec.record_samples = true;
    const EngineResult res = Engine().run(spec);
    ASSERT_EQ(res.samples.size(), 1u);
    for (const core::LinkSample& s : res.samples[0]) {
      EXPECT_FALSE(std::isnan(s.snr_db));
      EXPECT_TRUE(std::isfinite(s.throughput_bps));
      EXPECT_GE(s.throughput_bps, 0.0);
    }
    ASSERT_EQ(res.fault_events.size(), 1u);
    EXPECT_FALSE(res.fault_events[0].empty())
        << "heavy preset must inject something in 160 ticks";
    for (const core::FaultEvent& ev : res.fault_events[0]) {
      EXPECT_TRUE(std::isfinite(ev.t_s));
      EXPECT_TRUE(std::isfinite(ev.value));
    }
  }
}

}  // namespace
}  // namespace mmr::sim
