// Integration tests of the multi-cell network layer (net/network.h):
// the single-link byte-identity collapse onto the existing run_experiment
// path, the terragraph controller as a registry citizen and its recovery
// ladder, RSRP handover with telemetry, cross-link interference effects
// and their recovery at infinite separation, and the per-link state
// ledger.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/constants.h"
#include "common/rng.h"
#include "core/link_state.h"
#include "net/campaign.h"
#include "net/network.h"
#include "net/terragraph.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "sim/telemetry.h"
#include "sim/workspace.h"

namespace {

using namespace mmr;

sim::ScenarioSpec blocked_sparse_scenario(std::uint64_t seed) {
  sim::ScenarioSpec s;
  s.name = "indoor_sparse";
  s.config.seed = seed;
  s.config.tx_power_dbm = 14.0;
  s.blockers = {{0.5, 1.0, 30.0}};
  s.ue_velocity = {1.0, 0.0};
  return s;
}

void expect_summaries_bit_identical(const core::LinkSummary& a,
                                    const core::LinkSummary& b) {
  EXPECT_EQ(a.reliability, b.reliability);
  EXPECT_EQ(a.mean_throughput_bps, b.mean_throughput_bps);
  EXPECT_EQ(a.mean_spectral_efficiency, b.mean_spectral_efficiency);
  EXPECT_EQ(a.throughput_reliability_product,
            b.throughput_reliability_product);
  EXPECT_EQ(a.num_samples, b.num_samples);
}

// The pinned contract: a 1-cell/1-UE network run is BYTE-identical to the
// existing single-link path -- same world seed, same tick sequence, same
// fault stream, same summary bits.
TEST(Network, SingleLinkCollapsesToRunExperimentBitExactly) {
  net::register_net_builtins();
  const std::uint64_t stream_seed = 0xABCDEF12;
  sim::RunConfig rc;
  rc.faults = sim::fault_preset("moderate");  // exercise the fault stream

  // Existing path: world + controller + run_experiment, with the fault
  // seed derived exactly as the engine derives it per trial.
  sim::ScenarioSpec scenario = blocked_sparse_scenario(stream_seed);
  sim::LinkWorld world = sim::ScenarioRegistry::instance().make(scenario);
  sim::TrialWorkspace ws;
  world.bind_workspace(&ws);
  sim::ControllerSpec ctrl_spec;  // mmreliable
  const auto controller = sim::ControllerRegistry::instance().make(
      world, scenario.config, ctrl_spec);
  sim::RunConfig rc_direct = rc;
  rc_direct.faults.seed =
      Rng::derive_stream_seed(stream_seed, sim::kFaultSeedStream);
  const sim::RunResult direct =
      sim::run_experiment(world, *controller, rc_direct);

  // Network path: same template (the authored seed is overridden by the
  // stream seed, like the engine's kPerTrialStream policy).
  net::NetworkSpec nspec;
  nspec.num_cells = 1;
  nspec.ues_per_cell = 1;
  nspec.link_scenario = blocked_sparse_scenario(0);
  nspec.controller = ctrl_spec;
  nspec.run = rc;  // fault seed 0: derived from the stream seed
  sim::TrialWorkspace ws2;
  net::Network network(nspec, stream_seed, &ws2);
  const net::NetworkResult result = network.run();

  ASSERT_EQ(result.links.size(), 1u);
  expect_summaries_bit_identical(result.links[0].summary, direct.summary);
  expect_summaries_bit_identical(result.network, direct.summary);
  // Same fault stream: identical event sequences, field for field.
  ASSERT_EQ(result.links[0].faults.size(), direct.fault_events.size());
  for (std::size_t i = 0; i < direct.fault_events.size(); ++i) {
    EXPECT_EQ(result.links[0].faults[i].kind, direct.fault_events[i].kind);
    EXPECT_EQ(result.links[0].faults[i].t_s, direct.fault_events[i].t_s);
    EXPECT_EQ(result.links[0].faults[i].value,
              direct.fault_events[i].value);
  }
  EXPECT_TRUE(result.handovers.empty());
}

TEST(Network, NetBuiltinsRegisterTerragraphAndCrowdScenarios) {
  net::register_net_builtins();
  net::register_net_builtins();  // idempotent
  EXPECT_TRUE(sim::ControllerRegistry::instance().contains("terragraph"));
  EXPECT_TRUE(sim::ScenarioRegistry::instance().contains("indoor_crowd"));
  EXPECT_TRUE(
      sim::ScenarioRegistry::instance().contains("indoor_crowd_dense"));
}

// The terragraph controller must work as a plain registry citizen on the
// EXISTING engine -- the state machine substrate slots under any
// controller, and terragraph is a standalone baseline.
TEST(Network, TerragraphRunsAsEngineControllerOnCrowdScenario) {
  net::register_net_builtins();
  sim::ExperimentSpec spec;
  spec.name = "terragraph_smoke";
  spec.scenario.name = "indoor_crowd";
  spec.scenario.config.tx_power_dbm = 14.0;
  spec.controller.name = "terragraph";
  spec.trials = 2;
  spec.seed = 7;
  sim::Engine engine;
  const sim::EngineResult result = engine.run(spec);
  ASSERT_EQ(result.trials.size(), 2u);
  for (const auto& trial : result.trials) {
    EXPECT_GE(trial.value.reliability, 0.0);
    EXPECT_LE(trial.value.reliability, 1.0);
    EXPECT_GT(trial.value.num_samples, 0u);
  }
}

TEST(Network, TerragraphLadderEscalatesUnderDeepBlockage) {
  net::register_net_builtins();
  sim::ScenarioSpec scenario = blocked_sparse_scenario(13);
  // Deep crossing at 0.5 s. The walker must be CLEAR of the LOS at t=0
  // (crossing_time > (radius + ramp) / speed) or acquisition trains onto
  // the reflection and the serving beam never sees the blockage.
  scenario.blockers = {{0.5, 1.2, 35.0}};
  sim::LinkWorld world = sim::ScenarioRegistry::instance().make(scenario);
  net::TerragraphConfig cfg;
  cfg.outage_power_linear = world.power_for_snr(kOutageSnrDb);
  net::TerragraphController controller(
      world.config().tx_ula,
      sim::sector_codebook(world.config().tx_ula,
                           scenario.config.codebook_size),
      cfg);
  const sim::RunResult rr = sim::run_experiment(world, controller, {});
  // The initial sweep plus at least one recovery-ladder reaction to the
  // blockage: refinement, switching, or full retraining.
  EXPECT_GE(controller.trainings(), 1);
  EXPECT_GT(controller.refinements() + controller.beam_switches() +
                (controller.trainings() - 1),
            0);
  EXPECT_GT(controller.machine().transitions(), 2u);
  EXPECT_GT(controller.training_airtime_s(), 0.0);
  // The ladder is visible in the availability ledger.
  EXPECT_GT(controller.machine().time_in(core::LinkState::kUp), 0.0);
  EXPECT_GT(rr.summary.reliability, 0.0);
  EXPECT_LT(rr.summary.reliability, 1.0);
}

TEST(Network, RsrpHandoverFiresAndStreamsTelemetry) {
  net::register_net_builtins();
  net::NetworkSpec spec;
  spec.num_cells = 2;
  spec.ues_per_cell = 1;
  spec.cell_spacing_m = 8.0;
  spec.link_scenario.name = "indoor";
  spec.link_scenario.config.seed = 5;
  spec.link_scenario.ue_start = {3.0, 6.2};
  spec.link_scenario.ue_velocity = {4.0, 0.0};  // crosses midpoint ~0.37 s
  spec.handover.hysteresis_db = 1.0;
  spec.handover.time_to_trigger_s = 20.0e-3;
  spec.handover.min_interval_s = 200.0e-3;
  spec.ue_placement_jitter_m = 0.0;

  sim::MemorySink sink;
  net::Network network(spec, 77);
  const net::NetworkResult result = network.run(&sink);

  ASSERT_GE(result.handovers.size(), 1u);
  const core::HandoverEvent& first = result.handovers.front();
  EXPECT_EQ(first.from_cell, 0u);
  EXPECT_EQ(first.to_cell, 1u);
  EXPECT_EQ(first.link, 0u);
  EXPECT_GT(first.t_s, 0.0);
  EXPECT_LT(first.t_s, 1.0);
  // A3 condition held for the full time-to-trigger window.
  EXPECT_GE(first.rsrp_to_db, first.rsrp_from_db +
                                  spec.handover.hysteresis_db - 1e-9);
  // Events are in time order.
  for (std::size_t i = 1; i < result.handovers.size(); ++i) {
    EXPECT_GE(result.handovers[i].t_s, result.handovers[i - 1].t_s);
  }
  // One UE homed at each of the two cells; only the cell-0 UE crosses
  // the midpoint, so every event belongs to link 0.
  ASSERT_EQ(result.links.size(), 2u);
  EXPECT_EQ(result.links[0].handovers, result.handovers.size());
  EXPECT_EQ(result.links[0].serving_cell, 1u);
  EXPECT_EQ(result.links[1].handovers, 0u);
  // The sink saw the same events.
  ASSERT_EQ(sink.handovers().size(), 1u);
  ASSERT_EQ(sink.handovers()[0].size(), result.handovers.size());
  EXPECT_EQ(sink.handovers()[0][0].to_cell, 1u);
  // The teardown shows in the state ledger: a handover is kLinkLost +
  // reacquisition, so the machine left kUp at least once.
  EXPECT_GT(result.links[0].time_acquisition_s + result.links[0].time_down_s,
            0.0);
}

TEST(Network, StaticUeNeverHandsOver) {
  net::register_net_builtins();
  net::NetworkSpec spec;
  spec.num_cells = 3;
  spec.ues_per_cell = 1;
  spec.cell_spacing_m = 40.0;
  spec.link_scenario.name = "indoor";
  spec.link_scenario.config.seed = 5;
  spec.ue_placement_jitter_m = 1.0;
  net::Network network(spec, 31);
  const net::NetworkResult result = network.run();
  EXPECT_TRUE(result.handovers.empty());
  for (const auto& link : result.links) {
    EXPECT_EQ(link.handovers, 0u);
  }
}

// Interference strictly degrades throughput for co-scheduled co-cell
// sessions (the controllers never see it -- the probe path is per-link --
// so beam choices and availability are identical; only the scored SINR
// moves).
TEST(Network, CoCellInterferenceStrictlyReducesThroughput) {
  net::register_net_builtins();
  net::NetworkSpec spec;
  spec.num_cells = 1;
  spec.ues_per_cell = 2;
  spec.link_scenario.name = "indoor";
  spec.link_scenario.config.seed = 11;
  spec.link_scenario.config.tx_power_dbm = 14.0;
  spec.ue_placement_jitter_m = 2.0;
  spec.interference.enabled = true;

  net::Network with_net(spec, 42);
  const net::NetworkResult with_interference = with_net.run();
  net::NetworkSpec quiet = spec;
  quiet.interference.enabled = false;
  net::Network without_net(quiet, 42);
  const net::NetworkResult without_interference = without_net.run();

  ASSERT_EQ(with_interference.links.size(), 2u);
  // Same seeds, same worlds, same controllers: reliability of the
  // interference-free run upper-bounds the interfered one...
  EXPECT_LE(with_interference.network.reliability,
            without_interference.network.reliability);
  // ...and the throughput strictly drops (every available tick pays the
  // SINR fold).
  EXPECT_LT(with_interference.network.mean_throughput_bps,
            without_interference.network.mean_throughput_bps);
}

// Infinite separation recovers the interference-free bits exactly: at
// 1e12 m the folded INR underflows the double mantissa of (1 + inr), so
// sinr_db == snr_db bitwise and the summaries match field for field.
TEST(Network, InterferenceVanishesBitExactlyAtInfiniteSeparation) {
  net::register_net_builtins();
  net::NetworkSpec spec;
  spec.num_cells = 2;
  spec.ues_per_cell = 1;
  spec.cell_spacing_m = 1.0e12;
  spec.link_scenario.name = "indoor";
  spec.link_scenario.config.seed = 3;
  spec.handover.enabled = false;
  spec.interference.enabled = true;

  net::Network far_net(spec, 9);
  const net::NetworkResult with_far = far_net.run();
  net::NetworkSpec quiet = spec;
  quiet.interference.enabled = false;
  net::Network quiet_net(quiet, 9);
  const net::NetworkResult without = quiet_net.run();

  ASSERT_EQ(with_far.links.size(), without.links.size());
  for (std::size_t i = 0; i < with_far.links.size(); ++i) {
    expect_summaries_bit_identical(with_far.links[i].summary,
                                   without.links[i].summary);
  }
}

TEST(Network, StateLedgerIsConservativeAcrossLinks) {
  net::register_net_builtins();
  net::NetworkSpec spec;
  spec.num_cells = 2;
  spec.ues_per_cell = 2;
  spec.link_scenario = blocked_sparse_scenario(0);
  spec.controller.name = "terragraph";
  net::Network network(spec, 17);
  const net::NetworkResult result = network.run();
  ASSERT_EQ(result.links.size(), 4u);
  for (const auto& link : result.links) {
    const double total = link.time_down_s + link.time_acquisition_s +
                         link.time_up_s + link.time_unstable_s;
    EXPECT_NEAR(total, spec.run.duration_s, 1e-9) << "link " << link.link;
    EXPECT_GE(link.availability(spec.run.duration_s), 0.0);
    EXPECT_LE(link.availability(spec.run.duration_s), 1.0);
  }
  // Multi-link aggregate: per-field means with samples summed.
  std::size_t samples = 0;
  double reliability = 0.0;
  for (const auto& link : result.links) {
    samples += link.summary.num_samples;
    reliability += link.summary.reliability / 4.0;
  }
  EXPECT_EQ(result.network.num_samples, samples);
  EXPECT_NEAR(result.network.reliability, reliability, 1e-12);
}

// PR-8 resumable-step contract: driving begin / step_tick / finish by
// hand is bit-identical to run() -- the streaming service's step path IS
// the batch path.
TEST(Network, ManualStepSequenceMatchesRunBitExactly) {
  net::register_net_builtins();
  net::NetworkSpec spec;
  spec.num_cells = 2;
  spec.ues_per_cell = 2;
  spec.cell_spacing_m = 12.0;
  spec.link_scenario = blocked_sparse_scenario(0);
  spec.controller.name = "terragraph";
  spec.interference.enabled = true;
  spec.run.duration_s = 0.4;

  net::Network batch(spec, 77);
  const net::NetworkResult via_run = batch.run();

  net::Network stepped(spec, 77);
  stepped.begin();
  const auto num_ticks =
      static_cast<std::size_t>(spec.run.duration_s / spec.run.tick_s);
  for (std::size_t i = 0; i < num_ticks; ++i) {
    stepped.step_tick(static_cast<double>(i) * spec.run.tick_s);
  }
  const net::NetworkResult via_steps = stepped.finish();

  ASSERT_EQ(via_run.links.size(), via_steps.links.size());
  for (std::size_t i = 0; i < via_run.links.size(); ++i) {
    expect_summaries_bit_identical(via_run.links[i].summary,
                                   via_steps.links[i].summary);
    EXPECT_EQ(via_run.links[i].time_up_s, via_steps.links[i].time_up_s);
    EXPECT_EQ(via_run.links[i].handovers, via_steps.links[i].handovers);
  }
  expect_summaries_bit_identical(via_run.network, via_steps.network);
  EXPECT_EQ(via_run.handovers.size(), via_steps.handovers.size());
}

// Streaming session table: join() populates an empty table with the same
// per-id builds as the batch constructor, leave() recycles slots through
// the free list (bounded memory under churn), and tick_samples() exposes
// the per-slot scores.
TEST(Network, JoinLeaveRecyclesSlotsAndMatchesBatchSessions) {
  net::register_net_builtins();
  net::NetworkSpec spec;
  spec.num_cells = 1;
  spec.ues_per_cell = 2;
  spec.link_scenario = blocked_sparse_scenario(0);

  // An empty table populated by join(id, 0) scores the same first tick
  // as the batch table with the same ids.
  net::Network batch(spec, 5);
  batch.begin();
  batch.step_tick(0.0);
  const std::vector<core::LinkSample> batch_tick(
      batch.tick_samples().begin(), batch.tick_samples().end());

  net::Network table(spec, 5, nullptr, /*populate_sessions=*/false);
  EXPECT_EQ(table.slot_count(), 0u);
  table.begin();
  EXPECT_EQ(table.join(0, 0.0), 0u);
  EXPECT_EQ(table.join(1, 0.0), 1u);
  EXPECT_EQ(table.live_count(), 2u);
  table.step_tick(0.0);
  ASSERT_EQ(table.tick_samples().size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(table.tick_samples()[i].snr_db, batch_tick[i].snr_db);
    EXPECT_EQ(table.tick_samples()[i].throughput_bps,
              batch_tick[i].throughput_bps);
  }

  // leave + join reuses the freed slot: the table never grows.
  table.leave(0);
  EXPECT_FALSE(table.slot_live(0));
  EXPECT_EQ(table.live_count(), 1u);
  EXPECT_EQ(table.join(2, spec.run.tick_s), 0u);
  EXPECT_EQ(table.slot_count(), 2u);
  EXPECT_EQ(table.live_count(), 2u);
  EXPECT_TRUE(table.slot_live(0));
  table.step_tick(spec.run.tick_s);  // the rejoined slot scores again
  EXPECT_THROW(table.leave(5), std::exception);
  table.leave(0);
  EXPECT_THROW(table.leave(0), std::exception);  // already retired
}

TEST(Network, SpecValidationRejectsBadShapes) {
  net::NetworkSpec spec;
  spec.num_cells = 0;
  EXPECT_THROW(spec.validate(), std::exception);
  spec = {};
  spec.cell_spacing_m = -1.0;
  EXPECT_THROW(spec.validate(), std::exception);
  spec = {};
  spec.handover.hysteresis_db = -2.0;
  EXPECT_THROW(spec.validate(), std::exception);
}

}  // namespace
