// Determinism tier for the network layer:
//   * jobs=8 replays jobs=1 BYTE-identically -- both the standard sweep
//     record and the network-wide CDF record (frozen timing);
//   * a 1-cell/1-UE network campaign emits the exact bytes of the
//     engine's campaign for the same (name, scenario, controller, run,
//     trials, jobs, seed) -- the collapse contract at the JSON level,
//     fault stream included;
//   * repeated runs are byte-stable.
// The whole binary is ALSO registered per SIMD backend
// (net_forced_<backend> in tests/CMakeLists.txt), so these bytes are
// pinned across every kernel implementation.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "net/campaign.h"
#include "net/network.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "sim/telemetry.h"

namespace {

using namespace mmr;

net::NetworkCampaignSpec crowd_campaign(std::size_t jobs) {
  net::NetworkCampaignSpec spec;
  spec.name = "network_determinism";
  spec.trials = 4;
  spec.jobs = jobs;
  spec.seed = 33;
  spec.freeze_timing = true;
  spec.network.num_cells = 2;
  spec.network.ues_per_cell = 2;
  spec.network.cell_spacing_m = 12.0;
  spec.network.link_scenario.name = "indoor_crowd";
  spec.network.link_scenario.config.tx_power_dbm = 14.0;
  spec.network.link_scenario.ue_velocity = {1.5, 0.0};
  spec.network.controller.name = "terragraph";
  spec.network.run.faults = sim::fault_preset("light");
  return spec;
}

struct CampaignBytes {
  std::string sweep;
  std::string network;
};

/// The serialized records declare the run shape, including the jobs
/// count ("jobs": N) -- the one field that legitimately differs between
/// a jobs=1 and a jobs=8 run of the same campaign. Zero it so the
/// comparison pins every OTHER byte.
std::string canonicalize_jobs(std::string s) {
  const std::string key = "\"jobs\": ";
  std::size_t pos = 0;
  while ((pos = s.find(key, pos)) != std::string::npos) {
    std::size_t begin = pos + key.size();
    std::size_t end = begin;
    while (end < s.size() && s[end] >= '0' && s[end] <= '9') ++end;
    s.replace(begin, end - begin, "0");
    pos = begin;
  }
  return s;
}

CampaignBytes run_to_bytes(const net::NetworkCampaignSpec& spec) {
  std::ostringstream sweep_os;
  sim::JsonLinesSink sink(sweep_os);
  const net::NetworkCampaignResult result =
      net::run_network_campaign(spec, &sink);
  std::ostringstream network_os;
  net::write_network_json(network_os, spec, result);
  return {sweep_os.str(), network_os.str()};
}

TEST(NetworkDeterminism, Jobs8ReplaysJobs1BitIdentically) {
  net::register_net_builtins();
  const CampaignBytes serial = run_to_bytes(crowd_campaign(1));
  const CampaignBytes parallel = run_to_bytes(crowd_campaign(8));
  ASSERT_FALSE(serial.sweep.empty());
  ASSERT_FALSE(serial.network.empty());
  EXPECT_EQ(canonicalize_jobs(serial.sweep), canonicalize_jobs(parallel.sweep));
  EXPECT_EQ(canonicalize_jobs(serial.network),
            canonicalize_jobs(parallel.network));
}

TEST(NetworkDeterminism, RepeatedRunsAreByteStable) {
  net::register_net_builtins();
  const CampaignBytes first = run_to_bytes(crowd_campaign(2));
  const CampaignBytes second = run_to_bytes(crowd_campaign(2));
  EXPECT_EQ(first.sweep, second.sweep);
  EXPECT_EQ(first.network, second.network);
}

// The JSON-level collapse: a 1-cell/1-UE network campaign and the
// engine's campaign produce the same bytes -- same per-trial stream
// seeds, same derived fault seeds, same summaries, same sweep record.
TEST(NetworkDeterminism, SingleLinkCampaignMatchesEngineBytes) {
  net::register_net_builtins();

  sim::ScenarioSpec scenario;
  scenario.name = "indoor_crowd";
  scenario.config.tx_power_dbm = 14.0;
  scenario.ue_velocity = {1.0, 0.0};
  sim::ControllerSpec controller;  // mmreliable
  sim::RunConfig run;
  run.faults = sim::fault_preset("moderate");

  sim::ExperimentSpec engine_spec;
  engine_spec.name = "network_vs_engine";
  engine_spec.scenario = scenario;
  engine_spec.controller = controller;
  engine_spec.run = run;
  engine_spec.trials = 3;
  engine_spec.jobs = 2;
  engine_spec.seed = 19;
  std::ostringstream engine_os;
  sim::JsonLinesSink engine_sink(engine_os);
  sim::Engine engine;
  sim::EngineOptions engine_opts;
  engine_opts.freeze_timing = true;
  (void)engine.run(engine_spec, &engine_sink, engine_opts);

  net::NetworkCampaignSpec campaign;
  campaign.name = "network_vs_engine";
  campaign.trials = 3;
  campaign.jobs = 2;
  campaign.seed = 19;
  campaign.freeze_timing = true;
  campaign.network.num_cells = 1;
  campaign.network.ues_per_cell = 1;
  campaign.network.link_scenario = scenario;
  campaign.network.controller = controller;
  campaign.network.run = run;
  std::ostringstream campaign_os;
  sim::JsonLinesSink campaign_sink(campaign_os);
  (void)net::run_network_campaign(campaign, &campaign_sink);

  ASSERT_FALSE(engine_os.str().empty());
  EXPECT_EQ(campaign_os.str(), engine_os.str());
}

// Different jobs counts must also leave the structured results (not just
// the serialized record) identical: per-link ledgers, handovers, faults.
TEST(NetworkDeterminism, StructuredResultsMatchAcrossJobs) {
  net::register_net_builtins();
  const net::NetworkCampaignResult a =
      net::run_network_campaign(crowd_campaign(1));
  const net::NetworkCampaignResult b =
      net::run_network_campaign(crowd_campaign(8));
  ASSERT_EQ(a.details.size(), b.details.size());
  for (std::size_t t = 0; t < a.details.size(); ++t) {
    ASSERT_EQ(a.details[t].links.size(), b.details[t].links.size());
    ASSERT_EQ(a.details[t].handovers.size(), b.details[t].handovers.size());
    for (std::size_t l = 0; l < a.details[t].links.size(); ++l) {
      const net::LinkReport& la = a.details[t].links[l];
      const net::LinkReport& lb = b.details[t].links[l];
      EXPECT_EQ(la.summary.reliability, lb.summary.reliability);
      EXPECT_EQ(la.summary.mean_throughput_bps,
                lb.summary.mean_throughput_bps);
      EXPECT_EQ(la.time_up_s, lb.time_up_s);
      EXPECT_EQ(la.time_unstable_s, lb.time_unstable_s);
      EXPECT_EQ(la.handovers, lb.handovers);
      EXPECT_EQ(la.faults.size(), lb.faults.size());
      EXPECT_EQ(la.final_state, lb.final_state);
    }
  }
}

}  // namespace
