// Property suite for the cross-link interference model (net/interference.h),
// >= 1000 Rng::fork cases per property:
//   * SINR never exceeds SNR, and recovers SNR bit-for-bit at zero INR;
//   * SINR is monotone non-increasing in the interference power;
//   * an interferer steering AT the victim couples at least as much power
//     as any other steering choice (the main lobe IS the worst case);
//   * coupling is monotone decreasing in distance and vanishes at
//     infinite separation (zero-interference recovery);
//   * the batched evaluator agrees with the scalar one exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <span>
#include <vector>

#include "array/geometry.h"
#include "array/pattern.h"
#include "array/weights.h"
#include "common/angles.h"
#include "common/rng.h"
#include "common/types.h"
#include "net/interference.h"

namespace {

using namespace mmr;

constexpr std::size_t kCases = 1200;
constexpr std::uint64_t kBaseSeed = 0x51412;  // "SINR"

array::Ula random_ula(Rng& rng) {
  array::Ula ula;
  ula.num_elements = 4 + static_cast<std::size_t>(rng.uniform_index(29));
  ula.spacing_wavelengths = 0.5;
  return ula;
}

/// Conjugate-steered unit-norm weights: maximum gain toward `phi`.
CVec steer(const array::Ula& ula, double phi) {
  const CVec a = array::steering_vector(ula, phi);
  CVec w(a.size());
  for (std::size_t n = 0; n < a.size(); ++n) w[n] = std::conj(a[n]);
  return array::normalize_trp(w);
}

TEST(InterferenceProps, SinrNeverExceedsSnrAndRecoversItAtZeroInr) {
  const Rng base(kBaseSeed);
  for (std::size_t i = 0; i < kCases; ++i) {
    Rng rng = base.fork(i);
    const double snr = rng.uniform(-30.0, 60.0);
    const double inr = rng.uniform(0.0, 1.0e4);
    const double sinr = net::sinr_db(snr, inr);
    ASSERT_LE(sinr, snr) << "case " << i;
    // Bitwise: zero interference must not perturb the scored SNR (the
    // single-link byte-identity collapse depends on it).
    const double recovered = net::sinr_db(snr, 0.0);
    ASSERT_EQ(recovered, snr) << "case " << i;
  }
}

TEST(InterferenceProps, SinrIsMonotoneNonIncreasingInInr) {
  const Rng base(kBaseSeed + 1);
  for (std::size_t i = 0; i < kCases; ++i) {
    Rng rng = base.fork(i);
    const double snr = rng.uniform(-30.0, 60.0);
    double inr1 = rng.uniform(0.0, 1.0e3);
    double inr2 = rng.uniform(0.0, 1.0e3);
    if (inr1 > inr2) std::swap(inr1, inr2);
    ASSERT_GE(net::sinr_db(snr, inr1), net::sinr_db(snr, inr2))
        << "case " << i << " inr1 " << inr1 << " inr2 " << inr2;
  }
}

TEST(InterferenceProps, SteeringAtTheVictimIsTheWorstCase) {
  const Rng base(kBaseSeed + 2);
  for (std::size_t i = 0; i < kCases; ++i) {
    Rng rng = base.fork(i);
    const array::Ula ula = random_ula(rng);
    const double victim = rng.uniform(-kPi / 3.0, kPi / 3.0);
    const double d = rng.uniform(2.0, 200.0);
    const double carrier = rng.uniform(24.0e9, 70.0e9);
    const double worst =
        net::interferer_gain(ula, steer(ula, victim), victim, d, carrier);
    const double other_angle = rng.uniform(-kPi / 2.0, kPi / 2.0);
    const double other =
        net::interferer_gain(ula, steer(ula, other_angle), victim, d, carrier);
    ASSERT_GE(worst, other - 1e-12 * worst)
        << "case " << i << " victim " << victim << " other " << other_angle;
  }
}

TEST(InterferenceProps, CouplingDecreasesWithDistanceAndSeparationAngle) {
  const Rng base(kBaseSeed + 3);
  for (std::size_t i = 0; i < kCases; ++i) {
    Rng rng = base.fork(i);
    const array::Ula ula = random_ula(rng);
    const double victim = rng.uniform(-kPi / 3.0, kPi / 3.0);
    const CVec w = steer(ula, rng.uniform(-kPi / 3.0, kPi / 3.0));
    const double carrier = 28.0e9;
    double d1 = rng.uniform(1.0, 500.0);
    double d2 = rng.uniform(1.0, 500.0);
    if (d1 > d2) std::swap(d1, d2);
    const double g1 = net::interferer_gain(ula, w, victim, d1, carrier);
    const double g2 = net::interferer_gain(ula, w, victim, d2, carrier);
    ASSERT_GE(g1, g2) << "case " << i << " d1 " << d1 << " d2 " << d2;
    // Coupling loss only attenuates further.
    const double damped =
        net::interferer_gain(ula, w, victim, d1, carrier, 20.0);
    ASSERT_LE(damped, g1) << "case " << i;
    ASSERT_NEAR(damped, g1 * 1e-2, g1 * 1e-10) << "case " << i;
  }
}

TEST(InterferenceProps, ZeroInterferenceRecoveryAtInfiniteSeparation) {
  const Rng base(kBaseSeed + 4);
  for (std::size_t i = 0; i < kCases; ++i) {
    Rng rng = base.fork(i);
    const array::Ula ula = random_ula(rng);
    const double victim = rng.uniform(-kPi / 3.0, kPi / 3.0);
    const CVec w = steer(ula, victim);  // worst-case pointing
    // 28 GHz free-space loss at 1e6 km dwarfs any array gain: the INR a
    // victim computes from this coupling is numerically negligible.
    const double far =
        net::interferer_gain(ula, w, victim, 1.0e9, 28.0e9);
    ASSERT_LT(far, 1e-20) << "case " << i;
    const double snr = rng.uniform(-10.0, 50.0);
    // And the SINR fold with the far-field INR is indistinguishable
    // from the interference-free link within double precision.
    ASSERT_NEAR(net::sinr_db(snr, far), snr, 1e-9) << "case " << i;
  }
}

TEST(InterferenceProps, BatchEvaluatorMatchesScalar) {
  const Rng base(kBaseSeed + 5);
  for (std::size_t i = 0; i < 200; ++i) {
    Rng rng = base.fork(i);
    const array::Ula ula = random_ula(rng);
    const CVec w = steer(ula, rng.uniform(-kPi / 3.0, kPi / 3.0));
    const double carrier = rng.uniform(24.0e9, 70.0e9);
    const double coupling = rng.uniform(0.0, 10.0);
    const std::size_t n = 1 + rng.uniform_index(16);
    RVec angles(n), distances(n);
    for (std::size_t k = 0; k < n; ++k) {
      angles[k] = rng.uniform(-kPi / 2.0, kPi / 2.0);
      distances[k] = rng.uniform(0.5, 300.0);
    }
    const RVec batch =
        net::interferer_gain_batch(ula, w, angles, distances, carrier,
                                   coupling);
    ASSERT_EQ(batch.size(), n);
    for (std::size_t k = 0; k < n; ++k) {
      const double scalar = net::interferer_gain(ula, w, angles[k],
                                                 distances[k], carrier,
                                                 coupling);
      ASSERT_NEAR(batch[k], scalar, 1e-12 * std::max(1.0, scalar))
          << "case " << i << " victim " << k;
    }
  }
}

// The allocation-free batch path the network's per-tick interference
// fold runs on. BITWISE equality -- not NEAR -- because the fold's
// byte-identity contracts (jobs=K vs jobs=1, the single-link collapse)
// depend on the batch producing exactly the scalar bits on every SIMD
// backend (this binary is re-registered per backend as
// net_forced_<backend>).
TEST(InterferenceProps, BatchIntoIsBitwiseEqualToScalarOnEveryBackend) {
  const Rng base(kBaseSeed + 6);
  std::vector<double> angles, distances, out;
  for (std::size_t i = 0; i < 1000; ++i) {
    Rng rng = base.fork(i);
    const array::Ula ula = random_ula(rng);
    const CVec w = steer(ula, rng.uniform(-kPi / 2.0, kPi / 2.0));
    const double carrier = rng.uniform(24.0e9, 70.0e9);
    const double coupling = rng.uniform(0.0, 15.0);
    const std::size_t n = 1 + rng.uniform_index(24);
    angles.resize(n);
    distances.resize(n);
    out.assign(n, -1.0);
    for (std::size_t k = 0; k < n; ++k) {
      angles[k] = rng.uniform(-kPi / 2.0, kPi / 2.0);
      // Include the sub-1 m near-field clamp region.
      distances[k] = rng.uniform(0.25, 300.0);
    }
    net::interferer_gain_batch_into(ula, w, angles, distances, carrier,
                                    coupling, out);
    for (std::size_t k = 0; k < n; ++k) {
      const double scalar = net::interferer_gain(ula, w, angles[k],
                                                 distances[k], carrier,
                                                 coupling);
      ASSERT_EQ(out[k], scalar) << "case " << i << " victim " << k;
    }
  }
}

TEST(InterferenceProps, BatchIntoValidatesSpanShapes) {
  const array::Ula ula{8, 0.5};
  const CVec w = steer(ula, 0.0);
  std::vector<double> angles(3, 0.0), distances(3, 10.0), out(2, 0.0);
  EXPECT_THROW(net::interferer_gain_batch_into(ula, w, angles, distances,
                                               28.0e9, 0.0, out),
               std::exception);
  std::vector<double> short_dist(2, 10.0);
  EXPECT_THROW(net::interferer_gain_batch_into(ula, w, angles, short_dist,
                                               28.0e9, 0.0,
                                               std::span<double>(angles)),
               std::exception);
}

TEST(InterferenceProps, RejectsNegativeInrAndBadGeometry) {
  EXPECT_THROW(net::sinr_db(10.0, -1e-9), std::exception);
  const array::Ula ula{8, 0.5};
  const CVec w = steer(ula, 0.0);
  EXPECT_THROW(net::interferer_gain(ula, w, 0.0, 0.0, 28.0e9),
               std::exception);
  EXPECT_THROW(net::interferer_gain(ula, w, 0.0, 10.0, 28.0e9, -1.0),
               std::exception);
}

}  // namespace
